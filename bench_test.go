// Benchmarks regenerating the performance-relevant side of every paper
// artifact (Figures 4-8, Table 1, the demo scenarios) plus the extension
// sweeps S1-S4 and ablations of DESIGN.md §6. Run with:
//
//	go test -bench=. -benchmem
package mdm_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"mdm"
	"mdm/internal/bdi"
	"mdm/internal/federate"
	"mdm/internal/rdf"
	"mdm/internal/rdf/turtle"
	"mdm/internal/relalg"
	"mdm/internal/rewrite"
	"mdm/internal/rewrite/gav"
	"mdm/internal/schema"
	"mdm/internal/sparql"
	"mdm/internal/usecase"
	"mdm/internal/wrapper"
)

// --- Figure 5: global graph construction ---

func BenchmarkFig5GlobalGraph(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := bdi.New()
		ex := "http://ex.org/"
		for c := 0; c < 4; c++ {
			concept := rdf.IRI(fmt.Sprintf("%sC%d", ex, c))
			if err := o.AddConcept(concept, "concept"); err != nil {
				b.Fatal(err)
			}
			for f := 0; f < 5; f++ {
				feat := rdf.IRI(fmt.Sprintf("%sC%d_f%d", ex, c, f))
				if err := o.AddFeature(feat, "feature"); err != nil {
					b.Fatal(err)
				}
				if err := o.AttachFeature(concept, feat); err != nil {
					b.Fatal(err)
				}
			}
			if err := o.MarkIdentifier(rdf.IRI(fmt.Sprintf("%sC%d_f0", ex, c))); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- Figure 6: source graph construction via schema extraction ---

var playersPayload = []byte(`[
 {"id":6176,"name":"Lionel Messi","height":170.18,"weight":159,"rating":94,"preferred_foot":"left","team_id":25},
 {"id":7011,"name":"Robert Lewandowski","height":184.0,"weight":176,"rating":91,"preferred_foot":"right","team_id":27}
]`)

func BenchmarkFig6SourceGraph(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := bdi.New()
		if err := o.AddDataSource("players-api", "Players API"); err != nil {
			b.Fatal(err)
		}
		sig, _, err := schema.ExtractSignature("w1", schema.FormatJSON, playersPayload)
		if err != nil {
			b.Fatal(err)
		}
		if err := o.RegisterWrapper("players-api", sig); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 7: LAV mapping definition (incl. validation) ---

func BenchmarkFig7LAVMappings(b *testing.B) {
	f := usecase.MustNew()
	m, ok := f.Ont.MappingOf("w1")
	if !ok {
		b.Fatal("w1 mapping missing")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.Ont.DefineMapping(m); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 8: query rewriting (walk -> SPARQL + UCQ plan) ---

func BenchmarkFig8Rewriting(b *testing.B) {
	f := usecase.MustNew()
	r := rewrite.New(f.Ont, f.Reg)
	walk := usecase.Fig8Walk()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Rewrite(walk); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table 1: rewrite + federated execution of the exemplary query ---

func BenchmarkTable1Query(b *testing.B) {
	f := usecase.MustNew()
	sys := mdm.FromParts(f.Ont, f.Reg)
	ctx := context.Background()
	walk := usecase.Fig8Walk()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rel, _, err := sys.Query(ctx, walk)
		if err != nil {
			b.Fatal(err)
		}
		if rel.Len() != 5 {
			b.Fatalf("rows = %d", rel.Len())
		}
	}
}

// --- Demo scenario 2: the 4-concept nationality OMQ ---

func BenchmarkNationalityQuery(b *testing.B) {
	f := usecase.MustNew()
	sys := mdm.FromParts(f.Ont, f.Reg)
	ctx := context.Background()
	walk := usecase.NationalityWalk()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rel, _, err := sys.Query(ctx, walk)
		if err != nil {
			b.Fatal(err)
		}
		if rel.Len() != 2 {
			b.Fatalf("rows = %d", rel.Len())
		}
	}
}

// --- Demo scenario 3: rewriting under two coexisting schema versions ---

func BenchmarkEvolutionRewrite(b *testing.B) {
	f := usecase.MustNew()
	if err := f.ReleasePlayersV2(); err != nil {
		b.Fatal(err)
	}
	r := rewrite.New(f.Ont, f.Reg)
	walk := usecase.Fig8Walk()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := r.Rewrite(walk)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.CQs) != 2 {
			b.Fatalf("CQs = %d", len(res.CQs))
		}
	}
}

// --- S1: rewriting vs number of wrapper versions per source ---

func BenchmarkRewriteWrappersSweep(b *testing.B) {
	for _, n := range []int{1, 2, 4, 8, 16, 32} {
		ont, reg, walk := usecase.SyntheticVersions(n)
		r := rewrite.New(ont, reg)
		b.Run(fmt.Sprintf("versions=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := r.Rewrite(walk)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.CQs) != n {
					b.Fatalf("CQs = %d, want %d", len(res.CQs), n)
				}
			}
		})
	}
}

// --- S2: rewriting vs walk size ---

func BenchmarkRewriteConceptsSweep(b *testing.B) {
	for _, n := range []int{1, 2, 4, 8, 16, 32} {
		ont, reg, walk := usecase.SyntheticChain(n)
		r := rewrite.New(ont, reg)
		b.Run(fmt.Sprintf("concepts=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := r.Rewrite(walk); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- S3: federated execution vs row count ---

func BenchmarkExecuteRowsSweep(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		f := usecase.MustNew()
		f.W1.SetDocs(usecase.SyntheticPlayers(n))
		f.W2.SetDocs(usecase.SyntheticTeams(n / 10))
		res, err := rewrite.New(f.Ont, f.Reg).Rewrite(usecase.Fig8Walk())
		if err != nil {
			b.Fatal(err)
		}
		ctx := context.Background()
		b.Run(fmt.Sprintf("rows=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rel, err := res.Plan.Execute(ctx)
				if err != nil {
					b.Fatal(err)
				}
				if rel.Len() == 0 {
					b.Fatal("empty result")
				}
			}
		})
	}
}

// --- S4: GAV unfolding vs LAV rewriting cost (both healthy) ---

func BenchmarkGAVvsLAV(b *testing.B) {
	f := usecase.MustNew()
	walk := usecase.Fig8Walk()
	gm := gav.FromLAV(f.Ont)
	b.Run("gav-unfold", func(b *testing.B) {
		r := gav.New(f.Ont, f.Reg, gm)
		for i := 0; i < b.N; i++ {
			if _, err := r.Rewrite(walk); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("lav-rewrite", func(b *testing.B) {
		r := rewrite.New(f.Ont, f.Reg)
		for i := 0; i < b.N; i++ {
			if _, err := r.Rewrite(walk); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Ablation: relational optimizer on/off (DESIGN.md §6) ---

func BenchmarkOptimizerAblation(b *testing.B) {
	f := usecase.MustNew()
	f.W1.SetDocs(usecase.SyntheticPlayers(5000))
	f.W2.SetDocs(usecase.SyntheticTeams(500))
	w1, _ := f.Reg.Get("w1")
	w2, _ := f.Reg.Get("w2")
	raw := relalg.Plan(relalg.NewProject(
		relalg.NewJoin(
			relalg.NewScan(w1),
			relalg.NewRename(relalg.NewScan(w2), [][2]string{{"name", "teamName"}}),
			[][2]string{{"teamId", "id"}}),
		"teamName", "pName"))
	opt := relalg.Optimize(raw)
	ctx := context.Background()
	b.Run("unoptimized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := raw.Execute(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("optimized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := opt.Execute(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Substrate microbenches ---

func BenchmarkTripleStoreMatch(b *testing.B) {
	g := rdf.NewGraph()
	for i := 0; i < 10000; i++ {
		g.MustAdd(rdf.T(
			rdf.IRI(fmt.Sprintf("http://ex.org/s%d", i%100)),
			rdf.IRI(fmt.Sprintf("http://ex.org/p%d", i%10)),
			rdf.IntLit(int64(i))))
	}
	p := rdf.IRI("http://ex.org/p3")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := g.Count(rdf.Any, p, rdf.Any); got == 0 {
			b.Fatal("no matches")
		}
	}
}

func BenchmarkTurtleParse(b *testing.B) {
	f := usecase.MustNew()
	doc := turtle.WriteDataset(f.Ont.Dataset())
	b.SetBytes(int64(len(doc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := turtle.ParseDataset(doc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSPARQLMetadataQuery(b *testing.B) {
	f := usecase.MustNew()
	q := sparql.MustParse(`
PREFIX G: <http://www.essi.upc.edu/~snadal/BDIOntology/Global/>
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
SELECT ?c ?f WHERE {
  GRAPH <http://www.essi.upc.edu/~snadal/BDIOntology/Global/graph> {
    ?c rdf:type G:Concept .
    ?c G:hasFeature ?f .
  }
}`)
	ds := f.Ont.Dataset()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sparql.Eval(ds, q)
		if err != nil {
			b.Fatal(err)
		}
		if res.Len() == 0 {
			b.Fatal("no solutions")
		}
	}
}

// joinRowsDataset builds the wide-join fixture shared by the SPARQL
// join benchmarks: ~10k triples whose 3-pattern BGP join produces ~9k
// solution rows.
func joinRowsDataset() *rdf.Dataset {
	ds := rdf.NewDataset()
	g := ds.Default()
	ex := func(p, i int) rdf.Term { return rdf.IRI(fmt.Sprintf("http://ex.org/n%d_%d", p, i)) }
	p0, p1, p2, p3 := rdf.IRI("http://ex.org/p0"), rdf.IRI("http://ex.org/p1"),
		rdf.IRI("http://ex.org/p2"), rdf.IRI("http://ex.org/p3")
	for x := 0; x < 1000; x++ {
		g.MustAdd(rdf.T(ex(0, x), p0, ex(1, x%100)))
		g.MustAdd(rdf.T(ex(0, x), p2, rdf.IntLit(int64(x))))
	}
	for m := 0; m < 100; m++ {
		for k := 0; k < 9; k++ {
			g.MustAdd(rdf.T(ex(1, m), p1, rdf.IntLit(int64(m*9+k))))
		}
	}
	for i := 0; i < 7100; i++ { // background noise triples
		g.MustAdd(rdf.T(ex(2, i), p3, rdf.IntLit(int64(i))))
	}
	return ds
}

const joinRowsQuery = `
PREFIX ex: <http://ex.org/>
SELECT ?a ?c ?w WHERE { ?a ex:p0 ?b . ?b ex:p1 ?c . ?a ex:p2 ?w }`

// BenchmarkSPARQLJoinRows measures the ID-row join core on a wide
// 3-pattern BGP over ~10k triples producing ~9k solution rows, the
// shape where per-solution allocation dominates. The seq variant pins
// the single-goroutine pipeline; par lets the planner use the
// morsel-parallel join (identical to seq when GOMAXPROCS=1, so run
// with -cpu 1,4 to see the scaling).
func BenchmarkSPARQLJoinRows(b *testing.B) {
	ds := joinRowsDataset()
	defer sparql.SetParallelism(0)
	for _, tc := range []struct {
		name    string
		workers int
	}{{"seq", 1}, {"par", 0}} {
		b.Run(tc.name, func(b *testing.B) {
			sparql.SetParallelism(tc.workers)
			q := sparql.MustParse(joinRowsQuery)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := sparql.Eval(ds, q)
				if err != nil {
					b.Fatal(err)
				}
				if res.Len() != 9000 {
					b.Fatalf("rows = %d", res.Len())
				}
			}
		})
	}
}

// BenchmarkSPARQLLimitPushdown pins the O(page) contract of the cursor
// engine on the ~9k-row join: LIMIT 10 without ORDER BY goes through
// the bounded top-k operator (no full sort, no full materialization),
// LIMIT 10 with ORDER BY still pays the sort barrier, and full-drain is
// the O(result) baseline the pushdown is measured against.
func BenchmarkSPARQLLimitPushdown(b *testing.B) {
	ds := joinRowsDataset()
	cases := []struct {
		name string
		src  string
		rows int
	}{
		{"limit10", joinRowsQuery + " LIMIT 10", 10},
		{"limit10-orderby", joinRowsQuery + " ORDER BY ?w LIMIT 10", 10},
		{"full-drain", joinRowsQuery, 9000},
	}
	for _, tc := range cases {
		q := sparql.MustParse(tc.src)
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := sparql.Eval(ds, q)
				if err != nil {
					b.Fatal(err)
				}
				if res.Len() != tc.rows {
					b.Fatalf("rows = %d", res.Len())
				}
			}
		})
	}
}

// BenchmarkSPARQLPlanCache pins the per-query plan cache: re-evaluating
// a shared *Query against an unchanged dataset reuses its compiled plan
// (selectivity ordering, join choice, constant resolution), while a
// freshly parsed query pays parsing plus planning every time. The gap
// is what callers that hold on to parsed queries (saved walks, REST
// handlers with hot queries) save per evaluation.
func BenchmarkSPARQLPlanCache(b *testing.B) {
	f := usecase.MustNew()
	ds := f.Ont.Dataset()
	src := `
PREFIX G: <http://www.essi.upc.edu/~snadal/BDIOntology/Global/>
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
SELECT ?c ?f WHERE {
  GRAPH <http://www.essi.upc.edu/~snadal/BDIOntology/Global/graph> {
    ?c rdf:type G:Concept .
    ?c G:hasFeature ?f .
  }
}`
	b.Run("shared-query", func(b *testing.B) {
		q := sparql.MustParse(src)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := sparql.Eval(ds, q)
			if err != nil {
				b.Fatal(err)
			}
			if res.Len() == 0 {
				b.Fatal("no solutions")
			}
		}
	})
	b.Run("fresh-query", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := sparql.Run(ds, src)
			if err != nil {
				b.Fatal(err)
			}
			if res.Len() == 0 {
				b.Fatal("no solutions")
			}
		}
	})
}

func BenchmarkSchemaExtraction(b *testing.B) {
	xmlPayload := []byte(`<teams>
  <team><id>25</id><name>FC Barcelona</name><shortName>FCB</shortName></team>
  <team><id>27</id><name>Bayern Munich</name><shortName>FCB</shortName></team>
</teams>`)
	csvPayload := []byte("id,name\n1,Spain\n2,Germany\n3,England\n")
	b.Run("json", func(b *testing.B) {
		b.SetBytes(int64(len(playersPayload)))
		for i := 0; i < b.N; i++ {
			if _, _, err := schema.ExtractSignature("w", schema.FormatJSON, playersPayload); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("xml", func(b *testing.B) {
		b.SetBytes(int64(len(xmlPayload)))
		for i := 0; i < b.N; i++ {
			if _, _, err := schema.ExtractSignature("w", schema.FormatXML, xmlPayload); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("csv", func(b *testing.B) {
		b.SetBytes(int64(len(csvPayload)))
		for i := 0; i < b.N; i++ {
			if _, _, err := schema.ExtractSignature("w", schema.FormatCSV, csvPayload); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkWrapperFetch(b *testing.B) {
	w := wrapper.NewMem("w1", "players-api", usecase.SyntheticPlayers(1000), nil)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rel, err := w.Fetch(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if rel.Len() != 1000 {
			b.Fatal("bad fetch")
		}
	}
}

// --- Federated walk execution: scatter vs sequential source access ---

// latencySource injects per-fetch latency in front of an in-memory
// relation, simulating a remote wrapper.
type latencySource struct {
	name  string
	delay time.Duration
	rel   *relalg.Relation
}

func (s *latencySource) Name() string      { return s.name }
func (s *latencySource) Columns() []string { return s.rel.Cols }
func (s *latencySource) Fetch(ctx context.Context) (*relalg.Relation, error) {
	t := time.NewTimer(s.delay)
	defer t.Stop()
	select {
	case <-t.C:
		return s.rel, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// federationFixture builds a 3-wrapper join plan (players ⋈ teams ⋈
// leagues) with the given artificial per-source latency.
func federationFixture(delay time.Duration) (relalg.Plan, int) {
	players := relalg.NewRelation("pid", "tid")
	for i := 0; i < 300; i++ {
		players.MustAppend(relalg.Row{relalg.Int(int64(i)), relalg.Int(int64(i % 30))})
	}
	teams := relalg.NewRelation("tid", "lid")
	for i := 0; i < 30; i++ {
		teams.MustAppend(relalg.Row{relalg.Int(int64(i)), relalg.Int(int64(i % 3))})
	}
	leagues := relalg.NewRelation("lid", "lname")
	for i := 0; i < 3; i++ {
		leagues.MustAppend(relalg.Row{relalg.Int(int64(i)), relalg.String(fmt.Sprintf("L%d", i))})
	}
	plan := relalg.NewJoin(
		relalg.NewJoin(
			relalg.NewScan(&latencySource{"players", delay, players}),
			relalg.NewScan(&latencySource{"teams", delay, teams}),
			[][2]string{{"tid", "tid"}}),
		relalg.NewScan(&latencySource{"leagues", delay, leagues}),
		[][2]string{{"lid", "lid"}})
	return plan, 300
}

// BenchmarkWalkFederation pins the federated execution win: three
// simulated wrappers with 3ms artificial latency each. The sequential
// materializing path (relalg.Plan.Execute) pays the sum of the fetch
// latencies; the federate engine's scatter phase pays roughly the max.
func BenchmarkWalkFederation(b *testing.B) {
	const delay = 3 * time.Millisecond
	plan, rows := federationFixture(delay)
	ctx := context.Background()
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rel, err := plan.Execute(ctx)
			if err != nil {
				b.Fatal(err)
			}
			if rel.Len() != rows {
				b.Fatalf("rows = %d", rel.Len())
			}
		}
	})
	b.Run("federated", func(b *testing.B) {
		eng := federate.NewEngine()
		for i := 0; i < b.N; i++ {
			cur, err := eng.Run(ctx, plan)
			if err != nil {
				b.Fatal(err)
			}
			rel, err := cur.Materialize(ctx)
			if err != nil {
				b.Fatal(err)
			}
			if rel.Len() != rows {
				b.Fatalf("rows = %d", rel.Len())
			}
		}
	})
	// Control for the resilience layer: retries and breakers disabled.
	// "federated" vs this pins the healthy-path overhead of the breaker
	// Allow/Record pair (it must stay in the noise).
	b.Run("federated-noresilience", func(b *testing.B) {
		eng := federate.NewEngine()
		eng.Retry.Max = 0
		eng.Breakers = nil
		for i := 0; i < b.N; i++ {
			cur, err := eng.Run(ctx, plan)
			if err != nil {
				b.Fatal(err)
			}
			rel, err := cur.Materialize(ctx)
			if err != nil {
				b.Fatal(err)
			}
			if rel.Len() != rows {
				b.Fatalf("rows = %d", rel.Len())
			}
		}
	})
	// Paged read: O(sources + page) — the pipeline stops after 10 rows.
	b.Run("federated-page10", func(b *testing.B) {
		eng := federate.NewEngine()
		for i := 0; i < b.N; i++ {
			cur, err := eng.RunPage(ctx, plan, 10, 0)
			if err != nil {
				b.Fatal(err)
			}
			rel, err := cur.Materialize(ctx)
			if err != nil {
				b.Fatal(err)
			}
			if rel.Len() != 10 {
				b.Fatalf("rows = %d", rel.Len())
			}
		}
	})
}
