// Command mdm-bench regenerates every artifact of the paper's
// demonstration — Figures 1–8, Table 1 and the three on-site scenarios —
// plus the extension experiments S1–S4 of DESIGN.md.
//
// Usage:
//
//	mdm-bench -exp fig5        # one experiment
//	mdm-bench -all             # everything, in paper order
//	mdm-bench -list            # list experiment ids
//
// Outputs are plain text, suitable for diffing against EXPERIMENTS.md.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"mdm"
	"mdm/internal/apisim"
	"mdm/internal/rewrite"
	"mdm/internal/rewrite/gav"
	"mdm/internal/usecase"
	"mdm/internal/wrapper"
)

type experiment struct {
	id, title string
	run       func(ctx context.Context) error
}

func experiments() []experiment {
	return []experiment{
		{"fig1", "Figure 1: UML of the motivational use case", runFig1},
		{"fig2", "Figure 2: sample payloads of the Players and Teams APIs", runFig2},
		{"fig4", "Figure 4: high-level architecture smoke test (all four interactions)", runFig4},
		{"fig5", "Figure 5: global graph of the motivational use case", runFig5},
		{"fig6", "Figure 6: source graph of the motivational use case", runFig6},
		{"fig7", "Figure 7: LAV mappings of the motivational use case", runFig7},
		{"fig8", "Figure 8: OMQ -> SPARQL -> relational algebra", runFig8},
		{"table1", "Table 1: sample output of the exemplary query", runTable1},
		{"setup", "Demo scenario 1: system setup", runSetup},
		{"omq", "Demo scenario 2: ontology-mediated queries", runOMQ},
		{"evolution", "Demo scenario 3: governance of evolution", runEvolution},
		{"s1", "S1: rewriting cost vs number of wrapper versions per source", runS1},
		{"s2", "S2: rewriting cost vs walk size (number of concepts)", runS2},
		{"s3", "S3: federated execution vs row count", runS3},
		{"s4", "S4: GAV baseline vs LAV under schema evolution", runS4},
	}
}

func main() {
	exp := flag.String("exp", "", "experiment id to run")
	all := flag.Bool("all", false, "run every experiment")
	list := flag.Bool("list", false, "list experiment ids")
	flag.Parse()

	exps := experiments()
	if *list {
		for _, e := range exps {
			fmt.Printf("%-10s %s\n", e.id, e.title)
		}
		return
	}
	ctx := context.Background()
	run := func(e experiment) {
		fmt.Printf("=== %s — %s ===\n", e.id, e.title)
		if err := e.run(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "mdm-bench: %s: %v\n", e.id, err)
			os.Exit(1)
		}
		fmt.Println()
	}
	if *all {
		for _, e := range exps {
			run(e)
		}
		return
	}
	for _, e := range exps {
		if e.id == *exp {
			run(e)
			return
		}
	}
	fmt.Fprintf(os.Stderr, "mdm-bench: unknown experiment %q (use -list)\n", *exp)
	os.Exit(1)
}

// --- paper artifacts ---

func runFig1(context.Context) error {
	fmt.Print(`UML domain model (conceptualized as in Figure 1):

  Player(id, name, height, weight, rating, preferredFoot)
  SportsTeam(id, name, shortName)
  League(id, name)
  Country(id, name)

  Player        --playsIn-->        SportsTeam
  SportsTeam    --competesIn-->     League
  League        --inCountry-->      Country
  Player        --hasNationality--> Country
`)
	return nil
}

func runFig2(ctx context.Context) error {
	provider := apisim.NewFootball()
	defer provider.Close()
	for _, ep := range []struct{ label, path string }{
		{"Players API (JSON)", "/v1/players"},
		{"Teams API (XML)", "/v1/teams"},
	} {
		body, ct, err := fetch(ctx, provider.URL()+ep.path)
		if err != nil {
			return err
		}
		fmt.Printf("-- %s [%s] --\n%s\n", ep.label, ct, truncate(body, 400))
	}
	return nil
}

func runFig4(ctx context.Context) error {
	// All four interactions end-to-end: (a) global graph definition,
	// (b) wrapper registration, (c) LAV mappings, (d) querying.
	f, err := usecase.New()
	if err != nil {
		return err
	}
	sys := mdm.FromParts(f.Ont, f.Reg)
	st := sys.Stats()
	fmt.Printf("(a) global graph defined: %d concepts, %d features, %d relations\n",
		st.Concepts, st.Features, st.Relations)
	fmt.Printf("(b) wrappers registered:  %d sources, %d wrappers, %d attributes\n",
		st.Sources, st.Wrappers, st.Attributes)
	fmt.Printf("(c) LAV mappings defined: %d mappings, %d sameAs links\n",
		st.Mappings, st.SameAs)
	rel, res, err := sys.Query(ctx, usecase.Fig8Walk())
	if err != nil {
		return err
	}
	fmt.Printf("(d) OMQ answered:         %d rows from %d conjunctive queries\n",
		rel.Len(), len(res.CQs))
	if v := sys.Validate(); len(v) != 0 {
		return fmt.Errorf("integrity violations: %v", v)
	}
	fmt.Println("integrity constraints:    all satisfied")
	return nil
}

func runFig5(context.Context) error {
	f, err := usecase.New()
	if err != nil {
		return err
	}
	fmt.Print(f.Ont.RenderGlobal())
	return nil
}

func runFig6(context.Context) error {
	f, err := usecase.New()
	if err != nil {
		return err
	}
	fmt.Print(f.Ont.RenderSource())
	return nil
}

func runFig7(context.Context) error {
	f, err := usecase.New()
	if err != nil {
		return err
	}
	fmt.Print(f.Ont.RenderMappings())
	return nil
}

func runFig8(context.Context) error {
	f, err := usecase.New()
	if err != nil {
		return err
	}
	res, err := rewrite.New(f.Ont, f.Reg).Rewrite(usecase.Fig8Walk())
	if err != nil {
		return err
	}
	fmt.Println("-- Walk (drawn contour): Player.playerName, SportsTeam.teamName via playsIn --")
	fmt.Println("\n-- Equivalent SPARQL --")
	fmt.Println(res.SPARQL)
	fmt.Println("\n-- Relational algebra over the wrappers --")
	for _, cq := range res.CQs {
		fmt.Println(" ", cq.Algebra)
	}
	return nil
}

func runTable1(ctx context.Context) error {
	f, err := usecase.New()
	if err != nil {
		return err
	}
	sys := mdm.FromParts(f.Ont, f.Reg)
	rel, _, err := sys.Query(ctx, usecase.Fig8Walk())
	if err != nil {
		return err
	}
	rel.Sort()
	fmt.Print(rel.Table())
	return nil
}

// --- demo scenarios ---

func runSetup(ctx context.Context) error {
	provider := apisim.NewFootball()
	defer provider.Close()
	sys := mdm.New()
	sys.BindPrefix("ex", usecase.EX)
	sys.BindPrefix("sc", "http://schema.org/")

	steps := []struct {
		what string
		err  error
	}{
		{"concept ex:Player", sys.AddConcept("ex:Player", "Player")},
		{"concept sc:SportsTeam (reused vocabulary)", sys.AddConcept("sc:SportsTeam", "SportsTeam")},
	}
	for _, s := range steps {
		if s.err != nil {
			return s.err
		}
		fmt.Println("defined", s.what)
	}
	for _, fd := range []struct{ iri, concept string }{
		{"ex:playerId", "ex:Player"}, {"ex:playerName", "ex:Player"},
		{"ex:teamId", "sc:SportsTeam"}, {"ex:teamName", "sc:SportsTeam"},
	} {
		if err := sys.AddFeature(fd.iri, ""); err != nil {
			return err
		}
		if err := sys.AttachFeature(fd.concept, fd.iri); err != nil {
			return err
		}
	}
	_ = sys.MarkIdentifier("ex:playerId")
	_ = sys.MarkIdentifier("ex:teamId")
	_ = sys.RelateConcepts("ex:Player", "ex:playsIn", "sc:SportsTeam")
	fmt.Println("defined features and identifiers; related Player --playsIn--> SportsTeam")

	if err := sys.AddSource("players-api", "Players API"); err != nil {
		return err
	}
	if err := sys.AddSource("teams-api", "Teams API"); err != nil {
		return err
	}
	w1, err := wrapper.NewHTTP(ctx, "w1", "players-api", provider.URL()+"/v1/players",
		wrapper.WithRename("name", "pName"),
		wrapper.WithRename("preferred_foot", "foot"),
		wrapper.WithRename("team_id", "teamId"),
		wrapper.WithRename("rating", "score"))
	if err != nil {
		return err
	}
	rel1, err := sys.RegisterWrapper(w1)
	if err != nil {
		return err
	}
	fmt.Println(rel1.Summary())
	fmt.Println("  extracted signature:", w1.Signature())

	w2, err := wrapper.NewHTTP(ctx, "w2", "teams-api", provider.URL()+"/v1/teams")
	if err != nil {
		return err
	}
	rel2, err := sys.RegisterWrapper(w2)
	if err != nil {
		return err
	}
	fmt.Println(rel2.Summary())
	fmt.Println("  extracted signature:", w2.Signature())

	if err := sys.DefineMapping(mdm.Mapping{
		Wrapper: "w1",
		Subgraph: []mdm.Triple{
			mdm.T(sys.IRI("ex:Player"), sys.IRI("rdf:type"), sys.IRI("G:Concept")),
			mdm.T(sys.IRI("ex:Player"), sys.IRI("G:hasFeature"), sys.IRI("ex:playerId")),
			mdm.T(sys.IRI("ex:Player"), sys.IRI("G:hasFeature"), sys.IRI("ex:playerName")),
			mdm.T(sys.IRI("ex:Player"), sys.IRI("ex:playsIn"), sys.IRI("sc:SportsTeam")),
			mdm.T(sys.IRI("sc:SportsTeam"), sys.IRI("rdf:type"), sys.IRI("G:Concept")),
			mdm.T(sys.IRI("sc:SportsTeam"), sys.IRI("G:hasFeature"), sys.IRI("ex:teamId")),
		},
		SameAs: map[string]mdm.Term{
			"id": sys.IRI("ex:playerId"), "pName": sys.IRI("ex:playerName"),
			"teamId": sys.IRI("ex:teamId"),
		},
	}); err != nil {
		return err
	}
	if err := sys.DefineMapping(mdm.Mapping{
		Wrapper: "w2",
		Subgraph: []mdm.Triple{
			mdm.T(sys.IRI("sc:SportsTeam"), sys.IRI("rdf:type"), sys.IRI("G:Concept")),
			mdm.T(sys.IRI("sc:SportsTeam"), sys.IRI("G:hasFeature"), sys.IRI("ex:teamId")),
			mdm.T(sys.IRI("sc:SportsTeam"), sys.IRI("G:hasFeature"), sys.IRI("ex:teamName")),
		},
		SameAs: map[string]mdm.Term{
			"id": sys.IRI("ex:teamId"), "name": sys.IRI("ex:teamName"),
		},
	}); err != nil {
		return err
	}
	fmt.Println("defined LAV mappings for w1 (red contour) and w2 (green contour)")
	if v := sys.Validate(); len(v) > 0 {
		return fmt.Errorf("violations: %v", v)
	}
	fmt.Println("ontology consistent")
	return nil
}

func runOMQ(ctx context.Context) error {
	f, err := usecase.New()
	if err != nil {
		return err
	}
	sys := mdm.FromParts(f.Ont, f.Reg)

	fmt.Println("Q1: names of players and their teams (Figure 8)")
	if err := showQuery(ctx, sys, usecase.Fig8Walk()); err != nil {
		return err
	}
	fmt.Println("\nQ2: who are the players that play in a league of their nationality?")
	if err := showQuery(ctx, sys, usecase.NationalityWalk()); err != nil {
		return err
	}
	fmt.Println("\nQ3: player heights (single concept, single wrapper)")
	q3 := mdm.NewWalk().
		SelectAs(usecase.Player, usecase.PlayerName, "player").
		SelectAs(usecase.Player, usecase.Height, "height")
	return showQuery(ctx, sys, q3)
}

func showQuery(ctx context.Context, sys *mdm.System, w *mdm.Walk) error {
	rel, res, err := sys.Query(ctx, w)
	if err != nil {
		return err
	}
	for _, cq := range res.CQs {
		fmt.Println("  CQ:", cq.Algebra)
	}
	rel.Sort()
	fmt.Print(indent(rel.Table(), "  "))
	return nil
}

func runEvolution(ctx context.Context) error {
	f, err := usecase.New()
	if err != nil {
		return err
	}
	sys := mdm.FromParts(f.Ont, f.Reg)
	fmt.Println("step 1: query before the release")
	if err := showQuery(ctx, sys, usecase.Fig8Walk()); err != nil {
		return err
	}
	fmt.Println("\nstep 2: players API ships breaking v2 (pName->fullName, weight/score dropped, position added)")
	if err := f.ReleasePlayersV2(); err != nil {
		return err
	}
	fmt.Println("  registered wrapper w1v2 for the SAME data source + LAV mapping; nothing else changed")
	fmt.Println("\nstep 3: the same query now fetches BOTH schema versions (union of CQs)")
	if err := showQuery(ctx, sys, usecase.Fig8Walk()); err != nil {
		return err
	}
	fmt.Println("\nstep 4: the new v2-only feature is queryable too")
	return showQuery(ctx, sys, usecase.PositionWalk())
}

// --- extension sweeps (S1-S4) ---

func runS1(ctx context.Context) error {
	fmt.Println("versions  CQs  rewrite_time")
	for _, versions := range []int{1, 2, 4, 8, 16, 32} {
		f, reg, walk := syntheticVersions(versions)
		r := rewrite.New(f, reg)
		start := time.Now()
		res, err := r.Rewrite(walk)
		if err != nil {
			return err
		}
		fmt.Printf("%-9d %-4d %v\n", versions, len(res.CQs), time.Since(start).Round(time.Microsecond))
	}
	return nil
}

func runS2(ctx context.Context) error {
	fmt.Println("concepts  CQs  rewrite_time")
	for _, n := range []int{1, 2, 4, 8, 16, 32} {
		ont, reg, walk := syntheticChain(n)
		r := rewrite.New(ont, reg)
		start := time.Now()
		res, err := r.Rewrite(walk)
		if err != nil {
			return err
		}
		fmt.Printf("%-9d %-4d %v\n", n, len(res.CQs), time.Since(start).Round(time.Microsecond))
	}
	return nil
}

func runS3(ctx context.Context) error {
	fmt.Println("rows_per_wrapper  result_rows  exec_time")
	for _, n := range []int{100, 1000, 10000, 100000} {
		f := usecase.MustNew()
		f.W1.SetDocs(syntheticPlayers(n))
		f.W2.SetDocs(syntheticTeams(n / 10))
		sys := mdm.FromParts(f.Ont, f.Reg)
		start := time.Now()
		rel, _, err := sys.Query(ctx, usecase.Fig8Walk())
		if err != nil {
			return err
		}
		fmt.Printf("%-17d %-12d %v\n", n, rel.Len(), time.Since(start).Round(time.Microsecond))
	}
	return nil
}

func runS4(ctx context.Context) error {
	f := usecase.MustNew()
	gavMap := gav.FromLAV(f.Ont)
	walk := usecase.Fig8Walk()

	fmt.Println("phase 1 (before evolution): both answer the Fig.8 query")
	lavRes, err := rewrite.New(f.Ont, f.Reg).Rewrite(walk)
	if err != nil {
		return err
	}
	lavRel, err := lavRes.Plan.Execute(ctx)
	if err != nil {
		return err
	}
	gavPlan, err := gav.New(f.Ont, f.Reg, gavMap).Rewrite(walk)
	if err != nil {
		return err
	}
	gavRel, err := gavPlan.Execute(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("  LAV rows=%d  GAV rows=%d\n", lavRel.Len(), gavRel.Len())

	fmt.Println("phase 2: players API replaces its schema in place (breaking)")
	f.W1.SetDocs(usecase.PlayersV2Docs())
	brokenReg := wrapper.NewRegistry()
	_ = brokenReg.Register(wrapper.NewMem("w1", usecase.SrcPlayers, usecase.PlayersV2Docs(), nil))
	for _, n := range []string{"w2", "w3", "w4", "w5", "w6"} {
		w, _ := f.Reg.Get(n)
		_ = brokenReg.Register(w)
	}
	if _, err := gav.New(f.Ont, brokenReg, gavMap).Rewrite(walk); err != nil {
		fmt.Printf("  GAV: query CRASHES: %v\n", err)
	} else {
		fmt.Println("  GAV: unexpectedly survived (should not happen)")
	}
	fmt.Printf("  GAV: steward must manually redefine %d bindings referencing w1\n",
		gavMap.BindingsReferencing("w1"))

	fmt.Println("phase 3: LAV governance: register w1v2 + one LAV mapping (existing mappings untouched)")
	if err := f.ReleasePlayersV2(); err != nil {
		return err
	}
	lavRes2, err := rewrite.New(f.Ont, f.Reg).Rewrite(walk)
	if err != nil {
		return err
	}
	lavRel2, err := lavRes2.Plan.Execute(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("  LAV: query answers from %d schema versions, rows=%d\n",
		len(lavRes2.CQs), lavRel2.Len())
	return nil
}

// --- synthetic fixtures live in internal/usecase (shared with the
// testing.B benches in bench_test.go) ---

var (
	syntheticVersions = usecase.SyntheticVersions
	syntheticChain    = usecase.SyntheticChain
	syntheticPlayers  = usecase.SyntheticPlayers
	syntheticTeams    = usecase.SyntheticTeams
)

// --- utilities ---

var httpClient = &http.Client{Timeout: 10 * time.Second}

func fetch(ctx context.Context, url string) (string, string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return "", "", err
	}
	resp, err := httpClient.Do(req)
	if err != nil {
		return "", "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", "", err
	}
	return string(body), resp.Header.Get("Content-Type"), nil
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}

func indent(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = prefix + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}
