package main

import (
	"context"
	"testing"
)

// TestAllExperimentsRun executes every experiment end-to-end — the same
// code paths `mdm-bench -all` uses — so the artifact regeneration can
// never silently rot. (Outputs go to stdout; correctness of their
// content is asserted by the per-package tests.)
func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments run real sweeps; skipped in -short mode")
	}
	ctx := context.Background()
	for _, e := range experiments() {
		e := e
		t.Run(e.id, func(t *testing.T) {
			if err := e.run(ctx); err != nil {
				t.Fatalf("%s: %v", e.id, err)
			}
		})
	}
}

func TestExperimentIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range experiments() {
		if seen[e.id] {
			t.Errorf("duplicate experiment id %q", e.id)
		}
		seen[e.id] = true
		if e.title == "" || e.run == nil {
			t.Errorf("experiment %q incomplete", e.id)
		}
	}
}
