// Command mdm-loadgen is a closed-loop serving benchmark for a live
// mdmd instance: N concurrent clients each issue one request, wait for
// the full response, and immediately issue the next, over a mixed
// SPARQL-metadata / federated-walk workload. It reports p50/p95/p99
// latency and sustained RPS as JSON, so CI can publish a serving
// baseline (BENCH_serve.json) next to the micro benchmarks.
//
// The workload assumes the mdmd football seed (-seed): the SPARQL
// queries read the seeded global graph, the walk queries span the
// seeded in-memory wrappers.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"
)

// op is one workload element: a POST body for a fixed endpoint.
type op struct {
	Name string
	Path string
	Body []byte
}

// sparqlOps query the seeded metadata graphs through /api/sparql.
var sparqlOps = []op{
	{
		Name: "sparql-concepts",
		Path: "/api/sparql",
		Body: mustBody(`PREFIX G: <http://www.essi.upc.edu/~snadal/BDIOntology/Global/>
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
SELECT ?c ?f WHERE {
  GRAPH <http://www.essi.upc.edu/~snadal/BDIOntology/Global/graph> {
    ?c rdf:type G:Concept .
    ?c G:hasFeature ?f .
  }
}`),
	},
	{
		Name: "sparql-features-paged",
		Path: "/api/sparql?limit=10&offset=5",
		Body: mustBody(`PREFIX G: <http://www.essi.upc.edu/~snadal/BDIOntology/Global/>
SELECT ?c ?f WHERE {
  GRAPH <http://www.essi.upc.edu/~snadal/BDIOntology/Global/graph> { ?c G:hasFeature ?f . }
}`),
	},
}

// walkOps run federated walks (rewriting + wrapper scatter) through
// /api/query/sparql.
var walkOps = []op{
	{
		Name: "walk-players-teams",
		Path: "/api/query/sparql",
		Body: mustBody(`PREFIX ex: <http://www.example.org/football/>
PREFIX sc: <http://schema.org/>
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
SELECT ?teamName ?playerName WHERE {
  ?t rdf:type sc:SportsTeam .
  ?t ex:teamName ?teamName .
  ?p rdf:type ex:Player .
  ?p ex:playerName ?playerName .
  ?p ex:playsIn ?t .
}`),
	},
}

func mustBody(query string) []byte {
	b, err := json.Marshal(map[string]string{"query": query})
	if err != nil {
		panic(err)
	}
	return b
}

type config struct {
	base     string
	clients  int
	duration time.Duration
	warmup   time.Duration
	walkFrac float64
	out      string
}

// sample is one completed request.
type sample struct {
	op  string
	lat time.Duration
	err bool
}

// opStats aggregates one op's samples in the report.
type opStats struct {
	Count  int     `json:"count"`
	Errors int     `json:"errors"`
	P50ms  float64 `json:"p50_ms"`
	P95ms  float64 `json:"p95_ms"`
	P99ms  float64 `json:"p99_ms"`
}

// report is the JSON document written to -out.
type report struct {
	Target    string             `json:"target"`
	Clients   int                `json:"clients"`
	DurationS float64            `json:"duration_s"`
	WalkFrac  float64            `json:"walk_frac"`
	Requests  int                `json:"requests"`
	Errors    int                `json:"errors"`
	RPS       float64            `json:"rps"`
	P50ms     float64            `json:"p50_ms"`
	P95ms     float64            `json:"p95_ms"`
	P99ms     float64            `json:"p99_ms"`
	MaxMs     float64            `json:"max_ms"`
	PerOp     map[string]opStats `json:"per_op"`
	// Server-side handler latency, interpolated from the scraped
	// mdm_http_request_duration_seconds histogram (all endpoints).
	// Zero when the target does not expose /metrics.
	ServerP50ms float64 `json:"server_p50_ms"`
	ServerP95ms float64 `json:"server_p95_ms"`
	ServerP99ms float64 `json:"server_p99_ms"`
}

func main() {
	cfg := config{}
	flag.StringVar(&cfg.base, "addr", "http://127.0.0.1:8085", "base URL of the mdmd instance")
	flag.IntVar(&cfg.clients, "clients", 8, "concurrent closed-loop clients")
	flag.DurationVar(&cfg.duration, "duration", 10*time.Second, "measured load window")
	flag.DurationVar(&cfg.warmup, "warmup", 2*time.Second, "unmeasured warmup window")
	flag.Float64Var(&cfg.walkFrac, "walk-frac", 0.25, "fraction of requests that are federated walks")
	flag.StringVar(&cfg.out, "out", "", "write the JSON report to this file (default stdout only)")
	flag.Parse()

	rep, err := run(cfg)
	if err != nil {
		log.Fatalf("mdm-loadgen: %v", err)
	}
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if cfg.out != "" {
		if err := os.WriteFile(cfg.out, append(enc, '\n'), 0o644); err != nil {
			log.Fatalf("mdm-loadgen: %v", err)
		}
	}
	fmt.Println(string(enc))
	if rep.Errors > 0 {
		log.Fatalf("mdm-loadgen: %d/%d requests failed", rep.Errors, rep.Requests)
	}
}

// run executes the closed loop and aggregates the report. It is the
// whole benchmark minus flag parsing, so tests can drive it against an
// httptest server.
func run(cfg config) (*report, error) {
	if cfg.clients < 1 {
		return nil, fmt.Errorf("clients must be >= 1")
	}
	client := &http.Client{Timeout: 30 * time.Second}
	if err := waitReady(client, cfg.base, 15*time.Second); err != nil {
		return nil, err
	}
	if cfg.warmup > 0 {
		loadWindow(client, cfg, cfg.warmup)
	}
	start := time.Now()
	samples := loadWindow(client, cfg, cfg.duration)
	elapsed := time.Since(start)
	if len(samples) == 0 {
		return nil, fmt.Errorf("no requests completed in %v", cfg.duration)
	}

	all := make([]time.Duration, 0, len(samples))
	perOp := map[string][]sample{}
	errs := 0
	for _, s := range samples {
		all = append(all, s.lat)
		perOp[s.op] = append(perOp[s.op], s)
		if s.err {
			errs++
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	rep := &report{
		Target:    cfg.base,
		Clients:   cfg.clients,
		DurationS: elapsed.Seconds(),
		WalkFrac:  cfg.walkFrac,
		Requests:  len(samples),
		Errors:    errs,
		RPS:       float64(len(samples)) / elapsed.Seconds(),
		P50ms:     ms(quantile(all, 0.50)),
		P95ms:     ms(quantile(all, 0.95)),
		P99ms:     ms(quantile(all, 0.99)),
		MaxMs:     ms(all[len(all)-1]),
		PerOp:     map[string]opStats{},
	}
	for name, ss := range perOp {
		lats := make([]time.Duration, 0, len(ss))
		oerrs := 0
		for _, s := range ss {
			lats = append(lats, s.lat)
			if s.err {
				oerrs++
			}
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		rep.PerOp[name] = opStats{
			Count:  len(ss),
			Errors: oerrs,
			P50ms:  ms(quantile(lats, 0.50)),
			P95ms:  ms(quantile(lats, 0.95)),
			P99ms:  ms(quantile(lats, 0.99)),
		}
	}
	if text, err := scrapeMetrics(client, cfg.base); err != nil {
		log.Printf("mdm-loadgen: metrics scrape skipped: %v", err)
	} else if h := parseHistogram(text, "mdm_http_request_duration_seconds"); h != nil {
		rep.ServerP50ms = h.quantileSeconds(0.50) * 1000
		rep.ServerP95ms = h.quantileSeconds(0.95) * 1000
		rep.ServerP99ms = h.quantileSeconds(0.99) * 1000
	}
	return rep, nil
}

// loadWindow runs the closed loop for the window and returns every
// client's samples.
func loadWindow(client *http.Client, cfg config, window time.Duration) []sample {
	ctx, cancel := context.WithTimeout(context.Background(), window)
	defer cancel()
	var wg sync.WaitGroup
	out := make([][]sample, cfg.clients)
	for c := 0; c < cfg.clients; c++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			// Deterministic per-client stream: run-to-run workload mix
			// stays comparable across baselines.
			rng := rand.New(rand.NewSource(int64(idx) + 1))
			for ctx.Err() == nil {
				o := pick(rng, cfg.walkFrac)
				t0 := time.Now()
				failed := doOp(ctx, client, cfg.base, o)
				lat := time.Since(t0)
				if ctx.Err() != nil && failed {
					break // deadline hit mid-request; not a server error
				}
				out[idx] = append(out[idx], sample{op: o.Name, lat: lat, err: failed})
			}
		}(c)
	}
	wg.Wait()
	var all []sample
	for _, s := range out {
		all = append(all, s...)
	}
	return all
}

func pick(rng *rand.Rand, walkFrac float64) op {
	if rng.Float64() < walkFrac {
		return walkOps[rng.Intn(len(walkOps))]
	}
	return sparqlOps[rng.Intn(len(sparqlOps))]
}

// doOp issues one request and fully drains the response; closed-loop
// latency includes reading the body, matching what a client observes.
func doOp(ctx context.Context, client *http.Client, base string, o op) (failed bool) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+o.Path, bytes.NewReader(o.Body))
	if err != nil {
		return true
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return true
	}
	defer resp.Body.Close()
	_, err = io.Copy(io.Discard, resp.Body)
	return err != nil || resp.StatusCode != http.StatusOK
}

// waitReady polls /api/stats until the server answers, bounding how
// long CI waits for the booted mdmd.
func waitReady(client *http.Client, base string, patience time.Duration) error {
	deadline := time.Now().Add(patience)
	for {
		resp, err := client.Get(base + "/api/stats")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server at %s not ready after %v: %v", base, patience, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
