package main

import (
	"net/http/httptest"
	"testing"
	"time"

	"mdm"
	"mdm/internal/rest"
	"mdm/internal/usecase"
)

// TestRunAgainstSeededServer drives the whole closed loop against an
// in-process mdmd equivalent (seeded system behind the REST mux): every
// workload op must succeed and the report must be internally
// consistent. This pins the op bodies to the seed fixture — if either
// drifts, CI's serve-bench job would silently publish an all-error
// baseline.
func TestRunAgainstSeededServer(t *testing.T) {
	f := usecase.MustNew()
	srv := httptest.NewServer(rest.NewServer(mdm.FromParts(f.Ont, f.Reg)))
	defer srv.Close()

	rep, err := run(config{
		base:     srv.URL,
		clients:  4,
		duration: 500 * time.Millisecond,
		warmup:   100 * time.Millisecond,
		walkFrac: 0.5, // force both op families into the short window
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 {
		t.Fatal("no requests completed")
	}
	if rep.Errors != 0 {
		t.Fatalf("errors = %d of %d (workload drifted from the seed fixture?): %+v",
			rep.Errors, rep.Requests, rep.PerOp)
	}
	if rep.RPS <= 0 {
		t.Fatalf("rps = %v", rep.RPS)
	}
	if rep.P50ms <= 0 || rep.P50ms > rep.P95ms || rep.P95ms > rep.P99ms || rep.P99ms > rep.MaxMs {
		t.Fatalf("inconsistent percentiles: p50=%v p95=%v p99=%v max=%v",
			rep.P50ms, rep.P95ms, rep.P99ms, rep.MaxMs)
	}
	for _, name := range []string{"sparql-concepts", "walk-players-teams"} {
		st, ok := rep.PerOp[name]
		if !ok || st.Count == 0 {
			t.Fatalf("op %s never ran: %+v", name, rep.PerOp)
		}
		if st.Errors != 0 {
			t.Fatalf("op %s: %d errors", name, st.Errors)
		}
	}
}

// TestQuantile pins the nearest-rank indexing on tiny sample sets.
func TestQuantile(t *testing.T) {
	s := []time.Duration{1, 2, 3, 4}
	if q := quantile(s, 0.50); q != 2 {
		t.Fatalf("p50 = %v", q)
	}
	if q := quantile(s, 0.99); q != 3 {
		t.Fatalf("p99 = %v", q)
	}
	if q := quantile(nil, 0.5); q != 0 {
		t.Fatalf("empty = %v", q)
	}
}

// TestScrapeDuringLoad pins the serving loop's observability contract:
// after a load window the server's /metrics exposes nonzero request
// latency histograms, the SPARQL plan cache reports hits (the workload
// repeats two queries, so all but the first compile must hit), and the
// report carries interpolated server-side percentiles.
func TestScrapeDuringLoad(t *testing.T) {
	f := usecase.MustNew()
	srv := httptest.NewServer(rest.NewServer(mdm.FromParts(f.Ont, f.Reg)))
	defer srv.Close()

	rep, err := run(config{
		base:     srv.URL,
		clients:  2,
		duration: 300 * time.Millisecond,
		walkFrac: 0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	text, err := scrapeMetrics(srv.Client(), srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	h := parseHistogram(text, "mdm_http_request_duration_seconds")
	if h == nil || h.total == 0 {
		t.Fatal("request duration histogram empty after load")
	}
	if hits := counterValue(text, "mdm_sparql_plan_cache_total"); hits == 0 {
		t.Error("plan cache counters all zero after repeated queries")
	}
	if stages := parseHistogram(text, "mdm_sparql_stage_duration_seconds"); stages == nil {
		t.Error("SPARQL stage duration histogram empty after load")
	}
	if rep.ServerP50ms <= 0 || rep.ServerP50ms > rep.ServerP95ms || rep.ServerP95ms > rep.ServerP99ms {
		t.Errorf("server percentiles inconsistent: p50=%v p95=%v p99=%v",
			rep.ServerP50ms, rep.ServerP95ms, rep.ServerP99ms)
	}
}

// TestHistogramQuantileInterpolation pins the bucket math on a
// hand-built exposition.
func TestHistogramQuantileInterpolation(t *testing.T) {
	text := `# TYPE x_seconds histogram
x_seconds_bucket{endpoint="a",le="0.1"} 50
x_seconds_bucket{endpoint="a",le="0.2"} 100
x_seconds_bucket{endpoint="a",le="+Inf"} 100
x_seconds_bucket{endpoint="b",le="0.1"} 0
x_seconds_bucket{endpoint="b",le="0.2"} 100
x_seconds_bucket{endpoint="b",le="+Inf"} 100
x_seconds_sum{endpoint="a"} 10
x_seconds_count{endpoint="a"} 100
`
	h := parseHistogram(text, "x_seconds")
	if h == nil {
		t.Fatal("histogram not parsed")
	}
	if h.total != 200 {
		t.Fatalf("total = %d, want 200", h.total)
	}
	// Rank 100 of 200 sits at the 50/200 cumulative boundary of the
	// first bucket (50) and crosses inside the second: 0.1 + 0.1*(50/150).
	got := h.quantileSeconds(0.5)
	want := 0.1 + 0.1*(50.0/150.0)
	if diff := got - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("q50 = %v, want %v", got, want)
	}
	// p100 crosses +Inf: clamps to the highest finite bound.
	if got := h.quantileSeconds(1.0); got != 0.2 {
		t.Errorf("q100 = %v, want 0.2", got)
	}
	if v := counterValue(text, "x_seconds_count"); v != 100 {
		t.Errorf("counterValue = %v, want 100", v)
	}
}
