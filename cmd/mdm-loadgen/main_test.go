package main

import (
	"net/http/httptest"
	"testing"
	"time"

	"mdm"
	"mdm/internal/rest"
	"mdm/internal/usecase"
)

// TestRunAgainstSeededServer drives the whole closed loop against an
// in-process mdmd equivalent (seeded system behind the REST mux): every
// workload op must succeed and the report must be internally
// consistent. This pins the op bodies to the seed fixture — if either
// drifts, CI's serve-bench job would silently publish an all-error
// baseline.
func TestRunAgainstSeededServer(t *testing.T) {
	f := usecase.MustNew()
	srv := httptest.NewServer(rest.NewServer(mdm.FromParts(f.Ont, f.Reg)))
	defer srv.Close()

	rep, err := run(config{
		base:     srv.URL,
		clients:  4,
		duration: 500 * time.Millisecond,
		warmup:   100 * time.Millisecond,
		walkFrac: 0.5, // force both op families into the short window
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 {
		t.Fatal("no requests completed")
	}
	if rep.Errors != 0 {
		t.Fatalf("errors = %d of %d (workload drifted from the seed fixture?): %+v",
			rep.Errors, rep.Requests, rep.PerOp)
	}
	if rep.RPS <= 0 {
		t.Fatalf("rps = %v", rep.RPS)
	}
	if rep.P50ms <= 0 || rep.P50ms > rep.P95ms || rep.P95ms > rep.P99ms || rep.P99ms > rep.MaxMs {
		t.Fatalf("inconsistent percentiles: p50=%v p95=%v p99=%v max=%v",
			rep.P50ms, rep.P95ms, rep.P99ms, rep.MaxMs)
	}
	for _, name := range []string{"sparql-concepts", "walk-players-teams"} {
		st, ok := rep.PerOp[name]
		if !ok || st.Count == 0 {
			t.Fatalf("op %s never ran: %+v", name, rep.PerOp)
		}
		if st.Errors != 0 {
			t.Fatalf("op %s: %d errors", name, st.Errors)
		}
	}
}

// TestQuantile pins the nearest-rank indexing on tiny sample sets.
func TestQuantile(t *testing.T) {
	s := []time.Duration{1, 2, 3, 4}
	if q := quantile(s, 0.50); q != 2 {
		t.Fatalf("p50 = %v", q)
	}
	if q := quantile(s, 0.99); q != 3 {
		t.Fatalf("p99 = %v", q)
	}
	if q := quantile(nil, 0.5); q != 0 {
		t.Fatalf("empty = %v", q)
	}
}
