package main

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// Server-side latency: after the load window the generator scrapes the
// target's GET /metrics and derives p50/p95/p99 from the
// mdm_http_request_duration_seconds histogram (buckets aggregated
// across endpoints), so BENCH_serve.json carries both views — client
// latency including the network, and server handler latency from the
// Prometheus buckets.

// scrapeMetrics fetches the Prometheus text exposition.
func scrapeMetrics(client *http.Client, base string) (string, error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET /metrics: status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	return string(body), err
}

// scrapedHist is one histogram family aggregated across its label sets:
// cumulative counts per upper bound.
type scrapedHist struct {
	les   []float64 // sorted upper bounds, +Inf last
	cum   map[float64]uint64
	total uint64
}

// parseHistogram aggregates name's _bucket series from the exposition
// text. Returns nil if the family is absent or empty.
func parseHistogram(text, name string) *scrapedHist {
	h := &scrapedHist{cum: map[float64]uint64{}}
	prefix := name + "_bucket{"
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		le, ok := labelValue(line, "le")
		if !ok {
			continue
		}
		bound := math.Inf(1)
		if le != "+Inf" {
			v, err := strconv.ParseFloat(le, 64)
			if err != nil {
				continue
			}
			bound = v
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		n, err := strconv.ParseUint(line[sp+1:], 10, 64)
		if err != nil {
			continue
		}
		if _, seen := h.cum[bound]; !seen {
			h.les = append(h.les, bound)
		}
		h.cum[bound] += n
	}
	if len(h.les) == 0 {
		return nil
	}
	sort.Float64s(h.les)
	h.total = h.cum[math.Inf(1)]
	if h.total == 0 {
		return nil
	}
	return h
}

// labelValue extracts one label's value from a series line.
func labelValue(line, label string) (string, bool) {
	marker := label + `="`
	i := strings.Index(line, marker)
	if i < 0 {
		return "", false
	}
	rest := line[i+len(marker):]
	j := strings.IndexByte(rest, '"')
	if j < 0 {
		return "", false
	}
	return rest[:j], true
}

// quantileSeconds interpolates quantile q (0..1) from the cumulative
// buckets, Prometheus histogram_quantile style: linear within the
// bucket that crosses the target rank; the +Inf bucket clamps to the
// highest finite bound.
func (h *scrapedHist) quantileSeconds(q float64) float64 {
	target := q * float64(h.total)
	prevLe, prevCum := 0.0, uint64(0)
	for _, le := range h.les {
		cum := h.cum[le]
		if float64(cum) >= target {
			if math.IsInf(le, 1) {
				return prevLe
			}
			in := cum - prevCum
			if in == 0 {
				return le
			}
			return prevLe + (le-prevLe)*((target-float64(prevCum))/float64(in))
		}
		prevLe, prevCum = le, cum
	}
	return prevLe
}

// counterValue sums name's series (all label sets) from the exposition
// text; 0 if absent.
func counterValue(text, name string) float64 {
	var sum float64
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, name) {
			continue
		}
		rest := line[len(name):]
		if rest != "" && rest[0] != '{' && rest[0] != ' ' {
			continue // longer metric name sharing the prefix
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		if v, err := strconv.ParseFloat(line[sp+1:], 64); err == nil {
			sum += v
		}
	}
	return sum
}
