// Command mdmctl is a CLI client for the mdmd REST service: the steward
// and analyst interactions of paper §2 from the terminal.
//
// Usage:
//
//	mdmctl [-server http://localhost:8085] <command> [args]
//
// Commands:
//
//	stats                              ontology statistics
//	validate                           run integrity checks
//	render global|source|mappings      Figure 5/6/7 renderings
//	export                             dump the ontology as TriG
//	prefix  <prefix> <namespace>       bind a prefix
//	concept <iri> [label]              declare a concept
//	feature <iri> [label]              declare a feature
//	attach  <concept> <feature>        attach a feature to its concept
//	id      <feature>                  mark a feature as identifier
//	relate  <from> <property> <to>     relate two concepts
//	source  <id> [label]               declare a data source
//	wrapper <name> <source> <url> [from=to ...]   register an HTTP wrapper
//	wrappers                           list wrappers
//	releases                           show the release log
//	drift   <wrapper>                  probe a wrapper for schema drift
//	mapping <file.json>                define a LAV mapping from JSON
//	suggest <newWrapper> <fromWrapper> print a suggested mapping as JSON
//	query   [flags] <file.json>        run a walk from JSON
//	walks                              list saved walks
//	run     [flags] <walk>             run a saved walk by name
//	sparql  [flags] <query>            run SPARQL over the metadata
//	explain <query>                    run a metadata SPARQL query and
//	                                   print its execution report (stage
//	                                   timings, per-operator spans, plan
//	                                   summary) instead of rows
//	compact                            force a full storage compaction
//
// query, run and sparql accept paging/streaming flags, mapped to the
// REST query parameters:
//
//	-limit N    page size (pushed into evaluation — for walks, into the
//	            streaming federated pipeline)
//	-offset N   rows to skip (the cursor position)
//	-ndjson     stream NDJSON rows to stdout as the server produces them
//	-partial    (query and run) accept a degraded answer when a source
//	            is down: healthy sources' rows are returned and a
//	            warning naming the annotation is printed to stderr
//
// The JSON formats of mapping and query match the REST API bodies
// (POST /api/mappings and POST /api/query).
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"strings"
)

func main() {
	args := os.Args[1:]
	server := "http://localhost:8085"
	if len(args) >= 2 && args[0] == "-server" {
		server = args[1]
		args = args[2:]
	}
	if len(args) == 0 {
		fail("missing command; see -h in source docs")
	}
	c := &client{base: server}
	if err := c.run(args[0], args[1:]); err != nil {
		fail(err.Error())
	}
}

func fail(msg string) {
	fmt.Fprintln(os.Stderr, "mdmctl:", msg)
	os.Exit(1)
}

type client struct{ base string }

func (c *client) run(cmd string, args []string) error {
	switch cmd {
	case "stats":
		return c.getJSON("/api/stats")
	case "validate":
		return c.getJSON("/api/validate")
	case "render":
		if len(args) != 1 {
			return fmt.Errorf("render needs global|source|mappings")
		}
		return c.getText("/api/render/" + args[0])
	case "export":
		return c.getRaw("/api/export")
	case "prefix":
		if len(args) != 2 {
			return fmt.Errorf("prefix <prefix> <namespace>")
		}
		return c.post("/api/prefixes", map[string]string{"prefix": args[0], "namespace": args[1]})
	case "concept", "feature":
		if len(args) < 1 {
			return fmt.Errorf("%s <iri> [label]", cmd)
		}
		label := ""
		if len(args) > 1 {
			label = args[1]
		}
		return c.post("/api/global/"+cmd+"s", map[string]string{"iri": args[0], "label": label})
	case "attach":
		if len(args) != 2 {
			return fmt.Errorf("attach <concept> <feature>")
		}
		return c.post("/api/global/attach", map[string]string{"concept": args[0], "feature": args[1]})
	case "id":
		if len(args) != 1 {
			return fmt.Errorf("id <feature>")
		}
		return c.post("/api/global/identifiers", map[string]string{"feature": args[0]})
	case "relate":
		if len(args) != 3 {
			return fmt.Errorf("relate <from> <property> <to>")
		}
		return c.post("/api/global/relations",
			map[string]string{"from": args[0], "property": args[1], "to": args[2]})
	case "source":
		if len(args) < 1 {
			return fmt.Errorf("source <id> [label]")
		}
		label := ""
		if len(args) > 1 {
			label = args[1]
		}
		return c.post("/api/sources", map[string]string{"id": args[0], "label": label})
	case "wrapper":
		if len(args) < 3 {
			return fmt.Errorf("wrapper <name> <source> <url> [from=to ...]")
		}
		renames := map[string]string{}
		for _, kv := range args[3:] {
			parts := strings.SplitN(kv, "=", 2)
			if len(parts) != 2 {
				return fmt.Errorf("bad rename %q (want from=to)", kv)
			}
			renames[parts[0]] = parts[1]
		}
		body := map[string]any{"name": args[0], "source": args[1], "url": args[2]}
		if len(renames) > 0 {
			body["renames"] = renames
		}
		return c.post("/api/wrappers", body)
	case "wrappers":
		return c.getJSON("/api/wrappers")
	case "releases":
		return c.getJSON("/api/releases")
	case "drift":
		if len(args) != 1 {
			return fmt.Errorf("drift <wrapper>")
		}
		return c.getJSON("/api/drift/" + args[0])
	case "mapping":
		if len(args) != 1 {
			return fmt.Errorf("mapping <file.json>")
		}
		return c.postFile("/api/mappings", args[0])
	case "suggest":
		if len(args) != 2 {
			return fmt.Errorf("suggest <newWrapper> <fromWrapper>")
		}
		return c.getJSON("/api/mappings/" + args[0] + "/suggest?from=" + args[1])
	case "query":
		params, rest, err := pageFlags(args)
		if err != nil {
			return err
		}
		if len(rest) != 1 {
			return fmt.Errorf("query [-limit N] [-offset N] [-ndjson] [-partial] <file.json>")
		}
		return c.postFile("/api/query"+params, rest[0])
	case "walks":
		return c.getJSON("/api/walks")
	case "run":
		params, rest, err := pageFlags(args)
		if err != nil {
			return err
		}
		if len(rest) != 1 {
			return fmt.Errorf("run [-limit N] [-offset N] [-ndjson] [-partial] <walk>")
		}
		return c.post("/api/walks/"+url.PathEscape(rest[0])+"/run"+params, map[string]string{})
	case "sparql":
		params, rest, err := pageFlags(args)
		if err != nil {
			return err
		}
		if len(rest) != 1 {
			return fmt.Errorf("sparql [-limit N] [-offset N] [-ndjson] <query>")
		}
		return c.post("/api/sparql"+params, map[string]string{"query": rest[0]})
	case "explain":
		if len(args) != 1 {
			return fmt.Errorf("explain <query>")
		}
		return c.post("/api/sparql?explain=1", map[string]string{"query": args[0]})
	case "compact":
		return c.post("/api/admin/compact", map[string]string{})
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// pageFlags strips -limit/-offset/-ndjson from the front of args and
// returns them encoded as REST query parameters plus the remaining
// arguments.
func pageFlags(args []string) (params string, rest []string, err error) {
	q := url.Values{}
	for len(args) > 0 {
		switch args[0] {
		case "-limit", "-offset":
			if len(args) < 2 {
				return "", nil, fmt.Errorf("%s needs a number", args[0])
			}
			if _, err := strconv.Atoi(args[1]); err != nil {
				return "", nil, fmt.Errorf("%s %q: not a number", args[0], args[1])
			}
			q.Set(strings.TrimPrefix(args[0], "-"), args[1])
			args = args[2:]
		case "-ndjson":
			q.Set("format", "ndjson")
			args = args[1:]
		case "-partial":
			q.Set("partial", "1")
			args = args[1:]
		default:
			if strings.HasPrefix(args[0], "-") {
				return "", nil, fmt.Errorf("unknown flag %q", args[0])
			}
			if len(q) > 0 {
				params = "?" + q.Encode()
			}
			return params, args, nil
		}
	}
	if len(q) > 0 {
		params = "?" + q.Encode()
	}
	return params, args, nil
}

func (c *client) getJSON(path string) error {
	resp, err := http.Get(c.base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return pretty(resp.Body, resp.StatusCode)
}

func (c *client) getText(path string) error {
	resp, err := http.Get(c.base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var out struct {
		Text  string `json:"text"`
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return err
	}
	if out.Error != "" {
		return fmt.Errorf("%s", out.Error)
	}
	fmt.Print(out.Text)
	return nil
}

func (c *client) getRaw(path string) error {
	resp, err := http.Get(c.base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, err = io.Copy(os.Stdout, resp.Body)
	return err
}

func (c *client) post(path string, body any) error {
	b, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := http.Post(c.base+path, "application/json", bytes.NewReader(b))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	warnPartial(resp)
	if isNDJSON(resp) {
		_, err = io.Copy(os.Stdout, resp.Body)
		return err
	}
	return pretty(resp.Body, resp.StatusCode)
}

func (c *client) postFile(path, file string) error {
	data, err := os.ReadFile(file)
	if err != nil {
		return err
	}
	resp, err := http.Post(c.base+path, "application/json", bytes.NewReader(data))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	warnPartial(resp)
	if isNDJSON(resp) {
		_, err = io.Copy(os.Stdout, resp.Body)
		return err
	}
	return pretty(resp.Body, resp.StatusCode)
}

// warnPartial flags a degraded answer on stderr so scripts piping
// stdout still see the completeness loss (details are in the body's
// missing_sources/stale_sources annotation).
func warnPartial(resp *http.Response) {
	if resp.Header.Get("X-MDM-Partial") == "true" {
		fmt.Fprintln(os.Stderr, "mdmctl: warning: partial result — some sources missing or stale (see missing_sources/stale_sources)")
	}
}

// isNDJSON reports a streaming response; rows are copied to stdout as
// they arrive instead of being buffered for pretty-printing.
func isNDJSON(resp *http.Response) bool {
	return resp.Header.Get("Content-Type") == "application/x-ndjson"
}

// pretty re-indents the JSON response; table-shaped query answers render
// as aligned text.
func pretty(r io.Reader, status int) error {
	data, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	var generic map[string]any
	if err := json.Unmarshal(data, &generic); err == nil {
		if errMsg, ok := generic["error"].(string); ok && errMsg != "" {
			return fmt.Errorf("server (%d): %s", status, errMsg)
		}
		if cols, ok := generic["columns"].([]any); ok {
			if rows, ok := generic["rows"].([]any); ok {
				printTable(cols, rows)
				if sparqlText, ok := generic["sparql"].(string); ok {
					fmt.Println("\n-- SPARQL --")
					fmt.Println(sparqlText)
				}
				if alg, ok := generic["algebra"].([]any); ok {
					fmt.Println("-- Relational algebra --")
					for _, a := range alg {
						fmt.Println(" ", a)
					}
				}
				return nil
			}
		}
	}
	var buf bytes.Buffer
	if err := json.Indent(&buf, data, "", "  "); err != nil {
		fmt.Println(string(data))
		return nil
	}
	fmt.Println(buf.String())
	return nil
}

func printTable(cols, rows []any) {
	widths := make([]int, len(cols))
	header := make([]string, len(cols))
	for i, c := range cols {
		header[i] = fmt.Sprint(c)
		widths[i] = len(header[i])
	}
	cells := make([][]string, len(rows))
	for ri, r := range rows {
		row := r.([]any)
		cells[ri] = make([]string, len(row))
		for i, cell := range row {
			cells[ri][i] = fmt.Sprint(cell)
			if i < len(widths) && len(cells[ri][i]) > widths[i] {
				widths[i] = len(cells[ri][i])
			}
		}
	}
	for i, h := range header {
		fmt.Printf("%-*s  ", widths[i], h)
	}
	fmt.Println()
	for i := range header {
		fmt.Print(strings.Repeat("-", widths[i]) + "  ")
	}
	fmt.Println()
	for _, row := range cells {
		for i, cell := range row {
			if i < len(widths) {
				fmt.Printf("%-*s  ", widths[i], cell)
			}
		}
		fmt.Println()
	}
}
