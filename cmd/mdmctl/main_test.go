package main

import (
	"net/http/httptest"
	"strings"
	"testing"

	"mdm"
	"mdm/internal/rest"
	"mdm/internal/usecase"
)

// startBackend boots a seeded MDM REST server for client-command tests.
func startBackend(t *testing.T) *client {
	t.Helper()
	f := usecase.MustNew()
	srv := httptest.NewServer(rest.NewServer(mdm.FromParts(f.Ont, f.Reg)))
	t.Cleanup(srv.Close)
	return &client{base: srv.URL}
}

func TestClientCommandsAgainstLiveBackend(t *testing.T) {
	c := startBackend(t)
	ok := [][]string{
		{"stats"},
		{"validate"},
		{"render", "global"},
		{"render", "source"},
		{"render", "mappings"},
		{"export"},
		{"wrappers"},
		{"releases"},
		{"drift", "w1"},
		{"prefix", "zz", "http://zz.org/"},
		{"concept", "zz:Thing", "Thing"},
		{"feature", "zz:thingId", ""},
		{"attach", "zz:Thing", "zz:thingId"},
		{"id", "zz:thingId"},
		{"source", "zz-api", "ZZ API"},
		{"sparql", "ASK { ?s ?p ?o . }"},
		{"walks"},
	}
	for _, args := range ok {
		if err := c.run(args[0], args[1:]); err != nil {
			t.Errorf("%v: %v", args, err)
		}
	}
}

func TestClientCommandArgValidation(t *testing.T) {
	c := startBackend(t)
	bad := [][]string{
		{"render"},
		{"prefix", "only-one"},
		{"attach", "one"},
		{"id"},
		{"relate", "a", "b"},
		{"source"},
		{"wrapper", "w", "s"},
		{"wrapper", "w", "s", "http://x", "notakv"},
		{"drift"},
		{"mapping"},
		{"suggest", "one"},
		{"query"},
		{"sparql"},
		{"run"},
		{"nosuchcommand"},
	}
	for _, args := range bad {
		if err := c.run(args[0], args[1:]); err == nil {
			t.Errorf("%v: expected usage error", args)
		}
	}
}

func TestClientServerErrorSurfaces(t *testing.T) {
	c := startBackend(t)
	err := c.run("drift", []string{"ghost"})
	if err == nil || !strings.Contains(err.Error(), "server") {
		t.Errorf("drift ghost err = %v", err)
	}
	// A mapping for an unknown wrapper is rejected server-side (422).
	err = c.run("suggest", []string{"ghost", "w1"})
	if err == nil {
		t.Error("suggest for unknown wrapper should fail server-side")
	}
}

func TestPrintTableAlignment(t *testing.T) {
	// Just exercise the rendering helpers for panics/shape.
	printTable(
		[]any{"a", "longer"},
		[]any{[]any{"1", "2"}, []any{"333333", "4"}},
	)
}

func TestPageFlags(t *testing.T) {
	cases := []struct {
		args   []string
		params string
		rest   int
		err    bool
	}{
		{[]string{"q.json"}, "", 1, false},
		{[]string{"-limit", "10", "q.json"}, "?limit=10", 1, false},
		{[]string{"-limit", "10", "-offset", "5", "-ndjson", "q"}, "?format=ndjson&limit=10&offset=5", 1, false},
		{[]string{"-ndjson", "q"}, "?format=ndjson", 1, false},
		{[]string{"-limit", "x", "q"}, "", 0, true},
		{[]string{"-limit"}, "", 0, true},
		{[]string{"-bogus", "q"}, "", 0, true},
	}
	for _, tc := range cases {
		params, rest, err := pageFlags(tc.args)
		if (err != nil) != tc.err {
			t.Fatalf("pageFlags(%v) err = %v", tc.args, err)
		}
		if err != nil {
			continue
		}
		if params != tc.params || len(rest) != tc.rest {
			t.Errorf("pageFlags(%v) = %q, %v", tc.args, params, rest)
		}
	}
}
