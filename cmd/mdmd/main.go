// Command mdmd runs the MDM backend: the REST service that the original
// tool's Node.JS frontend talked to (paper §2.5), here self-contained.
//
// Usage:
//
//	mdmd [-addr :8085] [-data DIR] [-seed] [-simulate]
//	     [-fanout N] [-source-timeout D] [-source-cache-ttl D]
//
//	-addr      listen address
//	-data      persistence directory; the ontology dataset is loaded at
//	           startup and snapshotted on shutdown and periodically
//	-seed      preload the paper's football use case (in-memory wrappers)
//	-simulate  also start the simulated football REST provider and print
//	           its URL (endpoints for players/teams/leagues/countries)
//
// Federated execution knobs (see internal/federate):
//
//	-fanout N             max concurrent source fetches per walk (default 8)
//	-source-timeout D     per-source fetch deadline (default 30s)
//	-source-cache-ttl D   source-snapshot reuse window; 0 (default)
//	                      dedups concurrent fetches without reusing
//	                      completed snapshots
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"mdm"
	"mdm/internal/apisim"
	"mdm/internal/federate"
	"mdm/internal/rest"
	"mdm/internal/usecase"
)

func main() {
	addr := flag.String("addr", ":8085", "listen address")
	dataDir := flag.String("data", "", "persistence directory (empty = in-memory)")
	seed := flag.Bool("seed", false, "preload the football demo fixture")
	simulate := flag.Bool("simulate", false, "start the simulated football provider")
	fanout := flag.Int("fanout", federate.DefaultParallel, "max concurrent source fetches per walk")
	sourceTimeout := flag.Duration("source-timeout", federate.DefaultSourceTimeout, "per-source fetch deadline")
	cacheTTL := flag.Duration("source-cache-ttl", 0, "source-snapshot reuse window (0 = dedup only)")
	flag.Parse()

	sys, err := buildSystem(*dataDir, *seed)
	if err != nil {
		log.Fatalf("mdmd: %v", err)
	}
	fed := sys.Federation()
	fed.Parallel = *fanout
	fed.SourceTimeout = *sourceTimeout
	fed.Cache = federate.NewCache(*cacheTTL)

	if *simulate {
		provider := apisim.NewFootball()
		defer provider.Close()
		log.Printf("mdmd: simulated football provider at %s", provider.URL())
		log.Printf("mdmd:   endpoints: /v1/players /v2/players /v1/teams /v1/leagues /v1/league-teams /v1/countries")
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           rest.NewServer(sys),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("mdmd: listening on %s (seeded=%v, data=%q)", *addr, *seed, *dataDir)

	// Periodic snapshots when persistent.
	if *dataDir != "" {
		go func() {
			t := time.NewTicker(30 * time.Second)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					if err := persist(sys, *dataDir); err != nil {
						log.Printf("mdmd: snapshot: %v", err)
					}
				}
			}
		}()
	}

	select {
	case <-ctx.Done():
		log.Print("mdmd: shutting down")
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("mdmd: serve: %v", err)
		}
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = srv.Shutdown(shutdownCtx)
	if *dataDir != "" {
		if err := persist(sys, *dataDir); err != nil {
			log.Printf("mdmd: final snapshot: %v", err)
		}
	}
}

// buildSystem assembles the system, loading a previous snapshot when the
// data directory holds one.
func buildSystem(dataDir string, seed bool) (*mdm.System, error) {
	if dataDir != "" {
		snap := filepath.Join(dataDir, "ontology.trig")
		if data, err := os.ReadFile(snap); err == nil {
			log.Printf("mdmd: loading snapshot %s", snap)
			sys, err := mdm.ImportTriG(string(data))
			if err != nil {
				return nil, err
			}
			// Wrappers are live code and cannot be restored from a
			// snapshot; the steward re-registers them over the API.
			log.Print("mdmd: note: wrappers must be re-registered after a restart")
			return sys, nil
		}
	}
	if seed {
		f, err := usecase.New()
		if err != nil {
			return nil, err
		}
		sys := mdm.FromParts(f.Ont, f.Reg)
		return sys, nil
	}
	return mdm.New(), nil
}

func persist(sys *mdm.System, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp := filepath.Join(dir, "ontology.trig.tmp")
	if err := os.WriteFile(tmp, []byte(sys.ExportTriG()), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, "ontology.trig"))
}
