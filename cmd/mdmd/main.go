// Command mdmd runs the MDM backend: the REST service that the original
// tool's Node.JS frontend talked to (paper §2.5), here self-contained.
//
// Usage:
//
//	mdmd [-addr :8085] [-data DIR] [-seed] [-simulate]
//	     [-fsync MODE] [-fsync-interval D]
//	     [-compact-interval D] [-compact-wal-threshold N]
//	     [-fanout N] [-source-timeout D] [-source-cache-ttl D]
//	     [-retries N] [-breaker-threshold N] [-breaker-cooldown D]
//	     [-partial] [-serve-stale] [-drain-timeout D]
//	     [-slow-query-threshold D] [-slow-query-log PATH]
//	     [-debug-addr ADDR]
//
//	-addr      listen address
//	-data      persistence directory; the ontology dataset lives in a
//	           segment store under DIR/ontology (WAL tail + immutable
//	           segments; see docs/STORAGE.md). A DIR/ontology.trig file
//	           from an older deployment is migrated on first start.
//	-seed      preload the paper's football use case (in-memory wrappers;
//	           the seeded system stays in-memory and, with -data, is
//	           snapshotted as ontology.trig for migration on restart)
//	-simulate  also start the simulated football REST provider and print
//	           its URL (endpoints for players/teams/leagues/countries)
//
// Storage engine knobs (see internal/tdb and docs/STORAGE.md):
//
//	-fsync MODE           WAL durability: "none" (default; flush to the
//	                      OS on every append, no fsync), "always" (fsync
//	                      per append), or "batch" (background fsync every
//	                      -fsync-interval)
//	-fsync-interval D     batched fsync window for -fsync=batch
//	                      (default 5ms)
//	-compact-interval D   background storage maintenance tick: seals WAL
//	                      tails into segments and garbage-collects the
//	                      term dictionary (default 1m; 0 disables)
//	-compact-wal-threshold N  WAL records that trigger a background
//	                      checkpoint at the next tick (default 4096)
//
// Federated execution knobs (see internal/federate):
//
//	-fanout N             max concurrent source fetches per walk (default 8)
//	-source-timeout D     per-source fetch deadline (default 30s)
//	-source-cache-ttl D   source-snapshot reuse window; 0 (default)
//	                      dedups concurrent fetches without reusing
//	                      completed snapshots
//
// Federation resilience knobs (see docs/ARCHITECTURE.md, "Federation
// resilience"):
//
//	-retries N            retries per source fetch after the first
//	                      attempt, with jittered exponential backoff
//	                      (default 2; 0 disables)
//	-breaker-threshold N  consecutive source-fault failures that trip a
//	                      source's circuit breaker (default 5)
//	-breaker-cooldown D   how long a tripped breaker fails fast before
//	                      letting one probe through (default 10s)
//	-partial              serve degraded walk answers by default: a
//	                      failed source is annotated instead of failing
//	                      the query (clients override per query with
//	                      ?partial=0/1)
//	-serve-stale          in partial mode, substitute a source's last
//	                      good snapshot (marked stale) instead of
//	                      dropping its rows
//
// Observability knobs (see docs/OBSERVABILITY.md; Prometheus metrics
// are always on at GET /metrics on the API port):
//
//	-slow-query-threshold D  queries slower than D emit one structured
//	                      JSON line to the slow-query log (default
//	                      250ms; 0 logs every query)
//	-slow-query-log PATH  slow-query log file, size-rotated as
//	                      PATH → PATH.1 → PATH.2 (default: stderr)
//	-debug-addr ADDR      serve net/http/pprof on a separate listener
//	                      (e.g. localhost:6060); off by default and
//	                      kept off the API port on purpose
//
// Lifecycle:
//
//	-drain-timeout D      on SIGINT/SIGTERM, wait up to D for in-flight
//	                      requests (including streaming NDJSON walks) to
//	                      complete before exiting (default 10s)
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"mdm"
	"mdm/internal/apisim"
	"mdm/internal/federate"
	"mdm/internal/obs"
	"mdm/internal/rest"
	"mdm/internal/sparql"
	"mdm/internal/tdb"
	"mdm/internal/usecase"
)

func main() {
	addr := flag.String("addr", ":8085", "listen address")
	dataDir := flag.String("data", "", "persistence directory (empty = in-memory)")
	seed := flag.Bool("seed", false, "preload the football demo fixture")
	simulate := flag.Bool("simulate", false, "start the simulated football provider")
	fsyncMode := flag.String("fsync", "none", `WAL fsync mode: "none", "always" or "batch"`)
	fsyncInterval := flag.Duration("fsync-interval", 5*time.Millisecond, "batched fsync window (-fsync=batch)")
	compactInterval := flag.Duration("compact-interval", time.Minute, "background storage maintenance tick (0 = disabled)")
	compactWALThreshold := flag.Int("compact-wal-threshold", 4096, "WAL records that trigger a background checkpoint")
	fanout := flag.Int("fanout", federate.DefaultParallel, "max concurrent source fetches per walk")
	sourceTimeout := flag.Duration("source-timeout", federate.DefaultSourceTimeout, "per-source fetch deadline")
	cacheTTL := flag.Duration("source-cache-ttl", 0, "source-snapshot reuse window (0 = dedup only)")
	retries := flag.Int("retries", federate.DefaultRetries, "retries per source fetch (0 = single attempt)")
	breakerThreshold := flag.Int("breaker-threshold", federate.DefaultBreakerThreshold, "consecutive failures that trip a source's circuit breaker")
	breakerCooldown := flag.Duration("breaker-cooldown", federate.DefaultBreakerCooldown, "open-breaker fail-fast window before a probe")
	partial := flag.Bool("partial", false, "degrade walks on source failure by default (annotate instead of fail)")
	serveStale := flag.Bool("serve-stale", false, "in partial mode, substitute a source's last good snapshot")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "in-flight request drain window on shutdown")
	parallel := flag.Int("parallel", 0, "SPARQL join worker budget (0 = GOMAXPROCS-derived, 1 = sequential)")
	slowThreshold := flag.Duration("slow-query-threshold", 250*time.Millisecond, "queries slower than this are written to the slow-query log")
	slowLogPath := flag.String("slow-query-log", "", "slow-query log file, size-rotated (empty = stderr)")
	debugAddr := flag.String("debug-addr", "", "separate listener for net/http/pprof (empty = disabled)")
	flag.Parse()

	sparql.SetParallelism(*parallel)
	storeOpts := mdm.StoreOptions{
		SyncInterval:        *fsyncInterval,
		CompactInterval:     *compactInterval,
		CompactWALThreshold: *compactWALThreshold,
	}
	switch *fsyncMode {
	case "none":
		storeOpts.Sync = tdb.SyncNone
	case "always":
		storeOpts.Sync = tdb.SyncAlways
	case "batch":
		storeOpts.Sync = tdb.SyncBatch
	default:
		log.Fatalf("mdmd: -fsync %q: want none, always or batch", *fsyncMode)
	}
	sys, err := buildSystem(*dataDir, *seed, storeOpts)
	if err != nil {
		log.Fatalf("mdmd: %v", err)
	}
	fed := sys.Federation()
	fed.Parallel = *fanout
	fed.SourceTimeout = *sourceTimeout
	fed.Cache = federate.NewCache(*cacheTTL)
	fed.Retry.Max = *retries
	fed.Breakers = federate.NewBreakerSet(*breakerThreshold, *breakerCooldown)
	fed.PartialResults = *partial
	fed.ServeStale = *serveStale
	// Per-source breaker states next to the transition counters on
	// GET /debug/vars (main runs once, so the Publish cannot collide).
	expvar.Publish("mdm.federate.breaker.states",
		expvar.Func(func() any { return fed.Breakers.States() }))

	if *simulate {
		provider := apisim.NewFootball()
		defer provider.Close()
		log.Printf("mdmd: simulated football provider at %s", provider.URL())
		log.Printf("mdmd:   endpoints: /v1/players /v2/players /v1/teams /v1/leagues /v1/league-teams /v1/countries")
	}

	api := rest.NewServer(sys)
	if *slowLogPath != "" {
		slog, err := obs.NewSlowLog(*slowLogPath, *slowThreshold)
		if err != nil {
			log.Fatalf("mdmd: %v", err)
		}
		defer slog.Close()
		api.SlowLog = slog
	} else {
		api.SlowLog = obs.NewSlowLogWriter(os.Stderr, *slowThreshold)
	}

	// pprof stays off the API port: it leaks heap contents and stack
	// traces, so it only appears on an operator-chosen debug listener.
	if *debugAddr != "" {
		go func() {
			debugMux := http.NewServeMux()
			debugMux.HandleFunc("/debug/pprof/", pprof.Index)
			debugMux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			debugMux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			debugMux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			debugMux.HandleFunc("/debug/pprof/trace", pprof.Trace)
			log.Printf("mdmd: pprof listening on %s", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, debugMux); err != nil {
				log.Printf("mdmd: debug listener: %v", err)
			}
		}()
	}

	srv := &http.Server{
		Handler:           api,
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("mdmd: listen: %v", err)
	}
	log.Printf("mdmd: listening on %s (seeded=%v, data=%q)", *addr, *seed, *dataDir)

	// Storage-backed systems (-data without -seed) persist through the
	// segment store's WAL and background compactor; the legacy TriG
	// snapshot ticker only serves the in-memory seeded fixture.
	if *dataDir != "" && sys.Storage() == nil {
		go func() {
			t := time.NewTicker(30 * time.Second)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					if err := persist(sys, *dataDir); err != nil {
						log.Printf("mdmd: snapshot: %v", err)
					}
				}
			}
		}()
	}

	if err := serveWithDrain(ctx, srv, ln, *drainTimeout); err != nil {
		log.Fatalf("mdmd: serve: %v", err)
	}
	if sys.Storage() != nil {
		if err := sys.Close(); err != nil {
			log.Printf("mdmd: close: %v", err)
		}
	} else if *dataDir != "" {
		if err := persist(sys, *dataDir); err != nil {
			log.Printf("mdmd: final snapshot: %v", err)
		}
	}
}

// serveWithDrain serves on ln until ctx is canceled (SIGINT/SIGTERM),
// then drains: the listener closes immediately, but in-flight requests
// — including streaming NDJSON walks, whose request contexts
// http.Server.Shutdown deliberately does not cancel — get up to drain
// to complete. Requests still running after the window are aborted.
func serveWithDrain(ctx context.Context, srv *http.Server, ln net.Listener, drain time.Duration) error {
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	select {
	case err := <-errCh:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
		log.Printf("mdmd: shutting down (draining up to %v)", drain)
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		// Drain window expired with requests still running: cut them.
		_ = srv.Close()
		return nil
	}
	return nil
}

// buildSystem assembles the system. A data directory (without -seed)
// opens the persistent segment store, migrating a legacy ontology.trig
// snapshot on first start. The seeded fixture stays in-memory: its
// wrappers are live closures that cannot be persisted.
func buildSystem(dataDir string, seed bool, opts mdm.StoreOptions) (*mdm.System, error) {
	if seed {
		f, err := usecase.New()
		if err != nil {
			return nil, err
		}
		return mdm.FromParts(f.Ont, f.Reg), nil
	}
	if dataDir != "" {
		sys, err := mdm.OpenWith(dataDir, opts)
		if err != nil {
			return nil, err
		}
		// Wrappers are live code and cannot be restored from storage;
		// the steward re-registers them over the API.
		log.Print("mdmd: note: wrappers must be re-registered after a restart")
		return sys, nil
	}
	return mdm.New(), nil
}

func persist(sys *mdm.System, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp := filepath.Join(dir, "ontology.trig.tmp")
	if err := os.WriteFile(tmp, []byte(sys.ExportTriG()), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, "ontology.trig"))
}
