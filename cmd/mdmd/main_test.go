package main

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mdm"
)

func TestBuildSystemFresh(t *testing.T) {
	sys, err := buildSystem("", false, mdm.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Stats().Concepts != 0 {
		t.Error("fresh system not empty")
	}
}

func TestBuildSystemSeeded(t *testing.T) {
	sys, err := buildSystem("", true, mdm.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	st := sys.Stats()
	if st.Concepts != 4 || st.Wrappers != 6 {
		t.Errorf("seeded stats = %+v", st)
	}
	if v := sys.Validate(); len(v) != 0 {
		t.Errorf("seeded system inconsistent: %v", v)
	}
}

func TestPersistAndReload(t *testing.T) {
	dir := t.TempDir()
	sys, err := buildSystem("", true, mdm.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := persist(sys, dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "ontology.trig")); err != nil {
		t.Fatal(err)
	}
	// Reload from the snapshot.
	sys2, err := buildSystem(dir, false, mdm.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	st1, st2 := sys.Stats(), sys2.Stats()
	if st1.Concepts != st2.Concepts || st1.Mappings != st2.Mappings {
		t.Errorf("reloaded stats differ: %+v vs %+v", st1, st2)
	}
}

func TestBuildSystemCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "ontology.trig"), []byte("bad <"), 0o644)
	if _, err := buildSystem(dir, false, mdm.StoreOptions{}); err == nil {
		t.Error("corrupt snapshot accepted")
	}
}

// TestServeWithDrainCompletesInFlight: SIGINT (ctx cancellation) while
// a streaming response is mid-flight closes the listener but lets the
// stream finish inside the drain window.
func TestServeWithDrainCompletesInFlight(t *testing.T) {
	started := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/stream", func(w http.ResponseWriter, r *http.Request) {
		fl := w.(http.Flusher)
		w.Header().Set("Content-Type", "application/x-ndjson")
		for i := 0; i < 5; i++ {
			fmt.Fprintf(w, "{\"row\":%d}\n", i)
			fl.Flush()
			if i == 0 {
				close(started) // first chunk is out; trigger shutdown now
			}
			time.Sleep(20 * time.Millisecond)
		}
	})
	srv := &http.Server{Handler: mux}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- serveWithDrain(ctx, srv, ln, 5*time.Second) }()

	resp, err := http.Get("http://" + ln.Addr().String() + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	<-started
	cancel() // the SIGINT

	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("stream aborted during drain: %v", err)
	}
	if got := strings.Count(string(body), "\n"); got != 5 {
		t.Fatalf("stream rows = %d, want 5 (full stream despite shutdown)", got)
	}
	if err := <-done; err != nil {
		t.Fatalf("serveWithDrain = %v", err)
	}
	// The listener is down: new connections fail.
	if _, err := http.Get("http://" + ln.Addr().String() + "/stream"); err == nil {
		t.Fatal("listener still accepting after drain")
	}
}

// TestServeWithDrainExpiryAborts: a request that outlives the drain
// window is cut off and serveWithDrain still returns.
func TestServeWithDrainExpiryAborts(t *testing.T) {
	block := make(chan struct{})
	t.Cleanup(func() { close(block) })
	entered := make(chan struct{})
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-block
	})}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- serveWithDrain(ctx, srv, ln, 50*time.Millisecond) }()

	go http.Get("http://" + ln.Addr().String() + "/") //nolint:errcheck // aborted by design
	<-entered
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serveWithDrain = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serveWithDrain hung past the drain window")
	}
}
