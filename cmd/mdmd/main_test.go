package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestBuildSystemFresh(t *testing.T) {
	sys, err := buildSystem("", false)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Stats().Concepts != 0 {
		t.Error("fresh system not empty")
	}
}

func TestBuildSystemSeeded(t *testing.T) {
	sys, err := buildSystem("", true)
	if err != nil {
		t.Fatal(err)
	}
	st := sys.Stats()
	if st.Concepts != 4 || st.Wrappers != 6 {
		t.Errorf("seeded stats = %+v", st)
	}
	if v := sys.Validate(); len(v) != 0 {
		t.Errorf("seeded system inconsistent: %v", v)
	}
}

func TestPersistAndReload(t *testing.T) {
	dir := t.TempDir()
	sys, err := buildSystem("", true)
	if err != nil {
		t.Fatal(err)
	}
	if err := persist(sys, dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "ontology.trig")); err != nil {
		t.Fatal(err)
	}
	// Reload from the snapshot.
	sys2, err := buildSystem(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	st1, st2 := sys.Stats(), sys2.Stats()
	if st1.Concepts != st2.Concepts || st1.Mappings != st2.Mappings {
		t.Errorf("reloaded stats differ: %+v vs %+v", st1, st2)
	}
}

func TestBuildSystemCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "ontology.trig"), []byte("bad <"), 0o644)
	if _, err := buildSystem(dir, false); err == nil {
		t.Error("corrupt snapshot accepted")
	}
}
