package mdm_test

import (
	"context"
	"fmt"

	"mdm"
)

// ExampleSystem_SPARQLPage pages through metadata SPARQL results: the
// limit/offset override replaces the query's own LIMIT/OFFSET before
// evaluation, so the page is enforced inside the engine (O(page) work,
// not O(result)) — the same contract the REST query endpoints use for
// their limit/offset parameters. Without ORDER BY the engine's
// canonical result order makes consecutive pages partition the result.
func ExampleSystem_SPARQLPage() {
	sys := mdm.New()
	sys.BindPrefix("ex", "http://ex.org/")
	for _, c := range []struct{ iri, label string }{
		{"ex:Player", "Player"},
		{"ex:Team", "Team"},
		{"ex:Stadium", "Stadium"},
	} {
		if err := sys.AddConcept(c.iri, c.label); err != nil {
			panic(err)
		}
	}

	query := `
		PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
		SELECT ?label WHERE { GRAPH ?g { ?c rdfs:label ?label } }`

	ctx := context.Background()
	for offset := 0; ; offset += 2 {
		cur, err := sys.SPARQLPage(query, 2, offset) // pages of two
		if err != nil {
			panic(err)
		}
		rows := 0
		for b := range cur.Solutions(ctx) {
			fmt.Println(b["label"].Value)
			rows++
		}
		cur.Close()
		if err := cur.Err(); err != nil {
			panic(err)
		}
		if rows < 2 {
			break
		}
	}
	// Output:
	// Player
	// Stadium
	// Team
}

// ExampleSystem_SPARQL_propertyPath walks a release lineage with a
// SPARQL 1.1 property path: each ontology version is declared
// rdfs:subClassOf its predecessor, and subClassOf+ asks for the full
// ancestry transitively — the governance question "which contracts does
// the newest release still answer to" as a single pattern, with an
// aggregate counting lineage depth per version.
func ExampleSystem_SPARQL_propertyPath() {
	sys := mdm.New()
	sys.BindPrefix("ex", "http://ex.org/")
	for i := 1; i <= 3; i++ {
		if err := sys.AddConcept(fmt.Sprintf("ex:SalesV%d", i), ""); err != nil {
			panic(err)
		}
		if i > 1 {
			if err := sys.AddSubClass(fmt.Sprintf("ex:SalesV%d", i), fmt.Sprintf("ex:SalesV%d", i-1)); err != nil {
				panic(err)
			}
		}
	}

	res, err := sys.SPARQL(`
		PREFIX ex: <http://ex.org/>
		PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
		SELECT ?anc WHERE { GRAPH ?g { ex:SalesV3 rdfs:subClassOf+ ?anc } }`)
	if err != nil {
		panic(err)
	}
	for _, b := range res.Solutions() {
		fmt.Println(b["anc"].Value)
	}

	res, err = sys.SPARQL(`
		PREFIX ex: <http://ex.org/>
		PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
		SELECT ?v (COUNT(?anc) AS ?depth)
		WHERE { GRAPH ?g { ?v rdfs:subClassOf+ ?anc } }
		GROUP BY ?v ORDER BY DESC(?depth)`)
	if err != nil {
		panic(err)
	}
	for _, b := range res.Solutions() {
		fmt.Printf("%s depth %s\n", b["v"].Value, b["depth"].Value)
	}
	// Output:
	// http://ex.org/SalesV1
	// http://ex.org/SalesV2
	// http://ex.org/SalesV3 depth 2
	// http://ex.org/SalesV2 depth 1
}
