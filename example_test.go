package mdm_test

import (
	"context"
	"fmt"

	"mdm"
)

// ExampleSystem_SPARQLPage pages through metadata SPARQL results: the
// limit/offset override replaces the query's own LIMIT/OFFSET before
// evaluation, so the page is enforced inside the engine (O(page) work,
// not O(result)) — the same contract the REST query endpoints use for
// their limit/offset parameters. Without ORDER BY the engine's
// canonical result order makes consecutive pages partition the result.
func ExampleSystem_SPARQLPage() {
	sys := mdm.New()
	sys.BindPrefix("ex", "http://ex.org/")
	for _, c := range []struct{ iri, label string }{
		{"ex:Player", "Player"},
		{"ex:Team", "Team"},
		{"ex:Stadium", "Stadium"},
	} {
		if err := sys.AddConcept(c.iri, c.label); err != nil {
			panic(err)
		}
	}

	query := `
		PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
		SELECT ?label WHERE { GRAPH ?g { ?c rdfs:label ?label } }`

	ctx := context.Background()
	for offset := 0; ; offset += 2 {
		cur, err := sys.SPARQLPage(query, 2, offset) // pages of two
		if err != nil {
			panic(err)
		}
		rows := 0
		for b := range cur.Solutions(ctx) {
			fmt.Println(b["label"].Value)
			rows++
		}
		cur.Close()
		if err := cur.Err(); err != nil {
			panic(err)
		}
		if rows < 2 {
			break
		}
	}
	// Output:
	// Player
	// Stadium
	// Team
}
