// Evolution: the paper's "Governance of evolution" demo scenario.
//
// The players API ships a breaking v2 release (field renamed, two fields
// removed, one added). MDM detects the drift, the steward registers a
// new wrapper for the same data source and accepts the suggested LAV
// mapping, and the analyst's unchanged query now draws from BOTH schema
// versions — where a conventional pipeline (and the GAV baseline) simply
// crashes.
//
// Run with: go run ./examples/evolution
package main

import (
	"context"
	"fmt"
	"log"

	"mdm"
	"mdm/internal/apisim"
	"mdm/internal/rewrite/gav"
	"mdm/internal/usecase"
	"mdm/internal/wrapper"
)

func main() {
	ctx := context.Background()

	// Start from the fully set-up football fixture.
	f, err := usecase.New()
	if err != nil {
		log.Fatal(err)
	}
	sys := mdm.FromParts(f.Ont, f.Reg)
	walk := usecase.Fig8Walk()

	fmt.Println("== step 1: analyst query before the release ==")
	runQuery(ctx, sys, walk)

	fmt.Println("\n== step 2: provider ships breaking v2 on a live endpoint ==")
	provider := apisim.NewFootball()
	defer provider.Close()
	// A wrapper watching the unversioned endpoint sees the flip.
	watch, err := wrapper.NewHTTP(ctx, "watchdog", usecase.SrcPlayers, provider.URL()+"/players")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sys.RegisterWrapper(watch); err != nil {
		log.Fatal(err)
	}
	provider.BreakPlayersEndpoint()
	drift, err := sys.DetectDrift(ctx, "watchdog")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("detected schema drift on the live endpoint:")
	for _, c := range drift {
		fmt.Printf("  %s (breaking=%v)\n", c, c.Breaking())
	}

	fmt.Println("\n== step 3: GAV baseline: the same evolution crashes the query ==")
	gavMaps := gav.FromLAV(f.Ont)
	brokenReg := wrapper.NewRegistry()
	_ = brokenReg.Register(wrapper.NewMem("w1", usecase.SrcPlayers, usecase.PlayersV2Docs(), nil))
	for _, n := range []string{"w2", "w3", "w4", "w5", "w6"} {
		w, _ := f.Reg.Get(n)
		_ = brokenReg.Register(w)
	}
	if _, err := gav.New(f.Ont, brokenReg, gavMaps).Rewrite(walk); err != nil {
		fmt.Println("GAV:", err)
		fmt.Printf("GAV: %d mapping bindings reference the evolved wrapper and need manual rework\n",
			gavMaps.BindingsReferencing("w1"))
	}

	fmt.Println("\n== step 4: MDM/LAV governance: one release, zero changes elsewhere ==")
	if err := f.ReleasePlayersV2(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("registered wrapper w1v2 for players-api and defined its LAV mapping")
	fmt.Println("\n== step 5: the SAME query now unions both schema versions ==")
	runQuery(ctx, sys, walk)

	fmt.Println("\n== step 6: the new v2-only feature is immediately queryable ==")
	runQuery(ctx, sys, usecase.PositionWalk())
}

func runQuery(ctx context.Context, sys *mdm.System, walk *mdm.Walk) {
	rel, res, err := sys.Query(ctx, walk)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rewriting produced %d conjunctive query(ies):\n", len(res.CQs))
	for _, cq := range res.CQs {
		fmt.Printf("  over wrappers %v\n", cq.Wrappers)
	}
	rel.Sort()
	fmt.Print(rel.Table())
}
