// Federation: the full service-oriented deployment of paper §2.5 — the
// MDM backend running as a REST service (as mdmd does), driven entirely
// over HTTP by a client playing first the steward and then the analyst,
// against live simulated providers.
//
// Run with: go run ./examples/federation
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"

	"mdm"
	"mdm/internal/apisim"
	"mdm/internal/rest"
)

func main() {
	provider := apisim.NewFootball()
	defer provider.Close()

	backend := httptest.NewServer(rest.NewServer(mdm.New()))
	defer backend.Close()
	fmt.Println("MDM backend:", backend.URL)
	fmt.Println("football provider:", provider.URL())

	// --- steward over HTTP ---
	post(backend.URL+"/api/prefixes", map[string]string{"prefix": "ex", "namespace": "http://ex.org/"})
	post(backend.URL+"/api/prefixes", map[string]string{"prefix": "sc", "namespace": "http://schema.org/"})
	post(backend.URL+"/api/global/concepts", map[string]string{"iri": "ex:Player", "label": "Player"})
	post(backend.URL+"/api/global/concepts", map[string]string{"iri": "sc:SportsTeam", "label": "SportsTeam"})
	for f, c := range map[string]string{
		"ex:playerId": "ex:Player", "ex:playerName": "ex:Player",
		"ex:teamId": "sc:SportsTeam", "ex:teamName": "sc:SportsTeam",
	} {
		post(backend.URL+"/api/global/features", map[string]string{"iri": f, "label": ""})
		post(backend.URL+"/api/global/attach", map[string]string{"concept": c, "feature": f})
	}
	post(backend.URL+"/api/global/identifiers", map[string]string{"feature": "ex:playerId"})
	post(backend.URL+"/api/global/identifiers", map[string]string{"feature": "ex:teamId"})
	post(backend.URL+"/api/global/relations", map[string]string{
		"from": "ex:Player", "property": "ex:playsIn", "to": "sc:SportsTeam"})

	post(backend.URL+"/api/sources", map[string]string{"id": "players-api", "label": "Players API"})
	post(backend.URL+"/api/sources", map[string]string{"id": "teams-api", "label": "Teams API"})
	post(backend.URL+"/api/wrappers", map[string]any{
		"name": "w1", "source": "players-api", "url": provider.URL() + "/v1/players",
		"renames": map[string]string{"name": "pName", "preferred_foot": "foot", "team_id": "teamId", "rating": "score"},
	})
	post(backend.URL+"/api/wrappers", map[string]any{
		"name": "w2", "source": "teams-api", "url": provider.URL() + "/v1/teams",
	})
	post(backend.URL+"/api/mappings", map[string]any{
		"wrapper": "w1",
		"subgraph": [][3]string{
			{"ex:Player", "rdf:type", "G:Concept"},
			{"ex:Player", "G:hasFeature", "ex:playerId"},
			{"ex:Player", "G:hasFeature", "ex:playerName"},
			{"ex:Player", "ex:playsIn", "sc:SportsTeam"},
			{"sc:SportsTeam", "rdf:type", "G:Concept"},
			{"sc:SportsTeam", "G:hasFeature", "ex:teamId"},
		},
		"sameAs": map[string]string{"id": "ex:playerId", "pName": "ex:playerName", "teamId": "ex:teamId"},
	})
	post(backend.URL+"/api/mappings", map[string]any{
		"wrapper": "w2",
		"subgraph": [][3]string{
			{"sc:SportsTeam", "rdf:type", "G:Concept"},
			{"sc:SportsTeam", "G:hasFeature", "ex:teamId"},
			{"sc:SportsTeam", "G:hasFeature", "ex:teamName"},
		},
		"sameAs": map[string]string{"id": "ex:teamId", "name": "ex:teamName"},
	})

	// --- analyst over HTTP ---
	answer := post(backend.URL+"/api/query", map[string]any{
		"select": []map[string]string{
			{"concept": "sc:SportsTeam", "feature": "ex:teamName", "alias": "teamName"},
			{"concept": "ex:Player", "feature": "ex:playerName", "alias": "playerName"},
		},
		"relations": [][3]string{{"ex:Player", "ex:playsIn", "sc:SportsTeam"}},
	})
	fmt.Println("\n-- query answer (over HTTP) --")
	fmt.Printf("%-20s %-20s\n", "teamName", "playerName")
	for _, r := range answer["rows"].([]any) {
		row := r.([]any)
		fmt.Printf("%-20v %-20v\n", row[0], row[1])
	}
	fmt.Println("\n-- generated SPARQL --")
	fmt.Println(answer["sparql"])
	fmt.Println("-- relational algebra --")
	for _, a := range answer["algebra"].([]any) {
		fmt.Println(" ", a)
	}
}

// post sends a JSON body and returns the decoded JSON response, failing
// the program on any error status.
func post(url string, body any) map[string]any {
	b, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&out)
	if resp.StatusCode >= 300 {
		log.Fatalf("POST %s -> %d: %v", url, resp.StatusCode, out)
	}
	return out
}
