// Quickstart: the paper's motivational use case end-to-end, in-process.
//
// A data steward defines the global graph for european football, starts
// the simulated REST providers, registers wrappers over them (with the
// automatic schema extraction of paper §2.2), defines LAV mappings, and
// then — switching to the analyst role — poses the Figure 8 query and
// prints the Table 1 answer together with the generated SPARQL and
// relational algebra.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"mdm"
	"mdm/internal/apisim"
	"mdm/internal/wrapper"
)

func main() {
	ctx := context.Background()

	// Third-party providers (normally not under your control).
	provider := apisim.NewFootball()
	defer provider.Close()

	sys := mdm.New()
	sys.BindPrefix("ex", "http://www.example.org/football/")
	sys.BindPrefix("sc", "http://schema.org/")

	// --- steward: global graph (Figure 5) ---
	check(sys.AddConcept("ex:Player", "Player"))
	check(sys.AddConcept("sc:SportsTeam", "SportsTeam")) // reused vocabulary
	for _, f := range []struct{ iri, concept string }{
		{"ex:playerId", "ex:Player"},
		{"ex:playerName", "ex:Player"},
		{"ex:height", "ex:Player"},
		{"ex:teamId", "sc:SportsTeam"},
		{"ex:teamName", "sc:SportsTeam"},
	} {
		check(sys.AddFeature(f.iri, ""))
		check(sys.AttachFeature(f.concept, f.iri))
	}
	check(sys.MarkIdentifier("ex:playerId"))
	check(sys.MarkIdentifier("ex:teamId"))
	check(sys.RelateConcepts("ex:Player", "ex:playsIn", "sc:SportsTeam"))

	// --- steward: sources and wrappers (Figure 6) ---
	check(sys.AddSource("players-api", "Players API"))
	check(sys.AddSource("teams-api", "Teams API"))

	w1, err := wrapper.NewHTTP(ctx, "w1", "players-api", provider.URL()+"/v1/players",
		wrapper.WithRename("name", "pName"),
		wrapper.WithRename("preferred_foot", "foot"),
		wrapper.WithRename("team_id", "teamId"),
		wrapper.WithRename("rating", "score"))
	check(err)
	rel1, err := sys.RegisterWrapper(w1)
	check(err)
	fmt.Println(rel1.Summary())

	w2, err := wrapper.NewHTTP(ctx, "w2", "teams-api", provider.URL()+"/v1/teams")
	check(err)
	rel2, err := sys.RegisterWrapper(w2)
	check(err)
	fmt.Println(rel2.Summary())

	// --- steward: LAV mappings (Figure 7) ---
	check(sys.DefineMapping(mdm.Mapping{
		Wrapper: "w1",
		Subgraph: []mdm.Triple{
			mdm.T(sys.IRI("ex:Player"), sys.IRI("rdf:type"), sys.IRI("G:Concept")),
			mdm.T(sys.IRI("ex:Player"), sys.IRI("G:hasFeature"), sys.IRI("ex:playerId")),
			mdm.T(sys.IRI("ex:Player"), sys.IRI("G:hasFeature"), sys.IRI("ex:playerName")),
			mdm.T(sys.IRI("ex:Player"), sys.IRI("G:hasFeature"), sys.IRI("ex:height")),
			mdm.T(sys.IRI("ex:Player"), sys.IRI("ex:playsIn"), sys.IRI("sc:SportsTeam")),
			mdm.T(sys.IRI("sc:SportsTeam"), sys.IRI("rdf:type"), sys.IRI("G:Concept")),
			mdm.T(sys.IRI("sc:SportsTeam"), sys.IRI("G:hasFeature"), sys.IRI("ex:teamId")),
		},
		SameAs: map[string]mdm.Term{
			"id":     sys.IRI("ex:playerId"),
			"pName":  sys.IRI("ex:playerName"),
			"height": sys.IRI("ex:height"),
			"teamId": sys.IRI("ex:teamId"),
		},
	}))
	check(sys.DefineMapping(mdm.Mapping{
		Wrapper: "w2",
		Subgraph: []mdm.Triple{
			mdm.T(sys.IRI("sc:SportsTeam"), sys.IRI("rdf:type"), sys.IRI("G:Concept")),
			mdm.T(sys.IRI("sc:SportsTeam"), sys.IRI("G:hasFeature"), sys.IRI("ex:teamId")),
			mdm.T(sys.IRI("sc:SportsTeam"), sys.IRI("G:hasFeature"), sys.IRI("ex:teamName")),
		},
		SameAs: map[string]mdm.Term{
			"id":   sys.IRI("ex:teamId"),
			"name": sys.IRI("ex:teamName"),
		},
	}))

	if v := sys.Validate(); len(v) > 0 {
		log.Fatalf("ontology inconsistent: %v", v)
	}
	fmt.Println("\n" + sys.RenderGlobalGraph())
	fmt.Println(sys.RenderSourceGraph())

	// --- analyst: the Figure 8 walk ---
	walk := mdm.NewWalk().
		SelectAs(sys.IRI("sc:SportsTeam"), sys.IRI("ex:teamName"), "teamName").
		SelectAs(sys.IRI("ex:Player"), sys.IRI("ex:playerName"), "playerName").
		Relate(sys.IRI("ex:Player"), sys.IRI("ex:playsIn"), sys.IRI("sc:SportsTeam"))

	rel, res, err := sys.Query(ctx, walk)
	check(err)

	fmt.Println("-- SPARQL (generated) --")
	fmt.Println(res.SPARQL)
	fmt.Println("\n-- Relational algebra over the wrappers --")
	for _, cq := range res.CQs {
		fmt.Println(" ", cq.Algebra)
	}
	fmt.Println("\n-- Table 1 --")
	rel.Sort()
	fmt.Print(rel.Table())

	// --- analyst: streaming metadata reads over the cursor API ---
	// SPARQLCursor evaluates lazily: the LIMIT is pushed into the
	// engine, rows arrive one Next at a time, and dropping the cursor
	// (or canceling ctx) stops the work — the pattern the REST layer
	// uses to stream NDJSON pages to paging clients.
	cur, err := sys.SPARQLCursor(`
PREFIX G: <http://www.essi.upc.edu/~snadal/BDIOntology/Global/>
SELECT ?c ?f WHERE {
  GRAPH <http://www.essi.upc.edu/~snadal/BDIOntology/Global/graph> {
    ?c G:hasFeature ?f .
  }
} LIMIT 3`)
	check(err)
	defer cur.Close()
	fmt.Println("\n-- first page of features, streamed --")
	for b := range cur.Solutions(ctx) {
		fmt.Printf("  %s -> %s\n", b["c"].Value, b["f"].Value)
	}
	check(cur.Err())
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
