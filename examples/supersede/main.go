// Supersede: a SUPERSEDE-style real-world scenario (paper §3), the
// second use case of the on-site demonstration.
//
// The SUPERSEDE project integrated end-user feedback with runtime
// monitoring data to drive software evolution decisions. Here, a
// feedback API (JSON) and a monitoring API (JSON) are integrated under a
// small quality ontology; the analyst asks "which apps have unhappy
// users AND bad runtime metrics?", and the feedback API then releases a
// breaking v2 (rating renamed to stars) that MDM absorbs with one new
// wrapper + mapping.
//
// Run with: go run ./examples/supersede
package main

import (
	"context"
	"fmt"
	"log"

	"mdm"
	"mdm/internal/apisim"
	"mdm/internal/wrapper"
)

func main() {
	ctx := context.Background()
	provider := apisim.NewFeedback()
	defer provider.Close()

	sys := mdm.New()
	sys.BindPrefix("sup", "http://supersede.eu/quality/")

	// Global graph: App, FeedbackItem, Metric.
	check(sys.AddConcept("sup:App", "Application"))
	check(sys.AddConcept("sup:Feedback", "User feedback"))
	check(sys.AddConcept("sup:Metric", "Monitored metric"))
	feats := []struct{ iri, concept string }{
		{"sup:appId", "sup:App"}, {"sup:appName", "sup:App"},
		{"sup:feedbackId", "sup:Feedback"}, {"sup:rating", "sup:Feedback"}, {"sup:text", "sup:Feedback"},
		{"sup:metricId", "sup:Metric"}, {"sup:metricName", "sup:Metric"}, {"sup:value", "sup:Metric"},
	}
	for _, f := range feats {
		check(sys.AddFeature(f.iri, ""))
		check(sys.AttachFeature(f.concept, f.iri))
	}
	check(sys.MarkIdentifier("sup:appId"))
	check(sys.MarkIdentifier("sup:feedbackId"))
	check(sys.MarkIdentifier("sup:metricId"))
	check(sys.RelateConcepts("sup:Feedback", "sup:about", "sup:App"))
	check(sys.RelateConcepts("sup:Metric", "sup:measuredOn", "sup:App"))

	// Sources and wrappers.
	check(sys.AddSource("feedback-api", "Feedback API"))
	check(sys.AddSource("monitoring-api", "Monitoring API"))
	check(sys.AddSource("apps-api", "App catalog API"))

	wf, err := wrapper.NewHTTP(ctx, "wf1", "feedback-api", provider.URL()+"/v1/feedback",
		wrapper.WithRename("id", "fid"),
		wrapper.WithRename("user_id", "userId"),
		wrapper.WithRename("app_id", "appId"))
	check(err)
	mustRegister(sys, wf)

	wm, err := wrapper.NewHTTP(ctx, "wm1", "monitoring-api", provider.URL()+"/v1/monitoring",
		wrapper.WithRename("app_id", "appId"))
	check(err)
	mustRegister(sys, wm)

	wa, err := wrapper.NewHTTP(ctx, "wa1", "apps-api", provider.URL()+"/v1/apps",
		wrapper.WithRename("app_name", "appName"))
	check(err)
	mustRegister(sys, wa)

	// Monitoring rows have no scalar id of their own; synthesize the
	// metric identity from (appId, metric): the wrapper exposes metric
	// name as the identifier-bearing attribute for simplicity.
	check(sys.DefineMapping(mdm.Mapping{
		Wrapper: "wf1",
		Subgraph: []mdm.Triple{
			mdm.T(sys.IRI("sup:Feedback"), sys.IRI("rdf:type"), sys.IRI("G:Concept")),
			mdm.T(sys.IRI("sup:Feedback"), sys.IRI("G:hasFeature"), sys.IRI("sup:feedbackId")),
			mdm.T(sys.IRI("sup:Feedback"), sys.IRI("G:hasFeature"), sys.IRI("sup:rating")),
			mdm.T(sys.IRI("sup:Feedback"), sys.IRI("G:hasFeature"), sys.IRI("sup:text")),
			mdm.T(sys.IRI("sup:Feedback"), sys.IRI("sup:about"), sys.IRI("sup:App")),
			mdm.T(sys.IRI("sup:App"), sys.IRI("rdf:type"), sys.IRI("G:Concept")),
			mdm.T(sys.IRI("sup:App"), sys.IRI("G:hasFeature"), sys.IRI("sup:appId")),
		},
		SameAs: map[string]mdm.Term{
			"fid": sys.IRI("sup:feedbackId"), "rating": sys.IRI("sup:rating"),
			"text": sys.IRI("sup:text"), "appId": sys.IRI("sup:appId"),
		},
	}))
	check(sys.DefineMapping(mdm.Mapping{
		Wrapper: "wm1",
		Subgraph: []mdm.Triple{
			mdm.T(sys.IRI("sup:Metric"), sys.IRI("rdf:type"), sys.IRI("G:Concept")),
			mdm.T(sys.IRI("sup:Metric"), sys.IRI("G:hasFeature"), sys.IRI("sup:metricId")),
			mdm.T(sys.IRI("sup:Metric"), sys.IRI("G:hasFeature"), sys.IRI("sup:value")),
			mdm.T(sys.IRI("sup:Metric"), sys.IRI("sup:measuredOn"), sys.IRI("sup:App")),
			mdm.T(sys.IRI("sup:App"), sys.IRI("rdf:type"), sys.IRI("G:Concept")),
			mdm.T(sys.IRI("sup:App"), sys.IRI("G:hasFeature"), sys.IRI("sup:appId")),
		},
		SameAs: map[string]mdm.Term{
			"metric": sys.IRI("sup:metricId"), "value": sys.IRI("sup:value"),
			"appId": sys.IRI("sup:appId"),
		},
	}))
	check(sys.DefineMapping(mdm.Mapping{
		Wrapper: "wa1",
		Subgraph: []mdm.Triple{
			mdm.T(sys.IRI("sup:App"), sys.IRI("rdf:type"), sys.IRI("G:Concept")),
			mdm.T(sys.IRI("sup:App"), sys.IRI("G:hasFeature"), sys.IRI("sup:appId")),
			mdm.T(sys.IRI("sup:App"), sys.IRI("G:hasFeature"), sys.IRI("sup:appName")),
		},
		SameAs: map[string]mdm.Term{
			"id": sys.IRI("sup:appId"), "appName": sys.IRI("sup:appName"),
		},
	}))
	if v := sys.Validate(); len(v) > 0 {
		log.Fatalf("inconsistent: %v", v)
	}

	fmt.Println("== feedback + monitoring joined through the App concept ==")
	walk := mdm.NewWalk().
		SelectAs(sys.IRI("sup:App"), sys.IRI("sup:appName"), "app").
		SelectAs(sys.IRI("sup:Feedback"), sys.IRI("sup:rating"), "rating").
		SelectAs(sys.IRI("sup:Feedback"), sys.IRI("sup:text"), "feedback").
		SelectAs(sys.IRI("sup:Metric"), sys.IRI("sup:metricId"), "metric").
		SelectAs(sys.IRI("sup:Metric"), sys.IRI("sup:value"), "value").
		Relate(sys.IRI("sup:Feedback"), sys.IRI("sup:about"), sys.IRI("sup:App")).
		Relate(sys.IRI("sup:Metric"), sys.IRI("sup:measuredOn"), sys.IRI("sup:App"))
	rel, res, err := sys.Query(ctx, walk)
	check(err)
	fmt.Println("SPARQL:")
	fmt.Println(res.SPARQL)
	rel.Sort()
	fmt.Print(rel.Table())

	// Breaking release of the feedback API.
	fmt.Println("\n== feedback API releases v2 (rating renamed to stars) ==")
	provider.ReleaseV2()
	drift, err := sys.DetectDrift(ctx, "wf1")
	check(err)
	for _, c := range drift {
		fmt.Println("  drift:", c)
	}
	wf2, err := wrapper.NewHTTP(ctx, "wf2", "feedback-api", provider.URL()+"/v1/feedback",
		wrapper.WithRename("id", "fid"),
		wrapper.WithRename("user_id", "userId"),
		wrapper.WithRename("app_id", "appId"),
		wrapper.WithRename("stars", "rating")) // wrapper-level rename keeps attribute stable
	check(err)
	relse, err := sys.RegisterWrapper(wf2)
	check(err)
	fmt.Println(relse.Summary())
	suggested, _, err := sys.SuggestMapping("wf1", "wf2")
	check(err)
	check(sys.DefineMapping(suggested))

	fmt.Println("\n== the same walk now spans both feedback versions ==")
	rel2, res2, err := sys.Query(ctx, walk)
	check(err)
	fmt.Printf("conjunctive queries: %d\n", len(res2.CQs))
	rel2.Sort()
	fmt.Print(rel2.Table())
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func mustRegister(sys *mdm.System, w mdm.Wrapper) {
	rel, err := sys.RegisterWrapper(w)
	check(err)
	fmt.Println(rel.Summary())
}
