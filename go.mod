module mdm

go 1.24.0
