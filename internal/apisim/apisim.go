// Package apisim simulates the third-party REST data providers that MDM
// integrates (paper §1: "external data are commonly ingested from third
// party data providers via REST APIs with a fixed schema", which then
// "continuously apply changes in their structure").
//
// The football provider serves the paper's four sources — players,
// teams, leagues, countries — in their original heterogeneous formats
// (JSON for players, XML for teams, per Figure 2; CSV for countries to
// exercise the third format). Versioned endpoints let demos replay the
// breaking v2 release of the players API, including the in-place flip
// that breaks naive pipelines.
//
// The feedback provider simulates the SUPERSEDE project's user-feedback
// scenario used in the on-site demo.
package apisim

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
)

// Football is the simulated football data provider.
type Football struct {
	srv *httptest.Server
	// requests counts HTTP hits per path.
	requests sync.Map // string -> *int64
	// playersVersion controls what /players (unversioned) serves.
	playersVersion atomic.Int32
}

// NewFootball starts the provider on an ephemeral port.
func NewFootball() *Football {
	f := &Football{}
	f.playersVersion.Store(1)
	mux := http.NewServeMux()

	mux.HandleFunc("/v1/players", f.count(f.playersV1))
	mux.HandleFunc("/v2/players", f.count(f.playersV2))
	mux.HandleFunc("/players", f.count(func(w http.ResponseWriter, r *http.Request) {
		if f.playersVersion.Load() >= 2 {
			f.playersV2(w, r)
			return
		}
		f.playersV1(w, r)
	}))
	mux.HandleFunc("/v1/players/nationalities", f.count(f.nationalities))
	mux.HandleFunc("/v1/teams", f.count(f.teams))
	mux.HandleFunc("/v1/leagues", f.count(f.leagues))
	mux.HandleFunc("/v1/league-teams", f.count(f.leagueTeams))
	mux.HandleFunc("/v1/countries", f.count(f.countries))

	f.srv = httptest.NewServer(mux)
	return f
}

// URL returns the provider's base URL.
func (f *Football) URL() string { return f.srv.URL }

// Close shuts the provider down.
func (f *Football) Close() { f.srv.Close() }

// BreakPlayersEndpoint flips the unversioned /players endpoint to the v2
// schema in place — the nightmare scenario of paper §1 where a provider
// ships breaking changes on a live endpoint.
func (f *Football) BreakPlayersEndpoint() { f.playersVersion.Store(2) }

// Requests returns the number of requests served for a path.
func (f *Football) Requests(path string) int64 {
	if v, ok := f.requests.Load(path); ok {
		return atomic.LoadInt64(v.(*int64))
	}
	return 0
}

func (f *Football) count(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		v, _ := f.requests.LoadOrStore(r.URL.Path, new(int64))
		atomic.AddInt64(v.(*int64), 1)
		h(w, r)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// playersV1 serves the Figure 2 JSON shape: raw field names (name,
// preferred_foot, team_id, rating) that wrappers rename to the signature
// of Figure 6 (pName, foot, teamId, score).
func (f *Football) playersV1(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, []map[string]any{
		{"id": 6176, "name": "Lionel Messi", "height": 170.18, "weight": 159, "rating": 94, "preferred_foot": "left", "team_id": 25},
		{"id": 7011, "name": "Robert Lewandowski", "height": 184.0, "weight": 176, "rating": 91, "preferred_foot": "right", "team_id": 27},
		{"id": 8123, "name": "Zlatan Ibrahimovic", "height": 195.0, "weight": 209, "rating": 90, "preferred_foot": "right", "team_id": 31},
		{"id": 9001, "name": "Harry Kane", "height": 188.0, "weight": 196, "rating": 89, "preferred_foot": "right", "team_id": 33},
		{"id": 9002, "name": "Marcus Rashford", "height": 180.0, "weight": 154, "rating": 85, "preferred_foot": "right", "team_id": 31},
	})
}

// playersV2 serves the breaking v2: name -> full_name, weight and rating
// gone, new position field.
func (f *Football) playersV2(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, []map[string]any{
		{"id": 6176, "full_name": "Lionel Messi", "height": 170.18, "preferred_foot": "left", "position": "RW", "team_id": 25},
		{"id": 7011, "full_name": "Robert Lewandowski", "height": 184.0, "preferred_foot": "right", "position": "ST", "team_id": 27},
		{"id": 9050, "full_name": "Pedri", "height": 174.0, "preferred_foot": "right", "position": "CM", "team_id": 25},
		{"id": 9051, "full_name": "Bukayo Saka", "height": 178.0, "preferred_foot": "left", "position": "RW", "team_id": 33},
	})
}

func (f *Football) nationalities(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, map[string]any{"data": []map[string]any{
		{"id": 6176, "country_id": 4},
		{"id": 7011, "country_id": 6},
		{"id": 8123, "country_id": 5},
		{"id": 9001, "country_id": 3},
		{"id": 9002, "country_id": 3},
	}})
}

// teams serves the Figure 2 XML shape.
func (f *Football) teams(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/xml")
	fmt.Fprint(w, `<teams>
  <team><id>25</id><name>FC Barcelona</name><shortName>FCB</shortName></team>
  <team><id>27</id><name>Bayern Munich</name><shortName>FCB</shortName></team>
  <team><id>31</id><name>Manchester United</name><shortName>MU</shortName></team>
  <team><id>33</id><name>Tottenham Hotspur</name><shortName>THFC</shortName></team>
</teams>`)
}

func (f *Football) leagues(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, []map[string]any{
		{"id": 10, "league_name": "La Liga", "country_id": 1},
		{"id": 11, "league_name": "Bundesliga", "country_id": 2},
		{"id": 12, "league_name": "Premier League", "country_id": 3},
	})
}

func (f *Football) leagueTeams(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, []map[string]any{
		{"league_id": 10, "team_id": 25},
		{"league_id": 11, "team_id": 27},
		{"league_id": 12, "team_id": 31},
		{"league_id": 12, "team_id": 33},
	})
}

func (f *Football) countries(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/csv")
	fmt.Fprint(w, "id,country_name\n1,Spain\n2,Germany\n3,England\n4,Argentina\n5,Sweden\n6,Poland\n")
}

// Feedback simulates the SUPERSEDE user-feedback provider: two evolving
// endpoints with user feedback items and monitored quality-of-service
// metrics, used by the examples/supersede scenario.
type Feedback struct {
	srv *httptest.Server
	v2  atomic.Bool
}

// NewFeedback starts the provider.
func NewFeedback() *Feedback {
	f := &Feedback{}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/feedback", func(w http.ResponseWriter, _ *http.Request) {
		if f.v2.Load() {
			// v2 renames rating -> stars and adds channel.
			writeJSON(w, []map[string]any{
				{"id": 1, "user_id": 501, "app_id": 9, "stars": 2, "text": "crashes on startup", "channel": "store"},
				{"id": 2, "user_id": 502, "app_id": 9, "stars": 5, "text": "love the new UI", "channel": "in-app"},
				{"id": 3, "user_id": 503, "app_id": 7, "stars": 3, "text": "sync is slow", "channel": "store"},
				{"id": 4, "user_id": 504, "app_id": 7, "stars": 1, "text": "lost my data", "channel": "email"},
			})
			return
		}
		writeJSON(w, []map[string]any{
			{"id": 1, "user_id": 501, "app_id": 9, "rating": 2, "text": "crashes on startup"},
			{"id": 2, "user_id": 502, "app_id": 9, "rating": 5, "text": "love the new UI"},
			{"id": 3, "user_id": 503, "app_id": 7, "rating": 3, "text": "sync is slow"},
		})
	})
	mux.HandleFunc("/v1/monitoring", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, []map[string]any{
			{"app_id": 9, "metric": "crash_rate", "value": 0.042},
			{"app_id": 9, "metric": "p99_latency_ms", "value": 880.0},
			{"app_id": 7, "metric": "crash_rate", "value": 0.003},
			{"app_id": 7, "metric": "p99_latency_ms", "value": 120.0},
		})
	})
	mux.HandleFunc("/v1/apps", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, []map[string]any{
			{"id": 9, "app_name": "SenerCam"},
			{"id": 7, "app_name": "FleetTrack"},
		})
	})
	f.srv = httptest.NewServer(mux)
	return f
}

// URL returns the provider's base URL.
func (f *Feedback) URL() string { return f.srv.URL }

// Close shuts the provider down.
func (f *Feedback) Close() { f.srv.Close() }

// ReleaseV2 switches the feedback endpoint to its breaking v2 schema.
func (f *Feedback) ReleaseV2() { f.v2.Store(true) }
