package apisim

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func get(t *testing.T, url string) (string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	return string(body), resp.Header.Get("Content-Type")
}

func TestFootballEndpoints(t *testing.T) {
	f := NewFootball()
	defer f.Close()

	body, ct := get(t, f.URL()+"/v1/players")
	if !strings.Contains(ct, "json") {
		t.Errorf("players content type = %s", ct)
	}
	var players []map[string]any
	if err := json.Unmarshal([]byte(body), &players); err != nil {
		t.Fatal(err)
	}
	if len(players) != 5 {
		t.Fatalf("players = %d", len(players))
	}
	// Figure 2 fidelity: raw field names.
	p0 := players[0]
	for _, field := range []string{"id", "name", "height", "weight", "rating", "preferred_foot", "team_id"} {
		if _, ok := p0[field]; !ok {
			t.Errorf("players payload missing Figure 2 field %q", field)
		}
	}
	if p0["name"] != "Lionel Messi" || p0["height"].(float64) != 170.18 {
		t.Errorf("Messi row = %v", p0)
	}

	body, ct = get(t, f.URL()+"/v1/teams")
	if !strings.Contains(ct, "xml") || !strings.Contains(body, "<shortName>FCB</shortName>") {
		t.Errorf("teams = %s / %s", ct, body)
	}

	body, ct = get(t, f.URL()+"/v1/countries")
	if !strings.Contains(ct, "csv") || !strings.Contains(body, "Spain") {
		t.Errorf("countries = %s / %s", ct, body)
	}

	body, _ = get(t, f.URL()+"/v1/leagues")
	if !strings.Contains(body, "Premier League") {
		t.Errorf("leagues = %s", body)
	}
	body, _ = get(t, f.URL()+"/v1/league-teams")
	if !strings.Contains(body, "league_id") {
		t.Errorf("league-teams = %s", body)
	}
	body, _ = get(t, f.URL()+"/v1/players/nationalities")
	if !strings.Contains(body, "country_id") {
		t.Errorf("nationalities = %s", body)
	}
}

func TestFootballV2AndInPlaceBreak(t *testing.T) {
	f := NewFootball()
	defer f.Close()

	v2, _ := get(t, f.URL()+"/v2/players")
	if !strings.Contains(v2, "full_name") || strings.Contains(v2, `"rating"`) {
		t.Errorf("v2 payload = %s", v2)
	}
	if !strings.Contains(v2, "Pedri") {
		t.Errorf("v2 should have new players: %s", v2)
	}

	// Unversioned endpoint serves v1 until the break.
	u, _ := get(t, f.URL()+"/players")
	if !strings.Contains(u, `"name"`) {
		t.Errorf("unversioned pre-break = %s", u)
	}
	f.BreakPlayersEndpoint()
	u, _ = get(t, f.URL()+"/players")
	if !strings.Contains(u, "full_name") {
		t.Errorf("unversioned post-break = %s", u)
	}
}

func TestFootballRequestCounting(t *testing.T) {
	f := NewFootball()
	defer f.Close()
	if f.Requests("/v1/players") != 0 {
		t.Error("counter not zero")
	}
	get(t, f.URL()+"/v1/players")
	get(t, f.URL()+"/v1/players")
	if got := f.Requests("/v1/players"); got != 2 {
		t.Errorf("requests = %d", got)
	}
	if f.Requests("/v1/teams") != 0 {
		t.Error("unrelated counter bumped")
	}
}

func TestFeedbackProvider(t *testing.T) {
	f := NewFeedback()
	defer f.Close()
	v1, _ := get(t, f.URL()+"/v1/feedback")
	if !strings.Contains(v1, `"rating"`) || strings.Contains(v1, `"stars"`) {
		t.Errorf("feedback v1 = %s", v1)
	}
	f.ReleaseV2()
	v2, _ := get(t, f.URL()+"/v1/feedback")
	if !strings.Contains(v2, `"stars"`) || strings.Contains(v2, `"rating"`) {
		t.Errorf("feedback v2 = %s", v2)
	}
	if !strings.Contains(v2, "channel") {
		t.Errorf("v2 missing new field: %s", v2)
	}
	mon, _ := get(t, f.URL()+"/v1/monitoring")
	if !strings.Contains(mon, "crash_rate") {
		t.Errorf("monitoring = %s", mon)
	}
	apps, _ := get(t, f.URL()+"/v1/apps")
	if !strings.Contains(apps, "app_name") {
		t.Errorf("apps = %s", apps)
	}
}
