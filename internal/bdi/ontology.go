// Package bdi implements the Big Data Integration (BDI) ontology of the
// paper: the vocabulary-based, integration-oriented metamodel that MDM
// instantiates (paper §2, citing Nadal et al., "An Integration-Oriented
// Ontology to Govern Evolution in Big Data Ecosystems").
//
// The ontology is represented as RDF inside an rdf.Dataset:
//
//   - the GLOBAL GRAPH (named graph bdi:GlobalGraph) holds the domain:
//     concepts (G:Concept), features (G:Feature), concept relations and
//     taxonomies (rdfs:subClassOf);
//   - the SOURCE GRAPH (named graph bdi:SourceGraph) holds data sources
//     (S:DataSource), wrappers (S:Wrapper) and attributes (S:Attribute);
//   - each LAV MAPPING is a named graph whose name is the wrapper IRI,
//     containing (a) the subgraph of the global graph the wrapper
//     populates and (b) owl:sameAs links from the wrapper's attributes
//     to global features.
//
// Features that are rdfs:subClassOf sc:identifier (schema.org) identify
// their concept; inter-concept joins during query rewriting are only
// allowed through them (paper §2.3).
package bdi

import (
	"errors"
	"fmt"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"mdm/internal/rdf"
	"mdm/internal/schema"
)

// Namespace IRIs of the BDI metamodel.
const (
	NSGlobal = "http://www.essi.upc.edu/~snadal/BDIOntology/Global/"
	NSSource = "http://www.essi.upc.edu/~snadal/BDIOntology/Source/"
	NSSchema = "http://schema.org/"
)

// Metamodel IRIs.
var (
	// ClassConcept types global-graph concepts (G:Concept).
	ClassConcept = rdf.IRI(NSGlobal + "Concept")
	// ClassFeature types global-graph features (G:Feature).
	ClassFeature = rdf.IRI(NSGlobal + "Feature")
	// PropHasFeature links a concept to a feature (G:hasFeature).
	PropHasFeature = rdf.IRI(NSGlobal + "hasFeature")
	// ClassDataSource types source-graph data sources (S:DataSource).
	ClassDataSource = rdf.IRI(NSSource + "DataSource")
	// ClassWrapper types source-graph wrappers (S:Wrapper).
	ClassWrapper = rdf.IRI(NSSource + "Wrapper")
	// ClassAttribute types source-graph attributes (S:Attribute).
	ClassAttribute = rdf.IRI(NSSource + "Attribute")
	// PropHasWrapper links a data source to its wrappers (S:hasWrapper).
	PropHasWrapper = rdf.IRI(NSSource + "hasWrapper")
	// PropHasAttribute links a wrapper to its attributes (S:hasAttribute).
	PropHasAttribute = rdf.IRI(NSSource + "hasAttribute")
	// Identifier is sc:identifier; features subclassing it are concept
	// identifiers, the only legal inter-concept join points.
	Identifier = rdf.IRI(NSSchema + "identifier")
	// GlobalGraphName names the global graph inside the dataset.
	GlobalGraphName = rdf.IRI(NSGlobal + "graph")
	// SourceGraphName names the source graph inside the dataset.
	SourceGraphName = rdf.IRI(NSSource + "graph")
)

// Sentinel errors for integrity-constraint violations.
var (
	// ErrFeatureOwned is returned when attaching a feature to a second
	// concept (paper §2.1: a feature belongs to exactly one concept).
	ErrFeatureOwned = errors.New("bdi: feature already belongs to another concept")
	// ErrUnknownConcept is returned when referencing an undeclared concept.
	ErrUnknownConcept = errors.New("bdi: unknown concept")
	// ErrUnknownFeature is returned when referencing an undeclared feature.
	ErrUnknownFeature = errors.New("bdi: unknown feature")
	// ErrUnknownSource is returned when referencing an undeclared source.
	ErrUnknownSource = errors.New("bdi: unknown data source")
	// ErrUnknownWrapper is returned when referencing an undeclared wrapper.
	ErrUnknownWrapper = errors.New("bdi: unknown wrapper")
	// ErrNotInGlobal is returned when a mapping references triples that
	// are not a subgraph of the global graph.
	ErrNotInGlobal = errors.New("bdi: mapping triple not present in global graph")
	// ErrAttrNotInWrapper is returned when a sameAs link references an
	// attribute the wrapper does not have.
	ErrAttrNotInWrapper = errors.New("bdi: attribute does not belong to wrapper")
)

// Ontology is a thread-safe BDI ontology over an RDF dataset. The
// dataset reference is an atomic pointer: readers resolve it without a
// lock, and Rebind swaps in a replacement dataset (the tdb compactor's
// epoch hand-over) while o.mu blocks every mutator.
type Ontology struct {
	mu sync.RWMutex
	ds atomic.Pointer[rdf.Dataset]
}

// New creates an empty ontology with the BDI prefixes bound.
func New() *Ontology {
	return FromDataset(rdf.NewDataset())
}

// FromDataset wraps an existing dataset (e.g. loaded from tdb) as an
// ontology, binding the BDI prefixes if absent.
func FromDataset(ds *rdf.Dataset) *Ontology {
	pm := ds.Prefixes()
	pm.Bind("G", NSGlobal)
	pm.Bind("S", NSSource)
	pm.Bind("sc", NSSchema)
	o := &Ontology{}
	o.ds.Store(ds)
	return o
}

// Dataset exposes the underlying dataset (read-mostly; mutate through
// Ontology methods so constraints hold). The reference is only stable
// until the storage layer compacts; callers that stream results across
// other operations should pin a storage snapshot instead (see mdm).
func (o *Ontology) Dataset() *rdf.Dataset { return o.ds.Load() }

// dset is the internal accessor mirroring Dataset.
func (o *Ontology) dset() *rdf.Dataset { return o.ds.Load() }

// Rebind runs swap with every ontology mutator quiesced (o.mu held
// exclusively) and re-points the ontology at the dataset swap returns.
// A nil result (the storage layer failed to seal the replacement)
// leaves the current dataset in place. This is the tdb compactor's
// quiescence window: between swap's snapshot of the old dataset and the
// atomic re-point, no writer can mutate through the ontology, so the
// swapped-in dataset misses nothing.
func (o *Ontology) Rebind(swap func(old *rdf.Dataset) *rdf.Dataset) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if next := swap(o.ds.Load()); next != nil {
		o.ds.Store(next)
	}
}

// Global returns the global graph.
func (o *Ontology) Global() *rdf.Graph { return o.dset().Graph(GlobalGraphName) }

// Source returns the source graph.
func (o *Ontology) Source() *rdf.Graph { return o.dset().Graph(SourceGraphName) }

// --- IRI builders ---

// SourceIRI returns the IRI of a data source node.
func SourceIRI(sourceID string) rdf.Term {
	return rdf.IRI(NSSource + "dataSource/" + url.PathEscape(sourceID))
}

// WrapperIRI returns the IRI of a wrapper node.
func WrapperIRI(name string) rdf.Term {
	return rdf.IRI(NSSource + "wrapper/" + url.PathEscape(name))
}

// AttributeIRI returns the IRI of an attribute node. Attributes are
// scoped per data source so they can be shared by that source's wrappers
// but never across sources (paper §2.2).
func AttributeIRI(sourceID, attr string) rdf.Term {
	return rdf.IRI(NSSource + "attribute/" + url.PathEscape(sourceID) + "/" + url.PathEscape(attr))
}

// --- Global graph construction (paper §2.1) ---

// AddConcept declares a concept with an optional human label.
func (o *Ontology) AddConcept(iri rdf.Term, label string) error {
	if !iri.IsIRI() {
		return fmt.Errorf("bdi: concept must be an IRI, got %s", iri)
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	g := o.Global()
	g.MustAdd(rdf.T(iri, rdf.IRI(rdf.RDFType), ClassConcept))
	if label != "" {
		g.MustAdd(rdf.T(iri, rdf.IRI(rdf.RDFSLabel), rdf.Lit(label)))
	}
	return nil
}

// AddFeature declares a feature with an optional label. The feature is
// not yet attached to any concept.
func (o *Ontology) AddFeature(iri rdf.Term, label string) error {
	if !iri.IsIRI() {
		return fmt.Errorf("bdi: feature must be an IRI, got %s", iri)
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	g := o.Global()
	g.MustAdd(rdf.T(iri, rdf.IRI(rdf.RDFType), ClassFeature))
	if label != "" {
		g.MustAdd(rdf.T(iri, rdf.IRI(rdf.RDFSLabel), rdf.Lit(label)))
	}
	return nil
}

// AttachFeature links a feature to a concept, enforcing that a feature
// belongs to exactly one concept.
func (o *Ontology) AttachFeature(concept, feature rdf.Term) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	g := o.Global()
	if !g.Has(rdf.T(concept, rdf.IRI(rdf.RDFType), ClassConcept)) {
		return fmt.Errorf("%w: %s", ErrUnknownConcept, concept)
	}
	if !g.Has(rdf.T(feature, rdf.IRI(rdf.RDFType), ClassFeature)) {
		return fmt.Errorf("%w: %s", ErrUnknownFeature, feature)
	}
	var owner rdf.Term
	g.EachMatch(rdf.Any, PropHasFeature, feature, func(t rdf.Triple) bool {
		if t.S != concept {
			owner = t.S
			return false
		}
		return true
	})
	if !owner.IsZero() {
		return fmt.Errorf("%w: %s owned by %s", ErrFeatureOwned, feature, owner)
	}
	g.MustAdd(rdf.T(concept, PropHasFeature, feature))
	return nil
}

// RelateConcepts adds a user-defined property edge between two concepts.
func (o *Ontology) RelateConcepts(from, prop, to rdf.Term) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	g := o.Global()
	for _, c := range []rdf.Term{from, to} {
		if !g.Has(rdf.T(c, rdf.IRI(rdf.RDFType), ClassConcept)) {
			return fmt.Errorf("%w: %s", ErrUnknownConcept, c)
		}
	}
	g.MustAdd(rdf.T(from, prop, to))
	return nil
}

// AddSubClass records sub rdfs:subClassOf super in the global graph
// (concept taxonomies and identifier features alike).
func (o *Ontology) AddSubClass(sub, super rdf.Term) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.Global().MustAdd(rdf.T(sub, rdf.IRI(rdf.RDFSSubClassOf), super))
	return nil
}

// MarkIdentifier declares a feature to be (a subclass of) sc:identifier,
// enabling it as a join point.
func (o *Ontology) MarkIdentifier(feature rdf.Term) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	g := o.Global()
	if !g.Has(rdf.T(feature, rdf.IRI(rdf.RDFType), ClassFeature)) {
		return fmt.Errorf("%w: %s", ErrUnknownFeature, feature)
	}
	g.MustAdd(rdf.T(feature, rdf.IRI(rdf.RDFSSubClassOf), Identifier))
	return nil
}

// --- Global graph accessors ---

// Concepts lists all concepts, sorted.
func (o *Ontology) Concepts() []rdf.Term {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.Global().Subjects(rdf.IRI(rdf.RDFType), ClassConcept)
}

// Features lists all features, sorted.
func (o *Ontology) Features() []rdf.Term {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.Global().Subjects(rdf.IRI(rdf.RDFType), ClassFeature)
}

// FeaturesOf returns the features attached to a concept.
func (o *Ontology) FeaturesOf(concept rdf.Term) []rdf.Term {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.Global().Objects(concept, PropHasFeature)
}

// ConceptOf returns the concept owning a feature.
func (o *Ontology) ConceptOf(feature rdf.Term) (rdf.Term, bool) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	t, ok := o.Global().MatchFirst(rdf.Any, PropHasFeature, feature)
	if !ok {
		return rdf.Term{}, false
	}
	return t.S, true
}

// IsIdentifier reports whether the feature is a (transitive) subclass of
// sc:identifier.
func (o *Ontology) IsIdentifier(feature rdf.Term) bool {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.Global().IsSubClassOf(feature, Identifier)
}

// IdentifierOf returns the identifier feature of a concept: the feature
// attached to it — or inherited from a (transitive) superclass in the
// concept taxonomy — that subclasses sc:identifier. The concept's own
// identifier takes precedence over inherited ones. ok is false when
// none exists.
func (o *Ontology) IdentifierOf(concept rdf.Term) (rdf.Term, bool) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	g := o.Global()
	// Own identifier first, then superclasses in closure order.
	for _, f := range g.Objects(concept, PropHasFeature) {
		if g.IsSubClassOf(f, Identifier) {
			return f, true
		}
	}
	for super := range g.SuperClassClosure(concept) {
		if super == concept {
			continue
		}
		for _, f := range g.Objects(super, PropHasFeature) {
			if g.IsSubClassOf(f, Identifier) {
				return f, true
			}
		}
	}
	return rdf.Term{}, false
}

// HasFeatureInherited reports whether the feature is attached to the
// concept or to one of its (transitive) superclasses — taxonomy-aware
// feature lookup (paper §2.1 taxonomies).
func (o *Ontology) HasFeatureInherited(concept, feature rdf.Term) bool {
	o.mu.RLock()
	defer o.mu.RUnlock()
	g := o.Global()
	for super := range g.SuperClassClosure(concept) {
		if g.Has(rdf.T(super, PropHasFeature, feature)) {
			return true
		}
	}
	return false
}

// ConceptRelations returns the user-defined edges between concepts in
// the global graph (excluding metamodel and RDFS properties).
func (o *Ontology) ConceptRelations() []rdf.Triple {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.conceptRelationsLocked()
}

func (o *Ontology) conceptRelationsLocked() []rdf.Triple {
	g := o.Global()
	concepts := map[rdf.Term]bool{}
	for _, c := range g.Subjects(rdf.IRI(rdf.RDFType), ClassConcept) {
		concepts[c] = true
	}
	skip := map[string]bool{
		rdf.RDFType:          true,
		rdf.RDFSSubClassOf:   true,
		rdf.RDFSLabel:        true,
		PropHasFeature.Value: true,
	}
	// Stream the graph and sort only the few surviving relation edges,
	// rather than sorting every triple up front.
	var out []rdf.Triple
	g.EachMatch(rdf.Any, rdf.Any, rdf.Any, func(t rdf.Triple) bool {
		if !skip[t.P.Value] && concepts[t.S] && concepts[t.O] {
			out = append(out, t)
		}
		return true
	})
	rdf.SortTriples(out)
	return out
}

// --- Source graph construction (paper §2.2) ---

// AddDataSource declares a data source.
func (o *Ontology) AddDataSource(sourceID, label string) error {
	if sourceID == "" {
		return fmt.Errorf("bdi: empty data source id")
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	g := o.Source()
	s := SourceIRI(sourceID)
	g.MustAdd(rdf.T(s, rdf.IRI(rdf.RDFType), ClassDataSource))
	if label != "" {
		g.MustAdd(rdf.T(s, rdf.IRI(rdf.RDFSLabel), rdf.Lit(label)))
	}
	return nil
}

// RegisterWrapper records a wrapper and its signature in the source
// graph. Attribute nodes are reused across wrappers of the same data
// source when names coincide (paper §2.2: "MDM will try to reuse as many
// attributes as possible from the previous wrappers for that data
// source"), and are never shared across sources.
func (o *Ontology) RegisterWrapper(sourceID string, sig schema.Signature) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	g := o.Source()
	s := SourceIRI(sourceID)
	if !g.Has(rdf.T(s, rdf.IRI(rdf.RDFType), ClassDataSource)) {
		return fmt.Errorf("%w: %s", ErrUnknownSource, sourceID)
	}
	w := WrapperIRI(sig.Wrapper)
	g.MustAdd(rdf.T(w, rdf.IRI(rdf.RDFType), ClassWrapper))
	g.MustAdd(rdf.T(w, rdf.IRI(rdf.RDFSLabel), rdf.Lit(sig.Wrapper)))
	g.MustAdd(rdf.T(s, PropHasWrapper, w))
	for _, a := range sig.Attributes {
		at := AttributeIRI(sourceID, a.Name)
		g.MustAdd(rdf.T(at, rdf.IRI(rdf.RDFType), ClassAttribute))
		g.MustAdd(rdf.T(at, rdf.IRI(rdf.RDFSLabel), rdf.Lit(a.Name)))
		g.MustAdd(rdf.T(w, PropHasAttribute, at))
	}
	return nil
}

// Sources lists data source IRIs, sorted.
func (o *Ontology) Sources() []rdf.Term {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.Source().Subjects(rdf.IRI(rdf.RDFType), ClassDataSource)
}

// WrappersOf lists the wrapper IRIs of a data source.
func (o *Ontology) WrappersOf(sourceID string) []rdf.Term {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.Source().Objects(SourceIRI(sourceID), PropHasWrapper)
}

// AttributesOf lists the attribute IRIs of a wrapper.
func (o *Ontology) AttributesOf(wrapperName string) []rdf.Term {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.Source().Objects(WrapperIRI(wrapperName), PropHasAttribute)
}

// AttributeName extracts the attribute's label (its signature name).
func (o *Ontology) AttributeName(attr rdf.Term) (string, bool) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	t, ok := o.Source().Object(attr, rdf.IRI(rdf.RDFSLabel))
	if !ok {
		return "", false
	}
	return t.Value, true
}

// SourceOfWrapper returns the data source IRI owning a wrapper.
func (o *Ontology) SourceOfWrapper(wrapperName string) (rdf.Term, bool) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	t, ok := o.Source().MatchFirst(rdf.Any, PropHasWrapper, WrapperIRI(wrapperName))
	if !ok {
		return rdf.Term{}, false
	}
	return t.S, true
}

// --- LAV mappings (paper §2.3) ---

// Mapping is the LAV mapping of one wrapper: a subgraph of the global
// graph (the named graph) and attribute-to-feature sameAs links.
type Mapping struct {
	// Wrapper is the wrapper name the mapping belongs to.
	Wrapper string
	// Subgraph is the set of global-graph triples the wrapper populates,
	// including concept typing, hasFeature edges and concept relations.
	Subgraph []rdf.Triple
	// SameAs maps wrapper attribute names to the global feature IRIs
	// they populate.
	SameAs map[string]rdf.Term
}

// DefineMapping validates and stores a LAV mapping as a named graph
// (named by the wrapper IRI) plus owl:sameAs triples. Validation:
// every subgraph triple must exist in the global graph; every sameAs
// attribute must belong to the wrapper; every sameAs feature must occur
// in the subgraph.
func (o *Ontology) DefineMapping(m Mapping) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	src := o.Source()
	w := WrapperIRI(m.Wrapper)
	if !src.Has(rdf.T(w, rdf.IRI(rdf.RDFType), ClassWrapper)) {
		return fmt.Errorf("%w: %s", ErrUnknownWrapper, m.Wrapper)
	}
	global := o.Global()
	featInSub := map[rdf.Term]bool{}
	for _, t := range m.Subgraph {
		if !global.Has(t) {
			return fmt.Errorf("%w: %s", ErrNotInGlobal, t)
		}
		if t.P == PropHasFeature {
			featInSub[t.O] = true
		}
	}
	// Attribute membership check.
	attrs := map[string]rdf.Term{}
	for _, a := range src.Objects(w, PropHasAttribute) {
		if label, ok := src.Object(a, rdf.IRI(rdf.RDFSLabel)); ok {
			attrs[label.Value] = a
		}
	}
	for attr, feat := range m.SameAs {
		aIRI, ok := attrs[attr]
		if !ok {
			return fmt.Errorf("%w: %q not in %s", ErrAttrNotInWrapper, attr, m.Wrapper)
		}
		if !featInSub[feat] {
			return fmt.Errorf("bdi: sameAs target %s is not a feature of the mapping subgraph", feat)
		}
		_ = aIRI
	}
	// All valid: (re)write the named graph.
	o.dset().DropGraph(w)
	ng := o.dset().Graph(w)
	for _, t := range m.Subgraph {
		ng.MustAdd(t)
	}
	for attr, feat := range m.SameAs {
		ng.MustAdd(rdf.T(attrs[attr], rdf.IRI(rdf.OWLSameAs), feat))
	}
	return nil
}

// MappingOf reconstructs the stored mapping of a wrapper.
func (o *Ontology) MappingOf(wrapperName string) (Mapping, bool) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	w := WrapperIRI(wrapperName)
	g, ok := o.dset().Lookup(w)
	if !ok {
		return Mapping{}, false
	}
	m := Mapping{Wrapper: wrapperName, SameAs: map[string]rdf.Term{}}
	var sameAs []rdf.Triple
	g.EachMatch(rdf.Any, rdf.Any, rdf.Any, func(t rdf.Triple) bool {
		if t.P.Value == rdf.OWLSameAs {
			sameAs = append(sameAs, t)
		} else {
			m.Subgraph = append(m.Subgraph, t)
		}
		return true
	})
	rdf.SortTriples(m.Subgraph)
	// Sorted so that when one attribute maps to several features the
	// surviving SameAs entry is deterministic (matching the pre-iterator
	// sorted-Triples behavior).
	rdf.SortTriples(sameAs)
	for _, t := range sameAs {
		if label, ok := o.Source().Object(t.S, rdf.IRI(rdf.RDFSLabel)); ok {
			m.SameAs[label.Value] = t.O
		}
	}
	return m, true
}

// MappedWrappers returns the names of all wrappers with a defined LAV
// mapping, sorted.
func (o *Ontology) MappedWrappers() []string {
	o.mu.RLock()
	defer o.mu.RUnlock()
	var out []string
	prefix := NSSource + "wrapper/"
	for _, name := range o.dset().GraphNames() {
		if strings.HasPrefix(name.Value, prefix) {
			escaped := strings.TrimPrefix(name.Value, prefix)
			if un, err := url.PathUnescape(escaped); err == nil {
				out = append(out, un)
			}
		}
	}
	sort.Strings(out)
	return out
}

// WrappersCovering returns the names of wrappers whose mapping subgraph
// contains the given concept or one of its (transitive) subclasses —
// under the concept taxonomies of paper §2.1, tuples of a subclass are
// tuples of the superclass, so a wrapper mapping ex:Goalkeeper also
// contributes to queries over ex:Player.
func (o *Ontology) WrappersCovering(concept rdf.Term) []string {
	o.mu.RLock()
	subs := o.Global().SubClassClosure(concept)
	o.mu.RUnlock()
	var out []string
	for _, wname := range o.MappedWrappers() {
		g, ok := o.dset().Lookup(WrapperIRI(wname))
		if !ok {
			continue
		}
		for sub := range subs {
			if g.Has(rdf.T(sub, rdf.IRI(rdf.RDFType), ClassConcept)) {
				out = append(out, wname)
				break
			}
		}
	}
	return out
}

// WrapperProvidesFeature reports whether the wrapper's mapping covers
// (concept, hasFeature, feature) — directly or via a superclass of the
// concept in the taxonomy — and has a sameAs link for the feature.
func (o *Ontology) WrapperProvidesFeature(wrapperName string, concept, feature rdf.Term) bool {
	o.mu.RLock()
	defer o.mu.RUnlock()
	g, ok := o.dset().Lookup(WrapperIRI(wrapperName))
	if !ok {
		return false
	}
	covered := false
	for super := range o.Global().SuperClassClosure(concept) {
		if g.Has(rdf.T(super, PropHasFeature, feature)) {
			covered = true
			break
		}
	}
	if !covered {
		return false
	}
	return g.Count(rdf.Any, rdf.IRI(rdf.OWLSameAs), feature) > 0
}

// AttributeForFeature returns the wrapper attribute name that populates
// the given feature under the wrapper's mapping.
func (o *Ontology) AttributeForFeature(wrapperName string, feature rdf.Term) (string, bool) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	g, ok := o.dset().Lookup(WrapperIRI(wrapperName))
	if !ok {
		return "", false
	}
	for _, a := range g.Subjects(rdf.IRI(rdf.OWLSameAs), feature) {
		if label, ok := o.Source().Object(a, rdf.IRI(rdf.RDFSLabel)); ok {
			return label.Value, true
		}
	}
	return "", false
}

// WrapperCoversRelation reports whether the wrapper's mapping includes
// the concept-relation triple (from, prop, to).
func (o *Ontology) WrapperCoversRelation(wrapperName string, t rdf.Triple) bool {
	o.mu.RLock()
	defer o.mu.RUnlock()
	g, ok := o.dset().Lookup(WrapperIRI(wrapperName))
	if !ok {
		return false
	}
	return g.Has(t)
}
