package bdi

import (
	"errors"
	"strings"
	"testing"

	"mdm/internal/rdf"
	"mdm/internal/relalg"
	"mdm/internal/schema"
)

const ex = "http://ex.org/"

func sig(w string, attrs ...string) schema.Signature {
	s := schema.Signature{Wrapper: w}
	for _, a := range attrs {
		s.Attributes = append(s.Attributes, schema.Attribute{Name: a, Type: relalg.TypeString})
	}
	return s
}

// miniFixture builds a Player/Team ontology close to Figures 5-7.
func miniFixture(t *testing.T) *Ontology {
	t.Helper()
	o := New()
	o.Dataset().Prefixes().Bind("ex", ex)
	player := rdf.IRI(ex + "Player")
	team := rdf.IRI(NSSchema + "SportsTeam")
	pid, pname := rdf.IRI(ex+"playerId"), rdf.IRI(ex+"playerName")
	tid, tname := rdf.IRI(ex+"teamId"), rdf.IRI(ex+"teamName")

	for _, err := range []error{
		o.AddConcept(player, "Player"),
		o.AddConcept(team, "SportsTeam"),
		o.AddFeature(pid, "playerId"),
		o.AddFeature(pname, "playerName"),
		o.AddFeature(tid, "teamId"),
		o.AddFeature(tname, "teamName"),
		o.AttachFeature(player, pid),
		o.AttachFeature(player, pname),
		o.AttachFeature(team, tid),
		o.AttachFeature(team, tname),
		o.MarkIdentifier(pid),
		o.MarkIdentifier(tid),
		o.RelateConcepts(player, rdf.IRI(ex+"playsIn"), team),
		o.AddDataSource("players-api", "Players API"),
		o.AddDataSource("teams-api", "Teams API"),
		o.RegisterWrapper("players-api", sig("w1", "id", "pName", "teamId")),
		o.RegisterWrapper("teams-api", sig("w2", "id", "name")),
	} {
		if err != nil {
			t.Fatal(err)
		}
	}
	return o
}

func TestGlobalGraphConstruction(t *testing.T) {
	o := miniFixture(t)
	if got := len(o.Concepts()); got != 2 {
		t.Fatalf("concepts = %d", got)
	}
	if got := len(o.Features()); got != 4 {
		t.Fatalf("features = %d", got)
	}
	player := rdf.IRI(ex + "Player")
	feats := o.FeaturesOf(player)
	if len(feats) != 2 {
		t.Fatalf("player features = %v", feats)
	}
	owner, ok := o.ConceptOf(rdf.IRI(ex + "playerName"))
	if !ok || owner != player {
		t.Errorf("ConceptOf = %v, %v", owner, ok)
	}
	if _, ok := o.ConceptOf(rdf.IRI(ex + "nope")); ok {
		t.Error("ConceptOf on unknown feature")
	}
	rels := o.ConceptRelations()
	if len(rels) != 1 || rels[0].P.Value != ex+"playsIn" {
		t.Errorf("relations = %v", rels)
	}
}

func TestFeatureSingleOwnerConstraint(t *testing.T) {
	o := miniFixture(t)
	team := rdf.IRI(NSSchema + "SportsTeam")
	err := o.AttachFeature(team, rdf.IRI(ex+"playerName"))
	if !errors.Is(err, ErrFeatureOwned) {
		t.Fatalf("err = %v, want ErrFeatureOwned", err)
	}
	// Re-attaching to the same concept is idempotent, not an error.
	if err := o.AttachFeature(team, rdf.IRI(ex+"teamName")); err != nil {
		t.Fatal(err)
	}
}

func TestAttachFeatureUnknownEndpoints(t *testing.T) {
	o := miniFixture(t)
	if err := o.AttachFeature(rdf.IRI(ex+"Ghost"), rdf.IRI(ex+"playerName")); !errors.Is(err, ErrUnknownConcept) {
		t.Errorf("err = %v", err)
	}
	if err := o.AttachFeature(rdf.IRI(ex+"Player"), rdf.IRI(ex+"ghost")); !errors.Is(err, ErrUnknownFeature) {
		t.Errorf("err = %v", err)
	}
	if err := o.RelateConcepts(rdf.IRI(ex+"Player"), rdf.IRI(ex+"p"), rdf.IRI(ex+"Ghost")); !errors.Is(err, ErrUnknownConcept) {
		t.Errorf("relate err = %v", err)
	}
	if err := o.MarkIdentifier(rdf.IRI(ex + "ghost")); !errors.Is(err, ErrUnknownFeature) {
		t.Errorf("mark err = %v", err)
	}
	if err := o.AddConcept(rdf.Lit("x"), ""); err == nil {
		t.Error("literal concept accepted")
	}
	if err := o.AddFeature(rdf.Blank("b"), ""); err == nil {
		t.Error("blank feature accepted")
	}
}

func TestIdentifiers(t *testing.T) {
	o := miniFixture(t)
	player := rdf.IRI(ex + "Player")
	pid := rdf.IRI(ex + "playerId")
	if !o.IsIdentifier(pid) {
		t.Error("playerId should be an identifier")
	}
	if o.IsIdentifier(rdf.IRI(ex + "playerName")) {
		t.Error("playerName should not be an identifier")
	}
	id, ok := o.IdentifierOf(player)
	if !ok || id != pid {
		t.Errorf("IdentifierOf = %v, %v", id, ok)
	}
	// Transitive identifier: subclass of a subclass.
	special := rdf.IRI(ex + "specialId")
	o.AddFeature(special, "specialId")
	o.AddSubClass(special, pid)
	if !o.IsIdentifier(special) {
		t.Error("transitive identifier not detected")
	}
}

func TestSourceGraphConstruction(t *testing.T) {
	o := miniFixture(t)
	if got := len(o.Sources()); got != 2 {
		t.Fatalf("sources = %d", got)
	}
	ws := o.WrappersOf("players-api")
	if len(ws) != 1 || ws[0] != WrapperIRI("w1") {
		t.Fatalf("wrappers = %v", ws)
	}
	attrs := o.AttributesOf("w1")
	if len(attrs) != 3 {
		t.Fatalf("attributes = %v", attrs)
	}
	name, ok := o.AttributeName(attrs[0])
	if !ok || name == "" {
		t.Errorf("AttributeName = %q, %v", name, ok)
	}
	src, ok := o.SourceOfWrapper("w1")
	if !ok || src != SourceIRI("players-api") {
		t.Errorf("SourceOfWrapper = %v, %v", src, ok)
	}
	if _, ok := o.SourceOfWrapper("nope"); ok {
		t.Error("SourceOfWrapper on unknown wrapper")
	}
	if err := o.RegisterWrapper("ghost-api", sig("w9", "a")); !errors.Is(err, ErrUnknownSource) {
		t.Errorf("register on unknown source = %v", err)
	}
	if err := o.AddDataSource("", ""); err == nil {
		t.Error("empty source id accepted")
	}
}

func TestAttributeReuseWithinSource(t *testing.T) {
	o := miniFixture(t)
	// Second wrapper of players-api shares attribute names id, teamId.
	if err := o.RegisterWrapper("players-api", sig("w1b", "id", "extra")); err != nil {
		t.Fatal(err)
	}
	// The id attribute node must be shared between w1 and w1b …
	a1 := o.AttributesOf("w1")
	a1b := o.AttributesOf("w1b")
	shared := false
	for _, x := range a1 {
		for _, y := range a1b {
			if x == y {
				shared = true
			}
		}
	}
	if !shared {
		t.Error("attribute nodes not reused within the same source")
	}
	// … but "id" of teams-api is a different node (no cross-source reuse).
	if AttributeIRI("players-api", "id") == AttributeIRI("teams-api", "id") {
		t.Error("attribute IRIs must be source-scoped")
	}
}

func playerTeamMapping() (Mapping, Mapping) {
	player := rdf.IRI(ex + "Player")
	team := rdf.IRI(NSSchema + "SportsTeam")
	rt := rdf.IRI(rdf.RDFType)
	m1 := Mapping{
		Wrapper: "w1",
		Subgraph: []rdf.Triple{
			rdf.T(player, rt, ClassConcept),
			rdf.T(player, PropHasFeature, rdf.IRI(ex+"playerId")),
			rdf.T(player, PropHasFeature, rdf.IRI(ex+"playerName")),
			rdf.T(player, rdf.IRI(ex+"playsIn"), team),
			rdf.T(team, rt, ClassConcept),
			rdf.T(team, PropHasFeature, rdf.IRI(ex+"teamId")),
		},
		SameAs: map[string]rdf.Term{
			"id": rdf.IRI(ex + "playerId"), "pName": rdf.IRI(ex + "playerName"),
			"teamId": rdf.IRI(ex + "teamId"),
		},
	}
	m2 := Mapping{
		Wrapper: "w2",
		Subgraph: []rdf.Triple{
			rdf.T(team, rt, ClassConcept),
			rdf.T(team, PropHasFeature, rdf.IRI(ex+"teamId")),
			rdf.T(team, PropHasFeature, rdf.IRI(ex+"teamName")),
		},
		SameAs: map[string]rdf.Term{
			"id": rdf.IRI(ex + "teamId"), "name": rdf.IRI(ex + "teamName"),
		},
	}
	return m1, m2
}

func TestDefineAndReadMappings(t *testing.T) {
	o := miniFixture(t)
	m1, m2 := playerTeamMapping()
	if err := o.DefineMapping(m1); err != nil {
		t.Fatal(err)
	}
	if err := o.DefineMapping(m2); err != nil {
		t.Fatal(err)
	}
	names := o.MappedWrappers()
	if len(names) != 2 || names[0] != "w1" || names[1] != "w2" {
		t.Fatalf("MappedWrappers = %v", names)
	}
	got, ok := o.MappingOf("w1")
	if !ok || len(got.Subgraph) != len(m1.Subgraph) || len(got.SameAs) != 3 {
		t.Fatalf("MappingOf = %+v, %v", got, ok)
	}
	if _, ok := o.MappingOf("ghost"); ok {
		t.Error("MappingOf unknown wrapper")
	}

	player := rdf.IRI(ex + "Player")
	team := rdf.IRI(NSSchema + "SportsTeam")
	if ws := o.WrappersCovering(player); len(ws) != 1 || ws[0] != "w1" {
		t.Errorf("WrappersCovering(Player) = %v", ws)
	}
	if ws := o.WrappersCovering(team); len(ws) != 2 {
		t.Errorf("WrappersCovering(Team) = %v", ws)
	}
	if !o.WrapperProvidesFeature("w1", player, rdf.IRI(ex+"playerName")) {
		t.Error("w1 should provide playerName")
	}
	if o.WrapperProvidesFeature("w2", player, rdf.IRI(ex+"playerName")) {
		t.Error("w2 should not provide playerName")
	}
	// w1 covers Team's id but not teamName.
	if !o.WrapperProvidesFeature("w1", team, rdf.IRI(ex+"teamId")) {
		t.Error("w1 should provide teamId")
	}
	if o.WrapperProvidesFeature("w1", team, rdf.IRI(ex+"teamName")) {
		t.Error("w1 should not provide teamName")
	}
	attr, ok := o.AttributeForFeature("w1", rdf.IRI(ex+"playerName"))
	if !ok || attr != "pName" {
		t.Errorf("AttributeForFeature = %q, %v", attr, ok)
	}
	if _, ok := o.AttributeForFeature("w2", rdf.IRI(ex+"playerName")); ok {
		t.Error("AttributeForFeature should miss for w2")
	}
	if !o.WrapperCoversRelation("w1", rdf.T(player, rdf.IRI(ex+"playsIn"), team)) {
		t.Error("w1 should cover playsIn")
	}
	if o.WrapperCoversRelation("w2", rdf.T(player, rdf.IRI(ex+"playsIn"), team)) {
		t.Error("w2 should not cover playsIn")
	}
}

func TestDefineMappingValidation(t *testing.T) {
	o := miniFixture(t)
	m1, _ := playerTeamMapping()

	bad := m1
	bad.Wrapper = "ghost"
	if err := o.DefineMapping(bad); !errors.Is(err, ErrUnknownWrapper) {
		t.Errorf("unknown wrapper = %v", err)
	}

	bad = m1
	bad.Subgraph = append(append([]rdf.Triple(nil), m1.Subgraph...),
		rdf.T(rdf.IRI(ex+"Nope"), rdf.IRI(rdf.RDFType), ClassConcept))
	if err := o.DefineMapping(bad); !errors.Is(err, ErrNotInGlobal) {
		t.Errorf("foreign triple = %v", err)
	}

	bad = m1
	bad.SameAs = map[string]rdf.Term{"ghostAttr": rdf.IRI(ex + "playerId")}
	if err := o.DefineMapping(bad); !errors.Is(err, ErrAttrNotInWrapper) {
		t.Errorf("foreign attribute = %v", err)
	}

	bad = m1
	bad.SameAs = map[string]rdf.Term{"id": rdf.IRI(ex + "teamName")} // not in subgraph
	if err := o.DefineMapping(bad); err == nil {
		t.Error("sameAs to uncovered feature accepted")
	}

	// Redefinition replaces the old named graph.
	if err := o.DefineMapping(m1); err != nil {
		t.Fatal(err)
	}
	smaller := m1
	smaller.Subgraph = m1.Subgraph[:2]
	smaller.SameAs = map[string]rdf.Term{"id": rdf.IRI(ex + "playerId")}
	if err := o.DefineMapping(smaller); err != nil {
		t.Fatal(err)
	}
	got, _ := o.MappingOf("w1")
	if len(got.Subgraph) != 2 || len(got.SameAs) != 1 {
		t.Errorf("redefined mapping = %+v", got)
	}
}

func TestValidateCleanFixture(t *testing.T) {
	o := miniFixture(t)
	m1, m2 := playerTeamMapping()
	o.DefineMapping(m1)
	o.DefineMapping(m2)
	if v := o.Validate(); len(v) != 0 {
		t.Errorf("violations on clean fixture: %v", v)
	}
}

func TestValidateDetectsViolations(t *testing.T) {
	o := miniFixture(t)
	// Force a double-owner by writing directly to the graph (bypassing
	// the API, as a corrupted store would).
	team := rdf.IRI(NSSchema + "SportsTeam")
	o.Global().MustAdd(rdf.T(team, PropHasFeature, rdf.IRI(ex+"playerName")))
	found := false
	for _, v := range o.Validate() {
		if v.Rule == "feature-single-owner" {
			found = true
		}
	}
	if !found {
		t.Error("feature-single-owner violation not detected")
	}

	// Concept without identifier used by a mapping.
	o2 := miniFixture(t)
	noid := rdf.IRI(ex + "NoId")
	fx := rdf.IRI(ex + "x")
	o2.AddConcept(noid, "NoId")
	o2.AddFeature(fx, "x")
	o2.AttachFeature(noid, fx)
	o2.RegisterWrapper("players-api", sig("w7", "x"))
	if err := o2.DefineMapping(Mapping{
		Wrapper: "w7",
		Subgraph: []rdf.Triple{
			rdf.T(noid, rdf.IRI(rdf.RDFType), ClassConcept),
			rdf.T(noid, PropHasFeature, fx),
		},
		SameAs: map[string]rdf.Term{"x": fx},
	}); err != nil {
		t.Fatal(err)
	}
	found = false
	for _, v := range o2.Validate() {
		if v.Rule == "concept-identifier" {
			found = true
		}
	}
	if !found {
		t.Errorf("concept-identifier violation not detected: %v", o2.Validate())
	}

	// Dangling hasFeature edge.
	o3 := New()
	o3.Global().MustAdd(rdf.T(rdf.IRI(ex+"C"), PropHasFeature, rdf.IRI(ex+"f")))
	vs := o3.Validate()
	if len(vs) < 2 { // undeclared concept + undeclared feature
		t.Errorf("dangling edge violations = %v", vs)
	}
}

func TestRenderings(t *testing.T) {
	o := miniFixture(t)
	m1, m2 := playerTeamMapping()
	o.DefineMapping(m1)
	o.DefineMapping(m2)

	global := o.RenderGlobal()
	for _, frag := range []string{"concept ex:Player", "feature ex:playerId  [identifier]", "ex:playsIn", "sc:SportsTeam"} {
		if !strings.Contains(global, frag) {
			t.Errorf("RenderGlobal missing %q:\n%s", frag, global)
		}
	}
	src := o.RenderSource()
	for _, frag := range []string{"dataSource Players API", "wrapper w1(id, pName, teamId)", "wrapper w2(id, name)"} {
		if !strings.Contains(src, frag) {
			t.Errorf("RenderSource missing %q:\n%s", frag, src)
		}
	}
	maps := o.RenderMappings()
	for _, frag := range []string{"wrapper w1", "pName owl:sameAs ex:playerName", "covers:"} {
		if !strings.Contains(maps, frag) {
			t.Errorf("RenderMappings missing %q:\n%s", frag, maps)
		}
	}
}

func TestStats(t *testing.T) {
	o := miniFixture(t)
	m1, m2 := playerTeamMapping()
	o.DefineMapping(m1)
	o.DefineMapping(m2)
	st := o.Stats()
	if st.Concepts != 2 || st.Features != 4 || st.Relations != 1 {
		t.Errorf("global stats = %+v", st)
	}
	if st.Sources != 2 || st.Wrappers != 2 || st.Attributes != 5 {
		t.Errorf("source stats = %+v", st)
	}
	if st.Mappings != 2 || st.SameAs != 5 {
		t.Errorf("mapping stats = %+v", st)
	}
}

func TestFromDatasetBindsPrefixes(t *testing.T) {
	o := miniFixture(t)
	o2 := FromDataset(o.Dataset())
	if len(o2.Concepts()) != 2 {
		t.Error("FromDataset lost data")
	}
	if _, ok := o2.Dataset().Prefixes().Expand("G:Concept"); !ok {
		t.Error("FromDataset did not bind prefixes")
	}
}

func TestWrapperIRIEscaping(t *testing.T) {
	w := WrapperIRI("w 1/x")
	if strings.ContainsAny(w.Value[len(NSSource):], " ") {
		t.Errorf("unescaped wrapper IRI: %s", w)
	}
	o := New()
	o.AddDataSource("src", "")
	o.RegisterWrapper("src", sig("w 1/x", "a"))
	// Mapping round trip with escaped name.
	c := rdf.IRI(ex + "C")
	f := rdf.IRI(ex + "f")
	o.AddConcept(c, "")
	o.AddFeature(f, "")
	o.AttachFeature(c, f)
	if err := o.DefineMapping(Mapping{
		Wrapper: "w 1/x",
		Subgraph: []rdf.Triple{
			rdf.T(c, rdf.IRI(rdf.RDFType), ClassConcept),
			rdf.T(c, PropHasFeature, f),
		},
		SameAs: map[string]rdf.Term{"a": f},
	}); err != nil {
		t.Fatal(err)
	}
	names := o.MappedWrappers()
	if len(names) != 1 || names[0] != "w 1/x" {
		t.Errorf("MappedWrappers with escaping = %v", names)
	}
}

// TestOntologyGraphsShareDictionary guards the dataset-wide dictionary
// invariant the SPARQL ID-row engine relies on: the global graph, the
// source graph and every LAV-mapping named graph intern terms in the
// same dictionary, so a concept IRI carries one TermID across all of
// them (what lets cross-graph metadata queries join at the ID level).
func TestOntologyGraphsShareDictionary(t *testing.T) {
	o := New()
	c := rdf.IRI(ex + "Concept1")
	f := rdf.IRI(ex + "f1")
	if err := o.AddConcept(c, ""); err != nil {
		t.Fatal(err)
	}
	if err := o.AddFeature(f, ""); err != nil {
		t.Fatal(err)
	}
	if err := o.AttachFeature(c, f); err != nil {
		t.Fatal(err)
	}
	o.AddDataSource("src", "")
	o.RegisterWrapper("src", sig("w1", "a"))
	if err := o.DefineMapping(Mapping{
		Wrapper: "w1",
		Subgraph: []rdf.Triple{
			rdf.T(c, rdf.IRI(rdf.RDFType), ClassConcept),
			rdf.T(c, PropHasFeature, f),
		},
		SameAs: map[string]rdf.Term{"a": f},
	}); err != nil {
		t.Fatal(err)
	}

	ds := o.Dataset()
	mg, ok := ds.Lookup(WrapperIRI("w1"))
	if !ok {
		t.Fatal("mapping graph missing")
	}
	for name, g := range map[string]*rdf.Graph{
		"global": o.Global(), "source": o.Source(), "mapping": mg,
	} {
		if g.Dict() != ds.Dict() {
			t.Errorf("%s graph does not share the dataset dictionary", name)
		}
	}
	gid, gok := o.Global().IDOf(c)
	mid, mok := mg.IDOf(c)
	if !gok || !mok || gid != mid {
		t.Errorf("concept TermID differs across graphs: global %d/%v mapping %d/%v", gid, gok, mid, mok)
	}
}

func TestRebindSwapsDatasetUnderQuiescence(t *testing.T) {
	o := miniFixture(t)
	old := o.Dataset()
	next := old.Clone()

	// A successful swap re-points every accessor at the new dataset and
	// hands the swap function the dataset that was live at call time.
	var got *rdf.Dataset
	o.Rebind(func(cur *rdf.Dataset) *rdf.Dataset {
		got = cur
		return next
	})
	if got != old {
		t.Fatal("swap did not receive the live dataset")
	}
	if o.Dataset() != next {
		t.Fatal("ontology not re-pointed at the swapped-in dataset")
	}
	// Facade reads flow through the new dataset.
	if o.Stats().Concepts != 2 {
		t.Fatalf("stats after swap = %+v", o.Stats())
	}

	// A nil swap result (seal failure) leaves the current dataset alone.
	o.Rebind(func(cur *rdf.Dataset) *rdf.Dataset { return nil })
	if o.Dataset() != next {
		t.Fatal("failed swap must not re-point the ontology")
	}

	// Mutations after the swap land in the new dataset, not the old one.
	if err := o.AddConcept(rdf.IRI(ex+"Referee"), "Referee"); err != nil {
		t.Fatal(err)
	}
	if o.Stats().Concepts != 3 {
		t.Fatalf("concepts after post-swap add = %d", o.Stats().Concepts)
	}
	if old.Len() == next.Len() {
		t.Fatal("post-swap mutation leaked into the retired dataset")
	}
}
