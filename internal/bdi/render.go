package bdi

import (
	"fmt"
	"sort"
	"strings"

	"mdm/internal/rdf"
)

// RenderGlobal renders the global graph in the style of Figure 5 of the
// paper: each concept with its features (identifier features marked),
// followed by concept relations and taxonomy edges.
func (o *Ontology) RenderGlobal() string {
	o.mu.RLock()
	defer o.mu.RUnlock()
	pm := o.dset().Prefixes()
	g := o.Global()
	var sb strings.Builder
	sb.WriteString("GLOBAL GRAPH (Figure 5 style)\n")
	for _, c := range g.Subjects(rdf.IRI(rdf.RDFType), ClassConcept) {
		fmt.Fprintf(&sb, "concept %s\n", pm.CompactTerm(c))
		feats := g.Objects(c, PropHasFeature)
		for _, f := range feats {
			marker := ""
			if g.IsSubClassOf(f, Identifier) {
				marker = "  [identifier]"
			}
			fmt.Fprintf(&sb, "  feature %s%s\n", pm.CompactTerm(f), marker)
		}
	}
	rels := o.conceptRelationsLocked()
	if len(rels) > 0 {
		sb.WriteString("relations\n")
		for _, t := range rels {
			fmt.Fprintf(&sb, "  %s --%s--> %s\n",
				pm.CompactTerm(t.S), pm.CompactTerm(t.P), pm.CompactTerm(t.O))
		}
	}
	var taxo []rdf.Triple
	g.EachMatch(rdf.Any, rdf.IRI(rdf.RDFSSubClassOf), rdf.Any, func(t rdf.Triple) bool {
		if t.O != Identifier {
			taxo = append(taxo, t)
		}
		return true
	})
	rdf.SortTriples(taxo)
	if len(taxo) > 0 {
		sb.WriteString("taxonomy\n")
		for _, t := range taxo {
			fmt.Fprintf(&sb, "  %s subClassOf %s\n", pm.CompactTerm(t.S), pm.CompactTerm(t.O))
		}
	}
	return sb.String()
}

// RenderSource renders the source graph in the style of Figure 6: data
// sources, their wrappers, and each wrapper's attributes.
func (o *Ontology) RenderSource() string {
	o.mu.RLock()
	defer o.mu.RUnlock()
	g := o.Source()
	var sb strings.Builder
	sb.WriteString("SOURCE GRAPH (Figure 6 style)\n")
	for _, s := range g.Subjects(rdf.IRI(rdf.RDFType), ClassDataSource) {
		label := s.LocalName()
		if l, ok := g.Object(s, rdf.IRI(rdf.RDFSLabel)); ok {
			label = l.Value
		}
		fmt.Fprintf(&sb, "dataSource %s\n", label)
		for _, w := range g.Objects(s, PropHasWrapper) {
			wl := w.LocalName()
			if l, ok := g.Object(w, rdf.IRI(rdf.RDFSLabel)); ok {
				wl = l.Value
			}
			var attrs []string
			for _, a := range g.Objects(w, PropHasAttribute) {
				if l, ok := g.Object(a, rdf.IRI(rdf.RDFSLabel)); ok {
					attrs = append(attrs, l.Value)
				}
			}
			sort.Strings(attrs)
			fmt.Fprintf(&sb, "  wrapper %s(%s)\n", wl, strings.Join(attrs, ", "))
		}
	}
	return sb.String()
}

// RenderMappings renders all LAV mappings in the style of Figure 7: per
// wrapper, the covered global subgraph and the attribute→feature links.
func (o *Ontology) RenderMappings() string {
	var sb strings.Builder
	sb.WriteString("LAV MAPPINGS (Figure 7 style)\n")
	pm := o.dset().Prefixes()
	for _, wname := range o.MappedWrappers() {
		m, ok := o.MappingOf(wname)
		if !ok {
			continue
		}
		fmt.Fprintf(&sb, "wrapper %s\n", wname)
		sb.WriteString("  covers:\n")
		for _, t := range m.Subgraph {
			fmt.Fprintf(&sb, "    %s %s %s\n",
				pm.CompactTerm(t.S), pm.CompactTerm(t.P), pm.CompactTerm(t.O))
		}
		var attrs []string
		for a := range m.SameAs {
			attrs = append(attrs, a)
		}
		sort.Strings(attrs)
		sb.WriteString("  sameAs:\n")
		for _, a := range attrs {
			fmt.Fprintf(&sb, "    %s owl:sameAs %s\n", a, pm.CompactTerm(m.SameAs[a]))
		}
	}
	return sb.String()
}

// Stats summarizes ontology sizes (used by figure benches and the REST
// API's /stats endpoint).
type Stats struct {
	Concepts, Features, Relations    int
	Sources, Wrappers, Attributes    int
	Mappings, MappingTriples, SameAs int
}

// Stats computes the ontology's statistics.
func (o *Ontology) Stats() Stats {
	o.mu.RLock()
	typ := rdf.IRI(rdf.RDFType)
	st := Stats{
		Concepts:  o.Global().Count(rdf.Any, typ, ClassConcept),
		Features:  o.Global().Count(rdf.Any, typ, ClassFeature),
		Relations: len(o.conceptRelationsLocked()),
		Sources:   o.Source().Count(rdf.Any, typ, ClassDataSource),
		Wrappers:  o.Source().Count(rdf.Any, typ, ClassWrapper),
	}
	st.Attributes = o.Source().Count(rdf.Any, typ, ClassAttribute)
	o.mu.RUnlock()

	for _, w := range o.MappedWrappers() {
		m, ok := o.MappingOf(w)
		if !ok {
			continue
		}
		st.Mappings++
		st.MappingTriples += len(m.Subgraph)
		st.SameAs += len(m.SameAs)
	}
	return st
}
