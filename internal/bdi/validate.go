package bdi

import (
	"fmt"

	"mdm/internal/rdf"
)

// Violation describes one integrity-constraint breach found by Validate.
type Violation struct {
	// Rule is a short machine-readable rule name.
	Rule string
	// Detail is a human-readable explanation.
	Detail string
}

func (v Violation) String() string { return v.Rule + ": " + v.Detail }

// Validate checks the ontology against the BDI metamodel's integrity
// constraints and returns all violations (empty means consistent):
//
//   - feature-single-owner: every feature is attached to at most one
//     concept (paper §2.1);
//   - dangling-feature-edge: hasFeature edges reference declared
//     concepts and features;
//   - wrapper-owned: every wrapper belongs to exactly one data source;
//   - attribute-scope: every attribute node is referenced only by
//     wrappers of its own data source (paper §2.2);
//   - mapping-subgraph: every mapping named graph is a subgraph of the
//     global graph (ignoring sameAs links);
//   - mapping-sameas: sameAs links connect wrapper attributes to
//     features covered by the wrapper's subgraph;
//   - concept-identifier: every concept used by some mapping has an
//     identifier feature (needed for joins, paper §2.3).
func (o *Ontology) Validate() []Violation {
	o.mu.RLock()
	defer o.mu.RUnlock()
	var out []Violation
	global := o.Global()
	src := o.Source()

	// feature-single-owner + dangling-feature-edge.
	for _, t := range global.Match(rdf.Any, PropHasFeature, rdf.Any) {
		if !global.Has(rdf.T(t.S, rdf.IRI(rdf.RDFType), ClassConcept)) {
			out = append(out, Violation{"dangling-feature-edge",
				fmt.Sprintf("%s has features but is not a declared concept", t.S)})
		}
		if !global.Has(rdf.T(t.O, rdf.IRI(rdf.RDFType), ClassFeature)) {
			out = append(out, Violation{"dangling-feature-edge",
				fmt.Sprintf("%s is attached to %s but is not a declared feature", t.O, t.S)})
		}
	}
	for _, f := range global.Subjects(rdf.IRI(rdf.RDFType), ClassFeature) {
		if n := global.Count(rdf.Any, PropHasFeature, f); n > 1 {
			out = append(out, Violation{"feature-single-owner",
				fmt.Sprintf("feature %s owned by %d concepts", f, n)})
		}
	}

	// wrapper-owned.
	for _, w := range src.Subjects(rdf.IRI(rdf.RDFType), ClassWrapper) {
		if n := src.Count(rdf.Any, PropHasWrapper, w); n != 1 {
			out = append(out, Violation{"wrapper-owned",
				fmt.Sprintf("wrapper %s owned by %d sources", w, n)})
		}
	}

	// attribute-scope: attribute IRIs embed their source; check every
	// wrapper referencing them belongs to that source.
	for _, t := range src.Match(rdf.Any, PropHasAttribute, rdf.Any) {
		if src.Count(rdf.Any, PropHasWrapper, t.S) != 1 {
			continue // already reported by wrapper-owned
		}
		wOwner, _ := src.MatchFirst(rdf.Any, PropHasWrapper, t.S)
		attrNS := t.O.Value
		srcIRI := wOwner.S.Value
		// attribute/<src>/<name> must match dataSource/<src>.
		wantPrefix := NSSource + "attribute/" + srcIRI[len(NSSource+"dataSource/"):] + "/"
		if len(attrNS) < len(wantPrefix) || attrNS[:len(wantPrefix)] != wantPrefix {
			out = append(out, Violation{"attribute-scope",
				fmt.Sprintf("attribute %s referenced by wrapper of %s", t.O, wOwner.S)})
		}
	}

	// Mapping constraints.
	for _, wname := range o.MappedWrappers() {
		g, _ := o.dset().Lookup(WrapperIRI(wname))
		if g == nil {
			continue
		}
		wIRI := WrapperIRI(wname)
		if !src.Has(rdf.T(wIRI, rdf.IRI(rdf.RDFType), ClassWrapper)) {
			out = append(out, Violation{"mapping-subgraph",
				fmt.Sprintf("mapping graph exists for undeclared wrapper %s", wname)})
			continue
		}
		attrs := map[rdf.Term]bool{}
		for _, a := range src.Objects(wIRI, PropHasAttribute) {
			attrs[a] = true
		}
		features := map[rdf.Term]bool{}
		for _, t := range g.Triples() {
			if t.P.Value == rdf.OWLSameAs {
				continue
			}
			if !global.Has(t) {
				out = append(out, Violation{"mapping-subgraph",
					fmt.Sprintf("wrapper %s maps triple %s absent from global graph", wname, t)})
			}
			if t.P == PropHasFeature {
				features[t.O] = true
			}
		}
		for _, t := range g.Match(rdf.Any, rdf.IRI(rdf.OWLSameAs), rdf.Any) {
			if !attrs[t.S] {
				out = append(out, Violation{"mapping-sameas",
					fmt.Sprintf("wrapper %s sameAs from foreign attribute %s", wname, t.S)})
			}
			if !features[t.O] {
				out = append(out, Violation{"mapping-sameas",
					fmt.Sprintf("wrapper %s sameAs to uncovered feature %s", wname, t.O)})
			}
		}
		// concept-identifier.
		for _, t := range g.Match(rdf.Any, rdf.IRI(rdf.RDFType), ClassConcept) {
			concept := t.S
			hasID := false
			for _, f := range global.Objects(concept, PropHasFeature) {
				if global.IsSubClassOf(f, Identifier) {
					hasID = true
					break
				}
			}
			if !hasID {
				out = append(out, Violation{"concept-identifier",
					fmt.Sprintf("concept %s used by wrapper %s has no identifier feature", concept, wname)})
			}
		}
	}
	return out
}
