package federate

import (
	"errors"
	"expvar"
	"sync"
	"time"
)

// Process-wide breaker transition counters (the per-set numbers are on
// BreakerSet.Stats), served at GET /debug/vars alongside the cache
// counters.
var (
	expBreakerOpened     = expvar.NewInt("mdm.federate.breaker.opened")
	expBreakerHalfOpened = expvar.NewInt("mdm.federate.breaker.half_opened")
	expBreakerClosed     = expvar.NewInt("mdm.federate.breaker.closed")
	expBreakerFastFails  = expvar.NewInt("mdm.federate.breaker.fast_fails")
)

// ErrBreakerOpen is returned (wrapped with the source name) when a
// fetch is suppressed because the source's circuit breaker is open.
// The REST layer maps it to 503.
var ErrBreakerOpen = errors.New("circuit breaker open")

// BreakerState is a circuit breaker's position.
type BreakerState int32

// Breaker states: Closed (healthy, fetches flow), Open (failing,
// fetches fail fast), HalfOpen (cooldown elapsed, one probe in flight).
const (
	StateClosed BreakerState = iota
	StateOpen
	StateHalfOpen
)

// String renders the state for expvar and logs.
func (s BreakerState) String() string {
	switch s {
	case StateOpen:
		return "open"
	case StateHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// Breaker is a per-source circuit breaker: Threshold consecutive
// source-fault failures trip it open; while open every Allow fails fast
// (no fetch is issued, so a dead source costs nothing per query); after
// Cooldown one probe is let through half-open — its success closes the
// breaker, its failure re-opens it for another cooldown. Concurrent
// callers during half-open fail fast rather than piling onto the probe.
type Breaker struct {
	mu       sync.Mutex
	state    BreakerState
	failures int       // consecutive source-fault failures while closed
	openedAt time.Time // when the breaker last tripped
	probing  bool      // a half-open probe is outstanding

	threshold int
	cooldown  time.Duration
	now       func() time.Time
	set       *BreakerSet // owning set, for transition counters (may be nil)
}

// State returns the breaker's current position (open is reported as
// half-open-eligible only once a caller observes the elapsed cooldown
// via Allow).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Allow reports whether a fetch attempt may proceed. nil means go (and,
// in half-open, claims the probe slot); ErrBreakerOpen means fail fast.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case StateClosed:
		return nil
	case StateOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			b.countFastFail()
			return ErrBreakerOpen
		}
		b.state = StateHalfOpen
		b.probing = true
		expBreakerHalfOpened.Add(1)
		if b.set != nil {
			b.set.halfOpened.Add(1)
		}
		return nil
	default: // StateHalfOpen
		if b.probing {
			b.countFastFail()
			return ErrBreakerOpen
		}
		b.probing = true
		return nil
	}
}

func (b *Breaker) countFastFail() {
	expBreakerFastFails.Add(1)
	if b.set != nil {
		b.set.fastFails.Add(1)
	}
}

// RecordSuccess reports a successful fetch attempt: it resets the
// consecutive-failure count and closes a half-open breaker.
func (b *Breaker) RecordSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case StateClosed:
		b.failures = 0
	case StateHalfOpen:
		b.state = StateClosed
		b.failures = 0
		b.probing = false
		expBreakerClosed.Add(1)
		if b.set != nil {
			b.set.closed.Add(1)
		}
	}
	// A success recorded while Open predates the trip; ignore it — the
	// half-open probe decides recovery.
}

// RecordFailure reports a failed source-fault fetch attempt (callers
// filter by ErrClass.sourceFault, so cancellations and 4xxs never trip
// a breaker). It advances Closed toward Open and re-opens a failed
// half-open probe.
func (b *Breaker) RecordFailure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case StateClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.trip()
		}
	case StateHalfOpen:
		b.probing = false
		b.trip()
	}
}

// trip moves to Open; callers hold b.mu.
func (b *Breaker) trip() {
	b.state = StateOpen
	b.openedAt = b.now()
	b.failures = 0
	expBreakerOpened.Add(1)
	if b.set != nil {
		b.set.opened.Add(1)
	}
}

// reset returns the breaker to a fresh Closed state.
func (b *Breaker) reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = StateClosed
	b.failures = 0
	b.probing = false
}

// Default breaker knobs: DefaultBreakerThreshold consecutive
// source-fault failures trip a source's breaker; DefaultBreakerCooldown
// is how long it fails fast before probing.
const (
	DefaultBreakerThreshold = 5
	DefaultBreakerCooldown  = 10 * time.Second
)

// BreakerSet manages one Breaker per source name, created lazily on
// first use so the set covers whatever sources the plans mention.
type BreakerSet struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time // injectable for tests

	mu sync.Mutex
	m  map[string]*Breaker

	opened, halfOpened, closed, fastFails expvarInt
}

// expvarInt is a tiny atomic counter (sync/atomic.Int64 without the
// import noise at every use site).
type expvarInt struct{ v expvar.Int }

func (c *expvarInt) Add(d int64) { c.v.Add(d) }
func (c *expvarInt) Load() int64 { return c.v.Value() }

// NewBreakerSet returns a set tripping each source after threshold
// consecutive source-fault failures and probing after cooldown.
// Non-positive arguments take the defaults.
func NewBreakerSet(threshold int, cooldown time.Duration) *BreakerSet {
	if threshold <= 0 {
		threshold = DefaultBreakerThreshold
	}
	if cooldown <= 0 {
		cooldown = DefaultBreakerCooldown
	}
	return &BreakerSet{threshold: threshold, cooldown: cooldown, now: time.Now, m: map[string]*Breaker{}}
}

// For returns (creating if needed) the breaker for a source name.
func (s *BreakerSet) For(name string) *Breaker {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.m[name]
	if !ok {
		b = &Breaker{threshold: s.threshold, cooldown: s.cooldown, now: func() time.Time { return s.now() }, set: s}
		s.m[name] = b
	}
	return b
}

// Reset returns a source's breaker to Closed (wrapper re-registration:
// the new wrapper deserves a fresh record).
func (s *BreakerSet) Reset(name string) {
	s.mu.Lock()
	b := s.m[name]
	s.mu.Unlock()
	if b != nil {
		b.reset()
	}
}

// States snapshots every known source's breaker state, for expvar:
//
//	expvar.Publish("mdm.federate.breaker.states",
//	    expvar.Func(func() any { return set.States() }))
func (s *BreakerSet) States() map[string]string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]string, len(s.m))
	for name, b := range s.m {
		out[name] = b.State().String()
	}
	return out
}

// BreakerStats is a point-in-time transition-counter snapshot.
type BreakerStats struct {
	// Opened counts closed/half-open → open transitions.
	Opened int64
	// HalfOpened counts open → half-open transitions.
	HalfOpened int64
	// Closed counts half-open → closed recoveries.
	Closed int64
	// FastFails counts fetches suppressed by an open breaker.
	FastFails int64
}

// Stats returns this set's transition counters.
func (s *BreakerSet) Stats() BreakerStats {
	return BreakerStats{
		Opened:     s.opened.Load(),
		HalfOpened: s.halfOpened.Load(),
		Closed:     s.closed.Load(),
		FastFails:  s.fastFails.Load(),
	}
}
