package federate

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// testBreakerSet returns a set with an injected clock.
func testBreakerSet(threshold int, cooldown time.Duration) (*BreakerSet, func(time.Duration)) {
	s := NewBreakerSet(threshold, cooldown)
	var mu sync.Mutex
	now := time.Unix(1000, 0)
	s.now = func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }
	return s, advance
}

// TestBreakerThresholdTrip: the breaker stays closed through
// threshold-1 consecutive failures, trips on the threshold-th, and a
// success in between resets the count.
func TestBreakerThresholdTrip(t *testing.T) {
	s, _ := testBreakerSet(3, time.Minute)
	b := s.For("src")
	for i := 0; i < 2; i++ {
		b.RecordFailure()
		if got := b.State(); got != StateClosed {
			t.Fatalf("state after %d failures = %v, want closed", i+1, got)
		}
	}
	// A success wipes the consecutive count.
	b.RecordSuccess()
	for i := 0; i < 2; i++ {
		b.RecordFailure()
	}
	if got := b.State(); got != StateClosed {
		t.Fatalf("state after success+2 failures = %v, want closed", got)
	}
	b.RecordFailure()
	if got := b.State(); got != StateOpen {
		t.Fatalf("state after threshold = %v, want open", got)
	}
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("Allow while open = %v, want ErrBreakerOpen", err)
	}
	if st := s.Stats(); st.Opened != 1 || st.FastFails != 1 {
		t.Fatalf("stats = %+v, want 1 opened / 1 fast fail", st)
	}
}

// TestBreakerHalfOpenProbeSuccess: after the cooldown one caller gets
// the probe slot, concurrent callers keep failing fast, and the probe's
// success closes the breaker.
func TestBreakerHalfOpenProbeSuccess(t *testing.T) {
	s, advance := testBreakerSet(1, time.Minute)
	b := s.For("src")
	b.RecordFailure()
	if got := b.State(); got != StateOpen {
		t.Fatalf("state = %v, want open", got)
	}
	advance(59 * time.Second)
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("Allow inside cooldown = %v, want ErrBreakerOpen", err)
	}
	advance(2 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe Allow = %v, want nil", err)
	}
	if got := b.State(); got != StateHalfOpen {
		t.Fatalf("state = %v, want half-open", got)
	}
	// The probe is out; everyone else fails fast.
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("concurrent Allow during probe = %v, want ErrBreakerOpen", err)
	}
	b.RecordSuccess()
	if got := b.State(); got != StateClosed {
		t.Fatalf("state after probe success = %v, want closed", got)
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("Allow after recovery = %v", err)
	}
	st := s.Stats()
	if st.Opened != 1 || st.HalfOpened != 1 || st.Closed != 1 {
		t.Fatalf("stats = %+v, want 1 opened / 1 half-opened / 1 closed", st)
	}
}

// TestBreakerHalfOpenProbeFailure: a failed probe re-opens the breaker
// for another full cooldown.
func TestBreakerHalfOpenProbeFailure(t *testing.T) {
	s, advance := testBreakerSet(1, time.Minute)
	b := s.For("src")
	b.RecordFailure()
	advance(61 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe Allow = %v", err)
	}
	b.RecordFailure()
	if got := b.State(); got != StateOpen {
		t.Fatalf("state after probe failure = %v, want open", got)
	}
	// The cooldown restarts from the re-trip.
	advance(59 * time.Second)
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("Allow inside second cooldown = %v, want ErrBreakerOpen", err)
	}
	advance(2 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("second probe Allow = %v", err)
	}
	if st := s.Stats(); st.Opened != 2 {
		t.Fatalf("opened = %d, want 2", st.Opened)
	}
}

// TestBreakerConcurrentCallersDuringOpen: every caller racing an open
// breaker fails fast (no probe slots before the cooldown), and the
// suppressions are counted. Run under -race in CI.
func TestBreakerConcurrentCallersDuringOpen(t *testing.T) {
	s, _ := testBreakerSet(1, time.Hour)
	b := s.For("src")
	b.RecordFailure()
	const n = 16
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = b.Allow()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, ErrBreakerOpen) {
			t.Fatalf("caller %d: err = %v, want ErrBreakerOpen", i, err)
		}
	}
	if st := s.Stats(); st.FastFails != n {
		t.Fatalf("fast fails = %d, want %d", st.FastFails, n)
	}
}

// TestBreakerSetResetAndStates: Reset returns a tripped source to
// closed (the wrapper re-registration hook) and States snapshots every
// known breaker.
func TestBreakerSetResetAndStates(t *testing.T) {
	s, _ := testBreakerSet(1, time.Hour)
	s.For("up").RecordSuccess()
	s.For("down").RecordFailure()
	want := map[string]string{"up": "closed", "down": "open"}
	got := s.States()
	if len(got) != len(want) || got["up"] != want["up"] || got["down"] != want["down"] {
		t.Fatalf("states = %v, want %v", got, want)
	}
	s.Reset("down")
	if st := s.For("down").State(); st != StateClosed {
		t.Fatalf("state after Reset = %v, want closed", st)
	}
	if err := s.For("down").Allow(); err != nil {
		t.Fatalf("Allow after Reset = %v", err)
	}
	s.Reset("never-seen") // must not create or panic
	if _, ok := s.States()["never-seen"]; ok {
		t.Fatal("Reset created a breaker")
	}
}

// TestBreakerOpenRecordsIgnored: outcomes recorded while open (stragglers
// from fetches that started before the trip) neither close nor re-trip.
func TestBreakerOpenRecordsIgnored(t *testing.T) {
	s, _ := testBreakerSet(1, time.Hour)
	b := s.For("src")
	b.RecordFailure()
	b.RecordSuccess()
	b.RecordFailure()
	if got := b.State(); got != StateOpen {
		t.Fatalf("state = %v, want open (records while open ignored)", got)
	}
	if st := s.Stats(); st.Opened != 1 {
		t.Fatalf("opened = %d, want 1", st.Opened)
	}
}
