package federate

import (
	"context"
	"expvar"
	"sync"
	"sync/atomic"
	"time"

	"mdm/internal/relalg"
)

// Process-wide cache counters, published once for /debug/vars scraping.
// Per-Cache numbers are available through Cache.Stats.
var (
	expHits    = expvar.NewInt("mdm.federate.source_cache.hits")
	expMisses  = expvar.NewInt("mdm.federate.source_cache.misses")
	expShared  = expvar.NewInt("mdm.federate.source_cache.inflight_dedup")
	expExpired = expvar.NewInt("mdm.federate.source_cache.expired")
)

// Cache is a source-snapshot cache keyed by wrapper identity (the
// RowSource name, globally unique in the wrapper registry). It provides
// two things:
//
//   - SINGLEFLIGHT: concurrent Gets for the same source share one
//     in-flight fetch, so N walks hitting the same HTTP wrapper issue
//     one request. The fetch is owned by the cache (detached from any
//     caller's context, bounded by the fetch timeout): a caller that
//     disconnects abandons its wait without poisoning the shared fetch.
//   - TTL REUSE: with ttl > 0, a completed snapshot answers Gets until
//     it expires. With ttl == 0 the cache is dedup-only — completed
//     entries are dropped immediately, so data freshness is exactly
//     that of direct fetches (modulo sharing an in-flight fetch).
//
// Fetch errors are never cached; the failed entry is removed after its
// waiters have been notified, so the next Get retries.
type Cache struct {
	ttl time.Duration
	now func() time.Time // injectable for TTL tests

	mu      sync.Mutex
	entries map[string]*cacheEntry

	hits, misses, shared, expired atomic.Int64
}

// cacheEntry is one source's slot. ready is closed once rel/err/expires
// are final; waiters select on it against their own context.
type cacheEntry struct {
	ready   chan struct{}
	rel     *relalg.Relation
	err     error
	expires time.Time
}

// NewCache returns a cache with the given snapshot TTL. ttl 0 gives a
// dedup-only cache (no reuse after a fetch completes).
func NewCache(ttl time.Duration) *Cache {
	return &Cache{ttl: ttl, now: time.Now, entries: map[string]*cacheEntry{}}
}

// TTL returns the configured snapshot lifetime.
func (c *Cache) TTL() time.Duration { return c.ttl }

// FetchFunc obtains one source snapshot. The cache calls it exactly
// once per fill (singleflight), so putting retries and breaker checks
// inside it — as Engine.fetchResilient does — dedupes the whole retry
// sequence across concurrent walks, not just the individual attempts.
type FetchFunc func(ctx context.Context, src relalg.RowSource) (*relalg.Relation, error)

// Get returns the snapshot for src, fetching it via fetch (nil means a
// plain schema-checked fetch) on a miss. Concurrent Gets for the same
// source share one fetch. ctx cancels only this caller's wait — the
// shared fetch keeps running for other waiters — so a dropped client
// surfaces ctx.Err() without failing its neighbors.
func (c *Cache) Get(ctx context.Context, src relalg.RowSource, fetch FetchFunc) (*relalg.Relation, error) {
	key := src.Name()
	c.mu.Lock()
	ent := c.entries[key]
	if ent != nil {
		select {
		case <-ent.ready:
			if ent.err == nil && c.now().Before(ent.expires) {
				c.mu.Unlock()
				c.hits.Add(1)
				expHits.Add(1)
				return ent.rel, nil
			}
			// Expired (or a failed entry that lost the delete race):
			// fall through to a fresh fetch.
			c.expired.Add(1)
			expExpired.Add(1)
		default:
			// In flight: join the leader's fetch.
			c.mu.Unlock()
			c.shared.Add(1)
			expShared.Add(1)
			select {
			case <-ent.ready:
				return ent.rel, ent.err
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
	}
	ent = &cacheEntry{ready: make(chan struct{})}
	c.entries[key] = ent
	c.mu.Unlock()
	c.misses.Add(1)
	expMisses.Add(1)

	go c.fill(key, src, ent, fetch)
	select {
	case <-ent.ready:
		return ent.rel, ent.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// maxFill bounds a cache-owned fetch end to end, including any retries
// and backoff the FetchFunc performs. Detached fetches ride no caller's
// context, so an unbounded one that hangs would wedge its entry (and
// every future Get for that source) until process restart; a generous
// hard ceiling is safer than none.
const maxFill = 5 * time.Minute

// fill performs the cache-owned fetch for one entry. It runs detached
// from every caller so an abandoned wait cannot cancel a shared fetch;
// maxFill is the only bound (the FetchFunc applies any per-attempt
// timeout itself).
func (c *Cache) fill(key string, src relalg.RowSource, ent *cacheEntry, fetch FetchFunc) {
	if fetch == nil {
		fetch = fetchSource
	}
	fctx, cancel := context.WithTimeout(context.Background(), maxFill)
	defer cancel()
	rel, err := fetch(fctx, src)
	c.mu.Lock()
	ent.rel, ent.err = rel, err
	ent.expires = c.now().Add(c.ttl)
	if err != nil || c.ttl <= 0 {
		// Failures are not cached, and a TTL-less cache keeps no
		// completed entries. Guard against a newer entry having already
		// replaced this one.
		if c.entries[key] == ent {
			delete(c.entries, key)
		}
	}
	close(ent.ready)
	c.mu.Unlock()
}

// Invalidate drops the cached snapshot (if any) for a source name. It
// does not interrupt an in-flight fetch; callers racing one may still
// be served its result. Use it after re-registering or mutating a
// wrapper so the next walk refetches.
func (c *Cache) Invalidate(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ent, ok := c.entries[name]; ok {
		select {
		case <-ent.ready:
			delete(c.entries, name)
		default:
			// In flight: leave it; the waiters own it.
		}
	}
}

// Stats is a point-in-time counter snapshot.
type Stats struct {
	// Hits counts Gets answered by a live completed snapshot.
	Hits int64
	// Misses counts Gets that started a fetch.
	Misses int64
	// Shared counts Gets that joined an in-flight fetch.
	Shared int64
	// Expired counts Gets that found a dead entry and refetched.
	Expired int64
}

// Stats returns this cache's counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:    c.hits.Load(),
		Misses:  c.misses.Load(),
		Shared:  c.shared.Load(),
		Expired: c.expired.Load(),
	}
}
