package federate

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mdm/internal/relalg"
)

// gateSource blocks every fetch until release is closed, counting
// fetches — the instrument for deterministic singleflight tests.
type gateSource struct {
	name    string
	release chan struct{}
	fetches atomic.Int32
	rel     *relalg.Relation
	err     error
}

func newGateSource(name string) *gateSource {
	rel := relalg.NewRelation("a")
	rel.MustAppend(relalg.Row{relalg.Int(42)})
	return &gateSource{name: name, release: make(chan struct{}), rel: rel}
}

func (g *gateSource) Name() string      { return g.name }
func (g *gateSource) Columns() []string { return []string{"a"} }
func (g *gateSource) Fetch(ctx context.Context) (*relalg.Relation, error) {
	g.fetches.Add(1)
	select {
	case <-g.release:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return g.rel, g.err
}

// TestCacheSingleflight: N concurrent Gets for one source share exactly
// one fetch; the dedup counter accounts for every non-leader. Run under
// -race in CI.
func TestCacheSingleflight(t *testing.T) {
	src := newGateSource("shared")
	c := NewCache(0) // dedup-only
	const n = 8

	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rel, err := c.Get(context.Background(), src, nil)
			if err == nil && rel.Len() != 1 {
				err = errors.New("bad relation")
			}
			errs[i] = err
		}(i)
	}
	// Wait until every goroutine has registered (1 miss + n-1 shared),
	// then release the single fetch.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := c.Stats()
		if st.Misses+st.Shared == n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines never converged: %+v", c.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	close(src.release)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
	}
	if got := src.fetches.Load(); got != 1 {
		t.Fatalf("fetches = %d, want 1 (singleflight)", got)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Shared != n-1 {
		t.Fatalf("stats = %+v, want 1 miss / %d shared", st, n-1)
	}

	// Dedup-only: a later Get refetches.
	if _, err := c.Get(context.Background(), src, nil); err != nil {
		t.Fatal(err)
	}
	if got := src.fetches.Load(); got != 2 {
		t.Fatalf("fetches after TTL-less reuse attempt = %d, want 2", got)
	}
}

// TestCacheTTL: snapshots are reused inside the TTL and refetched after
// it, with an injected clock so the test is deterministic.
func TestCacheTTL(t *testing.T) {
	src := newGateSource("ttl")
	close(src.release) // never block
	c := NewCache(time.Minute)
	now := time.Unix(1000, 0)
	var mu sync.Mutex
	c.now = func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	ctx := context.Background()
	if _, err := c.Get(ctx, src, nil); err != nil {
		t.Fatal(err)
	}
	advance(30 * time.Second)
	if _, err := c.Get(ctx, src, nil); err != nil {
		t.Fatal(err)
	}
	if got := src.fetches.Load(); got != 1 {
		t.Fatalf("fetches inside TTL = %d, want 1", got)
	}
	advance(31 * time.Second) // past expiry
	if _, err := c.Get(ctx, src, nil); err != nil {
		t.Fatal(err)
	}
	if got := src.fetches.Load(); got != 2 {
		t.Fatalf("fetches after TTL = %d, want 2", got)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Expired != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 2 misses / 1 expired", st)
	}
}

// TestCacheErrorsNotCached: a failed fetch is surfaced to its waiters
// but not retained; the next Get retries and can succeed.
func TestCacheErrorsNotCached(t *testing.T) {
	src := newGateSource("flaky")
	close(src.release)
	src.err = errors.New("boom")
	c := NewCache(time.Minute)
	ctx := context.Background()
	if _, err := c.Get(ctx, src, nil); err == nil {
		t.Fatal("expected error")
	}
	src.err = nil
	rel, err := c.Get(ctx, src, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 1 {
		t.Fatalf("rows = %d", rel.Len())
	}
	if got := src.fetches.Load(); got != 2 {
		t.Fatalf("fetches = %d, want 2 (error not cached)", got)
	}
}

// TestCacheWaiterCancelDoesNotPoisonFetch: a waiter abandoning its Get
// (client disconnect) gets its own ctx error; the shared fetch keeps
// running and serves the surviving caller.
func TestCacheWaiterCancelDoesNotPoisonFetch(t *testing.T) {
	src := newGateSource("poison")
	c := NewCache(time.Minute)

	type res struct {
		rel *relalg.Relation
		err error
	}
	leader := make(chan res, 1)
	go func() {
		rel, err := c.Get(context.Background(), src, nil)
		leader <- res{rel, err}
	}()
	// Wait for the leader's fetch to start, then join and cancel.
	deadline := time.Now().Add(5 * time.Second)
	for src.fetches.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("leader fetch never started")
		}
		time.Sleep(time.Millisecond)
	}
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Get(canceled, src, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled waiter err = %v, want Canceled", err)
	}
	close(src.release)
	r := <-leader
	if r.err != nil {
		t.Fatalf("leader err = %v (poisoned by canceled waiter?)", r.err)
	}
	if r.rel.Len() != 1 {
		t.Fatalf("leader rows = %d", r.rel.Len())
	}
	if got := src.fetches.Load(); got != 1 {
		t.Fatalf("fetches = %d, want 1", got)
	}
}

// TestCacheInvalidate drops a completed snapshot so the next Get
// refetches (the hook for wrapper re-registration).
func TestCacheInvalidate(t *testing.T) {
	src := newGateSource("inv")
	close(src.release)
	c := NewCache(time.Minute)
	ctx := context.Background()
	if _, err := c.Get(ctx, src, nil); err != nil {
		t.Fatal(err)
	}
	c.Invalidate("inv")
	if _, err := c.Get(ctx, src, nil); err != nil {
		t.Fatal(err)
	}
	if got := src.fetches.Load(); got != 2 {
		t.Fatalf("fetches = %d, want 2 after Invalidate", got)
	}
}

// TestEngineSharesInflightFetchAcrossRuns: two concurrent Runs over the
// same wrapper issue one source fetch (the "N concurrent walks, one
// HTTP request" property of the tentpole).
func TestEngineSharesInflightFetchAcrossRuns(t *testing.T) {
	src := newGateSource("walked")
	eng := NewEngine()
	plan := relalg.NewScan(src)

	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cur, err := eng.Run(context.Background(), plan)
			if err == nil {
				_, err = cur.Materialize(context.Background())
			}
			errs[i] = err
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := eng.Cache.Stats()
		if st.Misses+st.Shared == int64(len(errs)) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("runs never converged: %+v", eng.Cache.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	close(src.release)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
	if got := src.fetches.Load(); got != 1 {
		t.Fatalf("fetches = %d, want 1 across 4 concurrent walks", got)
	}
}
