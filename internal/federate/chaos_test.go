package federate

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"mdm/internal/relalg"
	"mdm/internal/schema"
	"mdm/internal/wrapper"
)

// chaosSources builds three chaos-wrapped in-memory sources with
// disjoint rows and identical schemas. Same seed, same fetch sequence →
// same injected outcomes.
func chaosSources(seed int64) []*wrapper.Chaos {
	mk := func(name string, base int64, n int) *wrapper.Chaos {
		docs := make([]schema.Doc, n)
		for i := range docs {
			docs[i] = schema.Doc{"id": relalg.Int(base + int64(i)), "val": relalg.Int(int64(i))}
		}
		return wrapper.NewChaos(wrapper.NewMem(name, name+"-src", docs, nil), seed)
	}
	return []*wrapper.Chaos{mk("alpha", 100, 4), mk("beta", 200, 5), mk("gamma", 300, 3)}
}

// unionPlan is the 3-source union walk shape (what the rewriter emits
// for a multi-version source).
func unionPlan(srcs []*wrapper.Chaos) relalg.Plan {
	children := make([]relalg.Plan, len(srcs))
	for i, s := range srcs {
		children[i] = relalg.NewScan(s)
	}
	return relalg.NewUnion(children...)
}

// oracleUnion materializes the union through the reference executor,
// with the named sources replaced by empty relations — the ground truth
// for "correct rows from the surviving fraction".
func oracleUnion(t *testing.T, srcs []*wrapper.Chaos, missing map[string]bool) *relalg.Relation {
	t.Helper()
	children := make([]relalg.Plan, len(srcs))
	for i, s := range srcs {
		rel, err := s.Wrapper.Fetch(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if missing[s.Name()] {
			rel = relalg.NewRelation(rel.Cols...)
		}
		children[i] = relalg.NewScan(relalg.NewMemSource(s.Name(), rel))
	}
	want, err := relalg.NewUnion(children...).Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return want
}

// resilientEngine is an engine with instant (but still bounded-count)
// retries so fault tests run fast.
func resilientEngine(retries, threshold int, cooldown time.Duration) *Engine {
	eng := NewEngine()
	eng.Retry = RetryPolicy{Max: retries, sleep: func(context.Context, time.Duration) error { return nil }}
	eng.Breakers = NewBreakerSet(threshold, cooldown)
	return eng
}

// TestChaosPartialOutageAnnotated: with 1 of 3 sources down, partial
// mode streams the two healthy sources' rows — oracle-equal on the
// surviving fraction — and annotates the missing source with its error
// class; the same engine in strict mode fails the query with the root
// cause instead.
func TestChaosPartialOutageAnnotated(t *testing.T) {
	srcs := chaosSources(1)
	srcs[1].Down(nil) // beta: persistent 503
	eng := resilientEngine(1, 100, time.Hour)
	plan := unionPlan(srcs)
	ctx := context.Background()

	cur, err := eng.RunWith(ctx, plan, RunOpts{Limit: -1, Offset: -1, Partial: PartialOn})
	if err != nil {
		t.Fatalf("partial run failed outright: %v", err)
	}
	if !cur.Partial() {
		t.Fatal("cursor not marked partial")
	}
	missing := cur.Missing()
	if len(missing) != 1 || missing[0].Source != "beta" || missing[0].Class != ClassHTTP5xx {
		t.Fatalf("missing = %+v, want beta/http_5xx", missing)
	}
	if len(cur.StaleSources()) != 0 {
		t.Fatalf("stale = %v, want none (serve-stale off)", cur.StaleSources())
	}
	got, err := cur.Materialize(ctx)
	if err != nil {
		t.Fatal(err)
	}
	want := oracleUnion(t, srcs, map[string]bool{"beta": true})
	if !want.Equal(got) {
		t.Fatalf("partial rows differ from oracle:\nwant:\n%s\ngot:\n%s", want.Table(), got.Table())
	}

	// Strict mode: the same outage fails the whole query.
	_, err = eng.RunWith(ctx, plan, RunOpts{Limit: -1, Offset: -1, Partial: PartialOff})
	var st *wrapper.StatusError
	if !errors.As(err, &st) || st.Code != 503 {
		t.Fatalf("strict err = %v, want the injected 503", err)
	}
}

// TestChaosBreakerStopsFetches: repeated queries against a down source
// trip its breaker after exactly threshold failed fetch attempts; from
// then on queries fail fast without issuing fetches (the fetch-count
// assertion) and the missing annotation switches to breaker_open.
func TestChaosBreakerStopsFetches(t *testing.T) {
	srcs := chaosSources(2)
	srcs[2].Down(nil) // gamma
	const threshold = 3
	eng := resilientEngine(0, threshold, time.Hour)
	plan := unionPlan(srcs)
	ctx := context.Background()

	var last *Cursor
	for i := 0; i < 8; i++ {
		cur, err := eng.RunWith(ctx, plan, RunOpts{Limit: -1, Offset: -1, Partial: PartialOn})
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if _, err := cur.Materialize(ctx); err != nil {
			t.Fatalf("query %d drain: %v", i, err)
		}
		last = cur
	}
	if got := srcs[2].Fetches(); got != threshold {
		t.Fatalf("fetches against down source = %d, want %d (breaker must stop them)", got, threshold)
	}
	missing := last.Missing()
	if len(missing) != 1 || missing[0].Class != ClassBreakerOpen {
		t.Fatalf("missing = %+v, want gamma/breaker_open", missing)
	}
	if got := eng.Breakers.For("gamma").State(); got != StateOpen {
		t.Fatalf("breaker state = %v, want open", got)
	}
	st := eng.Breakers.Stats()
	if st.Opened != 1 || st.FastFails < 5 {
		t.Fatalf("breaker stats = %+v, want 1 opened and >=5 fast fails", st)
	}
	// Healthy siblings never tripped and were fetched every query
	// (dedup-only cache, sequential queries).
	if got := eng.Breakers.For("alpha").State(); got != StateClosed {
		t.Fatalf("alpha breaker = %v, want closed", got)
	}
}

// TestChaosBreakerRecoversViaProbe: after the cooldown one probe goes
// through; the source having healed, the probe closes the breaker and
// full results resume.
func TestChaosBreakerRecoversViaProbe(t *testing.T) {
	srcs := chaosSources(3)
	srcs[0].Down(nil)
	eng := resilientEngine(0, 1, time.Hour)
	clock := time.Unix(2000, 0)
	var mu sync.Mutex
	eng.Breakers.now = func() time.Time { mu.Lock(); defer mu.Unlock(); return clock }
	plan := unionPlan(srcs)
	ctx := context.Background()
	run := func() *Cursor {
		t.Helper()
		cur, err := eng.RunWith(ctx, plan, RunOpts{Limit: -1, Offset: -1, Partial: PartialOn})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cur.Materialize(ctx); err != nil {
			t.Fatal(err)
		}
		return cur
	}
	run() // trips the breaker (threshold 1)
	if got := eng.Breakers.For("alpha").State(); got != StateOpen {
		t.Fatalf("state = %v, want open", got)
	}
	srcs[0].Heal()
	cur := run() // still inside cooldown: fail fast, no fetch
	if m := cur.Missing(); len(m) != 1 || m[0].Class != ClassBreakerOpen {
		t.Fatalf("missing during cooldown = %+v", m)
	}
	mu.Lock()
	clock = clock.Add(2 * time.Hour)
	mu.Unlock()
	cur = run() // probe succeeds, breaker closes, full rows
	if cur.Partial() {
		t.Fatalf("result still partial after recovery: %+v", cur.Missing())
	}
	if got := eng.Breakers.For("alpha").State(); got != StateClosed {
		t.Fatalf("state after probe = %v, want closed", got)
	}
}

// TestChaosRetryRecoversFlakes: a transient double-flake recovers
// within the retry budget — the query succeeds completely, taking
// exactly the scripted number of attempts.
func TestChaosRetryRecoversFlakes(t *testing.T) {
	srcs := chaosSources(4)
	srcs[0].FailNext(2, nil)
	eng := resilientEngine(2, 100, time.Hour)
	ctx := context.Background()
	cur, err := eng.RunWith(ctx, unionPlan(srcs), RunOpts{Limit: -1, Offset: -1, Partial: PartialOff})
	if err != nil {
		t.Fatalf("strict run with recoverable flakes: %v", err)
	}
	got, err := cur.Materialize(ctx)
	if err != nil {
		t.Fatal(err)
	}
	want := oracleUnion(t, srcs, nil)
	if !want.Equal(got) {
		t.Fatalf("rows differ from oracle after retry recovery")
	}
	if n := srcs[0].Fetches(); n != 3 {
		t.Fatalf("fetches = %d, want 3 (2 flakes + success)", n)
	}
	if cur.Partial() {
		t.Fatal("recovered result must not be partial")
	}
}

// TestChaosServeStaleFallback: with serve-stale on, a source that dies
// after one good fetch keeps answering from its last good snapshot,
// reported as stale (not missing) — the full row set stays available.
func TestChaosServeStaleFallback(t *testing.T) {
	srcs := chaosSources(5)
	eng := resilientEngine(0, 100, time.Hour)
	eng.PartialResults = true
	eng.ServeStale = true
	plan := unionPlan(srcs)
	ctx := context.Background()

	cur, err := eng.Run(ctx, plan) // healthy: populates the last-good store
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cur.Materialize(ctx); err != nil {
		t.Fatal(err)
	}

	srcs[1].Down(nil)
	cur, err = eng.Run(ctx, plan)
	if err != nil {
		t.Fatalf("serve-stale run: %v", err)
	}
	if !cur.Partial() {
		t.Fatal("stale substitution must mark the result partial")
	}
	if st := cur.StaleSources(); len(st) != 1 || st[0] != "beta" {
		t.Fatalf("stale = %v, want [beta]", st)
	}
	if len(cur.Missing()) != 0 {
		t.Fatalf("missing = %+v, want none (served stale instead)", cur.Missing())
	}
	got, err := cur.Materialize(ctx)
	if err != nil {
		t.Fatal(err)
	}
	want := oracleUnion(t, srcs, nil) // data is static: stale == fresh
	if !want.Equal(got) {
		t.Fatal("stale-substituted rows differ from oracle")
	}

	// Forget drops the fallback: the source goes missing again.
	eng.Forget("beta")
	cur, err = eng.Run(ctx, plan)
	if err != nil {
		t.Fatal(err)
	}
	if m := cur.Missing(); len(m) != 1 || m[0].Source != "beta" {
		t.Fatalf("missing after Forget = %+v, want beta", m)
	}
}

// TestChaosSoakMixedQueries drives batches of concurrent mixed
// partial/strict queries against seeded-flaky sources (run under -race
// in CI's soak job) and asserts the degradation invariant on every
// outcome: a successful answer is either complete and oracle-equal, or
// correctly annotated and oracle-equal on the surviving fraction;
// strict queries never return partial rows.
func TestChaosSoakMixedQueries(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			srcs := chaosSources(seed)
			for i, s := range srcs {
				s.Flake(0.3, nil).WithLatency(time.Duration(i) * time.Millisecond)
			}
			// Tiny cooldown: breakers trip and recover within the soak.
			eng := resilientEngine(1, 3, time.Millisecond)
			plan := unionPlan(srcs)
			full := oracleUnion(t, srcs, nil)

			const rounds, width = 10, 4
			for round := 0; round < rounds; round++ {
				var wg sync.WaitGroup
				for q := 0; q < width; q++ {
					wg.Add(1)
					partial := (round+q)%2 == 0
					go func() {
						defer wg.Done()
						ctx := context.Background()
						mode := PartialOff
						if partial {
							mode = PartialOn
						}
						cur, err := eng.RunWith(ctx, plan, RunOpts{Limit: -1, Offset: -1, Partial: mode})
						if err != nil {
							if partial {
								t.Errorf("partial query failed outright: %v", err)
							}
							// Strict: failing is a legal outcome under flakes.
							return
						}
						got, err := cur.Materialize(ctx)
						if err != nil {
							t.Errorf("drain: %v", err)
							return
						}
						if !partial && cur.Partial() {
							t.Errorf("strict query returned partial rows: %+v", cur.Missing())
							return
						}
						missing := map[string]bool{}
						for _, m := range cur.Missing() {
							missing[m.Source] = true
						}
						want := full
						if len(missing) > 0 {
							want = oracleUnion(t, srcs, missing)
						}
						if !want.Equal(got) {
							t.Errorf("rows differ from oracle (missing=%v)", missing)
						}
					}()
				}
				wg.Wait()
			}
		})
	}
}
