package federate

import (
	"context"

	"mdm/internal/relalg"
)

// Cursor is a pull-based handle over an executing federated plan,
// mirroring sparql.Cursor:
//
//	cur, err := eng.Run(ctx, plan)
//	...
//	defer cur.Close()
//	for cur.Next(ctx) {
//	    row := cur.Row()
//	    ...
//	}
//	if err := cur.Err(); err != nil { ... }
//
// Next checks ctx once per row, so canceling the context (a dropped
// client connection, a timeout) aborts the drain promptly; Err then
// returns ctx's error. A cursor holds no locks or goroutines between
// Next calls — abandoning one without Close is safe. Rows reflect the
// source snapshots taken by the scatter phase, so a full drain is
// point-in-time consistent per source; separate Runs may observe
// different source states (unless a TTL cache pins a snapshot).
//
// Cursors are not safe for concurrent use.
type Cursor struct {
	cols     []string
	it       iter
	row      relalg.Row
	err      error
	done     bool
	missing  []SourceError // partial mode: sources that contributed no rows
	staleSrc []string      // partial mode: sources served from a stale snapshot
}

// Partial reports whether the result degrades completeness or
// freshness: at least one source is missing or served stale. Always
// false in strict mode (the query would have failed instead).
func (c *Cursor) Partial() bool {
	return len(c.missing) > 0 || len(c.staleSrc) > 0
}

// Missing lists the sources that contributed no rows, with each
// failure's class, sorted by source name. The slice is shared — do not
// mutate.
func (c *Cursor) Missing() []SourceError { return c.missing }

// StaleSources lists the sources whose rows came from an expired
// last-good snapshot (Engine.ServeStale), sorted. The slice is shared —
// do not mutate.
func (c *Cursor) StaleSources() []string { return c.staleSrc }

// Next advances to the next row, reporting whether one is available. It
// returns false when the result is exhausted, the cursor is closed, or
// ctx is canceled — distinguish the last case with Err.
func (c *Cursor) Next(ctx context.Context) bool {
	if c.done || c.err != nil {
		return false
	}
	if err := ctx.Err(); err != nil {
		c.err = err
		c.done, c.row = true, nil
		return false
	}
	row, err := c.it.next(ctx)
	if err != nil {
		c.err = err
		c.done, c.row = true, nil
		return false
	}
	if row == nil {
		c.done, c.row = true, nil
		return false
	}
	c.row = row
	return true
}

// Row returns the current row. It is valid until the next call to Next
// or Close and must not be mutated (it may alias a shared source
// snapshot).
func (c *Cursor) Row() relalg.Row { return c.row }

// Columns returns the output schema in order.
func (c *Cursor) Columns() []string { return c.cols }

// Err returns the first error encountered while iterating (typically
// the context's error after a cancellation), or nil after a clean
// drain.
func (c *Cursor) Err() error { return c.err }

// Close stops iteration early. It is idempotent and optional — a cursor
// holds no locks or goroutines — but calling it documents intent and
// makes Next return false immediately.
func (c *Cursor) Close() {
	c.done, c.row = true, nil
}

// Materialize drains the remaining rows into a Relation. It is how
// callers that want the old materializing contract — mdm.System.Query,
// tests, examples — sit on top of the streaming engine. Rows may alias
// source snapshots (exactly as relalg.Plan.Execute's results may) and
// must not be mutated cell-wise.
func (c *Cursor) Materialize(ctx context.Context) (*relalg.Relation, error) {
	out := relalg.NewRelation(c.cols...)
	for c.Next(ctx) {
		out.Rows = append(out.Rows, c.row)
	}
	if err := c.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
