// Package federate executes optimized relalg plans the way a mediator
// over remote sources has to: source access is concurrent, result
// delivery is streamed.
//
// The materializing executor (relalg.Plan.Execute) walks the operator
// tree depth-first, so a plan over N wrappers pays the *sum* of the
// source fetch latencies and every operator materializes its full
// intermediate relation. This package splits execution into three
// phases:
//
//  1. SCATTER — all Scan leaves of the plan are discovered up front,
//     deduplicated by source name, and fetched concurrently with
//     bounded parallelism. The first fetch error cancels the remaining
//     fetches; a per-source deadline bounds each one.
//  2. SNAPSHOT CACHE — fetches go through an optional Cache keyed by
//     wrapper identity: concurrent walks hitting the same source share
//     one in-flight fetch (singleflight), and with a TTL configured,
//     completed snapshots are reused across walks (cache.go).
//  3. STREAMING OPERATORS — the plan compiles to a tree of pull-based
//     iterators over the snapshots (iter.go): Select/Project/Rename/
//     Limit/Union/Distinct stream row by row, and Join is a probe-side
//     hash join whose build side is an intrusive-chain table over the
//     (already fetched) right input. No operator materializes its
//     output, so memory beyond the source snapshots is O(page).
//
// Results are delivered through a Cursor (cursor.go) mirroring
// sparql.Cursor: Next(ctx)/Row()/Err()/Close(), with LIMIT/OFFSET
// applied inside the pipeline so a page costs O(sources + page) instead
// of O(result).
//
// Row order is deterministic and identical to relalg.Plan.Execute's
// (the oracle the equivalence harness pins): scans stream snapshot
// order, joins emit left-row order with build-side matches in build
// order, unions concatenate children in order. Paged reads are
// therefore prefixes/slices of the full drain for unchanged snapshots.
package federate

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"mdm/internal/obs"
	"mdm/internal/relalg"
)

// Engine runs relalg plans federated. The zero value is not usable; use
// NewEngine. Fields are read at Run time and must be configured before
// the engine serves concurrent queries.
type Engine struct {
	// Parallel bounds the number of concurrent source fetches per
	// scatter phase.
	Parallel int
	// SourceTimeout bounds each individual source fetch attempt. For
	// direct (cache-less) fetches, 0 means no bound beyond the caller's
	// context; cache-owned fetches are detached from every caller's
	// context and always bounded end to end by a hard ceiling (see
	// cache.go maxFill) so a hung source cannot wedge its cache entry
	// forever.
	SourceTimeout time.Duration
	// Cache is the shared source-snapshot cache. Nil disables both
	// snapshot reuse and singleflight dedup (every Run fetches its own
	// snapshots).
	Cache *Cache
	// Retry governs per-source fetch retries (retry.go). The zero value
	// disables retrying; NewEngine installs DefaultRetryPolicy. Retries
	// happen inside the cache's singleflight fill, so concurrent walks
	// waiting on one flaky source share a single retry sequence.
	Retry RetryPolicy
	// Breakers holds the per-source circuit breakers (breaker.go). Nil
	// disables breaking; NewEngine installs a default set. An open
	// breaker fails a source fast without issuing a fetch.
	Breakers *BreakerSet
	// PartialResults is the default degradation mode: when true, a
	// failed source no longer fails the query — its rows are omitted
	// (or served stale, see ServeStale) and the cursor reports it via
	// Missing/StaleSources. Per-query override: RunOpts.Partial.
	PartialResults bool
	// ServeStale, in partial mode, substitutes the last successfully
	// fetched snapshot for a broken source instead of dropping its rows,
	// reporting the source via Cursor.StaleSources. The last-good store
	// is only populated while ServeStale is on.
	ServeStale bool

	staleMu sync.Mutex
	stale   map[string]*relalg.Relation // last good snapshot per source
}

// Default engine knobs. DefaultParallel bounds the scatter fan-out;
// DefaultSourceTimeout keeps a hung source from wedging cache-owned
// fetches forever.
const (
	DefaultParallel      = 8
	DefaultSourceTimeout = 30 * time.Second
)

// NewEngine returns an engine with default fan-out, a default per-source
// timeout, a dedup-only cache (TTL 0: concurrent walks share one fetch,
// completed snapshots are not reused), default retries, and default
// circuit breakers. Degradation (PartialResults, ServeStale) is off.
func NewEngine() *Engine {
	return &Engine{
		Parallel:      DefaultParallel,
		SourceTimeout: DefaultSourceTimeout,
		Cache:         NewCache(0),
		Retry:         DefaultRetryPolicy(),
		Breakers:      NewBreakerSet(0, 0),
	}
}

// SourceError describes one source that contributed no (or stale) rows
// to a partial result.
type SourceError struct {
	// Source is the wrapper name.
	Source string `json:"source"`
	// Class is the failure's ErrClass (the REST annotation contract).
	Class ErrClass `json:"class"`
	// Err is the underlying fetch error (not serialized).
	Err error `json:"-"`
}

// PartialMode selects a query's degradation behavior.
type PartialMode int

const (
	// PartialDefault defers to Engine.PartialResults.
	PartialDefault PartialMode = iota
	// PartialOff forces strict mode: the first source error fails the
	// query (PR 5 semantics).
	PartialOff
	// PartialOn forces degradation: healthy sources stream, failed ones
	// are annotated on the cursor.
	PartialOn
)

// RunOpts parameterizes RunWith. Limit/Offset follow RunPage's
// contract: limit < 0 unbounded, limit 0 a legitimate empty page,
// offset <= 0 no skip.
type RunOpts struct {
	Limit   int
	Offset  int
	Partial PartialMode
}

// Run starts federated execution of a plan: it scatters the source
// fetches, then returns a cursor streaming the plan's rows. Run blocks
// until every source snapshot is available (or one fetch fails); the
// operator pipeline itself does no source I/O.
func (e *Engine) Run(ctx context.Context, plan relalg.Plan) (*Cursor, error) {
	return e.RunWith(ctx, plan, RunOpts{Limit: -1, Offset: -1})
}

// RunPage is Run with a page bound pushed into the pipeline: when
// limit >= 0 at most limit rows are produced, when offset > 0 the first
// offset rows are skipped. A satisfied limit stops all upstream work.
// Pass -1 to leave either unbounded.
func (e *Engine) RunPage(ctx context.Context, plan relalg.Plan, limit, offset int) (*Cursor, error) {
	return e.RunWith(ctx, plan, RunOpts{Limit: limit, Offset: offset})
}

// RunWith is RunPage with per-query options. In partial mode the
// returned cursor may carry degradation annotations — check
// Cursor.Partial/Missing/StaleSources; in strict mode a source failure
// is returned here, before any row streams.
func (e *Engine) RunWith(ctx context.Context, plan relalg.Plan, opts RunOpts) (*Cursor, error) {
	partial := e.PartialResults
	switch opts.Partial {
	case PartialOn:
		partial = true
	case PartialOff:
		partial = false
	}
	snaps, missing, staleSrc, err := e.scatter(ctx, plan, partial)
	if err != nil {
		return nil, err
	}
	it, err := compile(plan, snaps)
	if err != nil {
		return nil, err
	}
	if opts.Limit == 0 {
		it = emptyIter{}
	} else if opts.Offset > 0 || opts.Limit > 0 {
		it = &pageIter{src: it, skip: max(opts.Offset, 0), limit: opts.Limit}
	}
	return &Cursor{cols: plan.Columns(), it: it, missing: missing, staleSrc: staleSrc}, nil
}

// Forget drops all per-source state the engine holds for a wrapper
// name: the cached snapshot, the circuit breaker record, and the
// serve-stale fallback. Call it when a wrapper is re-registered or
// removed — the name may now denote a different source, so yesterday's
// snapshot and failure history must not outlive it.
func (e *Engine) Forget(name string) {
	if e.Cache != nil {
		e.Cache.Invalidate(name)
	}
	if e.Breakers != nil {
		e.Breakers.Reset(name)
	}
	e.staleMu.Lock()
	delete(e.stale, name)
	e.staleMu.Unlock()
}

// rememberStale records a source's last good snapshot for serve-stale
// fallback.
func (e *Engine) rememberStale(name string, rel *relalg.Relation) {
	e.staleMu.Lock()
	if e.stale == nil {
		e.stale = map[string]*relalg.Relation{}
	}
	e.stale[name] = rel
	e.staleMu.Unlock()
}

// lastGood returns the serve-stale fallback snapshot for a source, or
// nil.
func (e *Engine) lastGood(name string) *relalg.Relation {
	e.staleMu.Lock()
	defer e.staleMu.Unlock()
	return e.stale[name]
}

// collectScans gathers the plan's Scan leaves, deduplicated by source
// name (wrapper names are globally unique in the registry, and the
// rewriter reuses one wrapper across CQ branches of a union).
func collectScans(p relalg.Plan, dst map[string]relalg.RowSource) {
	if s, ok := p.(*relalg.Scan); ok {
		if _, dup := dst[s.Src.Name()]; !dup {
			dst[s.Src.Name()] = s.Src
		}
		return
	}
	for _, c := range p.Children() {
		collectScans(c, dst)
	}
}

// scatter fetches every distinct source of the plan concurrently with
// bounded parallelism.
//
// In strict mode the first error cancels the outstanding fetches and is
// returned; sibling errors caused by that cancellation are dropped, so
// the caller sees the root cause (a canceled client maps to
// context.Canceled, a timed-out source to context.DeadlineExceeded).
//
// In partial mode source failures don't cancel anything: a failed
// source contributes its last good snapshot (ServeStale, reported in
// the stale list) or an empty relation (reported in the missing list,
// with the failure's class). Only the caller's own context terminates
// the whole scatter. Both report lists are sorted by source name so
// annotations are deterministic.
func (e *Engine) scatter(ctx context.Context, plan relalg.Plan, partial bool) (snaps map[string]*relalg.Relation, missing []SourceError, staleSrc []string, err error) {
	sources := map[string]relalg.RowSource{}
	collectScans(plan, sources)
	names := make([]string, 0, len(sources))
	for n := range sources {
		names = append(names, n)
	}
	sort.Strings(names) // deterministic fan-out order

	obsScatters.Inc()
	obsScatterFanout.Observe(float64(len(names)))
	scatterT0 := time.Now()
	tr := obs.FromContext(ctx)
	defer func() {
		d := time.Since(scatterT0)
		obsScatterDur.Observe(d.Seconds())
		tr.StageDur("scatter", d)
	}()

	sctx, cancel := context.WithCancel(ctx)
	defer cancel()

	parallel := e.Parallel
	if parallel <= 0 {
		parallel = DefaultParallel
	}
	var (
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
		sem      = make(chan struct{}, parallel)
	)
	snaps = make(map[string]*relalg.Relation, len(sources))
	for _, name := range names {
		src := sources[name]
		wg.Add(1)
		go func() {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
			case <-sctx.Done():
				return
			}
			fetchT0 := time.Now()
			rel, err := e.fetch(sctx, src)
			fetchDur := time.Since(fetchT0)
			mu.Lock()
			defer mu.Unlock()
			if err == nil {
				snaps[src.Name()] = rel
				if e.ServeStale {
					e.rememberStale(src.Name(), rel)
				}
				tr.AddSource(obs.SourceSpan{Source: src.Name(), Rows: len(rel.Rows), Dur: fetchDur, Outcome: "ok"})
				return
			}
			if !partial {
				if firstErr == nil {
					firstErr = err
					cancel()
				}
				tr.AddSource(obs.SourceSpan{Source: src.Name(), Dur: fetchDur, Outcome: "error:" + string(Classify(err))})
				return
			}
			class := Classify(err)
			if class == ClassCanceled && ctx.Err() != nil {
				// The caller is gone; the post-wait ctx check surfaces
				// it. Not a source fault, so nothing to annotate.
				return
			}
			if e.ServeStale {
				if old := e.lastGood(src.Name()); old != nil {
					snaps[src.Name()] = old
					staleSrc = append(staleSrc, src.Name())
					obsStaleServed.With(src.Name()).Inc()
					tr.AddSource(obs.SourceSpan{Source: src.Name(), Rows: len(old.Rows), Dur: fetchDur, Outcome: "stale"})
					return
				}
			}
			snaps[src.Name()] = relalg.NewRelation(src.Columns()...)
			missing = append(missing, SourceError{Source: src.Name(), Class: class, Err: err})
			obsMissing.With(src.Name(), string(class)).Inc()
			tr.AddSource(obs.SourceSpan{Source: src.Name(), Dur: fetchDur, Outcome: "missing:" + string(class)})
		}()
	}
	wg.Wait()
	if len(missing)+len(staleSrc) > 0 {
		obsPartialDegradations.Inc()
	}
	if firstErr != nil {
		return nil, nil, nil, firstErr
	}
	// A canceled caller can make workers exit before fetching (and
	// before any fetch records an error); surface the cancellation
	// instead of an incomplete snapshot set.
	if err := ctx.Err(); err != nil {
		return nil, nil, nil, err
	}
	sort.Slice(missing, func(i, j int) bool { return missing[i].Source < missing[j].Source })
	sort.Strings(staleSrc)
	return snaps, missing, staleSrc, nil
}

// fetch obtains one source snapshot, through the cache when configured.
func (e *Engine) fetch(ctx context.Context, src relalg.RowSource) (*relalg.Relation, error) {
	if e.Cache != nil {
		return e.Cache.Get(ctx, src, e.fetchResilient)
	}
	return e.fetchResilient(ctx, src)
}

// fetchResilient is one source fetch with the resilience layer applied:
// breaker check, per-attempt timeout, classify, retry with jittered
// backoff. It is the Cache's FetchFunc, so when the cache is on the
// whole sequence runs once per singleflight fill — N concurrent walks
// waiting on a flaky source share one retry ladder, and exactly one
// goroutine records breaker outcomes per fill (N waiters don't multiply
// a single failure into N breaker strikes).
func (e *Engine) fetchResilient(ctx context.Context, src relalg.RowSource) (*relalg.Relation, error) {
	var br *Breaker
	if e.Breakers != nil {
		br = e.Breakers.For(src.Name())
	}
	attempts := 1 + e.Retry.Max
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			obsRetries.Inc()
			if err := e.Retry.wait(ctx, attempt-1); err != nil {
				// The fill (or caller) died mid-backoff. Surface the
				// context error so Classify sees a cancellation, not the
				// prior attempt's (retryable, usually network) failure —
				// callers must not count a canceled walk as a source
				// fault. Keep the last fetch error as detail.
				if lastErr != nil {
					return nil, fmt.Errorf("federate: source %s: %w (last attempt: %v)",
						src.Name(), err, lastErr)
				}
				return nil, err
			}
		}
		if br != nil {
			if err := br.Allow(); err != nil {
				obsFetchAttempts.With(string(ClassBreakerOpen)).Inc()
				if lastErr != nil {
					// The breaker tripped mid-ladder (concurrent fills
					// against the same dead source); surface the real
					// fetch error, not the suppression.
					return nil, lastErr
				}
				return nil, fmt.Errorf("federate: source %s: %w", src.Name(), err)
			}
		}
		rel, err := e.fetchOnce(ctx, src)
		class := Classify(err)
		if err == nil {
			obsFetchOK.Inc()
		} else {
			obsFetchAttempts.With(string(class)).Inc()
		}
		if br != nil {
			switch {
			case err == nil:
				br.RecordSuccess()
			case class.sourceFault():
				br.RecordFailure()
				// Cancellations and request-shaped errors (4xx, schema,
				// payload cap) neither trip nor reset the breaker.
			}
		}
		if err == nil {
			return rel, nil
		}
		lastErr = err
		if !class.Retryable() {
			return nil, err
		}
	}
	return nil, lastErr
}

// fetchOnce is a single schema-checked fetch attempt under the
// per-source timeout.
func (e *Engine) fetchOnce(ctx context.Context, src relalg.RowSource) (*relalg.Relation, error) {
	if e.SourceTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.SourceTimeout)
		defer cancel()
	}
	return fetchSource(ctx, src)
}

// fetchSource fetches and schema-checks one source (the same guard
// relalg.Scan.Execute applies, so a misreporting source fails loudly
// rather than corrupting downstream column arithmetic).
func fetchSource(ctx context.Context, src relalg.RowSource) (*relalg.Relation, error) {
	rel, err := src.Fetch(ctx)
	if err != nil {
		return nil, fmt.Errorf("federate: source %s: %w", src.Name(), err)
	}
	if len(rel.Cols) != len(src.Columns()) {
		return nil, fmt.Errorf("federate: source %s returned %d columns, declared %d: %w",
			src.Name(), len(rel.Cols), len(src.Columns()), errSchema)
	}
	return rel, nil
}
