// Package federate executes optimized relalg plans the way a mediator
// over remote sources has to: source access is concurrent, result
// delivery is streamed.
//
// The materializing executor (relalg.Plan.Execute) walks the operator
// tree depth-first, so a plan over N wrappers pays the *sum* of the
// source fetch latencies and every operator materializes its full
// intermediate relation. This package splits execution into three
// phases:
//
//  1. SCATTER — all Scan leaves of the plan are discovered up front,
//     deduplicated by source name, and fetched concurrently with
//     bounded parallelism. The first fetch error cancels the remaining
//     fetches; a per-source deadline bounds each one.
//  2. SNAPSHOT CACHE — fetches go through an optional Cache keyed by
//     wrapper identity: concurrent walks hitting the same source share
//     one in-flight fetch (singleflight), and with a TTL configured,
//     completed snapshots are reused across walks (cache.go).
//  3. STREAMING OPERATORS — the plan compiles to a tree of pull-based
//     iterators over the snapshots (iter.go): Select/Project/Rename/
//     Limit/Union/Distinct stream row by row, and Join is a probe-side
//     hash join whose build side is an intrusive-chain table over the
//     (already fetched) right input. No operator materializes its
//     output, so memory beyond the source snapshots is O(page).
//
// Results are delivered through a Cursor (cursor.go) mirroring
// sparql.Cursor: Next(ctx)/Row()/Err()/Close(), with LIMIT/OFFSET
// applied inside the pipeline so a page costs O(sources + page) instead
// of O(result).
//
// Row order is deterministic and identical to relalg.Plan.Execute's
// (the oracle the equivalence harness pins): scans stream snapshot
// order, joins emit left-row order with build-side matches in build
// order, unions concatenate children in order. Paged reads are
// therefore prefixes/slices of the full drain for unchanged snapshots.
package federate

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"mdm/internal/relalg"
)

// Engine runs relalg plans federated. The zero value is not usable; use
// NewEngine. Fields are read at Run time and must be configured before
// the engine serves concurrent queries.
type Engine struct {
	// Parallel bounds the number of concurrent source fetches per
	// scatter phase.
	Parallel int
	// SourceTimeout bounds each individual source fetch. For direct
	// (cache-less) fetches, 0 means no bound beyond the caller's
	// context; cache-owned fetches are detached from every caller's
	// context and therefore always get a bound — 0 falls back to a
	// hard ceiling (see cache.go maxFill) so a hung source cannot
	// wedge its cache entry forever.
	SourceTimeout time.Duration
	// Cache is the shared source-snapshot cache. Nil disables both
	// snapshot reuse and singleflight dedup (every Run fetches its own
	// snapshots).
	Cache *Cache
}

// Default engine knobs. DefaultParallel bounds the scatter fan-out;
// DefaultSourceTimeout keeps a hung source from wedging cache-owned
// fetches forever.
const (
	DefaultParallel      = 8
	DefaultSourceTimeout = 30 * time.Second
)

// NewEngine returns an engine with default fan-out, a default per-source
// timeout, and a dedup-only cache (TTL 0: concurrent walks share one
// fetch, completed snapshots are not reused).
func NewEngine() *Engine {
	return &Engine{
		Parallel:      DefaultParallel,
		SourceTimeout: DefaultSourceTimeout,
		Cache:         NewCache(0),
	}
}

// Run starts federated execution of a plan: it scatters the source
// fetches, then returns a cursor streaming the plan's rows. Run blocks
// until every source snapshot is available (or one fetch fails); the
// operator pipeline itself does no source I/O.
func (e *Engine) Run(ctx context.Context, plan relalg.Plan) (*Cursor, error) {
	return e.RunPage(ctx, plan, -1, -1)
}

// RunPage is Run with a page bound pushed into the pipeline: when
// limit >= 0 at most limit rows are produced, when offset > 0 the first
// offset rows are skipped. A satisfied limit stops all upstream work.
// Pass -1 to leave either unbounded.
func (e *Engine) RunPage(ctx context.Context, plan relalg.Plan, limit, offset int) (*Cursor, error) {
	snaps, err := e.scatter(ctx, plan)
	if err != nil {
		return nil, err
	}
	it, err := compile(plan, snaps)
	if err != nil {
		return nil, err
	}
	if limit == 0 {
		it = emptyIter{}
	} else if offset > 0 || limit > 0 {
		it = &pageIter{src: it, skip: max(offset, 0), limit: limit}
	}
	return &Cursor{cols: plan.Columns(), it: it}, nil
}

// collectScans gathers the plan's Scan leaves, deduplicated by source
// name (wrapper names are globally unique in the registry, and the
// rewriter reuses one wrapper across CQ branches of a union).
func collectScans(p relalg.Plan, dst map[string]relalg.RowSource) {
	if s, ok := p.(*relalg.Scan); ok {
		if _, dup := dst[s.Src.Name()]; !dup {
			dst[s.Src.Name()] = s.Src
		}
		return
	}
	for _, c := range p.Children() {
		collectScans(c, dst)
	}
}

// scatter fetches every distinct source of the plan concurrently with
// bounded parallelism. The first error cancels the outstanding fetches
// and is returned; sibling errors caused by that cancellation are
// dropped, so the caller sees the root cause (a canceled client maps to
// context.Canceled, a timed-out source to context.DeadlineExceeded).
func (e *Engine) scatter(ctx context.Context, plan relalg.Plan) (map[string]*relalg.Relation, error) {
	sources := map[string]relalg.RowSource{}
	collectScans(plan, sources)
	names := make([]string, 0, len(sources))
	for n := range sources {
		names = append(names, n)
	}
	sort.Strings(names) // deterministic fan-out order

	sctx, cancel := context.WithCancel(ctx)
	defer cancel()

	parallel := e.Parallel
	if parallel <= 0 {
		parallel = DefaultParallel
	}
	var (
		mu       sync.Mutex
		firstErr error
		snaps    = make(map[string]*relalg.Relation, len(sources))
		wg       sync.WaitGroup
		sem      = make(chan struct{}, parallel)
	)
	for _, name := range names {
		src := sources[name]
		wg.Add(1)
		go func() {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
			case <-sctx.Done():
				return
			}
			rel, err := e.fetch(sctx, src)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
					cancel()
				}
				return
			}
			snaps[src.Name()] = rel
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	// A canceled caller can make workers exit before fetching (and
	// before any fetch records an error); surface the cancellation
	// instead of an incomplete snapshot set.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return snaps, nil
}

// fetch obtains one source snapshot, through the cache when configured.
func (e *Engine) fetch(ctx context.Context, src relalg.RowSource) (*relalg.Relation, error) {
	if e.Cache != nil {
		return e.Cache.Get(ctx, src, e.SourceTimeout)
	}
	if e.SourceTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.SourceTimeout)
		defer cancel()
	}
	return fetchSource(ctx, src)
}

// fetchSource fetches and schema-checks one source (the same guard
// relalg.Scan.Execute applies, so a misreporting source fails loudly
// rather than corrupting downstream column arithmetic).
func fetchSource(ctx context.Context, src relalg.RowSource) (*relalg.Relation, error) {
	rel, err := src.Fetch(ctx)
	if err != nil {
		return nil, fmt.Errorf("federate: source %s: %w", src.Name(), err)
	}
	if len(rel.Cols) != len(src.Columns()) {
		return nil, fmt.Errorf("federate: source %s returned %d columns, declared %d",
			src.Name(), len(rel.Cols), len(src.Columns()))
	}
	return rel, nil
}
