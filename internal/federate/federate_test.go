package federate

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mdm/internal/relalg"
	"mdm/internal/schema"
	"mdm/internal/wrapper"
)

// sleepSource is a RowSource with injected latency; it honors ctx
// cancellation during the sleep (like a real HTTP fetch would).
type sleepSource struct {
	name    string
	delay   time.Duration
	rel     *relalg.Relation
	fetches atomic.Int32
	// canceled is closed when a fetch observed ctx cancellation.
	canceled   chan struct{}
	cancelOnce sync.Once
}

func newSleepSource(name string, delay time.Duration, rel *relalg.Relation) *sleepSource {
	return &sleepSource{name: name, delay: delay, rel: rel, canceled: make(chan struct{})}
}

func (s *sleepSource) Name() string      { return s.name }
func (s *sleepSource) Columns() []string { return s.rel.Cols }

func (s *sleepSource) Fetch(ctx context.Context) (*relalg.Relation, error) {
	s.fetches.Add(1)
	t := time.NewTimer(s.delay)
	defer t.Stop()
	select {
	case <-t.C:
		return s.rel, nil
	case <-ctx.Done():
		s.cancelOnce.Do(func() { close(s.canceled) })
		return nil, ctx.Err()
	}
}

func rel2(col1, col2 string, pairs ...[2]int64) *relalg.Relation {
	rel := relalg.NewRelation(col1, col2)
	for _, p := range pairs {
		rel.MustAppend(relalg.Row{relalg.Int(p[0]), relalg.Int(p[1])})
	}
	return rel
}

// TestJoinScattersBothSidesConcurrently is the regression test for the
// sequential-fetch behavior of Join.Execute: a two-wrapper join run
// through the engine must have both HTTP fetches in flight at once.
// Each blocking source releases only when BOTH have arrived, so a
// sequential executor would stall until the in-handler timeout and
// fail; the scatter phase completes immediately.
func TestJoinScattersBothSidesConcurrently(t *testing.T) {
	var armed atomic.Bool
	var arrived atomic.Int32
	barrier := make(chan struct{})
	payload := map[string][]byte{
		"/players": []byte(`[{"id":1,"teamId":10},{"id":2,"teamId":11}]`),
		"/teams":   []byte(`[{"teamId":10,"tname":5},{"teamId":11,"tname":6}]`),
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if armed.Load() {
			if arrived.Add(1) == 2 {
				close(barrier)
			}
			select {
			case <-barrier:
			case <-time.After(5 * time.Second):
				http.Error(w, "sequential fetch: barrier never released", http.StatusInternalServerError)
				return
			}
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(payload[r.URL.Path])
	}))
	defer srv.Close()

	ctx := context.Background()
	w1, err := wrapper.NewHTTP(ctx, "w1", "players-api", srv.URL+"/players", wrapper.WithFormat(schema.FormatJSON))
	if err != nil {
		t.Fatal(err)
	}
	w2, err := wrapper.NewHTTP(ctx, "w2", "teams-api", srv.URL+"/teams", wrapper.WithFormat(schema.FormatJSON))
	if err != nil {
		t.Fatal(err)
	}
	armed.Store(true)

	plan := relalg.NewJoin(relalg.NewScan(w1), relalg.NewScan(w2), [][2]string{{"teamId", "teamId"}})
	eng := NewEngine()
	eng.SourceTimeout = 10 * time.Second
	runCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	cur, err := eng.Run(runCtx, plan)
	if err != nil {
		t.Fatalf("concurrent scatter failed: %v", err)
	}
	got, err := cur.Materialize(runCtx)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("rows = %d, want 2:\n%s", got.Len(), got.Table())
	}
}

// TestWalkFederationSpeedup pins the scatter win the benchmark
// (BenchmarkWalkFederation) tracks: over three latency-injected
// wrappers, federated execution must be at least 2x faster than the
// sequential materializing path (ideal: 3 x latency vs 1 x latency).
func TestWalkFederationSpeedup(t *testing.T) {
	const latency = 60 * time.Millisecond
	players := newSleepSource("players", latency, rel2("pid", "tid", [2]int64{1, 10}, [2]int64{2, 10}, [2]int64{3, 11}))
	teams := newSleepSource("teams", latency, rel2("tid", "lid", [2]int64{10, 100}, [2]int64{11, 100}))
	leagues := newSleepSource("leagues", latency, rel2("lid", "rank", [2]int64{100, 1}))
	plan := relalg.NewJoin(
		relalg.NewJoin(relalg.NewScan(players), relalg.NewScan(teams), [][2]string{{"tid", "tid"}}),
		relalg.NewScan(leagues), [][2]string{{"lid", "lid"}})

	ctx := context.Background()
	start := time.Now()
	want, err := plan.Execute(ctx)
	if err != nil {
		t.Fatal(err)
	}
	seq := time.Since(start)

	eng := NewEngine()
	start = time.Now()
	cur, err := eng.Run(ctx, plan)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cur.Materialize(ctx)
	if err != nil {
		t.Fatal(err)
	}
	fed := time.Since(start)

	if !want.Equal(got) {
		t.Fatalf("results differ:\nseq:\n%s\nfed:\n%s", want.Table(), got.Table())
	}
	if got.Len() != 3 {
		t.Fatalf("rows = %d", got.Len())
	}
	if fed*2 > seq {
		t.Errorf("federated %v not ≥2x faster than sequential %v", fed, seq)
	}
}

// TestScatterFirstErrorCancelsSiblings: one failing source aborts the
// scatter — the blocked sibling either has its fetch context canceled
// (no cache, so fetches run under the scatter context) or, if the
// failure won the race, never fetches at all — and Run reports the
// root cause, not the induced cancellation.
func TestScatterFirstErrorCancelsSiblings(t *testing.T) {
	sentinel := errors.New("source exploded")
	slow := newSleepSource("slow", time.Hour, rel2("a", "b"))
	bad := &failSource{name: "bad", cols: []string{"a", "b"}, err: sentinel}
	plan := relalg.NewJoin(relalg.NewScan(bad), relalg.NewScan(slow), [][2]string{{"a", "a"}})

	eng := NewEngine()
	eng.Cache = nil // direct fetches: the scatter ctx reaches the source
	start := time.Now()
	_, err := eng.Run(context.Background(), plan)
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want %v", err, sentinel)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("scatter took %v; sibling not canceled", d)
	}
	// scatter's wg.Wait means the sibling's worker has finished by now:
	// either it bailed before fetching, or its in-flight fetch observed
	// the cancellation.
	if slow.fetches.Load() > 0 {
		select {
		case <-slow.canceled:
		default:
			t.Fatal("slow source fetched but was never canceled")
		}
	}
}

// TestScatterSourceTimeout: a hung source trips the per-source deadline
// and surfaces context.DeadlineExceeded (what the REST layer maps to
// 504), through the cache-owned fetch path.
func TestScatterSourceTimeout(t *testing.T) {
	slow := newSleepSource("slow", time.Hour, rel2("a", "b"))
	eng := NewEngine()
	eng.SourceTimeout = 30 * time.Millisecond
	eng.Retry.Max = 0 // timeouts are retryable; keep the test single-attempt
	_, err := eng.Run(context.Background(), relalg.NewScan(slow))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

// TestScatterCallerCancel: a canceled caller (client disconnect)
// surfaces context.Canceled (the REST layer's 499) even while the
// cache-owned fetch is still in flight.
func TestScatterCallerCancel(t *testing.T) {
	slow := newSleepSource("slow", time.Hour, rel2("a", "b"))
	eng := NewEngine()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	_, err := eng.Run(ctx, relalg.NewScan(slow))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
}

// TestCursorCancelMidDrain: cancellation between Next calls stops the
// drain with ctx's error.
func TestCursorCancelMidDrain(t *testing.T) {
	rel := relalg.NewRelation("a")
	for i := 0; i < 100; i++ {
		rel.MustAppend(relalg.Row{relalg.Int(int64(i))})
	}
	eng := NewEngine()
	ctx, cancel := context.WithCancel(context.Background())
	cur, err := eng.Run(ctx, relalg.NewScan(relalg.NewMemSource("m", rel)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if !cur.Next(ctx) {
			t.Fatalf("premature end at row %d: %v", i, cur.Err())
		}
	}
	cancel()
	if cur.Next(ctx) {
		t.Fatal("Next succeeded after cancel")
	}
	if !errors.Is(cur.Err(), context.Canceled) {
		t.Fatalf("Err = %v, want Canceled", cur.Err())
	}
}

// failSource errors on every fetch.
type failSource struct {
	name string
	cols []string
	err  error
}

func (f *failSource) Name() string      { return f.name }
func (f *failSource) Columns() []string { return f.cols }
func (f *failSource) Fetch(context.Context) (*relalg.Relation, error) {
	return nil, f.err
}

// TestScatterSchemaGuard: a source misreporting its schema fails the
// run loudly (the Scan.Execute guard, applied at fetch time).
func TestScatterSchemaGuard(t *testing.T) {
	lying := &lyingSource{}
	eng := NewEngine()
	_, err := eng.Run(context.Background(), relalg.NewScan(lying))
	if err == nil || !strings.Contains(err.Error(), "returned 1 columns, declared 2") {
		t.Fatalf("err = %v, want the schema guard", err)
	}
}

type lyingSource struct{}

func (l *lyingSource) Name() string      { return "liar" }
func (l *lyingSource) Columns() []string { return []string{"a", "b"} }
func (l *lyingSource) Fetch(context.Context) (*relalg.Relation, error) {
	return relalg.NewRelation("a"), nil
}

// TestRunPageBounds: limit 0 produces an empty cursor without touching
// the pipeline; offset past the end drains empty.
func TestRunPageBounds(t *testing.T) {
	rel := rel2("a", "b", [2]int64{1, 2}, [2]int64{3, 4})
	plan := relalg.NewScan(relalg.NewMemSource("m", rel))
	eng := NewEngine()
	ctx := context.Background()
	for _, tc := range []struct {
		limit, offset, want int
	}{
		{0, 0, 0}, {1, 0, 1}, {-1, 1, 1}, {5, 5, 0}, {-1, -1, 2},
	} {
		cur, err := eng.RunPage(ctx, plan, tc.limit, tc.offset)
		if err != nil {
			t.Fatal(err)
		}
		got, err := cur.Materialize(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if got.Len() != tc.want {
			t.Errorf("limit=%d offset=%d: rows = %d, want %d", tc.limit, tc.offset, got.Len(), tc.want)
		}
	}
}

// TestScatterParallelismBounded: with Parallel=2 and 6 sources, at most
// two fetches overlap.
func TestScatterParallelismBounded(t *testing.T) {
	var inflight, peak atomic.Int32
	mk := func(i int) relalg.RowSource {
		return &gaugeSource{name: fmt.Sprintf("g%d", i), inflight: &inflight, peak: &peak}
	}
	plans := make([]relalg.Plan, 6)
	for i := range plans {
		plans[i] = relalg.NewProject(relalg.NewScan(mk(i)), "a")
	}
	// Union of projections keeps all six sources in one plan.
	plan := relalg.NewUnion(plans...)
	eng := NewEngine()
	eng.Parallel = 2
	cur, err := eng.Run(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cur.Materialize(context.Background()); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 2 {
		t.Fatalf("peak concurrent fetches = %d, want <= 2", p)
	}
}

type gaugeSource struct {
	name           string
	inflight, peak *atomic.Int32
}

func (g *gaugeSource) Name() string      { return g.name }
func (g *gaugeSource) Columns() []string { return []string{"a"} }
func (g *gaugeSource) Fetch(context.Context) (*relalg.Relation, error) {
	cur := g.inflight.Add(1)
	for {
		p := g.peak.Load()
		if cur <= p || g.peak.CompareAndSwap(p, cur) {
			break
		}
	}
	time.Sleep(10 * time.Millisecond)
	g.inflight.Add(-1)
	rel := relalg.NewRelation("a")
	rel.MustAppend(relalg.Row{relalg.Int(1)})
	return rel, nil
}
