package federate

import (
	"context"
	"fmt"
	"strings"

	"mdm/internal/relalg"
)

// This file compiles a relalg.Plan into a tree of pull-based row
// iterators over the scatter phase's source snapshots. The compiled
// pipeline produces exactly the rows — in exactly the order — that
// relalg.Plan.Execute materializes (the equivalence harness pins this),
// but one row at a time: Select/Project/Rename/Limit/Union/Distinct
// stream, and Join is a probe-side hash join that materializes only its
// build side (the right child), reusing the intrusive-chain layout of
// the SPARQL engine's hashJoinIter at the relalg level.
//
// Row ownership: a row returned by next may be shared with a source
// snapshot or the join build side — consumers must not mutate it.
// Operators that construct rows (Project, Join) allocate fresh ones.

// pollEvery is how many rows an amplifying or filtering loop processes
// between context checks.
const pollEvery = 1024

// iter is one streaming operator. next returns the next row, or
// (nil, nil) when exhausted; an error aborts the drain.
type iter interface {
	next(ctx context.Context) (relalg.Row, error)
}

// compile builds the operator tree for p over the fetched snapshots.
func compile(p relalg.Plan, snaps map[string]*relalg.Relation) (iter, error) {
	switch n := p.(type) {
	case *relalg.Scan:
		rel, ok := snaps[n.Src.Name()]
		if !ok {
			return nil, fmt.Errorf("federate: no snapshot for source %s", n.Src.Name())
		}
		return &scanIter{rows: rel.Rows}, nil

	case *relalg.Project:
		child, err := compile(n.Child, snaps)
		if err != nil {
			return nil, err
		}
		in := n.Child.Columns()
		idx := make([]int, len(n.Cols))
		for i, c := range n.Cols {
			j := colIndex(in, c)
			if j < 0 {
				return nil, fmt.Errorf("federate: unknown column %q (have %v)", c, in)
			}
			idx[i] = j
		}
		return &projectIter{src: child, idx: idx}, nil

	case *relalg.Select:
		child, err := compile(n.Child, snaps)
		if err != nil {
			return nil, err
		}
		return &selectIter{src: child, pred: n.Pred, cols: n.Child.Columns()}, nil

	case *relalg.Rename:
		// Rename changes column names, not rows: compile through.
		return compile(n.Child, snaps)

	case *relalg.Join:
		return compileJoin(n, snaps)

	case *relalg.Union:
		if len(n.Plans) == 0 {
			return emptyIter{}, nil
		}
		cols := n.Plans[0].Columns()
		subs := make([]iter, len(n.Plans))
		for i, sub := range n.Plans {
			sc := sub.Columns()
			if len(sc) != len(cols) {
				return nil, fmt.Errorf("federate: union schema mismatch: %v vs %v", cols, sc)
			}
			for j := range sc {
				if sc[j] != cols[j] {
					return nil, fmt.Errorf("federate: union schema mismatch: %v vs %v", cols, sc)
				}
			}
			it, err := compile(sub, snaps)
			if err != nil {
				return nil, err
			}
			subs[i] = it
		}
		return &unionIter{subs: subs}, nil

	case *relalg.Distinct:
		child, err := compile(n.Child, snaps)
		if err != nil {
			return nil, err
		}
		return &distinctIter{src: child, seen: map[string]struct{}{}}, nil

	case *relalg.Limit:
		child, err := compile(n.Child, snaps)
		if err != nil {
			return nil, err
		}
		return &pageIter{src: child, limit: n.N}, nil
	}
	return nil, fmt.Errorf("federate: unsupported plan operator %T", p)
}

func colIndex(cols []string, name string) int {
	for i, c := range cols {
		if c == name {
			return i
		}
	}
	return -1
}

// rowKey is the canonical hash key of a row (same coercions as
// relalg.Relation.Distinct / Join.Execute: numeric values of equal
// magnitude collide, NULL is a distinct token).
func rowKey(sb *strings.Builder, row relalg.Row, idx []int) string {
	sb.Reset()
	for _, i := range idx {
		sb.WriteString(row[i].Key())
		sb.WriteByte('\x01')
	}
	return sb.String()
}

// joinKey is the join-column key of a row; "" means a NULL participates
// and the row never joins (SQL semantics, matching Join.Execute).
func joinKey(sb *strings.Builder, row relalg.Row, idx []int) string {
	sb.Reset()
	for _, i := range idx {
		if row[i].IsNull() {
			return ""
		}
		sb.WriteString(row[i].Key())
		sb.WriteByte('\x01')
	}
	return sb.String()
}

// --- leaves and simple operators ---

type emptyIter struct{}

func (emptyIter) next(context.Context) (relalg.Row, error) { return nil, nil }

// scanIter streams a source snapshot, polling ctx periodically so huge
// snapshots stay cancelable.
type scanIter struct {
	rows []relalg.Row
	pos  int
}

func (it *scanIter) next(ctx context.Context) (relalg.Row, error) {
	if it.pos&(pollEvery-1) == pollEvery-1 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	if it.pos >= len(it.rows) {
		return nil, nil
	}
	r := it.rows[it.pos]
	it.pos++
	return r, nil
}

// projectIter reorders/prunes columns, emitting a fresh row per input.
type projectIter struct {
	src iter
	idx []int
}

func (it *projectIter) next(ctx context.Context) (relalg.Row, error) {
	row, err := it.src.next(ctx)
	if row == nil || err != nil {
		return nil, err
	}
	out := make(relalg.Row, len(it.idx))
	for i, j := range it.idx {
		out[i] = row[j]
	}
	return out, nil
}

// selectIter drops rows failing the predicate, polling ctx while
// scanning long runs of non-matching rows.
type selectIter struct {
	src     iter
	pred    relalg.Pred
	cols    []string
	scanned int
}

func (it *selectIter) next(ctx context.Context) (relalg.Row, error) {
	for {
		it.scanned++
		if it.scanned&(pollEvery-1) == pollEvery-1 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		row, err := it.src.next(ctx)
		if row == nil || err != nil {
			return nil, err
		}
		if it.pred.Eval(it.cols, row) {
			return row, nil
		}
	}
}

// unionIter concatenates its children in order.
type unionIter struct {
	subs []iter
	cur  int
}

func (it *unionIter) next(ctx context.Context) (relalg.Row, error) {
	for it.cur < len(it.subs) {
		row, err := it.subs[it.cur].next(ctx)
		if row != nil || err != nil {
			return row, err
		}
		it.cur++
	}
	return nil, nil
}

// distinctIter keeps each row's first occurrence.
type distinctIter struct {
	src  iter
	seen map[string]struct{}
	idx  []int // lazily: identity of all columns
	sb   strings.Builder
}

func (it *distinctIter) next(ctx context.Context) (relalg.Row, error) {
	for {
		row, err := it.src.next(ctx)
		if row == nil || err != nil {
			return nil, err
		}
		if it.idx == nil {
			it.idx = make([]int, len(row))
			for i := range it.idx {
				it.idx[i] = i
			}
		}
		k := rowKey(&it.sb, row, it.idx)
		if _, dup := it.seen[k]; dup {
			continue
		}
		it.seen[k] = struct{}{}
		return row, nil
	}
}

// pageIter applies OFFSET/LIMIT: skip rows, then emit at most limit
// (limit < 0 = unlimited). A satisfied limit stops pulling, which is
// what lets upstream joins stop work early.
type pageIter struct {
	src   iter
	skip  int
	limit int
}

func (it *pageIter) next(ctx context.Context) (relalg.Row, error) {
	for it.skip > 0 {
		row, err := it.src.next(ctx)
		if row == nil || err != nil {
			it.skip = 0
			return nil, err
		}
		it.skip--
	}
	if it.limit == 0 {
		return nil, nil
	}
	row, err := it.src.next(ctx)
	if row == nil || err != nil {
		return nil, err
	}
	if it.limit > 0 {
		it.limit--
	}
	return row, nil
}

// --- hash join ---

// compileJoin resolves the join's column indexes at compile time,
// mirroring Join.Execute's schema arithmetic exactly (join-duplicate
// and name-collision columns of the right side are skipped).
func compileJoin(n *relalg.Join, snaps map[string]*relalg.Relation) (iter, error) {
	left, err := compile(n.L, snaps)
	if err != nil {
		return nil, err
	}
	right, err := compile(n.R, snaps)
	if err != nil {
		return nil, err
	}
	lcols, rcols := n.L.Columns(), n.R.Columns()
	lIdx := make([]int, len(n.On))
	rIdx := make([]int, len(n.On))
	for i, p := range n.On {
		lIdx[i] = colIndex(lcols, p[0])
		rIdx[i] = colIndex(rcols, p[1])
		if lIdx[i] < 0 {
			return nil, fmt.Errorf("federate: join column %q missing on left (have %v)", p[0], lcols)
		}
		if rIdx[i] < 0 {
			return nil, fmt.Errorf("federate: join column %q missing on right (have %v)", p[1], rcols)
		}
	}
	skip := map[int]bool{}
	for _, ri := range rIdx {
		skip[ri] = true
	}
	lhave := map[string]bool{}
	for _, c := range lcols {
		lhave[c] = true
	}
	var rEmit []int
	for i, c := range rcols {
		if !skip[i] && !lhave[c] {
			rEmit = append(rEmit, i)
		}
	}
	return &joinIter{
		left: left, right: right,
		lIdx: lIdx, rIdx: rIdx, rEmit: rEmit,
		outW:  len(lcols) + len(rEmit),
		chain: -1,
	}, nil
}

// joinIter is a streaming probe-side hash join. On first pull it drains
// its right child into an intrusive-chain hash table — rows in a flat
// slice, head mapping a join key to its first row, next linking rows
// that share a key (the PR 4 hashJoinIter layout, lifted from TermID
// triplets to relalg rows). Chains are linked in reverse build order so
// walking one yields matches in build order, keeping emission order
// identical to the materializing executor's. Probing then streams: one
// left row at a time, its bucket chain walked match by match, so the
// join's (potentially multiplied) output is never materialized.
type joinIter struct {
	left, right iter
	lIdx, rIdx  []int
	rEmit       []int
	outW        int

	built bool
	rows  []relalg.Row
	head  map[string]int32
	link  []int32

	cur     relalg.Row // borrowed left row being extended
	chain   int32      // next build row in cur's bucket, -1 = drained
	emitted int        // for amortized ctx polling on skewed joins
	sb      strings.Builder
}

func (it *joinIter) build(ctx context.Context) error {
	it.rows = it.rows[:0]
	for {
		row, err := it.right.next(ctx)
		if err != nil {
			return err
		}
		if row == nil {
			break
		}
		it.rows = append(it.rows, row)
	}
	n := len(it.rows)
	it.head = make(map[string]int32, n)
	it.link = make([]int32, n)
	// Reverse iteration + head-insertion leaves each chain in forward
	// (build) order when walked from head.
	for i := n - 1; i >= 0; i-- {
		k := joinKey(&it.sb, it.rows[i], it.rIdx)
		if k == "" {
			it.link[i] = -1 // NULL never joins; row is unreachable
			continue
		}
		if h, ok := it.head[k]; ok {
			it.link[i] = h
		} else {
			it.link[i] = -1
		}
		it.head[k] = int32(i)
	}
	it.built = true
	return nil
}

func (it *joinIter) next(ctx context.Context) (relalg.Row, error) {
	if !it.built {
		if err := it.build(ctx); err != nil {
			return nil, err
		}
	}
	for {
		if it.chain >= 0 {
			rrow := it.rows[it.chain]
			it.chain = it.link[it.chain]
			it.emitted++
			if it.emitted&(pollEvery-1) == pollEvery-1 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			out := make(relalg.Row, 0, it.outW)
			out = append(out, it.cur...)
			for _, i := range it.rEmit {
				out = append(out, rrow[i])
			}
			return out, nil
		}
		lrow, err := it.left.next(ctx)
		if lrow == nil || err != nil {
			return nil, err
		}
		k := joinKey(&it.sb, lrow, it.lIdx)
		if k == "" {
			continue
		}
		if h, ok := it.head[k]; ok {
			it.cur, it.chain = lrow, h
		}
	}
}
