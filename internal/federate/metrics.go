package federate

import (
	"mdm/internal/obs"
)

// Federation metrics. The legacy mdm.federate.* expvar counters stay
// the source of truth for what they already count (tests and
// /debug/vars consumers depend on them); the CounterFunc shims below
// mirror each of them into the Prometheus scrape at read time, so both
// registries publish the same numbers without double accounting.
var (
	obsScatters = obs.Default.NewCounter("mdm_federate_scatters_total",
		"Scatter phases executed (one per federated query).")
	obsScatterFanout = obs.Default.NewHistogram("mdm_federate_scatter_fanout_sources",
		"Distinct sources fetched per scatter phase.",
		[]float64{1, 2, 4, 8, 16, 32, 64})
	obsScatterDur = obs.Default.NewHistogram("mdm_federate_scatter_duration_seconds",
		"Wall time of the scatter phase (all source fetches).", obs.DefBuckets)

	obsFetchAttempts = obs.Default.NewCounterVec("mdm_federate_fetch_attempts_total",
		"Source fetch attempts by outcome: ok, or the error class "+
			"(timeout, network, http_5xx, rate_limited, http_4xx, "+
			"payload_too_large, schema, breaker_open, canceled, error).", "outcome")
	obsFetchOK = obsFetchAttempts.With("ok")

	obsRetries = obs.Default.NewCounter("mdm_federate_retries_total",
		"Fetch attempts beyond the first (the retry ladder's extra rungs).")

	obsPartialDegradations = obs.Default.NewCounter("mdm_federate_partial_degradations_total",
		"Queries answered degraded: at least one source missing or served stale.")
	obsStaleServed = obs.Default.NewCounterVec("mdm_federate_stale_served_total",
		"Stale snapshots served in place of a failing source.", "source")

	// obsMissing counts Cursor.Missing() entries per (source, class) —
	// previously these were visible only in response bodies. The
	// registry's cardinality cap bounds hostile source-name growth.
	obsMissing = obs.Default.NewCounterVec("mdm_federate_missing_total",
		"Sources missing from partial results, by source and error class.",
		"source", "class")
)

// Expvar→obs migration shims: every existing mdm.federate.* counter,
// published through both registries.
func init() {
	shim := func(name, help string, v interface{ Value() int64 }) {
		obs.Default.CounterFunc(name, help, func() float64 { return float64(v.Value()) })
	}
	shim("mdm_federate_source_cache_hits_total",
		"Source-cache hits (mirror of mdm.federate.source_cache.hits).", expHits)
	shim("mdm_federate_source_cache_misses_total",
		"Source-cache misses (mirror of mdm.federate.source_cache.misses).", expMisses)
	shim("mdm_federate_source_cache_inflight_dedup_total",
		"Fetches deduplicated onto an in-flight fill (mirror of mdm.federate.source_cache.inflight_dedup).", expShared)
	shim("mdm_federate_source_cache_expired_total",
		"Cache entries expired by TTL (mirror of mdm.federate.source_cache.expired).", expExpired)
	shim("mdm_federate_breaker_opened_total",
		"Circuit-breaker open transitions (mirror of mdm.federate.breaker.opened).", expBreakerOpened)
	shim("mdm_federate_breaker_half_opened_total",
		"Circuit-breaker half-open transitions (mirror of mdm.federate.breaker.half_opened).", expBreakerHalfOpened)
	shim("mdm_federate_breaker_closed_total",
		"Circuit-breaker close transitions (mirror of mdm.federate.breaker.closed).", expBreakerClosed)
	shim("mdm_federate_breaker_fast_fails_total",
		"Fetches suppressed by an open breaker (mirror of mdm.federate.breaker.fast_fails).", expBreakerFastFails)
}
