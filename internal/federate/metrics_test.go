package federate

import (
	"context"
	"errors"
	"testing"

	"mdm/internal/obs"
	"mdm/internal/relalg"
)

// Coverage for the observability hooks: missing sources counted per
// (source, class) in the Prometheus registry (they were previously
// visible only in response bodies), scatter traces carrying per-source
// spans, and degradation counters.

func TestMissingCountedPerSourceAndClass(t *testing.T) {
	before := obsMissing.With("m-timeout-src", string(ClassTimeout)).Value()
	beforeDegraded := obsPartialDegradations.Value()

	good := relalg.NewScan(relalg.NewMemSource("m-good-src", rel2("a", "b", [2]int64{1, 2})))
	bad := relalg.NewScan(&failSource{name: "m-timeout-src", cols: []string{"b", "c"},
		err: context.DeadlineExceeded})
	eng := NewEngine()
	eng.PartialResults = true
	cur, err := eng.Run(context.Background(), relalg.NewJoin(good, bad, [][2]string{{"b", "b"}}))
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	missing := cur.Missing()
	if len(missing) != 1 || missing[0].Source != "m-timeout-src" || missing[0].Class != ClassTimeout {
		t.Fatalf("Missing() = %+v, want one timeout for m-timeout-src", missing)
	}
	if got := obsMissing.With("m-timeout-src", string(ClassTimeout)).Value(); got != before+1 {
		t.Errorf("mdm_federate_missing_total{m-timeout-src,timeout} = %v, want %v", got, before+1)
	}
	if got := obsPartialDegradations.Value(); got != beforeDegraded+1 {
		t.Errorf("partial degradations = %v, want %v", got, beforeDegraded+1)
	}
}

func TestScatterTraceSpans(t *testing.T) {
	good := relalg.NewScan(relalg.NewMemSource("t-ok-src", rel2("a", "b", [2]int64{1, 2}, [2]int64{3, 4})))
	bad := relalg.NewScan(&failSource{name: "t-bad-src", cols: []string{"b", "c"},
		err: errors.New("boom")})
	eng := NewEngine()
	eng.PartialResults = true
	tr := obs.NewTrace()
	ctx := obs.WithTrace(context.Background(), tr)
	cur, err := eng.Run(ctx, relalg.NewJoin(good, bad, [][2]string{{"b", "b"}}))
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	rep := tr.Report()
	if len(rep.Sources) != 2 {
		t.Fatalf("source spans = %d, want 2: %+v", len(rep.Sources), rep.Sources)
	}
	byName := map[string]obs.SourceReport{}
	for _, s := range rep.Sources {
		byName[s.Source] = s
	}
	if ok := byName["t-ok-src"]; ok.Outcome != "ok" || ok.Rows != 2 {
		t.Errorf("ok span = %+v", ok)
	}
	if bad := byName["t-bad-src"]; bad.Outcome != "missing:error" {
		t.Errorf("bad span outcome = %q, want missing:error", bad.Outcome)
	}
	hasScatterStage := false
	for _, s := range rep.Stages {
		if s.Name == "scatter" {
			hasScatterStage = true
		}
	}
	if !hasScatterStage {
		t.Errorf("no scatter stage recorded: %+v", rep.Stages)
	}
}

func TestFetchOutcomeCounters(t *testing.T) {
	beforeOK := obsFetchOK.Value()
	beforeErr := obsFetchAttempts.With(string(ClassOther)).Value()
	good := relalg.NewScan(relalg.NewMemSource("c-ok-src", rel2("a", "b", [2]int64{1, 2})))
	eng := NewEngine()
	if cur, err := eng.Run(context.Background(), good); err != nil {
		t.Fatal(err)
	} else {
		cur.Close()
	}
	if got := obsFetchOK.Value(); got != beforeOK+1 {
		t.Errorf("ok attempts = %v, want %v", got, beforeOK+1)
	}
	bad := relalg.NewScan(&failSource{name: "c-bad-src", cols: []string{"a"}, err: errors.New("nope")})
	if _, err := eng.Run(context.Background(), bad); err == nil {
		t.Fatal("expected strict-mode error")
	}
	if got := obsFetchAttempts.With(string(ClassOther)).Value(); got != beforeErr+1 {
		t.Errorf("error attempts = %v, want %v", got, beforeErr+1)
	}
}
