package federate

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"mdm/internal/relalg"
)

// Randomized equivalence harness: every generated plan is executed
// through both the materializing executor (relalg.Plan.Execute — the
// correctness oracle) and the streaming federate engine, and the two
// results must be identical — same schema, same rows, same ORDER (the
// streaming pipeline is documented to reproduce Execute's emission
// order exactly, which is what makes paged reads prefixes of the full
// drain). Each case additionally drains a random page through RunPage
// and asserts it equals the corresponding slice of the full result.
// Generation is seeded, so failures reproduce by seed number.

const oraclePlans = 250

// --- value / relation generation ---

var colPool = []string{"a", "b", "c", "d", "e", "f"}

func genValue(r *rand.Rand) relalg.Value {
	switch r.Intn(8) {
	case 0:
		return relalg.Null()
	case 1:
		return relalg.Bool(r.Intn(2) == 0)
	case 2:
		return relalg.Float(float64(r.Intn(4)) + 0.5)
	case 3, 4:
		return relalg.Int(int64(r.Intn(5)))
	default:
		return relalg.String([]string{"x", "y", "z", ""}[r.Intn(4)])
	}
}

func genCols(r *rand.Rand) []string {
	perm := r.Perm(len(colPool))
	n := 2 + r.Intn(3)
	cols := make([]string, n)
	for i := 0; i < n; i++ {
		cols[i] = colPool[perm[i]]
	}
	return cols
}

func genRelation(r *rand.Rand, cols []string) *relalg.Relation {
	rel := relalg.NewRelation(cols...)
	for i, n := 0, r.Intn(13); i < n; i++ {
		row := make(relalg.Row, len(cols))
		for j := range row {
			row[j] = genValue(r)
		}
		rel.Rows = append(rel.Rows, row)
	}
	return rel
}

// --- plan generation ---

type planGen struct {
	r    *rand.Rand
	nsrc int
}

func (g *planGen) leaf() relalg.Plan {
	cols := genCols(g.r)
	g.nsrc++
	return relalg.NewScan(relalg.NewMemSource(fmt.Sprintf("src%d", g.nsrc), genRelation(g.r, cols)))
}

// plan builds a random operator tree of bounded depth. Generated plans
// are always well-formed (predicates and join keys reference existing
// columns, union branches share one schema), mirroring what the
// rewriter emits.
func (g *planGen) plan(depth int) relalg.Plan {
	if depth <= 0 || g.r.Intn(4) == 0 {
		return g.leaf()
	}
	switch g.r.Intn(7) {
	case 0: // selection
		child := g.plan(depth - 1)
		cols := child.Columns()
		col := cols[g.r.Intn(len(cols))]
		ops := []string{"=", "!=", "<", "<=", ">", ">="}
		pred := relalg.Cmp{Op: ops[g.r.Intn(len(ops))], Col: col}
		if g.r.Intn(3) == 0 {
			pred.Other = cols[g.r.Intn(len(cols))]
		} else {
			pred.Val = genValue(g.r)
		}
		return relalg.NewSelect(child, pred)
	case 1: // projection: non-empty shuffled subset
		child := g.plan(depth - 1)
		cols := child.Columns()
		perm := g.r.Perm(len(cols))
		n := 1 + g.r.Intn(len(cols))
		keep := make([]string, n)
		for i := 0; i < n; i++ {
			keep[i] = cols[perm[i]]
		}
		return relalg.NewProject(child, keep...)
	case 2: // rename one column to a fresh name
		child := g.plan(depth - 1)
		cols := child.Columns()
		from := cols[g.r.Intn(len(cols))]
		to := fmt.Sprintf("r%d", g.r.Intn(1000))
		return relalg.NewRename(child, [][2]string{{from, to}})
	case 3: // equi-join on 1-2 random column pairs
		l, rr := g.plan(depth-1), g.plan(depth-1)
		lc, rc := l.Columns(), rr.Columns()
		n := 1 + g.r.Intn(2)
		on := make([][2]string, n)
		for i := range on {
			on[i] = [2]string{lc[g.r.Intn(len(lc))], rc[g.r.Intn(len(rc))]}
		}
		return relalg.NewJoin(l, rr, on)
	case 4: // union: extra scans sharing the first branch's schema
		first := g.plan(depth - 1)
		plans := []relalg.Plan{first}
		for i, n := 0, 1+g.r.Intn(2); i < n; i++ {
			g.nsrc++
			plans = append(plans, relalg.NewScan(relalg.NewMemSource(
				fmt.Sprintf("src%d", g.nsrc), genRelation(g.r, first.Columns()))))
		}
		return relalg.NewUnion(plans...)
	case 5: // distinct
		return relalg.NewDistinct(g.plan(depth - 1))
	default: // limit
		return relalg.NewLimit(g.plan(depth-1), g.r.Intn(6))
	}
}

// --- comparison ---

func rowsEqual(a, b relalg.Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Key() != b[i].Key() {
			return false
		}
	}
	return true
}

func assertSameResult(t *testing.T, seed int64, label string, want, got *relalg.Relation) {
	t.Helper()
	if len(want.Cols) != len(got.Cols) {
		t.Fatalf("seed %d %s: cols %v vs %v", seed, label, want.Cols, got.Cols)
	}
	for i := range want.Cols {
		if want.Cols[i] != got.Cols[i] {
			t.Fatalf("seed %d %s: cols %v vs %v", seed, label, want.Cols, got.Cols)
		}
	}
	if len(want.Rows) != len(got.Rows) {
		t.Fatalf("seed %d %s: %d rows vs %d rows\noracle:\n%s\nfederate:\n%s",
			seed, label, len(want.Rows), len(got.Rows), want.Table(), got.Table())
	}
	for i := range want.Rows {
		if !rowsEqual(want.Rows[i], got.Rows[i]) {
			t.Fatalf("seed %d %s: row %d differs\noracle:\n%s\nfederate:\n%s",
				seed, label, i, want.Table(), got.Table())
		}
	}
}

// TestFederateMatchesExecuteOracle is the randomized equivalence
// harness (run under -race in CI: the scatter phase exercises the
// engine's concurrency on every case).
func TestFederateMatchesExecuteOracle(t *testing.T) {
	ctx := context.Background()
	base := time.Now().UnixNano()
	for i := 0; i < oraclePlans; i++ {
		seed := base + int64(i)
		r := rand.New(rand.NewSource(seed))
		g := &planGen{r: r}
		plan := g.plan(3)

		want, err := plan.Execute(ctx)
		if err != nil {
			t.Fatalf("seed %d: oracle execute: %v", seed, err)
		}

		eng := NewEngine()
		cur, err := eng.Run(ctx, plan)
		if err != nil {
			t.Fatalf("seed %d: federate run: %v", seed, err)
		}
		got, err := cur.Materialize(ctx)
		if err != nil {
			t.Fatalf("seed %d: federate drain: %v", seed, err)
		}
		assertSameResult(t, seed, "full drain", want, got)

		// Paged read equals the slice of the full result.
		limit, offset := r.Intn(len(want.Rows)+2), r.Intn(len(want.Rows)+2)
		pcur, err := eng.RunPage(ctx, plan, limit, offset)
		if err != nil {
			t.Fatalf("seed %d: federate page: %v", seed, err)
		}
		page, err := pcur.Materialize(ctx)
		if err != nil {
			t.Fatalf("seed %d: federate page drain: %v", seed, err)
		}
		wantPage := relalg.NewRelation(want.Cols...)
		if offset < len(want.Rows) {
			end := min(offset+limit, len(want.Rows))
			wantPage.Rows = want.Rows[offset:end]
		}
		assertSameResult(t, seed, fmt.Sprintf("page limit=%d offset=%d", limit, offset), wantPage, page)
	}
}

// TestFederateOracleEdgeCases pins deterministic shapes the random
// generator may under-sample.
func TestFederateOracleEdgeCases(t *testing.T) {
	ctx := context.Background()
	empty := relalg.NewScan(relalg.NewMemSource("empty", relalg.NewRelation("a", "b")))
	lhs := relalg.NewRelation("a", "b")
	lhs.MustAppend(relalg.Row{relalg.Int(1), relalg.String("x")})
	lhs.MustAppend(relalg.Row{relalg.Null(), relalg.String("y")}) // NULL key never joins
	lhs.MustAppend(relalg.Row{relalg.Int(1), relalg.String("x")}) // duplicate
	rhs := relalg.NewRelation("k", "c")
	rhs.MustAppend(relalg.Row{relalg.Int(1), relalg.String("p")})
	rhs.MustAppend(relalg.Row{relalg.Int(1), relalg.String("q")}) // duplicate key: fan-out
	rhs.MustAppend(relalg.Row{relalg.Null(), relalg.String("n")})
	l := relalg.NewScan(relalg.NewMemSource("l", lhs))
	rr := relalg.NewScan(relalg.NewMemSource("r", rhs))

	plans := []relalg.Plan{
		empty,
		relalg.NewJoin(l, rr, [][2]string{{"a", "k"}}),
		relalg.NewDistinct(relalg.NewJoin(l, rr, [][2]string{{"a", "k"}})),
		relalg.NewUnion(l, relalg.NewScan(relalg.NewMemSource("l2", lhs))),
		relalg.NewLimit(relalg.NewJoin(l, rr, [][2]string{{"a", "k"}}), 0),
		relalg.NewProject(relalg.NewRename(l, [][2]string{{"b", "bb"}}), "bb"),
		relalg.NewSelect(l, relalg.NotNull{Col: "a"}),
		// Same wrapper scanned twice (self-join): the scatter dedupes.
		relalg.NewJoin(l, relalg.NewRename(l, [][2]string{{"b", "b2"}}), [][2]string{{"a", "a"}}),
	}
	eng := NewEngine()
	for i, plan := range plans {
		want, err := plan.Execute(ctx)
		if err != nil {
			t.Fatalf("case %d: oracle: %v", i, err)
		}
		cur, err := eng.Run(ctx, plan)
		if err != nil {
			t.Fatalf("case %d: run: %v", i, err)
		}
		got, err := cur.Materialize(ctx)
		if err != nil {
			t.Fatalf("case %d: drain: %v", i, err)
		}
		assertSameResult(t, int64(i), "edge case", want, got)
	}
}
