package federate

import (
	"context"
	"errors"
	"math/rand"
	"net"
	"time"

	"mdm/internal/wrapper"
)

// ErrClass buckets a source-fetch failure for two consumers: the retry
// loop (is another attempt worth the wait?) and the partial-results
// annotation (why is this source missing?). The classes and their
// retryability are part of the REST contract — see the error-class
// table in docs/ARCHITECTURE.md.
type ErrClass string

// Error classes. Retryable: timeout, network, http_5xx, rate_limited.
// Terminal: everything else — a canceled caller is gone, a 4xx or
// schema error will fail identically on every attempt, and an open
// breaker exists precisely to suppress attempts.
const (
	// ClassCanceled: the caller's context was canceled (client gone).
	ClassCanceled ErrClass = "canceled"
	// ClassTimeout: a fetch deadline expired (per-source or caller).
	ClassTimeout ErrClass = "timeout"
	// ClassNetwork: transport-level failure (refused, reset, DNS).
	ClassNetwork ErrClass = "network"
	// ClassHTTP5xx: the source answered with a 5xx.
	ClassHTTP5xx ErrClass = "http_5xx"
	// ClassRateLimited: the source answered 429.
	ClassRateLimited ErrClass = "rate_limited"
	// ClassHTTP4xx: the source answered with a non-429 4xx.
	ClassHTTP4xx ErrClass = "http_4xx"
	// ClassPayloadTooLarge: the payload exceeded the wrapper read cap.
	ClassPayloadTooLarge ErrClass = "payload_too_large"
	// ClassSchema: the source's rows contradict its declared schema.
	ClassSchema ErrClass = "schema"
	// ClassBreakerOpen: the fetch was suppressed by an open breaker.
	ClassBreakerOpen ErrClass = "breaker_open"
	// ClassOther: any unrecognized failure; treated as terminal.
	ClassOther ErrClass = "error"
)

// Retryable reports whether another fetch attempt could plausibly
// succeed.
func (c ErrClass) Retryable() bool {
	switch c {
	case ClassTimeout, ClassNetwork, ClassHTTP5xx, ClassRateLimited:
		return true
	}
	return false
}

// sourceFault reports whether the failure indicts the source (and so
// should count toward its circuit breaker). Caller-side cancellation
// and request-shaped errors (4xx, payload cap, schema drift) do not:
// the source is reachable, the request is the problem.
func (c ErrClass) sourceFault() bool { return c.Retryable() }

// errSchema tags the column-count guard failure so Classify can
// distinguish it from arbitrary wrapper errors.
var errSchema = errors.New("schema mismatch")

// Classify maps a source-fetch error to its class. Context errors are
// checked before transport errors because an *url.Error produced by a
// canceled HTTP request both wraps the context error and implements
// net.Error.
func Classify(err error) ErrClass {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrBreakerOpen):
		return ClassBreakerOpen
	case errors.Is(err, context.Canceled):
		return ClassCanceled
	case errors.Is(err, context.DeadlineExceeded):
		return ClassTimeout
	case errors.Is(err, wrapper.ErrPayloadTooLarge):
		return ClassPayloadTooLarge
	case errors.Is(err, errSchema):
		return ClassSchema
	}
	var st *wrapper.StatusError
	if errors.As(err, &st) {
		switch {
		case st.Code >= 500:
			return ClassHTTP5xx
		case st.Code == 429:
			return ClassRateLimited
		case st.Code >= 400:
			return ClassHTTP4xx
		}
		return ClassOther
	}
	var ne net.Error
	if errors.As(err, &ne) {
		if ne.Timeout() {
			return ClassTimeout
		}
		return ClassNetwork
	}
	return ClassOther
}

// Default retry knobs (see RetryPolicy).
const (
	DefaultRetries      = 2
	DefaultRetryBase    = 50 * time.Millisecond
	DefaultRetryCeil    = 2 * time.Second
	maxBackoffDoublings = 16 // beyond this the ceiling always applies
)

// RetryPolicy governs per-source fetch retries. Only errors whose
// class is Retryable are retried; each retry waits a jittered
// exponential backoff first. Retries run inside the snapshot cache's
// singleflight fill, so N concurrent walks waiting on one flaky source
// share one retry sequence rather than issuing N of them.
type RetryPolicy struct {
	// Max is the number of retries after the first attempt; 0 disables
	// retrying.
	Max int
	// BaseDelay is the backoff before the first retry (default 50ms).
	BaseDelay time.Duration
	// MaxDelay caps the backoff growth (default 2s).
	MaxDelay time.Duration

	// sleep is injectable for tests; nil uses a context-aware timer.
	sleep func(ctx context.Context, d time.Duration) error
}

// DefaultRetryPolicy is what NewEngine installs: two retries, 50ms
// base, 2s ceiling.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{Max: DefaultRetries, BaseDelay: DefaultRetryBase, MaxDelay: DefaultRetryCeil}
}

// backoff returns the jittered delay before retry number attempt
// (0-based): equal jitter over an exponentially growing window,
// delay ∈ [base·2ᵃ/2, base·2ᵃ], capped at MaxDelay. Jitter decorrelates
// the retry storms of concurrent queries hitting one recovering source.
func (p RetryPolicy) backoff(attempt int) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = DefaultRetryBase
	}
	ceil := p.MaxDelay
	if ceil <= 0 {
		ceil = DefaultRetryCeil
	}
	d := ceil
	if attempt < maxBackoffDoublings {
		if grown := base << attempt; grown > 0 && grown < ceil {
			d = grown
		}
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// wait sleeps the backoff for attempt, aborting early when ctx dies.
func (p RetryPolicy) wait(ctx context.Context, attempt int) error {
	d := p.backoff(attempt)
	if p.sleep != nil {
		return p.sleep(ctx, d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
