package federate

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"mdm/internal/relalg"
	"mdm/internal/wrapper"
)

// fakeNetErr implements net.Error.
type fakeNetErr struct{ timeout bool }

func (e *fakeNetErr) Error() string   { return "fake net error" }
func (e *fakeNetErr) Timeout() bool   { return e.timeout }
func (e *fakeNetErr) Temporary() bool { return false }

// TestClassify pins the error-class table of the REST annotation
// contract, including the wrapped forms fetchSource produces.
func TestClassify(t *testing.T) {
	wrap := func(err error) error { return fmt.Errorf("federate: source w: %w", err) }
	for _, tc := range []struct {
		name string
		err  error
		want ErrClass
	}{
		{"nil", nil, ""},
		{"canceled", context.Canceled, ClassCanceled},
		{"canceled wrapped", wrap(context.Canceled), ClassCanceled},
		{"deadline", context.DeadlineExceeded, ClassTimeout},
		{"deadline wrapped", wrap(context.DeadlineExceeded), ClassTimeout},
		{"payload cap", wrap(wrapper.ErrPayloadTooLarge), ClassPayloadTooLarge},
		{"schema guard", wrap(errSchema), ClassSchema},
		{"breaker", wrap(ErrBreakerOpen), ClassBreakerOpen},
		{"http 500", wrap(&wrapper.StatusError{URL: "u", Code: 500}), ClassHTTP5xx},
		{"http 503", wrap(&wrapper.StatusError{URL: "u", Code: 503}), ClassHTTP5xx},
		{"http 429", wrap(&wrapper.StatusError{URL: "u", Code: 429}), ClassRateLimited},
		{"http 404", wrap(&wrapper.StatusError{URL: "u", Code: 404}), ClassHTTP4xx},
		{"http 422", wrap(&wrapper.StatusError{URL: "u", Code: 422}), ClassHTTP4xx},
		{"net timeout", wrap(&fakeNetErr{timeout: true}), ClassTimeout},
		{"net refused", wrap(&fakeNetErr{}), ClassNetwork},
		{"opaque", wrap(errors.New("boom")), ClassOther},
	} {
		if got := Classify(tc.err); got != tc.want {
			t.Errorf("%s: Classify = %q, want %q", tc.name, got, tc.want)
		}
	}
}

// TestRetryableSet pins which classes get retried and which are
// terminal — and that exactly the retryable set indicts the source for
// breaker purposes.
func TestRetryableSet(t *testing.T) {
	retryable := map[ErrClass]bool{
		ClassTimeout: true, ClassNetwork: true, ClassHTTP5xx: true, ClassRateLimited: true,
	}
	all := []ErrClass{
		ClassCanceled, ClassTimeout, ClassNetwork, ClassHTTP5xx, ClassRateLimited,
		ClassHTTP4xx, ClassPayloadTooLarge, ClassSchema, ClassBreakerOpen, ClassOther,
	}
	for _, c := range all {
		if got := c.Retryable(); got != retryable[c] {
			t.Errorf("%s.Retryable = %v, want %v", c, got, retryable[c])
		}
		if got := c.sourceFault(); got != retryable[c] {
			t.Errorf("%s.sourceFault = %v, want %v", c, got, retryable[c])
		}
	}
}

// TestBackoffJitterBounds: each backoff lands in the equal-jitter
// window [d/2, d] for the exponentially grown, ceiling-capped d.
func TestBackoffJitterBounds(t *testing.T) {
	p := RetryPolicy{Max: 10, BaseDelay: 50 * time.Millisecond, MaxDelay: 2 * time.Second}
	for attempt := 0; attempt < 10; attempt++ {
		d := p.BaseDelay << attempt
		if d <= 0 || d > p.MaxDelay {
			d = p.MaxDelay
		}
		for i := 0; i < 50; i++ {
			got := p.backoff(attempt)
			if got < d/2 || got > d {
				t.Fatalf("attempt %d: backoff = %v, want in [%v, %v]", attempt, got, d/2, d)
			}
		}
	}
}

// seqSource fails with scripted errors, then serves rel forever.
type seqSource struct {
	name    string
	errs    []error
	rel     *relalg.Relation
	fetches atomic.Int32
}

func (s *seqSource) Name() string      { return s.name }
func (s *seqSource) Columns() []string { return s.rel.Cols }
func (s *seqSource) Fetch(context.Context) (*relalg.Relation, error) {
	n := int(s.fetches.Add(1))
	if n <= len(s.errs) {
		return nil, s.errs[n-1]
	}
	return s.rel, nil
}

func instantSleep(record *[]time.Duration) func(context.Context, time.Duration) error {
	return func(_ context.Context, d time.Duration) error {
		if record != nil {
			*record = append(*record, d)
		}
		return nil
	}
}

// TestEngineRetriesTransient: two 503s then success recovers within the
// retry budget, waiting a jittered backoff before each retry.
func TestEngineRetriesTransient(t *testing.T) {
	rel := relalg.NewRelation("a")
	rel.MustAppend(relalg.Row{relalg.Int(7)})
	flaky := &seqSource{name: "flaky", rel: rel, errs: []error{
		&wrapper.StatusError{URL: "u", Code: 503},
		&wrapper.StatusError{URL: "u", Code: 503},
	}}
	eng := NewEngine()
	var delays []time.Duration
	eng.Retry = RetryPolicy{Max: 2, BaseDelay: 50 * time.Millisecond, MaxDelay: time.Second,
		sleep: instantSleep(&delays)}

	cur, err := eng.Run(context.Background(), relalg.NewScan(flaky))
	if err != nil {
		t.Fatalf("run after transient flakes: %v", err)
	}
	got, err := cur.Materialize(context.Background())
	if err != nil || got.Len() != 1 {
		t.Fatalf("rows = %v, err = %v", got, err)
	}
	if n := flaky.fetches.Load(); n != 3 {
		t.Fatalf("fetches = %d, want 3 (1 + 2 retries)", n)
	}
	if len(delays) != 2 {
		t.Fatalf("backoffs = %d, want 2", len(delays))
	}
	for i, d := range delays {
		win := 50 * time.Millisecond << i
		if d < win/2 || d > win {
			t.Fatalf("backoff %d = %v, want in [%v, %v]", i, d, win/2, win)
		}
	}
}

// TestEngineRetryBudgetExhausted: a source that stays down surfaces the
// last real error after 1+Max attempts.
func TestEngineRetryBudgetExhausted(t *testing.T) {
	down := &seqSource{name: "down", rel: relalg.NewRelation("a"), errs: []error{
		&wrapper.StatusError{URL: "u", Code: 503},
		&wrapper.StatusError{URL: "u", Code: 503},
		&wrapper.StatusError{URL: "u", Code: 503},
	}}
	eng := NewEngine()
	eng.Breakers = nil
	eng.Retry = RetryPolicy{Max: 2, sleep: instantSleep(nil)}
	_, err := eng.Run(context.Background(), relalg.NewScan(down))
	var st *wrapper.StatusError
	if !errors.As(err, &st) || st.Code != 503 {
		t.Fatalf("err = %v, want the 503", err)
	}
	if n := down.fetches.Load(); n != 3 {
		t.Fatalf("fetches = %d, want 3", n)
	}
}

// TestEngineCancelDuringBackoff: canceling the caller's context while
// the retry ladder sleeps must abort the wait immediately — well under
// the configured backoff — and surface an error that classifies as a
// cancellation, not as the prior attempt's network/5xx failure.
func TestEngineCancelDuringBackoff(t *testing.T) {
	down := &seqSource{name: "down", rel: relalg.NewRelation("a"), errs: []error{
		&wrapper.StatusError{URL: "u", Code: 503},
		&wrapper.StatusError{URL: "u", Code: 503},
	}}
	eng := NewEngine()
	eng.Breakers = nil
	// Real sleep (no instantSleep): a 30s base backoff that only a
	// prompt ctx abort can get us out of within the test timeout.
	eng.Retry = RetryPolicy{Max: 2, BaseDelay: 30 * time.Second, MaxDelay: time.Minute}

	ctx, cancel := context.WithCancel(context.Background())
	timer := time.AfterFunc(20*time.Millisecond, cancel)
	defer timer.Stop()
	defer cancel()

	start := time.Now()
	_, err := eng.Run(ctx, relalg.NewScan(down))
	elapsed := time.Since(start)

	if elapsed > 5*time.Second {
		t.Fatalf("cancel mid-backoff took %v, want well under the 30s backoff", elapsed)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled in the chain", err)
	}
	if got := Classify(err); got != ClassCanceled {
		t.Fatalf("Classify(%v) = %q, want %q", err, got, ClassCanceled)
	}
	if n := down.fetches.Load(); n != 1 {
		t.Fatalf("fetches = %d, want 1 (canceled before the retry fired)", n)
	}
}

// TestEngineTerminalErrorsNotRetried: 4xx, payload-cap and schema
// failures fail on the first attempt — retrying cannot fix the request.
func TestEngineTerminalErrorsNotRetried(t *testing.T) {
	for _, tc := range []struct {
		name string
		err  error
	}{
		{"http 404", &wrapper.StatusError{URL: "u", Code: 404}},
		{"payload cap", wrapper.ErrPayloadTooLarge},
		{"opaque", errors.New("boom")},
	} {
		src := &seqSource{name: "t", rel: relalg.NewRelation("a"), errs: []error{tc.err, tc.err, tc.err}}
		eng := NewEngine()
		eng.Retry = RetryPolicy{Max: 2, sleep: instantSleep(nil)}
		_, err := eng.Run(context.Background(), relalg.NewScan(src))
		if !errors.Is(err, tc.err) {
			t.Fatalf("%s: err = %v, want %v", tc.name, err, tc.err)
		}
		if n := src.fetches.Load(); n != 1 {
			t.Fatalf("%s: fetches = %d, want 1 (terminal)", tc.name, n)
		}
	}
}
