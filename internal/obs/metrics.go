// Package obs is the dependency-free observability layer: a Prometheus
// text-format metrics registry (counters, gauges, histograms with
// bounded label cardinality), a per-query Trace carried through
// context, and a structured slow-query log.
//
// The registry is write-optimized for instrumentation sites: resolving
// a labeled series (With) takes one mutex-guarded map lookup and is
// meant to be hoisted out of hot loops; updating a resolved series is
// a single atomic CAS. Rendering (WritePrometheus) walks everything
// under the registry lock, which is fine at scrape frequency.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DefaultMaxSeries bounds the number of label combinations one family
// will intern. Past the cap, new combinations collapse into a single
// reserved series whose every label value is "_overflow", so an
// unbounded label (a user-supplied source name, say) cannot grow the
// scrape without bound.
const DefaultMaxSeries = 256

// overflowValue is the label value of the cardinality-cap sink series.
const overflowValue = "_overflow"

// DefBuckets are the default latency buckets (seconds), spanning
// sub-millisecond index probes to multi-second federated scatters.
var DefBuckets = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// Default is the process-wide registry served at GET /metrics.
// Instrumented packages register their families here at init.
var Default = NewRegistry()

type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
)

func (k kind) promType() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	default:
		return "histogram"
	}
}

// Registry holds metric families keyed by name. Registration panics on
// an invalid or duplicate name: both are programming errors, and
// catching them at init (rather than serving a corrupt scrape) is what
// tools/metricslint runs the binary for.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry. Tests use private registries
// so golden scrapes are not polluted by process-global counters.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

type family struct {
	name    string
	help    string
	kind    kind
	labels  []string
	buckets []float64      // histogram upper bounds, +Inf implicit
	fn      func() float64 // kindCounterFunc / kindGaugeFunc

	mu       sync.Mutex
	series   map[string]*series
	order    []*series
	max      int
	overflow *series
}

// series is one label combination's values. Counter/gauge values live
// in bits as math.Float64bits; histograms keep per-bucket (not
// cumulative) counts plus a bits-encoded sum.
type series struct {
	lvs     []string
	bits    atomic.Uint64
	bcounts []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

func addFloat(bits *atomic.Uint64, d float64) {
	for {
		o := bits.Load()
		n := math.Float64bits(math.Float64frombits(o) + d)
		if bits.CompareAndSwap(o, n) {
			return
		}
	}
}

var (
	nameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

func (r *Registry) register(name, help string, k kind, labels []string, buckets []float64, fn func() float64) *family {
	if !nameRe.MatchString(name) {
		panic("obs: invalid metric name " + strconv.Quote(name))
	}
	for _, l := range labels {
		if !labelRe.MatchString(l) || strings.HasPrefix(l, "__") {
			panic("obs: invalid label name " + strconv.Quote(l) + " on " + name)
		}
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic("obs: histogram buckets not strictly increasing on " + name)
		}
	}
	f := &family{
		name: name, help: help, kind: k, labels: labels,
		buckets: buckets, fn: fn,
		series: make(map[string]*series), max: DefaultMaxSeries,
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[name]; dup {
		panic("obs: metric registered twice: " + name)
	}
	r.families[name] = f
	return f
}

func (f *family) with(lvs []string) *series {
	if len(lvs) != len(f.labels) {
		panic(fmt.Sprintf("obs: %s wants %d label values, got %d", f.name, len(f.labels), len(lvs)))
	}
	key := strings.Join(lvs, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	if len(f.series) >= f.max {
		if f.overflow == nil {
			ovs := make([]string, len(f.labels))
			for i := range ovs {
				ovs[i] = overflowValue
			}
			f.overflow = f.newSeries(ovs)
			f.order = append(f.order, f.overflow)
		}
		return f.overflow
	}
	s := f.newSeries(append([]string(nil), lvs...))
	f.series[key] = s
	f.order = append(f.order, s)
	return s
}

func (f *family) newSeries(lvs []string) *series {
	s := &series{lvs: lvs}
	if f.kind == kindHistogram {
		s.bcounts = make([]atomic.Uint64, len(f.buckets))
	}
	return s
}

// Counter is a monotonically increasing series.
type Counter struct{ s *series }

func (c *Counter) Inc()          { addFloat(&c.s.bits, 1) }
func (c *Counter) Add(d float64) { addFloat(&c.s.bits, d) }

// Value returns the current count. Intended for tests.
func (c *Counter) Value() float64 { return math.Float64frombits(c.s.bits.Load()) }

// Gauge is a series that can go up and down.
type Gauge struct{ s *series }

func (g *Gauge) Set(v float64)  { g.s.bits.Store(math.Float64bits(v)) }
func (g *Gauge) Add(d float64)  { addFloat(&g.s.bits, d) }
func (g *Gauge) Inc()           { g.Add(1) }
func (g *Gauge) Dec()           { g.Add(-1) }
func (g *Gauge) Value() float64 { return math.Float64frombits(g.s.bits.Load()) }

// Histogram accumulates observations into fixed buckets.
type Histogram struct {
	f *family
	s *series
}

func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.f.buckets, v)
	if i < len(h.s.bcounts) {
		h.s.bcounts[i].Add(1)
	}
	h.s.count.Add(1)
	addFloat(&h.s.sumBits, v)
}

// Count returns the total number of observations. Intended for tests.
func (h *Histogram) Count() uint64 { return h.s.count.Load() }

// CounterVec / GaugeVec / HistogramVec are labeled families; With
// interns one label combination and returns its series.
type CounterVec struct{ f *family }

func (v *CounterVec) With(lvs ...string) *Counter { return &Counter{v.f.with(lvs)} }

type GaugeVec struct{ f *family }

func (v *GaugeVec) With(lvs ...string) *Gauge { return &Gauge{v.f.with(lvs)} }

type HistogramVec struct{ f *family }

func (v *HistogramVec) With(lvs ...string) *Histogram {
	return &Histogram{f: v.f, s: v.f.with(lvs)}
}

// NewCounter registers an unlabeled counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	f := r.register(name, help, kindCounter, nil, nil, nil)
	return &Counter{f.with(nil)}
}

// NewCounterVec registers a labeled counter family.
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.register(name, help, kindCounter, labels, nil, nil)}
}

// NewGauge registers an unlabeled gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	f := r.register(name, help, kindGauge, nil, nil, nil)
	return &Gauge{f.with(nil)}
}

// NewGaugeVec registers a labeled gauge family.
func (r *Registry) NewGaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, kindGauge, labels, nil, nil)}
}

// NewHistogram registers an unlabeled histogram with the given upper
// bounds (+Inf is implicit). Pass DefBuckets for latencies.
func (r *Registry) NewHistogram(name, help string, buckets []float64) *Histogram {
	f := r.register(name, help, kindHistogram, nil, buckets, nil)
	return &Histogram{f: f, s: f.with(nil)}
}

// NewHistogramVec registers a labeled histogram family.
func (r *Registry) NewHistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r.register(name, help, kindHistogram, labels, buckets, nil)}
}

// CounterFunc registers a counter whose value is read at scrape time.
// This is the expvar migration shim: existing expvar.Int counters stay
// the source of truth and are mirrored into the scrape through a
// closure, so legacy /debug/vars consumers and tests keep working.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(name, help, kindCounterFunc, nil, nil, fn)
}

// GaugeFunc registers a gauge whose value is read at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, kindGaugeFunc, nil, nil, fn)
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

// labelString renders {a="x",b="y"} for the series, folding in an
// extra le pair for histogram buckets; "" when there are no pairs.
func labelString(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(labelEscaper.Replace(values[i]))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(extraValue)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus renders every family in text exposition format
// (version 0.0.4), families and series in deterministic sorted order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	fams := make(map[string]*family, len(r.families))
	for n, f := range r.families {
		names = append(names, n)
		fams[n] = f
	}
	r.mu.Unlock()
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		f := fams[n]
		b.Reset()
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", f.name, helpEscaper.Replace(f.help), f.name, f.kind.promType())
		switch f.kind {
		case kindCounterFunc, kindGaugeFunc:
			fmt.Fprintf(&b, "%s %s\n", f.name, formatFloat(f.fn()))
		default:
			f.mu.Lock()
			order := append([]*series(nil), f.order...)
			f.mu.Unlock()
			sort.Slice(order, func(i, j int) bool {
				return strings.Join(order[i].lvs, "\x00") < strings.Join(order[j].lvs, "\x00")
			})
			for _, s := range order {
				if f.kind == kindHistogram {
					cum := uint64(0)
					for i := range f.buckets {
						cum += s.bcounts[i].Load()
						fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name,
							labelString(f.labels, s.lvs, "le", formatFloat(f.buckets[i])), cum)
					}
					fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name,
						labelString(f.labels, s.lvs, "le", "+Inf"), s.count.Load())
					fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, labelString(f.labels, s.lvs, "", ""),
						formatFloat(math.Float64frombits(s.sumBits.Load())))
					fmt.Fprintf(&b, "%s_count%s %d\n", f.name, labelString(f.labels, s.lvs, "", ""), s.count.Load())
				} else {
					fmt.Fprintf(&b, "%s%s %s\n", f.name, labelString(f.labels, s.lvs, "", ""),
						formatFloat(math.Float64frombits(s.bits.Load())))
				}
			}
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// Handler serves the registry in Prometheus text format.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// Lint checks every registered family against the repo's Prometheus
// naming conventions and returns one message per violation. Duplicate
// registration is not checked here because register panics on it —
// running the importing binary (tools/metricslint) is the check.
func (r *Registry) Lint() []string {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	var out []string
	for _, f := range fams {
		bad := func(msg string) { out = append(out, f.name+": "+msg) }
		if !strings.HasPrefix(f.name, "mdm_") {
			bad(`missing "mdm_" namespace prefix`)
		}
		if strings.ToLower(f.name) != f.name {
			bad("name contains uppercase letters")
		}
		isCounter := f.kind == kindCounter || f.kind == kindCounterFunc
		if isCounter && !strings.HasSuffix(f.name, "_total") {
			bad(`counter must end in "_total"`)
		}
		if !isCounter && strings.HasSuffix(f.name, "_total") {
			bad(`only counters may end in "_total"`)
		}
		if f.kind == kindHistogram {
			unit := false
			for _, suf := range []string{"_seconds", "_bytes", "_rows", "_sources"} {
				if strings.HasSuffix(f.name, suf) {
					unit = true
					break
				}
			}
			if !unit {
				bad(`histogram must carry a base-unit suffix (_seconds, _bytes, _rows or _sources)`)
			}
		}
		if f.help == "" {
			bad("missing help text")
		}
		for _, l := range f.labels {
			if strings.ToLower(l) != l {
				bad("label " + l + " contains uppercase letters")
			}
			if l == "le" || l == "quantile" {
				bad("label " + l + " is reserved")
			}
		}
	}
	return out
}
