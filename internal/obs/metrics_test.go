package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentUpdates hammers one counter, gauge, and histogram from
// many goroutines; run under -race this is the data-race check, and
// the final values pin that no CAS update is lost.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("mdm_test_ops_total", "ops")
	g := r.NewGauge("mdm_test_inflight", "inflight")
	h := r.NewHistogram("mdm_test_latency_seconds", "latency", []float64{0.01, 0.1, 1})
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Inc()
				g.Dec()
				h.Observe(float64(i%3) * 0.05)
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Errorf("counter = %v, want %d", got, workers*per)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %v, want 0", got)
	}
	if got := h.Count(); got != workers*per {
		t.Errorf("histogram count = %d, want %d", got, workers*per)
	}
}

func TestCardinalityCap(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("mdm_test_sources_total", "per source", "source")
	v.f.max = 4
	for i := 0; i < 10; i++ {
		v.With(string(rune('a' + i))).Inc()
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `mdm_test_sources_total{source="_overflow"} 6`) {
		t.Errorf("overflow series missing or wrong:\n%s", out)
	}
	if strings.Contains(out, `source="e"`) {
		t.Errorf("series beyond the cap was interned:\n%s", out)
	}
	// The overflow sink is shared: a repeat lookup of a capped-out
	// combination lands on the same series.
	v.With("zzz").Add(2)
	if got := v.With("yyy").Value(); got != 8 {
		t.Errorf("overflow series = %v, want 8", got)
	}
}

// TestWritePrometheusGolden pins the exact text exposition output for
// one family of each kind.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounterVec("mdm_g_requests_total", "requests", "endpoint", "class")
	c.With("/api/sparql", "2xx").Add(3)
	c.With("/api/query", "5xx").Inc()
	g := r.NewGauge("mdm_g_inflight", "in-flight requests")
	g.Set(2)
	h := r.NewHistogram("mdm_g_latency_seconds", "latency", []float64{0.1, 0.5})
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(0.3)
	h.Observe(7)
	r.CounterFunc("mdm_g_shim_total", `legacy expvar "mirror"`, func() float64 { return 42 })
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP mdm_g_inflight in-flight requests
# TYPE mdm_g_inflight gauge
mdm_g_inflight 2
# HELP mdm_g_latency_seconds latency
# TYPE mdm_g_latency_seconds histogram
mdm_g_latency_seconds_bucket{le="0.1"} 2
mdm_g_latency_seconds_bucket{le="0.5"} 3
mdm_g_latency_seconds_bucket{le="+Inf"} 4
mdm_g_latency_seconds_sum 7.4
mdm_g_latency_seconds_count 4
# HELP mdm_g_requests_total requests
# TYPE mdm_g_requests_total counter
mdm_g_requests_total{endpoint="/api/query",class="5xx"} 1
mdm_g_requests_total{endpoint="/api/sparql",class="2xx"} 3
# HELP mdm_g_shim_total legacy expvar "mirror"
# TYPE mdm_g_shim_total counter
mdm_g_shim_total 42
`
	if b.String() != want {
		t.Errorf("golden mismatch:\n got:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("mdm_esc_total", "escapes", "src")
	v.With("a\"b\\c\nd").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if want := `mdm_esc_total{src="a\"b\\c\nd"} 1`; !strings.Contains(b.String(), want) {
		t.Errorf("escaped series missing, got:\n%s", b.String())
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("mdm_edge_seconds", "edges", []float64{1, 2})
	h.Observe(1) // le="1" is inclusive
	h.Observe(2)
	h.Observe(math.Inf(1))
	var b strings.Builder
	r.WritePrometheus(&b)
	for _, want := range []string{
		`mdm_edge_seconds_bucket{le="1"} 1`,
		`mdm_edge_seconds_bucket{le="2"} 2`,
		`mdm_edge_seconds_bucket{le="+Inf"} 3`,
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("missing %q in:\n%s", want, b.String())
		}
	}
}

func TestRegisterPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.NewCounter("mdm_dup_total", "x")
	mustPanic("duplicate", func() { r.NewCounter("mdm_dup_total", "x") })
	mustPanic("bad name", func() { r.NewCounter("mdm bad", "x") })
	mustPanic("bad label", func() { r.NewCounterVec("mdm_l_total", "x", "0bad") })
	mustPanic("reserved label prefix", func() { r.NewCounterVec("mdm_l2_total", "x", "__name") })
	mustPanic("bad buckets", func() { r.NewHistogram("mdm_b_seconds", "x", []float64{1, 1}) })
	mustPanic("label arity", func() {
		v := r.NewCounterVec("mdm_arity_total", "x", "a", "b")
		v.With("only-one")
	})
}

func TestLint(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("bad_prefix_total", "x")           // missing mdm_
	r.NewCounter("mdm_noSuffix", "x")               // counter without _total + uppercase
	r.NewGauge("mdm_gauge_total", "x")              // gauge with _total
	r.NewHistogram("mdm_hist", "x", []float64{1})   // histogram without unit
	r.NewCounterVec("mdm_ok_total", "", "le")       // reserved label + empty help
	r.NewHistogram("mdm_fine_seconds", "fine", nil) // clean
	got := r.Lint()
	wantSubstrings := []string{
		`bad_prefix_total: missing "mdm_" namespace prefix`,
		`mdm_noSuffix: counter must end in "_total"`,
		`mdm_noSuffix: name contains uppercase letters`,
		`mdm_gauge_total: only counters may end in "_total"`,
		`mdm_hist: histogram must carry a base-unit suffix`,
		`mdm_ok_total: label le is reserved`,
		`mdm_ok_total: missing help text`,
	}
	joined := strings.Join(got, "\n")
	for _, w := range wantSubstrings {
		if !strings.Contains(joined, w) {
			t.Errorf("lint missing %q in:\n%s", w, joined)
		}
	}
	for _, v := range got {
		if strings.HasPrefix(v, "mdm_fine_seconds") {
			t.Errorf("clean metric flagged: %s", v)
		}
	}
}

// TestDefaultRegistryLint keeps the process-global registry clean: any
// package this test binary links that registers a nonconforming name
// fails here as well as in tools/metricslint.
func TestDefaultRegistryLint(t *testing.T) {
	if v := Default.Lint(); len(v) > 0 {
		t.Errorf("default registry lint violations:\n%s", strings.Join(v, "\n"))
	}
}
