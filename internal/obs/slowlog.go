package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// SlowEntry is one slow-query log record, written as a single JSON
// line. The query text itself is never logged — only its hash — so the
// log can be shipped without leaking query contents.
type SlowEntry struct {
	Time       string             `json:"time"`
	Endpoint   string             `json:"endpoint"`
	QueryHash  string             `json:"query_hash,omitempty"`
	DurationMS float64            `json:"duration_ms"`
	Status     int                `json:"status,omitempty"`
	StagesMS   map[string]float64 `json:"stages_ms,omitempty"`
	Plan       string             `json:"plan,omitempty"`
	Rows       int64              `json:"rows"`
	Partial    bool               `json:"partial,omitempty"`
	Missing    []MissingSource    `json:"missing,omitempty"`
}

// MissingSource is one federated source that failed within a
// partial-results query, with its error classification.
type MissingSource struct {
	Source string `json:"source"`
	Class  string `json:"class"`
}

// SlowLog writes one JSON line per query slower than Threshold. When
// backed by a file it rotates by size: path → path.1 → path.2, keeping
// Keep generations. A nil *SlowLog is inert.
type SlowLog struct {
	Threshold time.Duration
	MaxBytes  int64 // rotation trigger; 0 means 8 MiB
	Keep      int   // rotated generations kept; 0 means 2

	mu   sync.Mutex
	w    io.Writer // non-file sink (tests, stderr); no rotation
	path string
	f    *os.File
	size int64
}

// NewSlowLog opens (appending) a file-backed slow-query log.
func NewSlowLog(path string, threshold time.Duration) (*SlowLog, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("slowlog: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("slowlog: %w", err)
	}
	return &SlowLog{Threshold: threshold, path: path, f: f, size: st.Size()}, nil
}

// NewSlowLogWriter returns a slow log writing to w without rotation.
func NewSlowLogWriter(w io.Writer, threshold time.Duration) *SlowLog {
	return &SlowLog{Threshold: threshold, w: w}
}

// Enabled reports whether a query of duration d should be logged.
func (l *SlowLog) Enabled(d time.Duration) bool {
	return l != nil && d >= l.Threshold
}

// Record writes one entry unconditionally (the threshold check is
// Enabled, at the call site, so callers skip building the entry for
// fast queries). Stamps Time if unset.
func (l *SlowLog) Record(e SlowEntry) error {
	if l == nil {
		return nil
	}
	if e.Time == "" {
		e.Time = time.Now().UTC().Format(time.RFC3339Nano)
	}
	line, err := json.Marshal(e)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		if l.w == nil {
			return nil
		}
		_, err = l.w.Write(line)
		return err
	}
	maxBytes := l.MaxBytes
	if maxBytes == 0 {
		maxBytes = 8 << 20
	}
	if l.size+int64(len(line)) > maxBytes && l.size > 0 {
		if err := l.rotate(); err != nil {
			return err
		}
	}
	n, err := l.f.Write(line)
	l.size += int64(n)
	return err
}

// rotate shifts path.(keep-1) … path.1, path → path.1 and reopens a
// fresh file. Caller holds the mutex.
func (l *SlowLog) rotate() error {
	keep := l.Keep
	if keep == 0 {
		keep = 2
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	os.Remove(fmt.Sprintf("%s.%d", l.path, keep))
	for i := keep - 1; i >= 1; i-- {
		os.Rename(fmt.Sprintf("%s.%d", l.path, i), fmt.Sprintf("%s.%d", l.path, i+1))
	}
	if err := os.Rename(l.path, l.path+".1"); err != nil && !os.IsNotExist(err) {
		return err
	}
	f, err := os.OpenFile(l.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		l.f = nil
		return err
	}
	l.f, l.size = f, 0
	return nil
}

// Close closes the underlying file, if any.
func (l *SlowLog) Close() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f != nil {
		err := l.f.Close()
		l.f = nil
		return err
	}
	return nil
}
