package obs

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestSlowLogThreshold(t *testing.T) {
	l := NewSlowLogWriter(nil, 250*time.Millisecond)
	if l.Enabled(100 * time.Millisecond) {
		t.Errorf("fast query marked slow")
	}
	if !l.Enabled(250 * time.Millisecond) {
		t.Errorf("threshold-equal query not marked slow")
	}
	var nilLog *SlowLog
	if nilLog.Enabled(time.Hour) {
		t.Errorf("nil log enabled")
	}
	if err := nilLog.Record(SlowEntry{}); err != nil {
		t.Errorf("nil log Record: %v", err)
	}
}

func TestSlowLogWritesOneJSONLine(t *testing.T) {
	var b strings.Builder
	l := NewSlowLogWriter(&b, 0)
	err := l.Record(SlowEntry{
		Endpoint:   "/api/sparql",
		QueryHash:  "abcd",
		DurationMS: 301.5,
		StagesMS:   map[string]float64{"parse": 1, "execute": 300},
		Plan:       "hash-join(a,b)",
		Rows:       42,
		Partial:    true,
		Missing:    []MissingSource{{Source: "teams", Class: "timeout"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Count(out, "\n") != 1 || !strings.HasSuffix(out, "\n") {
		t.Fatalf("want exactly one newline-terminated line, got %q", out)
	}
	var e SlowEntry
	if err := json.Unmarshal([]byte(out), &e); err != nil {
		t.Fatalf("line is not JSON: %v", err)
	}
	if e.Time == "" {
		t.Errorf("time not stamped")
	}
	if e.Missing[0].Class != "timeout" || e.Rows != 42 || !e.Partial {
		t.Errorf("entry round-trip wrong: %+v", e)
	}
}

func TestSlowLogRotation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "slow.log")
	l, err := NewSlowLog(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.MaxBytes = 256
	l.Keep = 2
	for i := 0; i < 40; i++ {
		if err := l.Record(SlowEntry{Endpoint: "/api/sparql", QueryHash: "deadbeefdeadbeef", DurationMS: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range []string{path, path + ".1", path + ".2"} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if st.Size() > 256+512 {
			t.Errorf("%s grew past rotation bound: %d bytes", p, st.Size())
		}
	}
	if _, err := os.Stat(path + ".3"); !os.IsNotExist(err) {
		t.Errorf("generation beyond Keep exists")
	}
	// Every surviving line is intact JSON.
	f, err := os.Open(path + ".1")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var e SlowEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("rotated line corrupt: %v: %q", err, sc.Text())
		}
	}
}

func TestSlowLogAppendsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "slow.log")
	l, err := NewSlowLog(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	l.Record(SlowEntry{Endpoint: "a"})
	l.Close()
	l2, err := NewSlowLog(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	l2.Record(SlowEntry{Endpoint: "b"})
	l2.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(string(data), "\n"); got != 2 {
		t.Errorf("lines after reopen = %d, want 2", got)
	}
}
