package obs

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"sync"
	"time"
)

// Trace is one query's execution record: ordered coarse stages
// (parse/plan/execute), per-operator spans, and per-source federation
// spans. A Trace travels in the request context (WithTrace) and every
// layer that finds one attaches what it knows; nil receivers are safe
// on every method so call sites need no guards.
//
// Concurrency: all mutating methods take the trace mutex, because the
// federation scatter records source spans from worker goroutines. The
// fields of a *Span, however, are owned by the single goroutine
// driving the cursor pipeline (spans are only mutated from traceIter
// wrappers on the drain goroutine) and are read by Report after the
// drain completes.
type Trace struct {
	// Detail enables per-operator span wrapping in the SPARQL engine.
	// Off (the slow-query-log default) a Trace costs one nil-check at
	// operator construction; on (EXPLAIN) every operator is wrapped.
	Detail bool

	mu      sync.Mutex
	start   time.Time
	plan    string
	attrs   map[string]string
	stages  []Stage
	ops     []*Span
	keyed   map[any]*Span
	sources []SourceSpan
}

// Stage is one coarse phase of the query lifecycle.
type Stage struct {
	Name string
	Dur  time.Duration
}

// Span is one operator's aggregate record. Durations are inclusive of
// children (EXPLAIN ANALYZE semantics): an operator's time includes
// the time spent pulling from its input, so the outermost operator's
// time approximates the whole drain. Sub-chains that are instantiated
// per input row (OPTIONAL/UNION/GRAPH bodies) share one memoized Span,
// with Calls counting next() invocations across all instantiations.
type Span struct {
	Name     string
	Strategy string
	Calls    int64
	RowsOut  int64
	Dur      time.Duration
	in       *Span // span of the operator feeding this one, if known
}

// SetInput links src as this span's row source so Report can derive
// rows_in without the engine threading extra state.
func (s *Span) SetInput(src *Span) {
	if s != nil {
		s.in = src
	}
}

// SourceSpan is one federated source fetch within the scatter.
type SourceSpan struct {
	Source  string
	Rows    int
	Dur     time.Duration
	Outcome string // ok | stale | missing:<class>
}

// NewTrace starts a trace clocked from now.
func NewTrace() *Trace {
	return &Trace{start: time.Now(), keyed: make(map[any]*Span), attrs: make(map[string]string)}
}

type traceKey struct{}

// WithTrace attaches t to the context.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// FromContext returns the context's trace, or nil.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// StageDur records one completed stage.
func (t *Trace) StageDur(name string, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.stages = append(t.stages, Stage{Name: name, Dur: d})
	t.mu.Unlock()
}

// StartStage returns a closure that records the stage's elapsed time
// when called: defer tr.StartStage("parse")().
func (t *Trace) StartStage(name string) func() {
	if t == nil {
		return func() {}
	}
	t0 := time.Now()
	return func() { t.StageDur(name, time.Since(t0)) }
}

// Operator returns the span memoized under key, creating it on first
// use. Keys are plan-node pointers, so the per-row re-instantiation of
// an OPTIONAL body aggregates into one span instead of one per row.
func (t *Trace) Operator(key any, name, strategy string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if s, ok := t.keyed[key]; ok {
		return s
	}
	s := &Span{Name: name, Strategy: strategy}
	t.keyed[key] = s
	t.ops = append(t.ops, s)
	return s
}

// AddSource records one federated source fetch.
func (t *Trace) AddSource(s SourceSpan) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.sources = append(t.sources, s)
	t.mu.Unlock()
}

// SetPlan records the planner's one-line plan summary.
func (t *Trace) SetPlan(p string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.plan = p
	t.mu.Unlock()
}

// SetAttr records a freeform key/value annotation (plan_cache: hit,
// partial: true, ...).
func (t *Trace) SetAttr(k, v string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.attrs[k] = v
	t.mu.Unlock()
}

// Plan returns the recorded plan summary.
func (t *Trace) Plan() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.plan
}

// Stages returns a name→milliseconds map of the recorded stages.
func (t *Trace) Stages() map[string]float64 {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	m := make(map[string]float64, len(t.stages))
	for _, s := range t.stages {
		m[s.Name] += ms(s.Dur)
	}
	return m
}

// Report is the JSON shape served by ?explain=1, mdmctl explain, and
// System.ExplainSPARQL. See docs/OBSERVABILITY.md for the schema.
type Report struct {
	DurationMS float64           `json:"duration_ms"`
	Plan       string            `json:"plan,omitempty"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Stages     []StageReport     `json:"stages"`
	Operators  []OpReport        `json:"operators,omitempty"`
	Sources    []SourceReport    `json:"sources,omitempty"`
}

type StageReport struct {
	Name   string  `json:"name"`
	TimeMS float64 `json:"time_ms"`
}

type OpReport struct {
	Op       string  `json:"op"`
	Strategy string  `json:"strategy,omitempty"`
	Calls    int64   `json:"calls"`
	RowsIn   int64   `json:"rows_in"`
	RowsOut  int64   `json:"rows_out"`
	TimeMS   float64 `json:"time_ms"` // inclusive of input operators
}

type SourceReport struct {
	Source  string  `json:"source"`
	Rows    int     `json:"rows"`
	TimeMS  float64 `json:"time_ms"`
	Outcome string  `json:"outcome"`
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// Report snapshots the trace. Safe to call once the drain goroutine is
// done; duration is measured from NewTrace to now.
func (t *Trace) Report() *Report {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	r := &Report{DurationMS: ms(time.Since(t.start))}
	r.Plan = t.plan
	if len(t.attrs) > 0 {
		r.Attrs = make(map[string]string, len(t.attrs))
		for k, v := range t.attrs {
			r.Attrs[k] = v
		}
	}
	r.Stages = make([]StageReport, 0, len(t.stages))
	for _, s := range t.stages {
		r.Stages = append(r.Stages, StageReport{Name: s.Name, TimeMS: ms(s.Dur)})
	}
	for _, op := range t.ops {
		or := OpReport{
			Op: op.Name, Strategy: op.Strategy, Calls: op.Calls,
			RowsOut: op.RowsOut, TimeMS: ms(op.Dur),
		}
		if op.in != nil {
			or.RowsIn = op.in.RowsOut
		}
		r.Operators = append(r.Operators, or)
	}
	for _, s := range t.sources {
		r.Sources = append(r.Sources, SourceReport{Source: s.Source, Rows: s.Rows, TimeMS: ms(s.Dur), Outcome: s.Outcome})
	}
	return r
}

// QueryHash returns the truncated SHA-256 of a query text — the stable
// identifier slow-query log lines carry instead of the raw query.
func QueryHash(q string) string {
	sum := sha256.Sum256([]byte(q))
	return hex.EncodeToString(sum[:8])
}
