package obs

import (
	"context"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestTraceContextRoundTrip(t *testing.T) {
	if got := FromContext(context.Background()); got != nil {
		t.Fatalf("empty context yielded a trace: %v", got)
	}
	tr := NewTrace()
	ctx := WithTrace(context.Background(), tr)
	if got := FromContext(ctx); got != tr {
		t.Fatalf("FromContext = %v, want %v", got, tr)
	}
}

func TestNilTraceIsInert(t *testing.T) {
	var tr *Trace
	tr.StageDur("parse", time.Millisecond)
	tr.StartStage("plan")()
	tr.SetPlan("x")
	tr.SetAttr("k", "v")
	tr.AddSource(SourceSpan{Source: "s"})
	if sp := tr.Operator("k", "scan", ""); sp != nil {
		t.Errorf("nil trace returned a span")
	}
	sp := (*Span)(nil)
	sp.SetInput(nil)
	if r := tr.Report(); r != nil {
		t.Errorf("nil trace produced a report")
	}
	if tr.Stages() != nil || tr.Plan() != "" {
		t.Errorf("nil trace leaked state")
	}
}

func TestOperatorMemoization(t *testing.T) {
	tr := NewTrace()
	type node struct{ id int }
	k := &node{1}
	a := tr.Operator(k, "hash-join", "hash")
	b := tr.Operator(k, "hash-join", "hash")
	if a != b {
		t.Fatalf("same key produced distinct spans")
	}
	other := tr.Operator(&node{2}, "scan", "")
	if other == a {
		t.Fatalf("distinct keys shared a span")
	}
	a.Calls = 7
	a.RowsOut = 40
	other.RowsOut = 11
	a.SetInput(other)
	rep := tr.Report()
	if len(rep.Operators) != 2 {
		t.Fatalf("operators = %d, want 2", len(rep.Operators))
	}
	if rep.Operators[0].Op != "hash-join" || rep.Operators[0].RowsIn != 11 || rep.Operators[0].RowsOut != 40 {
		t.Errorf("operator report wrong: %+v", rep.Operators[0])
	}
}

func TestReportShape(t *testing.T) {
	tr := NewTrace()
	tr.StageDur("parse", 2*time.Millisecond)
	tr.StageDur("plan", time.Millisecond)
	tr.SetPlan("hash-join(t1,t2)")
	tr.SetAttr("plan_cache", "miss")
	tr.AddSource(SourceSpan{Source: "players", Rows: 10, Dur: 3 * time.Millisecond, Outcome: "ok"})
	raw, err := json.Marshal(tr.Report())
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"duration_ms", "plan", "attrs", "stages", "sources"} {
		if _, ok := m[k]; !ok {
			t.Errorf("report JSON missing %q: %s", k, raw)
		}
	}
	stages := m["stages"].([]any)
	if len(stages) != 2 {
		t.Fatalf("stages = %d, want 2", len(stages))
	}
	if name := stages[0].(map[string]any)["name"]; name != "parse" {
		t.Errorf("first stage = %v, want parse", name)
	}
	if got := tr.Stages()["parse"]; got != 2 {
		t.Errorf("Stages()[parse] = %v, want 2", got)
	}
}

// TestTraceConcurrentSources mirrors the federation scatter: source
// spans recorded from many goroutines while stages tick on the driver.
func TestTraceConcurrentSources(t *testing.T) {
	tr := NewTrace()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr.AddSource(SourceSpan{Source: "s", Rows: i, Outcome: "ok"})
		}(i)
	}
	tr.StageDur("scatter", time.Millisecond)
	wg.Wait()
	if got := len(tr.Report().Sources); got != 16 {
		t.Errorf("sources = %d, want 16", got)
	}
}

func TestQueryHash(t *testing.T) {
	a, b := QueryHash("SELECT * WHERE { ?s ?p ?o }"), QueryHash("SELECT * WHERE { ?s ?p ?o }")
	if a != b {
		t.Errorf("hash not stable: %s vs %s", a, b)
	}
	if len(a) != 16 {
		t.Errorf("hash length = %d, want 16", len(a))
	}
	if a == QueryHash("ASK { ?s ?p ?o }") {
		t.Errorf("distinct queries collided")
	}
}
