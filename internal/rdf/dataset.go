package rdf

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Dataset is an RDF dataset: one default graph plus any number of named
// graphs, together with a prefix registry. MDM stores the global graph,
// the source graph and one named graph per LAV mapping in a single
// Dataset. Dataset is safe for concurrent use.
//
// All graphs of a dataset share one dictionary (see Dict), so a TermID
// obtained from any of them identifies the same term in all of them.
// SPARQL evaluation relies on this to join ID rows across GRAPH blocks
// without re-encoding. Graph names are interned in the same dictionary
// when the graph is created.
type Dataset struct {
	mu       sync.RWMutex
	dict     *Dict
	def      *Graph
	named    map[Term]*Graph
	prefixes *PrefixMap
	version  atomic.Uint64
}

// NewDataset returns an empty dataset with the common prefixes (rdf,
// rdfs, owl, xsd) preregistered.
func NewDataset() *Dataset {
	dict := NewDict()
	return &Dataset{
		dict:     dict,
		def:      NewGraphWith(dict),
		named:    make(map[Term]*Graph),
		prefixes: NewPrefixMap(),
	}
}

// Dict returns the dataset-wide term dictionary shared by every graph in
// the dataset.
func (d *Dataset) Dict() *Dict { return d.dict }

// Version returns the dataset's structural version: a counter that
// increments whenever the graph SET changes — a named graph is created,
// attached or dropped, or the default graph is replaced. Triple-level
// writes inside an existing graph do not change it.
//
// Consumers that compile dataset state into reusable artifacts (the
// SPARQL plan cache) revalidate against (Version, Dict().Len()): any
// structural change bumps Version, and any newly interned term — the
// only way a previously unknown constant can start matching — grows the
// dictionary.
func (d *Dataset) Version() uint64 { return d.version.Load() }

// Default returns the default graph.
func (d *Dataset) Default() *Graph {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.def
}

// Graph returns the named graph with the given name, creating it if
// absent. A zero name returns the default graph.
func (d *Dataset) Graph(name Term) *Graph {
	if name.IsZero() {
		return d.Default()
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	g, ok := d.named[name]
	if !ok {
		g = NewGraphWith(d.dict)
		d.dict.Intern(name)
		d.named[name] = g
		d.version.Add(1)
	}
	return g
}

// Attach registers g as the named graph name, migrating it into the
// dataset's shared dictionary. A graph already interning in the
// dataset's dictionary is adopted as-is; a standalone graph (built with
// NewGraph, for example by a parser that had no dataset at hand) has its
// triples re-encoded into a fresh shared-dict graph. Attach replaces any
// existing graph under the same name and returns the graph that now
// lives in the dataset.
func (d *Dataset) Attach(name Term, g *Graph) *Graph {
	if g.Dict() != d.dict {
		moved := NewGraphWith(d.dict)
		g.EachMatch(Any, Any, Any, func(t Triple) bool {
			moved.MustAdd(t)
			return true
		})
		g = moved
	}
	if name.IsZero() {
		d.mu.Lock()
		d.def = g
		d.version.Add(1)
		d.mu.Unlock()
		return g
	}
	d.mu.Lock()
	d.dict.Intern(name)
	d.named[name] = g
	d.version.Add(1)
	d.mu.Unlock()
	return g
}

// Lookup returns the named graph if it exists, without creating it.
func (d *Dataset) Lookup(name Term) (*Graph, bool) {
	if name.IsZero() {
		return d.Default(), true
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	g, ok := d.named[name]
	return g, ok
}

// DropGraph removes a named graph entirely, reporting whether it existed.
func (d *Dataset) DropGraph(name Term) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	_, ok := d.named[name]
	if ok {
		delete(d.named, name)
		d.version.Add(1)
	}
	return ok
}

// GraphNames returns the names of all named graphs in sorted order.
func (d *Dataset) GraphNames() []Term {
	d.mu.RLock()
	names := make([]Term, 0, len(d.named))
	for n := range d.named {
		names = append(names, n)
	}
	d.mu.RUnlock()
	sort.Slice(names, func(i, j int) bool { return Compare(names[i], names[j]) < 0 })
	return names
}

// AddQuad inserts a quad into the appropriate graph.
func (d *Dataset) AddQuad(q Quad) (bool, error) {
	return d.Graph(q.Graph).Add(q.Triple)
}

// Quads returns every quad in the dataset (default graph first, then
// named graphs in name order) in deterministic order.
func (d *Dataset) Quads() []Quad {
	out := make([]Quad, 0, d.Len())
	for _, t := range d.Default().Triples() {
		out = append(out, Quad{Triple: t})
	}
	for _, name := range d.GraphNames() {
		g, _ := d.Lookup(name)
		for _, t := range g.Triples() {
			out = append(out, Quad{Triple: t, Graph: name})
		}
	}
	return out
}

// Len returns the total number of quads across all graphs.
func (d *Dataset) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	n := d.def.Len()
	for _, g := range d.named {
		n += g.Len()
	}
	return n
}

// Prefixes returns the dataset's prefix registry.
func (d *Dataset) Prefixes() *PrefixMap { return d.prefixes }

// Clone returns a deep copy of the dataset including prefixes. The
// shared dictionary is cloned once and reused by every cloned graph, so
// the copy preserves both TermIDs and the shared-dict invariant.
func (d *Dataset) Clone() *Dataset {
	out := NewDataset()
	out.prefixes = d.prefixes.Clone()
	out.dict = d.dict.clone()
	out.def = d.Default().cloneWith(out.dict)
	for _, name := range d.GraphNames() {
		g, ok := d.Lookup(name)
		if !ok {
			continue // dropped concurrently between GraphNames and Lookup
		}
		out.named[name] = g.cloneWith(out.dict)
	}
	return out
}

// CompactedClone rebuilds the dataset against a FRESH dictionary that
// contains only terms still referenced by live triples or graph names —
// the dictionary-GC primitive behind tdb's storage compaction. TermIDs
// are NOT preserved: every live term is re-interned in first-seen scan
// order, so consumers keyed on (dataset identity, Version, Dict.Len) —
// the SPARQL plan cache — treat the result as a brand-new dataset.
//
// The prefix registry is SHARED with the receiver, not cloned: when the
// compactor swaps a compacted dataset in for the live one, prefix binds
// racing the swap must not be lost, and prefixes only affect rendering,
// never data, so pinned readers of the old epoch seeing a later bind is
// harmless.
//
// CompactedClone is not a point-in-time snapshot under concurrent
// writers: each graph is scanned under its own read lock, so triples
// added to an already-scanned graph mid-clone are missed. Callers that
// need consistency (the tdb compactor) must quiesce writers for the
// duration — see tdb.Store.Compact.
func (d *Dataset) CompactedClone() *Dataset {
	out := NewDataset()
	out.prefixes = d.prefixes
	oldTerms := d.dict.Snapshot()
	// remap[oldID] = newID, lazily filled; AnyID marks "not yet mapped".
	remap := make([]TermID, len(oldTerms))
	for i := range remap {
		remap[i] = AnyID
	}
	move := func(src, dst *Graph) {
		src.EachMatchIDs(AnyID, AnyID, AnyID, func(s, p, o TermID) bool {
			for _, id := range [3]TermID{s, p, o} {
				if remap[id] == AnyID {
					remap[id] = out.dict.Intern(oldTerms[id])
				}
			}
			dst.AddIDs(remap[s], remap[p], remap[o])
			return true
		})
	}
	move(d.Default(), out.def)
	for _, name := range d.GraphNames() {
		g, ok := d.Lookup(name)
		if !ok {
			continue // dropped concurrently between GraphNames and Lookup
		}
		// Graph creation interns the name and preserves empty graphs, so
		// the compacted dataset has the same graph set (and the same
		// Version-relevant structure) as the original.
		move(g, out.Graph(name))
	}
	return out
}

// PrefixMap maps prefix labels (e.g. "rdfs") to namespace IRIs and back.
// It is safe for concurrent use.
type PrefixMap struct {
	mu      sync.RWMutex
	forward map[string]string // prefix -> namespace
	reverse map[string]string // namespace -> prefix
}

// NewPrefixMap returns a registry preloaded with rdf, rdfs, owl and xsd.
func NewPrefixMap() *PrefixMap {
	pm := &PrefixMap{
		forward: make(map[string]string),
		reverse: make(map[string]string),
	}
	pm.Bind("rdf", "http://www.w3.org/1999/02/22-rdf-syntax-ns#")
	pm.Bind("rdfs", "http://www.w3.org/2000/01/rdf-schema#")
	pm.Bind("owl", "http://www.w3.org/2002/07/owl#")
	pm.Bind("xsd", "http://www.w3.org/2001/XMLSchema#")
	return pm
}

// Bind registers prefix -> namespace, replacing earlier bindings of the
// same prefix.
func (pm *PrefixMap) Bind(prefix, namespace string) {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	if old, ok := pm.forward[prefix]; ok {
		delete(pm.reverse, old)
	}
	pm.forward[prefix] = namespace
	pm.reverse[namespace] = prefix
}

// Expand resolves a CURIE like "rdfs:label" to a full IRI. Strings
// without a known prefix are returned unchanged with ok = false.
func (pm *PrefixMap) Expand(curie string) (string, bool) {
	i := strings.Index(curie, ":")
	if i < 0 {
		return curie, false
	}
	pm.mu.RLock()
	ns, ok := pm.forward[curie[:i]]
	pm.mu.RUnlock()
	if !ok {
		return curie, false
	}
	return ns + curie[i+1:], true
}

// MustExpand resolves a CURIE and panics if the prefix is unknown. Use
// only with compile-time-constant CURIEs.
func (pm *PrefixMap) MustExpand(curie string) string {
	iri, ok := pm.Expand(curie)
	if !ok {
		panic(fmt.Sprintf("rdf: unknown prefix in %q", curie))
	}
	return iri
}

// Compact shortens an IRI to a CURIE when a registered namespace matches,
// otherwise returns the IRI unchanged with ok = false. The longest
// matching namespace wins.
func (pm *PrefixMap) Compact(iri string) (string, bool) {
	pm.mu.RLock()
	defer pm.mu.RUnlock()
	best, bestNS := "", ""
	for ns, prefix := range pm.reverse {
		if strings.HasPrefix(iri, ns) && len(ns) > len(bestNS) {
			bestNS, best = ns, prefix
		}
	}
	if bestNS == "" {
		return iri, false
	}
	local := iri[len(bestNS):]
	if local == "" || strings.ContainsAny(local, "/#") {
		return iri, false
	}
	return best + ":" + local, true
}

// CompactTerm renders a term using CURIEs where possible; literals keep
// their N-Triples form.
func (pm *PrefixMap) CompactTerm(t Term) string {
	if t.Kind == KindIRI {
		if c, ok := pm.Compact(t.Value); ok {
			return c
		}
	}
	return t.String()
}

// Pairs returns all (prefix, namespace) bindings sorted by prefix.
func (pm *PrefixMap) Pairs() [][2]string {
	pm.mu.RLock()
	out := make([][2]string, 0, len(pm.forward))
	for p, ns := range pm.forward {
		out = append(out, [2]string{p, ns})
	}
	pm.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// Clone returns a copy of the registry.
func (pm *PrefixMap) Clone() *PrefixMap {
	pm.mu.RLock()
	defer pm.mu.RUnlock()
	out := &PrefixMap{
		forward: make(map[string]string, len(pm.forward)),
		reverse: make(map[string]string, len(pm.reverse)),
	}
	for k, v := range pm.forward {
		out.forward[k] = v
	}
	for k, v := range pm.reverse {
		out.reverse[k] = v
	}
	return out
}
