package rdf

import (
	"testing"
)

func TestDatasetDefaultAndNamed(t *testing.T) {
	ds := NewDataset()
	ds.Default().MustAdd(T(IRI("s"), IRI("p"), Lit("dflt")))
	g1 := ds.Graph(IRI("http://ex.org/g1"))
	g1.MustAdd(T(IRI("s"), IRI("p"), Lit("named")))

	if ds.Default().Len() != 1 {
		t.Fatalf("default graph len = %d", ds.Default().Len())
	}
	got, ok := ds.Lookup(IRI("http://ex.org/g1"))
	if !ok || got.Len() != 1 {
		t.Fatalf("Lookup named = %v, %v", got, ok)
	}
	if _, ok := ds.Lookup(IRI("http://ex.org/missing")); ok {
		t.Fatal("Lookup should not create graphs")
	}
	// Graph() with zero name returns default.
	if ds.Graph(Term{}) != ds.Default() {
		t.Fatal("Graph(zero) != Default()")
	}
	if ds.Len() != 2 {
		t.Fatalf("dataset Len = %d, want 2", ds.Len())
	}
}

func TestDatasetGraphNamesSorted(t *testing.T) {
	ds := NewDataset()
	ds.Graph(IRI("http://ex.org/b"))
	ds.Graph(IRI("http://ex.org/a"))
	ds.Graph(IRI("http://ex.org/c"))
	names := ds.GraphNames()
	if len(names) != 3 || names[0].Value != "http://ex.org/a" || names[2].Value != "http://ex.org/c" {
		t.Errorf("GraphNames = %v", names)
	}
}

func TestDatasetDropGraph(t *testing.T) {
	ds := NewDataset()
	name := IRI("http://ex.org/g")
	ds.Graph(name).MustAdd(T(IRI("s"), IRI("p"), Lit("v")))
	if !ds.DropGraph(name) {
		t.Fatal("DropGraph = false")
	}
	if _, ok := ds.Lookup(name); ok {
		t.Fatal("graph survived drop")
	}
	if ds.DropGraph(name) {
		t.Fatal("second DropGraph should be false")
	}
}

func TestDatasetQuadsOrderAndAddQuad(t *testing.T) {
	ds := NewDataset()
	if _, err := ds.AddQuad(Q(IRI("s"), IRI("p"), Lit("n"), IRI("g"))); err != nil {
		t.Fatal(err)
	}
	if _, err := ds.AddQuad(Quad{Triple: T(IRI("s"), IRI("p"), Lit("d"))}); err != nil {
		t.Fatal(err)
	}
	qs := ds.Quads()
	if len(qs) != 2 {
		t.Fatalf("Quads len = %d", len(qs))
	}
	if !qs[0].Graph.IsZero() {
		t.Error("default-graph quads should come first")
	}
	if qs[1].Graph != IRI("g") {
		t.Errorf("named quad graph = %v", qs[1].Graph)
	}
}

func TestDatasetClone(t *testing.T) {
	ds := NewDataset()
	ds.Prefixes().Bind("ex", "http://ex.org/")
	ds.Default().MustAdd(T(IRI("s"), IRI("p"), Lit("v")))
	ds.Graph(IRI("g")).MustAdd(T(IRI("s2"), IRI("p"), Lit("v2")))

	c := ds.Clone()
	c.Default().MustAdd(T(IRI("s3"), IRI("p"), Lit("v3")))
	c.Prefixes().Bind("zz", "http://zz.org/")

	if ds.Default().Len() != 1 {
		t.Error("clone mutation leaked into original default graph")
	}
	if _, ok := ds.Prefixes().Expand("zz:a"); ok {
		t.Error("clone prefix leaked into original")
	}
	if _, ok := c.Prefixes().Expand("ex:a"); !ok {
		t.Error("clone lost original prefix")
	}
	g, ok := c.Lookup(IRI("g"))
	if !ok || g.Len() != 1 {
		t.Error("clone lost named graph")
	}
}

func TestPrefixMapExpandCompact(t *testing.T) {
	pm := NewPrefixMap()
	pm.Bind("sc", "http://schema.org/")
	iri, ok := pm.Expand("sc:SportsTeam")
	if !ok || iri != "http://schema.org/SportsTeam" {
		t.Errorf("Expand = %q, %v", iri, ok)
	}
	if _, ok := pm.Expand("nope:x"); ok {
		t.Error("unknown prefix should not expand")
	}
	if _, ok := pm.Expand("noColon"); ok {
		t.Error("string without colon should not expand")
	}
	c, ok := pm.Compact("http://schema.org/SportsTeam")
	if !ok || c != "sc:SportsTeam" {
		t.Errorf("Compact = %q, %v", c, ok)
	}
	if _, ok := pm.Compact("http://unknown.org/x"); ok {
		t.Error("unknown namespace should not compact")
	}
	// Local parts containing separators must not compact.
	if _, ok := pm.Compact("http://schema.org/a/b"); ok {
		t.Error("nested path should not compact")
	}
}

func TestPrefixMapLongestMatchWins(t *testing.T) {
	pm := NewPrefixMap()
	pm.Bind("a", "http://ex.org/")
	pm.Bind("b", "http://ex.org/sub#")
	c, ok := pm.Compact("http://ex.org/sub#x")
	if !ok || c != "b:x" {
		t.Errorf("Compact = %q, want b:x", c)
	}
}

func TestPrefixMapRebindReplaces(t *testing.T) {
	pm := NewPrefixMap()
	pm.Bind("p", "http://one.org/")
	pm.Bind("p", "http://two.org/")
	if iri, _ := pm.Expand("p:x"); iri != "http://two.org/x" {
		t.Errorf("Expand after rebind = %q", iri)
	}
	if _, ok := pm.Compact("http://one.org/x"); ok {
		t.Error("stale reverse binding survived rebind")
	}
}

func TestPrefixMapMustExpandPanics(t *testing.T) {
	pm := NewPrefixMap()
	if got := pm.MustExpand("rdf:type"); got != RDFType {
		t.Errorf("MustExpand = %q", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustExpand should panic for unknown prefix")
		}
	}()
	pm.MustExpand("bogus:x")
}

func TestPrefixMapCompactTerm(t *testing.T) {
	pm := NewPrefixMap()
	pm.Bind("ex", "http://ex.org/")
	if got := pm.CompactTerm(IRI("http://ex.org/a")); got != "ex:a" {
		t.Errorf("CompactTerm IRI = %q", got)
	}
	if got := pm.CompactTerm(Lit("v")); got != `"v"` {
		t.Errorf("CompactTerm literal = %q", got)
	}
	if got := pm.CompactTerm(IRI("http://other.org/a")); got != "<http://other.org/a>" {
		t.Errorf("CompactTerm unknown ns = %q", got)
	}
}

func TestPrefixMapPairsSorted(t *testing.T) {
	pm := NewPrefixMap()
	pairs := pm.Pairs()
	for i := 1; i < len(pairs); i++ {
		if pairs[i-1][0] >= pairs[i][0] {
			t.Errorf("Pairs not sorted: %v", pairs)
		}
	}
}
