package rdf

import (
	"testing"
)

func TestDatasetDefaultAndNamed(t *testing.T) {
	ds := NewDataset()
	ds.Default().MustAdd(T(IRI("s"), IRI("p"), Lit("dflt")))
	g1 := ds.Graph(IRI("http://ex.org/g1"))
	g1.MustAdd(T(IRI("s"), IRI("p"), Lit("named")))

	if ds.Default().Len() != 1 {
		t.Fatalf("default graph len = %d", ds.Default().Len())
	}
	got, ok := ds.Lookup(IRI("http://ex.org/g1"))
	if !ok || got.Len() != 1 {
		t.Fatalf("Lookup named = %v, %v", got, ok)
	}
	if _, ok := ds.Lookup(IRI("http://ex.org/missing")); ok {
		t.Fatal("Lookup should not create graphs")
	}
	// Graph() with zero name returns default.
	if ds.Graph(Term{}) != ds.Default() {
		t.Fatal("Graph(zero) != Default()")
	}
	if ds.Len() != 2 {
		t.Fatalf("dataset Len = %d, want 2", ds.Len())
	}
}

func TestDatasetGraphNamesSorted(t *testing.T) {
	ds := NewDataset()
	ds.Graph(IRI("http://ex.org/b"))
	ds.Graph(IRI("http://ex.org/a"))
	ds.Graph(IRI("http://ex.org/c"))
	names := ds.GraphNames()
	if len(names) != 3 || names[0].Value != "http://ex.org/a" || names[2].Value != "http://ex.org/c" {
		t.Errorf("GraphNames = %v", names)
	}
}

func TestDatasetDropGraph(t *testing.T) {
	ds := NewDataset()
	name := IRI("http://ex.org/g")
	ds.Graph(name).MustAdd(T(IRI("s"), IRI("p"), Lit("v")))
	if !ds.DropGraph(name) {
		t.Fatal("DropGraph = false")
	}
	if _, ok := ds.Lookup(name); ok {
		t.Fatal("graph survived drop")
	}
	if ds.DropGraph(name) {
		t.Fatal("second DropGraph should be false")
	}
}

func TestDatasetQuadsOrderAndAddQuad(t *testing.T) {
	ds := NewDataset()
	if _, err := ds.AddQuad(Q(IRI("s"), IRI("p"), Lit("n"), IRI("g"))); err != nil {
		t.Fatal(err)
	}
	if _, err := ds.AddQuad(Quad{Triple: T(IRI("s"), IRI("p"), Lit("d"))}); err != nil {
		t.Fatal(err)
	}
	qs := ds.Quads()
	if len(qs) != 2 {
		t.Fatalf("Quads len = %d", len(qs))
	}
	if !qs[0].Graph.IsZero() {
		t.Error("default-graph quads should come first")
	}
	if qs[1].Graph != IRI("g") {
		t.Errorf("named quad graph = %v", qs[1].Graph)
	}
}

func TestDatasetClone(t *testing.T) {
	ds := NewDataset()
	ds.Prefixes().Bind("ex", "http://ex.org/")
	ds.Default().MustAdd(T(IRI("s"), IRI("p"), Lit("v")))
	ds.Graph(IRI("g")).MustAdd(T(IRI("s2"), IRI("p"), Lit("v2")))

	c := ds.Clone()
	c.Default().MustAdd(T(IRI("s3"), IRI("p"), Lit("v3")))
	c.Prefixes().Bind("zz", "http://zz.org/")

	if ds.Default().Len() != 1 {
		t.Error("clone mutation leaked into original default graph")
	}
	if _, ok := ds.Prefixes().Expand("zz:a"); ok {
		t.Error("clone prefix leaked into original")
	}
	if _, ok := c.Prefixes().Expand("ex:a"); !ok {
		t.Error("clone lost original prefix")
	}
	g, ok := c.Lookup(IRI("g"))
	if !ok || g.Len() != 1 {
		t.Error("clone lost named graph")
	}
}

func TestPrefixMapExpandCompact(t *testing.T) {
	pm := NewPrefixMap()
	pm.Bind("sc", "http://schema.org/")
	iri, ok := pm.Expand("sc:SportsTeam")
	if !ok || iri != "http://schema.org/SportsTeam" {
		t.Errorf("Expand = %q, %v", iri, ok)
	}
	if _, ok := pm.Expand("nope:x"); ok {
		t.Error("unknown prefix should not expand")
	}
	if _, ok := pm.Expand("noColon"); ok {
		t.Error("string without colon should not expand")
	}
	c, ok := pm.Compact("http://schema.org/SportsTeam")
	if !ok || c != "sc:SportsTeam" {
		t.Errorf("Compact = %q, %v", c, ok)
	}
	if _, ok := pm.Compact("http://unknown.org/x"); ok {
		t.Error("unknown namespace should not compact")
	}
	// Local parts containing separators must not compact.
	if _, ok := pm.Compact("http://schema.org/a/b"); ok {
		t.Error("nested path should not compact")
	}
}

func TestPrefixMapLongestMatchWins(t *testing.T) {
	pm := NewPrefixMap()
	pm.Bind("a", "http://ex.org/")
	pm.Bind("b", "http://ex.org/sub#")
	c, ok := pm.Compact("http://ex.org/sub#x")
	if !ok || c != "b:x" {
		t.Errorf("Compact = %q, want b:x", c)
	}
}

func TestPrefixMapRebindReplaces(t *testing.T) {
	pm := NewPrefixMap()
	pm.Bind("p", "http://one.org/")
	pm.Bind("p", "http://two.org/")
	if iri, _ := pm.Expand("p:x"); iri != "http://two.org/x" {
		t.Errorf("Expand after rebind = %q", iri)
	}
	if _, ok := pm.Compact("http://one.org/x"); ok {
		t.Error("stale reverse binding survived rebind")
	}
}

func TestPrefixMapMustExpandPanics(t *testing.T) {
	pm := NewPrefixMap()
	if got := pm.MustExpand("rdf:type"); got != RDFType {
		t.Errorf("MustExpand = %q", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustExpand should panic for unknown prefix")
		}
	}()
	pm.MustExpand("bogus:x")
}

func TestPrefixMapCompactTerm(t *testing.T) {
	pm := NewPrefixMap()
	pm.Bind("ex", "http://ex.org/")
	if got := pm.CompactTerm(IRI("http://ex.org/a")); got != "ex:a" {
		t.Errorf("CompactTerm IRI = %q", got)
	}
	if got := pm.CompactTerm(Lit("v")); got != `"v"` {
		t.Errorf("CompactTerm literal = %q", got)
	}
	if got := pm.CompactTerm(IRI("http://other.org/a")); got != "<http://other.org/a>" {
		t.Errorf("CompactTerm unknown ns = %q", got)
	}
}

func TestPrefixMapPairsSorted(t *testing.T) {
	pm := NewPrefixMap()
	pairs := pm.Pairs()
	for i := 1; i < len(pairs); i++ {
		if pairs[i-1][0] >= pairs[i][0] {
			t.Errorf("Pairs not sorted: %v", pairs)
		}
	}
}

func TestDatasetSharedDict(t *testing.T) {
	ds := NewDataset()
	term := IRI("http://ex.org/shared")
	ds.Default().MustAdd(T(term, IRI("p"), Lit("v")))
	g := ds.Graph(IRI("http://ex.org/g"))
	g.MustAdd(T(term, IRI("q"), Lit("w")))

	if ds.Default().Dict() != ds.Dict() || g.Dict() != ds.Dict() {
		t.Fatal("graphs do not share the dataset dictionary")
	}
	id1, ok1 := ds.Default().IDOf(term)
	id2, ok2 := g.IDOf(term)
	if !ok1 || !ok2 || id1 != id2 {
		t.Fatalf("shared term has IDs %d/%d (ok %v/%v)", id1, id2, ok1, ok2)
	}
	// Graph names are interned on creation so SPARQL GRAPH ?g can bind
	// them at the ID level.
	if _, ok := ds.Dict().ID(IRI("http://ex.org/g")); !ok {
		t.Error("graph name not interned in dataset dictionary")
	}
}

func TestDatasetAttachMigratesStandaloneGraph(t *testing.T) {
	ds := NewDataset()
	ds.Default().MustAdd(T(IRI("a"), IRI("p"), Lit("x")))

	standalone := NewGraph()
	standalone.MustAdd(T(IRI("b"), IRI("p"), Lit("y")))
	name := IRI("http://ex.org/attached")
	got := ds.Attach(name, standalone)

	if got.Dict() != ds.Dict() {
		t.Fatal("attached graph does not use the dataset dictionary")
	}
	if looked, ok := ds.Lookup(name); !ok || looked != got {
		t.Fatal("attached graph not registered under its name")
	}
	if !got.Has(T(IRI("b"), IRI("p"), Lit("y"))) {
		t.Fatal("attached graph lost its triples during migration")
	}
	// A graph already on the dataset dictionary is adopted as-is.
	native := NewGraphWith(ds.Dict())
	native.MustAdd(T(IRI("c"), IRI("p"), Lit("z")))
	if ds.Attach(IRI("http://ex.org/native"), native) != native {
		t.Fatal("shared-dict graph should be adopted without copying")
	}
	// Attaching under the zero name replaces the default graph.
	def := NewGraph()
	def.MustAdd(T(IRI("d"), IRI("p"), Lit("w")))
	ds.Attach(Term{}, def)
	if !ds.Default().Has(T(IRI("d"), IRI("p"), Lit("w"))) {
		t.Fatal("zero-name Attach did not replace the default graph")
	}
}

func TestDatasetCloneKeepsSharedDictAndIDs(t *testing.T) {
	ds := NewDataset()
	term := IRI("http://ex.org/t")
	ds.Default().MustAdd(T(term, IRI("p"), Lit("v")))
	ds.Graph(IRI("g")).MustAdd(T(term, IRI("q"), IntLit(4)))

	c := ds.Clone()
	if c.Default().Dict() != c.Dict() {
		t.Fatal("cloned default graph lost the shared dictionary")
	}
	cg, _ := c.Lookup(IRI("g"))
	if cg.Dict() != c.Dict() {
		t.Fatal("cloned named graph lost the shared dictionary")
	}
	origID, _ := ds.Default().IDOf(term)
	cloneID, ok := c.Default().IDOf(term)
	if !ok || cloneID != origID {
		t.Fatalf("clone changed TermID: %d -> %d", origID, cloneID)
	}
	// Interning in the clone must not leak into the original.
	before := ds.Dict().Len()
	c.Default().MustAdd(T(IRI("http://ex.org/new"), IRI("p"), Lit("n")))
	if ds.Dict().Len() != before {
		t.Fatal("clone intern leaked into original dictionary")
	}
}

func TestGraphMergeSameDictFastPath(t *testing.T) {
	ds := NewDataset()
	a := ds.Graph(IRI("a"))
	b := ds.Graph(IRI("b"))
	a.MustAdd(T(IRI("s"), IRI("p"), Lit("both")))
	b.MustAdd(T(IRI("s"), IRI("p"), Lit("both")))
	b.MustAdd(T(IRI("s2"), IRI("p"), IntLit(1)))
	a.Merge(b)
	if a.Len() != 2 {
		t.Fatalf("merged len = %d, want 2", a.Len())
	}
	if !a.Has(T(IRI("s2"), IRI("p"), IntLit(1))) {
		t.Fatal("merge dropped a triple")
	}
}

func TestDatasetVersionBumpsOnStructuralChange(t *testing.T) {
	ds := NewDataset()
	v0 := ds.Version()

	// Triple-level writes do not bump the version.
	ds.Default().MustAdd(T(IRI("s"), IRI("p"), Lit("o")))
	if ds.Version() != v0 {
		t.Fatalf("version bumped by a triple write: %d -> %d", v0, ds.Version())
	}

	name := IRI("http://ex.org/g")
	ds.Graph(name)
	v1 := ds.Version()
	if v1 == v0 {
		t.Fatal("version unchanged after named-graph creation")
	}
	ds.Graph(name) // already exists: no bump
	if ds.Version() != v1 {
		t.Fatal("version bumped by a lookup of an existing graph")
	}

	if !ds.DropGraph(name) {
		t.Fatal("DropGraph = false")
	}
	v2 := ds.Version()
	if v2 == v1 {
		t.Fatal("version unchanged after DropGraph")
	}
	if ds.DropGraph(name) {
		t.Fatal("second DropGraph should report false")
	}
	if ds.Version() != v2 {
		t.Fatal("version bumped by a no-op DropGraph")
	}

	// Re-creating a graph whose name is already interned must still bump.
	ds.Graph(name)
	if ds.Version() == v2 {
		t.Fatal("version unchanged after re-creating a dropped graph")
	}

	v3 := ds.Version()
	ds.Attach(Term{}, NewGraph()) // replace the default graph
	if ds.Version() == v3 {
		t.Fatal("version unchanged after default-graph replacement")
	}
	v4 := ds.Version()
	ds.Attach(IRI("http://ex.org/h"), NewGraphWith(ds.Dict()))
	if ds.Version() == v4 {
		t.Fatal("version unchanged after Attach of a named graph")
	}
}

func TestDatasetCompactedClone(t *testing.T) {
	ds := NewDataset()
	ds.Prefixes().Bind("ex", "http://ex.org/")
	ex := func(s string) Term { return IRI("http://ex.org/" + s) }
	for i := 0; i < 50; i++ {
		ds.Default().MustAdd(T(ex("s"), ex("p"), Lit(string(rune('a'+i%26))+"-dead")))
	}
	live := T(ex("s"), ex("p"), Lit("live"))
	ds.Default().MustAdd(live)
	g := ds.Graph(ex("g"))
	g.MustAdd(T(ex("ns"), ex("np"), Lit("named-live")))
	for i := 0; i < 50; i++ {
		ds.Default().Remove(T(ex("s"), ex("p"), Lit(string(rune('a'+i%26))+"-dead")))
	}

	got := ds.CompactedClone()
	if got.Len() != ds.Len() {
		t.Fatalf("clone Len = %d, want %d", got.Len(), ds.Len())
	}
	if !got.Default().Has(live) {
		t.Fatal("live default-graph triple missing from clone")
	}
	ng, ok := got.Lookup(ex("g"))
	if !ok || ng.Len() != 1 {
		t.Fatalf("named graph in clone = %v, %v", ng, ok)
	}
	if got.Dict().Len() >= ds.Dict().Len() {
		t.Fatalf("dict not GC'd: %d -> %d terms", ds.Dict().Len(), got.Dict().Len())
	}
	// Prefixes are shared by design (see CompactedClone doc).
	if iri, ok := got.Prefixes().Expand("ex:x"); !ok || iri != "http://ex.org/x" {
		t.Fatalf("prefix lost: %q, %v", iri, ok)
	}
	// Clone is independent at the triple level.
	got.Default().Remove(live)
	if !ds.Default().Has(live) {
		t.Fatal("removing from clone mutated source")
	}
}
