package rdf

// TermID is a dense dictionary code for an interned Term. IDs are
// assigned sequentially from 0 in first-seen order and are stable for
// the lifetime of the Dict (terms are never evicted), so a TermID can be
// used as a compact map key or array index in place of the 4-field Term
// struct.
type TermID uint32

// AnyID is the wildcard pattern at the ID level: it matches every term
// in Graph.EachMatchIDs, mirroring the Any term at the Term level. It is
// never assigned to a real term.
const AnyID TermID = ^TermID(0)

// Dict interns Terms to dense TermIDs with reverse lookup. A Dict is an
// append-only bijection: Intern assigns the next free ID to an unseen
// term and returns the existing ID otherwise.
//
// Dict performs no locking of its own; Graph guards its dictionary with
// the graph mutex. Use a separate Dict (or external synchronization)
// when sharing one across goroutines.
type Dict struct {
	ids   map[Term]TermID
	terms []Term
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{ids: make(map[Term]TermID)}
}

// Intern returns the ID of t, assigning the next free ID if t has not
// been seen before.
func (d *Dict) Intern(t Term) TermID {
	if id, ok := d.ids[t]; ok {
		return id
	}
	id := TermID(len(d.terms))
	d.ids[t] = id
	d.terms = append(d.terms, t)
	return id
}

// ID returns the ID of t without interning; ok is false when t has never
// been interned.
func (d *Dict) ID(t Term) (TermID, bool) {
	id, ok := d.ids[t]
	return id, ok
}

// Term returns the term for an ID; ok is false for IDs that were never
// assigned (including AnyID).
func (d *Dict) Term(id TermID) (Term, bool) {
	// Compare in uint64 so AnyID cannot wrap negative on 32-bit ints.
	if uint64(id) >= uint64(len(d.terms)) {
		return Term{}, false
	}
	return d.terms[id], true
}

// Len returns the number of interned terms.
func (d *Dict) Len() int { return len(d.terms) }

// clone returns a deep copy of the dictionary.
func (d *Dict) clone() *Dict {
	out := &Dict{
		ids:   make(map[Term]TermID, len(d.ids)),
		terms: append([]Term(nil), d.terms...),
	}
	for t, id := range d.ids {
		out.ids[t] = id
	}
	return out
}
