package rdf

import "sync"

// TermID is a dense dictionary code for an interned Term. IDs are
// assigned sequentially from 0 in first-seen order and are stable for
// the lifetime of the Dict (terms are never evicted), so a TermID can be
// used as a compact map key or array index in place of the 4-field Term
// struct.
type TermID uint32

// AnyID is the wildcard pattern at the ID level: it matches every term
// in Graph.EachMatchIDs, mirroring the Any term at the Term level. It is
// never assigned to a real term.
const AnyID TermID = ^TermID(0)

// Dict interns Terms to dense TermIDs with reverse lookup. A Dict is an
// append-only bijection: Intern assigns the next free ID to an unseen
// term and returns the existing ID otherwise.
//
// # Locking contract
//
// A Dict synchronizes itself with an internal RWMutex, so one Dict may
// be shared by every graph of a Dataset (and by SPARQL evaluation
// running concurrently with writers). The terms slice is append-only:
// once an ID is handed out, the Term it decodes to never changes, so a
// slice header captured by Snapshot stays valid forever — readers can
// index it lock-free for any ID observed before the snapshot was taken.
type Dict struct {
	mu    sync.RWMutex
	ids   map[Term]TermID
	terms []Term
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{ids: make(map[Term]TermID)}
}

// Intern returns the ID of t, assigning the next free ID if t has not
// been seen before.
func (d *Dict) Intern(t Term) TermID {
	d.mu.RLock()
	id, ok := d.ids[t]
	d.mu.RUnlock()
	if ok {
		return id
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok := d.ids[t]; ok {
		return id
	}
	id = TermID(len(d.terms))
	d.ids[t] = id
	d.terms = append(d.terms, t)
	return id
}

// InternBatch interns every term of ts under a single lock acquisition,
// writing the assigned IDs into out (which must have len(ts)). The
// terms slice is grown once up front, and an empty dictionary gets a
// map presized for the batch — this is the segment-load fast path,
// where a cold open interns the whole dictionary block at once.
func (d *Dict) InternBatch(ts []Term, out []TermID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if need := len(d.terms) + len(ts); cap(d.terms) < need {
		grown := make([]Term, len(d.terms), need)
		copy(grown, d.terms)
		d.terms = grown
	}
	if len(d.ids) == 0 {
		d.ids = make(map[Term]TermID, len(ts))
	}
	for i, t := range ts {
		id, ok := d.ids[t]
		if !ok {
			id = TermID(len(d.terms))
			d.ids[t] = id
			d.terms = append(d.terms, t)
		}
		out[i] = id
	}
}

// ID returns the ID of t without interning; ok is false when t has never
// been interned.
func (d *Dict) ID(t Term) (TermID, bool) {
	d.mu.RLock()
	id, ok := d.ids[t]
	d.mu.RUnlock()
	return id, ok
}

// Term returns the term for an ID; ok is false for IDs that were never
// assigned (including AnyID).
func (d *Dict) Term(id TermID) (Term, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	// Compare in uint64 so AnyID cannot wrap negative on 32-bit ints.
	if uint64(id) >= uint64(len(d.terms)) {
		return Term{}, false
	}
	return d.terms[id], true
}

// Len returns the number of interned terms.
func (d *Dict) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.terms)
}

// Snapshot returns the current id -> term table. The returned slice is
// shared and MUST be treated as read-only; because the table is
// append-only it remains a correct decode for every ID that existed when
// the snapshot was taken, even while other goroutines keep interning.
func (d *Dict) Snapshot() []Term {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.terms
}

// clone returns a deep copy of the dictionary.
func (d *Dict) clone() *Dict {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := &Dict{
		ids:   make(map[Term]TermID, len(d.ids)),
		terms: append([]Term(nil), d.terms...),
	}
	for t, id := range d.ids {
		out.ids[t] = id
	}
	return out
}
