package rdf

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestDictInternRoundTrip(t *testing.T) {
	d := NewDict()
	terms := []Term{
		IRI("http://ex.org/a"),
		Lit("plain"),
		TypedLit("5", XSDInteger),
		LangLit("hola", "es"),
		Blank("b1"),
	}
	ids := make([]TermID, len(terms))
	for i, tm := range terms {
		ids[i] = d.Intern(tm)
		if int(ids[i]) != i {
			t.Errorf("Intern(%s) = %d, want dense id %d", tm, ids[i], i)
		}
	}
	if d.Len() != len(terms) {
		t.Fatalf("Len = %d, want %d", d.Len(), len(terms))
	}
	// Re-interning returns the same id.
	for i, tm := range terms {
		if got := d.Intern(tm); got != ids[i] {
			t.Errorf("re-Intern(%s) = %d, want %d", tm, got, ids[i])
		}
	}
	// Reverse lookup round-trips.
	for i, id := range ids {
		got, ok := d.Term(id)
		if !ok || got != terms[i] {
			t.Errorf("Term(%d) = %v, %v; want %s", id, got, ok, terms[i])
		}
	}
	// Unknown lookups.
	if _, ok := d.ID(IRI("http://ex.org/unseen")); ok {
		t.Error("ID of unseen term should report false")
	}
	if _, ok := d.Term(TermID(len(terms))); ok {
		t.Error("Term of unassigned id should report false")
	}
	if _, ok := d.Term(AnyID); ok {
		t.Error("Term(AnyID) should report false")
	}
}

// Distinct terms that differ only in one field must get distinct ids.
func TestDictDistinguishesTermFields(t *testing.T) {
	d := NewDict()
	a := d.Intern(Lit("x"))
	b := d.Intern(TypedLit("x", XSDInteger))
	c := d.Intern(LangLit("x", "en"))
	e := d.Intern(IRI("x"))
	f := d.Intern(Blank("x"))
	seen := map[TermID]bool{}
	for _, id := range []TermID{a, b, c, e, f} {
		if seen[id] {
			t.Fatalf("id %d reused across distinct terms", id)
		}
		seen[id] = true
	}
}

func TestPropDictInternStable(t *testing.T) {
	prop := func(values []string) bool {
		d := NewDict()
		ids := map[string]TermID{}
		for _, v := range values {
			id := d.Intern(Lit(v))
			if prev, ok := ids[v]; ok && prev != id {
				return false
			}
			ids[v] = id
		}
		for v, id := range ids {
			got, ok := d.Term(id)
			if !ok || got != Lit(v) {
				return false
			}
		}
		return d.Len() == len(ids)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// TestEachMatchAgreesWithMatch checks iterator/slice equivalence across
// all 8 bound/unbound pattern shapes.
func TestEachMatchAgreesWithMatch(t *testing.T) {
	g := NewGraph()
	for i := 0; i < 60; i++ {
		g.MustAdd(mkTriple(i))
	}
	s, p, o := IRI("http://ex.org/s1"), IRI("http://ex.org/p1"), IntLit(4)
	for mask := 0; mask < 8; mask++ {
		ps, pp, po := Any, Any, Any
		if mask&1 != 0 {
			ps = s
		}
		if mask&2 != 0 {
			pp = p
		}
		if mask&4 != 0 {
			po = o
		}
		want := g.Match(ps, pp, po)
		got := map[Triple]int{}
		g.EachMatch(ps, pp, po, func(tr Triple) bool {
			got[tr]++
			return true
		})
		if len(got) != len(want) {
			t.Errorf("mask %d: EachMatch visited %d distinct, Match returned %d", mask, len(got), len(want))
		}
		for _, tr := range want {
			if got[tr] != 1 {
				t.Errorf("mask %d: triple %s visited %d times, want 1", mask, tr, got[tr])
			}
		}
		if g.Count(ps, pp, po) != len(want) {
			t.Errorf("mask %d: Count = %d, want %d", mask, g.Count(ps, pp, po), len(want))
		}
		// MatchFirst must agree with the head of the sorted Match result.
		first, ok := g.MatchFirst(ps, pp, po)
		if ok != (len(want) > 0) {
			t.Errorf("mask %d: MatchFirst ok = %v with %d matches", mask, ok, len(want))
		} else if ok && first != want[0] {
			t.Errorf("mask %d: MatchFirst = %s, want %s", mask, first, want[0])
		}
	}
	// Patterns with terms unknown to the dictionary match nothing.
	g.EachMatch(IRI("http://ex.org/unseen"), Any, Any, func(Triple) bool {
		t.Error("EachMatch visited a triple for an unknown subject")
		return false
	})
}

func TestEachMatchEarlyStop(t *testing.T) {
	g := NewGraph()
	for i := 0; i < 20; i++ {
		g.MustAdd(mkTriple(i))
	}
	visits := 0
	g.EachMatch(Any, Any, Any, func(Triple) bool {
		visits++
		return visits < 5
	})
	if visits != 5 {
		t.Errorf("early stop visited %d triples, want 5", visits)
	}
}

func TestEachMatchIDsRoundTrip(t *testing.T) {
	g := NewGraph()
	tr := T(IRI("s"), IRI("p"), Lit("o"))
	g.MustAdd(tr)
	pid, ok := g.IDOf(IRI("p"))
	if !ok {
		t.Fatal("IDOf missing interned predicate")
	}
	found := 0
	g.EachMatchIDs(AnyID, pid, AnyID, func(s, p, o TermID) bool {
		st, _ := g.TermOf(s)
		pt, _ := g.TermOf(p)
		ot, _ := g.TermOf(o)
		if T(st, pt, ot) != tr {
			t.Errorf("ID round trip = %s %s %s", st, pt, ot)
		}
		found++
		return true
	})
	if found != 1 {
		t.Errorf("EachMatchIDs visited %d, want 1", found)
	}
	if _, ok := g.IDOf(IRI("unseen")); ok {
		t.Error("IDOf unseen term should report false")
	}
}

// TestGraphConcurrentAddEachMatch exercises concurrent writers and
// iterator readers; run with -race to verify the locking of the
// dictionary and the ID indexes.
func TestGraphConcurrentAddEachMatch(t *testing.T) {
	g := NewGraph()
	p1 := IRI("http://ex.org/p1")
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				g.MustAdd(mkTriple(w*300 + i))
			}
		}(w)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				n := 0
				g.EachMatch(Any, p1, Any, func(tr Triple) bool {
					if tr.P != p1 {
						t.Errorf("EachMatch leaked %s", tr)
						return false
					}
					n++
					return true
				})
				_ = g.Count(Any, Any, Any)
				if _, ok := g.MatchFirst(Any, p1, Any); ok && n == 0 {
					t.Error("MatchFirst found a triple EachMatch missed")
				}
			}
		}()
	}
	wg.Wait()
	if g.Len() == 0 {
		t.Fatal("no triples after concurrent writes")
	}
	want := g.Count(Any, p1, Any)
	got := 0
	g.EachMatch(Any, p1, Any, func(Triple) bool { got++; return true })
	if got != want {
		t.Errorf("quiescent EachMatch visited %d, Count says %d", got, want)
	}
}

func BenchmarkGraphEachMatch(b *testing.B) {
	g := NewGraph()
	for i := 0; i < 10000; i++ {
		g.MustAdd(T(
			IRI(fmt.Sprintf("http://ex.org/s%d", i%100)),
			IRI(fmt.Sprintf("http://ex.org/p%d", i%10)),
			IntLit(int64(i))))
	}
	p := IRI("http://ex.org/p3")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		g.EachMatch(Any, p, Any, func(Triple) bool { n++; return true })
		if n == 0 {
			b.Fatal("no matches")
		}
	}
}

func TestDictInternBatch(t *testing.T) {
	d := NewDict()
	pre := d.Intern(Lit("already-here"))
	batch := []Term{
		IRI("http://ex.org/a"),
		Lit("already-here"), // pre-existing
		IRI("http://ex.org/b"),
		IRI("http://ex.org/a"), // duplicate within the batch
		LangLit("hi", "en"),
	}
	out := make([]TermID, len(batch))
	d.InternBatch(batch, out)
	if out[1] != pre {
		t.Fatalf("pre-existing term re-assigned: %d != %d", out[1], pre)
	}
	if out[0] != out[3] {
		t.Fatalf("in-batch duplicate got two IDs: %d, %d", out[0], out[3])
	}
	if d.Len() != 4 {
		t.Fatalf("Len = %d, want 4", d.Len())
	}
	for i, term := range batch {
		if id := d.Intern(term); id != out[i] {
			t.Fatalf("Intern(%v) = %d, batch said %d", term, id, out[i])
		}
		if got, ok := d.Term(out[i]); !ok || got != term {
			t.Fatalf("Term(%d) = %v, %v", out[i], got, ok)
		}
	}
}
