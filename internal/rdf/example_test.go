package rdf_test

import (
	"fmt"

	"mdm/internal/rdf"
)

// ExampleDataset_Attach shows how a standalone graph — typically built
// by a parser that had no dataset at hand — is migrated into a
// dataset. All graphs of a dataset share one term dictionary, so
// Attach re-encodes a foreign graph's triples into the shared
// dictionary; the returned graph is the one that now lives in the
// dataset and must be used in place of the original.
func ExampleDataset_Attach() {
	standalone := rdf.NewGraph() // private dictionary
	s := rdf.IRI("http://ex.org/s")
	standalone.MustAdd(rdf.T(s, rdf.IRI("http://ex.org/p"), rdf.Lit("v")))

	ds := rdf.NewDataset()
	name := rdf.IRI("http://ex.org/g")
	attached := ds.Attach(name, standalone)

	// The attached graph interns in the dataset-wide dictionary, so its
	// TermIDs are directly comparable with every other graph's.
	fmt.Println("shared dict:", attached.Dict() == ds.Dict())
	fmt.Println("triples:", attached.Len())

	id1, ok1 := attached.IDOf(s)
	id2, ok2 := ds.Default().Dict().ID(s)
	fmt.Println("same ID everywhere:", ok1 && ok2 && id1 == id2)

	g, found := ds.Lookup(name)
	fmt.Println("registered:", found && g == attached)
	// Output:
	// shared dict: true
	// triples: 1
	// same ID everywhere: true
	// registered: true
}
