package rdf

import (
	"fmt"
	"iter"
	"sort"
	"sync"
)

// Graph is a set of triples, dictionary-encoded and indexed by subject,
// predicate and object so that every single- or double-bound pattern is
// answered from a hash lookup over dense uint32 IDs. Graph is safe for
// concurrent use.
//
// The graph mutex guards the three permutation indexes; the dictionary
// synchronizes itself (see Dict), because graphs created through a
// Dataset share the dataset's dictionary and may intern concurrently.
//
// The zero value is not ready to use; call NewGraph.
type Graph struct {
	mu   sync.RWMutex
	dict *Dict
	spo  idIndex
	pos  idIndex
	osp  idIndex
	n    int
}

// idIndex is a three-level hash index over dictionary-encoded triples.
// The meaning of the levels depends on the permutation (spo, pos, osp).
// Below the first level sits an idMid, which keeps the (second, third)
// pairs of a low-fan-out key in a single pointer-free pair list instead
// of nested maps: most first-level keys (a subject's predicates, an
// object's referring subjects) have a handful of triples, and per-key
// map headers plus bucket arrays would dominate both allocation count
// and GC scan time on a bulk load.
type idIndex map[TermID]idMid

// bc is one (second, third)-position pair in an idMid pair list.
type bc struct{ b, c TermID }

// midSpill is the pair count beyond which an idMid trades its
// linear-scan pair list for nested maps.
const midSpill = 16

// idMid holds the lower two levels of an idIndex under one first-level
// ID: logically a map from second-level ID to the set of third-level
// IDs. Up to midSpill pairs it is an unordered pair list (one
// pointer-free allocation, linear probes over dense uint32s); past that
// it spills to a map of idSets and stays there. idMid is held by value
// in the index, so add and remove return the updated value for the
// caller to store back.
type idMid struct {
	small []bc
	big   map[TermID]idSet
}

func (m idMid) has(b, c TermID) bool {
	if m.big != nil {
		return m.big[b].has(c)
	}
	for _, p := range m.small {
		if p.b == b && p.c == c {
			return true
		}
	}
	return false
}

func (m idMid) empty() bool {
	return len(m.small) == 0 && len(m.big) == 0
}

// totalLen returns the number of pairs (triples under this first-level
// key).
func (m idMid) totalLen() int {
	if m.big != nil {
		n := 0
		for _, s := range m.big {
			n += s.len()
		}
		return n
	}
	return len(m.small)
}

// setLen returns the size of the third-level set under b.
func (m idMid) setLen(b TermID) int {
	if m.big != nil {
		return m.big[b].len()
	}
	n := 0
	for _, p := range m.small {
		if p.b == b {
			n++
		}
	}
	return n
}

// distinctB returns the number of distinct second-level IDs.
func (m idMid) distinctB() int {
	if m.big != nil {
		return len(m.big)
	}
	n := 0
	for i, p := range m.small {
		dup := false
		for _, q := range m.small[:i] {
			if q.b == p.b {
				dup = true
				break
			}
		}
		if !dup {
			n++
		}
	}
	return n
}

func (m idMid) add(b, c TermID) (idMid, bool) {
	if m.big != nil {
		s, added := m.big[b].add(c)
		if added {
			m.big[b] = s
		}
		return m, added
	}
	for _, p := range m.small {
		if p.b == b && p.c == c {
			return m, false
		}
	}
	if len(m.small) >= midSpill {
		big := make(map[TermID]idSet, len(m.small)+1)
		for _, p := range m.small {
			s, _ := big[p.b].add(p.c)
			big[p.b] = s
		}
		s, _ := big[b].add(c)
		big[b] = s
		return idMid{big: big}, true
	}
	m.small = append(m.small, bc{b, c})
	return m, true
}

func (m idMid) remove(b, c TermID) (idMid, bool) {
	if m.big != nil {
		s, removed := m.big[b].remove(c)
		if !removed {
			return m, false
		}
		if s.len() == 0 {
			delete(m.big, b)
		} else {
			m.big[b] = s
		}
		return m, true
	}
	for i, p := range m.small {
		if p.b == b && p.c == c {
			last := len(m.small) - 1
			m.small[i] = m.small[last]
			m.small = m.small[:last]
			return m, true
		}
	}
	return m, false
}

// items iterates every (second, third) pair in unspecified order.
func (m idMid) items() iter.Seq2[TermID, TermID] {
	return func(yield func(TermID, TermID) bool) {
		if m.big != nil {
			for b, s := range m.big {
				for c := range s.items() {
					if !yield(b, c) {
						return
					}
				}
			}
			return
		}
		for _, p := range m.small {
			if !yield(p.b, p.c) {
				return
			}
		}
	}
}

// setItems iterates the third-level set under b.
func (m idMid) setItems(b TermID) iter.Seq[TermID] {
	if m.big != nil {
		return m.big[b].items()
	}
	return func(yield func(TermID) bool) {
		for _, p := range m.small {
			if p.b == b && !yield(p.c) {
				return
			}
		}
	}
}

func (m idMid) clone() idMid {
	if m.big != nil {
		big := make(map[TermID]idSet, len(m.big))
		for b, s := range m.big {
			big[b] = s.clone()
		}
		return idMid{big: big}
	}
	if m.small == nil {
		return idMid{}
	}
	return idMid{small: append(make([]bc, 0, len(m.small)), m.small...)}
}

// idSetSpill is the leaf size beyond which an idSet trades its
// linear-scan slice for a map. Linear membership probes on ≤16 dense
// uint32s are faster than a map lookup, and the slice keeps the leaf
// pointer-free.
const idSetSpill = 16

// idSet is the leaf of an idIndex: the set of third-position IDs under
// a fixed (first, second) pair. Small sets live in an unordered slice;
// once a set outgrows idSetSpill it spills to a map and stays there.
// idSet is held by value in the index, so add and remove return the
// updated set for the caller to store back.
type idSet struct {
	small []TermID
	big   map[TermID]struct{}
}

func (s idSet) has(c TermID) bool {
	if s.big != nil {
		_, ok := s.big[c]
		return ok
	}
	for _, v := range s.small {
		if v == c {
			return true
		}
	}
	return false
}

func (s idSet) len() int {
	if s.big != nil {
		return len(s.big)
	}
	return len(s.small)
}

func (s idSet) add(c TermID) (idSet, bool) {
	if s.big != nil {
		if _, dup := s.big[c]; dup {
			return s, false
		}
		s.big[c] = struct{}{}
		return s, true
	}
	for _, v := range s.small {
		if v == c {
			return s, false
		}
	}
	if len(s.small) >= idSetSpill {
		big := make(map[TermID]struct{}, len(s.small)+1)
		for _, v := range s.small {
			big[v] = struct{}{}
		}
		big[c] = struct{}{}
		return idSet{big: big}, true
	}
	s.small = append(s.small, c)
	return s, true
}

func (s idSet) remove(c TermID) (idSet, bool) {
	if s.big != nil {
		if _, ok := s.big[c]; !ok {
			return s, false
		}
		delete(s.big, c)
		return s, true
	}
	for i, v := range s.small {
		if v == c {
			last := len(s.small) - 1
			s.small[i] = s.small[last]
			s.small = s.small[:last]
			return s, true
		}
	}
	return s, false
}

// items iterates the set in unspecified order; yield false stops early.
func (s idSet) items() iter.Seq[TermID] {
	return func(yield func(TermID) bool) {
		if s.big != nil {
			for v := range s.big {
				if !yield(v) {
					return
				}
			}
			return
		}
		for _, v := range s.small {
			if !yield(v) {
				return
			}
		}
	}
}

func (s idSet) clone() idSet {
	if s.big != nil {
		big := make(map[TermID]struct{}, len(s.big))
		for v := range s.big {
			big[v] = struct{}{}
		}
		return idSet{big: big}
	}
	if s.small == nil {
		return idSet{}
	}
	return idSet{small: append(make([]TermID, 0, len(s.small)), s.small...)}
}

func (ix idIndex) add(a, b, c TermID) bool {
	mid, added := ix[a].add(b, c)
	if added {
		ix[a] = mid
	}
	return added
}

func (ix idIndex) remove(a, b, c TermID) bool {
	mid, ok := ix[a]
	if !ok {
		return false
	}
	mid, removed := mid.remove(b, c)
	if !removed {
		return false
	}
	if mid.empty() {
		delete(ix, a)
	} else {
		ix[a] = mid
	}
	return true
}

func (ix idIndex) clone() idIndex {
	out := make(idIndex, len(ix))
	for a, mid := range ix {
		out[a] = mid.clone()
	}
	return out
}

// NewGraph returns an empty graph with its own private dictionary.
// Graphs meant to live inside a Dataset should be created through
// Dataset.Graph (or handed to Dataset.Attach) so they share the
// dataset-wide dictionary.
func NewGraph() *Graph {
	return NewGraphWith(NewDict())
}

// NewGraphWith returns an empty graph that interns its terms in d.
// Sharing one dictionary across graphs makes their TermIDs directly
// comparable, which is what lets SPARQL evaluation join ID rows across
// GRAPH blocks without re-encoding.
func NewGraphWith(d *Dict) *Graph {
	return &Graph{
		dict: d,
		spo:  make(idIndex),
		pos:  make(idIndex),
		osp:  make(idIndex),
	}
}

// Dict returns the dictionary the graph interns its terms in.
func (g *Graph) Dict() *Dict { return g.dict }

// Add inserts a triple. It reports whether the triple was newly added
// (false if it was already present) and returns an error for structurally
// invalid triples.
func (g *Graph) Add(t Triple) (bool, error) {
	if !t.Valid() {
		return false, fmt.Errorf("rdf: invalid triple %s", t)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.addLocked(t), nil
}

func (g *Graph) addLocked(t Triple) bool {
	s := g.dict.Intern(t.S)
	p := g.dict.Intern(t.P)
	o := g.dict.Intern(t.O)
	if !g.spo.add(s, p, o) {
		return false
	}
	g.pos.add(p, o, s)
	g.osp.add(o, s, p)
	g.n++
	return true
}

// AddIDs inserts a triple given directly by dictionary IDs, reporting
// whether it was newly added. The IDs must have been assigned by the
// graph's own dictionary (Dict().Intern on this graph's dict); the
// caller is responsible for that invariant — AddIDs does not validate
// it. It is the bulk-load fast path used by the segment store and by
// dictionary compaction: re-encoding a triple whose terms are already
// interned costs three map probes over uint32 keys instead of three
// Term-struct hashes.
func (g *Graph) AddIDs(s, p, o TermID) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.spo.add(s, p, o) {
		return false
	}
	g.pos.add(p, o, s)
	g.osp.add(o, s, p)
	g.n++
	return true
}

// BulkAddIDs inserts a batch of ID triples under one lock acquisition,
// building the three permutation indexes concurrently (they are
// disjoint structures, so the only coordination needed is the batch
// barrier at the end). It reports how many triples were newly added.
// Like AddIDs, the IDs must come from the graph's own dictionary. This
// is the segment-load fast path: on a cold store open the index build
// dominates, and splitting it across cores cuts open latency roughly by
// the number of permutations.
func (g *Graph) BulkAddIDs(tr [][3]TermID) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.n == 0 && len(g.spo) == 0 {
		// Fresh graph: presize each index's outer map by the number of
		// first-level runs in the batch — an upper bound on its distinct
		// key count, exact for sorted input — so the load never pays an
		// incremental rehash.
		g.spo = make(idIndex, runCount(tr, 0))
		g.pos = make(idIndex, runCount(tr, 1))
		g.osp = make(idIndex, runCount(tr, 2))
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		bulkAdd(g.pos, tr, 1, 2, 0)
	}()
	go func() {
		defer wg.Done()
		bulkAdd(g.osp, tr, 2, 0, 1)
	}()
	added := bulkAdd(g.spo, tr, 0, 1, 2)
	wg.Wait()
	g.n += added
	return added
}

// bulkAdd inserts tr into one permutation index, reading the levels
// from positions ai/bi/ci of each triple. Segment data arrives in long
// same-subject (and often same-predicate) runs, so the two upper index
// levels are cached across iterations — a run costs one outer-map
// lookup instead of one per triple.
// runCount returns the number of maximal same-value runs at triple
// position i — an upper bound on the distinct values there.
func runCount(tr [][3]TermID, i int) int {
	runs := 0
	var last TermID
	for k, t := range tr {
		if k == 0 || t[i] != last {
			runs++
			last = t[i]
		}
	}
	return runs
}

// bulkArenaChunk sizes the shared pair-list backing array bulkAdd hands
// out to fresh first-level keys.
const bulkArenaChunk = 8192

func bulkAdd(ix idIndex, tr [][3]TermID, ai, bi, ci int) int {
	added := 0
	var (
		haveRun     bool
		lastA       TermID
		cur         idMid
		dirty       bool
		arena       []bc
		arenaBacked bool
	)
	flush := func() {
		if !haveRun {
			return
		}
		if arenaBacked && cur.big == nil {
			// Freeze the pair list at its exact length so a later append
			// reallocates instead of clobbering the next key's arena
			// share, then advance the arena past the consumed prefix.
			used := len(cur.small)
			cur.small = cur.small[:used:used]
			arena = arena[used:]
		}
		if dirty {
			ix[lastA] = cur
		}
	}
	for _, t := range tr {
		a, b, c := t[ai], t[bi], t[ci]
		if !haveRun || a != lastA {
			flush()
			cur = ix[a]
			arenaBacked = false
			if cur.small == nil && cur.big == nil {
				// Fresh key: build its pair list in the shared arena so a
				// load of many low-fan-out keys costs one allocation per
				// chunk instead of one per key.
				if len(arena) <= midSpill {
					arena = make([]bc, bulkArenaChunk)
				}
				cur.small = arena[:0]
				arenaBacked = true
			}
			lastA, haveRun, dirty = a, true, false
		}
		var did bool
		if cur, did = cur.add(b, c); did {
			added++
			dirty = true
		}
	}
	flush()
	return added
}

// MustAdd inserts a triple and panics on structural invalidity. It is a
// convenience for fixtures and internally generated triples whose shape
// is known to be valid.
func (g *Graph) MustAdd(t Triple) {
	if _, err := g.Add(t); err != nil {
		panic(err)
	}
}

// AddAll inserts every triple, stopping at the first invalid one.
func (g *Graph) AddAll(ts []Triple) error {
	for _, t := range ts {
		if _, err := g.Add(t); err != nil {
			return err
		}
	}
	return nil
}

// Remove deletes a triple, reporting whether it was present. Dictionary
// entries are never reclaimed; removed terms keep their IDs.
func (g *Graph) Remove(t Triple) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	s, ok := g.dict.ID(t.S)
	if !ok {
		return false
	}
	p, ok := g.dict.ID(t.P)
	if !ok {
		return false
	}
	o, ok := g.dict.ID(t.O)
	if !ok {
		return false
	}
	if !g.spo.remove(s, p, o) {
		return false
	}
	g.pos.remove(p, o, s)
	g.osp.remove(o, s, p)
	g.n--
	return true
}

// Has reports whether the exact triple is present.
func (g *Graph) Has(t Triple) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	s, ok := g.dict.ID(t.S)
	if !ok {
		return false
	}
	p, ok := g.dict.ID(t.P)
	if !ok {
		return false
	}
	o, ok := g.dict.ID(t.O)
	if !ok {
		return false
	}
	return g.spo[s].has(p, o)
}

// Len returns the number of stored triples.
func (g *Graph) Len() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.n
}

// IDOf returns the dictionary ID of a term; ok is false when the term
// has never been stored in the graph.
func (g *Graph) IDOf(t Term) (TermID, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.dict.ID(t)
}

// TermOf returns the term for a dictionary ID previously obtained from
// IDOf or EachMatchIDs.
func (g *Graph) TermOf(id TermID) (Term, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.dict.Term(id)
}

// patIDLocked resolves a pattern term to an ID-level pattern component.
// ok is false when the term is concrete but unknown to the dictionary,
// in which case no triple can match.
func (g *Graph) patIDLocked(t Term) (TermID, bool) {
	if t.IsAny() {
		return AnyID, true
	}
	return g.dict.ID(t)
}

// EachMatch calls fn for every triple matching the pattern, where each
// of s, p, o is either a concrete term or the Any wildcard. Iteration
// stops early when fn returns false. Triples are visited in unspecified
// order; no intermediate slice is materialized and no sorting happens,
// so a full scan allocates nothing.
//
// fn must not mutate g (the graph's read lock is held across the call),
// and should avoid re-entrant reads of g while a concurrent writer may
// be blocked.
func (g *Graph) EachMatch(s, p, o Term, fn func(Triple) bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	g.eachMatchTermsLocked(s, p, o, fn)
}

// EachMatchIDs is the ID-level variant of EachMatch: pattern components
// are dictionary IDs (AnyID as wildcard) and fn receives raw IDs,
// skipping term reconstruction entirely. The same locking contract as
// EachMatch applies.
func (g *Graph) EachMatchIDs(s, p, o TermID, fn func(s, p, o TermID) bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	g.eachMatchIDsLocked(s, p, o, fn)
}

// AppendMatchIDs appends every matching triple to dst as consecutive
// (s, p, o) ID triplets and returns the extended slice. The whole match
// set is collected under a single read-lock acquisition, so a consumer
// that needs a pattern's full extent (a hash-join build side, a bulk
// export) pays one lock round-trip instead of one per probe and no
// per-match callback. Triplets are appended in unspecified order.
func (g *Graph) AppendMatchIDs(dst []TermID, s, p, o TermID) []TermID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if need := 3 * g.countIDsLocked(s, p, o); cap(dst)-len(dst) < need {
		grown := make([]TermID, len(dst), len(dst)+need)
		copy(grown, dst)
		dst = grown
	}
	g.eachMatchIDsLocked(s, p, o, func(a, b, c TermID) bool {
		dst = append(dst, a, b, c)
		return true
	})
	return dst
}

// AppendMatchIDsShard is the range-partitioned variant of
// AppendMatchIDs for parallel consumers: the pattern's match set is
// split into `shards` disjoint subsets and only subset `shard`
// (0 ≤ shard < shards) is appended. The union of all shards is exactly
// the AppendMatchIDs set, and for a fixed graph state a triple always
// lands in the same shard, so concurrent workers can each scan one
// shard under their own read-lock acquisition and cover the pattern
// without coordination or overlap.
//
// Which triple position partitions the set is unspecified — it is
// chosen per pattern shape so that, where the index structure allows,
// whole sub-maps outside the shard are skipped rather than filtered
// element-wise. shards <= 1 degenerates to AppendMatchIDs.
func (g *Graph) AppendMatchIDsShard(dst []TermID, s, p, o TermID, shard, shards int) []TermID {
	if shards <= 1 {
		return g.AppendMatchIDs(dst, s, p, o)
	}
	g.mu.RLock()
	defer g.mu.RUnlock()
	g.eachMatchIDsShardLocked(s, p, o, uint32(shard), uint32(shards), func(a, b, c TermID) bool {
		dst = append(dst, a, b, c)
		return true
	})
	return dst
}

// eachMatchIDsShardLocked mirrors eachMatchIDsLocked but emits only the
// triples whose partition coordinate falls in the given shard. The
// coordinate is the chosen index's second iteration level (or the leaf
// set for single-free-position shapes), so for a fixed graph state a
// triple always lands in the same shard; the fully-free shape skips
// whole off-shard subtrees by subject.
func (g *Graph) eachMatchIDsShardLocked(s, p, o TermID, shard, shards uint32, fn func(s, p, o TermID) bool) bool {
	sAny, pAny, oAny := s == AnyID, p == AnyID, o == AnyID
	switch {
	case !sAny && !pAny && !oAny:
		if shard != 0 {
			return true
		}
		return g.eachMatchIDsLocked(s, p, o, fn)
	case !sAny && !pAny: // s p ? — filter objects
		for obj := range g.spo[s].setItems(p) {
			if uint32(obj)%shards != shard {
				continue
			}
			if !fn(s, p, obj) {
				return false
			}
		}
	case !sAny && !oAny: // s ? o — filter predicates
		for pred := range g.osp[o].setItems(s) {
			if uint32(pred)%shards != shard {
				continue
			}
			if !fn(s, pred, o) {
				return false
			}
		}
	case !pAny && !oAny: // ? p o — filter subjects
		for subj := range g.pos[p].setItems(o) {
			if uint32(subj)%shards != shard {
				continue
			}
			if !fn(subj, p, o) {
				return false
			}
		}
	case !sAny: // s ? ? — partition by predicate
		for pred, obj := range g.spo[s].items() {
			if uint32(pred)%shards != shard {
				continue
			}
			if !fn(s, pred, obj) {
				return false
			}
		}
	case !pAny: // ? p ? — partition by object
		for obj, subj := range g.pos[p].items() {
			if uint32(obj)%shards != shard {
				continue
			}
			if !fn(subj, p, obj) {
				return false
			}
		}
	case !oAny: // ? ? o — partition by subject
		for subj, pred := range g.osp[o].items() {
			if uint32(subj)%shards != shard {
				continue
			}
			if !fn(subj, pred, o) {
				return false
			}
		}
	default: // ? ? ? — partition by subject, skipping sub-trees
		for subj, mid := range g.spo {
			if uint32(subj)%shards != shard {
				continue
			}
			for pred, obj := range mid.items() {
				if !fn(subj, pred, obj) {
					return false
				}
			}
		}
	}
	return true
}

// CountIDs is the ID-level variant of Count: pattern components are
// dictionary IDs with AnyID as the wildcard. Like Count it is computed
// from index map lengths and allocates nothing.
func (g *Graph) CountIDs(s, p, o TermID) int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.countIDsLocked(s, p, o)
}

// DistinctCountIDs reports how many distinct values position pos
// (0 = subject, 1 = predicate, 2 = object) takes among the triples
// matching the ID pattern — but only when that number can be read from
// index map lengths alone. ok is false when computing it would require
// iterating matches; callers (e.g. the query planner's join fan-out
// estimate) should then fall back to a neutral default rather than pay
// for a scan.
func (g *Graph) DistinctCountIDs(s, p, o TermID, pos int) (n int, ok bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	sAny, pAny, oAny := s == AnyID, p == AnyID, o == AnyID
	// A constant at the queried position takes one distinct value when
	// anything matches at all (and countIDsLocked is itself map-length
	// arithmetic for every shape with at least one constant).
	if pos == 0 && !sAny || pos == 1 && !pAny || pos == 2 && !oAny {
		if g.countIDsLocked(s, p, o) == 0 {
			return 0, true
		}
		return 1, true
	}
	switch pos {
	case 0: // distinct subjects
		switch {
		case pAny && oAny:
			return len(g.spo), true
		case !pAny && !oAny:
			return g.pos[p].setLen(o), true
		case pAny:
			return g.osp[o].distinctB(), true
		}
	case 1: // distinct predicates
		switch {
		case sAny && oAny:
			return len(g.pos), true
		case !sAny && !oAny:
			return g.osp[o].setLen(s), true
		case oAny:
			return g.spo[s].distinctB(), true
		}
	case 2: // distinct objects
		switch {
		case sAny && pAny:
			return len(g.osp), true
		case !sAny && !pAny:
			return g.spo[s].setLen(p), true
		case sAny:
			return g.pos[p].distinctB(), true
		}
	}
	return 0, false
}

func (g *Graph) eachMatchTermsLocked(s, p, o Term, fn func(Triple) bool) bool {
	sid, ok := g.patIDLocked(s)
	if !ok {
		return true
	}
	pid, ok := g.patIDLocked(p)
	if !ok {
		return true
	}
	oid, ok := g.patIDLocked(o)
	if !ok {
		return true
	}
	terms := g.dict.Snapshot()
	return g.eachMatchIDsLocked(sid, pid, oid, func(a, b, c TermID) bool {
		return fn(T(terms[a], terms[b], terms[c]))
	})
}

// eachMatchIDsLocked walks the cheapest index for the pattern shape. It
// reports false when fn stopped the iteration.
func (g *Graph) eachMatchIDsLocked(s, p, o TermID, fn func(s, p, o TermID) bool) bool {
	sAny, pAny, oAny := s == AnyID, p == AnyID, o == AnyID
	switch {
	case !sAny && !pAny && !oAny:
		if g.spo[s].has(p, o) {
			return fn(s, p, o)
		}
	case !sAny && !pAny: // s p ?
		for obj := range g.spo[s].setItems(p) {
			if !fn(s, p, obj) {
				return false
			}
		}
	case !sAny && !oAny: // s ? o
		for pred := range g.osp[o].setItems(s) {
			if !fn(s, pred, o) {
				return false
			}
		}
	case !pAny && !oAny: // ? p o
		for subj := range g.pos[p].setItems(o) {
			if !fn(subj, p, o) {
				return false
			}
		}
	case !sAny: // s ? ?
		for pred, obj := range g.spo[s].items() {
			if !fn(s, pred, obj) {
				return false
			}
		}
	case !pAny: // ? p ?
		for obj, subj := range g.pos[p].items() {
			if !fn(subj, p, obj) {
				return false
			}
		}
	case !oAny: // ? ? o
		for subj, pred := range g.osp[o].items() {
			if !fn(subj, pred, o) {
				return false
			}
		}
	default: // ? ? ?
		for subj, mid := range g.spo {
			for pred, obj := range mid.items() {
				if !fn(subj, pred, obj) {
					return false
				}
			}
		}
	}
	return true
}

// countIDsLocked computes the match cardinality from index map lengths
// without materializing triples.
func (g *Graph) countIDsLocked(s, p, o TermID) int {
	sAny, pAny, oAny := s == AnyID, p == AnyID, o == AnyID
	switch {
	case !sAny && !pAny && !oAny:
		if g.spo[s].has(p, o) {
			return 1
		}
		return 0
	case !sAny && !pAny: // s p ?
		return g.spo[s].setLen(p)
	case !sAny && !oAny: // s ? o
		return g.osp[o].setLen(s)
	case !pAny && !oAny: // ? p o
		return g.pos[p].setLen(o)
	case !sAny: // s ? ?
		return g.spo[s].totalLen()
	case !pAny: // ? p ?
		return g.pos[p].totalLen()
	case !oAny: // ? ? o
		return g.osp[o].totalLen()
	default:
		return g.n
	}
}

func (g *Graph) countTermsLocked(s, p, o Term) int {
	sid, ok := g.patIDLocked(s)
	if !ok {
		return 0
	}
	pid, ok := g.patIDLocked(p)
	if !ok {
		return 0
	}
	oid, ok := g.patIDLocked(o)
	if !ok {
		return 0
	}
	return g.countIDsLocked(sid, pid, oid)
}

// Match returns all triples matching the pattern, where each of s, p, o
// is either a concrete term or the Any wildcard. Results are returned in
// a deterministic (sorted) order. Callers that only iterate, count or
// take one element should prefer EachMatch, Count or MatchFirst, which
// skip the slice and the sort.
func (g *Graph) Match(s, p, o Term) []Triple {
	g.mu.RLock()
	var out []Triple
	if n := g.countTermsLocked(s, p, o); n > 0 {
		out = make([]Triple, 0, n)
		g.eachMatchTermsLocked(s, p, o, func(t Triple) bool {
			out = append(out, t)
			return true
		})
	}
	g.mu.RUnlock()
	SortTriples(out)
	return out
}

// MatchFirst returns the smallest triple (by CompareTriples) matching
// the pattern, or ok = false if none does. It is a single-pass minimum
// scan: no match set is materialized or sorted.
func (g *Graph) MatchFirst(s, p, o Term) (Triple, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var best Triple
	found := false
	g.eachMatchTermsLocked(s, p, o, func(t Triple) bool {
		if !found || CompareTriples(t, best) < 0 {
			best, found = t, true
		}
		return true
	})
	return best, found
}

// Count returns the number of triples matching the pattern. It is
// computed from index map lengths and allocates nothing.
func (g *Graph) Count(s, p, o Term) int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.countTermsLocked(s, p, o)
}

// Triples returns all triples in deterministic order.
func (g *Graph) Triples() []Triple { return g.Match(Any, Any, Any) }

// Subjects returns the distinct subjects of triples matching (Any, p, o),
// sorted.
func (g *Graph) Subjects(p, o Term) []Term {
	g.mu.RLock()
	var out []Term
	terms := g.dict.Snapshot()
	pid, pok := g.patIDLocked(p)
	oid, ook := g.patIDLocked(o)
	switch {
	case !pok || !ook:
	case pid != AnyID && oid != AnyID:
		// Fully bound: the third index level is exactly the subject set.
		if mid := g.pos[pid]; mid.setLen(oid) > 0 {
			out = make([]Term, 0, mid.setLen(oid))
			for sid := range mid.setItems(oid) {
				out = append(out, terms[sid])
			}
		}
	default:
		seen := map[TermID]struct{}{}
		g.eachMatchIDsLocked(AnyID, pid, oid, func(sid, _, _ TermID) bool {
			if _, dup := seen[sid]; !dup {
				seen[sid] = struct{}{}
				out = append(out, terms[sid])
			}
			return true
		})
	}
	g.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return Compare(out[i], out[j]) < 0 })
	return out
}

// Objects returns the distinct objects of triples matching (s, p, Any),
// sorted.
func (g *Graph) Objects(s, p Term) []Term {
	g.mu.RLock()
	var out []Term
	terms := g.dict.Snapshot()
	sid, sok := g.patIDLocked(s)
	pid, pok := g.patIDLocked(p)
	switch {
	case !sok || !pok:
	case sid != AnyID && pid != AnyID:
		if mid := g.spo[sid]; mid.setLen(pid) > 0 {
			out = make([]Term, 0, mid.setLen(pid))
			for oid := range mid.setItems(pid) {
				out = append(out, terms[oid])
			}
		}
	default:
		seen := map[TermID]struct{}{}
		g.eachMatchIDsLocked(sid, pid, AnyID, func(_, _, oid TermID) bool {
			if _, dup := seen[oid]; !dup {
				seen[oid] = struct{}{}
				out = append(out, terms[oid])
			}
			return true
		})
	}
	g.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return Compare(out[i], out[j]) < 0 })
	return out
}

// Object returns the single object of (s, p, ·). ok is false when no such
// triple exists; when several exist the smallest by Compare is returned.
func (g *Graph) Object(s, p Term) (Term, bool) {
	t, ok := g.MatchFirst(s, p, Any)
	if !ok {
		return Term{}, false
	}
	return t.O, true
}

// Clone returns a deep copy of the graph. The dictionary and the three
// ID indexes are copied directly; no triples are re-sorted or re-hashed
// through the string representation.
func (g *Graph) Clone() *Graph {
	return g.cloneWith(g.dict.clone())
}

// cloneWith returns a deep copy of the graph whose triples decode
// through d. d must assign the same IDs as the graph's own dictionary —
// in practice d is either that dictionary itself or a clone of it.
// Dataset.Clone uses this to copy every graph against a single cloned
// dictionary.
func (g *Graph) cloneWith(d *Dict) *Graph {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return &Graph{
		dict: d,
		spo:  g.spo.clone(),
		pos:  g.pos.clone(),
		osp:  g.osp.clone(),
		n:    g.n,
	}
}

// Merge adds every triple of other into g.
func (g *Graph) Merge(other *Graph) {
	if g == other {
		return
	}
	if g.dict == other.dict {
		// Same dictionary (both graphs live in one dataset): IDs are
		// directly transferable, so copy index entries without decoding
		// any terms.
		other.mu.RLock()
		ids := make([][3]TermID, 0, other.n)
		other.eachMatchIDsLocked(AnyID, AnyID, AnyID, func(a, b, c TermID) bool {
			ids = append(ids, [3]TermID{a, b, c})
			return true
		})
		other.mu.RUnlock()
		g.mu.Lock()
		for _, t := range ids {
			if g.spo.add(t[0], t[1], t[2]) {
				g.pos.add(t[1], t[2], t[0])
				g.osp.add(t[2], t[0], t[1])
				g.n++
			}
		}
		g.mu.Unlock()
		return
	}
	// Collect other's triples without sorting, then insert under a single
	// write lock.
	other.mu.RLock()
	ts := make([]Triple, 0, other.n)
	terms := other.dict.Snapshot()
	other.eachMatchIDsLocked(AnyID, AnyID, AnyID, func(a, b, c TermID) bool {
		ts = append(ts, T(terms[a], terms[b], terms[c]))
		return true
	})
	other.mu.RUnlock()
	g.mu.Lock()
	for _, t := range ts {
		g.addLocked(t)
	}
	g.mu.Unlock()
}

// Equal reports whether two graphs contain exactly the same triples.
// (Blank nodes are compared by label, not by isomorphism; MDM never
// relies on blank-node renaming.)
func (g *Graph) Equal(other *Graph) bool {
	if g == other {
		return true
	}
	if g.Len() != other.Len() {
		return false
	}
	// Snapshot g's triples first: probing other.Has while holding g's
	// read lock would nest the two RWMutexes and can deadlock against
	// concurrent writers (a.Equal(b) racing b.Equal(a)).
	g.mu.RLock()
	ts := make([]Triple, 0, g.n)
	terms := g.dict.Snapshot()
	g.eachMatchIDsLocked(AnyID, AnyID, AnyID, func(a, b, c TermID) bool {
		ts = append(ts, T(terms[a], terms[b], terms[c]))
		return true
	})
	g.mu.RUnlock()
	for _, t := range ts {
		if !other.Has(t) {
			return false
		}
	}
	return true
}

// SubClassClosure returns the set of classes reachable from class via
// zero or more rdfs:subClassOf edges (reflexive, transitive closure).
func (g *Graph) SubClassClosure(class Term) map[Term]bool {
	return g.closure(class, IRI(RDFSSubClassOf), false)
}

// SuperClassClosure returns class plus all its (transitive) superclasses.
func (g *Graph) SuperClassClosure(class Term) map[Term]bool {
	return g.closure(class, IRI(RDFSSubClassOf), true)
}

// closure walks pred-edges from start. forward=true follows start→object
// direction (superclasses); forward=false follows object→subject
// (subclasses).
func (g *Graph) closure(start, pred Term, forward bool) map[Term]bool {
	seen := map[Term]bool{start: true}
	frontier := []Term{start}
	for len(frontier) > 0 {
		next := frontier[:0:0]
		for _, cur := range frontier {
			var neigh []Term
			if forward {
				neigh = g.Objects(cur, pred)
			} else {
				neigh = g.Subjects(pred, cur)
			}
			for _, n := range neigh {
				if !seen[n] {
					seen[n] = true
					next = append(next, n)
				}
			}
		}
		frontier = next
	}
	return seen
}

// IsSubClassOf reports whether sub is class or a (transitive) subclass of
// class.
func (g *Graph) IsSubClassOf(sub, class Term) bool {
	return g.SuperClassClosure(sub)[class]
}

// SameAs returns the owl:sameAs equivalence set of t (bidirectional,
// transitive, including t itself).
func (g *Graph) SameAs(t Term) map[Term]bool {
	seen := map[Term]bool{t: true}
	frontier := []Term{t}
	same := IRI(OWLSameAs)
	for len(frontier) > 0 {
		next := frontier[:0:0]
		for _, cur := range frontier {
			for _, n := range g.Objects(cur, same) {
				if !seen[n] {
					seen[n] = true
					next = append(next, n)
				}
			}
			for _, n := range g.Subjects(same, cur) {
				if !seen[n] {
					seen[n] = true
					next = append(next, n)
				}
			}
		}
		frontier = next
	}
	return seen
}
