package rdf

import (
	"fmt"
	"sort"
	"sync"
)

// Graph is a set of triples indexed by subject, predicate and object so
// that every single- or double-bound pattern is answered from a hash
// lookup. Graph is safe for concurrent use.
//
// The zero value is not ready to use; call NewGraph.
type Graph struct {
	mu  sync.RWMutex
	spo index
	pos index
	osp index
	n   int
}

// index is a three-level hash index over triples. The meaning of the
// levels depends on the permutation (spo, pos, osp).
type index map[Term]map[Term]map[Term]struct{}

func (ix index) add(a, b, c Term) bool {
	m2, ok := ix[a]
	if !ok {
		m2 = make(map[Term]map[Term]struct{})
		ix[a] = m2
	}
	m3, ok := m2[b]
	if !ok {
		m3 = make(map[Term]struct{})
		m2[b] = m3
	}
	if _, dup := m3[c]; dup {
		return false
	}
	m3[c] = struct{}{}
	return true
}

func (ix index) remove(a, b, c Term) bool {
	m2, ok := ix[a]
	if !ok {
		return false
	}
	m3, ok := m2[b]
	if !ok {
		return false
	}
	if _, ok := m3[c]; !ok {
		return false
	}
	delete(m3, c)
	if len(m3) == 0 {
		delete(m2, b)
		if len(m2) == 0 {
			delete(ix, a)
		}
	}
	return true
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{
		spo: make(index),
		pos: make(index),
		osp: make(index),
	}
}

// Add inserts a triple. It reports whether the triple was newly added
// (false if it was already present) and returns an error for structurally
// invalid triples.
func (g *Graph) Add(t Triple) (bool, error) {
	if !t.Valid() {
		return false, fmt.Errorf("rdf: invalid triple %s", t)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.spo.add(t.S, t.P, t.O) {
		return false, nil
	}
	g.pos.add(t.P, t.O, t.S)
	g.osp.add(t.O, t.S, t.P)
	g.n++
	return true, nil
}

// MustAdd inserts a triple and panics on structural invalidity. It is a
// convenience for fixtures and internally generated triples whose shape
// is known to be valid.
func (g *Graph) MustAdd(t Triple) {
	if _, err := g.Add(t); err != nil {
		panic(err)
	}
}

// AddAll inserts every triple, stopping at the first invalid one.
func (g *Graph) AddAll(ts []Triple) error {
	for _, t := range ts {
		if _, err := g.Add(t); err != nil {
			return err
		}
	}
	return nil
}

// Remove deletes a triple, reporting whether it was present.
func (g *Graph) Remove(t Triple) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.spo.remove(t.S, t.P, t.O) {
		return false
	}
	g.pos.remove(t.P, t.O, t.S)
	g.osp.remove(t.O, t.S, t.P)
	g.n--
	return true
}

// Has reports whether the exact triple is present.
func (g *Graph) Has(t Triple) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	m2, ok := g.spo[t.S]
	if !ok {
		return false
	}
	m3, ok := m2[t.P]
	if !ok {
		return false
	}
	_, ok = m3[t.O]
	return ok
}

// Len returns the number of stored triples.
func (g *Graph) Len() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.n
}

// Match returns all triples matching the pattern, where each of s, p, o
// is either a concrete term or the Any wildcard. Results are returned in
// a deterministic (sorted) order.
func (g *Graph) Match(s, p, o Term) []Triple {
	g.mu.RLock()
	out := g.matchLocked(s, p, o)
	g.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return CompareTriples(out[i], out[j]) < 0 })
	return out
}

// MatchFirst returns an arbitrary triple matching the pattern, or ok =
// false if none does. It avoids materializing and sorting the full match
// set.
func (g *Graph) MatchFirst(s, p, o Term) (Triple, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	res := g.matchLocked(s, p, o)
	if len(res) == 0 {
		return Triple{}, false
	}
	sort.Slice(res, func(i, j int) bool { return CompareTriples(res[i], res[j]) < 0 })
	return res[0], true
}

// Count returns the number of triples matching the pattern without the
// sorting cost of Match.
func (g *Graph) Count(s, p, o Term) int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.matchLocked(s, p, o))
}

func (g *Graph) matchLocked(s, p, o Term) []Triple {
	var out []Triple
	sAny, pAny, oAny := s.IsAny(), p.IsAny(), o.IsAny()
	switch {
	case !sAny && !pAny && !oAny:
		if m2, ok := g.spo[s]; ok {
			if m3, ok := m2[p]; ok {
				if _, ok := m3[o]; ok {
					out = append(out, T(s, p, o))
				}
			}
		}
	case !sAny && !pAny: // s p ?
		if m2, ok := g.spo[s]; ok {
			for obj := range m2[p] {
				out = append(out, T(s, p, obj))
			}
		}
	case !sAny && !oAny: // s ? o
		if m2, ok := g.osp[o]; ok {
			for pred := range m2[s] {
				out = append(out, T(s, pred, o))
			}
		}
	case !pAny && !oAny: // ? p o
		if m2, ok := g.pos[p]; ok {
			for subj := range m2[o] {
				out = append(out, T(subj, p, o))
			}
		}
	case !sAny: // s ? ?
		for pred, m3 := range g.spo[s] {
			for obj := range m3 {
				out = append(out, T(s, pred, obj))
			}
		}
	case !pAny: // ? p ?
		for obj, m3 := range g.pos[p] {
			for subj := range m3 {
				out = append(out, T(subj, p, obj))
			}
		}
	case !oAny: // ? ? o
		for subj, m3 := range g.osp[o] {
			for pred := range m3 {
				out = append(out, T(subj, pred, o))
			}
		}
	default: // ? ? ?
		for subj, m2 := range g.spo {
			for pred, m3 := range m2 {
				for obj := range m3 {
					out = append(out, T(subj, pred, obj))
				}
			}
		}
	}
	return out
}

// Triples returns all triples in deterministic order.
func (g *Graph) Triples() []Triple { return g.Match(Any, Any, Any) }

// Subjects returns the distinct subjects of triples matching (Any, p, o).
func (g *Graph) Subjects(p, o Term) []Term {
	seen := map[Term]struct{}{}
	var out []Term
	for _, t := range g.Match(Any, p, o) {
		if _, dup := seen[t.S]; !dup {
			seen[t.S] = struct{}{}
			out = append(out, t.S)
		}
	}
	return out
}

// Objects returns the distinct objects of triples matching (s, p, Any).
func (g *Graph) Objects(s, p Term) []Term {
	seen := map[Term]struct{}{}
	var out []Term
	for _, t := range g.Match(s, p, Any) {
		if _, dup := seen[t.O]; !dup {
			seen[t.O] = struct{}{}
			out = append(out, t.O)
		}
	}
	return out
}

// Object returns the single object of (s, p, ·). ok is false when no such
// triple exists; when several exist the smallest by Compare is returned.
func (g *Graph) Object(s, p Term) (Term, bool) {
	t, ok := g.MatchFirst(s, p, Any)
	if !ok {
		return Term{}, false
	}
	return t.O, true
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	out := NewGraph()
	for _, t := range g.Triples() {
		out.MustAdd(t)
	}
	return out
}

// Merge adds every triple of other into g.
func (g *Graph) Merge(other *Graph) {
	for _, t := range other.Triples() {
		g.MustAdd(t)
	}
}

// Equal reports whether two graphs contain exactly the same triples.
// (Blank nodes are compared by label, not by isomorphism; MDM never
// relies on blank-node renaming.)
func (g *Graph) Equal(other *Graph) bool {
	if g.Len() != other.Len() {
		return false
	}
	for _, t := range g.Triples() {
		if !other.Has(t) {
			return false
		}
	}
	return true
}

// SubClassClosure returns the set of classes reachable from class via
// zero or more rdfs:subClassOf edges (reflexive, transitive closure).
func (g *Graph) SubClassClosure(class Term) map[Term]bool {
	return g.closure(class, IRI(RDFSSubClassOf), false)
}

// SuperClassClosure returns class plus all its (transitive) superclasses.
func (g *Graph) SuperClassClosure(class Term) map[Term]bool {
	return g.closure(class, IRI(RDFSSubClassOf), true)
}

// closure walks pred-edges from start. forward=true follows start→object
// direction (superclasses); forward=false follows object→subject
// (subclasses).
func (g *Graph) closure(start, pred Term, forward bool) map[Term]bool {
	seen := map[Term]bool{start: true}
	frontier := []Term{start}
	for len(frontier) > 0 {
		next := frontier[:0:0]
		for _, cur := range frontier {
			var neigh []Term
			if forward {
				neigh = g.Objects(cur, pred)
			} else {
				neigh = g.Subjects(pred, cur)
			}
			for _, n := range neigh {
				if !seen[n] {
					seen[n] = true
					next = append(next, n)
				}
			}
		}
		frontier = next
	}
	return seen
}

// IsSubClassOf reports whether sub is class or a (transitive) subclass of
// class.
func (g *Graph) IsSubClassOf(sub, class Term) bool {
	return g.SuperClassClosure(sub)[class]
}

// SameAs returns the owl:sameAs equivalence set of t (bidirectional,
// transitive, including t itself).
func (g *Graph) SameAs(t Term) map[Term]bool {
	seen := map[Term]bool{t: true}
	frontier := []Term{t}
	same := IRI(OWLSameAs)
	for len(frontier) > 0 {
		next := frontier[:0:0]
		for _, cur := range frontier {
			for _, n := range g.Objects(cur, same) {
				if !seen[n] {
					seen[n] = true
					next = append(next, n)
				}
			}
			for _, n := range g.Subjects(same, cur) {
				if !seen[n] {
					seen[n] = true
					next = append(next, n)
				}
			}
		}
		frontier = next
	}
	return seen
}
