package rdf

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func mkTriple(i int) Triple {
	return T(
		IRI(fmt.Sprintf("http://ex.org/s%d", i%7)),
		IRI(fmt.Sprintf("http://ex.org/p%d", i%3)),
		IntLit(int64(i)),
	)
}

func TestGraphAddHasRemove(t *testing.T) {
	g := NewGraph()
	tr := T(IRI("s"), IRI("p"), Lit("o"))
	added, err := g.Add(tr)
	if err != nil || !added {
		t.Fatalf("Add = %v, %v", added, err)
	}
	if !g.Has(tr) {
		t.Fatal("Has = false after Add")
	}
	if g.Len() != 1 {
		t.Fatalf("Len = %d, want 1", g.Len())
	}
	added, err = g.Add(tr)
	if err != nil || added {
		t.Fatalf("duplicate Add = %v, %v; want false, nil", added, err)
	}
	if g.Len() != 1 {
		t.Fatalf("Len after dup = %d", g.Len())
	}
	if !g.Remove(tr) {
		t.Fatal("Remove = false")
	}
	if g.Has(tr) || g.Len() != 0 {
		t.Fatal("triple still present after Remove")
	}
	if g.Remove(tr) {
		t.Fatal("second Remove should report false")
	}
}

func TestGraphAddInvalid(t *testing.T) {
	g := NewGraph()
	if _, err := g.Add(T(Lit("s"), IRI("p"), IRI("o"))); err == nil {
		t.Error("literal subject should be rejected")
	}
	if _, err := g.Add(T(IRI("s"), Blank("p"), IRI("o"))); err == nil {
		t.Error("blank predicate should be rejected")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustAdd should panic on invalid triple")
		}
	}()
	g.MustAdd(T(Any, IRI("p"), IRI("o")))
}

func TestGraphMatchAllPatternShapes(t *testing.T) {
	g := NewGraph()
	for i := 0; i < 30; i++ {
		g.MustAdd(mkTriple(i))
	}
	s, p, o := IRI("http://ex.org/s1"), IRI("http://ex.org/p1"), IntLit(1)

	type pat struct {
		s, p, o Term
	}
	pats := []pat{
		{s, p, o}, {s, p, Any}, {s, Any, o}, {Any, p, o},
		{s, Any, Any}, {Any, p, Any}, {Any, Any, o}, {Any, Any, Any},
	}
	for _, pt := range pats {
		got := g.Match(pt.s, pt.p, pt.o)
		// Cross-check against a brute-force scan.
		var want int
		for _, tr := range g.Triples() {
			if (pt.s.IsAny() || tr.S == pt.s) && (pt.p.IsAny() || tr.P == pt.p) && (pt.o.IsAny() || tr.O == pt.o) {
				want++
			}
		}
		if len(got) != want {
			t.Errorf("Match(%v,%v,%v) = %d results, want %d", pt.s, pt.p, pt.o, len(got), want)
		}
		if g.Count(pt.s, pt.p, pt.o) != want {
			t.Errorf("Count(%v,%v,%v) != brute force", pt.s, pt.p, pt.o)
		}
		for i := 1; i < len(got); i++ {
			if CompareTriples(got[i-1], got[i]) >= 0 {
				t.Errorf("Match results not sorted at %d", i)
			}
		}
	}
}

func TestGraphMatchFirst(t *testing.T) {
	g := NewGraph()
	if _, ok := g.MatchFirst(Any, Any, Any); ok {
		t.Error("MatchFirst on empty graph should report false")
	}
	g.MustAdd(T(IRI("s"), IRI("p"), Lit("b")))
	g.MustAdd(T(IRI("s"), IRI("p"), Lit("a")))
	tr, ok := g.MatchFirst(IRI("s"), IRI("p"), Any)
	if !ok || tr.O != Lit("a") {
		t.Errorf("MatchFirst = %v, %v; want smallest object \"a\"", tr, ok)
	}
}

func TestGraphObjectsSubjects(t *testing.T) {
	g := NewGraph()
	g.MustAdd(T(IRI("s1"), IRI("p"), IRI("o1")))
	g.MustAdd(T(IRI("s1"), IRI("p"), IRI("o2")))
	g.MustAdd(T(IRI("s2"), IRI("p"), IRI("o1")))
	if got := g.Objects(IRI("s1"), IRI("p")); len(got) != 2 {
		t.Errorf("Objects = %v", got)
	}
	if got := g.Subjects(IRI("p"), IRI("o1")); len(got) != 2 {
		t.Errorf("Subjects = %v", got)
	}
	o, ok := g.Object(IRI("s2"), IRI("p"))
	if !ok || o != IRI("o1") {
		t.Errorf("Object = %v, %v", o, ok)
	}
	if _, ok := g.Object(IRI("s3"), IRI("p")); ok {
		t.Error("Object on missing subject should report false")
	}
}

func TestGraphCloneMergeEqual(t *testing.T) {
	g := NewGraph()
	for i := 0; i < 10; i++ {
		g.MustAdd(mkTriple(i))
	}
	c := g.Clone()
	if !g.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.MustAdd(T(IRI("extra"), IRI("p"), Lit("v")))
	if g.Equal(c) {
		t.Fatal("Equal should detect extra triple")
	}
	if g.Len() == c.Len() {
		t.Fatal("clone mutation affected original")
	}
	g2 := NewGraph()
	g2.Merge(g)
	g2.Merge(c)
	if g2.Len() != c.Len() {
		t.Fatalf("merge union size = %d, want %d", g2.Len(), c.Len())
	}
	// Equal with same length but different content.
	a, b := NewGraph(), NewGraph()
	a.MustAdd(T(IRI("x"), IRI("p"), Lit("1")))
	b.MustAdd(T(IRI("y"), IRI("p"), Lit("1")))
	if a.Equal(b) {
		t.Fatal("graphs with different triples reported equal")
	}
}

func TestSubClassClosure(t *testing.T) {
	g := NewGraph()
	sub := IRI(RDFSSubClassOf)
	// identifier <- teamId <- specialTeamId ; identifier <- playerId
	g.MustAdd(T(IRI("teamId"), sub, IRI("identifier")))
	g.MustAdd(T(IRI("specialTeamId"), sub, IRI("teamId")))
	g.MustAdd(T(IRI("playerId"), sub, IRI("identifier")))
	g.MustAdd(T(IRI("unrelated"), sub, IRI("other")))

	down := g.SubClassClosure(IRI("identifier"))
	for _, want := range []string{"identifier", "teamId", "specialTeamId", "playerId"} {
		if !down[IRI(want)] {
			t.Errorf("SubClassClosure missing %s", want)
		}
	}
	if down[IRI("unrelated")] {
		t.Error("SubClassClosure leaked unrelated class")
	}

	up := g.SuperClassClosure(IRI("specialTeamId"))
	for _, want := range []string{"specialTeamId", "teamId", "identifier"} {
		if !up[IRI(want)] {
			t.Errorf("SuperClassClosure missing %s", want)
		}
	}
	if !g.IsSubClassOf(IRI("specialTeamId"), IRI("identifier")) {
		t.Error("IsSubClassOf transitive failed")
	}
	if g.IsSubClassOf(IRI("identifier"), IRI("specialTeamId")) {
		t.Error("IsSubClassOf inverted")
	}
	if !g.IsSubClassOf(IRI("teamId"), IRI("teamId")) {
		t.Error("IsSubClassOf should be reflexive")
	}
}

func TestSubClassClosureCycleTerminates(t *testing.T) {
	g := NewGraph()
	sub := IRI(RDFSSubClassOf)
	g.MustAdd(T(IRI("a"), sub, IRI("b")))
	g.MustAdd(T(IRI("b"), sub, IRI("a")))
	got := g.SubClassClosure(IRI("a"))
	if !got[IRI("a")] || !got[IRI("b")] || len(got) != 2 {
		t.Errorf("cycle closure = %v", got)
	}
}

func TestSameAsSymmetricTransitive(t *testing.T) {
	g := NewGraph()
	same := IRI(OWLSameAs)
	g.MustAdd(T(IRI("a"), same, IRI("b")))
	g.MustAdd(T(IRI("c"), same, IRI("b"))) // reverse direction link
	g.MustAdd(T(IRI("c"), same, IRI("d")))
	set := g.SameAs(IRI("a"))
	for _, want := range []string{"a", "b", "c", "d"} {
		if !set[IRI(want)] {
			t.Errorf("SameAs missing %s, got %v", want, set)
		}
	}
	if len(set) != 4 {
		t.Errorf("SameAs size = %d", len(set))
	}
	solo := g.SameAs(IRI("z"))
	if len(solo) != 1 || !solo[IRI("z")] {
		t.Errorf("SameAs singleton = %v", solo)
	}
}

func TestGraphConcurrentAccess(t *testing.T) {
	g := NewGraph()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				g.MustAdd(mkTriple(w*200 + i))
				g.Match(Any, IRI("http://ex.org/p1"), Any)
				g.Count(Any, Any, Any)
			}
		}(w)
	}
	wg.Wait()
	if g.Len() == 0 {
		t.Fatal("no triples after concurrent writes")
	}
}

func TestPropAddThenHasAndRemove(t *testing.T) {
	prop := func(ts []Triple) bool {
		g := NewGraph()
		for _, tr := range ts {
			g.MustAdd(tr)
		}
		for _, tr := range ts {
			if !g.Has(tr) {
				return false
			}
		}
		for _, tr := range ts {
			g.Remove(tr)
		}
		return g.Len() == 0
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestPropMatchConsistentWithTriples(t *testing.T) {
	prop := func(ts []Triple) bool {
		g := NewGraph()
		uniq := map[Triple]struct{}{}
		for _, tr := range ts {
			g.MustAdd(tr)
			uniq[tr] = struct{}{}
		}
		if g.Len() != len(uniq) {
			return false
		}
		return len(g.Triples()) == len(uniq)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestPropCloneEqual(t *testing.T) {
	prop := func(ts []Triple) bool {
		g := NewGraph()
		for _, tr := range ts {
			g.MustAdd(tr)
		}
		return g.Equal(g.Clone())
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestGraphAppendMatchIDs(t *testing.T) {
	g := NewGraph()
	for i := 0; i < 30; i++ {
		g.MustAdd(mkTriple(i))
	}
	p, _ := g.IDOf(IRI("http://ex.org/p1"))
	check := func(s, pp, o TermID) {
		t.Helper()
		got := g.AppendMatchIDs(nil, s, pp, o)
		if len(got)%3 != 0 {
			t.Fatalf("AppendMatchIDs length %d not a multiple of 3", len(got))
		}
		want := map[[3]TermID]bool{}
		g.EachMatchIDs(s, pp, o, func(a, b, c TermID) bool {
			want[[3]TermID{a, b, c}] = true
			return true
		})
		if len(got)/3 != len(want) {
			t.Fatalf("AppendMatchIDs %d triplets, EachMatchIDs %d", len(got)/3, len(want))
		}
		for i := 0; i < len(got); i += 3 {
			if !want[[3]TermID{got[i], got[i+1], got[i+2]}] {
				t.Fatalf("triplet %v not produced by EachMatchIDs", got[i:i+3])
			}
		}
		if n := g.CountIDs(s, pp, o); n != len(want) {
			t.Fatalf("CountIDs = %d, want %d", n, len(want))
		}
	}
	check(AnyID, p, AnyID)
	check(AnyID, AnyID, AnyID)
	sid, _ := g.IDOf(IRI("http://ex.org/s0"))
	check(sid, AnyID, AnyID)
	check(sid, p, AnyID)

	// Appending onto an existing prefix keeps it intact.
	prefix := []TermID{1, 2, 3}
	out := g.AppendMatchIDs(prefix, AnyID, p, AnyID)
	if out[0] != 1 || out[1] != 2 || out[2] != 3 {
		t.Fatalf("prefix clobbered: %v", out[:3])
	}
	if (len(out)-3)/3 != g.CountIDs(AnyID, p, AnyID) {
		t.Fatalf("appended %d triplets, want %d", (len(out)-3)/3, g.CountIDs(AnyID, p, AnyID))
	}
}

func TestGraphAppendMatchIDsShard(t *testing.T) {
	g := NewGraph()
	for i := 0; i < 60; i++ {
		g.MustAdd(mkTriple(i))
	}
	id := func(s string) TermID {
		v, ok := g.IDOf(IRI(s))
		if !ok {
			t.Fatalf("%s not interned", s)
		}
		return v
	}
	s0 := id("http://ex.org/s0")
	p1 := id("http://ex.org/p1")
	o0, _ := g.IDOf(mkTriple(0).O)
	patterns := [][3]TermID{
		{AnyID, AnyID, AnyID},
		{s0, AnyID, AnyID},
		{AnyID, p1, AnyID},
		{AnyID, AnyID, o0},
		{s0, p1, AnyID},
		{s0, AnyID, o0},
		{AnyID, p1, o0},
		{s0, p1, o0},
	}
	for _, pat := range patterns {
		for _, shards := range []int{1, 2, 3, 4, 7, 64} {
			want := map[[3]TermID]int{}
			for raw := g.AppendMatchIDs(nil, pat[0], pat[1], pat[2]); len(raw) > 0; raw = raw[3:] {
				want[[3]TermID{raw[0], raw[1], raw[2]}]++
			}
			got := map[[3]TermID]int{}
			total := 0
			for shard := 0; shard < shards; shard++ {
				raw := g.AppendMatchIDsShard(nil, pat[0], pat[1], pat[2], shard, shards)
				if len(raw)%3 != 0 {
					t.Fatalf("pattern %v shard %d/%d: length %d not a multiple of 3", pat, shard, shards, len(raw))
				}
				total += len(raw) / 3
				for i := 0; i < len(raw); i += 3 {
					got[[3]TermID{raw[i], raw[i+1], raw[i+2]}]++
				}
			}
			if total != len(got) {
				t.Fatalf("pattern %v shards=%d: shards overlap (%d triplets, %d distinct)", pat, shards, total, len(got))
			}
			if len(got) != len(want) {
				t.Fatalf("pattern %v shards=%d: union has %d triplets, want %d", pat, shards, len(got), len(want))
			}
			for k := range want {
				if got[k] != 1 {
					t.Fatalf("pattern %v shards=%d: triplet %v seen %d times", pat, shards, k, got[k])
				}
			}
		}
	}
}

func TestGraphDistinctCountIDs(t *testing.T) {
	g := NewGraph()
	ex := func(s string) Term { return IRI("http://ex.org/" + s) }
	// s0-(p0)->o0, s0-(p0)->o1, s1-(p0)->o0, s1-(p1)->o0
	g.MustAdd(T(ex("s0"), ex("p0"), ex("o0")))
	g.MustAdd(T(ex("s0"), ex("p0"), ex("o1")))
	g.MustAdd(T(ex("s1"), ex("p0"), ex("o0")))
	g.MustAdd(T(ex("s1"), ex("p1"), ex("o0")))
	id := func(s string) TermID {
		v, ok := g.IDOf(ex(s))
		if !ok {
			t.Fatalf("%s not interned", s)
		}
		return v
	}
	s0, s1, p0, o0 := id("s0"), id("s1"), id("p0"), id("o0")
	cases := []struct {
		name    string
		s, p, o TermID
		pos     int
		n       int
		ok      bool
	}{
		{"all-wild distinct subjects", AnyID, AnyID, AnyID, 0, 2, true},
		{"all-wild distinct predicates", AnyID, AnyID, AnyID, 1, 2, true},
		{"all-wild distinct objects", AnyID, AnyID, AnyID, 2, 2, true},
		{"objects of (s0, p0, ?)", s0, p0, AnyID, 2, 2, true},
		{"objects of (?, p0, ?)", AnyID, p0, AnyID, 2, 2, true},
		{"subjects of (?, p0, o0)", AnyID, p0, o0, 0, 2, true},
		{"subjects of (?, ?, o0)", AnyID, AnyID, o0, 0, 2, true},
		{"predicates of (s1, ?, ?)", s1, AnyID, AnyID, 1, 2, true},
		{"predicates of (s1, ?, o0)", s1, AnyID, o0, 1, 2, true},
		{"constant position, matches", s0, AnyID, AnyID, 0, 1, true},
		{"constant position, no matches", s0, id("p1"), AnyID, 0, 0, true},
		{"subjects of (?, p0, ?) needs a scan", AnyID, p0, AnyID, 0, 0, false},
		{"objects of (s0, ?, ?) needs a scan", s0, AnyID, AnyID, 2, 0, false},
	}
	for _, tc := range cases {
		n, ok := g.DistinctCountIDs(tc.s, tc.p, tc.o, tc.pos)
		if ok != tc.ok || (ok && n != tc.n) {
			t.Errorf("%s: DistinctCountIDs = (%d, %v), want (%d, %v)", tc.name, n, ok, tc.n, tc.ok)
		}
	}
}

// TestGraphIndexSpillFanOut pushes one subject past both index spill
// thresholds — more than midSpill (predicate, object) pairs, and more
// than idSetSpill objects under a single predicate — then checks every
// read path and removes everything again. This walks the pair-list,
// spilled-map and mixed representations of the same logical index.
func TestGraphIndexSpillFanOut(t *testing.T) {
	g := NewGraph()
	s := IRI("http://ex.org/fan")
	wide := IRI("http://ex.org/wide")
	const objects = 3 * idSetSpill
	var ts []Triple
	for i := 0; i < objects; i++ {
		ts = append(ts, T(s, wide, IntLit(int64(i))))
	}
	for i := 0; i < midSpill; i++ {
		ts = append(ts, T(s, IRI(fmt.Sprintf("http://ex.org/p%d", i)), Lit("x")))
	}
	for _, tr := range ts {
		g.MustAdd(tr)
	}
	for _, tr := range ts {
		if !g.Has(tr) {
			t.Fatalf("Has(%v) = false", tr)
		}
	}
	if g.Len() != len(ts) {
		t.Fatalf("Len = %d, want %d", g.Len(), len(ts))
	}
	if n := g.Count(s, wide, Any); n != objects {
		t.Fatalf("Count(s, wide, ?) = %d, want %d", n, objects)
	}
	if n := g.Count(s, Any, Any); n != len(ts) {
		t.Fatalf("Count(s, ?, ?) = %d, want %d", n, len(ts))
	}
	if n, ok := g.DistinctCountIDs(mustID(t, g, s), AnyID, AnyID, 1); !ok || n != midSpill+1 {
		t.Fatalf("distinct predicates = %d, %v; want %d", n, ok, midSpill+1)
	}
	if got := g.Objects(s, wide); len(got) != objects {
		t.Fatalf("Objects = %d terms, want %d", len(got), objects)
	}
	if got := g.Match(s, Any, Any); len(got) != len(ts) {
		t.Fatalf("Match = %d triples", len(got))
	}
	clone := g.Clone()
	for _, tr := range ts {
		if !g.Remove(tr) {
			t.Fatalf("Remove(%v) = false", tr)
		}
	}
	if g.Len() != 0 || g.Count(s, Any, Any) != 0 {
		t.Fatalf("graph not empty after removals: Len = %d", g.Len())
	}
	if clone.Len() != len(ts) {
		t.Fatalf("clone mutated by source removals: Len = %d", clone.Len())
	}
}

func mustID(t *testing.T, g *Graph, term Term) TermID {
	t.Helper()
	id, ok := g.IDOf(term)
	if !ok {
		t.Fatalf("%v not interned", term)
	}
	return id
}

// TestBulkAddIDsMatchesAddIDs checks the bulk loader against the
// one-triple path: same final graph, same added count, duplicates
// rejected within and across batches, and fan-outs wide enough to cross
// both spill thresholds mid-batch.
func TestBulkAddIDsMatchesAddIDs(t *testing.T) {
	var ts []Triple
	for i := 0; i < 400; i++ {
		ts = append(ts, mkTriple(i))
	}
	// A hot subject/predicate pair that spills, plus exact duplicates.
	hot := IRI("http://ex.org/hot")
	for i := 0; i < 2*midSpill; i++ {
		ts = append(ts, T(hot, IRI("http://ex.org/w"), IntLit(int64(i))))
	}
	ts = append(ts, ts[:25]...)

	want := NewGraph()
	bulk := NewGraph()
	ids := make([][3]TermID, len(ts))
	for i, tr := range ts {
		want.MustAdd(tr)
		ids[i] = [3]TermID{bulk.Dict().Intern(tr.S), bulk.Dict().Intern(tr.P), bulk.Dict().Intern(tr.O)}
	}
	// Split into two batches so the second sees index state left by the
	// first (arena-backed pair lists must not be clobbered).
	cut := len(ids) / 3
	added := bulk.BulkAddIDs(ids[:cut])
	added += bulk.BulkAddIDs(ids[cut:])
	if added != want.Len() {
		t.Fatalf("BulkAddIDs added %d, want %d", added, want.Len())
	}
	if bulk.Len() != want.Len() {
		t.Fatalf("Len = %d, want %d", bulk.Len(), want.Len())
	}
	if !bulk.Equal(want) {
		t.Fatal("bulk-loaded graph differs from Add-built graph")
	}
	// Re-adding the whole batch must add nothing.
	if again := bulk.BulkAddIDs(ids); again != 0 {
		t.Fatalf("re-adding batch added %d", again)
	}
}
