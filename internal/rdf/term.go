// Package rdf implements the RDF data model and an indexed, in-memory
// quad store with named-graph support. It is the storage substrate that
// replaces Apache Jena in the original MDM implementation: the global
// graph, the source graph and the LAV-mapping named graphs all live in an
// rdf.Dataset.
//
// The package is deliberately self-contained (stdlib only) and exposes
// exactly the access paths MDM needs: pattern matching over triples,
// named graphs, prefix management, and lightweight RDFS/OWL helpers
// (subClassOf closure, sameAs resolution).
//
// # Dictionary encoding
//
// Terms are interned in a Dict, a bijection between Term values and
// dense uint32 TermIDs assigned in first-seen order. The dictionary is
// scoped to the Dataset: every graph created through Dataset.Graph (or
// migrated in with Dataset.Attach) shares the dataset's Dict, so a
// TermID identifies the same term in every graph of the dataset — the
// property SPARQL evaluation relies on to join ID rows across GRAPH
// blocks without re-encoding. Standalone graphs built with NewGraph get
// a private Dict; Dataset.Attach is the migration path that re-encodes
// them into a dataset.
//
// The three triple permutation indexes (spo, pos, osp) are built over
// IDs, so every index probe hashes a single uint32 instead of a 4-field
// struct holding three strings, index keys are 4 bytes instead of ~56,
// and triples impose no per-entry GC pressure beyond the one dictionary
// entry per distinct term. IDs are stable for the life of the dict:
// Remove deletes index entries but never evicts dictionary entries.
//
// Locking: the graph mutex guards a graph's indexes; the shared Dict
// synchronizes itself and its id -> term table is append-only, so
// Dict.Snapshot hands out lock-free read views (see Dict).
//
// # Iterator contract
//
// EachMatch (and its ID-level sibling EachMatchIDs) stream matching
// triples through a callback in unspecified order, holding the graph's
// read lock for the duration of the scan and allocating nothing. The
// callback must not mutate the graph. Match and Triples preserve the
// historical contract — a freshly allocated slice in deterministic
// CompareTriples order — and are implemented on top of the iterator;
// Count, MatchFirst, Subjects and Objects answer from the indexes
// without materializing or sorting the full match set.
package rdf

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// TermKind discriminates the three kinds of RDF terms plus the Any
// wildcard used in match patterns.
type TermKind uint8

// Term kinds. KindAny never appears in a stored triple; it is only
// meaningful as a pattern component passed to Graph.Match.
const (
	KindIRI TermKind = iota
	KindLiteral
	KindBlank
	KindAny
)

// String returns a human-readable name for the kind.
func (k TermKind) String() string {
	switch k {
	case KindIRI:
		return "iri"
	case KindLiteral:
		return "literal"
	case KindBlank:
		return "blank"
	case KindAny:
		return "any"
	}
	return fmt.Sprintf("TermKind(%d)", uint8(k))
}

// Standard XSD datatype IRIs used by typed literals.
const (
	XSDString  = "http://www.w3.org/2001/XMLSchema#string"
	XSDInteger = "http://www.w3.org/2001/XMLSchema#integer"
	XSDDecimal = "http://www.w3.org/2001/XMLSchema#decimal"
	XSDDouble  = "http://www.w3.org/2001/XMLSchema#double"
	XSDBoolean = "http://www.w3.org/2001/XMLSchema#boolean"
	XSDDate    = "http://www.w3.org/2001/XMLSchema#date"
)

// Well-known vocabulary IRIs used throughout MDM.
const (
	RDFType        = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"
	RDFSSubClassOf = "http://www.w3.org/2000/01/rdf-schema#subClassOf"
	RDFSLabel      = "http://www.w3.org/2000/01/rdf-schema#label"
	RDFSDomain     = "http://www.w3.org/2000/01/rdf-schema#domain"
	RDFSRange      = "http://www.w3.org/2000/01/rdf-schema#range"
	OWLSameAs      = "http://www.w3.org/2002/07/owl#sameAs"
)

// Term is an RDF term: an IRI, a literal (optionally typed or
// language-tagged) or a blank node. Term is a comparable value type so it
// can be used directly as a map key; all store indexes rely on that.
//
// The zero Term is invalid and is treated as "unset" by helpers.
type Term struct {
	// Kind discriminates the interpretation of the remaining fields.
	Kind TermKind
	// Value holds the IRI string, the literal lexical form, or the
	// blank-node label depending on Kind.
	Value string
	// Datatype is the datatype IRI for typed literals ("" for plain).
	Datatype string
	// Lang is the language tag for language-tagged literals.
	Lang string
}

// Any is the wildcard pattern term: it matches every term in Graph.Match.
var Any = Term{Kind: KindAny}

// IRI returns an IRI term.
func IRI(iri string) Term { return Term{Kind: KindIRI, Value: iri} }

// Lit returns a plain (xsd:string) literal term.
func Lit(lexical string) Term { return Term{Kind: KindLiteral, Value: lexical} }

// TypedLit returns a literal with an explicit datatype IRI.
func TypedLit(lexical, datatype string) Term {
	return Term{Kind: KindLiteral, Value: lexical, Datatype: datatype}
}

// LangLit returns a language-tagged literal.
func LangLit(lexical, lang string) Term {
	return Term{Kind: KindLiteral, Value: lexical, Lang: lang}
}

// IntLit returns an xsd:integer literal.
func IntLit(v int64) Term { return TypedLit(strconv.FormatInt(v, 10), XSDInteger) }

// FloatLit returns an xsd:double literal.
func FloatLit(v float64) Term {
	return TypedLit(strconv.FormatFloat(v, 'g', -1, 64), XSDDouble)
}

// BoolLit returns an xsd:boolean literal.
func BoolLit(v bool) Term { return TypedLit(strconv.FormatBool(v), XSDBoolean) }

// Blank returns a blank-node term with the given label.
func Blank(label string) Term { return Term{Kind: KindBlank, Value: label} }

// IsIRI reports whether the term is an IRI.
func (t Term) IsIRI() bool { return t.Kind == KindIRI }

// IsLiteral reports whether the term is a literal.
func (t Term) IsLiteral() bool { return t.Kind == KindLiteral }

// IsBlank reports whether the term is a blank node.
func (t Term) IsBlank() bool { return t.Kind == KindBlank }

// IsAny reports whether the term is the wildcard pattern.
func (t Term) IsAny() bool { return t.Kind == KindAny }

// IsZero reports whether the term is the zero value (unset).
func (t Term) IsZero() bool { return t == Term{} }

// Int parses the literal as an integer. It returns an error for
// non-literals or non-numeric lexical forms.
func (t Term) Int() (int64, error) {
	if t.Kind != KindLiteral {
		return 0, fmt.Errorf("rdf: Int on non-literal %s", t)
	}
	return strconv.ParseInt(t.Value, 10, 64)
}

// Float parses the literal as a float64.
func (t Term) Float() (float64, error) {
	if t.Kind != KindLiteral {
		return 0, fmt.Errorf("rdf: Float on non-literal %s", t)
	}
	return strconv.ParseFloat(t.Value, 64)
}

// Bool parses the literal as a boolean.
func (t Term) Bool() (bool, error) {
	if t.Kind != KindLiteral {
		return false, fmt.Errorf("rdf: Bool on non-literal %s", t)
	}
	return strconv.ParseBool(t.Value)
}

// String renders the term in N-Triples-like syntax, e.g.
// <http://ex.org/a>, "abc", "5"^^<...integer>, _:b1.
func (t Term) String() string {
	switch t.Kind {
	case KindIRI:
		return "<" + t.Value + ">"
	case KindBlank:
		return "_:" + t.Value
	case KindAny:
		return "?"
	case KindLiteral:
		q := strconv.Quote(t.Value)
		switch {
		case t.Lang != "":
			return q + "@" + t.Lang
		case t.Datatype != "" && t.Datatype != XSDString:
			return q + "^^<" + t.Datatype + ">"
		default:
			return q
		}
	}
	return "<invalid>"
}

// LocalName returns the fragment or final path segment of an IRI term,
// e.g. LocalName of <http://schema.org/SportsTeam> is "SportsTeam". For
// non-IRI terms it returns the lexical value.
func (t Term) LocalName() string {
	if t.Kind != KindIRI {
		return t.Value
	}
	v := t.Value
	if i := strings.LastIndexAny(v, "#/"); i >= 0 && i+1 < len(v) {
		return v[i+1:]
	}
	return v
}

// Namespace returns the IRI up to and including the last '#' or '/'.
func (t Term) Namespace() string {
	if t.Kind != KindIRI {
		return ""
	}
	v := t.Value
	if i := strings.LastIndexAny(v, "#/"); i >= 0 {
		return v[:i+1]
	}
	return ""
}

// Compare orders terms: IRIs < blanks < literals, then lexically by
// value, datatype and language. It gives Match results and serializations
// a stable order.
func Compare(a, b Term) int {
	ka, kb := termOrder(a.Kind), termOrder(b.Kind)
	if ka != kb {
		if ka < kb {
			return -1
		}
		return 1
	}
	if c := strings.Compare(a.Value, b.Value); c != 0 {
		return c
	}
	if c := strings.Compare(a.Datatype, b.Datatype); c != 0 {
		return c
	}
	return strings.Compare(a.Lang, b.Lang)
}

func termOrder(k TermKind) int {
	switch k {
	case KindIRI:
		return 0
	case KindBlank:
		return 1
	case KindLiteral:
		return 2
	}
	return 3
}

// Triple is an RDF statement.
type Triple struct {
	S, P, O Term
}

// T is shorthand for constructing a triple.
func T(s, p, o Term) Triple { return Triple{S: s, P: p, O: o} }

// String renders the triple in N-Triples style (without trailing dot).
func (t Triple) String() string {
	return t.S.String() + " " + t.P.String() + " " + t.O.String()
}

// Valid reports whether the triple can legally be stored: subject is IRI
// or blank, predicate is IRI, object is any concrete term.
func (t Triple) Valid() bool {
	if t.S.Kind != KindIRI && t.S.Kind != KindBlank {
		return false
	}
	if t.P.Kind != KindIRI {
		return false
	}
	switch t.O.Kind {
	case KindIRI, KindBlank, KindLiteral:
		return true
	}
	return false
}

// CompareTriples orders triples lexicographically by S, P, O.
func CompareTriples(a, b Triple) int {
	if c := Compare(a.S, b.S); c != 0 {
		return c
	}
	if c := Compare(a.P, b.P); c != 0 {
		return c
	}
	return Compare(a.O, b.O)
}

// SortTriples sorts a triple slice in place into CompareTriples order —
// the canonical order used by Match, serializations and renderings.
func SortTriples(ts []Triple) {
	sort.Slice(ts, func(i, j int) bool { return CompareTriples(ts[i], ts[j]) < 0 })
}

// Quad is a triple within a named graph. A zero Graph term denotes the
// default graph.
type Quad struct {
	Triple
	Graph Term
}

// Q is shorthand for constructing a quad.
func Q(s, p, o, g Term) Quad { return Quad{Triple: Triple{S: s, P: p, O: o}, Graph: g} }

// String renders the quad in N-Quads style (without trailing dot).
func (q Quad) String() string {
	if q.Graph.IsZero() {
		return q.Triple.String()
	}
	return q.Triple.String() + " " + q.Graph.String()
}
