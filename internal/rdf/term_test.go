package rdf

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestTermConstructors(t *testing.T) {
	cases := []struct {
		name string
		term Term
		kind TermKind
		str  string
	}{
		{"iri", IRI("http://ex.org/a"), KindIRI, "<http://ex.org/a>"},
		{"plain literal", Lit("hello"), KindLiteral, `"hello"`},
		{"typed literal", TypedLit("5", XSDInteger), KindLiteral, `"5"^^<` + XSDInteger + ">"},
		{"lang literal", LangLit("hola", "es"), KindLiteral, `"hola"@es`},
		{"int literal", IntLit(42), KindLiteral, `"42"^^<` + XSDInteger + ">"},
		{"bool literal", BoolLit(true), KindLiteral, `"true"^^<` + XSDBoolean + ">"},
		{"blank", Blank("b1"), KindBlank, "_:b1"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if c.term.Kind != c.kind {
				t.Errorf("kind = %v, want %v", c.term.Kind, c.kind)
			}
			if got := c.term.String(); got != c.str {
				t.Errorf("String() = %q, want %q", got, c.str)
			}
		})
	}
}

func TestTermStringEscapesQuotes(t *testing.T) {
	if got := Lit(`say "hi"`).String(); got != `"say \"hi\""` {
		t.Errorf("String() = %q", got)
	}
}

func TestXSDStringLiteralRendersPlain(t *testing.T) {
	if got := TypedLit("x", XSDString).String(); got != `"x"` {
		t.Errorf("xsd:string literal should render without datatype, got %q", got)
	}
}

func TestTermPredicates(t *testing.T) {
	if !IRI("x").IsIRI() || IRI("x").IsLiteral() || IRI("x").IsBlank() {
		t.Error("IRI predicates wrong")
	}
	if !Lit("x").IsLiteral() || !Blank("x").IsBlank() || !Any.IsAny() {
		t.Error("kind predicates wrong")
	}
	var zero Term
	if !zero.IsZero() || zero.IsAny() == false && zero.Kind != KindIRI {
		// zero value has KindIRI(0) but empty value; IsZero must hold.
		if !zero.IsZero() {
			t.Error("zero term not detected")
		}
	}
	if IRI("x").IsZero() {
		t.Error("non-zero term reported zero")
	}
}

func TestTermNumericParsing(t *testing.T) {
	if v, err := IntLit(-7).Int(); err != nil || v != -7 {
		t.Errorf("Int() = %d, %v", v, err)
	}
	if v, err := FloatLit(2.5).Float(); err != nil || v != 2.5 {
		t.Errorf("Float() = %g, %v", v, err)
	}
	if v, err := BoolLit(true).Bool(); err != nil || !v {
		t.Errorf("Bool() = %v, %v", v, err)
	}
	if _, err := IRI("x").Int(); err == nil {
		t.Error("Int() on IRI should error")
	}
	if _, err := IRI("x").Float(); err == nil {
		t.Error("Float() on IRI should error")
	}
	if _, err := Blank("x").Bool(); err == nil {
		t.Error("Bool() on blank should error")
	}
	if _, err := Lit("abc").Int(); err == nil {
		t.Error("Int() on non-numeric literal should error")
	}
}

func TestLocalNameAndNamespace(t *testing.T) {
	cases := []struct {
		iri, local, ns string
	}{
		{"http://schema.org/SportsTeam", "SportsTeam", "http://schema.org/"},
		{"http://www.w3.org/2000/01/rdf-schema#label", "label", "http://www.w3.org/2000/01/rdf-schema#"},
		{"urn:x", "urn:x", ""}, // no #/ separator: whole IRI is the local name
	}
	for _, c := range cases {
		term := IRI(c.iri)
		if got := term.LocalName(); got != c.local {
			t.Errorf("LocalName(%s) = %q, want %q", c.iri, got, c.local)
		}
	}
	if got := IRI("http://schema.org/SportsTeam").Namespace(); got != "http://schema.org/" {
		t.Errorf("Namespace = %q", got)
	}
	if got := Lit("x").Namespace(); got != "" {
		t.Errorf("Namespace of literal = %q, want empty", got)
	}
	if got := Lit("v").LocalName(); got != "v" {
		t.Errorf("LocalName of literal = %q", got)
	}
}

func TestCompareOrdersKinds(t *testing.T) {
	iri, blank, lit := IRI("m"), Blank("m"), Lit("m")
	if Compare(iri, blank) >= 0 {
		t.Error("IRI should sort before blank")
	}
	if Compare(blank, lit) >= 0 {
		t.Error("blank should sort before literal")
	}
	if Compare(lit, lit) != 0 {
		t.Error("equal terms should compare 0")
	}
	if Compare(Lit("a"), Lit("b")) >= 0 {
		t.Error("lexical order on value expected")
	}
	if Compare(TypedLit("1", XSDInteger), TypedLit("1", XSDDouble)) == 0 {
		t.Error("datatype must participate in comparison")
	}
	if Compare(LangLit("x", "en"), LangLit("x", "fr")) == 0 {
		t.Error("lang must participate in comparison")
	}
}

func TestTripleValid(t *testing.T) {
	good := []Triple{
		T(IRI("s"), IRI("p"), IRI("o")),
		T(Blank("b"), IRI("p"), Lit("v")),
		T(IRI("s"), IRI("p"), Blank("b")),
	}
	for _, tr := range good {
		if !tr.Valid() {
			t.Errorf("triple %s should be valid", tr)
		}
	}
	bad := []Triple{
		T(Lit("s"), IRI("p"), IRI("o")),   // literal subject
		T(IRI("s"), Lit("p"), IRI("o")),   // literal predicate
		T(IRI("s"), Blank("p"), IRI("o")), // blank predicate
		T(IRI("s"), IRI("p"), Any),        // wildcard object
		T(Any, IRI("p"), IRI("o")),        // wildcard subject
	}
	for _, tr := range bad {
		if tr.Valid() {
			t.Errorf("triple %s should be invalid", tr)
		}
	}
}

func TestQuadString(t *testing.T) {
	q := Q(IRI("s"), IRI("p"), IRI("o"), IRI("g"))
	if got := q.String(); got != "<s> <p> <o> <g>" {
		t.Errorf("Quad.String() = %q", got)
	}
	dq := Quad{Triple: T(IRI("s"), IRI("p"), IRI("o"))}
	if got := dq.String(); got != "<s> <p> <o>" {
		t.Errorf("default-graph Quad.String() = %q", got)
	}
}

// genTerm produces a random concrete term for property tests.
func genTerm(r *rand.Rand) Term {
	switch r.Intn(3) {
	case 0:
		return IRI("http://ex.org/r" + string(rune('a'+r.Intn(26))))
	case 1:
		return Blank("b" + string(rune('a'+r.Intn(26))))
	default:
		return Lit("v" + string(rune('a'+r.Intn(26))))
	}
}

// Generate implements quick.Generator for Triple, producing valid triples.
func (Triple) Generate(r *rand.Rand, _ int) reflect.Value {
	var s Term
	if r.Intn(2) == 0 {
		s = IRI("http://ex.org/s" + string(rune('a'+r.Intn(26))))
	} else {
		s = Blank("s" + string(rune('a'+r.Intn(26))))
	}
	p := IRI("http://ex.org/p" + string(rune('a'+r.Intn(8))))
	return reflect.ValueOf(T(s, p, genTerm(r)))
}

func TestPropCompareTriplesIsTotalOrder(t *testing.T) {
	antisym := func(a, b Triple) bool {
		ab, ba := CompareTriples(a, b), CompareTriples(b, a)
		if a == b {
			return ab == 0 && ba == 0
		}
		return ab == -ba
	}
	if err := quick.Check(antisym, nil); err != nil {
		t.Error(err)
	}
	reflexive := func(a Triple) bool { return CompareTriples(a, a) == 0 }
	if err := quick.Check(reflexive, nil); err != nil {
		t.Error(err)
	}
}

func TestPropGeneratedTriplesValid(t *testing.T) {
	valid := func(tr Triple) bool { return tr.Valid() }
	if err := quick.Check(valid, nil); err != nil {
		t.Error(err)
	}
}
