package turtle_test

import (
	"testing"

	"mdm/internal/rdf/turtle"
	"mdm/internal/usecase"
)

// FuzzParseDataset checks that the Turtle/TriG parser never panics, and
// that any document that parses serializes back to a document the
// parser accepts (write/parse closure — the property tdb snapshots
// depend on).
func FuzzParseDataset(f *testing.F) {
	seeds := []string{
		"",
		"<http://ex.org/s> <http://ex.org/p> <http://ex.org/o> .\n",
		`@prefix ex: <http://ex.org/> .
ex:s ex:p "v" ; ex:q 4 , 2.5 .
ex:s2 a ex:C .
_:b ex:p "hola"@es .
ex:g {
  ex:s ex:p "in-graph"^^<http://www.w3.org/2001/XMLSchema#string> .
}
`,
	}
	// The real corpus: the use-case ontology's TriG serialization, the
	// same document shape tdb writes as its snapshot.
	seeds = append(seeds, turtle.WriteDataset(usecase.MustNew().Ont.Dataset()))
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		ds, err := turtle.ParseDataset(src)
		if err != nil {
			return
		}
		out := turtle.WriteDataset(ds)
		if _, rerr := turtle.ParseDataset(out); rerr != nil {
			t.Fatalf("serialization of parsed doc does not re-parse: %v\ninput: %q\nwritten: %q", rerr, src, out)
		}
	})
}
