// Package turtle implements a practical subset of the Turtle and TriG
// RDF serialization formats: @prefix directives, prefixed names, IRI
// references, string literals with datatype/language tags, numeric and
// boolean shorthand, blank nodes, the "a" keyword, predicate lists (;)
// and object lists (,), and TriG named-graph blocks.
//
// MDM uses it to load ontology fixtures and to export the global/source
// graphs in a form inspectable with standard RDF tooling.
package turtle

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"unicode"

	"mdm/internal/rdf"
)

// ParseError describes a syntax error with line/column position.
type ParseError struct {
	Line, Col int
	Msg       string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("turtle: line %d:%d: %s", e.Line, e.Col, e.Msg)
}

// Parse parses a Turtle document into a new graph. Prefix directives are
// recorded into the returned PrefixMap.
func Parse(src string) (*rdf.Graph, *rdf.PrefixMap, error) {
	ds, err := ParseDataset(src)
	if err != nil {
		return nil, nil, err
	}
	return ds.Default(), ds.Prefixes(), nil
}

// ParseDataset parses a TriG document (Turtle plus named-graph blocks)
// into a dataset.
func ParseDataset(src string) (*rdf.Dataset, error) {
	p := &parser{src: src, line: 1, col: 1, ds: rdf.NewDataset()}
	if err := p.parseDocument(); err != nil {
		return nil, err
	}
	return p.ds, nil
}

type parser struct {
	src       string
	pos       int
	line, col int
	ds        *rdf.Dataset
	graph     rdf.Term // current named graph ("" = default)
	blankSeq  int
}

func (p *parser) errf(format string, args ...any) error {
	return &ParseError{Line: p.line, Col: p.col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) eof() bool { return p.pos >= len(p.src) }

func (p *parser) peek() byte {
	if p.eof() {
		return 0
	}
	return p.src[p.pos]
}

func (p *parser) advance() byte {
	c := p.src[p.pos]
	p.pos++
	if c == '\n' {
		p.line++
		p.col = 1
	} else {
		p.col++
	}
	return c
}

func (p *parser) skipWS() {
	for !p.eof() {
		c := p.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			p.advance()
		case c == '#':
			for !p.eof() && p.peek() != '\n' {
				p.advance()
			}
		default:
			return
		}
	}
}

func (p *parser) expect(c byte) error {
	p.skipWS()
	if p.eof() || p.peek() != c {
		return p.errf("expected %q, got %q", string(c), string(p.peek()))
	}
	p.advance()
	return nil
}

func (p *parser) parseDocument() error {
	for {
		p.skipWS()
		if p.eof() {
			return nil
		}
		if err := p.parseStatement(); err != nil {
			return err
		}
	}
}

func (p *parser) parseStatement() error {
	p.skipWS()
	// Directive?
	if strings.HasPrefix(p.src[p.pos:], "@prefix") {
		return p.parsePrefixDirective()
	}
	if p.isKeywordAt("PREFIX") {
		return p.parseSparqlPrefix()
	}
	if p.isKeywordAt("GRAPH") {
		for i := 0; i < 5; i++ {
			p.advance()
		}
		return p.parseGraphBlockWithName()
	}
	// TriG graph block: IRI { ... } — look ahead for '{' after a term.
	save := *p
	term, err := p.parseTerm()
	if err == nil {
		p.skipWS()
		if !p.eof() && p.peek() == '{' && term.IsIRI() {
			p.advance()
			return p.parseGraphBody(term)
		}
	}
	*p = save
	if !p.eof() && p.peek() == '{' { // anonymous default-graph block
		p.advance()
		return p.parseGraphBody(rdf.Term{})
	}
	return p.parseTriples()
}

// isKeywordAt reports whether the upcoming token equals the keyword
// case-insensitively and is followed by whitespace or '<'.
func (p *parser) isKeywordAt(kw string) bool {
	rest := p.src[p.pos:]
	if len(rest) < len(kw) {
		return false
	}
	if !strings.EqualFold(rest[:len(kw)], kw) {
		return false
	}
	if len(rest) == len(kw) {
		return true
	}
	c := rest[len(kw)]
	return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '<'
}

func (p *parser) parsePrefixDirective() error {
	for i := 0; i < len("@prefix"); i++ {
		p.advance()
	}
	if err := p.bindPrefix(); err != nil {
		return err
	}
	return p.expect('.')
}

func (p *parser) parseSparqlPrefix() error {
	for i := 0; i < len("PREFIX"); i++ {
		p.advance()
	}
	return p.bindPrefix()
}

func (p *parser) bindPrefix() error {
	p.skipWS()
	start := p.pos
	for !p.eof() && p.peek() != ':' {
		p.advance()
	}
	prefix := strings.TrimSpace(p.src[start:p.pos])
	if err := p.expect(':'); err != nil {
		return err
	}
	p.skipWS()
	iri, err := p.parseIRIRef()
	if err != nil {
		return err
	}
	p.ds.Prefixes().Bind(prefix, iri)
	return nil
}

func (p *parser) parseGraphBlockWithName() error {
	p.skipWS()
	name, err := p.parseTerm()
	if err != nil {
		return err
	}
	if !name.IsIRI() {
		return p.errf("graph name must be an IRI, got %s", name)
	}
	if err := p.expect('{'); err != nil {
		return err
	}
	return p.parseGraphBody(name)
}

func (p *parser) parseGraphBody(name rdf.Term) error {
	prev := p.graph
	p.graph = name
	defer func() { p.graph = prev }()
	for {
		p.skipWS()
		if p.eof() {
			return p.errf("unterminated graph block")
		}
		if p.peek() == '}' {
			p.advance()
			return nil
		}
		if err := p.parseTriples(); err != nil {
			return err
		}
	}
}

func (p *parser) parseTriples() error {
	subj, err := p.parseTerm()
	if err != nil {
		return err
	}
	for {
		pred, err := p.parsePredicate()
		if err != nil {
			return err
		}
		for {
			obj, err := p.parseTerm()
			if err != nil {
				return err
			}
			if _, err := p.ds.Graph(p.graph).Add(rdf.T(subj, pred, obj)); err != nil {
				return p.errf("%v", err)
			}
			p.skipWS()
			if !p.eof() && p.peek() == ',' {
				p.advance()
				continue
			}
			break
		}
		p.skipWS()
		if !p.eof() && p.peek() == ';' {
			p.advance()
			p.skipWS()
			// Allow trailing ; before .
			if !p.eof() && (p.peek() == '.' || p.peek() == '}') {
				break
			}
			continue
		}
		break
	}
	p.skipWS()
	if !p.eof() && p.peek() == '.' {
		p.advance()
		return nil
	}
	if !p.eof() && p.peek() == '}' {
		return nil // graph block closes the statement
	}
	return p.errf("expected '.' after triples")
}

func (p *parser) parsePredicate() (rdf.Term, error) {
	p.skipWS()
	if !p.eof() && p.peek() == 'a' {
		// "a" keyword only if followed by whitespace.
		if p.pos+1 >= len(p.src) || isWS(p.src[p.pos+1]) {
			p.advance()
			return rdf.IRI(rdf.RDFType), nil
		}
	}
	return p.parseTerm()
}

func isWS(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }

func (p *parser) parseTerm() (rdf.Term, error) {
	p.skipWS()
	if p.eof() {
		return rdf.Term{}, p.errf("unexpected end of input")
	}
	switch c := p.peek(); {
	case c == '<':
		iri, err := p.parseIRIRef()
		if err != nil {
			return rdf.Term{}, err
		}
		return rdf.IRI(iri), nil
	case c == '"':
		return p.parseLiteral()
	case c == '_':
		return p.parseBlank()
	case c == '[':
		p.advance()
		p.skipWS()
		if p.eof() || p.peek() != ']' {
			return rdf.Term{}, p.errf("only empty blank node property lists [] are supported")
		}
		p.advance()
		p.blankSeq++
		return rdf.Blank(fmt.Sprintf("anon%d", p.blankSeq)), nil
	case c == '+' || c == '-' || (c >= '0' && c <= '9'):
		return p.parseNumber()
	default:
		return p.parsePrefixedOrKeyword()
	}
}

func (p *parser) parseIRIRef() (string, error) {
	if err := p.expect('<'); err != nil {
		return "", err
	}
	var sb strings.Builder
	for {
		if p.eof() {
			return "", p.errf("unterminated IRI")
		}
		c := p.advance()
		if c == '>' {
			return sb.String(), nil
		}
		if c == ' ' || c == '\n' {
			return "", p.errf("whitespace in IRI")
		}
		sb.WriteByte(c)
	}
}

func (p *parser) parseLiteral() (rdf.Term, error) {
	if err := p.expect('"'); err != nil {
		return rdf.Term{}, err
	}
	var sb strings.Builder
	for {
		if p.eof() {
			return rdf.Term{}, p.errf("unterminated string literal")
		}
		c := p.advance()
		if c == '"' {
			break
		}
		if c == '\\' {
			if p.eof() {
				return rdf.Term{}, p.errf("dangling escape")
			}
			e := p.advance()
			switch e {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case 'r':
				sb.WriteByte('\r')
			case '"', '\\':
				sb.WriteByte(e)
			case 'u':
				if p.pos+4 > len(p.src) {
					return rdf.Term{}, p.errf("truncated \\u escape")
				}
				hex := p.src[p.pos : p.pos+4]
				v, err := strconv.ParseUint(hex, 16, 32)
				if err != nil {
					return rdf.Term{}, p.errf("bad \\u escape %q", hex)
				}
				for i := 0; i < 4; i++ {
					p.advance()
				}
				sb.WriteRune(rune(v))
			default:
				return rdf.Term{}, p.errf("unsupported escape \\%c", e)
			}
			continue
		}
		sb.WriteByte(c)
	}
	lex := sb.String()
	// Datatype or language tag?
	if !p.eof() && p.peek() == '^' {
		p.advance()
		if err := p.expect('^'); err != nil {
			return rdf.Term{}, err
		}
		p.skipWS()
		dt, err := p.parseTerm()
		if err != nil {
			return rdf.Term{}, err
		}
		if !dt.IsIRI() {
			return rdf.Term{}, p.errf("datatype must be an IRI")
		}
		return rdf.TypedLit(lex, dt.Value), nil
	}
	if !p.eof() && p.peek() == '@' {
		p.advance()
		start := p.pos
		for !p.eof() && (isAlnum(p.peek()) || p.peek() == '-') {
			p.advance()
		}
		return rdf.LangLit(lex, p.src[start:p.pos]), nil
	}
	return rdf.Lit(lex), nil
}

func isAlnum(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

func (p *parser) parseBlank() (rdf.Term, error) {
	p.advance() // _
	if err := p.expect(':'); err != nil {
		return rdf.Term{}, err
	}
	start := p.pos
	for !p.eof() && isNameChar(p.peek()) {
		p.advance()
	}
	if p.pos == start {
		return rdf.Term{}, p.errf("empty blank node label")
	}
	return rdf.Blank(p.src[start:p.pos]), nil
}

func (p *parser) parseNumber() (rdf.Term, error) {
	start := p.pos
	if p.peek() == '+' || p.peek() == '-' {
		p.advance()
	}
	dots := 0
	for !p.eof() {
		c := p.peek()
		if c >= '0' && c <= '9' {
			p.advance()
			continue
		}
		if c == '.' {
			// a trailing '.' is the statement terminator, not a decimal
			// point, unless followed by a digit.
			if p.pos+1 < len(p.src) && p.src[p.pos+1] >= '0' && p.src[p.pos+1] <= '9' {
				dots++
				p.advance()
				continue
			}
		}
		if c == 'e' || c == 'E' {
			p.advance()
			if !p.eof() && (p.peek() == '+' || p.peek() == '-') {
				p.advance()
			}
			continue
		}
		break
	}
	lex := p.src[start:p.pos]
	if lex == "" || lex == "+" || lex == "-" {
		return rdf.Term{}, p.errf("malformed number")
	}
	if dots > 0 || strings.ContainsAny(lex, "eE") {
		return rdf.TypedLit(lex, rdf.XSDDouble), nil
	}
	return rdf.TypedLit(lex, rdf.XSDInteger), nil
}

func isNameChar(c byte) bool {
	return isAlnum(c) || c == '_' || c == '-' || c == '.'
}

func (p *parser) parsePrefixedOrKeyword() (rdf.Term, error) {
	start := p.pos
	for !p.eof() && (isNameChar(p.peek()) || p.peek() == ':') {
		// stop name at ':' boundary handled below; consume all for now
		p.advance()
	}
	tok := p.src[start:p.pos]
	// name characters may include a trailing '.' which is really the
	// statement terminator.
	for strings.HasSuffix(tok, ".") {
		tok = tok[:len(tok)-1]
		p.pos--
		p.col--
	}
	switch tok {
	case "true":
		return rdf.BoolLit(true), nil
	case "false":
		return rdf.BoolLit(false), nil
	case "":
		return rdf.Term{}, p.errf("unexpected character %q", string(p.peek()))
	}
	i := strings.Index(tok, ":")
	if i < 0 {
		return rdf.Term{}, p.errf("bare word %q is not a valid term", tok)
	}
	iri, ok := p.ds.Prefixes().Expand(tok)
	if !ok {
		return rdf.Term{}, p.errf("unknown prefix in %q", tok)
	}
	return rdf.IRI(iri), nil
}

// --- Serialization ---

// WriteGraph serializes a graph as Turtle using the given prefixes,
// grouping triples by subject with ';' separators.
func WriteGraph(g *rdf.Graph, pm *rdf.PrefixMap) string {
	var sb strings.Builder
	writePrefixes(&sb, pm)
	writeGraphBody(&sb, g, pm, "")
	return sb.String()
}

// WriteDataset serializes a dataset as TriG: the default graph at top
// level followed by one block per named graph.
func WriteDataset(ds *rdf.Dataset) string {
	pm := ds.Prefixes()
	var sb strings.Builder
	writePrefixes(&sb, pm)
	writeGraphBody(&sb, ds.Default(), pm, "")
	for _, name := range ds.GraphNames() {
		g, _ := ds.Lookup(name)
		fmt.Fprintf(&sb, "%s {\n", pm.CompactTerm(name))
		writeGraphBody(&sb, g, pm, "    ")
		sb.WriteString("}\n")
	}
	return sb.String()
}

func writePrefixes(sb *strings.Builder, pm *rdf.PrefixMap) {
	for _, pair := range pm.Pairs() {
		fmt.Fprintf(sb, "@prefix %s: <%s> .\n", pair[0], pair[1])
	}
	sb.WriteString("\n")
}

func writeGraphBody(sb *strings.Builder, g *rdf.Graph, pm *rdf.PrefixMap, indent string) {
	triples := g.Triples()
	bySubject := map[rdf.Term][]rdf.Triple{}
	var order []rdf.Term
	for _, t := range triples {
		if _, ok := bySubject[t.S]; !ok {
			order = append(order, t.S)
		}
		bySubject[t.S] = append(bySubject[t.S], t)
	}
	sort.Slice(order, func(i, j int) bool { return rdf.Compare(order[i], order[j]) < 0 })
	for _, s := range order {
		ts := bySubject[s]
		fmt.Fprintf(sb, "%s%s ", indent, pm.CompactTerm(s))
		for i, t := range ts {
			pred := pm.CompactTerm(t.P)
			if t.P.Value == rdf.RDFType {
				pred = "a"
			}
			if i > 0 {
				fmt.Fprintf(sb, " ;\n%s    ", indent)
			}
			fmt.Fprintf(sb, "%s %s", pred, pm.CompactTerm(t.O))
		}
		sb.WriteString(" .\n")
	}
}

// Normalize round-trips src through the parser and serializer, useful in
// tests to compare documents structurally.
func Normalize(src string) (string, error) {
	ds, err := ParseDataset(src)
	if err != nil {
		return "", err
	}
	return WriteDataset(ds), nil
}

// IsNameStart reports whether r can start a prefixed-name local part;
// exposed for the SPARQL lexer to share.
func IsNameStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}
