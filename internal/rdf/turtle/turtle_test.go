package turtle

import (
	"strings"
	"testing"

	"mdm/internal/rdf"
)

func TestParseBasicTriples(t *testing.T) {
	src := `
@prefix ex: <http://ex.org/> .
ex:alice ex:knows ex:bob .
<http://ex.org/bob> <http://ex.org/name> "Bob" .
`
	g, pm, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 2 {
		t.Fatalf("Len = %d, want 2", g.Len())
	}
	if !g.Has(rdf.T(rdf.IRI("http://ex.org/alice"), rdf.IRI("http://ex.org/knows"), rdf.IRI("http://ex.org/bob"))) {
		t.Error("missing prefixed triple")
	}
	if !g.Has(rdf.T(rdf.IRI("http://ex.org/bob"), rdf.IRI("http://ex.org/name"), rdf.Lit("Bob"))) {
		t.Error("missing full-IRI triple")
	}
	if iri, ok := pm.Expand("ex:x"); !ok || iri != "http://ex.org/x" {
		t.Errorf("prefix not recorded: %q, %v", iri, ok)
	}
}

func TestParseAKeywordAndLists(t *testing.T) {
	src := `
@prefix ex: <http://ex.org/> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
ex:Player a ex:Concept ;
    rdfs:label "Player" ;
    ex:hasFeature ex:name , ex:height .
`
	g, _, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 4 {
		t.Fatalf("Len = %d, want 4: %v", g.Len(), g.Triples())
	}
	if !g.Has(rdf.T(rdf.IRI("http://ex.org/Player"), rdf.IRI(rdf.RDFType), rdf.IRI("http://ex.org/Concept"))) {
		t.Error("'a' keyword not expanded to rdf:type")
	}
	if !g.Has(rdf.T(rdf.IRI("http://ex.org/Player"), rdf.IRI("http://ex.org/hasFeature"), rdf.IRI("http://ex.org/height"))) {
		t.Error("object list not parsed")
	}
}

func TestParseLiteralForms(t *testing.T) {
	src := `
@prefix ex: <http://ex.org/> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
ex:m ex:height 170.18 .
ex:m ex:weight 159 .
ex:m ex:left true .
ex:m ex:nick "Leo"@es .
ex:m ex:rating "94"^^xsd:integer .
ex:m ex:note "line\nbreak \"q\" A" .
`
	g, _, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	m := rdf.IRI("http://ex.org/m")
	checks := []struct {
		p string
		o rdf.Term
	}{
		{"height", rdf.TypedLit("170.18", rdf.XSDDouble)},
		{"weight", rdf.TypedLit("159", rdf.XSDInteger)},
		{"left", rdf.BoolLit(true)},
		{"nick", rdf.LangLit("Leo", "es")},
		{"rating", rdf.TypedLit("94", rdf.XSDInteger)},
		{"note", rdf.Lit("line\nbreak \"q\" A")},
	}
	for _, c := range checks {
		if !g.Has(rdf.T(m, rdf.IRI("http://ex.org/"+c.p), c.o)) {
			t.Errorf("missing %s -> %s; graph: %v", c.p, c.o, g.Triples())
		}
	}
}

func TestParseNegativeAndExponentNumbers(t *testing.T) {
	src := `@prefix ex: <http://ex.org/> .
ex:a ex:v -5 . ex:a ex:w +3 . ex:a ex:x 1.5e3 .`
	g, _, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Has(rdf.T(rdf.IRI("http://ex.org/a"), rdf.IRI("http://ex.org/v"), rdf.TypedLit("-5", rdf.XSDInteger))) {
		t.Error("negative integer missing")
	}
	if !g.Has(rdf.T(rdf.IRI("http://ex.org/a"), rdf.IRI("http://ex.org/x"), rdf.TypedLit("1.5e3", rdf.XSDDouble))) {
		t.Error("exponent double missing")
	}
}

func TestParseBlankNodes(t *testing.T) {
	src := `@prefix ex: <http://ex.org/> .
_:b1 ex:p ex:o .
ex:s ex:q _:b1 .`
	g, _, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Has(rdf.T(rdf.Blank("b1"), rdf.IRI("http://ex.org/p"), rdf.IRI("http://ex.org/o"))) {
		t.Error("blank subject missing")
	}
	if !g.Has(rdf.T(rdf.IRI("http://ex.org/s"), rdf.IRI("http://ex.org/q"), rdf.Blank("b1"))) {
		t.Error("blank object missing")
	}
}

func TestParseTriGNamedGraphs(t *testing.T) {
	src := `
@prefix ex: <http://ex.org/> .
ex:s ex:p "default" .
ex:g1 {
    ex:s ex:p "one" .
    ex:s ex:q "two" .
}
GRAPH ex:g2 { ex:s ex:p "three" . }
`
	ds, err := ParseDataset(src)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Default().Len() != 1 {
		t.Errorf("default len = %d", ds.Default().Len())
	}
	g1, ok := ds.Lookup(rdf.IRI("http://ex.org/g1"))
	if !ok || g1.Len() != 2 {
		t.Errorf("g1 = %v, %v", g1, ok)
	}
	g2, ok := ds.Lookup(rdf.IRI("http://ex.org/g2"))
	if !ok || g2.Len() != 1 {
		t.Errorf("g2 = %v, %v", g2, ok)
	}
}

func TestParseComments(t *testing.T) {
	src := `# leading comment
@prefix ex: <http://ex.org/> . # trailing
# between
ex:s ex:p ex:o . # after triple`
	g, _, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 1 {
		t.Errorf("Len = %d", g.Len())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"unknown prefix", `ex:s ex:p ex:o .`},
		{"unterminated iri", `<http://ex.org/s ex:p ex:o .`},
		{"unterminated literal", `@prefix ex: <http://e/> . ex:s ex:p "abc .`},
		{"missing dot", `@prefix ex: <http://e/> . ex:s ex:p ex:o`},
		{"literal subject", `@prefix ex: <http://e/> . "s" ex:p ex:o .`},
		{"unterminated graph", `@prefix ex: <http://e/> . ex:g { ex:s ex:p ex:o .`},
		{"bare word", `@prefix ex: <http://e/> . ex:s ex:p banana .`},
		{"dangling escape", `@prefix ex: <http://e/> . ex:s ex:p "a\`},
		{"bad unicode escape", `@prefix ex: <http://e/> . ex:s ex:p "\uZZZZ" .`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ParseDataset(c.src); err == nil {
				t.Errorf("expected error for %q", c.src)
			} else if !strings.Contains(err.Error(), "turtle: line") {
				t.Errorf("error lacks position info: %v", err)
			}
		})
	}
}

func TestWriteGraphRoundTrip(t *testing.T) {
	src := `
@prefix ex: <http://ex.org/> .
@prefix sc: <http://schema.org/> .
ex:Player a ex:Concept ;
    ex:hasFeature ex:name , ex:height .
sc:SportsTeam a ex:Concept .
ex:m ex:height 170.18 ;
    ex:nick "Leo"@es .
`
	g1, pm, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	out := WriteGraph(g1, pm)
	g2, _, err := Parse(out)
	if err != nil {
		t.Fatalf("reparse failed: %v\noutput:\n%s", err, out)
	}
	if !g1.Equal(g2) {
		t.Errorf("round trip not equal.\nfirst: %v\nsecond: %v\nserialized:\n%s", g1.Triples(), g2.Triples(), out)
	}
}

func TestWriteDatasetRoundTrip(t *testing.T) {
	src := `
@prefix ex: <http://ex.org/> .
ex:s ex:p "default" .
ex:g1 { ex:s ex:p "one" . ex:t ex:q 5 . }
ex:g2 { ex:s ex:p "two"@en . }
`
	ds1, err := ParseDataset(src)
	if err != nil {
		t.Fatal(err)
	}
	out := WriteDataset(ds1)
	ds2, err := ParseDataset(out)
	if err != nil {
		t.Fatalf("reparse failed: %v\noutput:\n%s", err, out)
	}
	if ds1.Len() != ds2.Len() {
		t.Fatalf("quad counts differ: %d vs %d\n%s", ds1.Len(), ds2.Len(), out)
	}
	for _, name := range ds1.GraphNames() {
		a, _ := ds1.Lookup(name)
		b, ok := ds2.Lookup(name)
		if !ok || !a.Equal(b) {
			t.Errorf("graph %v differs after round trip", name)
		}
	}
	if !ds1.Default().Equal(ds2.Default()) {
		t.Error("default graph differs after round trip")
	}
}

func TestNormalizeIdempotent(t *testing.T) {
	src := `@prefix ex: <http://ex.org/> .
ex:s ex:p ex:o . ex:g { ex:a ex:b ex:c . }`
	once, err := Normalize(src)
	if err != nil {
		t.Fatal(err)
	}
	twice, err := Normalize(once)
	if err != nil {
		t.Fatal(err)
	}
	if once != twice {
		t.Errorf("Normalize not idempotent:\n%s\n---\n%s", once, twice)
	}
}

func TestParseTrailingSemicolon(t *testing.T) {
	src := `@prefix ex: <http://e/> . ex:s ex:p ex:o ; .`
	g, _, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 1 {
		t.Errorf("Len = %d", g.Len())
	}
}

func TestParseEmptyBlankPropertyList(t *testing.T) {
	src := `@prefix ex: <http://e/> . ex:s ex:p [] .`
	g, _, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	ts := g.Match(rdf.IRI("http://e/s"), rdf.IRI("http://e/p"), rdf.Any)
	if len(ts) != 1 || !ts[0].O.IsBlank() {
		t.Errorf("anonymous blank not generated: %v", ts)
	}
}
