package relalg

import (
	"fmt"
	"strings"
)

// Pred is a selection predicate evaluated over a row within a schema.
type Pred interface {
	// Eval returns the truth value of the predicate. Comparisons
	// involving NULL are false (SQL-like three-valued logic collapsed to
	// two values).
	Eval(cols []string, row Row) bool
	String() string
	// Columns appends referenced column names to dst.
	Columns(dst map[string]bool)
}

// colIndexIn resolves a column name within a schema, returning -1 when
// absent (predicate then evaluates to false).
func colIndexIn(cols []string, name string) int {
	for i, c := range cols {
		if c == name {
			return i
		}
	}
	return -1
}

// Cmp compares a column against a constant or another column.
type Cmp struct {
	Op    string // = != < <= > >=
	Col   string
	Val   Value  // used when OtherCol == ""
	Other string // other column name; "" when comparing to Val
}

// Eval implements Pred.
func (c Cmp) Eval(cols []string, row Row) bool {
	i := colIndexIn(cols, c.Col)
	if i < 0 {
		return false
	}
	left := row[i]
	var right Value
	if c.Other != "" {
		j := colIndexIn(cols, c.Other)
		if j < 0 {
			return false
		}
		right = row[j]
	} else {
		right = c.Val
	}
	if left.IsNull() || right.IsNull() {
		return false
	}
	switch c.Op {
	case "=":
		return Equal(left, right)
	case "!=":
		return !Equal(left, right)
	}
	cmp := Compare(left, right)
	switch c.Op {
	case "<":
		return cmp < 0
	case "<=":
		return cmp <= 0
	case ">":
		return cmp > 0
	case ">=":
		return cmp >= 0
	}
	return false
}

// Columns implements Pred.
func (c Cmp) Columns(dst map[string]bool) {
	dst[c.Col] = true
	if c.Other != "" {
		dst[c.Other] = true
	}
}

func (c Cmp) String() string {
	if c.Other != "" {
		return fmt.Sprintf("%s %s %s", c.Col, c.Op, c.Other)
	}
	return fmt.Sprintf("%s %s %s", c.Col, c.Op, quoteVal(c.Val))
}

func quoteVal(v Value) string {
	if v.T == TypeString {
		return "'" + v.S + "'"
	}
	return v.Text()
}

// And conjoins predicates.
type And struct{ Preds []Pred }

// Eval implements Pred.
func (a And) Eval(cols []string, row Row) bool {
	for _, p := range a.Preds {
		if !p.Eval(cols, row) {
			return false
		}
	}
	return true
}

// Columns implements Pred.
func (a And) Columns(dst map[string]bool) {
	for _, p := range a.Preds {
		p.Columns(dst)
	}
}

func (a And) String() string {
	parts := make([]string, len(a.Preds))
	for i, p := range a.Preds {
		parts[i] = p.String()
	}
	return "(" + strings.Join(parts, " ∧ ") + ")"
}

// Or disjoins predicates.
type Or struct{ Preds []Pred }

// Eval implements Pred.
func (o Or) Eval(cols []string, row Row) bool {
	for _, p := range o.Preds {
		if p.Eval(cols, row) {
			return true
		}
	}
	return false
}

// Columns implements Pred.
func (o Or) Columns(dst map[string]bool) {
	for _, p := range o.Preds {
		p.Columns(dst)
	}
}

func (o Or) String() string {
	parts := make([]string, len(o.Preds))
	for i, p := range o.Preds {
		parts[i] = p.String()
	}
	return "(" + strings.Join(parts, " ∨ ") + ")"
}

// Not negates a predicate.
type Not struct{ P Pred }

// Eval implements Pred.
func (n Not) Eval(cols []string, row Row) bool { return !n.P.Eval(cols, row) }

// Columns implements Pred.
func (n Not) Columns(dst map[string]bool) { n.P.Columns(dst) }

func (n Not) String() string { return "¬" + n.P.String() }

// NotNull is satisfied when the column is non-NULL.
type NotNull struct{ Col string }

// Eval implements Pred.
func (n NotNull) Eval(cols []string, row Row) bool {
	i := colIndexIn(cols, n.Col)
	return i >= 0 && !row[i].IsNull()
}

// Columns implements Pred.
func (n NotNull) Columns(dst map[string]bool) { dst[n.Col] = true }

func (n NotNull) String() string { return n.Col + " IS NOT NULL" }
