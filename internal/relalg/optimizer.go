package relalg

// Optimize rewrites a plan for cheaper execution. The two rules are the
// classical ones that matter for MDM's generated plans:
//
//  1. projection push-down: columns not needed upstream are pruned as
//     early as possible, shrinking join widths;
//  2. projection collapsing: Project(Project(x)) becomes Project(x).
//
// Optimize never changes the result relation (schema or rows); the
// ablation bench BenchmarkOptimizerAblation quantifies its effect.
func Optimize(p Plan) Plan {
	return pushDown(p, p.Columns())
}

// pushDown rewrites p so that it outputs exactly `needed` (a subset of
// p.Columns(), in p's column order when possible).
func pushDown(p Plan, needed []string) Plan {
	switch n := p.(type) {
	case *Project:
		// Collapse chains: push the outer projection through.
		inner := pushDown(n.Child, needed)
		if sameCols(inner.Columns(), needed) {
			return inner
		}
		return NewProject(inner, needed...)

	case *Select:
		// The predicate's columns must survive below the selection.
		req := union(needed, predCols(n.Pred))
		child := pushDown(n.Child, orderLike(n.Child.Columns(), req))
		out := Plan(NewSelect(child, n.Pred))
		if !sameCols(out.Columns(), needed) {
			out = NewProject(out, needed...)
		}
		return out

	case *Join:
		var joinCols []string
		for _, pair := range n.On {
			joinCols = append(joinCols, pair[0], pair[1])
		}
		req := union(needed, joinCols)
		lneed := intersectOrdered(n.L.Columns(), req)
		rneed := intersectOrdered(n.R.Columns(), req)
		l := pushDown(n.L, lneed)
		r := pushDown(n.R, rneed)
		out := Plan(NewJoin(l, r, n.On))
		if !sameCols(out.Columns(), needed) {
			out = NewProject(out, needed...)
		}
		return out

	case *Rename:
		// Translate needed names back through the mapping.
		back := map[string]string{}
		for _, m := range n.Mapping {
			back[m[1]] = m[0]
		}
		childNeed := make([]string, len(needed))
		var mapping [][2]string
		for i, c := range needed {
			if orig, ok := back[c]; ok {
				childNeed[i] = orig
				mapping = append(mapping, [2]string{orig, c})
			} else {
				childNeed[i] = c
			}
		}
		child := pushDown(n.Child, childNeed)
		if len(mapping) == 0 {
			return child
		}
		return NewRename(child, mapping)

	case *Union:
		plans := make([]Plan, len(n.Plans))
		for i, c := range n.Plans {
			plans[i] = pushDown(c, needed)
			// Union requires identical schemas; enforce column order.
			if !sameCols(plans[i].Columns(), needed) {
				plans[i] = NewProject(plans[i], needed...)
			}
		}
		return NewUnion(plans...)

	case *Distinct:
		return NewDistinct(pushDown(n.Child, needed))

	case *Limit:
		return NewLimit(pushDown(n.Child, needed), n.N)

	case *Scan:
		if sameCols(n.Columns(), needed) {
			return n
		}
		return NewProject(n, needed...)

	default:
		return p
	}
}

func predCols(p Pred) []string {
	set := map[string]bool{}
	p.Columns(set)
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	return out
}

func sameCols(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// union returns base plus any extras not already present, preserving
// base order.
func union(base, extras []string) []string {
	have := map[string]bool{}
	out := append([]string(nil), base...)
	for _, c := range base {
		have[c] = true
	}
	for _, c := range extras {
		if !have[c] {
			have[c] = true
			out = append(out, c)
		}
	}
	return out
}

// intersectOrdered returns the elements of cols that appear in want,
// in cols order.
func intersectOrdered(cols, want []string) []string {
	w := map[string]bool{}
	for _, c := range want {
		w[c] = true
	}
	var out []string
	for _, c := range cols {
		if w[c] {
			out = append(out, c)
		}
	}
	return out
}

// orderLike returns want reordered to follow ref's column order; names
// absent from ref keep their relative order at the end.
func orderLike(ref, want []string) []string {
	w := map[string]bool{}
	for _, c := range want {
		w[c] = true
	}
	var out []string
	for _, c := range ref {
		if w[c] {
			out = append(out, c)
			delete(w, c)
		}
	}
	for _, c := range want {
		if w[c] {
			out = append(out, c)
		}
	}
	return out
}

// PlanWidth returns the maximum number of columns flowing through any
// operator of the plan — a proxy for intermediate-result size used by
// the optimizer ablation bench.
func PlanWidth(p Plan) int {
	w := len(p.Columns())
	for _, c := range p.Children() {
		if cw := PlanWidth(c); cw > w {
			w = cw
		}
	}
	return w
}
