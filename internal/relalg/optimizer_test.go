package relalg

import (
	"context"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func optPlanFixture() Plan {
	// π[teamName,pName]( w1 ⋈ ρ(w2) ) with a filter.
	return NewProject(
		NewSelect(
			NewJoin(NewScan(w1()),
				NewRename(NewScan(w2()), [][2]string{{"name", "teamName"}}),
				[][2]string{{"teamId", "id"}}),
			Cmp{Op: ">", Col: "height", Val: Float(0)}),
		"teamName", "pName")
}

func TestOptimizePreservesResult(t *testing.T) {
	plan := optPlanFixture()
	opt := Optimize(plan)
	r1, err := plan.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := opt.Execute(context.Background())
	if err != nil {
		t.Fatalf("optimized plan failed: %v\n%s", err, PrintTree(opt))
	}
	if !r1.Equal(r2) {
		t.Fatalf("results differ.\noriginal:\n%s\noptimized:\n%s", r1.Table(), r2.Table())
	}
}

func TestOptimizeShrinksWidth(t *testing.T) {
	plan := optPlanFixture()
	before := PlanWidth(plan)
	after := PlanWidth(Optimize(plan))
	if after >= before {
		t.Errorf("PlanWidth before = %d, after = %d; expected reduction", before, after)
	}
}

func TestOptimizeCollapsesProjectChains(t *testing.T) {
	plan := NewProject(NewProject(NewProject(NewScan(w1()), "pName", "height"), "pName"), "pName")
	opt := Optimize(plan)
	// Expect exactly one Project above the Scan.
	depth := 0
	for p := opt; ; {
		if _, ok := p.(*Project); ok {
			depth++
		}
		cs := p.Children()
		if len(cs) == 0 {
			break
		}
		p = cs[0]
	}
	if depth != 1 {
		t.Errorf("project chain depth = %d, want 1\n%s", depth, PrintTree(opt))
	}
	r, err := opt.Execute(context.Background())
	if err != nil || len(r.Cols) != 1 || r.Cols[0] != "pName" {
		t.Errorf("collapsed plan output = %v, %v", r, err)
	}
}

func TestOptimizeKeepsPredicateColumns(t *testing.T) {
	// The filter column (height) is not projected; push-down must keep it
	// below the selection.
	plan := NewProject(
		NewSelect(NewScan(w1()), Cmp{Op: ">", Col: "height", Val: Float(180)}),
		"pName")
	opt := Optimize(plan)
	r, err := opt.Execute(context.Background())
	if err != nil {
		t.Fatalf("%v\n%s", err, PrintTree(opt))
	}
	if r.Len() != 2 || len(r.Cols) != 1 {
		t.Fatalf("rows=%d cols=%v", r.Len(), r.Cols)
	}
}

func TestOptimizeUnionBranches(t *testing.T) {
	u := NewProject(NewUnion(
		NewProject(NewScan(w1()), "id", "pName", "height"),
		NewRename(NewProject(NewScan(w2()), "id", "name", "shortName"),
			[][2]string{{"name", "pName"}, {"shortName", "height"}}),
	), "pName")
	opt := Optimize(u)
	r1, err := u.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := opt.Execute(context.Background())
	if err != nil {
		t.Fatalf("%v\n%s", err, PrintTree(opt))
	}
	if !r1.Equal(r2) {
		t.Fatalf("union optimize changed result:\n%s\nvs\n%s", r1.Table(), r2.Table())
	}
}

func TestOptimizeRenameDropsUnusedMapping(t *testing.T) {
	plan := NewProject(
		NewRename(NewScan(w2()), [][2]string{{"name", "teamName"}, {"shortName", "sn"}}),
		"id")
	opt := Optimize(plan)
	if strings.Contains(opt.Algebra(), "ρ") {
		t.Errorf("rename should vanish when no renamed column survives: %s", opt.Algebra())
	}
	r, err := opt.Execute(context.Background())
	if err != nil || len(r.Cols) != 1 || r.Cols[0] != "id" {
		t.Errorf("output = %v, %v", r.Cols, err)
	}
}

// randomPlan builds a random but well-formed plan over w1/w2 for the
// property test that Optimize preserves semantics.
func randomPlan(r *rand.Rand) Plan {
	base := Plan(NewJoin(NewScan(w1()),
		NewRename(NewScan(w2()), [][2]string{{"name", "teamName"}}),
		[][2]string{{"teamId", "id"}}))
	if r.Intn(2) == 0 {
		preds := []Pred{
			Cmp{Op: ">", Col: "height", Val: Float(float64(r.Intn(200)))},
			Cmp{Op: "=", Col: "foot", Val: String([]string{"left", "right"}[r.Intn(2)])},
			Cmp{Op: "<=", Col: "score", Val: Int(int64(r.Intn(100)))},
		}
		base = NewSelect(base, preds[r.Intn(len(preds))])
	}
	cols := [][]string{
		{"pName"},
		{"teamName", "pName"},
		{"pName", "height", "teamName"},
		{"id", "pName", "teamId", "teamName"},
	}
	base = NewProject(base, cols[r.Intn(len(cols))]...)
	if r.Intn(3) == 0 {
		base = NewDistinct(base)
	}
	if r.Intn(3) == 0 {
		base = NewLimit(base, 1+r.Intn(5))
	}
	return base
}

func TestPropOptimizePreservesSemantics(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		plan := randomPlan(r)
		orig, err1 := plan.Execute(context.Background())
		opt, err2 := Optimize(plan).Execute(context.Background())
		if err1 != nil || err2 != nil {
			return false
		}
		// Limit makes row choice nondeterministic only if upstream order
		// differs; our executor is deterministic, so exact equality holds.
		return orig.Equal(opt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropProjectIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randomPlan(r)
		cols := p.Columns()
		once, err1 := NewProject(p, cols...).Execute(context.Background())
		twice, err2 := NewProject(NewProject(p, cols...), cols...).Execute(context.Background())
		if err1 != nil || err2 != nil {
			return false
		}
		return once.Equal(twice)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropUnionCommutativeUpToOrder(t *testing.T) {
	a := NewProject(NewScan(w1()), "id")
	b := NewProject(NewScan(w2()), "id")
	r1, err := NewUnion(a, b).Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewUnion(b, a).Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Equal(r2) {
		t.Error("union not commutative as multiset")
	}
}

func TestPropJoinCommutativeOnRowCount(t *testing.T) {
	j1 := NewJoin(NewScan(w1()), NewScan(w2()), [][2]string{{"teamId", "id"}})
	j2 := NewJoin(NewScan(w2()), NewScan(w1()), [][2]string{{"id", "teamId"}})
	r1, err := j1.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := j2.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if r1.Len() != r2.Len() {
		t.Errorf("join row counts differ: %d vs %d", r1.Len(), r2.Len())
	}
}
