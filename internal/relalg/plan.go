package relalg

import (
	"context"
	"fmt"
	"strings"
)

// RowSource produces tuples; wrappers implement it. A RowSource is the
// leaf of every plan (the paper's "wrapper" in the mediator/wrapper
// architecture).
type RowSource interface {
	// Name identifies the source (wrapper name) in plan printouts.
	Name() string
	// Columns is the source's output schema (the wrapper signature
	// attributes).
	Columns() []string
	// Fetch materializes the source's rows.
	Fetch(ctx context.Context) (*Relation, error)
}

// Plan is a relational algebra operator tree.
type Plan interface {
	// Columns is the output schema of the operator.
	Columns() []string
	// Execute materializes the operator's result.
	Execute(ctx context.Context) (*Relation, error)
	// Algebra renders the subtree as a compact algebra expression using
	// π, σ, ⋈, ∪, ρ, δ — the notation MDM shows analysts (Figure 8).
	Algebra() string
	// Children returns the operator's inputs.
	Children() []Plan
}

// --- Scan ---

// Scan reads all rows from a RowSource.
type Scan struct {
	Src RowSource
}

// NewScan returns a Scan over src.
func NewScan(src RowSource) *Scan { return &Scan{Src: src} }

// Columns implements Plan.
func (s *Scan) Columns() []string { return s.Src.Columns() }

// Children implements Plan.
func (s *Scan) Children() []Plan { return nil }

// Algebra implements Plan.
func (s *Scan) Algebra() string { return s.Src.Name() }

// Execute implements Plan.
func (s *Scan) Execute(ctx context.Context) (*Relation, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rel, err := s.Src.Fetch(ctx)
	if err != nil {
		return nil, fmt.Errorf("relalg: scan %s: %w", s.Src.Name(), err)
	}
	// Guard the engine against sources that misreport their schema.
	if len(rel.Cols) != len(s.Src.Columns()) {
		return nil, fmt.Errorf("relalg: scan %s: source returned %d columns, declared %d",
			s.Src.Name(), len(rel.Cols), len(s.Src.Columns()))
	}
	return rel, nil
}

// --- Project ---

// Project keeps only the named columns, in order.
type Project struct {
	Child Plan
	Cols  []string
}

// NewProject returns a projection of child onto cols.
func NewProject(child Plan, cols ...string) *Project {
	return &Project{Child: child, Cols: append([]string(nil), cols...)}
}

// Columns implements Plan.
func (p *Project) Columns() []string { return p.Cols }

// Children implements Plan.
func (p *Project) Children() []Plan { return []Plan{p.Child} }

// Algebra implements Plan.
func (p *Project) Algebra() string {
	return fmt.Sprintf("π[%s](%s)", strings.Join(p.Cols, ","), p.Child.Algebra())
}

// Execute implements Plan.
func (p *Project) Execute(ctx context.Context) (*Relation, error) {
	in, err := p.Child.Execute(ctx)
	if err != nil {
		return nil, err
	}
	return in.Project(p.Cols...)
}

// --- Select ---

// Select filters rows by a predicate.
type Select struct {
	Child Plan
	Pred  Pred
}

// NewSelect returns a selection of child by pred.
func NewSelect(child Plan, pred Pred) *Select { return &Select{Child: child, Pred: pred} }

// Columns implements Plan.
func (s *Select) Columns() []string { return s.Child.Columns() }

// Children implements Plan.
func (s *Select) Children() []Plan { return []Plan{s.Child} }

// Algebra implements Plan.
func (s *Select) Algebra() string {
	return fmt.Sprintf("σ[%s](%s)", s.Pred, s.Child.Algebra())
}

// Execute implements Plan.
func (s *Select) Execute(ctx context.Context) (*Relation, error) {
	in, err := s.Child.Execute(ctx)
	if err != nil {
		return nil, err
	}
	out := NewRelation(in.Cols...)
	for i, row := range in.Rows {
		if i&1023 == 1023 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if s.Pred.Eval(in.Cols, row) {
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

// --- Rename ---

// Rename maps column names; columns not mentioned keep their name. MDM
// uses it to rename wrapper attributes to global-graph feature names
// (resolving the owl:sameAs part of a LAV mapping).
type Rename struct {
	Child   Plan
	Mapping [][2]string // {old, new} pairs
}

// NewRename returns a renaming of child.
func NewRename(child Plan, mapping [][2]string) *Rename {
	return &Rename{Child: child, Mapping: mapping}
}

// Columns implements Plan.
func (r *Rename) Columns() []string {
	cols := append([]string(nil), r.Child.Columns()...)
	for i, c := range cols {
		for _, m := range r.Mapping {
			if c == m[0] {
				cols[i] = m[1]
				break
			}
		}
	}
	return cols
}

// Children implements Plan.
func (r *Rename) Children() []Plan { return []Plan{r.Child} }

// Algebra implements Plan.
func (r *Rename) Algebra() string {
	parts := make([]string, len(r.Mapping))
	for i, m := range r.Mapping {
		parts[i] = m[0] + "→" + m[1]
	}
	return fmt.Sprintf("ρ[%s](%s)", strings.Join(parts, ","), r.Child.Algebra())
}

// Execute implements Plan.
func (r *Rename) Execute(ctx context.Context) (*Relation, error) {
	in, err := r.Child.Execute(ctx)
	if err != nil {
		return nil, err
	}
	return &Relation{Cols: r.Columns(), Rows: in.Rows}, nil
}

// --- Join ---

// Join is an equi-join on column pairs. The output schema is the left
// schema followed by the right schema minus the right join columns
// (which are redundant after the join).
type Join struct {
	L, R Plan
	On   [][2]string // {leftCol, rightCol}
}

// NewJoin returns an equi-join of l and r on the given column pairs.
func NewJoin(l, r Plan, on [][2]string) *Join { return &Join{L: l, R: r, On: on} }

// NewNaturalJoin joins on all same-named columns. It panics if there are
// none (a cross product is almost certainly a rewriting bug).
func NewNaturalJoin(l, r Plan) *Join {
	var on [][2]string
	rcols := map[string]bool{}
	for _, c := range r.Columns() {
		rcols[c] = true
	}
	for _, c := range l.Columns() {
		if rcols[c] {
			on = append(on, [2]string{c, c})
		}
	}
	if len(on) == 0 {
		panic("relalg: natural join with no shared columns")
	}
	return NewJoin(l, r, on)
}

// Columns implements Plan.
func (j *Join) Columns() []string {
	skip := map[string]bool{}
	for _, p := range j.On {
		skip[p[1]] = true
	}
	out := append([]string(nil), j.L.Columns()...)
	have := map[string]bool{}
	for _, c := range out {
		have[c] = true
	}
	for _, c := range j.R.Columns() {
		if skip[c] || have[c] {
			continue
		}
		have[c] = true
		out = append(out, c)
	}
	return out
}

// Children implements Plan.
func (j *Join) Children() []Plan { return []Plan{j.L, j.R} }

// Algebra implements Plan.
func (j *Join) Algebra() string {
	conds := make([]string, len(j.On))
	for i, p := range j.On {
		conds[i] = p[0] + "=" + p[1]
	}
	return fmt.Sprintf("(%s ⋈[%s] %s)", j.L.Algebra(), strings.Join(conds, ","), j.R.Algebra())
}

// Execute implements Plan: hash join, building on the smaller input.
func (j *Join) Execute(ctx context.Context) (*Relation, error) {
	lrel, err := j.L.Execute(ctx)
	if err != nil {
		return nil, err
	}
	rrel, err := j.R.Execute(ctx)
	if err != nil {
		return nil, err
	}
	lIdx := make([]int, len(j.On))
	rIdx := make([]int, len(j.On))
	for i, p := range j.On {
		lIdx[i] = lrel.ColIndex(p[0])
		rIdx[i] = rrel.ColIndex(p[1])
		if lIdx[i] < 0 {
			return nil, fmt.Errorf("relalg: join column %q missing on left (have %v)", p[0], lrel.Cols)
		}
		if rIdx[i] < 0 {
			return nil, fmt.Errorf("relalg: join column %q missing on right (have %v)", p[1], rrel.Cols)
		}
	}

	// Right columns to emit (skip join duplicates and name collisions).
	skip := map[int]bool{}
	for _, ri := range rIdx {
		skip[ri] = true
	}
	lhave := map[string]bool{}
	for _, c := range lrel.Cols {
		lhave[c] = true
	}
	var rEmit []int
	for i, c := range rrel.Cols {
		if !skip[i] && !lhave[c] {
			rEmit = append(rEmit, i)
		}
	}

	out := &Relation{Cols: j.Columns()}

	key := func(row Row, idx []int) string {
		var sb strings.Builder
		for _, i := range idx {
			if row[i].IsNull() {
				return "" // NULL never joins
			}
			sb.WriteString(row[i].Key())
			sb.WriteByte('\x01')
		}
		return sb.String()
	}

	// Build on the right side.
	build := map[string][]Row{}
	for i, rrow := range rrel.Rows {
		if i&1023 == 1023 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		k := key(rrow, rIdx)
		if k == "" {
			continue
		}
		build[k] = append(build[k], rrow)
	}
	// The probe loop can multiply rows, so poll ctx on emitted-row count
	// (not input count): a canceled query (dropped REST client, timeout)
	// stops instead of materializing, even on skewed joins.
	emitted := 0
	for _, lrow := range lrel.Rows {
		k := key(lrow, lIdx)
		if k == "" {
			continue
		}
		for _, rrow := range build[k] {
			if emitted&1023 == 1023 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			emitted++
			nr := make(Row, 0, len(out.Cols))
			nr = append(nr, lrow...)
			for _, i := range rEmit {
				nr = append(nr, rrow[i])
			}
			out.Rows = append(out.Rows, nr)
		}
	}
	return out, nil
}

// --- Union ---

// Union concatenates plans with identical schemas. MDM's rewriting emits
// one conjunctive query per wrapper combination and unions them — this
// is where multiple schema versions of a source meet (paper §3,
// "Governance of evolution").
type Union struct {
	Plans []Plan
}

// NewUnion returns the union of the given plans.
func NewUnion(plans ...Plan) *Union { return &Union{Plans: plans} }

// Columns implements Plan.
func (u *Union) Columns() []string {
	if len(u.Plans) == 0 {
		return nil
	}
	return u.Plans[0].Columns()
}

// Children implements Plan.
func (u *Union) Children() []Plan { return u.Plans }

// Algebra implements Plan.
func (u *Union) Algebra() string {
	parts := make([]string, len(u.Plans))
	for i, p := range u.Plans {
		parts[i] = p.Algebra()
	}
	return "(" + strings.Join(parts, " ∪ ") + ")"
}

// Execute implements Plan.
func (u *Union) Execute(ctx context.Context) (*Relation, error) {
	if len(u.Plans) == 0 {
		return NewRelation(), nil
	}
	first, err := u.Plans[0].Execute(ctx)
	if err != nil {
		return nil, err
	}
	out := &Relation{Cols: first.Cols, Rows: first.Rows}
	for _, p := range u.Plans[1:] {
		rel, err := p.Execute(ctx)
		if err != nil {
			return nil, err
		}
		if len(rel.Cols) != len(out.Cols) {
			return nil, fmt.Errorf("relalg: union schema mismatch: %v vs %v", out.Cols, rel.Cols)
		}
		for i := range rel.Cols {
			if rel.Cols[i] != out.Cols[i] {
				return nil, fmt.Errorf("relalg: union schema mismatch: %v vs %v", out.Cols, rel.Cols)
			}
		}
		out.Rows = append(out.Rows, rel.Rows...)
	}
	return out, nil
}

// --- Distinct ---

// Distinct removes duplicate rows.
type Distinct struct{ Child Plan }

// NewDistinct returns a duplicate-eliminating wrapper of child.
func NewDistinct(child Plan) *Distinct { return &Distinct{Child: child} }

// Columns implements Plan.
func (d *Distinct) Columns() []string { return d.Child.Columns() }

// Children implements Plan.
func (d *Distinct) Children() []Plan { return []Plan{d.Child} }

// Algebra implements Plan.
func (d *Distinct) Algebra() string { return "δ(" + d.Child.Algebra() + ")" }

// Execute implements Plan.
func (d *Distinct) Execute(ctx context.Context) (*Relation, error) {
	in, err := d.Child.Execute(ctx)
	if err != nil {
		return nil, err
	}
	return in.Distinct(), nil
}

// --- Limit ---

// Limit truncates the result to N rows.
type Limit struct {
	Child Plan
	N     int
}

// NewLimit returns a truncating wrapper of child.
func NewLimit(child Plan, n int) *Limit { return &Limit{Child: child, N: n} }

// Columns implements Plan.
func (l *Limit) Columns() []string { return l.Child.Columns() }

// Children implements Plan.
func (l *Limit) Children() []Plan { return []Plan{l.Child} }

// Algebra implements Plan.
func (l *Limit) Algebra() string { return fmt.Sprintf("limit[%d](%s)", l.N, l.Child.Algebra()) }

// Execute implements Plan.
func (l *Limit) Execute(ctx context.Context) (*Relation, error) {
	in, err := l.Child.Execute(ctx)
	if err != nil {
		return nil, err
	}
	// Never mutate the child's relation: sources may return shared state.
	out := &Relation{Cols: in.Cols, Rows: in.Rows}
	if l.N < len(out.Rows) {
		out.Rows = out.Rows[:l.N:l.N]
	}
	return out, nil
}

// PrintTree renders the plan as an indented operator tree.
func PrintTree(p Plan) string {
	var sb strings.Builder
	printTree(&sb, p, 0)
	return sb.String()
}

func printTree(sb *strings.Builder, p Plan, depth int) {
	indent := strings.Repeat("  ", depth)
	switch n := p.(type) {
	case *Scan:
		fmt.Fprintf(sb, "%sScan(%s)[%s]\n", indent, n.Src.Name(), strings.Join(n.Columns(), ","))
	case *Project:
		fmt.Fprintf(sb, "%sProject[%s]\n", indent, strings.Join(n.Cols, ","))
	case *Select:
		fmt.Fprintf(sb, "%sSelect[%s]\n", indent, n.Pred)
	case *Rename:
		fmt.Fprintf(sb, "%sRename%v\n", indent, n.Mapping)
	case *Join:
		fmt.Fprintf(sb, "%sJoin%v\n", indent, n.On)
	case *Union:
		fmt.Fprintf(sb, "%sUnion(%d branches)\n", indent, len(n.Plans))
	case *Distinct:
		fmt.Fprintf(sb, "%sDistinct\n", indent)
	case *Limit:
		fmt.Fprintf(sb, "%sLimit[%d]\n", indent, n.N)
	default:
		fmt.Fprintf(sb, "%s%T\n", indent, p)
	}
	for _, c := range p.Children() {
		printTree(sb, c, depth+1)
	}
}

// MemSource is an in-memory RowSource, useful for tests and examples.
type MemSource struct {
	SrcName string
	Rel     *Relation
}

// NewMemSource wraps a relation as a RowSource.
func NewMemSource(name string, rel *Relation) *MemSource {
	return &MemSource{SrcName: name, Rel: rel}
}

// Name implements RowSource.
func (m *MemSource) Name() string { return m.SrcName }

// Columns implements RowSource.
func (m *MemSource) Columns() []string { return m.Rel.Cols }

// Fetch implements RowSource.
func (m *MemSource) Fetch(context.Context) (*Relation, error) { return m.Rel, nil }
