package relalg

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// players/teams fixtures mirroring the paper's wrappers w1 and w2.
func w1() *MemSource {
	rel := NewRelation("id", "pName", "height", "weight", "score", "foot", "teamId")
	rel.MustAppend(Row{Int(6176), String("Lionel Messi"), Float(170.18), Int(159), Int(94), String("left"), Int(25)})
	rel.MustAppend(Row{Int(7011), String("Robert Lewandowski"), Float(184.0), Int(176), Int(91), String("right"), Int(27)})
	rel.MustAppend(Row{Int(8123), String("Zlatan Ibrahimovic"), Float(195.0), Int(209), Int(90), String("right"), Int(31)})
	return NewMemSource("w1", rel)
}

func w2() *MemSource {
	rel := NewRelation("id", "name", "shortName")
	rel.MustAppend(Row{Int(25), String("FC Barcelona"), String("FCB")})
	rel.MustAppend(Row{Int(27), String("Bayern Munich"), String("FCB")})
	rel.MustAppend(Row{Int(31), String("Manchester United"), String("MU")})
	rel.MustAppend(Row{Int(99), String("Orphan FC"), String("OFC")})
	return NewMemSource("w2", rel)
}

func exec(t *testing.T, p Plan) *Relation {
	t.Helper()
	rel, err := p.Execute(context.Background())
	if err != nil {
		t.Fatalf("execute: %v\nplan:\n%s", err, PrintTree(p))
	}
	return rel
}

func TestScan(t *testing.T) {
	rel := exec(t, NewScan(w1()))
	if rel.Len() != 3 || len(rel.Cols) != 7 {
		t.Fatalf("scan = %dx%d", rel.Len(), len(rel.Cols))
	}
}

func TestScanSchemaMismatchDetected(t *testing.T) {
	bad := &MemSource{SrcName: "bad", Rel: NewRelation("a", "b")}
	s := &Scan{Src: &lyingSource{bad}}
	if _, err := s.Execute(context.Background()); err == nil {
		t.Fatal("schema mismatch not detected")
	}
}

// lyingSource declares 3 columns but returns 2.
type lyingSource struct{ inner *MemSource }

func (l *lyingSource) Name() string      { return l.inner.Name() }
func (l *lyingSource) Columns() []string { return []string{"a", "b", "c"} }
func (l *lyingSource) Fetch(ctx context.Context) (*Relation, error) {
	return l.inner.Fetch(ctx)
}

func TestProject(t *testing.T) {
	rel := exec(t, NewProject(NewScan(w1()), "pName", "height"))
	if len(rel.Cols) != 2 || rel.Cols[0] != "pName" {
		t.Fatalf("cols = %v", rel.Cols)
	}
	if rel.Rows[0][0].S != "Lionel Messi" {
		t.Errorf("row0 = %v", rel.Rows[0])
	}
	if _, err := NewProject(NewScan(w1()), "nope").Execute(context.Background()); err == nil {
		t.Error("unknown column should fail")
	}
}

func TestSelectPredicates(t *testing.T) {
	p := NewSelect(NewScan(w1()), Cmp{Op: ">", Col: "height", Val: Float(180)})
	rel := exec(t, p)
	if rel.Len() != 2 {
		t.Fatalf("select > 180 = %d rows", rel.Len())
	}
	p2 := NewSelect(NewScan(w1()), And{Preds: []Pred{
		Cmp{Op: ">", Col: "height", Val: Float(180)},
		Cmp{Op: "=", Col: "foot", Val: String("right")},
	}})
	if got := exec(t, p2).Len(); got != 2 {
		t.Fatalf("and = %d", got)
	}
	p3 := NewSelect(NewScan(w1()), Or{Preds: []Pred{
		Cmp{Op: "=", Col: "pName", Val: String("Lionel Messi")},
		Cmp{Op: ">=", Col: "score", Val: Int(91)},
	}})
	if got := exec(t, p3).Len(); got != 2 {
		t.Fatalf("or = %d", got)
	}
	p4 := NewSelect(NewScan(w1()), Not{P: Cmp{Op: "=", Col: "foot", Val: String("left")}})
	if got := exec(t, p4).Len(); got != 2 {
		t.Fatalf("not = %d", got)
	}
	// Column-to-column comparison.
	p5 := NewSelect(NewScan(w1()), Cmp{Op: "<", Col: "weight", Other: "score"})
	if got := exec(t, p5).Len(); got != 0 {
		t.Fatalf("col cmp = %d", got)
	}
	// Unknown column: predicate is false, not an error.
	p6 := NewSelect(NewScan(w1()), Cmp{Op: "=", Col: "ghost", Val: Int(1)})
	if got := exec(t, p6).Len(); got != 0 {
		t.Fatalf("ghost col = %d", got)
	}
}

func TestNotNullPredicate(t *testing.T) {
	rel := NewRelation("a")
	rel.MustAppend(Row{Int(1)})
	rel.MustAppend(Row{Null()})
	p := NewSelect(NewScan(NewMemSource("m", rel)), NotNull{Col: "a"})
	if got := exec(t, p).Len(); got != 1 {
		t.Fatalf("NotNull = %d", got)
	}
}

func TestRename(t *testing.T) {
	p := NewRename(NewScan(w2()), [][2]string{{"name", "teamName"}, {"id", "teamId"}})
	rel := exec(t, p)
	want := []string{"teamId", "teamName", "shortName"}
	for i, c := range want {
		if rel.Cols[i] != c {
			t.Fatalf("cols = %v, want %v", rel.Cols, want)
		}
	}
	if rel.Len() != 4 {
		t.Fatalf("rows lost in rename: %d", rel.Len())
	}
}

func TestJoinBasicAndKeySemantics(t *testing.T) {
	j := NewJoin(NewScan(w1()), NewScan(w2()), [][2]string{{"teamId", "id"}})
	rel := exec(t, j)
	if rel.Len() != 3 {
		t.Fatalf("join rows = %d, want 3 (orphan team drops)", rel.Len())
	}
	// Output schema: left cols + right minus join col (name collisions skipped).
	wantCols := []string{"id", "pName", "height", "weight", "score", "foot", "teamId", "name", "shortName"}
	if strings.Join(rel.Cols, ",") != strings.Join(wantCols, ",") {
		t.Fatalf("join cols = %v", rel.Cols)
	}
	// Verify the actual pairing.
	rel.Sort()
	byPlayer := map[string]string{}
	pi, ni := rel.ColIndex("pName"), rel.ColIndex("name")
	for _, row := range rel.Rows {
		byPlayer[row[pi].S] = row[ni].S
	}
	if byPlayer["Lionel Messi"] != "FC Barcelona" || byPlayer["Zlatan Ibrahimovic"] != "Manchester United" {
		t.Errorf("pairings = %v", byPlayer)
	}
}

func TestJoinNullNeverMatches(t *testing.T) {
	l := NewRelation("k", "v")
	l.MustAppend(Row{Null(), String("l1")})
	l.MustAppend(Row{Int(1), String("l2")})
	r := NewRelation("k2", "w")
	r.MustAppend(Row{Null(), String("r1")})
	r.MustAppend(Row{Int(1), String("r2")})
	j := NewJoin(NewScan(NewMemSource("l", l)), NewScan(NewMemSource("r", r)), [][2]string{{"k", "k2"}})
	rel := exec(t, j)
	if rel.Len() != 1 {
		t.Fatalf("null join rows = %d, want 1", rel.Len())
	}
}

func TestJoinIntFloatCoercion(t *testing.T) {
	l := NewRelation("k")
	l.MustAppend(Row{Int(25)})
	r := NewRelation("k2")
	r.MustAppend(Row{Float(25.0)})
	j := NewJoin(NewScan(NewMemSource("l", l)), NewScan(NewMemSource("r", r)), [][2]string{{"k", "k2"}})
	if got := exec(t, j).Len(); got != 1 {
		t.Fatalf("int/float join = %d rows", got)
	}
}

func TestJoinMissingColumnError(t *testing.T) {
	j := NewJoin(NewScan(w1()), NewScan(w2()), [][2]string{{"nope", "id"}})
	if _, err := j.Execute(context.Background()); err == nil {
		t.Error("missing left join column not reported")
	}
	j2 := NewJoin(NewScan(w1()), NewScan(w2()), [][2]string{{"teamId", "nope"}})
	if _, err := j2.Execute(context.Background()); err == nil {
		t.Error("missing right join column not reported")
	}
}

func TestNaturalJoin(t *testing.T) {
	// w1 and w2 share column "id" — natural join on it.
	j := NewNaturalJoin(NewScan(w1()), NewScan(w2()))
	if len(j.On) != 1 || j.On[0] != [2]string{"id", "id"} {
		t.Fatalf("natural join on = %v", j.On)
	}
	defer func() {
		if recover() == nil {
			t.Error("natural join with no shared cols should panic")
		}
	}()
	a := NewRelation("x")
	b := NewRelation("y")
	NewNaturalJoin(NewScan(NewMemSource("a", a)), NewScan(NewMemSource("b", b)))
}

func TestUnion(t *testing.T) {
	p1 := NewProject(NewScan(w1()), "pName")
	p2 := NewRename(NewProject(NewScan(w2()), "name"), [][2]string{{"name", "pName"}})
	u := NewUnion(p1, p2)
	rel := exec(t, u)
	if rel.Len() != 7 {
		t.Fatalf("union rows = %d", rel.Len())
	}
	// Schema mismatch must error.
	bad := NewUnion(NewProject(NewScan(w1()), "pName"), NewProject(NewScan(w2()), "name"))
	if _, err := bad.Execute(context.Background()); err == nil {
		t.Error("union schema mismatch not detected")
	}
	empty := NewUnion()
	if got := exec(t, empty); got.Len() != 0 {
		t.Errorf("empty union = %d rows", got.Len())
	}
}

func TestDistinctAndLimit(t *testing.T) {
	rel := NewRelation("a")
	for i := 0; i < 5; i++ {
		rel.MustAppend(Row{Int(int64(i % 2))})
	}
	src := NewMemSource("m", rel)
	if got := exec(t, NewDistinct(NewScan(src))).Len(); got != 2 {
		t.Fatalf("distinct = %d", got)
	}
	if got := exec(t, NewLimit(NewScan(src), 3)).Len(); got != 3 {
		t.Fatalf("limit = %d", got)
	}
	if got := exec(t, NewLimit(NewScan(src), 99)).Len(); got != 5 {
		t.Fatalf("limit beyond = %d", got)
	}
}

func TestAlgebraRendering(t *testing.T) {
	plan := NewProject(
		NewJoin(NewScan(w1()),
			NewRename(NewScan(w2()), [][2]string{{"name", "teamName"}}),
			[][2]string{{"teamId", "id"}}),
		"teamName", "pName")
	alg := plan.Algebra()
	for _, frag := range []string{"π[teamName,pName]", "w1 ⋈[teamId=id]", "ρ[name→teamName](w2)"} {
		if !strings.Contains(alg, frag) {
			t.Errorf("algebra %q missing %q", alg, frag)
		}
	}
	tree := PrintTree(plan)
	for _, frag := range []string{"Project[teamName,pName]", "Join[[teamId id]]", "Scan(w1)"} {
		if !strings.Contains(tree, frag) {
			t.Errorf("tree missing %q:\n%s", frag, tree)
		}
	}
}

func TestRelationTableRendering(t *testing.T) {
	rel := exec(t, NewProject(NewScan(w2()), "name"))
	tab := rel.Table()
	if !strings.Contains(tab, "FC Barcelona") || !strings.Contains(tab, "name") {
		t.Errorf("table:\n%s", tab)
	}
}

func TestRelationEqual(t *testing.T) {
	a := NewRelation("x", "y")
	a.MustAppend(Row{Int(1), String("a")})
	a.MustAppend(Row{Int(2), String("b")})
	b := NewRelation("x", "y")
	b.MustAppend(Row{Int(2), String("b")})
	b.MustAppend(Row{Int(1), String("a")})
	if !a.Equal(b) {
		t.Error("order-insensitive Equal failed")
	}
	b.MustAppend(Row{Int(3), String("c")})
	if a.Equal(b) {
		t.Error("row count mismatch undetected")
	}
	c := NewRelation("x", "z")
	c.MustAppend(Row{Int(1), String("a")})
	c.MustAppend(Row{Int(2), String("b")})
	if a.Equal(c) {
		t.Error("schema mismatch undetected")
	}
	// Multiset semantics: duplicate counts matter.
	d1 := NewRelation("x")
	d1.MustAppend(Row{Int(1)})
	d1.MustAppend(Row{Int(1)})
	d2 := NewRelation("x")
	d2.MustAppend(Row{Int(1)})
	d2.MustAppend(Row{Int(2)})
	if d1.Equal(d2) {
		t.Error("multiset mismatch undetected")
	}
}

func TestRelationAppendArity(t *testing.T) {
	rel := NewRelation("a", "b")
	if err := rel.Append(Row{Int(1)}); err == nil {
		t.Error("arity mismatch accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustAppend should panic")
		}
	}()
	rel.MustAppend(Row{Int(1)})
}

// failingSource exercises error propagation through operator trees.
type failingSource struct{}

func (failingSource) Name() string      { return "boom" }
func (failingSource) Columns() []string { return []string{"a"} }
func (failingSource) Fetch(context.Context) (*Relation, error) {
	return nil, errors.New("source unavailable")
}

func TestErrorPropagation(t *testing.T) {
	plans := []Plan{
		NewProject(NewScan(failingSource{}), "a"),
		NewSelect(NewScan(failingSource{}), NotNull{Col: "a"}),
		NewRename(NewScan(failingSource{}), [][2]string{{"a", "b"}}),
		NewJoin(NewScan(failingSource{}), NewScan(w1()), [][2]string{{"a", "id"}}),
		NewJoin(NewScan(w1()), NewScan(failingSource{}), [][2]string{{"id", "a"}}),
		NewUnion(NewScan(failingSource{})),
		NewDistinct(NewScan(failingSource{})),
		NewLimit(NewScan(failingSource{}), 1),
	}
	for i, p := range plans {
		if _, err := p.Execute(context.Background()); err == nil {
			t.Errorf("plan %d swallowed the source error", i)
		} else if !strings.Contains(err.Error(), "source unavailable") {
			t.Errorf("plan %d error lost cause: %v", i, err)
		}
	}
}

// TestExecuteCanceledContext: every operator checks the context, so a
// canceled query stops instead of materializing its result.
func TestExecuteCanceledContext(t *testing.T) {
	left := NewRelation("id", "v")
	right := NewRelation("id", "w")
	for i := 0; i < 5000; i++ {
		left.Rows = append(left.Rows, Row{Int(int64(i % 50)), String("l")})
		right.Rows = append(right.Rows, Row{Int(int64(i % 50)), String("r")})
	}
	plan := NewJoin(NewScan(NewMemSource("l", left)), NewScan(NewMemSource("r", right)),
		[][2]string{{"id", "id"}})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := plan.Execute(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Execute under canceled ctx = %v, want context.Canceled", err)
	}
	// Sanity: the same plan runs fine with a live context.
	rel, err := plan.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 500000 {
		t.Fatalf("rows = %d", rel.Len())
	}
}
