package relalg

import (
	"fmt"
	"sort"
	"strings"
)

// Row is one tuple.
type Row []Value

// Clone copies the row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Relation is a materialized table: an ordered column list and rows.
type Relation struct {
	Cols []string
	Rows []Row
}

// NewRelation creates an empty relation with the given columns.
func NewRelation(cols ...string) *Relation {
	return &Relation{Cols: append([]string(nil), cols...)}
}

// ColIndex returns the index of a column, or -1.
func (r *Relation) ColIndex(name string) int {
	for i, c := range r.Cols {
		if c == name {
			return i
		}
	}
	return -1
}

// Append adds a row after checking arity.
func (r *Relation) Append(row Row) error {
	if len(row) != len(r.Cols) {
		return fmt.Errorf("relalg: row arity %d != schema arity %d", len(row), len(r.Cols))
	}
	r.Rows = append(r.Rows, row)
	return nil
}

// MustAppend adds a row and panics on arity mismatch.
func (r *Relation) MustAppend(row Row) {
	if err := r.Append(row); err != nil {
		panic(err)
	}
}

// Len returns the number of rows.
func (r *Relation) Len() int { return len(r.Rows) }

// Sort orders rows by all columns left to right (deterministic output
// for tests and demos).
func (r *Relation) Sort() {
	sort.SliceStable(r.Rows, func(i, j int) bool {
		for c := range r.Cols {
			if cmp := Compare(r.Rows[i][c], r.Rows[j][c]); cmp != 0 {
				return cmp < 0
			}
		}
		return false
	})
}

// Equal reports whether two relations have the same schema and the same
// multiset of rows (order-insensitive).
func (r *Relation) Equal(other *Relation) bool {
	if len(r.Cols) != len(other.Cols) || len(r.Rows) != len(other.Rows) {
		return false
	}
	for i := range r.Cols {
		if r.Cols[i] != other.Cols[i] {
			return false
		}
	}
	count := map[string]int{}
	for _, row := range r.Rows {
		count[rowKey(row)]++
	}
	for _, row := range other.Rows {
		count[rowKey(row)]--
	}
	for _, c := range count {
		if c != 0 {
			return false
		}
	}
	return true
}

func rowKey(row Row) string {
	var sb strings.Builder
	for _, v := range row {
		sb.WriteString(v.Key())
		sb.WriteByte('\x01')
	}
	return sb.String()
}

// Table renders the relation as an aligned text table.
func (r *Relation) Table() string {
	widths := make([]int, len(r.Cols))
	for i, c := range r.Cols {
		widths[i] = len(c)
	}
	texts := make([][]string, len(r.Rows))
	for ri, row := range r.Rows {
		texts[ri] = make([]string, len(row))
		for i, v := range row {
			texts[ri][i] = v.Text()
			if len(texts[ri][i]) > widths[i] {
				widths[i] = len(texts[ri][i])
			}
		}
	}
	var sb strings.Builder
	for i, c := range r.Cols {
		fmt.Fprintf(&sb, "%-*s  ", widths[i], c)
	}
	sb.WriteString("\n")
	for i := range r.Cols {
		sb.WriteString(strings.Repeat("-", widths[i]) + "  ")
	}
	sb.WriteString("\n")
	for _, row := range texts {
		for i, cell := range row {
			fmt.Fprintf(&sb, "%-*s  ", widths[i], cell)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// Project returns a new relation with only the named columns, in order.
func (r *Relation) Project(cols ...string) (*Relation, error) {
	idx := make([]int, len(cols))
	for i, c := range cols {
		j := r.ColIndex(c)
		if j < 0 {
			return nil, fmt.Errorf("relalg: unknown column %q (have %v)", c, r.Cols)
		}
		idx[i] = j
	}
	out := NewRelation(cols...)
	for _, row := range r.Rows {
		nr := make(Row, len(idx))
		for i, j := range idx {
			nr[i] = row[j]
		}
		out.Rows = append(out.Rows, nr)
	}
	return out, nil
}

// Distinct returns a new relation with duplicate rows removed, keeping
// first occurrences.
func (r *Relation) Distinct() *Relation {
	out := NewRelation(r.Cols...)
	seen := map[string]bool{}
	for _, row := range r.Rows {
		k := rowKey(row)
		if !seen[k] {
			seen[k] = true
			out.Rows = append(out.Rows, row)
		}
	}
	return out
}
