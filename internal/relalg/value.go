// Package relalg implements a small in-memory relational algebra engine:
// typed relations plus projection, selection, renaming, natural/equi
// joins, union, distinct and limit operators with a tree-walking
// executor and a light optimizer.
//
// In the original MDM, data fetched by wrappers was loaded into temporary
// SQLite tables and the rewritten query was executed as federated SQL.
// This package plays that role: the query rewriting algorithm emits a
// relalg.Plan over wrapper-backed Scan nodes, and Execute materializes
// the answer. Plans also render as algebra expressions (π, σ, ⋈, ∪, ρ, δ)
// so the demo can display them exactly as Figure 8 of the paper does.
package relalg

import (
	"fmt"
	"strconv"
	"strings"
)

// Type enumerates scalar types.
type Type uint8

// Scalar types. TypeNull is the type of the SQL-like NULL value.
const (
	TypeNull Type = iota
	TypeString
	TypeInt
	TypeFloat
	TypeBool
)

// String returns the type name.
func (t Type) String() string {
	switch t {
	case TypeNull:
		return "null"
	case TypeString:
		return "string"
	case TypeInt:
		return "int"
	case TypeFloat:
		return "float"
	case TypeBool:
		return "bool"
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// Value is a scalar cell value. The zero Value is NULL.
type Value struct {
	T Type
	S string
	I int64
	F float64
	B bool
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// String returns a string value.
func String(s string) Value { return Value{T: TypeString, S: s} }

// Int returns an integer value.
func Int(i int64) Value { return Value{T: TypeInt, I: i} }

// Float returns a float value.
func Float(f float64) Value { return Value{T: TypeFloat, F: f} }

// Bool returns a boolean value.
func Bool(b bool) Value { return Value{T: TypeBool, B: b} }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.T == TypeNull }

// AsFloat converts numeric values to float64.
func (v Value) AsFloat() (float64, bool) {
	switch v.T {
	case TypeInt:
		return float64(v.I), true
	case TypeFloat:
		return v.F, true
	}
	return 0, false
}

// Text renders the value for display; NULL renders as the empty string.
func (v Value) Text() string {
	switch v.T {
	case TypeNull:
		return ""
	case TypeString:
		return v.S
	case TypeInt:
		return strconv.FormatInt(v.I, 10)
	case TypeFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case TypeBool:
		return strconv.FormatBool(v.B)
	}
	return ""
}

// GoString renders the value with type info, for debugging.
func (v Value) GoString() string {
	if v.IsNull() {
		return "NULL"
	}
	return fmt.Sprintf("%s(%s)", v.T, v.Text())
}

// Infer parses a string into the most specific value type: int, float,
// bool, else string. Empty strings stay strings (not NULL) because
// wrappers distinguish missing fields explicitly.
func Infer(s string) Value {
	if s == "" {
		return String("")
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return Int(i)
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return Float(f)
	}
	if s == "true" || s == "false" {
		return Bool(s == "true")
	}
	return String(s)
}

// Equal compares two values for equality with numeric coercion between
// int and float. NULL equals nothing, including NULL (SQL semantics).
func Equal(a, b Value) bool {
	if a.IsNull() || b.IsNull() {
		return false
	}
	if fa, ok := a.AsFloat(); ok {
		if fb, ok := b.AsFloat(); ok {
			return fa == fb
		}
		return false
	}
	if a.T != b.T {
		return false
	}
	switch a.T {
	case TypeString:
		return a.S == b.S
	case TypeBool:
		return a.B == b.B
	}
	return false
}

// Compare orders values: NULL < bool < numeric < string; within numerics
// by value, within strings lexically. ok is false when the values are
// incomparable under these rules (never, currently).
func Compare(a, b Value) int {
	ra, rb := rank(a), rank(b)
	if ra != rb {
		if ra < rb {
			return -1
		}
		return 1
	}
	switch {
	case a.IsNull():
		return 0
	case ra == 1: // bool
		switch {
		case !a.B && b.B:
			return -1
		case a.B && !b.B:
			return 1
		}
		return 0
	case ra == 2: // numeric
		fa, _ := a.AsFloat()
		fb, _ := b.AsFloat()
		switch {
		case fa < fb:
			return -1
		case fa > fb:
			return 1
		}
		return 0
	default:
		return strings.Compare(a.S, b.S)
	}
}

func rank(v Value) int {
	switch v.T {
	case TypeNull:
		return 0
	case TypeBool:
		return 1
	case TypeInt, TypeFloat:
		return 2
	default:
		return 3
	}
}

// Key returns a canonical string usable as a hash key; numeric values of
// equal magnitude share a key so joins coerce int/float.
func (v Value) Key() string {
	switch v.T {
	case TypeNull:
		return "\x00N"
	case TypeBool:
		return "\x00B" + strconv.FormatBool(v.B)
	case TypeInt:
		return "\x00F" + strconv.FormatFloat(float64(v.I), 'g', -1, 64)
	case TypeFloat:
		return "\x00F" + strconv.FormatFloat(v.F, 'g', -1, 64)
	default:
		return "\x00S" + v.S
	}
}
