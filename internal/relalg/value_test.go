package relalg

import (
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndText(t *testing.T) {
	cases := []struct {
		v    Value
		typ  Type
		text string
	}{
		{Null(), TypeNull, ""},
		{String("x"), TypeString, "x"},
		{Int(-5), TypeInt, "-5"},
		{Float(2.5), TypeFloat, "2.5"},
		{Bool(true), TypeBool, "true"},
	}
	for _, c := range cases {
		if c.v.T != c.typ {
			t.Errorf("type of %#v = %v, want %v", c.v, c.v.T, c.typ)
		}
		if got := c.v.Text(); got != c.text {
			t.Errorf("Text(%#v) = %q, want %q", c.v, got, c.text)
		}
	}
	if !Null().IsNull() || Int(0).IsNull() {
		t.Error("IsNull wrong")
	}
}

func TestInfer(t *testing.T) {
	cases := []struct {
		in   string
		want Value
	}{
		{"42", Int(42)},
		{"-7", Int(-7)},
		{"170.18", Float(170.18)},
		{"1e3", Float(1000)},
		{"true", Bool(true)},
		{"false", Bool(false)},
		{"hello", String("hello")},
		{"", String("")},
		{"42abc", String("42abc")},
	}
	for _, c := range cases {
		if got := Infer(c.in); got != c.want {
			t.Errorf("Infer(%q) = %#v, want %#v", c.in, got, c.want)
		}
	}
}

func TestEqualNumericCoercion(t *testing.T) {
	if !Equal(Int(5), Float(5.0)) {
		t.Error("int 5 should equal float 5.0")
	}
	if Equal(Int(5), String("5")) {
		t.Error("int should not equal string")
	}
	if Equal(Null(), Null()) {
		t.Error("NULL = NULL must be false")
	}
	if Equal(Null(), Int(0)) || Equal(Int(0), Null()) {
		t.Error("NULL equals nothing")
	}
	if !Equal(String("a"), String("a")) || Equal(String("a"), String("b")) {
		t.Error("string equality wrong")
	}
	if !Equal(Bool(true), Bool(true)) || Equal(Bool(true), Bool(false)) {
		t.Error("bool equality wrong")
	}
	if Equal(Bool(true), Int(1)) {
		t.Error("bool should not coerce to int")
	}
}

func TestCompareOrdering(t *testing.T) {
	if Compare(Int(1), Int(2)) >= 0 || Compare(Int(2), Int(1)) <= 0 {
		t.Error("int ordering wrong")
	}
	if Compare(Int(2), Float(2.5)) >= 0 {
		t.Error("cross numeric ordering wrong")
	}
	if Compare(String("a"), String("b")) >= 0 {
		t.Error("string ordering wrong")
	}
	if Compare(Null(), Int(0)) >= 0 {
		t.Error("NULL should sort first")
	}
	if Compare(Bool(false), Bool(true)) >= 0 {
		t.Error("false < true expected")
	}
	if Compare(Int(7), Int(7)) != 0 || Compare(Int(7), Float(7)) != 0 {
		t.Error("equal numerics should compare 0")
	}
	if Compare(Bool(true), Int(0)) >= 0 {
		t.Error("bool should rank below numeric")
	}
	if Compare(Int(999), String("0")) >= 0 {
		t.Error("numeric should rank below string")
	}
}

func TestKeyCoercesNumerics(t *testing.T) {
	if Int(3).Key() != Float(3.0).Key() {
		t.Error("int/float keys should match for equal magnitude")
	}
	if Int(3).Key() == String("3").Key() {
		t.Error("int and string keys must differ")
	}
	if Null().Key() == String("").Key() {
		t.Error("NULL key must differ from empty string")
	}
}

func TestPropCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		return Compare(Int(a), Int(b)) == -Compare(Int(b), Int(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropEqualIffKeyEqual(t *testing.T) {
	f := func(a, b int64) bool {
		return Equal(Int(a), Int(b)) == (Int(a).Key() == Int(b).Key())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(a, b string) bool {
		return Equal(String(a), String(b)) == (String(a).Key() == String(b).Key())
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestPropInferRoundTripsText(t *testing.T) {
	f := func(i int64) bool {
		v := Int(i)
		return Infer(v.Text()) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
