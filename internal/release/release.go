// Package release implements MDM's governance of evolution (paper §1,
// §3 "Governance of evolution"): releases are the key concept through
// which new sources and new schema versions of existing sources enter
// the system. The package detects schema changes between wrapper
// versions (added / removed / renamed attributes, type changes),
// classifies releases as breaking or non-breaking, maintains the release
// log, and can probe live wrappers for schema drift the provider shipped
// without notice.
package release

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"mdm/internal/bdi"
	"mdm/internal/rdf"
	"mdm/internal/schema"
	"mdm/internal/wrapper"
)

// ChangeKind classifies one schema change.
type ChangeKind string

// Change kinds.
const (
	// AttributeAdded: the new version has an attribute the old lacked.
	AttributeAdded ChangeKind = "added"
	// AttributeRemoved: an attribute disappeared — breaking.
	AttributeRemoved ChangeKind = "removed"
	// AttributeRenamed: heuristic pairing of one removal with one
	// addition of the same inferred type — breaking.
	AttributeRenamed ChangeKind = "renamed"
	// TypeChanged: same attribute name, different inferred type.
	TypeChanged ChangeKind = "type-changed"
)

// Change is one detected difference between two wrapper signatures.
type Change struct {
	Kind ChangeKind
	// Attribute is the affected attribute (old name for renames).
	Attribute string
	// NewName is set for renames.
	NewName string
	// OldType / NewType are set for type changes.
	OldType, NewType string
}

// String renders the change human-readably.
func (c Change) String() string {
	switch c.Kind {
	case AttributeRenamed:
		return fmt.Sprintf("renamed %s -> %s", c.Attribute, c.NewName)
	case TypeChanged:
		return fmt.Sprintf("type of %s changed %s -> %s", c.Attribute, c.OldType, c.NewType)
	default:
		return fmt.Sprintf("%s %s", c.Kind, c.Attribute)
	}
}

// Breaking reports whether the change breaks consumers of the old
// schema: removals, renames and type changes do; additions do not.
func (c Change) Breaking() bool { return c.Kind != AttributeAdded }

// Diff compares two signatures and returns the changes from old to new.
// A removal and an addition with identical inferred types are paired as
// a rename when the pairing is unambiguous (exactly one candidate each).
func Diff(old, new schema.Signature) []Change {
	oldTypes := map[string]string{}
	for _, a := range old.Attributes {
		oldTypes[a.Name] = a.Type.String()
	}
	newTypes := map[string]string{}
	for _, a := range new.Attributes {
		newTypes[a.Name] = a.Type.String()
	}
	var removed, added []string
	var changes []Change
	for _, a := range old.Attributes {
		nt, ok := newTypes[a.Name]
		switch {
		case !ok:
			removed = append(removed, a.Name)
		case nt != oldTypes[a.Name]:
			changes = append(changes, Change{
				Kind: TypeChanged, Attribute: a.Name,
				OldType: oldTypes[a.Name], NewType: nt,
			})
		}
	}
	for _, a := range new.Attributes {
		if _, ok := oldTypes[a.Name]; !ok {
			added = append(added, a.Name)
		}
	}
	sort.Strings(removed)
	sort.Strings(added)

	// Rename pairing: a removed attribute pairs with an added attribute
	// of the same inferred type whose name is sufficiently similar
	// (normalized longest-common-subsequence >= 0.5) and strictly more
	// similar than every other candidate. Ties and dissimilar names stay
	// removed+added, so the steward reviews them.
	usedAdd := map[string]bool{}
	for _, r := range removed {
		best, bestScore, tie := "", 0.0, false
		for _, a := range added {
			if usedAdd[a] || newTypes[a] != oldTypes[r] {
				continue
			}
			score := similarity(r, a)
			switch {
			case score > bestScore:
				best, bestScore, tie = a, score, false
			case score == bestScore && score > 0:
				tie = true
			}
		}
		if best != "" && bestScore >= 0.5 && !tie {
			usedAdd[best] = true
			changes = append(changes, Change{Kind: AttributeRenamed, Attribute: r, NewName: best})
		} else {
			changes = append(changes, Change{Kind: AttributeRemoved, Attribute: r})
		}
	}
	for _, a := range added {
		if !usedAdd[a] {
			changes = append(changes, Change{Kind: AttributeAdded, Attribute: a})
		}
	}
	sort.Slice(changes, func(i, j int) bool {
		if changes[i].Kind != changes[j].Kind {
			return changes[i].Kind < changes[j].Kind
		}
		return changes[i].Attribute < changes[j].Attribute
	})
	return changes
}

// similarity is the normalized longest-common-subsequence of two names
// (case-insensitive): 2*LCS / (len(a)+len(b)), in [0, 1].
func similarity(a, b string) float64 {
	a, b = strings.ToLower(a), strings.ToLower(b)
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for i := 1; i <= len(a); i++ {
		for j := 1; j <= len(b); j++ {
			if a[i-1] == b[j-1] {
				cur[j] = prev[j-1] + 1
			} else if prev[j] >= cur[j-1] {
				cur[j] = prev[j]
			} else {
				cur[j] = cur[j-1]
			}
		}
		prev, cur = cur, prev
	}
	lcs := prev[len(b)]
	return 2 * float64(lcs) / float64(len(a)+len(b))
}

// IsBreaking reports whether any change in the set is breaking.
func IsBreaking(changes []Change) bool {
	for _, c := range changes {
		if c.Breaking() {
			return true
		}
	}
	return false
}

// Kind distinguishes the two release flavours of paper §2.2: "new
// wrappers are introduced either because we want to consider data from a
// new data source, or because the schema of an existing source has
// evolved".
type Kind string

// Release kinds.
const (
	NewSource  Kind = "new-source"
	NewVersion Kind = "new-version"
)

// Release is one entry of the release log.
type Release struct {
	// Seq is the release sequence number (1-based).
	Seq int
	// Kind says whether this introduced a source or a version.
	Kind Kind
	// SourceID is the affected data source.
	SourceID string
	// Wrapper is the registered wrapper's name.
	Wrapper string
	// Signature is the wrapper's signature at release time.
	Signature string
	// Supersedes is the previous wrapper of the source ("" for the
	// first release).
	Supersedes string
	// Changes lists schema changes versus the superseded wrapper.
	Changes []Change
	// Breaking mirrors IsBreaking(Changes).
	Breaking bool
	// At is the release timestamp.
	At time.Time
}

// Summary is a one-line description for logs and the REST API.
func (r Release) Summary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "release #%d [%s] %s/%s", r.Seq, r.Kind, r.SourceID, r.Wrapper)
	if r.Supersedes != "" {
		fmt.Fprintf(&sb, " supersedes %s", r.Supersedes)
	}
	if len(r.Changes) > 0 {
		descs := make([]string, len(r.Changes))
		for i, c := range r.Changes {
			descs[i] = c.String()
		}
		fmt.Fprintf(&sb, " (%s)", strings.Join(descs, "; "))
	}
	if r.Breaking {
		sb.WriteString(" BREAKING")
	}
	return sb.String()
}

// Manager orchestrates releases against the ontology and the wrapper
// registry. It is the programmatic face of the "registration of new data
// sources" interaction (paper §2.2).
type Manager struct {
	ont *bdi.Ontology
	reg *wrapper.Registry
	log []Release
	// Now is injectable for deterministic tests.
	Now func() time.Time
}

// NewManager returns a release manager.
func NewManager(ont *bdi.Ontology, reg *wrapper.Registry) *Manager {
	return &Manager{ont: ont, reg: reg, Now: time.Now}
}

// Register performs a release: the wrapper is added to the registry and
// the source graph, its schema is diffed against the source's previous
// wrapper (attribute reuse happens inside the ontology), and the release
// is logged. The caller defines the LAV mapping afterwards.
func (m *Manager) Register(w wrapper.Wrapper) (Release, error) {
	prevWrappers := m.reg.BySource(w.SourceID())
	rel := Release{
		Seq:       len(m.log) + 1,
		SourceID:  w.SourceID(),
		Wrapper:   w.Name(),
		Signature: w.Signature().String(),
		At:        m.Now(),
	}
	if len(prevWrappers) == 0 {
		rel.Kind = NewSource
	} else {
		rel.Kind = NewVersion
		prev := prevWrappers[len(prevWrappers)-1]
		rel.Supersedes = prev.Name()
		rel.Changes = Diff(prev.Signature(), w.Signature())
		rel.Breaking = IsBreaking(rel.Changes)
	}
	if err := m.reg.Register(w); err != nil {
		return Release{}, err
	}
	if err := m.ont.RegisterWrapper(w.SourceID(), w.Signature()); err != nil {
		m.reg.Remove(w.Name())
		return Release{}, err
	}
	m.log = append(m.log, rel)
	return rel, nil
}

// Log returns the full release log (copy).
func (m *Manager) Log() []Release {
	return append([]Release(nil), m.log...)
}

// History returns the releases of one source.
func (m *Manager) History(sourceID string) []Release {
	var out []Release
	for _, r := range m.log {
		if r.SourceID == sourceID {
			out = append(out, r)
		}
	}
	return out
}

// DetectDrift probes a wrapper's current payload schema and diffs it
// against the declared signature: non-empty changes mean the provider
// shipped a schema change without a registered release (the situation
// that silently breaks pipelines, paper §1).
func (m *Manager) DetectDrift(ctx context.Context, wrapperName string) ([]Change, error) {
	w, ok := m.reg.Get(wrapperName)
	if !ok {
		return nil, fmt.Errorf("release: unknown wrapper %q", wrapperName)
	}
	cur, err := w.CurrentSignature(ctx)
	if err != nil {
		return nil, fmt.Errorf("release: probe %s: %w", wrapperName, err)
	}
	return Diff(w.Signature(), cur), nil
}

// SuggestMapping proposes a LAV mapping for a new wrapper version based
// on the superseded wrapper's mapping: attributes that kept their names
// keep their feature links; renamed attributes (per Diff) carry their
// link to the new name; removed attributes drop theirs. The steward
// reviews the result before DefineMapping — this is the
// "semi-automatically accommodate schema evolution" aid of the paper's
// abstract.
func (m *Manager) SuggestMapping(prevWrapper, newWrapper string) (bdi.Mapping, []Change, error) {
	prev, ok := m.reg.Get(prevWrapper)
	if !ok {
		return bdi.Mapping{}, nil, fmt.Errorf("release: unknown wrapper %q", prevWrapper)
	}
	next, ok := m.reg.Get(newWrapper)
	if !ok {
		return bdi.Mapping{}, nil, fmt.Errorf("release: unknown wrapper %q", newWrapper)
	}
	prevMap, ok := m.ont.MappingOf(prevWrapper)
	if !ok {
		return bdi.Mapping{}, nil, fmt.Errorf("release: wrapper %q has no mapping to derive from", prevWrapper)
	}
	changes := Diff(prev.Signature(), next.Signature())
	renames := map[string]string{}
	removed := map[string]bool{}
	for _, c := range changes {
		switch c.Kind {
		case AttributeRenamed:
			renames[c.Attribute] = c.NewName
		case AttributeRemoved:
			removed[c.Attribute] = true
		}
	}
	out := bdi.Mapping{Wrapper: newWrapper, SameAs: map[string]rdf.Term{}}
	for attr, feat := range prevMap.SameAs {
		switch {
		case removed[attr]:
			// dropped
		case renames[attr] != "":
			out.SameAs[renames[attr]] = feat
		default:
			out.SameAs[attr] = feat
		}
	}
	// Subgraph: keep the triples whose features are still populated,
	// plus concept typing and relation edges.
	kept := map[rdf.Term]bool{}
	for _, feat := range out.SameAs {
		kept[feat] = true
	}
	for _, t := range prevMap.Subgraph {
		if t.P == bdi.PropHasFeature && !kept[t.O] {
			continue
		}
		out.Subgraph = append(out.Subgraph, t)
	}
	return out, changes, nil
}
