package release_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"mdm/internal/relalg"
	"mdm/internal/release"
	"mdm/internal/schema"
	"mdm/internal/usecase"
	"mdm/internal/wrapper"
)

func sig(w string, attrs ...string) schema.Signature {
	s := schema.Signature{Wrapper: w}
	for _, a := range attrs {
		typ := relalg.TypeString
		if strings.HasSuffix(a, "#i") {
			a = strings.TrimSuffix(a, "#i")
			typ = relalg.TypeInt
		}
		s.Attributes = append(s.Attributes, schema.Attribute{Name: a, Type: typ})
	}
	return s
}

func TestDiffAddRemove(t *testing.T) {
	old := sig("w", "id#i", "name", "height")
	new := sig("w", "id#i", "name", "height", "position")
	changes := release.Diff(old, new)
	if len(changes) != 1 || changes[0].Kind != release.AttributeAdded || changes[0].Attribute != "position" {
		t.Fatalf("changes = %v", changes)
	}
	if release.IsBreaking(changes) {
		t.Error("pure addition must be non-breaking")
	}

	changes = release.Diff(new, old)
	if len(changes) != 1 || changes[0].Kind != release.AttributeRemoved {
		t.Fatalf("changes = %v", changes)
	}
	if !release.IsBreaking(changes) {
		t.Error("removal must be breaking")
	}
}

func TestDiffRenameHeuristic(t *testing.T) {
	old := sig("w", "id#i", "pName")
	new := sig("w", "id#i", "fullName")
	changes := release.Diff(old, new)
	if len(changes) != 1 || changes[0].Kind != release.AttributeRenamed {
		t.Fatalf("changes = %v", changes)
	}
	if changes[0].Attribute != "pName" || changes[0].NewName != "fullName" {
		t.Fatalf("rename = %v", changes[0])
	}
	if !changes[0].Breaking() {
		t.Error("rename must be breaking")
	}
	// Equally-similar same-type additions tie and must NOT be a rename.
	new2 := sig("w", "id#i", "xName", "yName")
	changes = release.Diff(old, new2)
	var renames, removed, added int
	for _, c := range changes {
		switch c.Kind {
		case release.AttributeRenamed:
			renames++
		case release.AttributeRemoved:
			removed++
		case release.AttributeAdded:
			added++
		}
	}
	if renames != 0 || removed != 1 || added != 2 {
		t.Errorf("ambiguous rename mis-paired: %v", changes)
	}
}

func TestDiffTypeChange(t *testing.T) {
	old := sig("w", "id#i", "height")
	new := sig("w", "id#i", "height#i")
	changes := release.Diff(old, new)
	if len(changes) != 1 || changes[0].Kind != release.TypeChanged {
		t.Fatalf("changes = %v", changes)
	}
	if changes[0].OldType != "string" || changes[0].NewType != "int" {
		t.Errorf("types = %v", changes[0])
	}
	if !release.IsBreaking(changes) {
		t.Error("type change must be breaking")
	}
}

func TestDiffIdentical(t *testing.T) {
	s := sig("w", "a", "b#i")
	if got := release.Diff(s, s); len(got) != 0 {
		t.Errorf("identical diff = %v", got)
	}
}

func TestManagerReleaseLog(t *testing.T) {
	f := usecase.MustNew()
	// Fresh ontology-side source for manager-driven registration.
	mgr := release.NewManager(f.Ont, f.Reg)
	fixed := time.Date(2018, 3, 26, 10, 0, 0, 0, time.UTC) // EDBT 2018 day 1
	mgr.Now = func() time.Time { return fixed }

	if err := f.Ont.AddDataSource("weather-api", "Weather API"); err != nil {
		t.Fatal(err)
	}
	w1 := wrapper.NewMem("weather-v1", "weather-api", nil, sig("weather-v1", "id#i", "temp", "city").Attributes)
	rel1, err := mgr.Register(w1)
	if err != nil {
		t.Fatal(err)
	}
	if rel1.Kind != release.NewSource || rel1.Seq != 1 || rel1.Supersedes != "" {
		t.Fatalf("rel1 = %+v", rel1)
	}
	if !rel1.At.Equal(fixed) {
		t.Error("timestamp not from injected clock")
	}

	w2 := wrapper.NewMem("weather-v2", "weather-api", nil, sig("weather-v2", "id#i", "temperature", "city").Attributes)
	rel2, err := mgr.Register(w2)
	if err != nil {
		t.Fatal(err)
	}
	if rel2.Kind != release.NewVersion || rel2.Supersedes != "weather-v1" {
		t.Fatalf("rel2 = %+v", rel2)
	}
	if !rel2.Breaking || len(rel2.Changes) != 1 || rel2.Changes[0].Kind != release.AttributeRenamed {
		t.Fatalf("rel2 changes = %v", rel2.Changes)
	}
	sum := rel2.Summary()
	for _, frag := range []string{"new-version", "supersedes weather-v1", "renamed temp -> temperature", "BREAKING"} {
		if !strings.Contains(sum, frag) {
			t.Errorf("summary missing %q: %s", frag, sum)
		}
	}

	if got := len(mgr.Log()); got != 2 {
		t.Errorf("log = %d", got)
	}
	hist := mgr.History("weather-api")
	if len(hist) != 2 || hist[0].Wrapper != "weather-v1" {
		t.Errorf("history = %v", hist)
	}
	if got := mgr.History("players-api"); len(got) != 0 {
		t.Errorf("unrelated history = %v", got)
	}
}

func TestManagerRegisterDuplicateRollsBack(t *testing.T) {
	f := usecase.MustNew()
	mgr := release.NewManager(f.Ont, f.Reg)
	dup := wrapper.NewMem("w1", usecase.SrcPlayers, nil, sig("w1", "id#i").Attributes)
	if _, err := mgr.Register(dup); err == nil {
		t.Fatal("duplicate wrapper accepted")
	}
	if len(mgr.Log()) != 0 {
		t.Error("failed release logged")
	}
}

func TestManagerRegisterUnknownSourceRollsBack(t *testing.T) {
	f := usecase.MustNew()
	mgr := release.NewManager(f.Ont, f.Reg)
	w := wrapper.NewMem("wx", "ghost-api", nil, sig("wx", "a").Attributes)
	if _, err := mgr.Register(w); err == nil {
		t.Fatal("unknown source accepted")
	}
	if _, ok := f.Reg.Get("wx"); ok {
		t.Error("registry not rolled back")
	}
}

func TestDetectDrift(t *testing.T) {
	f := usecase.MustNew()
	mgr := release.NewManager(f.Ont, f.Reg)
	// No drift initially.
	changes, err := mgr.DetectDrift(context.Background(), "w1")
	if err != nil {
		t.Fatal(err)
	}
	if len(changes) != 0 {
		t.Fatalf("unexpected drift: %v", changes)
	}
	// Provider silently ships v2 payloads on the same endpoint.
	f.W1.SetDocs(usecase.PlayersV2Docs())
	changes, err = mgr.DetectDrift(context.Background(), "w1")
	if err != nil {
		t.Fatal(err)
	}
	if !release.IsBreaking(changes) {
		t.Fatalf("breaking drift not detected: %v", changes)
	}
	var sawRename bool
	for _, c := range changes {
		if c.Kind == release.AttributeRenamed && c.Attribute == "pName" && c.NewName == "fullName" {
			sawRename = true
		}
	}
	if !sawRename {
		t.Errorf("pName->fullName rename not detected: %v", changes)
	}
	if _, err := mgr.DetectDrift(context.Background(), "ghost"); err == nil {
		t.Error("unknown wrapper accepted")
	}
}

func TestSuggestMapping(t *testing.T) {
	f := usecase.MustNew()
	mgr := release.NewManager(f.Ont, f.Reg)
	// Register w1v2 without a mapping.
	w := wrapper.NewMem("w1v2", usecase.SrcPlayers, usecase.PlayersV2Docs(), nil)
	if _, err := mgr.Register(w); err != nil {
		t.Fatal(err)
	}
	suggested, changes, err := mgr.SuggestMapping("w1", "w1v2")
	if err != nil {
		t.Fatal(err)
	}
	if len(changes) == 0 {
		t.Fatal("no changes detected")
	}
	// Renamed attribute carries its feature link.
	if suggested.SameAs["fullName"] != usecase.PlayerName {
		t.Errorf("rename link = %v", suggested.SameAs["fullName"])
	}
	// Kept attribute keeps its link; removed attributes drop theirs.
	if suggested.SameAs["id"] != usecase.PlayerID {
		t.Errorf("kept link = %v", suggested.SameAs["id"])
	}
	if _, ok := suggested.SameAs["weight"]; ok {
		t.Error("removed attribute kept a link")
	}
	// Subgraph drops the weight/rating hasFeature edges but keeps the
	// relation edge.
	for _, tr := range suggested.Subgraph {
		if tr.O == usecase.Weight || tr.O == usecase.Rating {
			t.Errorf("dropped feature still in subgraph: %v", tr)
		}
	}
	keptRelation := false
	for _, tr := range suggested.Subgraph {
		if tr.P == usecase.PlaysIn {
			keptRelation = true
		}
	}
	if !keptRelation {
		t.Error("relation edge lost in suggestion")
	}
	// Errors (checked before the suggestion is defined, while w1v2 still
	// has no mapping of its own).
	if _, _, err := mgr.SuggestMapping("ghost", "w1v2"); err == nil {
		t.Error("unknown prev wrapper accepted")
	}
	if _, _, err := mgr.SuggestMapping("w1", "ghost"); err == nil {
		t.Error("unknown new wrapper accepted")
	}
	if _, _, err := mgr.SuggestMapping("w1v2", "w1"); err == nil {
		t.Error("prev wrapper without mapping accepted")
	}
	// The suggestion is directly definable (position not mapped — the
	// steward adds new features manually).
	if err := f.Ont.DefineMapping(suggested); err != nil {
		t.Fatalf("suggested mapping invalid: %v", err)
	}
}
