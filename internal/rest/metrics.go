package rest

import (
	"net/http"
	"time"

	"mdm/internal/obs"
)

// HTTP-layer metrics. The endpoint label is the registered route
// pattern ("POST /api/sparql"), never the raw URL, so cardinality is
// bounded by the route table.
var (
	obsRequests = obs.Default.NewCounterVec("mdm_http_requests_total",
		"HTTP requests served, by route pattern and status class.",
		"endpoint", "class")
	obsInFlight = obs.Default.NewGauge("mdm_http_in_flight",
		"HTTP requests currently being served.")
	obsReqDur = obs.Default.NewHistogramVec("mdm_http_request_duration_seconds",
		"HTTP request durations, by route pattern.", obs.DefBuckets, "endpoint")
	obsRespBytes = obs.Default.NewCounterVec("mdm_http_response_bytes_total",
		"Response body bytes written (streamed NDJSON included), by route pattern.",
		"endpoint")
	obsSlowQueries = obs.Default.NewCounter("mdm_slow_queries_total",
		"Queries that exceeded the slow-query threshold and were logged.")
)

// statusWriter captures the response status and body size for metrics
// while forwarding Flush so NDJSON streaming keeps working through the
// instrumentation wrapper.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	n, err := sw.ResponseWriter.Write(b)
	sw.bytes += int64(n)
	return n, err
}

// Flush implements http.Flusher; without it startNDJSON's Flusher
// type-assertion would fail and rows would not stream.
func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// statusClass buckets a status code ("2xx", "4xx", ...); the
// client-closed-request convention code 499 counts as 4xx.
func statusClass(code int) string {
	switch {
	case code >= 500:
		return "5xx"
	case code >= 400:
		return "4xx"
	case code >= 300:
		return "3xx"
	default:
		return "2xx"
	}
}

// handle registers an instrumented route: request count by status
// class, in-flight gauge, duration histogram and response bytes, all
// labeled by the route pattern.
func (s *Server) handle(pattern string, h http.HandlerFunc) {
	reqs2xx := obsRequests.With(pattern, "2xx") // pre-resolve the hot cell
	dur := obsReqDur.With(pattern)
	bytes := obsRespBytes.With(pattern)
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		obsInFlight.Inc()
		defer obsInFlight.Dec()
		sw := &statusWriter{ResponseWriter: w}
		t0 := time.Now()
		h(sw, r)
		dur.Observe(time.Since(t0).Seconds())
		if sw.status == 0 {
			sw.status = http.StatusOK // handler wrote nothing: implicit 200
		}
		if c := statusClass(sw.status); c == "2xx" {
			reqs2xx.Inc()
		} else {
			obsRequests.With(pattern, c).Inc()
		}
		bytes.Add(float64(sw.bytes))
	})
}
