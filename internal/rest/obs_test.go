package rest_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"mdm"
	"mdm/internal/apisim"
	"mdm/internal/obs"
	"mdm/internal/rest"
)

// Coverage for the observability surface: the Prometheus endpoint with
// families from every instrumented layer, ?explain=1 reports, and the
// slow-query log (exactly one line per slow query, missing-source
// annotations included).

const conceptFeatureJoin = `PREFIX G: <http://www.essi.upc.edu/~snadal/BDIOntology/Global/>
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
SELECT ?c ?f WHERE { GRAPH <http://www.essi.upc.edu/~snadal/BDIOntology/Global/graph> {
  ?c rdf:type G:Concept . ?c G:hasFeature ?f
} } ORDER BY ?c ?f`

func TestMetricsEndpoint(t *testing.T) {
	c, provider := setupServer(t)
	stewardSetup(t, c, provider)
	// Exercise the query path so the engine-level families have data.
	c.do("POST", "/api/sparql", map[string]string{"query": conceptFeatureJoin}, 200)

	resp, err := c.http.Get(c.base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	// One representative family per instrumented layer.
	for _, want := range []string{
		"# TYPE mdm_http_requests_total counter",
		`mdm_http_requests_total{endpoint="POST /api/sparql",class="2xx"}`,
		"# TYPE mdm_http_request_duration_seconds histogram",
		"# TYPE mdm_http_in_flight gauge",
		"mdm_sparql_stage_duration_seconds_count",
		"mdm_sparql_plan_cache_total",
		"mdm_federate_source_cache_hits_total",
		"mdm_federate_breaker_opened_total",
		"mdm_tdb_checkpoints_total",
		"mdm_slow_queries_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestExplainEndpoint(t *testing.T) {
	c, provider := setupServer(t)
	stewardSetup(t, c, provider)
	res := c.do("POST", "/api/sparql?explain=1", map[string]string{"query": conceptFeatureJoin}, 200)
	exp, ok := res["explain"].(map[string]any)
	if !ok {
		t.Fatalf("no explain report in %v", res)
	}
	stages, _ := exp["stages"].([]any)
	seen := map[string]bool{}
	for _, s := range stages {
		seen[s.(map[string]any)["name"].(string)] = true
	}
	for _, want := range []string{"parse", "plan", "execute"} {
		if !seen[want] {
			t.Errorf("explain stages missing %q: %v", want, stages)
		}
	}
	ops, _ := exp["operators"].([]any)
	if len(ops) == 0 {
		t.Fatalf("explain has no operator spans: %v", exp)
	}
	for _, o := range ops {
		op := o.(map[string]any)
		if op["op"] == "" {
			t.Errorf("operator span without name: %v", op)
		}
	}
	if exp["plan"] == "" || exp["plan"] == nil {
		t.Errorf("explain has no plan summary: %v", exp)
	}
	// The report replaces rows entirely.
	if _, hasRows := res["rows"]; hasRows {
		t.Error("explain response must not carry rows")
	}
}

// syncBuffer guards the slow-log sink: the handler goroutine writes it
// while the test goroutine reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestSlowQueryLogOneLinePerQuery(t *testing.T) {
	provider := apisim.NewFootball()
	t.Cleanup(provider.Close)
	sys := mdm.New()
	srv := rest.NewServer(sys)
	var sink syncBuffer
	srv.SlowLog = obs.NewSlowLogWriter(&sink, 0) // threshold 0: log everything
	hs := httptest.NewServer(srv)
	t.Cleanup(hs.Close)
	c := &client{t: t, base: hs.URL, http: hs.Client()}
	stewardSetup(t, c, provider)
	sink.mu.Lock()
	sink.buf.Reset() // discard setup traffic; only the query below counts
	sink.mu.Unlock()

	c.do("POST", "/api/sparql", map[string]string{"query": conceptFeatureJoin}, 200)

	lines := strings.Split(strings.TrimSpace(sink.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("slow log lines = %d, want exactly 1:\n%s", len(lines), sink.String())
	}
	var e obs.SlowEntry
	if err := json.Unmarshal([]byte(lines[0]), &e); err != nil {
		t.Fatalf("slow log line is not JSON: %v\n%s", err, lines[0])
	}
	if e.Endpoint != "POST /api/sparql" {
		t.Errorf("endpoint = %q", e.Endpoint)
	}
	if e.QueryHash != obs.QueryHash(conceptFeatureJoin) {
		t.Errorf("query_hash = %q, want hash of the query text", e.QueryHash)
	}
	if e.Status != 200 || e.Rows == 0 {
		t.Errorf("status/rows = %d/%d", e.Status, e.Rows)
	}
	if _, ok := e.StagesMS["execute"]; !ok {
		t.Errorf("stages_ms missing execute: %v", e.StagesMS)
	}
	if e.Plan == "" {
		t.Errorf("slow entry has no plan summary")
	}
}

func TestSlowLogWalkCarriesMissingSources(t *testing.T) {
	sys := downWalkSystem(t)
	srv := rest.NewServer(sys)
	var sink syncBuffer
	srv.SlowLog = obs.NewSlowLogWriter(&sink, 0)

	req := httptest.NewRequest("POST", "/api/query?partial=1", strings.NewReader(fig8WalkBody))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d (body %s)", rec.Code, rec.Body)
	}

	lines := strings.Split(strings.TrimSpace(sink.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("slow log lines = %d, want 1:\n%s", len(lines), sink.String())
	}
	var e obs.SlowEntry
	if err := json.Unmarshal([]byte(lines[0]), &e); err != nil {
		t.Fatal(err)
	}
	if !e.Partial {
		t.Error("entry not marked partial")
	}
	if len(e.Missing) != 1 || e.Missing[0].Source != "wdown" || e.Missing[0].Class != "http_5xx" {
		t.Errorf("missing = %+v, want wdown/http_5xx", e.Missing)
	}
	if _, ok := e.StagesMS["scatter"]; !ok {
		t.Errorf("stages_ms missing scatter: %v", e.StagesMS)
	}
}

func TestWalkExplainReport(t *testing.T) {
	sys := downWalkSystem(t)
	srv := rest.NewServer(sys)
	req := httptest.NewRequest("POST", "/api/query?partial=1&explain=1", strings.NewReader(fig8WalkBody))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d (body %s)", rec.Code, rec.Body)
	}
	var resp struct {
		Explain struct {
			Stages []struct {
				Name string `json:"name"`
			} `json:"stages"`
			Sources []struct {
				Source  string `json:"source"`
				Outcome string `json:"outcome"`
			} `json:"sources"`
			Attrs map[string]string `json:"attrs"`
		} `json:"explain"`
		SPARQL string `json:"sparql"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, s := range resp.Explain.Stages {
		seen[s.Name] = true
	}
	for _, want := range []string{"rewrite", "scatter", "drain"} {
		if !seen[want] {
			t.Errorf("walk explain stages missing %q: %+v", want, resp.Explain.Stages)
		}
	}
	found := false
	for _, s := range resp.Explain.Sources {
		if s.Source == "wdown" && strings.HasPrefix(s.Outcome, "missing:") {
			found = true
		}
	}
	if !found {
		t.Errorf("walk explain sources lack the failed fetch: %+v", resp.Explain.Sources)
	}
	if resp.Explain.Attrs["partial"] != "true" {
		t.Errorf("attrs = %v, want partial=true", resp.Explain.Attrs)
	}
	if resp.SPARQL == "" {
		t.Error("walk explain response lacks the SPARQL rendering")
	}
}
