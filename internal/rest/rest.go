// Package rest exposes MDM over HTTP, replacing the Jersey/Java REST
// backend of the original implementation (paper §2.5: "the backend is
// implemented as a set of REST APIs ... the frontend interacts with the
// backend by means of HTTP REST calls").
//
// The four interactions of paper §2 map onto the resource tree:
//
//	definition of the global graph   POST /api/global/{concepts,features,attach,identifiers,relations}
//	registration of wrappers         POST /api/sources, POST /api/wrappers
//	definition of LAV mappings       POST /api/mappings
//	querying the global graph        POST /api/query  (walks), POST /api/sparql (metadata)
//
// plus read-side endpoints for stats, rendering, releases, drift
// detection, validation and TriG export.
//
// # Query paging and streaming
//
// The query endpoints (POST /api/query, /api/query/sparql, /api/sparql
// and /api/walks/{name}/run) accept the URL parameters
//
//	limit=N    page size, pushed into evaluation: the metadata SPARQL
//	           cursor and the federated walk pipeline both stop as
//	           soon as the page is complete
//	offset=N   rows to skip before the page (the cursor position)
//	format=ndjson
//	           stream results as NDJSON instead of one JSON document:
//	           a header line {"vars":[...]} (or {"columns":[...]} for
//	           walk results), then one JSON array of cell strings per
//	           row, flushed as produced
//	partial=1|0
//	           (walk endpoints) override the engine's degradation mode
//	           for this query: with partial on, a failed source no
//	           longer fails the walk — the healthy sources' rows stream
//	           and the response carries an X-MDM-Partial: true header
//	           plus completeness annotations (missing_sources with one
//	           error class per failed source, stale_sources for
//	           serve-stale substitutions) in the JSON document or the
//	           NDJSON header line; the fields are omitted entirely for
//	           complete results
//	explain=1
//	           run the query to completion but answer with the
//	           execution report (stage timings, per-operator spans,
//	           plan summary — EXPLAIN ANALYZE semantics) instead of
//	           rows; see docs/OBSERVABILITY.md for the JSON schema
//
// GET /metrics serves the observability registry in Prometheus text
// format, and queries slower than the server's slow-query threshold
// emit one structured line to its slow-query log (Server.SlowLog).
//
// limit/offset override a LIMIT/OFFSET written in the query itself.
// Every query runs under the client's request context: a dropped
// connection cancels evaluation — for walks, including the concurrent
// source fetches of the federation scatter phase. POST bodies are
// capped at 1 MiB; larger requests get 413 with a JSON error.
package rest

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"mdm"
	"mdm/internal/federate"
	"mdm/internal/obs"
	"mdm/internal/schema"
	"mdm/internal/sparql"
	"mdm/internal/store"
	"mdm/internal/wrapper"
)

// Server is the MDM REST service.
type Server struct {
	sys *mdm.System
	mux *http.ServeMux
	// QueryTimeout bounds walk execution (default 30s).
	QueryTimeout time.Duration
	// SlowLog, when set, receives one JSON line per query slower than
	// its threshold (see obs.SlowLog). Set it before the first request.
	SlowLog *obs.SlowLog
}

// NewServer wraps an MDM system.
func NewServer(sys *mdm.System) *Server {
	s := &Server{sys: sys, mux: http.NewServeMux(), QueryTimeout: 30 * time.Second}
	s.routes()
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) routes() {
	s.handle("GET /api/stats", s.handleStats)
	s.handle("GET /api/render/global", s.handleRenderGlobal)
	s.handle("GET /api/render/source", s.handleRenderSource)
	s.handle("GET /api/render/mappings", s.handleRenderMappings)
	s.handle("GET /api/validate", s.handleValidate)
	s.handle("GET /api/export", s.handleExport)

	s.handle("POST /api/prefixes", s.handleAddPrefix)
	s.handle("POST /api/global/concepts", s.handleAddConcept)
	s.handle("POST /api/global/features", s.handleAddFeature)
	s.handle("POST /api/global/attach", s.handleAttach)
	s.handle("POST /api/global/identifiers", s.handleMarkIdentifier)
	s.handle("POST /api/global/relations", s.handleRelate)

	s.handle("POST /api/sources", s.handleAddSource)
	s.handle("POST /api/wrappers", s.handleRegisterWrapper)
	s.handle("GET /api/wrappers", s.handleListWrappers)
	s.handle("GET /api/releases", s.handleReleases)
	s.handle("GET /api/drift/{wrapper}", s.handleDrift)

	s.handle("POST /api/mappings", s.handleDefineMapping)
	s.handle("GET /api/mappings/{wrapper}/suggest", s.handleSuggestMapping)

	s.handle("POST /api/query", s.handleQuery)
	s.handle("POST /api/query/sparql", s.handleQuerySPARQL)
	s.handle("POST /api/sparql", s.handleSPARQL)

	s.handle("POST /api/walks", s.handleSaveWalk)
	s.handle("GET /api/walks", s.handleListWalks)
	s.handle("POST /api/walks/{name}/run", s.handleRunWalk)

	s.handle("POST /api/admin/compact", s.handleCompact)

	// Application metrics. /debug/vars serves only the mdm.* expvars
	// (the stock expvar.Handler also dumps cmdline and memstats, which
	// do not belong on an unauthenticated API port); /metrics serves
	// the Prometheus rendering of the obs registry. Neither route is
	// instrumented: scrapers would otherwise dominate the request
	// metrics they collect.
	s.mux.HandleFunc("GET /debug/vars", handleVars)
	s.mux.Handle("GET /metrics", obs.Handler(obs.Default))
}

// handleVars renders the mdm.* expvars as one JSON object.
func handleVars(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprint(w, "{")
	first := true
	expvar.Do(func(kv expvar.KeyValue) {
		if !strings.HasPrefix(kv.Key, "mdm.") {
			return
		}
		if !first {
			fmt.Fprint(w, ",")
		}
		first = false
		fmt.Fprintf(w, "%q:%s", kv.Key, kv.Value)
	})
	fmt.Fprint(w, "}\n")
}

// --- helpers ---

// maxRequestBody caps POST bodies; metadata requests are small, so 1 MiB
// is generous while keeping a misbehaving client from ballooning memory.
const maxRequestBody = 1 << 20

// statusClientClosedRequest is the (nginx-convention) status reported
// when the client's context was canceled before the response started.
const statusClientClosedRequest = 499

type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func fail(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, apiError{Error: err.Error()})
}

// queryStatus maps evaluation errors: a canceled request context
// reports 499 (the client is gone; the status is for logs), the
// server-side query timeout reports 504, a circuit-breaker fast-fail
// 503 (the source is known-down; retry after its cooldown), everything
// else is a semantic failure.
func queryStatus(err error) int {
	switch {
	case errors.Is(err, context.Canceled):
		return statusClientClosedRequest
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, federate.ErrBreakerOpen):
		return http.StatusServiceUnavailable
	default:
		return http.StatusUnprocessableEntity
	}
}

func failQuery(w http.ResponseWriter, err error) { fail(w, queryStatus(err), err) }

// wantExplain reports whether the client asked for an execution report
// (EXPLAIN ANALYZE: the query runs to completion, rows are discarded)
// instead of rows.
func wantExplain(r *http.Request) bool {
	v := r.URL.Query().Get("explain")
	return v == "1" || v == "true"
}

// logSlow writes the finished query to the slow-query log when it
// exceeded the threshold. d is the whole query lifecycle (parse
// through drain); the per-stage breakdown comes from the trace.
func (s *Server) logSlow(d time.Duration, tr *obs.Trace, endpoint, query string,
	status int, rows int64, partial bool, missing []obs.MissingSource) {
	if !s.SlowLog.Enabled(d) {
		return
	}
	obsSlowQueries.Inc()
	_ = s.SlowLog.Record(obs.SlowEntry{
		Endpoint:   endpoint,
		QueryHash:  obs.QueryHash(query),
		DurationMS: float64(d) / float64(time.Millisecond),
		Status:     status,
		StagesMS:   tr.Stages(),
		Plan:       tr.Plan(),
		Rows:       rows,
		Partial:    partial,
		Missing:    missing,
	})
}

// partialParam reads the tristate partial URL parameter: absent defers
// to the engine's configured default.
func partialParam(r *http.Request) (federate.PartialMode, error) {
	switch v := r.URL.Query().Get("partial"); v {
	case "":
		return federate.PartialDefault, nil
	case "1", "true":
		return federate.PartialOn, nil
	case "0", "false":
		return federate.PartialOff, nil
	default:
		return 0, fmt.Errorf("rest: bad partial %q", v)
	}
}

func decode[T any](w http.ResponseWriter, r *http.Request, dst *T) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxRequestBody)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			fail(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("rest: request body exceeds %d bytes", tooBig.Limit))
			return false
		}
		fail(w, http.StatusBadRequest, fmt.Errorf("rest: bad request body: %w", err))
		return false
	}
	return true
}

// pageParams reads the limit/offset URL parameters (-1 = absent).
func pageParams(r *http.Request) (limit, offset int, err error) {
	limit, offset = -1, -1
	if v := r.URL.Query().Get("limit"); v != "" {
		if limit, err = strconv.Atoi(v); err != nil || limit < 0 {
			return 0, 0, fmt.Errorf("rest: bad limit %q", v)
		}
	}
	if v := r.URL.Query().Get("offset"); v != "" {
		if offset, err = strconv.Atoi(v); err != nil || offset < 0 {
			return 0, 0, fmt.Errorf("rest: bad offset %q", v)
		}
	}
	return limit, offset, nil
}

// wantNDJSON reports whether the client asked for streaming NDJSON.
func wantNDJSON(r *http.Request) bool {
	return r.URL.Query().Get("format") == "ndjson"
}

// ndjsonWriter streams one JSON value per line, flushing as it goes so
// clients see rows while the query is still running.
type ndjsonWriter struct {
	w     http.ResponseWriter
	enc   *json.Encoder
	flush http.Flusher
}

func startNDJSON(w http.ResponseWriter) *ndjsonWriter {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	out := &ndjsonWriter{w: w, enc: json.NewEncoder(w)}
	out.flush, _ = w.(http.Flusher)
	return out
}

func (n *ndjsonWriter) line(v any) {
	_ = n.enc.Encode(v) // Encode appends the newline
	if n.flush != nil {
		n.flush.Flush()
	}
}

// --- read side ---

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.sys.Stats())
}

func (s *Server) handleRenderGlobal(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"text": s.sys.RenderGlobalGraph()})
}

func (s *Server) handleRenderSource(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"text": s.sys.RenderSourceGraph()})
}

func (s *Server) handleRenderMappings(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"text": s.sys.RenderMappings()})
}

func (s *Server) handleValidate(w http.ResponseWriter, _ *http.Request) {
	violations := s.sys.Validate()
	out := make([]string, len(violations))
	for i, v := range violations {
		out[i] = v.String()
	}
	writeJSON(w, http.StatusOK, map[string]any{"consistent": len(out) == 0, "violations": out})
}

func (s *Server) handleExport(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/trig")
	fmt.Fprint(w, s.sys.ExportTriG())
}

// handleCompact forces a full storage compaction (see
// System.CompactStorage). For in-memory systems it reports persistent
// false and does nothing.
func (s *Server) handleCompact(w http.ResponseWriter, _ *http.Request) {
	persistent := s.sys.Storage() != nil
	if err := s.sys.CompactStorage(); err != nil {
		fail(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"compacted": persistent, "persistent": persistent})
}

// --- global graph ---

type prefixReq struct {
	Prefix    string `json:"prefix"`
	Namespace string `json:"namespace"`
}

func (s *Server) handleAddPrefix(w http.ResponseWriter, r *http.Request) {
	var req prefixReq
	if !decode(w, r, &req) {
		return
	}
	s.sys.BindPrefix(req.Prefix, req.Namespace)
	writeJSON(w, http.StatusCreated, map[string]string{"status": "ok"})
}

type nodeReq struct {
	IRI   string `json:"iri"`
	Label string `json:"label"`
}

func (s *Server) handleAddConcept(w http.ResponseWriter, r *http.Request) {
	var req nodeReq
	if !decode(w, r, &req) {
		return
	}
	if err := s.sys.AddConcept(req.IRI, req.Label); err != nil {
		fail(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"status": "ok"})
}

func (s *Server) handleAddFeature(w http.ResponseWriter, r *http.Request) {
	var req nodeReq
	if !decode(w, r, &req) {
		return
	}
	if err := s.sys.AddFeature(req.IRI, req.Label); err != nil {
		fail(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"status": "ok"})
}

type attachReq struct {
	Concept string `json:"concept"`
	Feature string `json:"feature"`
}

func (s *Server) handleAttach(w http.ResponseWriter, r *http.Request) {
	var req attachReq
	if !decode(w, r, &req) {
		return
	}
	if err := s.sys.AttachFeature(req.Concept, req.Feature); err != nil {
		fail(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"status": "ok"})
}

type identifierReq struct {
	Feature string `json:"feature"`
}

func (s *Server) handleMarkIdentifier(w http.ResponseWriter, r *http.Request) {
	var req identifierReq
	if !decode(w, r, &req) {
		return
	}
	if err := s.sys.MarkIdentifier(req.Feature); err != nil {
		fail(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"status": "ok"})
}

type relationReq struct {
	From     string `json:"from"`
	Property string `json:"property"`
	To       string `json:"to"`
}

func (s *Server) handleRelate(w http.ResponseWriter, r *http.Request) {
	var req relationReq
	if !decode(w, r, &req) {
		return
	}
	if err := s.sys.RelateConcepts(req.From, req.Property, req.To); err != nil {
		fail(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"status": "ok"})
}

// --- sources & wrappers ---

type sourceReq struct {
	ID    string `json:"id"`
	Label string `json:"label"`
}

func (s *Server) handleAddSource(w http.ResponseWriter, r *http.Request) {
	var req sourceReq
	if !decode(w, r, &req) {
		return
	}
	if err := s.sys.AddSource(req.ID, req.Label); err != nil {
		fail(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"status": "ok"})
}

type wrapperReq struct {
	Name    string            `json:"name"`
	Source  string            `json:"source"`
	URL     string            `json:"url"`
	Format  string            `json:"format,omitempty"`
	Renames map[string]string `json:"renames,omitempty"`
}

type releaseResp struct {
	Seq        int      `json:"seq"`
	Kind       string   `json:"kind"`
	Source     string   `json:"source"`
	Wrapper    string   `json:"wrapper"`
	Signature  string   `json:"signature"`
	Supersedes string   `json:"supersedes,omitempty"`
	Breaking   bool     `json:"breaking"`
	Changes    []string `json:"changes,omitempty"`
}

func toReleaseResp(rel mdm.Release) releaseResp {
	out := releaseResp{
		Seq: rel.Seq, Kind: string(rel.Kind), Source: rel.SourceID,
		Wrapper: rel.Wrapper, Signature: rel.Signature,
		Supersedes: rel.Supersedes, Breaking: rel.Breaking,
	}
	for _, c := range rel.Changes {
		out.Changes = append(out.Changes, c.String())
	}
	return out
}

// handleRegisterWrapper registers an HTTP wrapper against a live
// endpoint: MDM fetches a sample, extracts the signature and records the
// release (paper §2.2 made operational).
func (s *Server) handleRegisterWrapper(w http.ResponseWriter, r *http.Request) {
	var req wrapperReq
	if !decode(w, r, &req) {
		return
	}
	if req.Name == "" || req.Source == "" || req.URL == "" {
		fail(w, http.StatusBadRequest, fmt.Errorf("rest: name, source and url are required"))
		return
	}
	opts := []wrapper.HTTPOption{}
	if req.Format != "" {
		opts = append(opts, wrapper.WithFormat(schema.Format(req.Format)))
	}
	for from, to := range req.Renames {
		opts = append(opts, wrapper.WithRename(from, to))
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.QueryTimeout)
	defer cancel()
	hw, err := wrapper.NewHTTP(ctx, req.Name, req.Source, req.URL, opts...)
	if err != nil {
		fail(w, http.StatusBadGateway, err)
		return
	}
	rel, err := s.sys.RegisterWrapper(hw)
	if err != nil {
		fail(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusCreated, toReleaseResp(rel))
}

type wrapperInfo struct {
	Name      string `json:"name"`
	Source    string `json:"source"`
	Signature string `json:"signature"`
}

func (s *Server) handleListWrappers(w http.ResponseWriter, _ *http.Request) {
	var out []wrapperInfo
	for _, name := range s.sys.Wrappers().Names() {
		wr, _ := s.sys.Wrappers().Get(name)
		out = append(out, wrapperInfo{Name: name, Source: wr.SourceID(), Signature: wr.Signature().String()})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleReleases(w http.ResponseWriter, _ *http.Request) {
	rels := s.sys.ReleaseLog()
	out := make([]releaseResp, len(rels))
	for i, rel := range rels {
		out[i] = toReleaseResp(rel)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleDrift(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("wrapper")
	ctx, cancel := context.WithTimeout(r.Context(), s.QueryTimeout)
	defer cancel()
	changes, err := s.sys.DetectDrift(ctx, name)
	if err != nil {
		fail(w, http.StatusNotFound, err)
		return
	}
	descs := make([]string, len(changes))
	breaking := false
	for i, c := range changes {
		descs[i] = c.String()
		breaking = breaking || c.Breaking()
	}
	writeJSON(w, http.StatusOK, map[string]any{"wrapper": name, "drift": descs, "breaking": breaking})
}

// --- mappings ---

type mappingReq struct {
	Wrapper  string            `json:"wrapper"`
	Subgraph [][3]string       `json:"subgraph"`
	SameAs   map[string]string `json:"sameAs"`
}

func (s *Server) handleDefineMapping(w http.ResponseWriter, r *http.Request) {
	var req mappingReq
	if !decode(w, r, &req) {
		return
	}
	m := mdm.Mapping{Wrapper: req.Wrapper, SameAs: map[string]mdm.Term{}}
	for _, t := range req.Subgraph {
		m.Subgraph = append(m.Subgraph, mdm.T(s.sys.IRI(t[0]), s.sys.IRI(t[1]), s.sys.IRI(t[2])))
	}
	for attr, feat := range req.SameAs {
		m.SameAs[attr] = s.sys.IRI(feat)
	}
	if err := s.sys.DefineMapping(m); err != nil {
		fail(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"status": "ok"})
}

func (s *Server) handleSuggestMapping(w http.ResponseWriter, r *http.Request) {
	newW := r.PathValue("wrapper")
	prev := r.URL.Query().Get("from")
	if prev == "" {
		fail(w, http.StatusBadRequest, fmt.Errorf("rest: query parameter 'from' (previous wrapper) required"))
		return
	}
	m, changes, err := s.sys.SuggestMapping(prev, newW)
	if err != nil {
		fail(w, http.StatusUnprocessableEntity, err)
		return
	}
	pm := s.sys.Ontology().Dataset().Prefixes()
	resp := mappingReq{Wrapper: m.Wrapper, SameAs: map[string]string{}}
	for _, t := range m.Subgraph {
		resp.Subgraph = append(resp.Subgraph, [3]string{
			pm.CompactTerm(t.S), pm.CompactTerm(t.P), pm.CompactTerm(t.O)})
	}
	for attr, feat := range m.SameAs {
		resp.SameAs[attr] = pm.CompactTerm(feat)
	}
	descs := make([]string, len(changes))
	for i, c := range changes {
		descs[i] = c.String()
	}
	writeJSON(w, http.StatusOK, map[string]any{"mapping": resp, "changes": descs})
}

// --- querying ---

// walkReq is the JSON form of a walk — what the original UI's drawn
// contour serializes to. Select is ordered: it determines the output
// column order.
type walkReq struct {
	// Select lists the projected features in order.
	Select []selectItem `json:"select"`
	// Relations lists [from, property, to] concept edges.
	Relations [][3]string `json:"relations,omitempty"`
	// Concepts may list extra concepts with no projected features.
	Concepts []string `json:"concepts,omitempty"`
}

// selectItem is one projected feature.
type selectItem struct {
	Concept string `json:"concept"`
	Feature string `json:"feature"`
	// Alias optionally names the output column.
	Alias string `json:"alias,omitempty"`
}

type queryResp struct {
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	SPARQL  string     `json:"sparql"`
	Algebra []string   `json:"algebra"`
	CQs     int        `json:"cqs"`
	// Degradation annotations, present only for partial results.
	Partial        bool              `json:"partial,omitempty"`
	MissingSources []mdm.SourceError `json:"missing_sources,omitempty"`
	StaleSources   []string          `json:"stale_sources,omitempty"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req walkReq
	if !decode(w, r, &req) {
		return
	}
	walk, err := s.buildWalk(req)
	if err != nil {
		fail(w, http.StatusBadRequest, err)
		return
	}
	s.runWalk(w, r, walk)
}

type sparqlReq struct {
	Query string `json:"query"`
}

// handleQuerySPARQL accepts an OMQ written in SPARQL, translates it to a
// walk and answers it through the LAV rewriting (the analyst-facing
// querying surface for SPARQL-literate users).
func (s *Server) handleQuerySPARQL(w http.ResponseWriter, r *http.Request) {
	var req sparqlReq
	if !decode(w, r, &req) {
		return
	}
	walk, err := s.sys.WalkFromSPARQL(req.Query)
	if err != nil {
		fail(w, http.StatusUnprocessableEntity, err)
		return
	}
	s.runWalk(w, r, walk)
}

// handleSPARQL evaluates a metadata query through the cursor engine:
// limit/offset are pushed into evaluation (a page costs O(page), not
// O(result)), the request context cancels the query when the client
// disconnects, and format=ndjson streams rows as they are produced.
// With explain=1 the query still runs to completion but the response
// is the execution report (stages, per-operator spans, plan summary)
// instead of rows. Every request carries a lightweight trace so slow
// queries log their stage breakdown; explain upgrades it to
// per-operator detail.
func (s *Server) handleSPARQL(w http.ResponseWriter, r *http.Request) {
	var req sparqlReq
	if !decode(w, r, &req) {
		return
	}
	limit, offset, err := pageParams(r)
	if err != nil {
		fail(w, http.StatusBadRequest, err)
		return
	}
	explain := wantExplain(r)
	tr := obs.NewTrace()
	tr.Detail = explain
	t0 := time.Now()
	status := http.StatusOK
	var rows int64
	defer func() {
		s.logSlow(time.Since(t0), tr, "POST /api/sparql", req.Query, status, rows, false, nil)
	}()

	cur, err := s.sys.SPARQLPageTrace(req.Query, limit, offset, tr)
	if err != nil {
		status = http.StatusUnprocessableEntity
		fail(w, status, err)
		return
	}
	defer cur.Close()
	ctx, cancel := context.WithTimeout(r.Context(), s.QueryTimeout)
	defer cancel()

	// The execute stage covers the drain (cursor evaluation is lazy);
	// endExec is idempotent so every exit path below can settle it
	// before the deferred slow-log check reads the stages.
	et0 := time.Now()
	execDone := false
	endExec := func() {
		if execDone {
			return
		}
		execDone = true
		d := time.Since(et0)
		sparql.ObserveStage("execute", d)
		tr.StageDur("execute", d)
		rows = cur.Rows()
	}
	defer endExec()

	if explain {
		for cur.Next(ctx) {
		}
		endExec()
		if err := cur.Err(); err != nil {
			status = queryStatus(err)
			fail(w, status, err)
			return
		}
		tr.SetAttr("rows", strconv.FormatInt(cur.Rows(), 10))
		writeJSON(w, http.StatusOK, map[string]any{"explain": tr.Report()})
		return
	}

	if cur.Form() == sparql.FormAsk {
		ask := cur.Next(ctx)
		endExec()
		if err := cur.Err(); err != nil {
			status = queryStatus(err)
			fail(w, status, err)
			return
		}
		if wantNDJSON(r) {
			startNDJSON(w).line(map[string]any{"ask": ask})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"ask": ask})
		return
	}

	// Unbound (OPTIONAL-miss) variables render as empty cells.
	vars := cur.Vars()
	cells := func() []string {
		row := cur.Row()
		out := make([]string, len(vars))
		for i := range vars {
			if t, ok := row.Term(i); ok {
				out[i] = t.Value
			}
		}
		return out
	}

	if wantNDJSON(r) {
		// Streaming: the header line commits the 200. An error after
		// that (e.g. the server-side query timeout) is reported as a
		// trailing error line so a still-connected client can tell a
		// truncated stream from a complete one.
		out := startNDJSON(w)
		out.line(map[string]any{"vars": vars})
		for cur.Next(ctx) {
			out.line(cells())
		}
		if err := cur.Err(); err != nil {
			out.line(apiError{Error: err.Error()})
		}
		return
	}

	page := [][]string{}
	for cur.Next(ctx) {
		page = append(page, cells())
	}
	endExec()
	if err := cur.Err(); err != nil {
		status = queryStatus(err)
		fail(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"vars": vars, "rows": page})
}

// --- saved walks (analytical processes) ---

// savedWalkReq names a walk so analysts can re-run their analytical
// processes later. Saved walks are stored as metadata, not plans: they
// are re-rewritten at run time, which is precisely how MDM keeps
// "hundreds of analytical processes" (paper §1) working across schema
// evolution — after a new release, running the same saved walk simply
// produces a union over more wrapper versions.
type savedWalkReq struct {
	Name string `json:"name"`
	walkReq
}

func (s *Server) handleSaveWalk(w http.ResponseWriter, r *http.Request) {
	var req savedWalkReq
	if !decode(w, r, &req) {
		return
	}
	if req.Name == "" {
		fail(w, http.StatusBadRequest, fmt.Errorf("rest: walk name required"))
		return
	}
	// Validate now so broken walks are rejected at save time.
	walk, err := s.buildWalk(req.walkReq)
	if err != nil {
		fail(w, http.StatusBadRequest, err)
		return
	}
	if _, err := s.sys.Rewrite(walk); err != nil {
		fail(w, http.StatusUnprocessableEntity, err)
		return
	}
	blob, err := json.Marshal(req.walkReq)
	if err != nil {
		fail(w, http.StatusInternalServerError, err)
		return
	}
	if existing, ok := s.sys.Metadata().FindOne("walks", store.Doc{"name": req.Name}); ok {
		if _, err := s.sys.Metadata().Update("walks", existing.ID(), store.Doc{"name": req.Name, "walk": string(blob)}); err != nil {
			fail(w, http.StatusInternalServerError, err)
			return
		}
	} else if _, err := s.sys.Metadata().Insert("walks", store.Doc{"name": req.Name, "walk": string(blob)}); err != nil {
		fail(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"status": "ok", "name": req.Name})
}

func (s *Server) handleListWalks(w http.ResponseWriter, _ *http.Request) {
	docs := s.sys.Metadata().Find("walks", nil)
	names := make([]string, 0, len(docs))
	for _, d := range docs {
		if n, ok := d["name"].(string); ok {
			names = append(names, n)
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"walks": names})
}

func (s *Server) handleRunWalk(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	doc, ok := s.sys.Metadata().FindOne("walks", store.Doc{"name": name})
	if !ok {
		fail(w, http.StatusNotFound, fmt.Errorf("rest: no saved walk %q", name))
		return
	}
	var req walkReq
	if err := json.Unmarshal([]byte(doc["walk"].(string)), &req); err != nil {
		fail(w, http.StatusInternalServerError, fmt.Errorf("rest: corrupt saved walk: %w", err))
		return
	}
	walk, err := s.buildWalk(req)
	if err != nil {
		fail(w, http.StatusUnprocessableEntity, err)
		return
	}
	s.runWalk(w, r, walk)
}

// buildWalk converts a JSON walk request to a Walk.
func (s *Server) buildWalk(req walkReq) (*mdm.Walk, error) {
	walk := mdm.NewWalk()
	for _, c := range req.Concepts {
		walk.AddConcept(s.sys.IRI(c))
	}
	for _, sel := range req.Select {
		if sel.Concept == "" || sel.Feature == "" {
			return nil, fmt.Errorf("rest: select items need concept and feature")
		}
		if sel.Alias != "" {
			walk.SelectAs(s.sys.IRI(sel.Concept), s.sys.IRI(sel.Feature), sel.Alias)
		} else {
			walk.Select(s.sys.IRI(sel.Concept), s.sys.IRI(sel.Feature))
		}
	}
	for _, rel := range req.Relations {
		walk.Relate(s.sys.IRI(rel[0]), s.sys.IRI(rel[1]), s.sys.IRI(rel[2]))
	}
	return walk, nil
}

// runWalk executes a walk through the streaming federation engine and
// renders the answer under the shared paging/streaming contract: the
// limit/offset page is pushed into the pipeline (a page costs
// O(sources + page), not O(result)), the request context (bounded by
// QueryTimeout) cancels both the source scatter and the drain, and
// format=ndjson streams rows as they are produced.
//
// Error mapping matches the metadata SPARQL endpoints: a disconnect
// reports 499, a timeout (the scatter's per-source deadline or the
// query timeout) 504, a circuit-breaker fast-fail 503, a semantic
// failure 422 — all pre-header; an error
// after the NDJSON header commits the 200 is reported as a trailing
// {"error": ...} line so a still-connected client can tell a truncated
// stream from a complete one. Rows stream in plan order, which is
// deterministic for unchanged source snapshots, so pages partition the
// result exactly as a full drain delivers it.
func (s *Server) runWalk(w http.ResponseWriter, r *http.Request, walk *mdm.Walk) {
	limit, offset, err := pageParams(r)
	if err != nil {
		fail(w, http.StatusBadRequest, err)
		return
	}
	mode, err := partialParam(r)
	if err != nil {
		fail(w, http.StatusBadRequest, err)
		return
	}
	explain := wantExplain(r)
	tr := obs.NewTrace()
	tr.Detail = explain
	t0 := time.Now()
	ctx, cancel := context.WithTimeout(r.Context(), s.QueryTimeout)
	defer cancel()
	// The trace rides the context: QueryRun records the rewrite stage
	// and plan summary, the federation engine the scatter stage and
	// per-source spans.
	ctx = obs.WithTrace(ctx, tr)
	cur, res, err := s.sys.QueryRun(ctx, walk, mdm.QueryOpts{Limit: limit, Offset: offset, Partial: mode})
	if err != nil {
		failQuery(w, err)
		return
	}
	defer cur.Close()
	status := http.StatusOK
	var rows int64
	dt0 := time.Now()
	drained := false
	endDrain := func() {
		if !drained {
			drained = true
			tr.StageDur("drain", time.Since(dt0))
		}
	}
	defer func() {
		endDrain()
		var miss []obs.MissingSource
		for _, m := range cur.Missing() {
			miss = append(miss, obs.MissingSource{Source: m.Source, Class: string(m.Class)})
		}
		s.logSlow(time.Since(t0), tr, r.Method+" "+r.URL.Path, res.SPARQL,
			status, rows, cur.Partial(), miss)
	}()
	if cur.Partial() {
		// Before the status line commits: degraded completeness is
		// visible without parsing the body.
		w.Header().Set("X-MDM-Partial", "true")
	}

	if explain {
		for cur.Next(ctx) {
			rows++
		}
		endDrain()
		if err := cur.Err(); err != nil {
			status = queryStatus(err)
			fail(w, status, err)
			return
		}
		tr.SetAttr("cqs", strconv.Itoa(len(res.CQs)))
		tr.SetAttr("rows", strconv.FormatInt(rows, 10))
		if cur.Partial() {
			tr.SetAttr("partial", "true")
		}
		writeJSON(w, http.StatusOK, map[string]any{"explain": tr.Report(), "sparql": res.SPARQL})
		return
	}

	cells := func() []string {
		row := cur.Row()
		out := make([]string, len(row))
		for i, v := range row {
			out[i] = v.Text()
		}
		return out
	}

	if wantNDJSON(r) {
		out := startNDJSON(w)
		head := map[string]any{"columns": cur.Columns(), "sparql": res.SPARQL}
		if cur.Partial() {
			head["partial"] = true
			if m := cur.Missing(); len(m) > 0 {
				head["missing_sources"] = m
			}
			if st := cur.StaleSources(); len(st) > 0 {
				head["stale_sources"] = st
			}
		}
		out.line(head)
		for cur.Next(ctx) {
			rows++
			out.line(cells())
		}
		if err := cur.Err(); err != nil {
			out.line(apiError{Error: err.Error()})
		}
		return
	}

	page := [][]string{}
	for cur.Next(ctx) {
		page = append(page, cells())
	}
	endDrain()
	rows = int64(len(page))
	if err := cur.Err(); err != nil {
		status = queryStatus(err)
		fail(w, status, err)
		return
	}
	resp := queryResp{
		Columns: cur.Columns(), SPARQL: res.SPARQL, CQs: len(res.CQs), Rows: page,
		Partial: cur.Partial(), MissingSources: cur.Missing(), StaleSources: cur.StaleSources(),
	}
	for _, cq := range res.CQs {
		resp.Algebra = append(resp.Algebra, cq.Algebra)
	}
	writeJSON(w, http.StatusOK, resp)
}
