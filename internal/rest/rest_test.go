package rest_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mdm"
	"mdm/internal/apisim"
	"mdm/internal/federate"
	"mdm/internal/rest"
	"mdm/internal/schema"
	"mdm/internal/usecase"
	"mdm/internal/wrapper"
)

// client is a tiny JSON test client.
type client struct {
	t    *testing.T
	base string
	http *http.Client
}

func (c *client) do(method, path string, body any, wantStatus int) map[string]any {
	c.t.Helper()
	var rdr *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			c.t.Fatal(err)
		}
		rdr = bytes.NewReader(b)
	} else {
		rdr = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, c.base+path, rdr)
	if err != nil {
		c.t.Fatal(err)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	dec := json.NewDecoder(resp.Body)
	_ = dec.Decode(&out)
	if resp.StatusCode != wantStatus {
		c.t.Fatalf("%s %s: status %d, want %d (body %v)", method, path, resp.StatusCode, wantStatus, out)
	}
	return out
}

func (c *client) doList(method, path string, wantStatus int) []any {
	c.t.Helper()
	resp, err := c.http.Get(c.base + path)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		c.t.Fatalf("%s %s: status %d, want %d", method, path, resp.StatusCode, wantStatus)
	}
	var out []any
	_ = json.NewDecoder(resp.Body).Decode(&out)
	return out
}

// setupServer boots the full stack: simulated provider + MDM REST API.
func setupServer(t *testing.T) (*client, *apisim.Football) {
	t.Helper()
	provider := apisim.NewFootball()
	t.Cleanup(provider.Close)
	sys := mdm.New()
	srv := httptest.NewServer(rest.NewServer(sys))
	t.Cleanup(srv.Close)
	return &client{t: t, base: srv.URL, http: srv.Client()}, provider
}

// stewardSetup drives the full "System setup" demo scenario over HTTP.
func stewardSetup(t *testing.T, c *client, provider *apisim.Football) {
	t.Helper()
	c.do("POST", "/api/prefixes", map[string]string{"prefix": "ex", "namespace": "http://ex.org/"}, 201)
	c.do("POST", "/api/prefixes", map[string]string{"prefix": "sc", "namespace": "http://schema.org/"}, 201)

	for _, req := range []map[string]string{
		{"iri": "ex:Player", "label": "Player"},
		{"iri": "sc:SportsTeam", "label": "SportsTeam"},
	} {
		c.do("POST", "/api/global/concepts", req, 201)
	}
	features := map[string]string{
		"ex:playerId": "ex:Player", "ex:playerName": "ex:Player",
		"ex:height": "ex:Player", "ex:teamId": "sc:SportsTeam",
		"ex:teamName": "sc:SportsTeam",
	}
	for f, concept := range features {
		c.do("POST", "/api/global/features", map[string]string{"iri": f, "label": f}, 201)
		c.do("POST", "/api/global/attach", map[string]string{"concept": concept, "feature": f}, 201)
	}
	c.do("POST", "/api/global/identifiers", map[string]string{"feature": "ex:playerId"}, 201)
	c.do("POST", "/api/global/identifiers", map[string]string{"feature": "ex:teamId"}, 201)
	c.do("POST", "/api/global/relations",
		map[string]string{"from": "ex:Player", "property": "ex:playsIn", "to": "sc:SportsTeam"}, 201)

	c.do("POST", "/api/sources", map[string]string{"id": "players-api", "label": "Players API"}, 201)
	c.do("POST", "/api/sources", map[string]string{"id": "teams-api", "label": "Teams API"}, 201)

	c.do("POST", "/api/wrappers", map[string]any{
		"name": "w1", "source": "players-api", "url": provider.URL() + "/v1/players",
		"renames": map[string]string{"name": "pName", "preferred_foot": "foot", "team_id": "teamId", "rating": "score"},
	}, 201)
	c.do("POST", "/api/wrappers", map[string]any{
		"name": "w2", "source": "teams-api", "url": provider.URL() + "/v1/teams",
	}, 201)

	c.do("POST", "/api/mappings", map[string]any{
		"wrapper": "w1",
		"subgraph": [][3]string{
			{"ex:Player", "rdf:type", "G:Concept"},
			{"ex:Player", "G:hasFeature", "ex:playerId"},
			{"ex:Player", "G:hasFeature", "ex:playerName"},
			{"ex:Player", "G:hasFeature", "ex:height"},
			{"ex:Player", "ex:playsIn", "sc:SportsTeam"},
			{"sc:SportsTeam", "rdf:type", "G:Concept"},
			{"sc:SportsTeam", "G:hasFeature", "ex:teamId"},
		},
		"sameAs": map[string]string{
			"id": "ex:playerId", "pName": "ex:playerName",
			"height": "ex:height", "teamId": "ex:teamId",
		},
	}, 201)
	c.do("POST", "/api/mappings", map[string]any{
		"wrapper": "w2",
		"subgraph": [][3]string{
			{"sc:SportsTeam", "rdf:type", "G:Concept"},
			{"sc:SportsTeam", "G:hasFeature", "ex:teamId"},
			{"sc:SportsTeam", "G:hasFeature", "ex:teamName"},
		},
		"sameAs": map[string]string{"id": "ex:teamId", "name": "ex:teamName"},
	}, 201)
}

func TestEndToEndSetupAndQuery(t *testing.T) {
	c, provider := setupServer(t)
	stewardSetup(t, c, provider)

	// Validation must pass.
	v := c.do("GET", "/api/validate", nil, 200)
	if v["consistent"] != true {
		t.Fatalf("validate = %v", v)
	}

	// Stats reflect the setup.
	st := c.do("GET", "/api/stats", nil, 200)
	if st["Concepts"].(float64) != 2 || st["Wrappers"].(float64) != 2 || st["Mappings"].(float64) != 2 {
		t.Fatalf("stats = %v", st)
	}

	// Figure 8 query over HTTP.
	q := c.do("POST", "/api/query", map[string]any{
		"select": []map[string]string{
			{"concept": "sc:SportsTeam", "feature": "ex:teamName", "alias": "teamName"},
			{"concept": "ex:Player", "feature": "ex:playerName", "alias": "playerName"},
		},
		"relations": [][3]string{{"ex:Player", "ex:playsIn", "sc:SportsTeam"}},
	}, 200)
	if q["cqs"].(float64) != 1 {
		t.Fatalf("cqs = %v", q["cqs"])
	}
	rows := q["rows"].([]any)
	if len(rows) != 5 {
		t.Fatalf("rows = %d: %v", len(rows), rows)
	}
	var sawMessi bool
	for _, r := range rows {
		cells := r.([]any)
		if cells[1] == "Lionel Messi" && cells[0] == "FC Barcelona" {
			sawMessi = true
		}
	}
	if !sawMessi {
		t.Errorf("Table 1 row missing: %v", rows)
	}
	if !strings.Contains(q["sparql"].(string), "SELECT") {
		t.Errorf("sparql = %v", q["sparql"])
	}
	alg := q["algebra"].([]any)
	if len(alg) != 1 || !strings.Contains(alg[0].(string), "⋈") {
		t.Errorf("algebra = %v", alg)
	}

	// Renders.
	g := c.do("GET", "/api/render/global", nil, 200)
	if !strings.Contains(g["text"].(string), "concept ex:Player") {
		t.Errorf("render global = %v", g["text"])
	}
	// Wrapper listing.
	ws := c.doList("GET", "/api/wrappers", 200)
	if len(ws) != 2 {
		t.Errorf("wrappers = %v", ws)
	}
	// Releases: two new-source releases.
	rels := c.doList("GET", "/api/releases", 200)
	if len(rels) != 2 {
		t.Errorf("releases = %v", rels)
	}
}

func TestEvolutionScenarioOverHTTP(t *testing.T) {
	c, provider := setupServer(t)
	stewardSetup(t, c, provider)

	// Drift: none initially.
	d := c.do("GET", "/api/drift/w1", nil, 200)
	if d["breaking"] != false {
		t.Fatalf("unexpected drift: %v", d)
	}

	// Provider breaks the unversioned endpoint... but w1 points to
	// /v1/players, so we register the v2 wrapper as a new release.
	c.do("POST", "/api/wrappers", map[string]any{
		"name": "w1v2", "source": "players-api", "url": provider.URL() + "/v2/players",
		"renames": map[string]string{"full_name": "pName", "preferred_foot": "foot", "team_id": "teamId"},
	}, 201)

	// The release log marks it breaking vs w1.
	rels := c.doList("GET", "/api/releases", 200)
	last := rels[len(rels)-1].(map[string]any)
	if last["kind"] != "new-version" || last["breaking"] != true || last["supersedes"] != "w1" {
		t.Fatalf("v2 release = %v", last)
	}

	// Suggested mapping from w1.
	sm := c.do("GET", "/api/mappings/w1v2/suggest?from=w1", nil, 200)
	mp := sm["mapping"].(map[string]any)
	sameAs := mp["sameAs"].(map[string]any)
	if sameAs["pName"] != "ex:playerName" {
		t.Fatalf("suggested sameAs = %v", sameAs)
	}

	// Define the suggested mapping verbatim.
	var subgraph [][3]string
	for _, tr := range mp["subgraph"].([]any) {
		arr := tr.([]any)
		subgraph = append(subgraph, [3]string{arr[0].(string), arr[1].(string), arr[2].(string)})
	}
	sa := map[string]string{}
	for k, v := range sameAs {
		sa[k] = v.(string)
	}
	c.do("POST", "/api/mappings", map[string]any{
		"wrapper": "w1v2", "subgraph": subgraph, "sameAs": sa,
	}, 201)

	// The same query now unions both versions: Pedri (v2-only) appears.
	q := c.do("POST", "/api/query", map[string]any{
		"select": []map[string]string{
			{"concept": "sc:SportsTeam", "feature": "ex:teamName"},
			{"concept": "ex:Player", "feature": "ex:playerName"},
		},
		"relations": [][3]string{{"ex:Player", "ex:playsIn", "sc:SportsTeam"}},
	}, 200)
	if q["cqs"].(float64) != 2 {
		t.Fatalf("cqs after evolution = %v", q["cqs"])
	}
	var sawPedri, sawZlatan bool
	for _, r := range q["rows"].([]any) {
		cells := r.([]any)
		for _, cell := range cells {
			if cell == "Pedri" {
				sawPedri = true
			}
			if cell == "Zlatan Ibrahimovic" {
				sawZlatan = true
			}
		}
	}
	if !sawPedri || !sawZlatan {
		t.Errorf("union incomplete: pedri=%v zlatan=%v rows=%v", sawPedri, sawZlatan, q["rows"])
	}
}

func TestDriftDetectionOverHTTP(t *testing.T) {
	c, provider := setupServer(t)
	c.do("POST", "/api/sources", map[string]string{"id": "players-api", "label": ""}, 201)
	// Wrapper on the UNVERSIONED endpoint.
	c.do("POST", "/api/wrappers", map[string]any{
		"name": "wu", "source": "players-api", "url": provider.URL() + "/players",
	}, 201)
	provider.BreakPlayersEndpoint()
	d := c.do("GET", "/api/drift/wu", nil, 200)
	if d["breaking"] != true {
		t.Fatalf("in-place break not detected: %v", d)
	}
	drift := d["drift"].([]any)
	if len(drift) == 0 {
		t.Fatal("empty drift list")
	}
}

func TestSPARQLEndpoint(t *testing.T) {
	c, provider := setupServer(t)
	stewardSetup(t, c, provider)
	res := c.do("POST", "/api/sparql", map[string]string{
		"query": `PREFIX G: <http://www.essi.upc.edu/~snadal/BDIOntology/Global/>
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
SELECT ?c WHERE { GRAPH <http://www.essi.upc.edu/~snadal/BDIOntology/Global/graph> { ?c rdf:type G:Concept . } } ORDER BY ?c`,
	}, 200)
	rows := res["rows"].([]any)
	if len(rows) != 2 {
		t.Fatalf("sparql rows = %v", rows)
	}
	ask := c.do("POST", "/api/sparql", map[string]string{
		"query": `ASK { ?s ?p ?o . }`,
	}, 200)
	// The default graph is empty (everything lives in named graphs).
	if ask["ask"] != false {
		t.Errorf("ask = %v", ask)
	}
}

func TestErrorPaths(t *testing.T) {
	c, provider := setupServer(t)
	// Bad JSON.
	req, _ := http.NewRequest("POST", c.base+"/api/sources", strings.NewReader("{nope"))
	resp, err := c.http.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("bad JSON status = %d", resp.StatusCode)
	}
	// Unknown fields rejected.
	c.do("POST", "/api/sources", map[string]any{"id": "x", "label": "y", "bogus": 1}, 400)
	// Wrapper registration requires fields.
	c.do("POST", "/api/wrappers", map[string]any{"name": "w"}, 400)
	// Wrapper against dead endpoint -> 502.
	c.do("POST", "/api/sources", map[string]string{"id": "s1", "label": ""}, 201)
	c.do("POST", "/api/wrappers", map[string]any{
		"name": "w", "source": "s1", "url": "http://127.0.0.1:1/nope",
	}, 502)
	// Query on empty system -> 422.
	c.do("POST", "/api/query", map[string]any{
		"select": []map[string]string{{"concept": "ex:Ghost", "feature": "ex:f"}},
	}, 422)
	// Drift for unknown wrapper -> 404.
	c.do("GET", "/api/drift/ghost", nil, 404)
	// Suggest without 'from' -> 400.
	c.do("GET", "/api/mappings/w1/suggest", nil, 400)
	// Bad SPARQL -> 422.
	c.do("POST", "/api/sparql", map[string]string{"query": "garbage"}, 422)
	// Mapping for unknown wrapper -> 422.
	c.do("POST", "/api/mappings", map[string]any{
		"wrapper": "ghost", "subgraph": [][3]string{}, "sameAs": map[string]string{},
	}, 422)
	_ = provider
}

func TestExportEndpoint(t *testing.T) {
	c, provider := setupServer(t)
	stewardSetup(t, c, provider)
	resp, err := c.http.Get(c.base + "/api/export")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	body := buf.String()
	if !strings.Contains(body, "@prefix") || !strings.Contains(body, "Concept") {
		t.Errorf("export = %.200s", body)
	}
	// Round trip through mdm.ImportTriG.
	sys2, err := mdm.ImportTriG(body)
	if err != nil {
		t.Fatalf("reimport: %v", err)
	}
	if sys2.Stats().Concepts != 2 {
		t.Errorf("reimported stats = %+v", sys2.Stats())
	}
}

func TestQueryMethodNotAllowed(t *testing.T) {
	c, _ := setupServer(t)
	resp, err := c.http.Get(c.base + "/api/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /api/query = %d", resp.StatusCode)
	}
}

func ExampleServer() {
	sys := mdm.New()
	srv := httptest.NewServer(rest.NewServer(sys))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/api/stats")
	if err != nil {
		fmt.Println(err)
		return
	}
	defer resp.Body.Close()
	fmt.Println(resp.StatusCode)
	// Output: 200
}

func TestQuerySPARQLEndpoint(t *testing.T) {
	c, provider := setupServer(t)
	stewardSetup(t, c, provider)
	q := c.do("POST", "/api/query/sparql", map[string]string{
		"query": `PREFIX ex: <http://ex.org/>
PREFIX sc: <http://schema.org/>
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
SELECT ?teamName ?playerName WHERE {
  ?t rdf:type sc:SportsTeam .
  ?t ex:teamName ?teamName .
  ?p rdf:type ex:Player .
  ?p ex:playerName ?playerName .
  ?p ex:playsIn ?t .
}`,
	}, 200)
	rows := q["rows"].([]any)
	if len(rows) != 5 {
		t.Fatalf("sparql walk rows = %d", len(rows))
	}
	cols := q["columns"].([]any)
	if cols[0] != "teamName" || cols[1] != "playerName" {
		t.Errorf("columns = %v", cols)
	}
	// Unsupported fragment -> 422.
	c.do("POST", "/api/query/sparql", map[string]string{
		"query": `SELECT DISTINCT ?x WHERE { ?x ?p ?o . }`,
	}, 422)
}

func TestSavedWalksSurviveEvolution(t *testing.T) {
	c, provider := setupServer(t)
	stewardSetup(t, c, provider)

	// Save the analytical process once.
	c.do("POST", "/api/walks", map[string]any{
		"name": "players-and-teams",
		"select": []map[string]string{
			{"concept": "sc:SportsTeam", "feature": "ex:teamName", "alias": "teamName"},
			{"concept": "ex:Player", "feature": "ex:playerName", "alias": "playerName"},
		},
		"relations": [][3]string{{"ex:Player", "ex:playsIn", "sc:SportsTeam"}},
	}, 201)

	ls := c.do("GET", "/api/walks", nil, 200)
	walks := ls["walks"].([]any)
	if len(walks) != 1 || walks[0] != "players-and-teams" {
		t.Fatalf("walks = %v", walks)
	}

	// First run: one CQ, 5 rows.
	r1 := c.do("POST", "/api/walks/players-and-teams/run", nil, 200)
	if r1["cqs"].(float64) != 1 || len(r1["rows"].([]any)) != 5 {
		t.Fatalf("run1 = %v", r1)
	}

	// Evolution: register v2 wrapper + mapping (same steps as the
	// evolution test).
	c.do("POST", "/api/wrappers", map[string]any{
		"name": "w1v2", "source": "players-api", "url": provider.URL() + "/v2/players",
		"renames": map[string]string{"full_name": "pName", "preferred_foot": "foot", "team_id": "teamId"},
	}, 201)
	sm := c.do("GET", "/api/mappings/w1v2/suggest?from=w1", nil, 200)
	mp := sm["mapping"].(map[string]any)
	var subgraph [][3]string
	for _, tr := range mp["subgraph"].([]any) {
		arr := tr.([]any)
		subgraph = append(subgraph, [3]string{arr[0].(string), arr[1].(string), arr[2].(string)})
	}
	sa := map[string]string{}
	for k, v := range mp["sameAs"].(map[string]any) {
		sa[k] = v.(string)
	}
	c.do("POST", "/api/mappings", map[string]any{"wrapper": "w1v2", "subgraph": subgraph, "sameAs": sa}, 201)

	// Same saved walk, zero changes: now two CQs and v2-only rows.
	r2 := c.do("POST", "/api/walks/players-and-teams/run", nil, 200)
	if r2["cqs"].(float64) != 2 {
		t.Fatalf("run2 cqs = %v", r2["cqs"])
	}
	var sawPedri bool
	for _, r := range r2["rows"].([]any) {
		for _, cell := range r.([]any) {
			if cell == "Pedri" {
				sawPedri = true
			}
		}
	}
	if !sawPedri {
		t.Errorf("saved walk did not pick up the new version: %v", r2["rows"])
	}

	// Overwrite and error paths.
	c.do("POST", "/api/walks", map[string]any{
		"name": "players-and-teams",
		"select": []map[string]string{
			{"concept": "ex:Player", "feature": "ex:playerName"},
		},
	}, 201)
	if got := c.do("GET", "/api/walks", nil, 200)["walks"].([]any); len(got) != 1 {
		t.Errorf("overwrite duplicated the walk: %v", got)
	}
	c.do("POST", "/api/walks", map[string]any{"name": ""}, 400)
	c.do("POST", "/api/walks", map[string]any{
		"name":   "broken",
		"select": []map[string]string{{"concept": "ex:Ghost", "feature": "ex:f"}},
	}, 422)
	c.do("POST", "/api/walks/ghost/run", nil, 404)
}

// TestSPARQLUnboundRendering is a golden test for how the REST SPARQL
// endpoint renders unbound (OPTIONAL-miss) variables: as empty string
// cells, byte-identical to this fixture, never as the zero rdf.Term's
// rendering.
func TestSPARQLUnboundRendering(t *testing.T) {
	c, provider := setupServer(t)
	stewardSetup(t, c, provider)
	req, err := json.Marshal(map[string]string{
		"query": `PREFIX G: <http://www.essi.upc.edu/~snadal/BDIOntology/Global/>
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
SELECT ?c ?ghost WHERE {
  GRAPH <http://www.essi.upc.edu/~snadal/BDIOntology/Global/graph> {
    ?c rdf:type G:Concept .
    OPTIONAL { ?c G:noSuchProperty ?ghost . }
  }
} ORDER BY ?c`,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.http.Post(c.base+"/api/sparql", "application/json", bytes.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body bytes.Buffer
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	golden := `{"rows":[["http://ex.org/Player",""],["http://schema.org/SportsTeam",""]],"vars":["c","ghost"]}` + "\n"
	if got := body.String(); got != golden {
		t.Errorf("unbound rendering drifted:\n got: %s\nwant: %s", got, golden)
	}
}

// TestSPARQLNDJSONGolden pins the streaming wire format: a header line
// with the projection, then one JSON array of cells per solution row.
func TestSPARQLNDJSONGolden(t *testing.T) {
	c, provider := setupServer(t)
	stewardSetup(t, c, provider)
	req, err := json.Marshal(map[string]string{
		"query": `PREFIX G: <http://www.essi.upc.edu/~snadal/BDIOntology/Global/>
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
SELECT ?c WHERE { GRAPH <http://www.essi.upc.edu/~snadal/BDIOntology/Global/graph> { ?c rdf:type G:Concept . } } ORDER BY ?c`,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.http.Post(c.base+"/api/sparql?format=ndjson", "application/json", bytes.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type = %q", ct)
	}
	var body bytes.Buffer
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	golden := `{"vars":["c"]}` + "\n" +
		`["http://ex.org/Player"]` + "\n" +
		`["http://schema.org/SportsTeam"]` + "\n"
	if got := body.String(); got != golden {
		t.Errorf("NDJSON drifted:\n got: %q\nwant: %q", got, golden)
	}

	// ASK over NDJSON is a single line.
	req, _ = json.Marshal(map[string]string{"query": `ASK { ?s ?p ?o . }`})
	resp, err = c.http.Post(c.base+"/api/sparql?format=ndjson", "application/json", bytes.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body.Reset()
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if got := body.String(); got != `{"ask":false}`+"\n" {
		t.Errorf("NDJSON ask = %q", got)
	}
}

// TestSPARQLPagingParams: limit/offset URL parameters page the result
// (pushed into evaluation) and pages partition it.
func TestSPARQLPagingParams(t *testing.T) {
	c, provider := setupServer(t)
	stewardSetup(t, c, provider)
	q := map[string]string{
		"query": `PREFIX G: <http://www.essi.upc.edu/~snadal/BDIOntology/Global/>
SELECT ?c ?f WHERE { GRAPH <http://www.essi.upc.edu/~snadal/BDIOntology/Global/graph> { ?c G:hasFeature ?f . } }`,
	}
	full := c.do("POST", "/api/sparql", q, 200)
	all := full["rows"].([]any)
	if len(all) != 5 {
		t.Fatalf("full rows = %d", len(all))
	}
	var paged []any
	for off := 0; off < 7; off += 2 {
		page := c.do("POST", fmt.Sprintf("/api/sparql?limit=2&offset=%d", off), q, 200)
		rows, _ := page["rows"].([]any)
		paged = append(paged, rows...)
	}
	if len(paged) != 5 {
		t.Fatalf("concatenated pages = %d rows", len(paged))
	}
	for i := range all {
		if fmt.Sprint(paged[i]) != fmt.Sprint(all[i]) {
			t.Fatalf("page row %d = %v, want %v", i, paged[i], all[i])
		}
	}
	// Bad paging parameters are rejected.
	c.do("POST", "/api/sparql?limit=-3", q, 400)
	c.do("POST", "/api/sparql?offset=x", q, 400)
}

// TestSPARQLPagingOffsetOverflow: an offset near MaxInt64 must produce
// an empty page, not an integer-overflowed top-k capacity. Regression
// for the limit+offset overflow in the bounded paging path.
func TestSPARQLPagingOffsetOverflow(t *testing.T) {
	c, provider := setupServer(t)
	stewardSetup(t, c, provider)
	q := map[string]string{
		"query": `PREFIX G: <http://www.essi.upc.edu/~snadal/BDIOntology/Global/>
SELECT ?c ?f WHERE { GRAPH <http://www.essi.upc.edu/~snadal/BDIOntology/Global/graph> { ?c G:hasFeature ?f . } }`,
	}
	for _, off := range []string{"9223372036854775807", "9223372036854775806"} {
		page := c.do("POST", "/api/sparql?limit=1&offset="+off, q, 200)
		if rows, _ := page["rows"].([]any); len(rows) != 0 {
			t.Fatalf("offset=%s: got %d rows, want empty page", off, len(rows))
		}
	}
	// An offset one past the actual result size still pages normally.
	page := c.do("POST", "/api/sparql?limit=1&offset=5", q, 200)
	if rows, _ := page["rows"].([]any); len(rows) != 0 {
		t.Fatalf("offset=5: got %d rows past the end", len(rows))
	}
	page = c.do("POST", "/api/sparql?limit=1&offset=4", q, 200)
	if rows, _ := page["rows"].([]any); len(rows) != 1 {
		t.Fatalf("offset=4 limit=1: got %d rows, want 1", len(rows))
	}
}

// TestWalkQueryPagingAndNDJSON: the federated walk endpoints honor the
// same paging/streaming parameters.
func TestWalkQueryPagingAndNDJSON(t *testing.T) {
	c, provider := setupServer(t)
	stewardSetup(t, c, provider)
	walk := map[string]any{
		"select": []map[string]string{
			{"concept": "ex:Player", "feature": "ex:playerName", "alias": "playerName"},
		},
	}
	full := c.do("POST", "/api/query", walk, 200)
	if n := len(full["rows"].([]any)); n != 5 {
		t.Fatalf("full rows = %d", n)
	}
	page := c.do("POST", "/api/query?limit=2&offset=4", walk, 200)
	if n := len(page["rows"].([]any)); n != 1 {
		t.Fatalf("page rows = %d", n)
	}
	// Bad paging parameters are rejected up front (before execution).
	c.do("POST", "/api/query?limit=x", walk, 400)

	b, _ := json.Marshal(walk)
	resp, err := c.http.Post(c.base+"/api/query?format=ndjson&limit=2", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body bytes.Buffer
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(body.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("ndjson lines = %d: %q", len(lines), body.String())
	}
	var hdr struct {
		Columns []string `json:"columns"`
		SPARQL  string   `json:"sparql"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &hdr); err != nil || len(hdr.Columns) != 1 || hdr.Columns[0] != "playerName" || hdr.SPARQL == "" {
		t.Fatalf("ndjson header = %q (err %v)", lines[0], err)
	}
	var row []string
	if err := json.Unmarshal([]byte(lines[1]), &row); err != nil || len(row) != 1 {
		t.Fatalf("ndjson row = %q (err %v)", lines[1], err)
	}
}

// TestRequestBodyLimit: oversized POST bodies get 413 with a JSON error
// instead of being read to the end.
func TestRequestBodyLimit(t *testing.T) {
	c, _ := setupServer(t)
	big := `{"query":"` + strings.Repeat("x", 2<<20) + `"}`
	resp, err := c.http.Post(c.base+"/api/sparql", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("413 body is not JSON: %v", err)
	}
	if msg, _ := out["error"].(string); !strings.Contains(msg, "exceeds") {
		t.Fatalf("413 error = %v", out)
	}
	// Non-query POST endpoints are capped too.
	resp2, err := c.http.Post(c.base+"/api/sources", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("sources status = %d, want 413", resp2.StatusCode)
	}
}

// TestClientDisconnectCancelsQuery: a request whose context is already
// canceled (the transport's signal that the client went away) must not
// evaluate the query; the handler reports 499.
func TestClientDisconnectCancelsQuery(t *testing.T) {
	f := usecase.MustNew()
	sys := mdm.FromParts(f.Ont, f.Reg)
	srv := rest.NewServer(sys)
	canceled, cancel := context.WithCancel(context.Background())
	cancel()

	post := func(path, body string) *httptest.ResponseRecorder {
		req := httptest.NewRequest("POST", path, strings.NewReader(body)).WithContext(canceled)
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		return rec
	}

	// Metadata SPARQL: the cursor engine surfaces ctx.Err on first Next.
	rec := post("/api/sparql", `{"query":"SELECT ?s WHERE { ?s ?p ?o . }"}`)
	if rec.Code != 499 {
		t.Fatalf("sparql status = %d, want 499 (body %s)", rec.Code, rec.Body)
	}
	if !strings.Contains(rec.Body.String(), "context canceled") {
		t.Fatalf("sparql body = %s", rec.Body)
	}

	// Federated OMQ: relalg execution checks ctx at every operator.
	rec = post("/api/query/sparql", `{"query":"PREFIX ex: <http://www.example.org/football/>\nPREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\nSELECT ?playerName WHERE { ?p rdf:type ex:Player . ?p ex:playerName ?playerName . }"}`)
	if rec.Code != 499 {
		t.Fatalf("query/sparql status = %d, want 499 (body %s)", rec.Code, rec.Body)
	}
}

// slowWalkSystem builds a system where the Fig8 walk's rewriting unions
// in a wrapper that never answers (it blocks until its fetch context is
// done), so walk endpoints stall inside the federation scatter phase.
func slowWalkSystem(t *testing.T) *mdm.System {
	t.Helper()
	f := usecase.MustNew()
	sys := mdm.FromParts(f.Ont, f.Reg)
	sys.Federation().SourceTimeout = 2 * time.Second // don't leak fills for 30s
	slow := wrapper.NewFunc("wslow", usecase.SrcPlayers, f.W1.Signature().Attributes,
		func(ctx context.Context) ([]schema.Doc, error) {
			<-ctx.Done()
			return nil, ctx.Err()
		})
	if _, err := sys.RegisterWrapper(slow); err != nil {
		t.Fatal(err)
	}
	m, ok := f.Ont.MappingOf("w1")
	if !ok {
		t.Fatal("w1 mapping missing")
	}
	m.Wrapper = "wslow"
	if err := sys.DefineMapping(m); err != nil {
		t.Fatal(err)
	}
	return sys
}

var fig8WalkBody = `{"select":[
  {"concept":"http://schema.org/SportsTeam","feature":"http://www.example.org/football/teamName","alias":"teamName"},
  {"concept":"http://www.example.org/football/Player","feature":"http://www.example.org/football/playerName","alias":"playerName"}],
 "relations":[["http://www.example.org/football/Player","http://www.example.org/football/playsIn","http://schema.org/SportsTeam"]]}`

// TestWalkSlowSourceTimeout504: a wrapper that outlives the query
// timeout surfaces 504 from the walk endpoints (the scatter's deadline
// maps to context.DeadlineExceeded).
func TestWalkSlowSourceTimeout504(t *testing.T) {
	sys := slowWalkSystem(t)
	srv := rest.NewServer(sys)
	srv.QueryTimeout = 50 * time.Millisecond

	req := httptest.NewRequest("POST", "/api/query", strings.NewReader(fig8WalkBody))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (body %s)", rec.Code, rec.Body)
	}
	if !strings.Contains(rec.Body.String(), "deadline") {
		t.Fatalf("body = %s", rec.Body)
	}
}

// TestWalkClientDisconnectMidFetch499: the client going away while a
// source fetch is in flight cancels the scatter; the handler reports
// 499 with the context error.
func TestWalkClientDisconnectMidFetch499(t *testing.T) {
	sys := slowWalkSystem(t)
	srv := rest.NewServer(sys)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	req := httptest.NewRequest("POST", "/api/query", strings.NewReader(fig8WalkBody)).WithContext(ctx)
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != 499 {
		t.Fatalf("status = %d, want 499 (body %s)", rec.Code, rec.Body)
	}
	if !strings.Contains(rec.Body.String(), "context canceled") {
		t.Fatalf("body = %s", rec.Body)
	}
}

// TestSavedWalkRunPagingAndNDJSON: /api/walks/{name}/run honors the
// same paging + NDJSON streaming contract as /api/query.
func TestSavedWalkRunPagingAndNDJSON(t *testing.T) {
	c, provider := setupServer(t)
	stewardSetup(t, c, provider)
	c.do("POST", "/api/walks", map[string]any{
		"name": "players",
		"select": []map[string]string{
			{"concept": "ex:Player", "feature": "ex:playerName", "alias": "playerName"},
		},
	}, 201)

	full := c.do("POST", "/api/walks/players/run", nil, 200)
	all := full["rows"].([]any)
	if len(all) != 5 {
		t.Fatalf("full rows = %d", len(all))
	}
	// Pages partition the stream in order.
	var paged []any
	for off := 0; off < 7; off += 2 {
		page := c.do("POST", fmt.Sprintf("/api/walks/players/run?limit=2&offset=%d", off), nil, 200)
		rows, _ := page["rows"].([]any)
		paged = append(paged, rows...)
	}
	if len(paged) != 5 {
		t.Fatalf("concatenated pages = %d rows", len(paged))
	}
	for i := range all {
		if fmt.Sprint(paged[i]) != fmt.Sprint(all[i]) {
			t.Fatalf("page row %d = %v, want %v", i, paged[i], all[i])
		}
	}

	resp, err := c.http.Post(c.base+"/api/walks/players/run?format=ndjson&limit=3", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type = %q", ct)
	}
	var body bytes.Buffer
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(body.String(), "\n"), "\n")
	if len(lines) != 4 { // header + 3 rows
		t.Fatalf("ndjson lines = %d: %q", len(lines), body.String())
	}
	var hdr struct {
		Columns []string `json:"columns"`
		SPARQL  string   `json:"sparql"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &hdr); err != nil || len(hdr.Columns) != 1 || hdr.SPARQL == "" {
		t.Fatalf("ndjson header = %q (err %v)", lines[0], err)
	}
}

// TestWalkQueryPagesPartitionStream: /api/query pages are slices of the
// full result stream, in stream order.
func TestWalkQueryPagesPartitionStream(t *testing.T) {
	c, provider := setupServer(t)
	stewardSetup(t, c, provider)
	walk := map[string]any{
		"select": []map[string]string{
			{"concept": "ex:Player", "feature": "ex:playerName", "alias": "playerName"},
		},
	}
	full := c.do("POST", "/api/query", walk, 200)
	all := full["rows"].([]any)
	if len(all) != 5 {
		t.Fatalf("full rows = %d", len(all))
	}
	var paged []any
	for off := 0; off < 7; off += 3 {
		page := c.do("POST", fmt.Sprintf("/api/query?limit=3&offset=%d", off), walk, 200)
		rows, _ := page["rows"].([]any)
		paged = append(paged, rows...)
	}
	if len(paged) != 5 {
		t.Fatalf("concatenated pages = %d", len(paged))
	}
	for i := range all {
		if fmt.Sprint(paged[i]) != fmt.Sprint(all[i]) {
			t.Fatalf("page row %d = %v, want %v", i, paged[i], all[i])
		}
	}
}

// downWalkSystem is slowWalkSystem's sibling: the players-side wrapper
// fails instantly with a 503 instead of stalling. Retries are disabled
// so each query costs exactly one fetch attempt per source.
func downWalkSystem(t *testing.T) *mdm.System {
	t.Helper()
	f := usecase.MustNew()
	sys := mdm.FromParts(f.Ont, f.Reg)
	sys.Federation().Retry.Max = 0
	down := wrapper.NewFunc("wdown", usecase.SrcPlayers, f.W1.Signature().Attributes,
		func(ctx context.Context) ([]schema.Doc, error) {
			return nil, &wrapper.StatusError{URL: "http://down.example/players", Code: 503}
		})
	if _, err := sys.RegisterWrapper(down); err != nil {
		t.Fatal(err)
	}
	m, ok := f.Ont.MappingOf("w1")
	if !ok {
		t.Fatal("w1 mapping missing")
	}
	m.Wrapper = "wdown"
	if err := sys.DefineMapping(m); err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestWalkPartialAnnotatedJSON: ?partial=1 turns a failed source into a
// 200 with X-MDM-Partial and a missing_sources annotation instead of an
// error status; without the parameter the same walk keeps PR 5's strict
// failure.
func TestWalkPartialAnnotatedJSON(t *testing.T) {
	sys := downWalkSystem(t)
	srv := rest.NewServer(sys)

	req := httptest.NewRequest("POST", "/api/query?partial=1", strings.NewReader(fig8WalkBody))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200 (body %s)", rec.Code, rec.Body)
	}
	if got := rec.Header().Get("X-MDM-Partial"); got != "true" {
		t.Fatalf("X-MDM-Partial = %q, want true", got)
	}
	var resp struct {
		Partial        bool `json:"partial"`
		MissingSources []struct {
			Source string `json:"source"`
			Class  string `json:"class"`
		} `json:"missing_sources"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Partial || len(resp.MissingSources) != 1 ||
		resp.MissingSources[0].Source != "wdown" || resp.MissingSources[0].Class != "http_5xx" {
		t.Fatalf("annotation = %+v, want partial with wdown/http_5xx", resp)
	}

	// Strict (no parameter): unchanged failure semantics.
	req = httptest.NewRequest("POST", "/api/query", strings.NewReader(fig8WalkBody))
	req.Header.Set("Content-Type", "application/json")
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("strict status = %d, want 422 (body %s)", rec.Code, rec.Body)
	}
	if rec.Header().Get("X-MDM-Partial") != "" {
		t.Fatal("strict failure must not carry X-MDM-Partial")
	}
}

// TestWalkPartialNDJSONHeaderAnnotation: the NDJSON header line carries
// the partial/missing_sources annotation; healthy walks' headers stay
// free of the new fields (backward compatibility).
func TestWalkPartialNDJSONHeaderAnnotation(t *testing.T) {
	sys := downWalkSystem(t)
	srv := rest.NewServer(sys)

	req := httptest.NewRequest("POST", "/api/query?partial=1&format=ndjson", strings.NewReader(fig8WalkBody))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d (body %s)", rec.Code, rec.Body)
	}
	if got := rec.Header().Get("X-MDM-Partial"); got != "true" {
		t.Fatalf("X-MDM-Partial = %q, want true", got)
	}
	lines := strings.Split(strings.TrimRight(rec.Body.String(), "\n"), "\n")
	var hdr struct {
		Columns        []string         `json:"columns"`
		Partial        bool             `json:"partial"`
		MissingSources []map[string]any `json:"missing_sources"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &hdr); err != nil {
		t.Fatalf("header %q: %v", lines[0], err)
	}
	if !hdr.Partial || len(hdr.MissingSources) != 1 || hdr.MissingSources[0]["source"] != "wdown" {
		t.Fatalf("header annotation = %+v", hdr)
	}

	// Healthy system: no partial fields in the header at all.
	c, provider := setupServer(t)
	stewardSetup(t, c, provider)
	resp, err := c.http.Post(c.base+"/api/query?format=ndjson&partial=1", "application/json",
		strings.NewReader(`{"select":[{"concept":"ex:Player","feature":"ex:playerName","alias":"playerName"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("X-MDM-Partial"); got != "" {
		t.Fatalf("healthy X-MDM-Partial = %q, want unset", got)
	}
	var body bytes.Buffer
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	head := strings.SplitN(body.String(), "\n", 2)[0]
	if strings.Contains(head, "partial") || strings.Contains(head, "missing_sources") {
		t.Fatalf("healthy header leaks partial fields: %s", head)
	}
}

// TestWalkBreakerOpen503: once the failing source's breaker trips,
// strict walks fail fast with 503 Service Unavailable.
func TestWalkBreakerOpen503(t *testing.T) {
	sys := downWalkSystem(t)
	sys.Federation().Breakers = federate.NewBreakerSet(1, time.Hour)
	srv := rest.NewServer(sys)

	post := func() *httptest.ResponseRecorder {
		req := httptest.NewRequest("POST", "/api/query", strings.NewReader(fig8WalkBody))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		return rec
	}
	if rec := post(); rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("first status = %d, want 422 (trips the breaker)", rec.Code)
	}
	rec := post()
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("second status = %d, want 503 (body %s)", rec.Code, rec.Body)
	}
	if !strings.Contains(rec.Body.String(), "circuit breaker open") {
		t.Fatalf("body = %s", rec.Body)
	}
}

// TestWalkPartialParamValidation: ?partial must be boolean-ish; a
// ?partial=0 override beats an engine-level default.
func TestWalkPartialParamValidation(t *testing.T) {
	sys := downWalkSystem(t)
	sys.Federation().PartialResults = true // daemon-level -partial
	srv := rest.NewServer(sys)

	req := httptest.NewRequest("POST", "/api/query?partial=maybe", strings.NewReader(fig8WalkBody))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("partial=maybe status = %d, want 400", rec.Code)
	}

	// Engine default: degraded 200.
	req = httptest.NewRequest("POST", "/api/query", strings.NewReader(fig8WalkBody))
	req.Header.Set("Content-Type", "application/json")
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK || rec.Header().Get("X-MDM-Partial") != "true" {
		t.Fatalf("default status = %d, X-MDM-Partial = %q, want 200/true", rec.Code, rec.Header().Get("X-MDM-Partial"))
	}

	// Explicit opt-out restores strict failure.
	req = httptest.NewRequest("POST", "/api/query?partial=0", strings.NewReader(fig8WalkBody))
	req.Header.Set("Content-Type", "application/json")
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("partial=0 status = %d, want 422", rec.Code)
	}
}

func TestAdminCompactEndpoint(t *testing.T) {
	// In-memory system: compaction succeeds but reports no persistence.
	c, _ := setupServer(t)
	resp, err := c.http.Post(c.base+"/api/admin/compact", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	var body map[string]any
	json.NewDecoder(resp.Body).Decode(&body)
	resp.Body.Close()
	if resp.StatusCode != 200 || body["persistent"] != false {
		t.Fatalf("in-memory compact: status %d, body %v", resp.StatusCode, body)
	}
	// GET is not allowed on the mutation route.
	getResp, err := c.http.Get(c.base + "/api/admin/compact")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET compact = %d", getResp.StatusCode)
	}

	// Persistent system: compaction seals a segment on disk.
	dir := t.TempDir()
	sys, err := mdm.OpenWith(dir, mdm.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	sys.BindPrefix("ex", "http://ex.org/")
	if err := sys.AddConcept("ex:Thing", "Thing"); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(rest.NewServer(sys))
	t.Cleanup(srv.Close)
	resp, err = srv.Client().Post(srv.URL+"/api/admin/compact", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	body = nil
	json.NewDecoder(resp.Body).Decode(&body)
	resp.Body.Close()
	if resp.StatusCode != 200 || body["persistent"] != true || body["compacted"] != true {
		t.Fatalf("persistent compact: status %d, body %v", resp.StatusCode, body)
	}
	segs, err := filepath.Glob(filepath.Join(dir, "ontology", "seg-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no sealed segments after compact: %v, %v", segs, err)
	}
}
