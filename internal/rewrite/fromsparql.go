package rewrite

import (
	"fmt"
	"sort"

	"mdm/internal/bdi"
	"mdm/internal/rdf"
	"mdm/internal/sparql"
)

// WalkFromSPARQL translates an ontology-mediated SPARQL query into a
// Walk. The paper's analysts draw walks graphically and MDM shows the
// equivalent SPARQL (Figure 8); this function supports the opposite
// direction, so SPARQL-literate analysts can submit queries directly.
//
// The accepted fragment is the one MDM itself generates:
//
//	SELECT ?f1 ?f2 ... WHERE {
//	  ?c1 rdf:type <Concept1> .
//	  ?c1 <featureIRI> ?f1 .
//	  ?c1 <relationIRI> ?c2 .
//	  ?c2 rdf:type <Concept2> .
//	  ...
//	}
//
// Each subject variable must be typed by exactly one concept; feature
// patterns bind feature values to projected variables (the variable name
// becomes the output column); relation patterns connect concept
// variables. DISTINCT/ORDER/LIMIT modifiers and FILTERs are rejected —
// the LAV rewriting semantics the paper defines covers plain conjunctive
// walks.
func WalkFromSPARQL(ont *bdi.Ontology, query string) (*Walk, error) {
	q, err := sparql.Parse(query)
	if err != nil {
		return nil, err
	}
	if q.Form != sparql.FormSelect {
		return nil, fmt.Errorf("rewrite: only SELECT queries can be walks")
	}
	if q.Distinct || len(q.OrderBy) > 0 || q.Limit >= 0 || q.Offset > 0 {
		return nil, fmt.Errorf("rewrite: solution modifiers are not supported in walks")
	}
	if len(q.Where.Filters) > 0 {
		return nil, fmt.Errorf("rewrite: FILTER is not supported in walks")
	}
	if len(q.Aggregates) > 0 || len(q.GroupBy) > 0 || len(q.Having) > 0 {
		return nil, fmt.Errorf("rewrite: aggregation is not supported in walks")
	}

	// First pass: concept typing patterns.
	conceptOf := map[string]rdf.Term{} // subject var -> concept IRI
	var rest []sparql.TriplePattern
	for _, p := range q.Where.Patterns {
		tp, ok := p.(sparql.TriplePattern)
		if !ok {
			return nil, fmt.Errorf("rewrite: only basic graph patterns are supported in walks, got %T", p)
		}
		if !tp.S.IsVar() {
			return nil, fmt.Errorf("rewrite: walk subjects must be variables, got %s", tp.S)
		}
		if tp.P.IsVar() {
			return nil, fmt.Errorf("rewrite: walk predicates must be IRIs, got %s", tp.P)
		}
		if tp.P.Term.Value == rdf.RDFType {
			if tp.O.IsVar() || !tp.O.Term.IsIRI() {
				return nil, fmt.Errorf("rewrite: rdf:type object must be a concept IRI")
			}
			if prev, dup := conceptOf[tp.S.Var]; dup && prev != tp.O.Term {
				return nil, fmt.Errorf("rewrite: variable ?%s typed by two concepts (%s, %s)",
					tp.S.Var, prev.LocalName(), tp.O.Term.LocalName())
			}
			conceptOf[tp.S.Var] = tp.O.Term
			continue
		}
		rest = append(rest, tp)
	}
	if len(conceptOf) == 0 {
		return nil, fmt.Errorf("rewrite: walk needs at least one '?x rdf:type <Concept>' pattern")
	}

	g := ont.Global()
	walk := NewWalk()
	for _, c := range conceptOf {
		if !g.Has(rdf.T(c, rdf.IRI(rdf.RDFType), bdi.ClassConcept)) {
			return nil, fmt.Errorf("rewrite: %s is not a declared concept", c)
		}
	}
	// Register concepts in deterministic order (projection order below
	// still comes from the SELECT list).
	for _, tp := range q.Where.Patterns {
		if t, ok := tp.(sparql.TriplePattern); ok && !t.P.IsVar() && t.P.Term.Value == rdf.RDFType {
			walk.AddConcept(t.O.Term)
		}
	}

	// Second pass: feature and relation patterns.
	varFeature := map[string]rdf.Term{} // value var -> feature IRI
	varConcept := map[string]rdf.Term{} // value var -> owning concept
	for _, tp := range rest {
		concept, ok := conceptOf[tp.S.Var]
		if !ok {
			return nil, fmt.Errorf("rewrite: variable ?%s is not typed by rdf:type", tp.S.Var)
		}
		pred := tp.P.Term
		switch {
		case tp.O.IsVar():
			if otherConcept, isConceptVar := conceptOf[tp.O.Var]; isConceptVar {
				// relation pattern between two concept variables
				if !g.Has(rdf.T(concept, pred, otherConcept)) {
					return nil, fmt.Errorf("rewrite: relation %s —%s→ %s not in global graph",
						concept.LocalName(), pred.LocalName(), otherConcept.LocalName())
				}
				walk.Relate(concept, pred, otherConcept)
				continue
			}
			// feature pattern: predicate must be a feature of the
			// concept (directly or inherited through the taxonomy)
			if !ont.HasFeatureInherited(concept, pred) {
				return nil, fmt.Errorf("rewrite: %s is not a feature of %s",
					pred.LocalName(), concept.LocalName())
			}
			if prevF, dup := varFeature[tp.O.Var]; dup && prevF != pred {
				return nil, fmt.Errorf("rewrite: variable ?%s bound to two features", tp.O.Var)
			}
			varFeature[tp.O.Var] = pred
			varConcept[tp.O.Var] = concept
		default:
			return nil, fmt.Errorf("rewrite: constant objects are not supported in walks (use FILTER-free projections), got %s", tp.O.Term)
		}
	}

	// Projection from the SELECT list; variable names become aliases.
	if q.Star {
		// SELECT * has no written projection order; sort variable names
		// so output columns are deterministic across runs (map iteration
		// order is not).
		vars := make([]string, 0, len(varFeature))
		for v := range varFeature {
			vars = append(vars, v)
		}
		sort.Strings(vars)
		for _, v := range vars {
			walk.SelectAs(varConcept[v], varFeature[v], v)
		}
		return walk, nil
	}
	for _, v := range q.Variables {
		f, ok := varFeature[v]
		if !ok {
			return nil, fmt.Errorf("rewrite: projected variable ?%s is not bound to a feature", v)
		}
		walk.SelectAs(varConcept[v], f, v)
	}
	return walk, nil
}
