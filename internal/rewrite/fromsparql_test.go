package rewrite_test

import (
	"context"
	"sort"
	"strings"
	"testing"

	"mdm/internal/rewrite"
	"mdm/internal/usecase"
)

const fig8SPARQL = `
PREFIX ex: <http://www.example.org/football/>
PREFIX sc: <http://schema.org/>
SELECT ?teamName ?playerName WHERE {
  ?team rdf:type sc:SportsTeam .
  ?team ex:teamName ?teamName .
  ?player rdf:type ex:Player .
  ?player ex:playerName ?playerName .
  ?player ex:playsIn ?team .
}`

func TestWalkFromSPARQLFig8(t *testing.T) {
	f := usecase.MustNew()
	// rdf: is pre-bound by the SPARQL parser? No — it needs PREFIX.
	walk, err := rewrite.WalkFromSPARQL(f.Ont, "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n"+fig8SPARQL)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rewrite.New(f.Ont, f.Reg).Rewrite(walk)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.OutputColumns) != 2 || res.OutputColumns[0] != "teamName" || res.OutputColumns[1] != "playerName" {
		t.Fatalf("columns = %v", res.OutputColumns)
	}
	rel, err := res.Plan.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 5 {
		t.Fatalf("rows = %d", rel.Len())
	}
}

func TestWalkFromSPARQLRoundTrip(t *testing.T) {
	// walk -> SPARQL -> walk -> rewriting must yield the same answer.
	f := usecase.MustNew()
	orig := usecase.Fig8Walk()
	sparqlText := orig.SPARQL(f.Ont)
	back, err := rewrite.WalkFromSPARQL(f.Ont, sparqlText)
	if err != nil {
		t.Fatalf("round trip parse: %v\n%s", err, sparqlText)
	}
	r := rewrite.New(f.Ont, f.Reg)
	res1, err := r.Rewrite(orig)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := r.Rewrite(back)
	if err != nil {
		t.Fatal(err)
	}
	rel1, err := res1.Plan.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := res2.Plan.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !rel1.Equal(rel2) {
		t.Errorf("round trip changed the answer:\n%s\nvs\n%s", rel1.Table(), rel2.Table())
	}
}

func TestWalkFromSPARQLNationalityRoundTrip(t *testing.T) {
	f := usecase.MustNew()
	orig := usecase.NationalityWalk()
	back, err := rewrite.WalkFromSPARQL(f.Ont, orig.SPARQL(f.Ont))
	if err != nil {
		t.Fatal(err)
	}
	r := rewrite.New(f.Ont, f.Reg)
	res, err := r.Rewrite(back)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := res.Plan.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 2 {
		t.Fatalf("rows = %d\n%s", rel.Len(), rel.Table())
	}
}

func TestWalkFromSPARQLSelectStar(t *testing.T) {
	f := usecase.MustNew()
	walk, err := rewrite.WalkFromSPARQL(f.Ont, `
PREFIX ex: <http://www.example.org/football/>
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
SELECT * WHERE { ?p rdf:type ex:Player . ?p ex:playerName ?n . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(walk.ProjectedFeatures()) != 1 {
		t.Fatalf("features = %v", walk.ProjectedFeatures())
	}
}

// SELECT * has no written projection order, so the translation must
// impose one: sorted variable names. Guards against map-iteration
// nondeterminism leaking into output column order.
func TestWalkFromSPARQLSelectStarDeterministicColumns(t *testing.T) {
	f := usecase.MustNew()
	const q = `
PREFIX ex: <http://www.example.org/football/>
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
SELECT * WHERE {
  ?p rdf:type ex:Player .
  ?p ex:playerName ?name .
  ?p ex:height ?height .
  ?p ex:playerId ?id .
}`
	r := rewrite.New(f.Ont, f.Reg)
	var first []string
	for i := 0; i < 8; i++ {
		walk, err := rewrite.WalkFromSPARQL(f.Ont, q)
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.Rewrite(walk)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = res.OutputColumns
			if !sort.StringsAreSorted(first) {
				t.Fatalf("SELECT * columns not sorted: %v", first)
			}
			continue
		}
		if strings.Join(res.OutputColumns, ",") != strings.Join(first, ",") {
			t.Fatalf("run %d columns %v != %v", i, res.OutputColumns, first)
		}
	}
}

func TestWalkFromSPARQLErrors(t *testing.T) {
	f := usecase.MustNew()
	cases := []struct{ name, q, wantErr string }{
		{"ask", `ASK { ?s ?p ?o . }`, "SELECT"},
		{"distinct", `PREFIX ex: <http://www.example.org/football/>
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
SELECT DISTINCT ?n WHERE { ?p rdf:type ex:Player . ?p ex:playerName ?n . }`, "modifiers"},
		{"filter", `PREFIX ex: <http://www.example.org/football/>
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
SELECT ?n WHERE { ?p rdf:type ex:Player . ?p ex:playerName ?n . FILTER (?n != "x") }`, "FILTER"},
		{"untyped subject", `PREFIX ex: <http://www.example.org/football/>
SELECT ?n WHERE { ?p ex:playerName ?n . }`, "rdf:type"},
		{"unknown concept", `PREFIX ex: <http://www.example.org/football/>
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
SELECT ?n WHERE { ?p rdf:type ex:Ghost . ?p ex:playerName ?n . }`, "not a declared concept"},
		{"foreign feature", `PREFIX ex: <http://www.example.org/football/>
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
SELECT ?n WHERE { ?p rdf:type ex:Player . ?p ex:teamName ?n . }`, "not a feature of"},
		{"bad relation", `PREFIX ex: <http://www.example.org/football/>
PREFIX sc: <http://schema.org/>
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
SELECT ?n WHERE {
  ?p rdf:type ex:Player . ?p ex:playerName ?n .
  ?t rdf:type sc:SportsTeam . ?p ex:inCountry ?t .
}`, "not in global graph"},
		{"constant object", `PREFIX ex: <http://www.example.org/football/>
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
SELECT ?n WHERE { ?p rdf:type ex:Player . ?p ex:playerName "Messi" . ?p ex:foot ?n . }`, "constant"},
		{"unbound projection", `PREFIX ex: <http://www.example.org/football/>
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
SELECT ?ghost WHERE { ?p rdf:type ex:Player . ?p ex:playerName ?n . }`, "not bound"},
		{"double typing", `PREFIX ex: <http://www.example.org/football/>
PREFIX sc: <http://schema.org/>
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
SELECT ?n WHERE { ?p rdf:type ex:Player . ?p rdf:type sc:SportsTeam . ?p ex:playerName ?n . }`, "two concepts"},
		{"syntax error", `SELEC bogus`, "sparql"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := rewrite.WalkFromSPARQL(f.Ont, c.q)
			if err == nil {
				t.Fatalf("no error for %s", c.name)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("err = %v, want substring %q", err, c.wantErr)
			}
		})
	}
}
