// Package gav implements a global-as-view (GAV) baseline for comparison
// with MDM's LAV rewriting (experiment S4 in DESIGN.md).
//
// Under GAV, every element of the global schema is characterized by a
// fixed query over the source schemata (paper §1, citing [8]): each
// feature is bound to one concrete (wrapper, attribute) pair and each
// relation to one witness wrapper, frozen at mapping-definition time.
// Query answering is plain unfolding — tractable, but brittle: when a
// source evolves (its wrapper is superseded or an attribute disappears),
// every binding referencing it silently dangles and previously working
// queries crash or return partial results until a steward manually
// redefines them. The paper's LAV design avoids exactly this failure
// mode, and package rewrite's tests plus BenchmarkGAVvsLAV quantify it.
package gav

import (
	"fmt"
	"sort"

	"mdm/internal/bdi"
	"mdm/internal/rdf"
	"mdm/internal/relalg"
	"mdm/internal/rewrite"
	"mdm/internal/wrapper"
)

// Binding fixes the provider of one global feature.
type Binding struct {
	Wrapper   string
	Attribute string
}

// Mappings is a GAV mapping set: global features and relations defined
// as fixed references into source schemata, plus per-wrapper join-key
// exposure (a real GAV view definition hard-codes its join attributes).
type Mappings struct {
	features  map[rdf.Term]Binding
	relations map[rdf.Triple]string
	keys      map[string]map[rdf.Term]string // wrapper -> id feature -> attr
}

// NewMappings returns an empty GAV mapping set.
func NewMappings() *Mappings {
	return &Mappings{
		features:  map[rdf.Term]Binding{},
		relations: map[rdf.Triple]string{},
		keys:      map[string]map[rdf.Term]string{},
	}
}

// BindFeature fixes feature := wrapper.attribute.
func (m *Mappings) BindFeature(feature rdf.Term, wrapperName, attr string) {
	m.features[feature] = Binding{Wrapper: wrapperName, Attribute: attr}
}

// BindRelation fixes the wrapper that materializes a concept relation.
func (m *Mappings) BindRelation(rel rdf.Triple, wrapperName string) {
	m.relations[rel] = wrapperName
}

// BindKey records that wrapperName exposes the identifier feature under
// the given attribute; frozen join keys of the view definitions.
func (m *Mappings) BindKey(wrapperName string, feature rdf.Term, attr string) {
	if m.keys[wrapperName] == nil {
		m.keys[wrapperName] = map[rdf.Term]string{}
	}
	m.keys[wrapperName][feature] = attr
}

// BindingsReferencing returns the number of feature and relation
// bindings that reference the given wrapper — the manual-rework cost a
// steward pays under GAV when that wrapper is superseded.
func (m *Mappings) BindingsReferencing(wrapperName string) int {
	n := 0
	for _, b := range m.features {
		if b.Wrapper == wrapperName {
			n++
		}
	}
	for _, w := range m.relations {
		if w == wrapperName {
			n++
		}
	}
	n += len(m.keys[wrapperName])
	return n
}

// FromLAV derives a GAV mapping set from an ontology's current LAV
// mappings by freezing, for every feature, the alphabetically first
// wrapper that provides it. This mirrors how a GAV system would have
// been configured against the v1 sources.
//
// Instead of probing the mapping graphs once per (concept, feature,
// wrapper) combination, each wrapper's stored mapping is scanned exactly
// once and the concept superclass closures are computed once per
// concept.
func FromLAV(ont *bdi.Ontology) *Mappings {
	m := NewMappings()
	wrappers := ont.MappedWrappers() // sorted: first provider wins below
	concepts := ont.Concepts()
	relations := ont.ConceptRelations()
	global := ont.Global()
	closures := make(map[rdf.Term]map[rdf.Term]bool, len(concepts))
	featuresOf := make(map[rdf.Term][]rdf.Term, len(concepts))
	for _, c := range concepts {
		closures[c] = global.SuperClassClosure(c)
		featuresOf[c] = ont.FeaturesOf(c)
	}
	for _, w := range wrappers {
		mg, ok := ont.Dataset().Lookup(bdi.WrapperIRI(w))
		if !ok {
			continue
		}
		// One scan over the wrapper's mapping graph: the covered global
		// subgraph plus the raw sameAs edges. The edges are read directly
		// (not via Mapping.SameAs, which is keyed by attribute label and
		// would collapse an attribute mapped to several features).
		subgraph := make(map[rdf.Triple]bool, mg.Len())
		type sameAsEdge struct{ attr, feat rdf.Term }
		var sameAs []sameAsEdge
		mg.EachMatch(rdf.Any, rdf.Any, rdf.Any, func(t rdf.Triple) bool {
			if t.P.Value == rdf.OWLSameAs {
				sameAs = append(sameAs, sameAsEdge{t.S, t.O})
			} else {
				subgraph[t] = true
			}
			return true
		})
		// Feature -> attribute name exposed by this wrapper (the smallest
		// attribute IRI wins when several map to the same feature,
		// matching the sorted-subject order of Ontology.AttributeForFeature).
		attrOf := map[rdf.Term]string{}
		bestAttr := map[rdf.Term]rdf.Term{}
		for _, e := range sameAs {
			label, ok := ont.AttributeName(e.attr)
			if !ok {
				continue
			}
			if cur, seen := bestAttr[e.feat]; !seen || rdf.Compare(e.attr, cur) < 0 {
				bestAttr[e.feat] = e.attr
				attrOf[e.feat] = label
			}
		}
		for f, attr := range attrOf {
			// Freeze identifier columns as the wrapper view's join keys.
			if ont.IsIdentifier(f) {
				m.BindKey(w, f, attr)
			}
		}
		for _, c := range concepts {
			for _, f := range featuresOf[c] {
				if _, bound := m.features[f]; bound {
					continue
				}
				attr, has := attrOf[f]
				if !has {
					continue
				}
				// Covered directly or via a superclass in the taxonomy.
				for super := range closures[c] {
					if subgraph[rdf.T(super, bdi.PropHasFeature, f)] {
						m.BindFeature(f, w, attr)
						break
					}
				}
			}
		}
		for _, rel := range relations {
			if _, bound := m.relations[rel]; !bound && subgraph[rel] {
				m.BindRelation(rel, w)
			}
		}
	}
	return m
}

// Rewriter unfolds walks over GAV mappings.
type Rewriter struct {
	ont *bdi.Ontology
	reg *wrapper.Registry
	m   *Mappings
}

// New returns a GAV rewriter.
func New(ont *bdi.Ontology, reg *wrapper.Registry, m *Mappings) *Rewriter {
	return &Rewriter{ont: ont, reg: reg, m: m}
}

// col names the plan column for a feature (CURIE when possible).
func (r *Rewriter) col(f rdf.Term) string {
	return r.ont.Dataset().Prefixes().CompactTerm(f)
}

// Rewrite unfolds a walk into a single conjunctive query over the bound
// wrappers. Unlike LAV rewriting it can never produce a union: there is
// exactly one definition per global element.
func (r *Rewriter) Rewrite(w *rewrite.Walk) (relalg.Plan, error) {
	if err := w.Validate(r.ont); err != nil {
		return nil, err
	}
	// Needed features: projection plus each concept's identifier.
	type featProj struct {
		feature rdf.Term
		out     string
	}
	var proj []featProj
	needed := map[rdf.Term]bool{}
	for _, c := range w.Concepts {
		for _, f := range w.Features[c] {
			proj = append(proj, featProj{feature: f, out: f.LocalName()})
			needed[f] = true
		}
		if id, ok := r.ont.IdentifierOf(c); ok {
			needed[id] = true
		} else {
			return nil, fmt.Errorf("gav: concept %s has no identifier", c)
		}
	}
	for i := range proj {
		proj[i].out = aliasOf(w, proj[i].feature, proj[i].out)
	}

	// Group needed features by bound wrapper (unfolding).
	byWrapper := map[string][][2]string{} // wrapper -> {attr, featureIRI}
	for f := range needed {
		b, ok := r.m.features[f]
		if !ok {
			return nil, fmt.Errorf("gav: feature %s has no GAV binding", f)
		}
		byWrapper[b.Wrapper] = append(byWrapper[b.Wrapper], [2]string{b.Attribute, r.col(f)})
	}
	for _, rel := range w.Relations {
		wname, ok := r.m.relations[rel]
		if !ok {
			return nil, fmt.Errorf("gav: relation %s has no GAV binding", rel)
		}
		// The witness wrapper must contribute both endpoint ids; its
		// attributes for them come from its frozen feature bindings —
		// GAV has no per-wrapper mapping to consult, so require the ids
		// to be bound to this wrapper or joinable transitively. We add
		// the wrapper with no extra columns; join columns come from the
		// id features bound to it (if any).
		if _, present := byWrapper[wname]; !present {
			byWrapper[wname] = nil
		}
	}

	// Build per-wrapper plans. Missing wrappers or attributes are the
	// GAV failure mode under evolution.
	names := make([]string, 0, len(byWrapper))
	for n := range byWrapper {
		names = append(names, n)
	}
	sort.Strings(names)
	isID := map[string]bool{}
	plans := map[string]relalg.Plan{}
	for _, wname := range names {
		wr, ok := r.reg.Get(wname)
		if !ok {
			return nil, fmt.Errorf("gav: bound wrapper %q no longer exists (source evolved; mappings must be redefined manually)", wname)
		}
		have := map[string]bool{}
		for _, col := range wr.Columns() {
			have[col] = true
		}
		// Surface the wrapper view's frozen join keys so unfolded views
		// can be connected.
		pairs := append([][2]string(nil), byWrapper[wname]...)
		for f, attr := range r.m.keys[wname] {
			dup := false
			for _, p := range pairs {
				if p[1] == r.col(f) {
					dup = true
				}
			}
			if !dup {
				pairs = append(pairs, [2]string{attr, r.col(f)})
			}
		}
		sort.Slice(pairs, func(i, j int) bool { return pairs[i][1] < pairs[j][1] })
		var mapping [][2]string
		var keep []string
		for _, p := range pairs {
			if !have[p[0]] {
				return nil, fmt.Errorf("gav: wrapper %s no longer has attribute %q (schema evolved; query crashes as §1 of the paper warns)", wname, p[0])
			}
			mapping = append(mapping, [2]string{p[0], p[1]})
			keep = append(keep, p[1])
		}
		if len(keep) == 0 {
			return nil, fmt.Errorf("gav: wrapper %s contributes no columns", wname)
		}
		for f := range r.m.keys[wname] {
			isID[r.col(f)] = true
		}
		for fterm, b := range r.m.features {
			if b.Wrapper == wname && r.ont.IsIdentifier(fterm) {
				isID[r.col(fterm)] = true
			}
		}
		plans[wname] = relalg.NewProject(relalg.NewRename(relalg.NewScan(wr), mapping), keep...)
	}

	// Greedy join on shared identifier columns, as in LAV assembly.
	plan := plans[names[0]]
	remaining := names[1:]
	for len(remaining) > 0 {
		progress := false
		for i, wname := range remaining {
			on := sharedID(plan.Columns(), plans[wname].Columns(), isID)
			if len(on) == 0 {
				continue
			}
			plan = relalg.NewJoin(plan, plans[wname], on)
			remaining = append(remaining[:i], remaining[i+1:]...)
			progress = true
			break
		}
		if !progress {
			return nil, fmt.Errorf("gav: unfolded wrappers %v not joinable", names)
		}
	}

	var featCols []string
	var outMap [][2]string
	for _, p := range proj {
		featCols = append(featCols, r.col(p.feature))
		outMap = append(outMap, [2]string{r.col(p.feature), p.out})
	}
	return relalg.Optimize(relalg.NewRename(relalg.NewProject(plan, featCols...), outMap)), nil
}

func sharedID(l, rc []string, isID map[string]bool) [][2]string {
	rset := map[string]bool{}
	for _, c := range rc {
		rset[c] = true
	}
	var on [][2]string
	for _, c := range l {
		if isID[c] && rset[c] {
			on = append(on, [2]string{c, c})
		}
	}
	return on
}

func aliasOf(w *rewrite.Walk, f rdf.Term, def string) string {
	if a, ok := w.Aliases[f]; ok && a != "" {
		return a
	}
	return def
}
