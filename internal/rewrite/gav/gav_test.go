package gav_test

import (
	"context"
	"strings"
	"testing"

	"mdm/internal/rewrite"
	"mdm/internal/rewrite/gav"
	"mdm/internal/usecase"
	"mdm/internal/wrapper"
)

func TestGAVAnswersFig8BeforeEvolution(t *testing.T) {
	f := usecase.MustNew()
	m := gav.FromLAV(f.Ont)
	plan, err := gav.New(f.Ont, f.Reg, m).Rewrite(usecase.Fig8Walk())
	if err != nil {
		t.Fatal(err)
	}
	rel, err := plan.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 5 {
		t.Fatalf("rows = %d\n%s", rel.Len(), rel.Table())
	}
	pi, ti := rel.ColIndex("playerName"), rel.ColIndex("teamName")
	if pi < 0 || ti < 0 {
		t.Fatalf("columns = %v", rel.Cols)
	}
	found := false
	for _, r := range rel.Rows {
		if r[pi].Text() == "Lionel Messi" && r[ti].Text() == "FC Barcelona" {
			found = true
		}
	}
	if !found {
		t.Errorf("Messi row missing:\n%s", rel.Table())
	}
}

// TestGAVBreaksOnInPlaceEvolution reproduces the paper's §1 claim: under
// GAV, a breaking source release makes previously working queries crash,
// while MDM's LAV approach keeps answering after one local mapping
// registration.
func TestGAVBreaksOnInPlaceEvolution(t *testing.T) {
	f := usecase.MustNew()
	m := gav.FromLAV(f.Ont)
	walk := usecase.Fig8Walk()

	// The players API replaces its payload in place with the v2 schema:
	// the old endpoint now serves renamed fields.
	f.W1.SetDocs(usecase.PlayersV2Docs())
	// The wrapper's declared signature is stale; rebuild the registry
	// entry the way a GAV system would see the world: w1 now has the v2
	// signature (pName gone).
	newReg := wrapper.NewRegistry()
	w1v2sig := wrapper.NewMem("w1", usecase.SrcPlayers, usecase.PlayersV2Docs(), nil)
	newReg.Register(w1v2sig)
	for _, name := range []string{"w2", "w3", "w4", "w5", "w6"} {
		w, _ := f.Reg.Get(name)
		newReg.Register(w)
	}

	_, err := gav.New(f.Ont, newReg, m).Rewrite(walk)
	if err == nil {
		t.Fatal("GAV query should crash after breaking release")
	}
	if !strings.Contains(err.Error(), "no longer has attribute") {
		t.Errorf("error = %v", err)
	}

	// LAV path: steward registers the new wrapper + mapping; the SAME
	// walk works again with zero changes to existing mappings.
	if err := f.ReleasePlayersV2(); err != nil {
		t.Fatal(err)
	}
	res, err := rewrite.New(f.Ont, f.Reg).Rewrite(walk)
	if err != nil {
		t.Fatalf("LAV should survive evolution: %v", err)
	}
	if _, err := res.Plan.Execute(context.Background()); err != nil {
		t.Fatalf("LAV execution failed: %v", err)
	}
}

func TestGAVBreaksWhenWrapperRemoved(t *testing.T) {
	f := usecase.MustNew()
	m := gav.FromLAV(f.Ont)
	f.Reg.Remove("w1")
	_, err := gav.New(f.Ont, f.Reg, m).Rewrite(usecase.Fig8Walk())
	if err == nil || !strings.Contains(err.Error(), "no longer exists") {
		t.Fatalf("err = %v", err)
	}
}

func TestGAVReworkCostCounting(t *testing.T) {
	f := usecase.MustNew()
	m := gav.FromLAV(f.Ont)
	// All six Player base features plus the playsIn relation and the
	// Team identifier are bound to w1 (alphabetically first provider).
	n := m.BindingsReferencing("w1")
	if n < 7 {
		t.Errorf("bindings referencing w1 = %d, want >= 7", n)
	}
	if m.BindingsReferencing("nope") != 0 {
		t.Error("ghost wrapper has bindings")
	}
}

func TestGAVUnboundFeatureError(t *testing.T) {
	f := usecase.MustNew()
	m := gav.NewMappings() // empty: nothing bound
	_, err := gav.New(f.Ont, f.Reg, m).Rewrite(usecase.Fig8Walk())
	if err == nil || !strings.Contains(err.Error(), "no GAV binding") {
		t.Fatalf("err = %v", err)
	}
}

func TestGAVProducesSingleCQNoUnion(t *testing.T) {
	// Even with two schema versions registered, GAV keeps answering from
	// the frozen binding only — no union, missing v2-only data.
	f := usecase.MustNew()
	m := gav.FromLAV(f.Ont)
	if err := f.ReleasePlayersV2(); err != nil {
		t.Fatal(err)
	}
	plan, err := gav.New(f.Ont, f.Reg, m).Rewrite(usecase.Fig8Walk())
	if err != nil {
		t.Fatal(err)
	}
	rel, err := plan.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	pi := rel.ColIndex("playerName")
	for _, r := range rel.Rows {
		if r[pi].Text() == "Pedri" {
			t.Fatal("GAV should not see v2-only players; its binding is frozen to w1")
		}
	}
	if !strings.Contains(plan.Algebra(), "w1") || strings.Contains(plan.Algebra(), "w1v2") {
		t.Errorf("algebra = %s", plan.Algebra())
	}
}
