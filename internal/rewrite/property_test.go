package rewrite_test

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"mdm/internal/rdf"
	"mdm/internal/relalg"
	"mdm/internal/rewrite"
	"mdm/internal/usecase"
)

// conceptFeatures enumerates the fixture's (concept, feature) space for
// random walk generation.
var conceptFeatures = []struct {
	concept rdf.Term
	feats   []rdf.Term
}{
	{usecase.Player, []rdf.Term{usecase.PlayerID, usecase.PlayerName, usecase.Height, usecase.Weight, usecase.Rating, usecase.Foot}},
	{usecase.Team, []rdf.Term{usecase.TeamID, usecase.TeamName, usecase.TeamShortName}},
	{usecase.League, []rdf.Term{usecase.LeagueID, usecase.LeagueName}},
	{usecase.Country, []rdf.Term{usecase.CountryID, usecase.CountryName}},
}

// relationsBetween connects adjacent concepts of the fixture.
var fixtureRelations = []rdf.Triple{
	rdf.T(usecase.Player, usecase.PlaysIn, usecase.Team),
	rdf.T(usecase.Team, usecase.CompetesIn, usecase.League),
	rdf.T(usecase.League, usecase.InCountry, usecase.Country),
	rdf.T(usecase.Player, usecase.HasNationality, usecase.Country),
}

// randomWalk picks a connected prefix of the concept chain and a random
// non-empty feature subset per concept.
func randomWalk(r *rand.Rand) *rewrite.Walk {
	n := 1 + r.Intn(len(conceptFeatures)) // 1..4 concepts along the chain
	w := rewrite.NewWalk()
	for i := 0; i < n; i++ {
		cf := conceptFeatures[i]
		// Non-empty random feature subset.
		k := 1 + r.Intn(len(cf.feats))
		perm := r.Perm(len(cf.feats))
		for _, j := range perm[:k] {
			w.Select(cf.concept, cf.feats[j])
		}
	}
	// Chain relations connect the prefix: Player->Team->League->Country.
	for i := 0; i < n-1; i++ {
		rel := fixtureRelations[i]
		w.Relate(rel.S, rel.P, rel.O)
	}
	return w
}

// TestPropRandomWalksRewriteAndExecute: every connected walk over the
// fixture rewrites without error and the result schema matches the
// projection.
func TestPropRandomWalksRewriteAndExecute(t *testing.T) {
	f := usecase.MustNew()
	r := rewrite.New(f.Ont, f.Reg)
	ctx := context.Background()
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := randomWalk(rng)
		res, err := r.Rewrite(w)
		if err != nil {
			t.Logf("seed %d: rewrite failed: %v", seed, err)
			return false
		}
		if len(res.OutputColumns) != len(w.ProjectedFeatures()) {
			t.Logf("seed %d: columns %v vs features %v", seed, res.OutputColumns, w.ProjectedFeatures())
			return false
		}
		rel, err := res.Plan.Execute(ctx)
		if err != nil {
			t.Logf("seed %d: execute failed: %v", seed, err)
			return false
		}
		if len(rel.Cols) != len(res.OutputColumns) {
			return false
		}
		for i := range rel.Cols {
			if rel.Cols[i] != res.OutputColumns[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropAllCQsShareSchema: every conjunctive query in a union projects
// the same columns (a structural invariant of the rewriting).
func TestPropAllCQsShareSchema(t *testing.T) {
	f := usecase.MustNew()
	if err := f.ReleasePlayersV2(); err != nil {
		t.Fatal(err)
	}
	r := rewrite.New(f.Ont, f.Reg)
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := randomWalk(rng)
		res, err := r.Rewrite(w)
		if err != nil {
			return false
		}
		return len(res.CQs) >= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropEvolutionMonotonicity: registering an additional schema
// version never removes rows from a query answer (LAV certain answers
// grow monotonically with sources).
func TestPropEvolutionMonotonicity(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Walks over features common to both players-API versions, so
		// both CQs can contribute rows after the release.
		w := rewrite.NewWalk()
		common := []rdf.Term{usecase.PlayerID, usecase.PlayerName, usecase.Height, usecase.Foot}
		k := 1 + rng.Intn(len(common))
		for _, j := range rng.Perm(len(common))[:k] {
			w.Select(usecase.Player, common[j])
		}

		before := usecase.MustNew()
		resB, err := rewrite.New(before.Ont, before.Reg).Rewrite(w)
		if err != nil {
			return false
		}
		relB, err := resB.Plan.Execute(context.Background())
		if err != nil {
			return false
		}

		after := usecase.MustNew()
		if err := after.ReleasePlayersV2(); err != nil {
			return false
		}
		resA, err := rewrite.New(after.Ont, after.Reg).Rewrite(w)
		if err != nil {
			return false
		}
		relA, err := resA.Plan.Execute(context.Background())
		if err != nil {
			return false
		}
		// Every pre-release row must survive post-release (dedup may
		// merge, never drop).
		seen := map[string]bool{}
		for _, row := range relA.Rows {
			seen[rowKey(row)] = true
		}
		for _, row := range relB.Rows {
			if !seen[rowKey(row)] {
				t.Logf("seed %d: row lost after release", seed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func rowKey(row relalg.Row) string {
	out := ""
	for _, v := range row {
		out += v.Key() + "\x00"
	}
	return out
}
