package rewrite

import (
	"fmt"
	"sort"
	"strings"

	"mdm/internal/bdi"
	"mdm/internal/rdf"
	"mdm/internal/relalg"
	"mdm/internal/wrapper"
)

// Rewriter resolves walks over an ontology into federated plans over a
// wrapper registry.
type Rewriter struct {
	ont *bdi.Ontology
	reg *wrapper.Registry
	// MaxCQs caps the number of conjunctive queries generated (0 = no
	// cap); a safety valve against combinatorial mappings.
	MaxCQs int
}

// New returns a Rewriter over the given ontology and wrappers.
func New(ont *bdi.Ontology, reg *wrapper.Registry) *Rewriter {
	return &Rewriter{ont: ont, reg: reg}
}

// col names the plan column for a feature: its CURIE when a prefix is
// bound (readable in algebra renderings), else the full IRI form.
func (r *Rewriter) col(f rdf.Term) string {
	return r.ont.Dataset().Prefixes().CompactTerm(f)
}

// Result is the outcome of rewriting a walk.
type Result struct {
	// Plan is the executable union of conjunctive queries.
	Plan relalg.Plan
	// SPARQL is the walk's SPARQL rendering (display only).
	SPARQL string
	// CQs lists the conjunctive queries in the union, one entry per
	// wrapper combination, for inspection (Figure 8's algebra line).
	CQs []CQ
	// OutputColumns are the projected column names in order.
	OutputColumns []string
	// ExpandedFeatures are identifier features added by query expansion
	// (phase a) that are not part of the projection.
	ExpandedFeatures []rdf.Term
}

// CQ describes one conjunctive query of the union.
type CQ struct {
	// Wrappers are the wrapper names joined by this CQ, in join order.
	Wrappers []string
	// Algebra is the CQ's relational algebra rendering.
	Algebra string
	plan    relalg.Plan
}

// Rewrite runs the three-phase algorithm on a walk.
func (r *Rewriter) Rewrite(w *Walk) (*Result, error) {
	if err := w.Validate(r.ont); err != nil {
		return nil, err
	}

	// --- Phase (a): query expansion ------------------------------------
	// Every walk concept contributes its identifier feature, whether or
	// not the analyst selected it; joins are only legal on identifiers.
	need := map[rdf.Term][]rdf.Term{} // concept -> features (projection ∪ id)
	var expanded []rdf.Term
	for _, c := range w.Concepts {
		feats := append([]rdf.Term(nil), w.Features[c]...)
		id, ok := r.ont.IdentifierOf(c)
		if !ok {
			return nil, fmt.Errorf("rewrite: concept %s has no identifier feature; cannot expand query", c)
		}
		if !containsTerm(feats, id) {
			feats = append(feats, id)
			expanded = append(expanded, id)
		}
		need[c] = feats
	}

	// --- Phase (b): intra-concept generation ---------------------------
	// For each concept, compute which wrappers can contribute (cover the
	// concept and provide its identifier) and what they provide. The
	// actual cover choice happens jointly with phase (c) so that
	// relation-witness wrappers already in a combination are not
	// duplicated by redundant per-concept covers.
	coverages := map[rdf.Term]conceptCoverage{}
	for _, c := range w.Concepts {
		cov, err := r.conceptCoverage(c, need[c])
		if err != nil {
			return nil, err
		}
		coverages[c] = cov
	}

	// --- Phase (c): inter-concept generation ---------------------------
	combos, err := r.interConcept(w, need, coverages)
	if err != nil {
		return nil, err
	}

	// Assemble the projection.
	var projFeatures []rdf.Term
	for _, c := range w.Concepts {
		projFeatures = append(projFeatures, w.Features[c]...)
	}
	outCols := make([]string, len(projFeatures))
	seen := map[string]int{}
	for i, f := range projFeatures {
		name := w.columnName(f)
		seen[name]++
		if seen[name] > 1 {
			name = fmt.Sprintf("%s_%d", name, seen[name])
		}
		outCols[i] = name
	}

	res := &Result{
		SPARQL:           w.SPARQL(r.ont),
		OutputColumns:    outCols,
		ExpandedFeatures: sortTerms(expanded),
	}
	var plans []relalg.Plan
	for _, combo := range combos {
		plan, err := combo.assemble(projFeatures, outCols)
		if err != nil {
			return nil, err
		}
		plan = relalg.Optimize(plan)
		res.CQs = append(res.CQs, CQ{
			Wrappers: combo.wrapperNames(),
			Algebra:  plan.Algebra(),
			plan:     plan,
		})
		plans = append(plans, plan)
		if r.MaxCQs > 0 && len(plans) >= r.MaxCQs {
			break
		}
	}
	if len(plans) == 0 {
		return nil, fmt.Errorf("rewrite: no wrapper combination answers the walk")
	}
	if len(plans) == 1 {
		res.Plan = plans[0]
	} else {
		res.Plan = relalg.NewDistinct(relalg.NewUnion(plans...))
	}
	return res, nil
}

// conceptCoverage records, for one walk concept, which wrappers can
// contribute tuples (they cover the concept and map its identifier) and
// which of the needed features each provides.
type conceptCoverage struct {
	concept    rdf.Term
	candidates []string                       // sorted wrapper names
	provides   map[string]map[rdf.Term]string // wrapper -> feature -> attribute
}

// conceptCoverage computes the candidates for one concept (phase b
// groundwork). It fails fast when a needed feature is provided by no
// wrapper at all.
func (r *Rewriter) conceptCoverage(c rdf.Term, feats []rdf.Term) (conceptCoverage, error) {
	id, _ := r.ont.IdentifierOf(c)
	cov := conceptCoverage{concept: c, provides: map[string]map[rdf.Term]string{}}
	for _, wname := range r.ont.WrappersCovering(c) {
		m := map[rdf.Term]string{}
		for _, f := range feats {
			if r.ont.WrapperProvidesFeature(wname, c, f) {
				if attr, ok := r.ont.AttributeForFeature(wname, f); ok {
					m[f] = attr
				}
			}
		}
		// Without the identifier a wrapper's tuples cannot be joined or
		// deduplicated, so it cannot contribute.
		if _, hasID := m[id]; !hasID {
			continue
		}
		cov.candidates = append(cov.candidates, wname)
		cov.provides[wname] = m
	}
	if len(cov.candidates) == 0 {
		return cov, fmt.Errorf("rewrite: no wrapper provides concept %s with its identifier", c)
	}
	sort.Strings(cov.candidates)
	for _, f := range feats {
		provided := false
		for _, m := range cov.provides {
			if _, ok := m[f]; ok {
				provided = true
				break
			}
		}
		if !provided {
			return cov, fmt.Errorf("rewrite: feature %s of concept %s is not provided by any wrapper",
				f.LocalName(), c)
		}
	}
	return cov, nil
}

// minimalCovers enumerates the minimal candidate subsets that provide
// every feature in feats not already provided by the chosen set. When
// nothing remains, the single empty cover is returned.
func (cov conceptCoverage) minimalCovers(feats []rdf.Term, chosen map[string]bool) [][]string {
	remaining := feats[:0:0]
	for _, f := range feats {
		already := false
		for wname := range chosen {
			if m, ok := cov.provides[wname]; ok {
				if _, ok := m[f]; ok {
					already = true
					break
				}
			}
		}
		if !already {
			remaining = append(remaining, f)
		}
	}
	if len(remaining) == 0 {
		return [][]string{nil}
	}
	var covers [][]string
	allCovered := func(covered map[rdf.Term]bool) bool {
		for _, f := range remaining {
			if !covered[f] {
				return false
			}
		}
		return true
	}
	var search func(start int, picked []string, covered map[rdf.Term]bool)
	search = func(start int, picked []string, covered map[rdf.Term]bool) {
		if allCovered(covered) {
			covers = append(covers, append([]string(nil), picked...))
			return
		}
		for i := start; i < len(cov.candidates); i++ {
			wname := cov.candidates[i]
			adds := false
			for f := range cov.provides[wname] {
				if !covered[f] {
					for _, rf := range remaining {
						if rf == f {
							adds = true
						}
					}
				}
				if adds {
					break
				}
			}
			if !adds {
				continue
			}
			nc := map[rdf.Term]bool{}
			for k := range covered {
				nc[k] = true
			}
			for f := range cov.provides[wname] {
				nc[f] = true
			}
			search(i+1, append(picked, wname), nc)
		}
	}
	search(0, nil, map[rdf.Term]bool{})
	return dropSupersets(covers)
}

// dropSupersets removes covers that are strict supersets of another
// cover (minimality), and duplicate covers.
func dropSupersets(covers [][]string) [][]string {
	asSet := make([]map[string]bool, len(covers))
	for i, c := range covers {
		asSet[i] = map[string]bool{}
		for _, w := range c {
			asSet[i][w] = true
		}
	}
	var out [][]string
	for i, c := range covers {
		minimal := true
		for j := range covers {
			if i == j {
				continue
			}
			if len(asSet[j]) < len(asSet[i]) && subset(asSet[j], asSet[i]) {
				minimal = false
				break
			}
			if len(asSet[j]) == len(asSet[i]) && j < i && subset(asSet[j], asSet[i]) {
				minimal = false // duplicate; keep first
				break
			}
		}
		if minimal {
			out = append(out, c)
		}
	}
	return out
}

func subset(a, b map[string]bool) bool {
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// combo is a full combination: the wrapper set of one conjunctive query.
type combo struct {
	r        *Rewriter
	walk     *Walk
	wrappers []string // sorted, deduplicated
}

func (c combo) wrapperNames() []string { return c.wrappers }

// maxCombos bounds the inter-concept search; far beyond any sane mapping
// configuration, it guards against combinatorial blow-up.
const maxCombos = 4096

// interConcept enumerates wrapper combinations: first a witness wrapper
// per relation edge (a witness covers the relation triple and maps the
// identifiers of both endpoints, materializing the edge as a joinable
// id-id relation), then, per concept, a minimal cover of the features
// not already provided by the wrappers chosen so far. Combinations are
// deduplicated by wrapper set, and sets that are strict supersets of
// another combination are pruned: under LAV certain-answer semantics the
// extra wrapper can only restrict the subset combination's answer.
func (r *Rewriter) interConcept(w *Walk, need map[rdf.Term][]rdf.Term, coverages map[rdf.Term]conceptCoverage) ([]combo, error) {
	witnessOpts := make([][]string, len(w.Relations))
	for i, rel := range w.Relations {
		idS, okS := r.ont.IdentifierOf(rel.S)
		idO, okO := r.ont.IdentifierOf(rel.O)
		if !okS || !okO {
			return nil, fmt.Errorf("rewrite: relation %s endpoint lacks an identifier", rel)
		}
		for _, wname := range r.ont.MappedWrappers() {
			if !r.ont.WrapperCoversRelation(wname, rel) {
				continue
			}
			if _, ok := r.ont.AttributeForFeature(wname, idS); !ok {
				continue
			}
			if _, ok := r.ont.AttributeForFeature(wname, idO); !ok {
				continue
			}
			witnessOpts[i] = append(witnessOpts[i], wname)
		}
		if len(witnessOpts[i]) == 0 {
			return nil, fmt.Errorf("rewrite: no wrapper witnesses relation %s —%s→ %s",
				rel.S.LocalName(), rel.P.LocalName(), rel.O.LocalName())
		}
	}

	var out []combo
	seen := map[string]bool{}
	emit := func(set map[string]bool) {
		names := make([]string, 0, len(set))
		for n := range set {
			names = append(names, n)
		}
		sort.Strings(names)
		key := strings.Join(names, ",")
		if seen[key] {
			return
		}
		seen[key] = true
		out = append(out, combo{r: r, walk: w, wrappers: names})
	}

	var recConcepts func(j int, set map[string]bool)
	recConcepts = func(j int, set map[string]bool) {
		if len(out) >= maxCombos {
			return
		}
		if j == len(w.Concepts) {
			emit(set)
			return
		}
		c := w.Concepts[j]
		for _, cover := range coverages[c].minimalCovers(need[c], set) {
			ns := set
			if len(cover) > 0 {
				ns = map[string]bool{}
				for k := range set {
					ns[k] = true
				}
				for _, wname := range cover {
					ns[wname] = true
				}
			}
			recConcepts(j+1, ns)
		}
	}
	var recWitness func(i int, set map[string]bool)
	recWitness = func(i int, set map[string]bool) {
		if len(out) >= maxCombos {
			return
		}
		if i == len(w.Relations) {
			recConcepts(0, set)
			return
		}
		for _, wname := range witnessOpts[i] {
			ns := set
			if !set[wname] {
				ns = map[string]bool{}
				for k := range set {
					ns[k] = true
				}
				ns[wname] = true
			}
			recWitness(i+1, ns)
		}
	}
	recWitness(0, map[string]bool{})
	if len(out) == 0 {
		return nil, fmt.Errorf("rewrite: no wrapper combination covers all relation edges of the walk")
	}
	return pruneCombos(out), nil
}

// pruneCombos removes combinations whose wrapper set strictly contains
// another combination's set.
func pruneCombos(combos []combo) []combo {
	sets := make([]map[string]bool, len(combos))
	for i, c := range combos {
		sets[i] = map[string]bool{}
		for _, n := range c.wrappers {
			sets[i][n] = true
		}
	}
	var out []combo
	for i, c := range combos {
		redundant := false
		for j := range combos {
			if i == j || len(sets[j]) >= len(sets[i]) {
				continue
			}
			if subset(sets[j], sets[i]) {
				redundant = true
				break
			}
		}
		if !redundant {
			out = append(out, c)
		}
	}
	return out
}

// assemble builds the CQ plan for a combination: per-wrapper base plans
// (scan + rename attributes to feature IRIs), joined greedily on shared
// identifier-feature columns, then projected and renamed to the output
// columns.
func (c combo) assemble(projFeatures []rdf.Term, outCols []string) (relalg.Plan, error) {
	r := c.r
	// Identifier features are the only legal join columns (paper §2.3).
	// Collect them from every participating wrapper's sameAs targets so
	// relation witnesses contribute their join columns too.
	isID := map[string]bool{}
	for _, wname := range c.wrapperNames() {
		if m, ok := r.ont.MappingOf(wname); ok {
			for _, f := range m.SameAs {
				if r.ont.IsIdentifier(f) {
					isID[r.col(f)] = true
				}
			}
		}
	}

	// One base plan per distinct wrapper in the combination (feature
	// providers and relation witnesses alike). A wrapper may serve
	// several concepts (e.g. w1 covers Player and the Team identifier);
	// its sameAs links are applied once.
	names := c.wrapperNames()
	base := map[string]relalg.Plan{}
	for _, wname := range names {
		plan, err := c.basePlan(wname)
		if err != nil {
			return nil, err
		}
		base[wname] = plan
	}

	// Greedy connected join on shared identifier columns.
	remaining := append([]string(nil), names...)
	plan := base[remaining[0]]
	remaining = remaining[1:]
	for len(remaining) > 0 {
		progress := false
		for i, wname := range remaining {
			on := sharedIDColumns(plan.Columns(), base[wname].Columns(), isID)
			if len(on) == 0 {
				continue
			}
			plan = relalg.NewJoin(plan, base[wname], on)
			remaining = append(remaining[:i], remaining[i+1:]...)
			progress = true
			break
		}
		if !progress {
			return nil, fmt.Errorf("rewrite: wrapper combination %v is not joinable on identifier features", names)
		}
	}

	// Final projection: feature IRIs -> output column names.
	var mapping [][2]string
	var featCols []string
	for i, f := range projFeatures {
		featCols = append(featCols, r.col(f))
		mapping = append(mapping, [2]string{r.col(f), outCols[i]})
	}
	projected := relalg.NewProject(plan, featCols...)
	return relalg.NewRename(projected, mapping), nil
}

// basePlan builds scan+rename for one wrapper: attributes that have a
// sameAs link are renamed to their feature IRI; unmapped attributes are
// dropped by a projection.
func (c combo) basePlan(wname string) (relalg.Plan, error) {
	wr, ok := c.r.reg.Get(wname)
	if !ok {
		return nil, fmt.Errorf("rewrite: wrapper %q has a mapping but is not registered", wname)
	}
	m, ok := c.r.ont.MappingOf(wname)
	if !ok {
		return nil, fmt.Errorf("rewrite: wrapper %q has no LAV mapping", wname)
	}
	var mapping [][2]string
	var keep []string
	// Deterministic order over attributes.
	attrs := make([]string, 0, len(m.SameAs))
	for a := range m.SameAs {
		attrs = append(attrs, a)
	}
	sort.Strings(attrs)
	have := map[string]bool{}
	for _, col := range wr.Columns() {
		have[col] = true
	}
	for _, a := range attrs {
		if !have[a] {
			return nil, fmt.Errorf("rewrite: mapping of %s references attribute %q missing from wrapper signature", wname, a)
		}
		f := m.SameAs[a]
		mapping = append(mapping, [2]string{a, c.r.col(f)})
		keep = append(keep, c.r.col(f))
	}
	if len(keep) == 0 {
		return nil, fmt.Errorf("rewrite: wrapper %s maps no attributes", wname)
	}
	renamed := relalg.NewRename(relalg.NewScan(wr), mapping)
	return relalg.NewProject(renamed, keep...), nil
}

// sharedIDColumns returns natural-join pairs over identifier features
// present on both sides.
func sharedIDColumns(l, r []string, isID map[string]bool) [][2]string {
	rset := map[string]bool{}
	for _, c := range r {
		rset[c] = true
	}
	var on [][2]string
	for _, c := range l {
		if isID[c] && rset[c] {
			on = append(on, [2]string{c, c})
		}
	}
	return on
}

func containsTerm(ts []rdf.Term, t rdf.Term) bool {
	for _, e := range ts {
		if e == t {
			return true
		}
	}
	return false
}
