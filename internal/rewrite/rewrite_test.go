package rewrite_test

import (
	"context"
	"strings"
	"testing"

	"mdm/internal/bdi"
	"mdm/internal/rdf"
	"mdm/internal/relalg"
	"mdm/internal/rewrite"
	"mdm/internal/schema"
	"mdm/internal/usecase"
	"mdm/internal/wrapper"
)

func mustRewrite(t *testing.T, f *usecase.Fixture, w *rewrite.Walk) *rewrite.Result {
	t.Helper()
	res, err := rewrite.New(f.Ont, f.Reg).Rewrite(w)
	if err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	return res
}

func execute(t *testing.T, res *rewrite.Result) *relalg.Relation {
	t.Helper()
	rel, err := res.Plan.Execute(context.Background())
	if err != nil {
		t.Fatalf("execute: %v\nplan:\n%s", err, relalg.PrintTree(res.Plan))
	}
	return rel
}

func TestFig8PlayerTeamQuery(t *testing.T) {
	f := usecase.MustNew()
	res := mustRewrite(t, f, usecase.Fig8Walk())

	// Output columns as in Table 1.
	if len(res.OutputColumns) != 2 || res.OutputColumns[0] != "teamName" || res.OutputColumns[1] != "playerName" {
		t.Fatalf("columns = %v", res.OutputColumns)
	}
	// Single CQ: w1 ⋈ w2 on teamId.
	if len(res.CQs) != 1 {
		t.Fatalf("CQs = %d, want 1: %+v", len(res.CQs), res.CQs)
	}
	if got := res.CQs[0].Wrappers; len(got) != 2 || got[0] != "w1" || got[1] != "w2" {
		t.Fatalf("wrappers = %v", got)
	}
	if !strings.Contains(res.CQs[0].Algebra, "⋈") {
		t.Errorf("algebra missing join: %s", res.CQs[0].Algebra)
	}
	// Expansion added identifiers (playerId and teamId are not projected).
	if len(res.ExpandedFeatures) != 2 {
		t.Errorf("expanded = %v", res.ExpandedFeatures)
	}

	rel := execute(t, res)
	if rel.Len() != 5 {
		t.Fatalf("rows = %d, want 5\n%s", rel.Len(), rel.Table())
	}
	// Table 1's sample rows must be present.
	got := map[string]string{}
	ti, pi := rel.ColIndex("teamName"), rel.ColIndex("playerName")
	for _, row := range rel.Rows {
		got[row[pi].Text()] = row[ti].Text()
	}
	want := map[string]string{
		"Lionel Messi":       "FC Barcelona",
		"Robert Lewandowski": "Bayern Munich",
		"Zlatan Ibrahimovic": "Manchester United",
	}
	for p, team := range want {
		if got[p] != team {
			t.Errorf("row (%s, %s) missing or wrong: got %q", team, p, got[p])
		}
	}
}

func TestFig8SPARQLRendering(t *testing.T) {
	f := usecase.MustNew()
	res := mustRewrite(t, f, usecase.Fig8Walk())
	for _, frag := range []string{
		"SELECT ?teamName ?playerName",
		"rdf:type ex:Player",
		"rdf:type sc:SportsTeam",
		"ex:playsIn",
		"?playerName",
	} {
		if !strings.Contains(res.SPARQL, frag) {
			t.Errorf("SPARQL missing %q:\n%s", frag, res.SPARQL)
		}
	}
}

func TestSingleConceptSingleWrapper(t *testing.T) {
	f := usecase.MustNew()
	w := rewrite.NewWalk().SelectAs(usecase.Country, usecase.CountryName, "country")
	res := mustRewrite(t, f, w)
	if len(res.CQs) != 1 || len(res.CQs[0].Wrappers) != 1 || res.CQs[0].Wrappers[0] != "w4" {
		t.Fatalf("CQs = %+v", res.CQs)
	}
	rel := execute(t, res)
	if rel.Len() != 6 {
		t.Fatalf("countries = %d", rel.Len())
	}
}

func TestIntraConceptJoinAcrossWrappersOfOneConcept(t *testing.T) {
	// Player name (w1) + nationality country id (w5) — two wrappers of
	// the same concept joined on playerId (intra-concept generation).
	f := usecase.MustNew()
	w := rewrite.NewWalk().
		SelectAs(usecase.Player, usecase.PlayerName, "name").
		Relate(usecase.Player, usecase.HasNationality, usecase.Country).
		SelectAs(usecase.Country, usecase.CountryName, "country")
	res := mustRewrite(t, f, w)
	rel := execute(t, res)
	if rel.Len() != 5 {
		t.Fatalf("rows = %d\n%s", rel.Len(), rel.Table())
	}
	ni, ci := rel.ColIndex("name"), rel.ColIndex("country")
	byName := map[string]string{}
	for _, r := range rel.Rows {
		byName[r[ni].Text()] = r[ci].Text()
	}
	if byName["Lionel Messi"] != "Argentina" || byName["Harry Kane"] != "England" {
		t.Errorf("nationalities = %v", byName)
	}
}

func TestNationalityQueryFourConcepts(t *testing.T) {
	// The paper's exemplary OMQ: players that play in a league of their
	// nationality — Country reached via two paths, joined on countryId.
	f := usecase.MustNew()
	res := mustRewrite(t, f, usecase.NationalityWalk())
	rel := execute(t, res)
	names := map[string]bool{}
	pi := rel.ColIndex("playerName")
	for _, r := range rel.Rows {
		names[r[pi].Text()] = true
	}
	if !names["Harry Kane"] || !names["Marcus Rashford"] {
		t.Errorf("expected Kane and Rashford, got %v\n%s", names, rel.Table())
	}
	if names["Lionel Messi"] || names["Zlatan Ibrahimovic"] {
		t.Errorf("non-matching players leaked: %v", names)
	}
	if rel.Len() != 2 {
		t.Errorf("rows = %d\n%s", rel.Len(), rel.Table())
	}
}

func TestEvolutionUnionOfSchemaVersions(t *testing.T) {
	// Governance of evolution: after the v2 release the same walk is
	// answered by both wrapper versions, unioned.
	f := usecase.MustNew()
	before := mustRewrite(t, f, usecase.Fig8Walk())
	if len(before.CQs) != 1 {
		t.Fatalf("CQs before release = %d", len(before.CQs))
	}
	if err := f.ReleasePlayersV2(); err != nil {
		t.Fatal(err)
	}
	after := mustRewrite(t, f, usecase.Fig8Walk())
	if len(after.CQs) != 2 {
		t.Fatalf("CQs after release = %d, want 2 (one per schema version)", len(after.CQs))
	}
	var sawV1, sawV2 bool
	for _, cq := range after.CQs {
		for _, w := range cq.Wrappers {
			if w == "w1" {
				sawV1 = true
			}
			if w == "w1v2" {
				sawV2 = true
			}
		}
	}
	if !sawV1 || !sawV2 {
		t.Fatalf("both versions must contribute: %+v", after.CQs)
	}

	rel := execute(t, after)
	names := map[string]bool{}
	pi := rel.ColIndex("playerName")
	for _, r := range rel.Rows {
		names[r[pi].Text()] = true
	}
	// Old-only player (Zlatan, v1), new-only player (Pedri, v2) and a
	// player present in both versions (Messi, deduplicated).
	for _, want := range []string{"Zlatan Ibrahimovic", "Pedri", "Lionel Messi"} {
		if !names[want] {
			t.Errorf("missing %s in unioned result\n%s", want, rel.Table())
		}
	}
	messi := 0
	for _, r := range rel.Rows {
		if r[pi].Text() == "Lionel Messi" {
			messi++
		}
	}
	if messi != 1 {
		t.Errorf("Messi appears %d times; union should deduplicate identical rows", messi)
	}
}

func TestNewFeatureOnlyInV2(t *testing.T) {
	f := usecase.MustNew()
	// Before the release, position is not even a feature: walk invalid.
	if _, err := rewrite.New(f.Ont, f.Reg).Rewrite(usecase.PositionWalk()); err == nil {
		t.Fatal("position query should fail before v2 release")
	}
	if err := f.ReleasePlayersV2(); err != nil {
		t.Fatal(err)
	}
	res := mustRewrite(t, f, usecase.PositionWalk())
	if len(res.CQs) != 1 || res.CQs[0].Wrappers[0] != "w1v2" {
		t.Fatalf("CQs = %+v, want only w1v2", res.CQs)
	}
	rel := execute(t, res)
	if rel.Len() != 4 {
		t.Errorf("v2 rows = %d\n%s", rel.Len(), rel.Table())
	}
}

func TestWalkValidation(t *testing.T) {
	f := usecase.MustNew()
	r := rewrite.New(f.Ont, f.Reg)
	cases := []struct {
		name string
		walk *rewrite.Walk
	}{
		{"empty", rewrite.NewWalk()},
		{"unknown concept", rewrite.NewWalk().Select(usecase.PlayerID, usecase.PlayerName)},
		{"feature of other concept", rewrite.NewWalk().Select(usecase.Team, usecase.PlayerName)},
		{"disconnected", rewrite.NewWalk().
			Select(usecase.Player, usecase.PlayerName).
			Select(usecase.Country, usecase.CountryName)},
		{"unknown relation", rewrite.NewWalk().
			Select(usecase.Player, usecase.PlayerName).
			Relate(usecase.Player, usecase.InCountry, usecase.Country)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := r.Rewrite(c.walk); err == nil {
				t.Error("expected validation error")
			}
		})
	}
}

func TestUnanswerableFeature(t *testing.T) {
	f := usecase.MustNew()
	// Declare a feature no wrapper maps.
	phantom := rdf.IRI(usecase.EX + "phantom")
	o := f.Ont
	if err := o.AddFeature(phantom, "phantom"); err != nil {
		t.Fatal(err)
	}
	if err := o.AttachFeature(usecase.Player, phantom); err != nil {
		t.Fatal(err)
	}
	w := rewrite.NewWalk().Select(usecase.Player, phantom)
	if _, err := rewrite.New(f.Ont, f.Reg).Rewrite(w); err == nil {
		t.Fatal("phantom feature should be unanswerable")
	} else if !strings.Contains(err.Error(), "phantom") {
		t.Errorf("error should name the missing feature: %v", err)
	}
}

func TestConceptWithoutIdentifierRejected(t *testing.T) {
	f := usecase.MustNew()
	o := f.Ont
	orphan := rdf.IRI(usecase.EX + "Orphan")
	name := rdf.IRI(usecase.EX + "orphanName")
	if err := o.AddConcept(orphan, "Orphan"); err != nil {
		t.Fatal(err)
	}
	if err := o.AddFeature(name, "orphanName"); err != nil {
		t.Fatal(err)
	}
	if err := o.AttachFeature(orphan, name); err != nil {
		t.Fatal(err)
	}
	w := rewrite.NewWalk().Select(orphan, name)
	if _, err := rewrite.New(f.Ont, f.Reg).Rewrite(w); err == nil {
		t.Fatal("concept without identifier should fail query expansion")
	} else if !strings.Contains(err.Error(), "identifier") {
		t.Errorf("error = %v", err)
	}
}

func TestMaxCQsCap(t *testing.T) {
	f := usecase.MustNew()
	if err := f.ReleasePlayersV2(); err != nil {
		t.Fatal(err)
	}
	r := rewrite.New(f.Ont, f.Reg)
	r.MaxCQs = 1
	res, err := r.Rewrite(usecase.Fig8Walk())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CQs) != 1 {
		t.Errorf("MaxCQs not enforced: %d", len(res.CQs))
	}
}

func TestWalkBuilderIdempotence(t *testing.T) {
	w := rewrite.NewWalk().
		Select(usecase.Player, usecase.PlayerName).
		Select(usecase.Player, usecase.PlayerName).
		AddConcept(usecase.Player).
		Relate(usecase.Player, usecase.PlaysIn, usecase.Team).
		Relate(usecase.Player, usecase.PlaysIn, usecase.Team)
	if len(w.Concepts) != 2 {
		t.Errorf("concepts = %v", w.Concepts)
	}
	if len(w.Features[usecase.Player]) != 1 {
		t.Errorf("features = %v", w.Features[usecase.Player])
	}
	if len(w.Relations) != 1 {
		t.Errorf("relations = %v", w.Relations)
	}
}

func TestProjectedFeaturesOrder(t *testing.T) {
	w := usecase.Fig8Walk()
	feats := w.ProjectedFeatures()
	if len(feats) != 2 || feats[0] != usecase.TeamName || feats[1] != usecase.PlayerName {
		t.Errorf("projection order = %v", feats)
	}
}

// TestTaxonomyAwareCoverage: paper §2.1 allows concept taxonomies. A
// wrapper whose mapping types a SUBCLASS (ex:Goalkeeper) must contribute
// to queries over the superclass (ex:Player), since its tuples are
// players too.
func TestTaxonomyAwareCoverage(t *testing.T) {
	f := usecase.MustNew()
	o := f.Ont
	goalkeeper := rdf.IRI(usecase.EX + "Goalkeeper")
	if err := o.AddConcept(goalkeeper, "Goalkeeper"); err != nil {
		t.Fatal(err)
	}
	if err := o.AddSubClass(goalkeeper, usecase.Player); err != nil {
		t.Fatal(err)
	}
	// A goalkeepers API: new source with one wrapper typed as Goalkeeper
	// but populating the Player features (its subgraph uses Player's
	// hasFeature edges, which is legal: they are global-graph triples).
	if err := o.AddDataSource("keepers-api", "Goalkeepers API"); err != nil {
		t.Fatal(err)
	}
	kw := wrapper.NewMem("wk", "keepers-api", []schema.Doc{
		{"id": relalg.Int(9900), "kName": relalg.String("Marc-Andre ter Stegen"), "teamId": relalg.Int(25)},
	}, nil)
	if err := f.Reg.Register(kw); err != nil {
		t.Fatal(err)
	}
	if err := o.RegisterWrapper("keepers-api", kw.Signature()); err != nil {
		t.Fatal(err)
	}
	rt := rdf.IRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type")
	if err := o.DefineMapping(bdi.Mapping{
		Wrapper: "wk",
		Subgraph: []rdf.Triple{
			rdf.T(goalkeeper, rt, bdi.ClassConcept),
			rdf.T(usecase.Player, bdi.PropHasFeature, usecase.PlayerID),
			rdf.T(usecase.Player, bdi.PropHasFeature, usecase.PlayerName),
			rdf.T(usecase.Player, usecase.PlaysIn, usecase.Team),
			rdf.T(usecase.Team, rt, bdi.ClassConcept),
			rdf.T(usecase.Team, bdi.PropHasFeature, usecase.TeamID),
		},
		SameAs: map[string]rdf.Term{
			"id": usecase.PlayerID, "kName": usecase.PlayerName, "teamId": usecase.TeamID,
		},
	}); err != nil {
		t.Fatal(err)
	}

	res := mustRewrite(t, f, usecase.Fig8Walk())
	// Two CQs now: the w1-based one and the goalkeeper-based one.
	if len(res.CQs) != 2 {
		t.Fatalf("CQs = %d (%v)", len(res.CQs), res.CQs)
	}
	rel := execute(t, res)
	names := map[string]bool{}
	pi := rel.ColIndex("playerName")
	for _, r := range rel.Rows {
		names[r[pi].Text()] = true
	}
	if !names["Marc-Andre ter Stegen"] {
		t.Errorf("subclass wrapper rows missing:\n%s", rel.Table())
	}
	if !names["Lionel Messi"] {
		t.Errorf("superclass wrapper rows missing:\n%s", rel.Table())
	}
}

// TestSubclassConceptQuery: with feature inheritance, a walk over the
// SUBCLASS concept itself (Goalkeeper) uses the superclass's features
// and identifier, and is answered by the subclass's wrapper only.
func TestSubclassConceptQuery(t *testing.T) {
	f := usecase.MustNew()
	o := f.Ont
	goalkeeper := rdf.IRI(usecase.EX + "Goalkeeper")
	if err := o.AddConcept(goalkeeper, "Goalkeeper"); err != nil {
		t.Fatal(err)
	}
	if err := o.AddSubClass(goalkeeper, usecase.Player); err != nil {
		t.Fatal(err)
	}
	if err := o.AddDataSource("keepers-api", ""); err != nil {
		t.Fatal(err)
	}
	kw := wrapper.NewMem("wk", "keepers-api", []schema.Doc{
		{"id": relalg.Int(9900), "kName": relalg.String("Marc-Andre ter Stegen")},
	}, nil)
	if err := f.Reg.Register(kw); err != nil {
		t.Fatal(err)
	}
	if err := o.RegisterWrapper("keepers-api", kw.Signature()); err != nil {
		t.Fatal(err)
	}
	rt := rdf.IRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type")
	if err := o.DefineMapping(bdi.Mapping{
		Wrapper: "wk",
		Subgraph: []rdf.Triple{
			rdf.T(goalkeeper, rt, bdi.ClassConcept),
			rdf.T(usecase.Player, bdi.PropHasFeature, usecase.PlayerID),
			rdf.T(usecase.Player, bdi.PropHasFeature, usecase.PlayerName),
		},
		SameAs: map[string]rdf.Term{"id": usecase.PlayerID, "kName": usecase.PlayerName},
	}); err != nil {
		t.Fatal(err)
	}

	// Walk over Goalkeeper with the inherited playerName feature.
	w := rewrite.NewWalk().SelectAs(goalkeeper, usecase.PlayerName, "name")
	res := mustRewrite(t, f, w)
	rel := execute(t, res)
	// Answered by wk only? w1 types ex:Player which is NOT a subclass of
	// Goalkeeper, so wk is the only covering wrapper.
	for _, cq := range res.CQs {
		for _, wn := range cq.Wrappers {
			if wn != "wk" {
				t.Errorf("unexpected wrapper %s answering Goalkeeper walk", wn)
			}
		}
	}
	if rel.Len() != 1 || rel.Rows[0][0].Text() != "Marc-Andre ter Stegen" {
		t.Errorf("goalkeeper rows:\n%s", rel.Table())
	}
}
