// Package rewrite implements MDM's ontology-mediated query answering:
// the LAV query rewriting algorithm of paper §2.4. An analyst poses an
// OMQ as a "walk" — a subgraph pattern over the global graph selected
// graphically in the original tool. The algorithm resolves the LAV
// mappings in three phases:
//
//	(a) query expansion      — concept identifiers not explicitly
//	    requested are added to the walk, since all joins happen on
//	    features inheriting from sc:identifier;
//	(b) intra-concept generation — for every concept, the minimal
//	    combinations of wrappers that jointly provide the requested
//	    features (joined on the concept identifier) are enumerated,
//	    yielding "partial walks";
//	(c) inter-concept generation — partial walks are connected across
//	    the walk's relation edges (each edge must be witnessed by a
//	    wrapper mapping that covers it), producing a union of
//	    conjunctive queries (UCQ) over the wrappers.
//
// The result is a relalg.Plan ready for federated execution, plus the
// equivalent SPARQL text (Figure 8 of the paper shows both).
package rewrite

import (
	"fmt"
	"sort"
	"strings"

	"mdm/internal/bdi"
	"mdm/internal/rdf"
)

// Walk is an ontology-mediated query: a connected subgraph of the global
// graph with the features the analyst wants projected.
type Walk struct {
	// Concepts are the selected concept IRIs.
	Concepts []rdf.Term
	// Features maps each concept to the features to project, in order.
	Features map[rdf.Term][]rdf.Term
	// Relations are the selected concept-relation edges.
	Relations []rdf.Triple
	// Aliases optionally maps a feature IRI to an output column name;
	// features without an alias use their IRI local name.
	Aliases map[rdf.Term]string
}

// NewWalk returns an empty walk.
func NewWalk() *Walk {
	return &Walk{Features: map[rdf.Term][]rdf.Term{}, Aliases: map[rdf.Term]string{}}
}

// AddConcept adds a concept to the walk (idempotent).
func (w *Walk) AddConcept(c rdf.Term) *Walk {
	for _, e := range w.Concepts {
		if e == c {
			return w
		}
	}
	w.Concepts = append(w.Concepts, c)
	return w
}

// Select requests a feature of a concept for projection.
func (w *Walk) Select(concept, feature rdf.Term) *Walk {
	w.AddConcept(concept)
	for _, f := range w.Features[concept] {
		if f == feature {
			return w
		}
	}
	w.Features[concept] = append(w.Features[concept], feature)
	return w
}

// SelectAs requests a feature with an explicit output column name.
func (w *Walk) SelectAs(concept, feature rdf.Term, alias string) *Walk {
	w.Select(concept, feature)
	w.Aliases[feature] = alias
	return w
}

// Relate adds a relation edge between two walk concepts.
func (w *Walk) Relate(from, prop, to rdf.Term) *Walk {
	w.AddConcept(from)
	w.AddConcept(to)
	t := rdf.T(from, prop, to)
	for _, e := range w.Relations {
		if e == t {
			return w
		}
	}
	w.Relations = append(w.Relations, t)
	return w
}

// ProjectedFeatures returns the walk's requested features in a stable
// order: by concept insertion order, then feature insertion order.
func (w *Walk) ProjectedFeatures() []rdf.Term {
	var out []rdf.Term
	for _, c := range w.Concepts {
		out = append(out, w.Features[c]...)
	}
	return out
}

// Validate checks the walk against an ontology: concepts declared,
// features attached to their concepts, relations present in the global
// graph, and the walk connected when it has more than one concept.
func (w *Walk) Validate(o *bdi.Ontology) error {
	if len(w.Concepts) == 0 {
		return fmt.Errorf("rewrite: empty walk")
	}
	g := o.Global()
	for _, c := range w.Concepts {
		if !g.Has(rdf.T(c, rdf.IRI(rdf.RDFType), bdi.ClassConcept)) {
			return fmt.Errorf("rewrite: %w %s", errUnknown, c)
		}
	}
	for c, feats := range w.Features {
		for _, f := range feats {
			// Taxonomy-aware: features may be inherited from superclasses.
			if !o.HasFeatureInherited(c, f) {
				return fmt.Errorf("rewrite: feature %s is not attached to concept %s", f, c)
			}
		}
	}
	for _, r := range w.Relations {
		if !g.Has(r) {
			return fmt.Errorf("rewrite: relation %s not in global graph", r)
		}
	}
	if len(w.Concepts) > 1 {
		if !w.connected() {
			return fmt.Errorf("rewrite: walk is not connected; add relation edges")
		}
	}
	return nil
}

var errUnknown = fmt.Errorf("unknown concept")

func (w *Walk) connected() bool {
	adj := map[rdf.Term][]rdf.Term{}
	for _, r := range w.Relations {
		adj[r.S] = append(adj[r.S], r.O)
		adj[r.O] = append(adj[r.O], r.S)
	}
	seen := map[rdf.Term]bool{w.Concepts[0]: true}
	stack := []rdf.Term{w.Concepts[0]}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, n := range adj[cur] {
			if !seen[n] {
				seen[n] = true
				stack = append(stack, n)
			}
		}
	}
	for _, c := range w.Concepts {
		if !seen[c] {
			return false
		}
	}
	return true
}

// SPARQL renders the walk as the equivalent SPARQL query over the global
// vocabulary, as MDM displays it (Figure 8): one instance variable per
// concept, one triple pattern per requested feature, one per relation.
func (w *Walk) SPARQL(o *bdi.Ontology) string {
	pm := o.Dataset().Prefixes()
	varOf := map[rdf.Term]string{}
	used := map[string]int{}
	for _, c := range w.Concepts {
		base := lowerFirst(c.LocalName())
		used[base]++
		if used[base] > 1 {
			base = fmt.Sprintf("%s%d", base, used[base])
		}
		varOf[c] = base
	}
	var selectVars, patterns []string
	for _, c := range w.Concepts {
		patterns = append(patterns, fmt.Sprintf("?%s rdf:type %s .", varOf[c], pm.CompactTerm(c)))
		for _, f := range w.Features[c] {
			v := w.columnName(f)
			selectVars = append(selectVars, "?"+v)
			patterns = append(patterns, fmt.Sprintf("?%s %s ?%s .", varOf[c], pm.CompactTerm(f), v))
		}
	}
	for _, r := range w.Relations {
		patterns = append(patterns, fmt.Sprintf("?%s %s ?%s .", varOf[r.S], pm.CompactTerm(r.P), varOf[r.O]))
	}
	var sb strings.Builder
	for _, pair := range pm.Pairs() {
		// Only emit prefixes actually used, to keep Figure 8 readable.
		pfx := pair[0] + ":"
		usedHere := false
		for _, p := range patterns {
			if strings.Contains(p, pfx) {
				usedHere = true
				break
			}
		}
		if usedHere {
			fmt.Fprintf(&sb, "PREFIX %s: <%s>\n", pair[0], pair[1])
		}
	}
	fmt.Fprintf(&sb, "SELECT %s WHERE {\n", strings.Join(selectVars, " "))
	for _, p := range patterns {
		fmt.Fprintf(&sb, "  %s\n", p)
	}
	sb.WriteString("}")
	return sb.String()
}

// columnName returns the output column for a feature (alias or local
// name).
func (w *Walk) columnName(f rdf.Term) string {
	if a, ok := w.Aliases[f]; ok && a != "" {
		return a
	}
	return f.LocalName()
}

func lowerFirst(s string) string {
	if s == "" {
		return s
	}
	return strings.ToLower(s[:1]) + s[1:]
}

// sortTerms sorts a term slice in place and returns it.
func sortTerms(ts []rdf.Term) []rdf.Term {
	sort.Slice(ts, func(i, j int) bool { return rdf.Compare(ts[i], ts[j]) < 0 })
	return ts
}
