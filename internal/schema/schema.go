// Package schema extracts flat, first-normal-form schemas from the raw
// payloads that data sources deliver (JSON, XML, CSV), producing wrapper
// signatures of the form w(a1, ..., an) as assumed by the paper (§2.2:
// "we work under the assumption that wrappers provide a flat structure
// in first normal form").
//
// Nested JSON/XML objects are flattened into underscore-separated paths
// (team.id -> team_id); arrays of records at the top level become rows;
// nested arrays violate 1NF and are reported as errors so the data
// steward can adjust the wrapper query instead of silently losing data.
package schema

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strings"

	"mdm/internal/relalg"
)

// Attribute is one column of a wrapper signature.
type Attribute struct {
	// Name is the flattened attribute name.
	Name string
	// Type is the inferred scalar type.
	Type relalg.Type
}

// Signature is a wrapper signature w(a1..an).
type Signature struct {
	// Wrapper is the wrapper name (w1, w2, ...).
	Wrapper string
	// Attributes lists the columns in a stable order.
	Attributes []Attribute
}

// AttributeNames returns just the names, in order.
func (s Signature) AttributeNames() []string {
	out := make([]string, len(s.Attributes))
	for i, a := range s.Attributes {
		out[i] = a.Name
	}
	return out
}

// String renders the signature in the paper's notation.
func (s Signature) String() string {
	return fmt.Sprintf("%s(%s)", s.Wrapper, strings.Join(s.AttributeNames(), ", "))
}

// Doc is one flattened record: attribute name -> scalar value.
type Doc map[string]relalg.Value

// FlattenJSON parses a JSON payload into flat documents. Accepted
// shapes: a single object, an array of objects, or an object containing
// exactly one array of objects (the common {"data": [...]} envelope).
// Nested objects are flattened with '_'; arrays nested inside records
// are rejected as 1NF violations.
func FlattenJSON(data []byte) ([]Doc, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	var raw any
	if err := dec.Decode(&raw); err != nil {
		return nil, fmt.Errorf("schema: invalid JSON: %w", err)
	}
	switch v := raw.(type) {
	case []any:
		return jsonArrayToDocs(v)
	case map[string]any:
		// Envelope detection: exactly one key whose value is an array.
		if arr, ok := singleArrayEnvelope(v); ok {
			return jsonArrayToDocs(arr)
		}
		doc, err := flattenJSONObject("", v)
		if err != nil {
			return nil, err
		}
		return []Doc{doc}, nil
	default:
		return nil, fmt.Errorf("schema: top-level JSON must be an object or array, got %T", raw)
	}
}

func singleArrayEnvelope(obj map[string]any) ([]any, bool) {
	var arr []any
	n := 0
	for _, v := range obj {
		if a, ok := v.([]any); ok {
			arr = a
			n++
		}
	}
	if n != 1 || len(obj) > 2 { // tolerate one metadata sibling (paging etc.)
		return nil, false
	}
	// Only arrays of records are envelopes; an array of scalars is a
	// nested field and must be reported as a 1NF violation downstream.
	if len(arr) > 0 {
		if _, ok := arr[0].(map[string]any); !ok {
			return nil, false
		}
	}
	return arr, true
}

func jsonArrayToDocs(arr []any) ([]Doc, error) {
	docs := make([]Doc, 0, len(arr))
	for i, el := range arr {
		obj, ok := el.(map[string]any)
		if !ok {
			return nil, fmt.Errorf("schema: array element %d is %T, want object", i, el)
		}
		doc, err := flattenJSONObject("", obj)
		if err != nil {
			return nil, fmt.Errorf("schema: element %d: %w", i, err)
		}
		docs = append(docs, doc)
	}
	return docs, nil
}

func flattenJSONObject(prefix string, obj map[string]any) (Doc, error) {
	doc := Doc{}
	for k, v := range obj {
		name := k
		if prefix != "" {
			name = prefix + "_" + k
		}
		switch vv := v.(type) {
		case map[string]any:
			sub, err := flattenJSONObject(name, vv)
			if err != nil {
				return nil, err
			}
			for sk, sv := range sub {
				doc[sk] = sv
			}
		case []any:
			return nil, fmt.Errorf("nested array at %q violates the 1NF wrapper assumption", name)
		case nil:
			doc[name] = relalg.Null()
		case json.Number:
			doc[name] = numberValue(vv)
		case string:
			doc[name] = relalg.String(vv)
		case bool:
			doc[name] = relalg.Bool(vv)
		default:
			return nil, fmt.Errorf("unsupported JSON value %T at %q", v, name)
		}
	}
	return doc, nil
}

func numberValue(n json.Number) relalg.Value {
	if i, err := n.Int64(); err == nil && !strings.ContainsAny(n.String(), ".eE") {
		return relalg.Int(i)
	}
	f, err := n.Float64()
	if err != nil {
		return relalg.String(n.String())
	}
	return relalg.Float(f)
}

// FlattenXML parses an XML payload into flat documents. The expected
// shape is a root element containing repeated record elements (e.g.
// <teams><team>...</team><team>...</team></teams>), or a single record
// element (<team>...</team>). Leaf element text becomes values with
// inferred types; nested elements flatten with '_'; XML attributes
// become fields named after the attribute.
func FlattenXML(data []byte) ([]Doc, error) {
	root, err := parseXMLTree(data)
	if err != nil {
		return nil, err
	}
	if root == nil {
		return nil, fmt.Errorf("schema: empty XML document")
	}
	// If the root has repeated child elements of the same name, treat
	// each child as a record. Otherwise the root itself is one record.
	if recs := recordChildren(root); recs != nil {
		docs := make([]Doc, 0, len(recs))
		for i, rec := range recs {
			doc := Doc{}
			if err := flattenXMLNode(rec, "", doc); err != nil {
				return nil, fmt.Errorf("schema: record %d: %w", i, err)
			}
			docs = append(docs, doc)
		}
		return docs, nil
	}
	doc := Doc{}
	if err := flattenXMLNode(root, "", doc); err != nil {
		return nil, err
	}
	return []Doc{doc}, nil
}

// xmlNode is a minimal DOM for flattening.
type xmlNode struct {
	name     string
	attrs    []xml.Attr
	children []*xmlNode
	text     string
}

func parseXMLTree(data []byte) (*xmlNode, error) {
	dec := xml.NewDecoder(bytes.NewReader(data))
	var stack []*xmlNode
	var root *xmlNode
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("schema: invalid XML: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			n := &xmlNode{name: t.Name.Local, attrs: t.Attr}
			if len(stack) == 0 {
				if root != nil {
					return nil, fmt.Errorf("schema: multiple XML roots")
				}
				root = n
			} else {
				parent := stack[len(stack)-1]
				parent.children = append(parent.children, n)
			}
			stack = append(stack, n)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("schema: unbalanced XML")
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			if len(stack) > 0 {
				stack[len(stack)-1].text += string(t)
			}
		}
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("schema: unterminated XML element <%s>", stack[len(stack)-1].name)
	}
	return root, nil
}

// recordChildren returns the root's children when they form a homogeneous
// repeated-record list (all element children sharing one name, length>=1
// and root has no scalar text of its own). A single child also counts
// when the root carries no attributes, covering one-record pages.
func recordChildren(root *xmlNode) []*xmlNode {
	if len(root.children) == 0 {
		return nil
	}
	name := root.children[0].name
	for _, c := range root.children {
		if c.name != name {
			return nil
		}
	}
	// Records are containers: they must have children of their own.
	for _, c := range root.children {
		if len(c.children) == 0 {
			return nil
		}
	}
	return root.children
}

func flattenXMLNode(n *xmlNode, prefix string, doc Doc) error {
	for _, a := range n.attrs {
		name := a.Name.Local
		if prefix != "" {
			name = prefix + "_" + name
		}
		doc[name] = relalg.Infer(a.Value)
	}
	seen := map[string]int{}
	for _, c := range n.children {
		seen[c.name]++
	}
	for name, count := range seen {
		if count > 1 {
			full := name
			if prefix != "" {
				full = prefix + "_" + name
			}
			return fmt.Errorf("repeated element %q violates the 1NF wrapper assumption", full)
		}
	}
	for _, c := range n.children {
		name := c.name
		if prefix != "" {
			name = prefix + "_" + name
		}
		if len(c.children) > 0 {
			if err := flattenXMLNode(c, name, doc); err != nil {
				return err
			}
			continue
		}
		doc[name] = relalg.Infer(strings.TrimSpace(c.text))
		// Attributes of leaf elements are still fields.
		for _, a := range c.attrs {
			doc[name+"_"+a.Name.Local] = relalg.Infer(a.Value)
		}
	}
	return nil
}

// FlattenCSV parses CSV with a header row into flat documents with
// inferred types.
func FlattenCSV(data []byte) ([]Doc, error) {
	r := csv.NewReader(bytes.NewReader(data))
	r.TrimLeadingSpace = true
	records, err := r.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("schema: invalid CSV: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("schema: empty CSV (missing header)")
	}
	header := records[0]
	docs := make([]Doc, 0, len(records)-1)
	for _, rec := range records[1:] {
		doc := Doc{}
		for i, cell := range rec {
			if i < len(header) {
				doc[header[i]] = relalg.Infer(cell)
			}
		}
		docs = append(docs, doc)
	}
	return docs, nil
}

// Infer computes the attribute list of a document set: the union of all
// keys in stable (sorted) order with widened types. Missing keys do not
// affect an attribute's type; conflicting types widen (int+float ->
// float, anything else -> string).
func Infer(docs []Doc) []Attribute {
	types := map[string]relalg.Type{}
	for _, d := range docs {
		for k, v := range d {
			cur, seen := types[k]
			if !seen {
				types[k] = v.T
				continue
			}
			types[k] = widen(cur, v.T)
		}
	}
	names := make([]string, 0, len(types))
	for k := range types {
		names = append(names, k)
	}
	sort.Strings(names)
	attrs := make([]Attribute, len(names))
	for i, n := range names {
		attrs[i] = Attribute{Name: n, Type: types[n]}
	}
	return attrs
}

func widen(a, b relalg.Type) relalg.Type {
	if a == b {
		return a
	}
	if a == relalg.TypeNull {
		return b
	}
	if b == relalg.TypeNull {
		return a
	}
	num := func(t relalg.Type) bool { return t == relalg.TypeInt || t == relalg.TypeFloat }
	if num(a) && num(b) {
		return relalg.TypeFloat
	}
	return relalg.TypeString
}

// ToRelation converts documents to a relation over the given attributes.
// Missing fields become NULL.
func ToRelation(docs []Doc, attrs []Attribute) *relalg.Relation {
	rel := relalg.NewRelation(attributeNames(attrs)...)
	for _, d := range docs {
		row := make(relalg.Row, len(attrs))
		for i, a := range attrs {
			if v, ok := d[a.Name]; ok {
				row[i] = v
			} else {
				row[i] = relalg.Null()
			}
		}
		rel.Rows = append(rel.Rows, row)
	}
	return rel
}

func attributeNames(attrs []Attribute) []string {
	out := make([]string, len(attrs))
	for i, a := range attrs {
		out[i] = a.Name
	}
	return out
}

// Format enumerates supported payload formats.
type Format string

// Supported payload formats.
const (
	FormatJSON Format = "json"
	FormatXML  Format = "xml"
	FormatCSV  Format = "csv"
)

// Flatten dispatches on format.
func Flatten(format Format, data []byte) ([]Doc, error) {
	switch format {
	case FormatJSON:
		return FlattenJSON(data)
	case FormatXML:
		return FlattenXML(data)
	case FormatCSV:
		return FlattenCSV(data)
	default:
		return nil, fmt.Errorf("schema: unsupported format %q", format)
	}
}

// DetectFormat guesses the payload format from its leading bytes and an
// optional Content-Type hint.
func DetectFormat(contentType string, data []byte) Format {
	ct := strings.ToLower(contentType)
	switch {
	case strings.Contains(ct, "json"):
		return FormatJSON
	case strings.Contains(ct, "xml"):
		return FormatXML
	case strings.Contains(ct, "csv"):
		return FormatCSV
	}
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	switch {
	case len(trimmed) > 0 && (trimmed[0] == '{' || trimmed[0] == '['):
		return FormatJSON
	case len(trimmed) > 0 && trimmed[0] == '<':
		return FormatXML
	default:
		return FormatCSV
	}
}

// ExtractSignature is the end-to-end helper used at wrapper registration
// time (paper §2.2): flatten a sample payload and infer the signature.
func ExtractSignature(wrapper string, format Format, sample []byte) (Signature, []Doc, error) {
	docs, err := Flatten(format, sample)
	if err != nil {
		return Signature{}, nil, err
	}
	return Signature{Wrapper: wrapper, Attributes: Infer(docs)}, docs, nil
}
