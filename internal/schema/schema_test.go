package schema

import (
	"strings"
	"testing"
	"testing/quick"

	"mdm/internal/relalg"
)

// Figure 2 payloads from the paper.
const playersJSON = `{
  "id": 6176,
  "name": "Lionel Messi",
  "height": 170.18,
  "weight": 159,
  "rating": 94,
  "preferred_foot": "left",
  "team_id": 25
}`

const teamXML = `<team>
  <id>25</id>
  <name>FC Barcelona</name>
  <shortName>FCB</shortName>
</team>`

func TestFlattenJSONSingleObject(t *testing.T) {
	docs, err := FlattenJSON([]byte(playersJSON))
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 1 {
		t.Fatalf("docs = %d", len(docs))
	}
	d := docs[0]
	if d["id"] != relalg.Int(6176) {
		t.Errorf("id = %#v", d["id"])
	}
	if d["height"] != relalg.Float(170.18) {
		t.Errorf("height = %#v", d["height"])
	}
	if d["name"] != relalg.String("Lionel Messi") {
		t.Errorf("name = %#v", d["name"])
	}
}

func TestFlattenJSONArray(t *testing.T) {
	docs, err := FlattenJSON([]byte(`[{"a":1},{"a":2,"b":"x"}]`))
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 2 {
		t.Fatalf("docs = %d", len(docs))
	}
	if docs[1]["b"] != relalg.String("x") {
		t.Errorf("docs[1] = %v", docs[1])
	}
}

func TestFlattenJSONEnvelope(t *testing.T) {
	docs, err := FlattenJSON([]byte(`{"data":[{"a":1},{"a":2}],"paging":"next"}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 2 {
		t.Fatalf("envelope docs = %d", len(docs))
	}
}

func TestFlattenJSONNestedObject(t *testing.T) {
	docs, err := FlattenJSON([]byte(`{"id":1,"team":{"id":25,"name":"FCB"}}`))
	if err != nil {
		t.Fatal(err)
	}
	d := docs[0]
	if d["team_id"] != relalg.Int(25) || d["team_name"] != relalg.String("FCB") {
		t.Errorf("nested flattening = %v", d)
	}
}

func TestFlattenJSONDeepNesting(t *testing.T) {
	docs, err := FlattenJSON([]byte(`{"a":{"b":{"c":{"d":7}}}}`))
	if err != nil {
		t.Fatal(err)
	}
	if docs[0]["a_b_c_d"] != relalg.Int(7) {
		t.Errorf("deep = %v", docs[0])
	}
}

func TestFlattenJSONNullAndBool(t *testing.T) {
	docs, err := FlattenJSON([]byte(`{"a":null,"b":true}`))
	if err != nil {
		t.Fatal(err)
	}
	if !docs[0]["a"].IsNull() || docs[0]["b"] != relalg.Bool(true) {
		t.Errorf("null/bool = %v", docs[0])
	}
}

func TestFlattenJSONErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"nested array", `{"a":[1,2,3]}`},
		{"scalar top", `42`},
		{"string top", `"x"`},
		{"array of scalars", `[1,2]`},
		{"invalid json", `{"a":`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := FlattenJSON([]byte(c.src)); err == nil {
				t.Errorf("no error for %q", c.src)
			}
		})
	}
	// 1NF violation must mention it.
	_, err := FlattenJSON([]byte(`{"a":[1]}`))
	if err == nil || !strings.Contains(err.Error(), "1NF") {
		t.Errorf("nested array error = %v", err)
	}
}

func TestFlattenXMLSingleRecord(t *testing.T) {
	docs, err := FlattenXML([]byte(teamXML))
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 1 {
		t.Fatalf("docs = %d", len(docs))
	}
	d := docs[0]
	if d["id"] != relalg.Int(25) {
		t.Errorf("id = %#v", d["id"])
	}
	if d["name"] != relalg.String("FC Barcelona") || d["shortName"] != relalg.String("FCB") {
		t.Errorf("doc = %v", d)
	}
}

func TestFlattenXMLRecordList(t *testing.T) {
	src := `<teams>
  <team><id>25</id><name>FC Barcelona</name></team>
  <team><id>27</id><name>Bayern Munich</name></team>
</teams>`
	docs, err := FlattenXML([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 2 {
		t.Fatalf("docs = %d", len(docs))
	}
	if docs[1]["name"] != relalg.String("Bayern Munich") {
		t.Errorf("docs[1] = %v", docs[1])
	}
}

func TestFlattenXMLNestedAndAttributes(t *testing.T) {
	src := `<players>
  <player code="A1"><id>1</id><team><id>25</id></team></player>
  <player code="B2"><id>2</id><team><id>31</id></team></player>
</players>`
	docs, err := FlattenXML([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if docs[0]["code"] != relalg.String("A1") {
		t.Errorf("attr = %v", docs[0])
	}
	if docs[0]["team_id"] != relalg.Int(25) {
		t.Errorf("nested = %v", docs[0])
	}
}

func TestFlattenXMLErrors(t *testing.T) {
	if _, err := FlattenXML([]byte(`<a><b>1</b><b>2</b></a>`)); err == nil {
		// repeated scalar children of a record-less root: this parses as
		// records only if they have children; here they are leaves, so
		// the root is one record with repeated b = 1NF violation.
		t.Error("repeated leaf elements should be a 1NF violation")
	}
	if _, err := FlattenXML([]byte(`<a><b>`)); err == nil {
		t.Error("unterminated XML accepted")
	}
	if _, err := FlattenXML([]byte(``)); err == nil {
		t.Error("empty XML accepted")
	}
}

func TestFlattenCSV(t *testing.T) {
	src := "id,name,height\n1,Messi,170.18\n2,Zlatan,195\n"
	docs, err := FlattenCSV([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 2 {
		t.Fatalf("docs = %d", len(docs))
	}
	if docs[0]["height"] != relalg.Float(170.18) || docs[1]["height"] != relalg.Int(195) {
		t.Errorf("types = %v / %v", docs[0], docs[1])
	}
	if _, err := FlattenCSV([]byte("")); err == nil {
		t.Error("empty CSV accepted")
	}
	if _, err := FlattenCSV([]byte("a,b\n1,2,3,4\n\"")); err == nil {
		t.Error("ragged+invalid CSV accepted")
	}
}

func TestInferTypesAndWidening(t *testing.T) {
	docs := []Doc{
		{"a": relalg.Int(1), "b": relalg.String("x"), "c": relalg.Int(1)},
		{"a": relalg.Float(2.5), "b": relalg.String("y"), "d": relalg.Bool(true)},
		{"a": relalg.Int(3), "c": relalg.String("oops")},
	}
	attrs := Infer(docs)
	byName := map[string]relalg.Type{}
	for _, a := range attrs {
		byName[a.Name] = a.Type
	}
	if byName["a"] != relalg.TypeFloat {
		t.Errorf("a widened to %v, want float", byName["a"])
	}
	if byName["b"] != relalg.TypeString || byName["d"] != relalg.TypeBool {
		t.Errorf("types = %v", byName)
	}
	if byName["c"] != relalg.TypeString {
		t.Errorf("int+string should widen to string, got %v", byName["c"])
	}
	// Sorted order.
	for i := 1; i < len(attrs); i++ {
		if attrs[i-1].Name >= attrs[i].Name {
			t.Errorf("attributes not sorted: %v", attrs)
		}
	}
}

func TestInferNullWidening(t *testing.T) {
	docs := []Doc{
		{"a": relalg.Null()},
		{"a": relalg.Int(5)},
	}
	attrs := Infer(docs)
	if attrs[0].Type != relalg.TypeInt {
		t.Errorf("null+int = %v, want int", attrs[0].Type)
	}
}

func TestToRelationMissingBecomesNull(t *testing.T) {
	docs := []Doc{
		{"a": relalg.Int(1), "b": relalg.String("x")},
		{"a": relalg.Int(2)},
	}
	attrs := Infer(docs)
	rel := ToRelation(docs, attrs)
	if rel.Len() != 2 || len(rel.Cols) != 2 {
		t.Fatalf("rel = %dx%d", rel.Len(), len(rel.Cols))
	}
	bi := rel.ColIndex("b")
	if !rel.Rows[1][bi].IsNull() {
		t.Errorf("missing field = %#v, want NULL", rel.Rows[1][bi])
	}
}

func TestExtractSignatureEndToEnd(t *testing.T) {
	sig, docs, err := ExtractSignature("w1", FormatJSON, []byte(playersJSON))
	if err != nil {
		t.Fatal(err)
	}
	if sig.Wrapper != "w1" || len(sig.Attributes) != 7 {
		t.Fatalf("sig = %s", sig)
	}
	str := sig.String()
	if !strings.HasPrefix(str, "w1(") || !strings.Contains(str, "preferred_foot") {
		t.Errorf("signature rendering = %s", str)
	}
	if len(docs) != 1 {
		t.Errorf("docs = %d", len(docs))
	}
}

func TestDetectFormat(t *testing.T) {
	cases := []struct {
		ct, body string
		want     Format
	}{
		{"application/json", `{}`, FormatJSON},
		{"text/xml", `<a/>`, FormatXML},
		{"text/csv", "a,b", FormatCSV},
		{"", `  {"a":1}`, FormatJSON},
		{"", `[1]`, FormatJSON},
		{"", `<team/>`, FormatXML},
		{"", "a,b\n1,2", FormatCSV},
	}
	for _, c := range cases {
		if got := DetectFormat(c.ct, []byte(c.body)); got != c.want {
			t.Errorf("DetectFormat(%q, %q) = %v, want %v", c.ct, c.body, got, c.want)
		}
	}
}

func TestFlattenDispatchAndUnknownFormat(t *testing.T) {
	if _, err := Flatten(FormatJSON, []byte(`{"a":1}`)); err != nil {
		t.Error(err)
	}
	if _, err := Flatten(Format("yaml"), []byte(`a: 1`)); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestPropInferToRelationArity(t *testing.T) {
	// For any set of docs built from string keys/int values, ToRelation
	// rows always match the inferred attribute count.
	f := func(keys []string, vals []int64) bool {
		doc := Doc{}
		for i, k := range keys {
			if k == "" {
				continue
			}
			v := int64(0)
			if i < len(vals) {
				v = vals[i]
			}
			doc[k] = relalg.Int(v)
		}
		docs := []Doc{doc}
		attrs := Infer(docs)
		rel := ToRelation(docs, attrs)
		if len(rel.Cols) != len(attrs) {
			return false
		}
		for _, row := range rel.Rows {
			if len(row) != len(attrs) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
