package sparql

import (
	"strconv"

	"mdm/internal/rdf"
)

// This file implements GROUP BY / aggregate evaluation as a hash
// barrier in the cursor pipeline: groupByIter drains its input, groups
// rows by the packed IDs of the GROUP BY slots (appendRowKey — the
// dictionary is a bijection, so ID-byte equality is term equality),
// folds each row into per-group aggregate states, and then streams one
// output row per group in first-seen order. Output rows bind only the
// group slots plus the aggregate aliases (every other slot is unbound:
// non-grouped WHERE variables are not well-defined per group), with
// aggregate results rendered to terms and interned into the shared
// dictionary. HAVING runs as an ordinary filterIter over the grouped
// rows, so aliases are visible to it through the regular slot layout.
//
// Semantics (mirrored by the oracle's refAggregate in oracle_test.go):
//
//   - COUNT(*) counts all rows of the group; COUNT(?x) only rows where
//     ?x is bound; DISTINCT deduplicates by term identity first.
//   - SUM over an empty group (or empty after unbound-skipping) is the
//     integer 0; integer-only inputs stay xsd:integer, any other
//     numeric input promotes to xsd:double, and a non-numeric input
//     makes the sum an error — the alias is left unbound.
//   - MIN/MAX compare numerically when both sides parse as numbers
//     (compareOrder), with rdf.Compare breaking exact numeric ties so
//     the winner is independent of row order; over an empty group the
//     alias is unbound.
//
// When the query has aggregates but no GROUP BY, every row falls into
// one implicit group, which emits exactly one output row even when the
// input is empty (COUNT = 0, SUM = 0, MIN/MAX unbound). GROUP BY with
// an empty input emits no rows.

// mutation injects one deliberate operator bug into the engine; the
// mutation-check tests in spec_test.go flip these to prove the oracle
// equivalence harness catches each class of regression, then restore
// mutNone. Only tests may set it, before evaluation starts.
var mutation = mutNone

const (
	mutNone int32 = iota
	// mutPathDupEmit re-emits already-visited nodes from the path
	// fixpoint (a dropped frontier/emission dedup: multiple routes to
	// one node yield duplicate rows).
	mutPathDupEmit
	// mutGroupKeyNarrow truncates group keys to each ID's low byte, so
	// distinct group values can collide and merge.
	mutGroupKeyNarrow
	// mutHavingPreAgg applies HAVING before aggregation instead of
	// after, the classic filter-placement bug.
	mutHavingPreAgg
)

// aggSpec is one compiled aggregate: its function, the input slot
// (-1 for COUNT(*)) and the output alias slot.
type aggSpec struct {
	fn       AggFunc
	distinct bool
	argSlot  int
	outSlot  int
}

// aggregateChain wraps src with the query's grouping stage: the
// groupByIter barrier plus the HAVING filter over its output.
func (e *evaluator) aggregateChain(q *Query, src rowIter) rowIter {
	keySlots := make([]int, len(q.GroupBy))
	for i, v := range q.GroupBy {
		keySlots[i] = e.lay.index[v]
	}
	specs := make([]aggSpec, len(q.Aggregates))
	for i, a := range q.Aggregates {
		s := aggSpec{fn: a.Func, distinct: a.Distinct, argSlot: -1, outSlot: e.lay.index[a.As]}
		if a.Var != "" {
			s.argSlot = e.lay.index[a.Var]
		}
		specs[i] = s
	}
	if mutation == mutHavingPreAgg && len(q.Having) > 0 {
		src = &filterIter{e: e, src: src, exprs: q.Having}
		return &groupByIter{e: e, src: src, keySlots: keySlots, specs: specs, implicit: len(q.GroupBy) == 0}
	}
	var it rowIter = &groupByIter{e: e, src: src, keySlots: keySlots, specs: specs, implicit: len(q.GroupBy) == 0}
	if len(q.Having) > 0 {
		it = &filterIter{e: e, src: it, exprs: q.Having}
	}
	return it
}

// groupByIter is the grouping barrier.
type groupByIter struct {
	e        *evaluator
	src      rowIter
	keySlots []int
	specs    []aggSpec
	implicit bool // no GROUP BY: one group, emitted even on empty input

	filled bool
	rows   [][]rdf.TermID
	pos    int
}

type aggGroup struct {
	rep []rdf.TermID // arena copy of the group's first row (key slots)
	st  []aggState
}

func (it *groupByIter) next() []rdf.TermID {
	if !it.filled {
		it.filled = true
		it.fill()
	}
	if it.e.err != nil || it.pos >= len(it.rows) {
		return nil
	}
	r := it.rows[it.pos]
	it.pos++
	return r
}

func (it *groupByIter) fill() {
	groups := make(map[string]*aggGroup)
	var order []*aggGroup
	var key []byte
	for {
		row := it.src.next()
		if row == nil {
			break
		}
		key = it.appendKey(key[:0], row)
		grp, ok := groups[string(key)]
		if !ok {
			grp = &aggGroup{rep: it.e.extend(row), st: make([]aggState, len(it.specs))}
			groups[string(key)] = grp
			order = append(order, grp)
		}
		for si := range it.specs {
			grp.st[si].update(it.e, it.specs[si], row)
		}
	}
	if it.e.err != nil {
		return
	}
	if len(order) == 0 && it.implicit {
		order = append(order, &aggGroup{st: make([]aggState, len(it.specs))})
	}
	for _, grp := range order {
		out := it.e.newRow()
		for i := range out {
			out[i] = unboundID
		}
		if grp.rep != nil {
			for _, s := range it.keySlots {
				out[s] = grp.rep[s]
			}
		}
		for si := range it.specs {
			if t, ok := grp.st[si].result(it.specs[si]); ok {
				out[it.specs[si].outSlot] = it.e.dict.Intern(t)
			}
		}
		it.rows = append(it.rows, out)
	}
}

func (it *groupByIter) appendKey(key []byte, row []rdf.TermID) []byte {
	if mutation == mutGroupKeyNarrow {
		for _, s := range it.keySlots {
			key = append(key, byte(row[s]))
		}
		return key
	}
	return appendRowKey(key, row, it.keySlots)
}

// aggState folds one aggregate over one group's rows.
type aggState struct {
	n    int64
	sum  sumAcc
	best rdf.Term // MIN/MAX winner so far
	has  bool
	seen map[rdf.TermID]struct{} // DISTINCT dedup
}

func (st *aggState) update(e *evaluator, sp aggSpec, row []rdf.TermID) {
	if sp.argSlot < 0 {
		st.n++ // COUNT(*): every row counts
		return
	}
	id := row[sp.argSlot]
	if id == unboundID {
		return
	}
	if sp.distinct {
		if st.seen == nil {
			st.seen = make(map[rdf.TermID]struct{})
		}
		if _, dup := st.seen[id]; dup {
			return
		}
		st.seen[id] = struct{}{}
	}
	switch sp.fn {
	case AggCount:
		st.n++
	case AggSum:
		st.sum.add(e.term(id))
	case AggMin:
		t := e.term(id)
		if !st.has {
			st.best, st.has = t, true
		} else {
			st.best = minTerm(st.best, t)
		}
	case AggMax:
		t := e.term(id)
		if !st.has {
			st.best, st.has = t, true
		} else {
			st.best = maxTerm(st.best, t)
		}
	}
}

// result renders the aggregate's value; ok is false when the alias
// stays unbound (MIN/MAX of nothing, a poisoned SUM).
func (st *aggState) result(sp aggSpec) (rdf.Term, bool) {
	switch sp.fn {
	case AggCount:
		return rdf.IntLit(st.n), true
	case AggSum:
		return st.sum.term()
	default: // AggMin, AggMax
		if !st.has {
			return rdf.Term{}, false
		}
		return st.best, true
	}
}

// --- shared term-level aggregate arithmetic ---
//
// The engine (above, over decoded terms) and the test oracle
// (oracle_test.go, over Binding maps) both fold through these helpers,
// so result *formatting* agrees by construction while the grouping
// logic stays independently implemented.

// sumAcc accumulates SUM. The zero value is the empty sum (integer 0).
type sumAcc struct {
	f      float64
	i      int64
	wide   bool // a non-integer numeric input promoted the result
	poison bool // a non-numeric input made the sum an error
}

func (a *sumAcc) add(t rdf.Term) {
	f, err := t.Float()
	if err != nil {
		a.poison = true
		return
	}
	a.f += f
	if !a.wide && t.Datatype == rdf.XSDInteger {
		if i, err := strconv.ParseInt(t.Value, 10, 64); err == nil {
			a.i += i
			return
		}
	}
	a.wide = true
}

func (a *sumAcc) term() (rdf.Term, bool) {
	switch {
	case a.poison:
		return rdf.Term{}, false
	case a.wide:
		return rdf.FloatLit(a.f), true
	default:
		return rdf.IntLit(a.i), true
	}
}

// minTerm returns the smaller term under the aggregate order: numeric
// when both sides parse as numbers, else rdf.Compare; exact numeric
// ties ("01" vs "1") are broken by rdf.Compare so the result does not
// depend on the order rows were folded in.
func minTerm(a, b rdf.Term) rdf.Term {
	c := compareOrder(a, b)
	if c == 0 {
		c = rdf.Compare(a, b)
	}
	if c <= 0 {
		return a
	}
	return b
}

// maxTerm is minTerm's dual.
func maxTerm(a, b rdf.Term) rdf.Term {
	c := compareOrder(a, b)
	if c == 0 {
		c = rdf.Compare(a, b)
	}
	if c >= 0 {
		return a
	}
	return b
}
