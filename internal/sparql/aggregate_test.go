package sparql

import (
	"fmt"
	"testing"

	"mdm/internal/rdf"
)

func aggDataset() *rdf.Dataset {
	ds := rdf.NewDataset()
	ex := func(s string) rdf.Term { return rdf.IRI("http://ex.org/" + s) }
	// Team a: 1, 2, 2 (one duplicate value); team b: 10; c has no score.
	ds.Default().MustAdd(rdf.T(ex("m1"), ex("team"), ex("a")))
	ds.Default().MustAdd(rdf.T(ex("m1"), ex("score"), rdf.IntLit(1)))
	ds.Default().MustAdd(rdf.T(ex("m2"), ex("team"), ex("a")))
	ds.Default().MustAdd(rdf.T(ex("m2"), ex("score"), rdf.IntLit(2)))
	ds.Default().MustAdd(rdf.T(ex("m3"), ex("team"), ex("a")))
	ds.Default().MustAdd(rdf.T(ex("m3"), ex("score"), rdf.IntLit(2)))
	ds.Default().MustAdd(rdf.T(ex("m4"), ex("team"), ex("b")))
	ds.Default().MustAdd(rdf.T(ex("m4"), ex("score"), rdf.IntLit(10)))
	ds.Default().MustAdd(rdf.T(ex("m5"), ex("team"), ex("c")))
	return ds
}

// TestAggregateDeterministic pins concrete aggregate values for the
// semantics corners documented in aggregate.go; each case also runs the
// full oracle/strategy/cursor stack via checkEquivalence.
func TestAggregateDeterministic(t *testing.T) {
	ds := aggDataset()
	prefix := `PREFIX ex: <http://ex.org/> `
	cases := []struct {
		name string
		src  string
		want map[string][]string // var -> expected values in canonical row order
	}{
		{
			"per-group count star vs var",
			`SELECT ?t (COUNT(*) AS ?n) (COUNT(?s) AS ?ns) WHERE { ?m ex:team ?t OPTIONAL { ?m ex:score ?s } } GROUP BY ?t`,
			// COUNT(*) counts c's scoreless row; COUNT(?s) does not.
			map[string][]string{"n": {"3", "1", "1"}, "ns": {"3", "1", "0"}},
		},
		{
			"distinct",
			`SELECT ?t (COUNT(DISTINCT ?s) AS ?n) WHERE { ?m ex:team ?t ; ex:score ?s } GROUP BY ?t`,
			map[string][]string{"n": {"2", "1"}}, // a: {1,2}, b: {10}
		},
		{
			"sum min max",
			`SELECT ?t (SUM(?s) AS ?sum) (MIN(?s) AS ?lo) (MAX(?s) AS ?hi) WHERE { ?m ex:team ?t ; ex:score ?s } GROUP BY ?t`,
			map[string][]string{"sum": {"5", "10"}, "lo": {"1", "10"}, "hi": {"2", "10"}},
		},
		{
			"implicit group",
			`SELECT (COUNT(*) AS ?n) (SUM(?s) AS ?sum) WHERE { ?m ex:score ?s }`,
			map[string][]string{"n": {"4"}, "sum": {"15"}},
		},
		{
			"implicit group of empty input",
			`SELECT (COUNT(*) AS ?n) (SUM(?s) AS ?sum) (MIN(?s) AS ?lo) WHERE { ?m ex:nope ?s }`,
			// One row: COUNT 0, SUM 0 (integer), MIN unbound.
			map[string][]string{"n": {"0"}, "sum": {"0"}, "lo": {""}},
		},
		{
			"group by of empty input",
			`SELECT ?t (COUNT(*) AS ?n) WHERE { ?m ex:nope ?t } GROUP BY ?t`,
			map[string][]string{"n": {}},
		},
		{
			"having",
			`SELECT ?t (COUNT(*) AS ?n) WHERE { ?m ex:team ?t } GROUP BY ?t HAVING (?n > 1)`,
			map[string][]string{"n": {"3"}},
		},
		{
			"group key never bound",
			`SELECT ?z (COUNT(*) AS ?n) WHERE { ?m ex:team ?t } GROUP BY ?z`,
			// All rows share the single all-unbound group key.
			map[string][]string{"z": {""}, "n": {"5"}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			q := MustParse(prefix + tc.src)
			res, err := Eval(ds, q)
			if err != nil {
				t.Fatal(err)
			}
			for v, want := range tc.want {
				if res.Len() != len(want) {
					t.Fatalf("rows = %d, want %d\n%s", res.Len(), len(want), res.Table())
				}
				for i, w := range want {
					got, ok := res.Term(i, v)
					if w == "" {
						if ok {
							t.Errorf("row %d ?%s = %v, want unbound", i, v, got)
						}
						continue
					}
					if !ok || got.Value != w {
						t.Errorf("row %d ?%s = %v (bound=%v), want %s\n%s", i, v, got, ok, w, res.Table())
					}
				}
			}
			checkEquivalence(t, ds, q, -1)
		})
	}
}

// TestAggregateNumericTower pins SUM's type behavior: integer inputs
// stay xsd:integer, any double widens the result, and a non-numeric
// input poisons the sum into an unbound alias.
func TestAggregateNumericTower(t *testing.T) {
	ex := func(s string) rdf.Term { return rdf.IRI("http://ex.org/" + s) }
	build := func(vals ...rdf.Term) *rdf.Dataset {
		ds := rdf.NewDataset()
		for i, v := range vals {
			ds.Default().MustAdd(rdf.T(ex(fmt.Sprintf("s%d", i)), ex("p"), v))
		}
		return ds
	}
	q := MustParse(`PREFIX ex: <http://ex.org/> SELECT (SUM(?v) AS ?sum) WHERE { ?s ex:p ?v }`)

	cases := []struct {
		name     string
		vals     []rdf.Term
		want     string
		datatype string
		unbound  bool
	}{
		{"integers stay integer", []rdf.Term{rdf.IntLit(1), rdf.IntLit(2)}, "3", rdf.XSDInteger, false},
		{"double widens", []rdf.Term{rdf.IntLit(1), rdf.FloatLit(2.5)}, "3.5", rdf.XSDDouble, false},
		{"plain literal poisons", []rdf.Term{rdf.IntLit(1), rdf.Lit("x")}, "", "", true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ds := build(tc.vals...)
			res, err := Eval(ds, q)
			if err != nil {
				t.Fatal(err)
			}
			if res.Len() != 1 {
				t.Fatalf("rows = %d, want 1", res.Len())
			}
			got, ok := res.Term(0, "sum")
			if tc.unbound {
				if ok {
					t.Fatalf("sum = %v, want unbound", got)
				}
			} else if !ok || got.Value != tc.want || got.Datatype != tc.datatype {
				t.Fatalf("sum = %v (bound=%v), want %s^^%s", got, ok, tc.want, tc.datatype)
			}
			checkEquivalence(t, ds, q, -1)
		})
	}
}

// TestAggregateMinMaxTieOrderIndependence pins that MIN/MAX ties between
// numerically-equal but distinct terms resolve identically regardless of
// insertion order (the fold tie-breaks with rdf.Compare).
func TestAggregateMinMaxTieOrderIndependence(t *testing.T) {
	ex := func(s string) rdf.Term { return rdf.IRI("http://ex.org/" + s) }
	a := rdf.TypedLit("01", rdf.XSDInteger)
	b := rdf.TypedLit("1", rdf.XSDInteger)
	q := MustParse(`PREFIX ex: <http://ex.org/> SELECT (MIN(?v) AS ?lo) (MAX(?v) AS ?hi) WHERE { ?s ex:p ?v }`)
	var results []rdf.Term
	for _, order := range [][]rdf.Term{{a, b}, {b, a}} {
		ds := rdf.NewDataset()
		for i, v := range order {
			ds.Default().MustAdd(rdf.T(ex(fmt.Sprintf("s%d", i)), ex("p"), v))
		}
		res, err := Eval(ds, q)
		if err != nil {
			t.Fatal(err)
		}
		lo, _ := res.Term(0, "lo")
		hi, _ := res.Term(0, "hi")
		results = append(results, lo, hi)
		checkEquivalence(t, ds, q, -1)
	}
	if results[0] != results[2] || results[1] != results[3] {
		t.Fatalf("tie-break depends on insertion order: %v vs %v", results[:2], results[2:])
	}
}

// TestAggregateOverPath covers the tentpole end-to-end: grouping over
// rows a closure produced.
func TestAggregateOverPath(t *testing.T) {
	// Two trees: root a over 3 nodes, root b over 1.
	ds := edgeGraph([][2]string{{"a", "x"}, {"x", "y"}, {"a", "z"}, {"b", "w"}})
	q := MustParse(`PREFIX ex: <http://ex.org/> SELECT ?r (COUNT(?n) AS ?size) WHERE { ?r ex:p+ ?n . } GROUP BY ?r ORDER BY ?r`)
	res, err := Eval(ds, q)
	if err != nil {
		t.Fatal(err)
	}
	// Reachability counts: a->{x,y,z}=3, b->{w}=1, x->{y}=1.
	want := map[string]string{"http://ex.org/a": "3", "http://ex.org/b": "1", "http://ex.org/x": "1"}
	if res.Len() != len(want) {
		t.Fatalf("rows = %d, want %d\n%s", res.Len(), len(want), res.Table())
	}
	for i := 0; i < res.Len(); i++ {
		r, _ := res.Term(i, "r")
		n, _ := res.Term(i, "size")
		if want[r.Value] != n.Value {
			t.Errorf("group %s size = %s, want %s", r.Value, n.Value, want[r.Value])
		}
	}
	checkEquivalence(t, ds, q, -1)
}

// BenchmarkGroupByDrain measures the grouping barrier: 10k input rows
// folding into 100 groups with COUNT, SUM and MAX states.
func BenchmarkGroupByDrain(b *testing.B) {
	ds := rdf.NewDataset()
	for i := 0; i < 10_000; i++ {
		s := rdf.IRI(fmt.Sprintf("http://ex.org/s%d", i))
		ds.Default().MustAdd(rdf.T(s, rdf.IRI("http://ex.org/team"), rdf.IRI(fmt.Sprintf("http://ex.org/t%d", i%100))))
		ds.Default().MustAdd(rdf.T(s, rdf.IRI("http://ex.org/score"), rdf.IntLit(int64(i%37))))
	}
	q := MustParse(`PREFIX ex: <http://ex.org/>
SELECT ?t (COUNT(*) AS ?n) (SUM(?v) AS ?sum) (MAX(?v) AS ?hi)
WHERE { ?s ex:team ?t ; ex:score ?v } GROUP BY ?t`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Eval(ds, q)
		if err != nil {
			b.Fatal(err)
		}
		if res.Len() != 100 {
			b.Fatalf("groups = %d, want 100", res.Len())
		}
	}
}
