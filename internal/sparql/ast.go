package sparql

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"mdm/internal/rdf"
)

// QueryForm distinguishes SELECT from ASK queries.
type QueryForm int

// Supported query forms.
const (
	FormSelect QueryForm = iota
	FormAsk
)

// Query is a parsed SPARQL query.
type Query struct {
	Form      QueryForm
	Prefixes  *rdf.PrefixMap
	Distinct  bool
	Star      bool     // SELECT *
	Variables []string // projected variables (without '?') when !Star
	Where     *Group
	OrderBy   []OrderKey
	Limit     int // -1 = unset
	Offset    int

	// Aggregation. When Aggregates or GroupBy is non-empty the WHERE
	// solutions are grouped by the GroupBy variables (one implicit group
	// when GroupBy is empty) and each Aggregate binds its As alias in
	// the output row; Having filters the grouped rows. Variables then
	// holds the projection order over GroupBy variables and aliases.
	GroupBy    []string
	Aggregates []Aggregate
	Having     []Expr

	// layoutOnce/slots cache the compiled variable-slot layout; queries
	// are evaluated many times (saved walks, benchmarks), so the layout
	// is computed once and is safe to share across goroutines.
	layoutOnce sync.Once
	slots      *slotLayout

	// plan caches the compiled WHERE plan for the dataset the query was
	// last evaluated against, revalidated per evaluation against the
	// dataset's structural version and dictionary length (see
	// evaluator.plan in cursor.go). Plans are immutable after planning,
	// so a cached plan is safe to share across goroutines.
	//
	// Retention: the cached plan references the graphs it was planned
	// against, so a long-lived Query that is never re-evaluated keeps
	// its last dataset's indexes reachable. The entry is replaced on
	// the next evaluation (against any dataset); callers that retire a
	// dataset while holding parsed queries indefinitely should drop or
	// re-run those queries to release it.
	plan atomic.Pointer[cachedPlan]
}

// layout returns the query's compiled variable-slot layout.
func (q *Query) layout() *slotLayout {
	q.layoutOnce.Do(func() { q.slots = compileLayout(q) })
	return q.slots
}

// OrderKey is one ORDER BY criterion.
type OrderKey struct {
	Var  string
	Desc bool
}

// Group is a group graph pattern: a sequence of pattern elements
// evaluated as a join, plus filters applied over the group's solutions.
type Group struct {
	Patterns []Pattern
	Filters  []Expr
}

// Pattern is a group element: a triple pattern, OPTIONAL group, UNION, or
// GRAPH block.
type Pattern interface {
	patternNode()
	// Vars appends the variables mentioned by the pattern to dst.
	Vars(dst map[string]bool)
	String() string
}

// NodeKind discriminates the three kinds of pattern nodes.
type NodeKind int

// Pattern node kinds.
const (
	NodeVar NodeKind = iota
	NodeTerm
)

// Node is a position in a triple pattern: a variable or a concrete term.
type Node struct {
	Kind NodeKind
	Var  string   // when Kind == NodeVar
	Term rdf.Term // when Kind == NodeTerm
}

// V returns a variable node.
func V(name string) Node { return Node{Kind: NodeVar, Var: name} }

// N returns a concrete-term node.
func N(t rdf.Term) Node { return Node{Kind: NodeTerm, Term: t} }

// IsVar reports whether the node is a variable.
func (n Node) IsVar() bool { return n.Kind == NodeVar }

func (n Node) String() string {
	if n.IsVar() {
		return "?" + n.Var
	}
	return n.Term.String()
}

// TriplePattern is an (s, p, o) pattern where each position may be a
// variable.
type TriplePattern struct {
	S, P, O Node
}

func (TriplePattern) patternNode() {}

// Vars implements Pattern.
func (tp TriplePattern) Vars(dst map[string]bool) {
	for _, n := range []Node{tp.S, tp.P, tp.O} {
		if n.IsVar() {
			dst[n.Var] = true
		}
	}
}

func (tp TriplePattern) String() string {
	return fmt.Sprintf("%s %s %s .", tp.S, tp.P, tp.O)
}

// PathKind discriminates property-path operators.
type PathKind int

// Property-path operators.
const (
	PathLink PathKind = iota // a single predicate IRI
	PathInv                  // ^p
	PathSeq                  // p/q
	PathAlt                  // p|q
	PathPlus                 // p+  (one or more)
	PathStar                 // p*  (zero or more)
	PathOpt                  // p?  (zero or one)
)

// Path is a SPARQL 1.1 property-path expression. PathLink carries the
// predicate in IRI; PathInv/PathPlus/PathStar/PathOpt wrap Sub;
// PathSeq/PathAlt combine L and R.
type Path struct {
	Kind PathKind
	IRI  rdf.Term // PathLink
	Sub  *Path    // PathInv, PathPlus, PathStar, PathOpt
	L, R *Path    // PathSeq, PathAlt
}

// Link returns a single-predicate path.
func Link(p rdf.Term) *Path { return &Path{Kind: PathLink, IRI: p} }

// pathPrec is the binding strength used when rendering: alternatives
// bind loosest, then sequences, then inverse, then the postfix
// modifiers; a bare link never needs parentheses.
func (p *Path) prec() int {
	switch p.Kind {
	case PathAlt:
		return 1
	case PathSeq:
		return 2
	case PathInv:
		return 3
	case PathPlus, PathStar, PathOpt:
		return 4
	default:
		return 5
	}
}

// render writes p, parenthesizing children that bind looser than the
// position requires, so String round-trips through the parser.
func (p *Path) render(sb *strings.Builder, min int) {
	if p.prec() < min {
		sb.WriteString("(")
		p.render(sb, 0)
		sb.WriteString(")")
		return
	}
	switch p.Kind {
	case PathLink:
		sb.WriteString(p.IRI.String())
	case PathInv:
		sb.WriteString("^")
		p.Sub.render(sb, 4)
	case PathSeq:
		p.L.render(sb, 2)
		sb.WriteString("/")
		p.R.render(sb, 3)
	case PathAlt:
		p.L.render(sb, 1)
		sb.WriteString("|")
		p.R.render(sb, 2)
	case PathPlus, PathStar, PathOpt:
		p.Sub.render(sb, 5)
		switch p.Kind {
		case PathPlus:
			sb.WriteString("+")
		case PathStar:
			sb.WriteString("*")
		default:
			sb.WriteString("?")
		}
	}
}

func (p *Path) String() string {
	var sb strings.Builder
	p.render(&sb, 0)
	return sb.String()
}

// PathPattern is an (s, path, o) pattern whose predicate position is a
// property-path expression rather than a plain node. A trivial
// single-link path parses to a TriplePattern instead, so a PathPattern
// always carries at least one path operator.
type PathPattern struct {
	S, O Node
	Path *Path
}

func (PathPattern) patternNode() {}

// Vars implements Pattern.
func (pp PathPattern) Vars(dst map[string]bool) {
	if pp.S.IsVar() {
		dst[pp.S.Var] = true
	}
	if pp.O.IsVar() {
		dst[pp.O.Var] = true
	}
}

func (pp PathPattern) String() string {
	return fmt.Sprintf("%s %s %s .", pp.S, pp.Path, pp.O)
}

// AggFunc enumerates the supported aggregate functions.
type AggFunc int

// Aggregate functions.
const (
	AggCount AggFunc = iota
	AggSum
	AggMin
	AggMax
)

func (f AggFunc) String() string {
	switch f {
	case AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	default:
		return fmt.Sprintf("AggFunc(%d)", int(f))
	}
}

// Aggregate is one projected aggregate: FUNC([DISTINCT] ?Var) AS ?As.
// Var == "" means COUNT(*) (count of all group rows, bound or not);
// only COUNT accepts it.
type Aggregate struct {
	Func     AggFunc
	Distinct bool
	Var      string // argument variable, "" for COUNT(*)
	As       string // output alias
}

func (a Aggregate) String() string {
	arg := "*"
	if a.Var != "" {
		arg = "?" + a.Var
	}
	if a.Distinct {
		arg = "DISTINCT " + arg
	}
	return fmt.Sprintf("(%s(%s) AS ?%s)", a.Func, arg, a.As)
}

// aggregateFor returns the aggregate bound to alias name, if any.
func (q *Query) aggregateFor(name string) (Aggregate, bool) {
	for _, a := range q.Aggregates {
		if a.As == name {
			return a, true
		}
	}
	return Aggregate{}, false
}

// Optional wraps a group evaluated as a left join.
type Optional struct {
	Group *Group
}

func (Optional) patternNode() {}

// Vars implements Pattern.
func (o Optional) Vars(dst map[string]bool) { o.Group.collectVars(dst) }

func (o Optional) String() string { return "OPTIONAL " + o.Group.String() }

// Union is the alternation of two or more groups.
type Union struct {
	Branches []*Group
}

func (Union) patternNode() {}

// Vars implements Pattern.
func (u Union) Vars(dst map[string]bool) {
	for _, b := range u.Branches {
		b.collectVars(dst)
	}
}

func (u Union) String() string {
	parts := make([]string, len(u.Branches))
	for i, b := range u.Branches {
		parts[i] = b.String()
	}
	return strings.Join(parts, " UNION ")
}

// GraphPattern scopes a group to a named graph, identified either by a
// concrete IRI or by a variable that ranges over graph names.
type GraphPattern struct {
	Name  Node
	Group *Group
}

func (GraphPattern) patternNode() {}

// Vars implements Pattern.
func (g GraphPattern) Vars(dst map[string]bool) {
	if g.Name.IsVar() {
		dst[g.Name.Var] = true
	}
	g.Group.collectVars(dst)
}

func (g GraphPattern) String() string {
	return fmt.Sprintf("GRAPH %s %s", g.Name, g.Group)
}

func (g *Group) collectVars(dst map[string]bool) {
	for _, p := range g.Patterns {
		p.Vars(dst)
	}
	for _, f := range g.Filters {
		f.Vars(dst)
	}
}

// AllVars returns the sorted set of variables mentioned in the group.
func (g *Group) AllVars() []string {
	set := map[string]bool{}
	g.collectVars(set)
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

func (g *Group) String() string {
	var sb strings.Builder
	sb.WriteString("{ ")
	for _, p := range g.Patterns {
		sb.WriteString(p.String())
		sb.WriteString(" ")
	}
	for _, f := range g.Filters {
		fmt.Fprintf(&sb, "FILTER (%s) ", f)
	}
	sb.WriteString("}")
	return sb.String()
}

// String pretty-prints the query in canonical SPARQL concrete syntax.
func (q *Query) String() string {
	var sb strings.Builder
	if q.Prefixes != nil {
		for _, pair := range q.Prefixes.Pairs() {
			fmt.Fprintf(&sb, "PREFIX %s: <%s>\n", pair[0], pair[1])
		}
	}
	switch q.Form {
	case FormAsk:
		sb.WriteString("ASK ")
	default:
		sb.WriteString("SELECT ")
		if q.Distinct {
			sb.WriteString("DISTINCT ")
		}
		if q.Star {
			sb.WriteString("* ")
		} else {
			for _, v := range q.Variables {
				if a, ok := q.aggregateFor(v); ok {
					sb.WriteString(a.String() + " ")
				} else {
					sb.WriteString("?" + v + " ")
				}
			}
		}
		sb.WriteString("WHERE ")
	}
	sb.WriteString(q.Where.String())
	if len(q.GroupBy) > 0 {
		sb.WriteString(" GROUP BY")
		for _, v := range q.GroupBy {
			sb.WriteString(" ?" + v)
		}
	}
	for _, h := range q.Having {
		fmt.Fprintf(&sb, " HAVING (%s)", h)
	}
	if len(q.OrderBy) > 0 {
		sb.WriteString(" ORDER BY")
		for _, k := range q.OrderBy {
			if k.Desc {
				fmt.Fprintf(&sb, " DESC(?%s)", k.Var)
			} else {
				fmt.Fprintf(&sb, " ?%s", k.Var)
			}
		}
	}
	if q.Limit >= 0 {
		fmt.Fprintf(&sb, " LIMIT %d", q.Limit)
	}
	if q.Offset > 0 {
		fmt.Fprintf(&sb, " OFFSET %d", q.Offset)
	}
	return sb.String()
}
