package sparql

import (
	"context"
	"fmt"
	"iter"
	"math"
	"math/bits"
	"slices"
	"sort"
	"time"

	"mdm/internal/obs"
	"mdm/internal/rdf"
)

// This file implements the pull-based streaming engine. A query compiles
// to a tree of row operators (rowIter); every operator pulls full-width
// []rdf.TermID rows from its input on demand, so evaluation does no more
// work than the rows actually read through the Cursor require:
//
//   - LIMIT/OFFSET are pushed into the pipeline tail. With ORDER BY
//     absent, the canonical-order contract (results sorted by the
//     projected columns so pages are deterministic) is kept by a bounded
//     top-k operator that retains only offset+limit rows instead of
//     materializing and sorting the full result.
//   - A Cursor drained only partially (or closed) simply stops pulling;
//     upstream joins never run past what the consumer asked for.
//   - The caller's context is polled once per pulled row (and
//     periodically inside long index scans), so cancellation aborts
//     evaluation promptly with ctx's error surfaced via Cursor.Err.
//
// Row ownership follows the Volcano convention: a row returned by
// next() is owned by the producer and stays valid only until the next
// call to that producer's next(). Consumers that retain rows across
// pulls (sort/top-k/canonical barriers, Result) copy them into the
// evaluator's arena; everything else — joins extending an input row,
// filters, paging — works on borrowed rows and never allocates per
// discarded row.
//
// Each triple pattern executes as one of two join operators, chosen by
// a small cost model at plan time (chooseJoin): tripleIter, an index
// nested loop that probes the graph index once per input row, or
// hashJoinIter, which batches the pattern's full match set under a
// single lock into an ID-keyed hash table and probes it per row.
// Compiled plans are cached on the Query and revalidated per
// evaluation against the dataset's structural version and dictionary
// length (evaluator.plan). The planner's contract — estimates, the
// cost model, cache invalidation — is documented in
// docs/QUERY_PLANNING.md.

// rowIter is one operator of a compiled pipeline. next returns the next
// full-width solution row, or nil when the operator is exhausted or
// evaluation failed (evaluator.err is then set). The returned slice is
// valid until the following next call on the same operator.
type rowIter interface {
	next() []rdf.TermID
}

// --- plans (built once per query, instantiated per input row) ---

// groupPlan is a group graph pattern planned against a fixed active
// graph: patterns in evaluation order plus the group's filters.
type groupPlan struct {
	patterns []patternPlan
	filters  []Expr
}

type patternPlan interface{ patternPlan() }

// triplePlan is a triple pattern resolved for ID-level matching against
// graph g: constants are interned IDs (dead when a constant was never
// interned, in which case nothing can match), variables are row slots.
type triplePlan struct {
	g                      *rdf.Graph
	dead                   bool
	sID, pID, oID          rdf.TermID
	sSlot, pSlot, oSlot    int // -1 for constants
	spSame, soSame, poSame bool

	// Join-algorithm choice (chooseJoin): when hash is set the pattern
	// executes as a hashJoinIter keyed on keySlots — the pattern's
	// variable slots the planner proved bound by the time this pattern
	// runs — with keyPos naming the match position (0=s, 1=p, 2=o) each
	// key component is read from.
	hash     bool
	keySlots []int
	keyPos   []uint8

	// Parallelism decision: parCost is the pattern's estimated join work
	// in emitted-match units (input rows × (1 + fanout), recorded by
	// chooseJoin); plan marks par on root-level hash patterns whose cost
	// clears parallelMinWork when the evaluation's worker budget allows,
	// and chainRoot fuses consecutive marked patterns into one
	// morselJoinIter (see parallel.go).
	parCost float64
	par     bool
}

func (*triplePlan) patternPlan() {}

type optionalPlan struct{ sub *groupPlan }

func (*optionalPlan) patternPlan() {}

type unionPlan struct{ branches []*groupPlan }

func (*unionPlan) patternPlan() {}

// graphPlan is a GRAPH block with a variable name: the named graphs are
// snapshotted (and their sub-groups planned) at compile time.
type graphPlan struct {
	slot    int // slot of the name variable
	entries []graphEntry
}

type graphEntry struct {
	nameID rdf.TermID
	sub    *groupPlan
}

func (*graphPlan) patternPlan() {}

// deadPlan yields no solutions (GRAPH naming a missing graph).
type deadPlan struct{}

func (*deadPlan) patternPlan() {}

// planCtx threads the planner's running estimates through a group:
// which row slots are definitely bound once the patterns planned so far
// have run, and roughly how many rows flow into the next pattern. Both
// feed chooseJoin; neither affects what a plan computes, only how.
type planCtx struct {
	rows  float64
	bound []bool // indexed by row slot
}

func (pc *planCtx) clone() *planCtx {
	return &planCtx{rows: pc.rows, bound: append([]bool(nil), pc.bound...)}
}

// meet folds another branch outcome into an alternation summary: rows
// add (branches concatenate) and a slot stays definitely bound only if
// every branch binds it.
func (pc *planCtx) meet(branch *planCtx) {
	pc.rows += branch.rows
	for i := range pc.bound {
		pc.bound[i] = pc.bound[i] && branch.bound[i]
	}
}

// planGroup compiles a group against the given active graph: pattern
// order is chosen once (selectivity-greedy, OPTIONAL hoisted), constant
// terms are resolved to dictionary IDs, a join algorithm is picked per
// triple pattern, and GRAPH sub-groups are planned against their named
// graphs. pc carries the cardinality/boundness estimates in and out.
func (e *evaluator) planGroup(g *Group, active *rdf.Graph, pc *planCtx) (*groupPlan, error) {
	gp := &groupPlan{filters: g.Filters}
	for _, pat := range orderPatterns(active, g.Patterns) {
		switch p := pat.(type) {
		case TriplePattern:
			tp := e.planTriple(p, active)
			e.chooseJoin(tp, pc)
			gp.patterns = append(gp.patterns, tp)
			for _, s := range [3]int{tp.sSlot, tp.pSlot, tp.oSlot} {
				if s >= 0 {
					pc.bound[s] = true
				}
			}
		case Optional:
			spc := pc.clone()
			sub, err := e.planGroup(p.Group, active, spc)
			if err != nil {
				return nil, err
			}
			gp.patterns = append(gp.patterns, &optionalPlan{sub: sub})
			// A left join keeps every input row; OPTIONAL variables may
			// stay unbound per row, so nothing new becomes definite.
			pc.rows = math.Max(pc.rows, spc.rows)
		case Union:
			up := &unionPlan{}
			var acc *planCtx
			for _, branch := range p.Branches {
				bpc := pc.clone()
				sub, err := e.planGroup(branch, active, bpc)
				if err != nil {
					return nil, err
				}
				up.branches = append(up.branches, sub)
				if acc == nil {
					acc = bpc
				} else {
					acc.meet(bpc)
				}
			}
			gp.patterns = append(gp.patterns, up)
			if acc != nil {
				*pc = *acc
			}
		case PathPattern:
			pl := e.planPath(p, active, pc)
			gp.patterns = append(gp.patterns, pl)
			// A path pattern always binds both endpoints on every row it
			// emits (constants bind nothing new).
			for _, s := range [2]int{pl.sSlot, pl.oSlot} {
				if s >= 0 {
					pc.bound[s] = true
				}
			}
		case GraphPattern:
			pp, err := e.planGraph(p, pc)
			if err != nil {
				return nil, err
			}
			gp.patterns = append(gp.patterns, pp)
		default:
			return nil, fmt.Errorf("sparql: unknown pattern type %T", pat)
		}
	}
	return gp, nil
}

// Cost-model constants, in "emitted match" units. An index nested loop
// pays — per input row — a read-lock round-trip plus nested map walks
// before the first match comes out; that per-row tax benchmarks at
// roughly nestedLoopRowTax emitted matches, while a hash probe costs
// about one. Building the hash table costs its full match count once.
// The derivation (and the benchmark justifying each constant) is in
// docs/QUERY_PLANNING.md.
const (
	hashJoinMinRows  = 64 // below this, build setup dominates any win
	nestedLoopRowTax = 4
)

// joinMode forces the planner's join-algorithm choice; the spec harness
// uses it to execute every randomized case under both strategies. The
// default lets the cost model decide.
var joinMode = joinAuto

const (
	joinAuto int32 = iota
	joinForceNested
	joinForceHash
)

// chooseJoin picks the join algorithm for one planned triple pattern
// given the rows estimated to flow into it, and updates the running
// row estimate.
//
//   - nested loop ≈ rows × (nestedLoopRowTax + fanout)
//   - hash join   ≈ build + rows × (1 + fanout)
//
// so the hash join wins when its one-off build cost undercuts the
// per-row tax: build < rows × (nestedLoopRowTax − 1), gated on a
// minimum row count so small queries never pay for a table. The join
// key is the pattern's variable slots that are definitely bound by
// the patterns planned before it; variables the planner could not
// prove bound (an OPTIONAL or a one-sided UNION binding) are left out
// of the key and re-checked per candidate at probe time instead.
func (e *evaluator) chooseJoin(p *triplePlan, pc *planCtx) {
	if p.dead {
		return
	}
	addKey := func(slot int, pos uint8) {
		if slot < 0 || !pc.bound[slot] || slices.Contains(p.keySlots, slot) {
			return
		}
		p.keySlots = append(p.keySlots, slot)
		p.keyPos = append(p.keyPos, pos)
	}
	addKey(p.sSlot, 0)
	addKey(p.pSlot, 1)
	addKey(p.oSlot, 2)
	build := float64(p.g.CountIDs(p.sID, p.pID, p.oID))
	// Fan-out: expected matches per input row. With no shared variable
	// the pattern is a cartesian extension; with a join key it is
	// build / distinct(key values) when an index map length yields the
	// distinct count for free, else neutral.
	fanout := 1.0
	if len(p.keySlots) == 0 {
		fanout = build
	} else {
		have := false
		for _, pos := range p.keyPos {
			if d, ok := p.g.DistinctCountIDs(p.sID, p.pID, p.oID, int(pos)); ok && d > 0 {
				if f := build / float64(d); !have || f < fanout {
					fanout, have = f, true
				}
			}
		}
	}
	switch joinMode {
	case joinForceNested:
	case joinForceHash:
		p.hash = true
	default:
		p.hash = pc.rows >= hashJoinMinRows && build < pc.rows*(nestedLoopRowTax-1)
	}
	p.parCost = pc.rows * (1 + fanout)
	pc.rows = math.Max(1, pc.rows*fanout)
}

func (e *evaluator) planTriple(tp TriplePattern, g *rdf.Graph) *triplePlan {
	p := &triplePlan{g: g}
	var ok [3]bool
	p.sID, p.sSlot, ok[0] = e.patNode(tp.S)
	p.pID, p.pSlot, ok[1] = e.patNode(tp.P)
	p.oID, p.oSlot, ok[2] = e.patNode(tp.O)
	p.dead = !ok[0] || !ok[1] || !ok[2]
	// Repeated pattern variables need an explicit equality check when
	// unbound (when bound, the substituted concrete ID constrains the
	// match already; the checks are then vacuously true).
	p.spSame = p.sSlot >= 0 && p.sSlot == p.pSlot
	p.soSame = p.sSlot >= 0 && p.sSlot == p.oSlot
	p.poSame = p.pSlot >= 0 && p.pSlot == p.oSlot
	return p
}

// patNode resolves one triple-pattern position for ID-level matching.
// For a variable it returns its slot (the row value — unboundID acting
// as the wildcard — is substituted per input row); for a concrete term
// it returns the term's ID with slot -1. ok is false when the term was
// never interned in the dataset, in which case nothing can match.
func (e *evaluator) patNode(n Node) (id rdf.TermID, slot int, ok bool) {
	if n.IsVar() {
		return unboundID, e.lay.index[n.Var], true
	}
	id, ok = e.dict.ID(n.Term)
	return id, -1, ok
}

func (e *evaluator) planGraph(gp GraphPattern, pc *planCtx) (patternPlan, error) {
	if !gp.Name.IsVar() {
		g, ok := e.ds.Lookup(gp.Name.Term)
		if !ok {
			return &deadPlan{}, nil // empty graph => no solutions
		}
		sub, err := e.planGroup(gp.Group, g, pc)
		if err != nil {
			return nil, err
		}
		// A concrete GRAPH block joins like an inline sub-group.
		return &inlineGroupPlan{sub}, nil
	}
	p := &graphPlan{slot: e.lay.index[gp.Name.Var]}
	var acc *planCtx
	for _, name := range e.ds.GraphNames() {
		g, ok := e.ds.Lookup(name)
		if !ok {
			continue // dropped concurrently between GraphNames and Lookup
		}
		epc := pc.clone()
		epc.bound[p.slot] = true // the name slot is bound inside the block
		// Graph names are interned when the graph is created; Intern
		// covers datasets assembled before that invariant held.
		sub, err := e.planGroup(gp.Group, g, epc)
		if err != nil {
			return nil, err
		}
		p.entries = append(p.entries, graphEntry{nameID: e.dict.Intern(name), sub: sub})
		if acc == nil {
			acc = epc
		} else {
			acc.meet(epc)
		}
	}
	if acc != nil {
		*pc = *acc // every entry binds the name slot, so it stays definite
	}
	return p, nil
}

// inlineGroupPlan wraps the plan of a GRAPH block with a concrete,
// existing name; it chains exactly like the sub-group itself.
type inlineGroupPlan struct{ sub *groupPlan }

func (*inlineGroupPlan) patternPlan() {}

// cachedPlan is one compiled WHERE plan together with the dataset state
// it was compiled against; it lives on the Query (see Query.plan).
type cachedPlan struct {
	ds      *rdf.Dataset
	version uint64
	dictLen int
	mode    int32
	par     int
	root    *groupPlan
	summary string // one-line plan shape for EXPLAIN / slow-query log
}

// plan returns the compiled plan for q against e's dataset, reusing the
// query's cached plan when it is still valid. A plan bakes in pattern
// order, join algorithms, resolved constant IDs and the named-graph
// set, so it is revalidated against Dataset.Version (any graph-set
// change) and Dict.Len (interning a new term is the only way a
// previously dead constant can start matching). Triple-level writes
// that intern no new term leave a cached plan valid: the selectivity
// estimates behind pattern order and join choice may go stale — a
// performance matter only — while matching itself always runs against
// the live indexes.
// Revalidation under concurrent interning is benign by construction:
// Version is an atomic counter, Dict.Len takes the dictionary's read
// lock, and both are read *before* planning. A writer interning a new
// term between those reads and the Store caches a plan stamped with the
// pre-intern dictLen, so the very next evaluation observes a larger
// Dict.Len and recompiles — the stale plan can be used at most for the
// evaluation that compiled it, which is exactly the non-snapshot
// semantics every evaluation already has (matching runs against live
// indexes either way). The parallel workers never touch this path: a
// plan is compiled and its par flags marked on the caller's goroutine
// before any worker goroutine exists, and workers treat the plan and
// its tables as read-only.
func (e *evaluator) plan(q *Query) (*groupPlan, error) {
	mode := joinMode
	par := e.planParallelism(q)
	e.par = par
	ver := e.ds.Version()
	dictLen := e.dict.Len()
	if c := q.plan.Load(); c != nil && c.ds == e.ds && c.version == ver &&
		c.dictLen == dictLen && c.mode == mode && c.par == par {
		obsPlanCacheHit.Inc()
		if tr := e.trace; tr != nil {
			tr.SetAttr("plan_cache", "hit")
			tr.SetPlan(c.summary)
		}
		return c.root, nil
	}
	obsPlanCacheMiss.Inc()
	pc := &planCtx{rows: 1, bound: make([]bool, len(e.lay.names))}
	root, err := e.planGroup(q.Where, e.ds.Default(), pc)
	if err != nil {
		return nil, err
	}
	if par > 1 {
		for _, pat := range root.patterns {
			if tp, ok := pat.(*triplePlan); ok && tp.hash && !tp.dead {
				tp.par = parMode == parForceOn || tp.parCost >= parallelMinWork
			}
		}
	}
	var cnt planCounts
	cnt.group(root)
	countJoinStrategies(cnt)
	summary := cnt.summary(par)
	if tr := e.trace; tr != nil {
		tr.SetAttr("plan_cache", "miss")
		tr.SetPlan(summary)
	}
	q.plan.Store(&cachedPlan{ds: e.ds, version: ver, dictLen: dictLen, mode: mode, par: par, root: root, summary: summary})
	return root, nil
}

// chain instantiates a planned group as an operator chain over src.
func (e *evaluator) chain(gp *groupPlan, src rowIter) rowIter {
	it := src
	for _, p := range gp.patterns {
		it = e.chainOne(p, it)
	}
	if len(gp.filters) > 0 {
		it = e.traced(&filterIter{e: e, src: it, exprs: gp.filters}, gp, "filter", "", it)
	}
	return it
}

// chainOne instantiates one planned pattern as an operator over it.
func (e *evaluator) chainOne(p patternPlan, it rowIter) rowIter {
	switch pl := p.(type) {
	case *triplePlan:
		if pl.hash {
			return e.traced(&hashJoinIter{e: e, src: it, p: pl, scratch: e.newRow(), chain: -1}, pl, "hash-join", "hash", it)
		}
		ti := &tripleIter{e: e, src: it, p: pl, scratch: e.newRow()}
		ti.emit = ti.emitMatch
		return e.traced(ti, pl, "triple-scan", "nested_loop", it)
	case *optionalPlan:
		return e.traced(&optionalIter{e: e, src: it, p: pl}, pl, "optional", "", it)
	case *unionPlan:
		return e.traced(&unionIter{e: e, src: it, p: pl}, pl, "union", "", it)
	case *pathPlan:
		return e.traced(&pathIter{e: e, src: it, p: pl, scratch: e.newRow()}, pl, "path", "nested_loop", it)
	case *graphPlan:
		return e.traced(&graphIter{e: e, src: it, p: pl, scratch: e.newRow()}, pl, "graph", "", it)
	case *inlineGroupPlan:
		return e.chain(pl.sub, it)
	case *deadPlan:
		return emptyIter{}
	}
	return it
}

// --- leaf and structural operators ---

// onceIter yields a single seed row, then nil.
type onceIter struct{ row []rdf.TermID }

func (o *onceIter) next() []rdf.TermID {
	r := o.row
	o.row = nil
	return r
}

type emptyIter struct{}

func (emptyIter) next() []rdf.TermID { return nil }

// tripleIter streams the index-nested-loop join of its input with one
// triple pattern: per input row it collects the matching triple IDs in
// one locked index scan, then emits them one at a time composed into its
// scratch row.
type tripleIter struct {
	e   *evaluator
	src rowIter
	p   *triplePlan

	scratch []rdf.TermID // the emitted row; rewritten per match
	buf     []rdf.TermID // matched (s,p,o) IDs for the current input row
	pos     int          // consumed prefix of buf, in IDs
	scanned int          // matches seen, for amortized ctx polling
	emit    func(ms, mp, mo rdf.TermID) bool
}

func (it *tripleIter) next() []rdf.TermID {
	p := it.p
	for {
		if it.pos < len(it.buf) {
			if p.sSlot >= 0 {
				it.scratch[p.sSlot] = it.buf[it.pos]
			}
			if p.pSlot >= 0 {
				it.scratch[p.pSlot] = it.buf[it.pos+1]
			}
			if p.oSlot >= 0 {
				it.scratch[p.oSlot] = it.buf[it.pos+2]
			}
			it.pos += 3
			return it.scratch
		}
		if p.dead || !it.e.poll() {
			return nil
		}
		row := it.src.next()
		if row == nil {
			return nil
		}
		// One locked scan per input row; matches land in buf and the
		// input row is copied into scratch so emission is lock-free.
		copy(it.scratch, row)
		it.buf, it.pos = it.buf[:0], 0
		s, pp, o := p.sID, p.pID, p.oID
		if p.sSlot >= 0 {
			s = row[p.sSlot]
		}
		if p.pSlot >= 0 {
			pp = row[p.pSlot]
		}
		if p.oSlot >= 0 {
			o = row[p.oSlot]
		}
		p.g.EachMatchIDs(s, pp, o, it.emit)
	}
}

// emitMatch collects one index match, dropping matches that violate
// repeated-variable equality. It is bound once per operator so the scan
// callback does not allocate per input row.
func (it *tripleIter) emitMatch(ms, mp, mo rdf.TermID) bool {
	it.scanned++
	if it.scanned&4095 == 0 && !it.e.poll() {
		return false // canceled mid-scan
	}
	p := it.p
	if p.spSame && ms != mp || p.soSame && ms != mo || p.poSame && mp != mo {
		return true
	}
	it.buf = append(it.buf, ms, mp, mo)
	return true
}

// joinKey is a hash-join key: the match's IDs at up to three key
// positions, padded with AnyID. It is comparable, so Go's map hashes it
// natively.
type joinKey [3]rdf.TermID

// matchKey builds the key a build-side match is bucketed under.
func (p *triplePlan) matchKey(ms, mp, mo rdf.TermID) joinKey {
	k := joinKey{rdf.AnyID, rdf.AnyID, rdf.AnyID}
	for i, pos := range p.keyPos {
		switch pos {
		case 0:
			k[i] = ms
		case 1:
			k[i] = mp
		default:
			k[i] = mo
		}
	}
	return k
}

// probeKey builds the key an input row probes with; ok is false when a
// key slot is unbound in this row (the planner keyed a variable that a
// sibling UNION branch left unbound), in which case the caller must
// fall back to scanning the whole table.
func (p *triplePlan) probeKey(row []rdf.TermID) (joinKey, bool) {
	k := joinKey{rdf.AnyID, rdf.AnyID, rdf.AnyID}
	for i, s := range p.keySlots {
		v := row[s]
		if v == unboundID {
			return k, false
		}
		k[i] = v
	}
	return k, true
}

// hashTable is one triple pattern's batched match set: rows holds the
// matches as flat (s, p, o) triplets carved from one slice, and the
// buckets are intrusive chains — head maps a join key to its first
// triplet index, next links triplets sharing a key — so the whole
// table is two flat slices plus one map, with no per-bucket
// allocations. Tables are built lazily on first probe and cached per
// plan node on the evaluator, so sub-chains instantiated once per
// input row (OPTIONAL, UNION, GRAPH) share one build across the whole
// evaluation.
type hashTable struct {
	rows []rdf.TermID
	head map[joinKey]int32 // join key -> first triplet index of its chain
	// head1 replaces head when the key is a single slot (the common
	// case): hashing one TermID is measurably cheaper than three.
	head1 map[rdf.TermID]int32
	next  []int32 // next[i] = next triplet with i's key, -1 at end
}

// hashTable returns (building on first use) the hash table for a
// hash-join pattern. The build is one batched index scan under a single
// lock acquisition; repeated-variable violations are filtered here so
// probes never see them.
func (e *evaluator) hashTable(p *triplePlan) *hashTable {
	if t, ok := e.tables[p]; ok {
		return t
	}
	raw := filterSameViolations(p.g.AppendMatchIDs(nil, p.sID, p.pID, p.oID), p)
	t := newChainTable(raw, p)
	if e.tables == nil {
		e.tables = make(map[*triplePlan]*hashTable)
	}
	e.tables[p] = t
	return t
}

// filterSameViolations drops the triplets of raw that violate the
// pattern's repeated-variable equalities, in place.
func filterSameViolations(raw []rdf.TermID, p *triplePlan) []rdf.TermID {
	if !p.spSame && !p.soSame && !p.poSame {
		return raw
	}
	kept := raw[:0]
	for i := 0; i < len(raw); i += 3 {
		ms, mp, mo := raw[i], raw[i+1], raw[i+2]
		if p.spSame && ms != mp || p.soSame && ms != mo || p.poSame && mp != mo {
			continue
		}
		kept = append(kept, ms, mp, mo)
	}
	return kept
}

// newChainTable builds the intrusive-chain table over raw, a flat
// (s, p, o) triplet slice already filtered for repeated-variable
// violations. Shared by the sequential build (evaluator.hashTable) and
// the per-partition parallel builds (evaluator.parTable).
func newChainTable(raw []rdf.TermID, p *triplePlan) *hashTable {
	n := len(raw) / 3
	t := &hashTable{rows: raw, next: make([]int32, n)}
	if len(p.keySlots) == 1 {
		t.head1 = make(map[rdf.TermID]int32, n)
		pos := p.keyPos[0]
		for i := 0; i < n; i++ {
			k := raw[3*i+int(pos)]
			if h, ok := t.head1[k]; ok {
				t.next[i] = h
			} else {
				t.next[i] = -1
			}
			t.head1[k] = int32(i)
		}
	} else {
		t.head = make(map[joinKey]int32, n)
		for i := 0; i < n; i++ {
			k := p.matchKey(raw[3*i], raw[3*i+1], raw[3*i+2])
			if h, ok := t.head[k]; ok {
				t.next[i] = h
			} else {
				t.next[i] = -1
			}
			t.head[k] = int32(i)
		}
	}
	return t
}

// hashJoinIter joins its input with one triple pattern by hash lookup
// instead of per-row index probes: the pattern's full match set is
// batched once into an ID-keyed hash table (see evaluator.hashTable)
// and each input row probes the bucket of its join-key values. Rows
// with an unbound key slot fall back to scanning the whole table, and
// emission re-checks every bound slot either way, so the fast path and
// the fallback accept exactly the same matches.
type hashJoinIter struct {
	e   *evaluator
	src rowIter
	p   *triplePlan

	scratch []rdf.TermID // the emitted row; rewritten per match
	cur     []rdf.TermID // the borrowed input row being extended
	tab     *hashTable
	// pt, when set, replaces the lazily built single table: the probe
	// selects the partition of each row's key hash (tab then names the
	// current partition), and the unbound-key linear fallback walks
	// every partition via pi. Set only inside morsel workers, which
	// receive their tables pre-built (see parallel.go).
	pt      *partitionedTable
	pi      int   // next partition for the linear fallback when pt != nil
	chain   int32 // next candidate triplet in cur's bucket chain, -1 done
	linear  bool  // fallback: scan all triplets for cur
	pos     int   // next triplet offset when linear
	scanned int   // candidates visited, for amortized ctx polling
}

func (it *hashJoinIter) next() []rdf.TermID {
	p := it.p
	for {
		for {
			var base int
			if it.linear {
				if it.tab == nil || it.pos >= len(it.tab.rows) {
					if it.pt == nil || it.pi >= len(it.pt.parts) {
						break
					}
					it.tab = it.pt.parts[it.pi]
					it.pi++
					it.pos = 0
					continue
				}
				base = it.pos
				it.pos += 3
			} else {
				if it.chain < 0 {
					break
				}
				base = int(it.chain) * 3
				it.chain = it.tab.next[it.chain]
			}
			it.scanned++
			if it.scanned&4095 == 0 && !it.e.poll() {
				return nil // canceled mid-drain
			}
			ms, mp, mo := it.tab.rows[base], it.tab.rows[base+1], it.tab.rows[base+2]
			if !compatRow(it.cur, p, ms, mp, mo) {
				continue
			}
			if p.sSlot >= 0 {
				it.scratch[p.sSlot] = ms
			}
			if p.pSlot >= 0 {
				it.scratch[p.pSlot] = mp
			}
			if p.oSlot >= 0 {
				it.scratch[p.oSlot] = mo
			}
			return it.scratch
		}
		if p.dead || !it.e.poll() {
			return nil
		}
		row := it.src.next()
		if row == nil {
			return nil
		}
		if it.tab == nil && it.pt == nil {
			it.tab = it.e.hashTable(p)
		}
		it.cur = row
		copy(it.scratch, row)
		it.pos, it.chain, it.linear, it.pi = 0, -1, false, 0
		switch {
		case it.pt != nil:
			// Partitioned probe: hash the key to its partition, then the
			// usual bucket lookup within it. An unbound key slot falls
			// back to scanning every partition, which together hold
			// exactly the single table's triplets.
			it.tab = nil
			if key, ok := p.probeKey(row); ok {
				t := it.pt.part(key)
				it.tab = t
				if t.head1 != nil {
					if h, hit := t.head1[key[0]]; hit {
						it.chain = h
					}
				} else if h, hit := t.head[key]; hit {
					it.chain = h
				}
			} else {
				it.linear = true
			}
		case it.tab.head1 != nil:
			if v := row[p.keySlots[0]]; v != unboundID {
				if h, hit := it.tab.head1[v]; hit {
					it.chain = h
				}
			} else {
				it.linear = true
			}
		default:
			if key, ok := p.probeKey(row); ok {
				if h, hit := it.tab.head[key]; hit {
					it.chain = h
				}
			} else {
				it.linear = true
			}
		}
	}
}

// compatRow reports whether a build-side match is consistent with the
// input row: every pattern variable slot the row has bound must agree
// with the match's value there. Constants were fixed at build time and
// repeated-variable equality was filtered at insert, so this is the
// only per-candidate check.
func compatRow(row []rdf.TermID, p *triplePlan, ms, mp, mo rdf.TermID) bool {
	if p.sSlot >= 0 {
		if v := row[p.sSlot]; v != unboundID && v != ms {
			return false
		}
	}
	if p.pSlot >= 0 {
		if v := row[p.pSlot]; v != unboundID && v != mp {
			return false
		}
	}
	if p.oSlot >= 0 {
		if v := row[p.oSlot]; v != unboundID && v != mo {
			return false
		}
	}
	return true
}

// optionalIter is the left join: input rows extended by the OPTIONAL
// group's solutions, or passed through unchanged when the group yields
// none.
type optionalIter struct {
	e   *evaluator
	src rowIter
	p   *optionalPlan

	cur     []rdf.TermID
	sub     rowIter
	seed    onceIter
	matched bool
}

func (it *optionalIter) next() []rdf.TermID {
	for {
		if it.sub == nil {
			row := it.src.next()
			if row == nil {
				return nil
			}
			it.cur, it.matched = row, false
			it.seed = onceIter{row: row}
			it.sub = it.e.chain(it.p.sub, &it.seed)
		}
		if r := it.sub.next(); r != nil {
			it.matched = true
			return r
		}
		it.sub = nil
		if !it.matched && it.e.err == nil {
			return it.cur // left-join: keep unextended
		}
	}
}

// unionIter concatenates, per input row, the solutions of every branch.
type unionIter struct {
	e   *evaluator
	src rowIter
	p   *unionPlan

	cur  []rdf.TermID
	bi   int // next branch to open for cur
	sub  rowIter
	seed onceIter
}

func (it *unionIter) next() []rdf.TermID {
	for {
		if it.sub != nil {
			if r := it.sub.next(); r != nil {
				return r
			}
			it.sub = nil
		}
		if it.cur != nil && it.bi < len(it.p.branches) {
			it.seed = onceIter{row: it.cur}
			it.sub = it.e.chain(it.p.branches[it.bi], &it.seed)
			it.bi++
			continue
		}
		it.cur = it.src.next()
		if it.cur == nil {
			return nil
		}
		it.bi = 0
	}
}

// graphIter evaluates a GRAPH block whose name is a variable: per input
// row it ranges over the named graphs compatible with the row's binding
// of the name variable, binds the name, and streams the sub-group.
type graphIter struct {
	e   *evaluator
	src rowIter
	p   *graphPlan

	scratch []rdf.TermID // input row with the name slot bound
	cur     []rdf.TermID
	gi      int // next graph entry to open for cur
	sub     rowIter
	seed    onceIter
}

func (it *graphIter) next() []rdf.TermID {
	for {
		if it.sub != nil {
			if r := it.sub.next(); r != nil {
				return r
			}
			it.sub = nil
		}
		if it.cur != nil {
			for it.gi < len(it.p.entries) {
				ent := it.p.entries[it.gi]
				it.gi++
				switch it.cur[it.p.slot] {
				case unboundID:
					copy(it.scratch, it.cur)
					it.scratch[it.p.slot] = ent.nameID
					it.seed = onceIter{row: it.scratch}
				case ent.nameID:
					it.seed = onceIter{row: it.cur}
				default:
					continue // row bound to another graph
				}
				it.sub = it.e.chain(ent.sub, &it.seed)
				break
			}
			if it.sub != nil {
				continue
			}
		}
		it.cur = it.src.next()
		if it.cur == nil {
			return nil
		}
		it.gi = 0
	}
}

// filterIter drops rows whose group filters do not evaluate to true
// (errors count as false, per the SPARQL effective-boolean-value rule).
type filterIter struct {
	e     *evaluator
	src   rowIter
	exprs []Expr
	env   rowEnv
}

func (it *filterIter) next() []rdf.TermID {
rows:
	for {
		row := it.src.next()
		if row == nil {
			return nil
		}
		it.env.e, it.env.row = it.e, row
		for _, f := range it.exprs {
			v, err := f.Eval(&it.env)
			if err != nil {
				continue rows // error => effective false
			}
			ok, err := v.AsBool()
			if err != nil || !ok {
				continue rows
			}
		}
		return row
	}
}

// --- tail operators (projection-aware) ---

// appendRowKey appends the projected IDs of row as the DISTINCT
// comparison key. The dictionary is a bijection, so ID-byte equality is
// projected-term equality.
func appendRowKey(key []byte, row []rdf.TermID, slots []int) []byte {
	for _, s := range slots {
		id := row[s]
		key = append(key, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
	}
	return key
}

// cmpCanonical is the canonical result order: projected columns
// compared left to right, unbound first, terms by rdf.Compare. The
// dictionary is a bijection, so it returns 0 exactly when the projected
// columns are identical — which makes it a total order up to row
// interchangeability and pages deterministic.
func (e *evaluator) cmpCanonical(slots []int, a, b []rdf.TermID) int {
	for _, s := range slots {
		x, y := a[s], b[s]
		switch {
		case x == y:
			continue
		case x == unboundID:
			return -1
		case y == unboundID:
			return 1
		}
		if c := rdf.Compare(e.term(x), e.term(y)); c != 0 {
			return c
		}
	}
	return 0
}

// sortCanonical sorts full-width rows into the canonical order of the
// projected columns without decoding terms inside the comparator: the
// distinct IDs appearing in those columns are ranked once by term order
// (the dictionary is a bijection over 4-field Terms and rdf.Compare is
// total on them, so distinct IDs never tie), and the rows then sort on
// raw integer ranks. The visible order is exactly cmpCanonical's; only
// the O(n log n) term comparisons shrink to O(distinct · log distinct).
func (e *evaluator) sortCanonical(slots []int, rows [][]rdf.TermID) {
	if len(rows) < 2 || len(slots) == 0 {
		return
	}
	var maxID rdf.TermID
	for _, r := range rows {
		for _, s := range slots {
			if id := r[s]; id != unboundID && id > maxID {
				maxID = id
			}
		}
	}
	// Rank storage is O(result) no matter how large the dictionary is:
	// dense ID-indexed slices when the ID range is in the same ballpark
	// as the result's cell count (they win on constant factors), a map
	// otherwise (a few projected rows over a huge dictionary must not
	// allocate dictionary-sized arrays).
	cells := len(rows) * len(slots)
	dense := int(maxID) <= 4*cells+1024
	var seen []bool
	var rankD []int32
	var rankM map[rdf.TermID]int32
	if dense {
		seen = make([]bool, int(maxID)+1)
		rankD = make([]int32, int(maxID)+1)
	} else {
		rankM = make(map[rdf.TermID]int32, cells)
	}
	distinct := make([]rdf.TermID, 0, 64)
	for _, r := range rows {
		for _, s := range slots {
			id := r[s]
			if id == unboundID {
				continue
			}
			if dense {
				if !seen[id] {
					seen[id] = true
					distinct = append(distinct, id)
				}
			} else if _, ok := rankM[id]; !ok {
				rankM[id] = 0
				distinct = append(distinct, id)
			}
		}
	}
	slices.SortFunc(distinct, func(a, b rdf.TermID) int {
		return rdf.Compare(e.term(a), e.term(b))
	})
	// Ranks are 1-based: 0 is the unbound column, which sorts first.
	for i, id := range distinct {
		if dense {
			rankD[id] = int32(i + 1)
		} else {
			rankM[id] = int32(i + 1)
		}
	}
	// When the per-column ranks and a row index all pack into 64 bits
	// (virtually always: it takes > 20 projected columns or > 2^60
	// result cells to overflow), sort plain integers — the comparison
	// is a single machine word, and the trailing row-index bits both
	// break ties deterministically and name the row to permute into
	// place.
	n := len(rows)
	idxBits := bits.Len(uint(n - 1))
	keyBits := bits.Len(uint(len(distinct)))
	if len(slots)*keyBits+idxBits <= 64 {
		keys := make([]uint64, n)
		if dense {
			for i, r := range rows {
				k := uint64(0)
				for _, s := range slots {
					k <<= keyBits
					if id := r[s]; id != unboundID {
						k |= uint64(rankD[id])
					}
				}
				keys[i] = k<<idxBits | uint64(i)
			}
		} else {
			for i, r := range rows {
				k := uint64(0)
				for _, s := range slots {
					k <<= keyBits
					if id := r[s]; id != unboundID {
						k |= uint64(rankM[id])
					}
				}
				keys[i] = k<<idxBits | uint64(i)
			}
		}
		slices.Sort(keys)
		// Sorted position i must receive rows[keys[i]&mask]. Apply that
		// permutation in place by walking its cycles, overwriting each
		// visited index bits with the identity to mark the slot done.
		mask := uint64(1)<<idxBits - 1
		for i := range keys {
			j := int(keys[i] & mask)
			if j == i {
				continue
			}
			tmp, cur := rows[i], i
			for j != i {
				rows[cur] = rows[j]
				keys[cur] = keys[cur]&^mask | uint64(cur)
				cur = j
				j = int(keys[cur] & mask)
			}
			rows[cur] = tmp
			keys[cur] = keys[cur]&^mask | uint64(cur)
		}
		return
	}
	// Equal rows are identical in every projected column, so an
	// unstable sort cannot reorder anything observable.
	rank := func(id rdf.TermID) int32 {
		if dense {
			return rankD[id]
		}
		return rankM[id]
	}
	slices.SortFunc(rows, func(a, b []rdf.TermID) int {
		for _, s := range slots {
			x, y := a[s], b[s]
			switch {
			case x == y:
				continue
			case x == unboundID:
				return -1
			case y == unboundID:
				return 1
			case rank(x) < rank(y):
				return -1
			default:
				return 1
			}
		}
		return 0
	})
}

// sortIter is the ORDER BY barrier: it drains its input (copying each
// row), stable-sorts by the order keys, and then streams the sorted
// rows.
type sortIter struct {
	e      *evaluator
	src    rowIter
	keys   []OrderKey
	kSlots []int

	filled bool
	rows   [][]rdf.TermID
	pos    int
}

func (it *sortIter) next() []rdf.TermID {
	if !it.filled {
		it.filled = true
		for {
			row := it.src.next()
			if row == nil {
				break
			}
			it.rows = append(it.rows, it.e.extend(row))
		}
		if it.e.err != nil {
			return nil
		}
		e := it.e
		slices.SortStableFunc(it.rows, func(a, b []rdf.TermID) int {
			for ki, k := range it.keys {
				slot := it.kSlots[ki]
				x, y := a[slot], b[slot]
				var c int
				switch {
				case x == y:
					c = 0
				case x == unboundID:
					c = -1
				case y == unboundID:
					c = 1
				default:
					c = compareOrder(e.term(x), e.term(y))
				}
				if c != 0 {
					if k.Desc {
						return -c
					}
					return c
				}
			}
			return 0
		})
	}
	if it.e.err != nil || it.pos >= len(it.rows) {
		return nil
	}
	r := it.rows[it.pos]
	it.pos++
	return r
}

// canonIter is the no-ORDER-BY barrier: it drains its input, applies
// DISTINCT when asked, sorts canonically over the projected columns so
// results (and LIMIT/OFFSET pages) are repeatable across evaluations,
// and streams the sorted rows.
type canonIter struct {
	e        *evaluator
	src      rowIter
	slots    []int
	distinct bool

	filled bool
	rows   [][]rdf.TermID
	pos    int
}

func (it *canonIter) next() []rdf.TermID {
	if !it.filled {
		it.filled = true
		var seen map[string]struct{}
		var key []byte
		if it.distinct {
			seen = map[string]struct{}{}
			key = make([]byte, 0, 4*len(it.slots))
		}
		for {
			row := it.src.next()
			if row == nil {
				break
			}
			if it.distinct {
				key = appendRowKey(key[:0], row, it.slots)
				if _, dup := seen[string(key)]; dup {
					continue
				}
				seen[string(key)] = struct{}{}
			}
			it.rows = append(it.rows, it.e.extend(row))
		}
		if it.e.err != nil {
			return nil
		}
		it.e.sortCanonical(it.slots, it.rows)
	}
	if it.e.err != nil || it.pos >= len(it.rows) {
		return nil
	}
	r := it.rows[it.pos]
	it.pos++
	return r
}

// topKIter is the LIMIT pushdown for the canonical-order case: it keeps
// only the k canonically smallest rows (distinct rows when DISTINCT) in
// a sorted bound buffer while draining its input, then streams them in
// order. Memory and allocation are O(k); rejected rows are never copied
// and evicted copies are recycled.
type topKIter struct {
	e        *evaluator
	src      rowIter
	slots    []int
	k        int
	distinct bool

	filled bool
	rows   [][]rdf.TermID
	pos    int
}

func (it *topKIter) next() []rdf.TermID {
	if !it.filled {
		it.filled = true
		if it.k > 0 { // k == 0: empty page, skip evaluation entirely
			for {
				row := it.src.next()
				if row == nil {
					break
				}
				it.insert(row)
			}
		}
		if it.e.err != nil {
			return nil
		}
	}
	if it.e.err != nil || it.pos >= len(it.rows) {
		return nil
	}
	r := it.rows[it.pos]
	it.pos++
	return r
}

func (it *topKIter) insert(row []rdf.TermID) {
	e, n := it.e, len(it.rows)
	if n == it.k && e.cmpCanonical(it.slots, row, it.rows[n-1]) >= 0 {
		return // not smaller than the current k-th row
	}
	i := sort.Search(n, func(i int) bool {
		return e.cmpCanonical(it.slots, row, it.rows[i]) < 0
	})
	if it.distinct && i > 0 && e.cmpCanonical(it.slots, row, it.rows[i-1]) == 0 {
		return // duplicate of a retained row
	}
	if n == it.k {
		e.release(it.rows[n-1]) // evict the previous k-th row
		copy(it.rows[i+1:], it.rows[i:n-1])
	} else {
		it.rows = append(it.rows, nil)
		copy(it.rows[i+1:], it.rows[i:n])
	}
	it.rows[i] = e.extend(row)
}

// distinctIter streams duplicate elimination over the projected
// columns, keeping each row's first occurrence (used after the ORDER BY
// barrier, where order must be preserved).
type distinctIter struct {
	src   rowIter
	slots []int
	seen  map[string]struct{}
	key   []byte
}

func (it *distinctIter) next() []rdf.TermID {
	for {
		row := it.src.next()
		if row == nil {
			return nil
		}
		it.key = appendRowKey(it.key[:0], row, it.slots)
		if _, dup := it.seen[string(it.key)]; dup {
			continue
		}
		it.seen[string(it.key)] = struct{}{}
		return row
	}
}

// pageIter applies OFFSET/LIMIT: skip rows, then emit at most limit
// (limit < 0 = unlimited). Once the limit is reached it stops pulling,
// which is what lets upstream operators stop work early.
type pageIter struct {
	src   rowIter
	skip  int
	limit int
}

func (it *pageIter) next() []rdf.TermID {
	for it.skip > 0 {
		if it.src.next() == nil {
			it.skip = 0
			return nil
		}
		it.skip--
	}
	if it.limit == 0 {
		return nil
	}
	row := it.src.next()
	if row == nil {
		return nil
	}
	if it.limit > 0 {
		it.limit--
	}
	return row
}

// --- Cursor: the public streaming API ---

// Cursor is a pull-based handle over an executing query. Rows are
// produced on demand:
//
//	cur, err := sparql.EvalCursor(ds, q)
//	...
//	defer cur.Close()
//	for cur.Next(ctx) {
//	    row := cur.Row()
//	    ...
//	}
//	if err := cur.Err(); err != nil { ... }
//
// Next checks ctx once per row, so canceling the context (a dropped
// client connection, a timeout) aborts evaluation promptly; Err then
// returns ctx's error. A cursor holds no locks or goroutines between
// Next calls — abandoning one without Close is safe — but it does not
// snapshot the dataset: rows reflect index state at the moment their
// upstream scan ran, so writes concurrent with a drain may or may not
// be observed (use Dataset.Clone for point-in-time reads).
//
// Cursors are not safe for concurrent use.
type Cursor struct {
	e       *evaluator
	it      rowIter
	form    QueryForm
	vars    []string
	slots   []int
	row     []rdf.TermID
	err     error
	done    bool
	rows    int64 // solutions emitted, flushed to obs on finish
	onClose []func()
}

// EvalCursor compiles q against ds and returns a cursor positioned
// before the first solution. Evaluation is lazy: work happens inside
// Next, and stops as soon as the cursor is done, closed, or canceled.
// LIMIT/OFFSET (and DISTINCT) are enforced inside the pipeline, so a
// paged query costs O(page), not O(result).
func EvalCursor(ds *rdf.Dataset, q *Query) (*Cursor, error) {
	return EvalCursorTrace(ds, q, nil)
}

// EvalCursorTrace is EvalCursor with a query trace attached: the
// planner annotates tr (plan summary, cache hit/miss, plan stage
// duration), and when tr.Detail is set every operator is wrapped in a
// span for EXPLAIN output. tr may be nil, which is exactly EvalCursor.
func EvalCursorTrace(ds *rdf.Dataset, q *Query, tr *obs.Trace) (*Cursor, error) {
	lay := q.layout()
	e := &evaluator{ds: ds, dict: ds.Dict(), lay: lay, ctx: context.Background(), trace: tr}
	planT0 := time.Now()
	gp, err := e.plan(q)
	planDur := time.Since(planT0)
	obsStagePlan.Observe(planDur.Seconds())
	tr.StageDur("plan", planDur)
	if err != nil {
		return nil, err
	}
	init := e.newRow()
	for i := range init {
		init[i] = unboundID
	}
	src := e.chainRoot(gp, &onceIter{row: init})
	c := &Cursor{e: e, form: q.Form}
	if q.Form == FormAsk {
		c.it = e.traced(&pageIter{src: src, limit: 1}, "ask", "ask", "", src)
		return c, nil
	}
	if q.Star {
		c.vars = q.Where.AllVars()
	} else {
		c.vars = q.Variables
	}
	c.slots = make([]int, len(c.vars))
	for i, v := range c.vars {
		c.slots[i] = lay.index[v]
	}
	if len(q.Aggregates) > 0 || len(q.GroupBy) > 0 {
		// The grouping barrier (plus HAVING) replaces the WHERE stream;
		// the ordinary tail operators below then see one row per group
		// with the aggregate aliases bound.
		src = e.traced(e.aggregateChain(q, src), "group-aggregate", "group-aggregate", "", src)
	}
	switch {
	case q.Limit == 0:
		// An empty page needs no evaluation at all.
		c.it = emptyIter{}
	case len(q.OrderBy) > 0:
		// ORDER BY keys may tie distinct rows, so the page cut needs the
		// stable full sort; the sort precedes projection-level DISTINCT
		// and may use non-projected keys.
		kSlots := make([]int, len(q.OrderBy))
		for ki, k := range q.OrderBy {
			kSlots[ki] = lay.index[k.Var]
		}
		it := e.traced(&sortIter{e: e, src: src, keys: q.OrderBy, kSlots: kSlots}, "sort", "sort", "", src)
		if q.Distinct {
			it = e.traced(&distinctIter{src: it, slots: c.slots, seen: map[string]struct{}{}}, "distinct", "distinct", "", it)
		}
		c.it = e.traced(&pageIter{src: it, skip: q.Offset, limit: q.Limit}, "page", "page", "", it)
	case q.Limit > 0:
		if q.Offset > math.MaxInt-q.Limit {
			// offset+limit would overflow int (a hostile offset near
			// MaxInt, reachable through REST paging): the bounded top-k
			// cannot represent the page cut, so run the unbounded
			// canonical barrier and skip past the offset instead — the
			// same rows for any offset, without the overflowed capacity
			// silently dropping the whole result.
			it := e.traced(&canonIter{e: e, src: src, slots: c.slots, distinct: q.Distinct}, "canon-sort", "canon-sort", "", src)
			c.it = e.traced(&pageIter{src: it, skip: q.Offset, limit: q.Limit}, "page", "page", "", it)
			break
		}
		// Canonical order with a page bound: keep only offset+limit rows.
		top := e.traced(&topKIter{e: e, src: src, slots: c.slots, k: q.Offset + q.Limit, distinct: q.Distinct}, "top-k", "top-k", "", src)
		c.it = e.traced(&pageIter{src: top, skip: q.Offset, limit: q.Limit}, "page", "page", "", top)
	default:
		it := e.traced(&canonIter{e: e, src: src, slots: c.slots, distinct: q.Distinct}, "canon-sort", "canon-sort", "", src)
		if q.Offset > 0 {
			it = e.traced(&pageIter{src: it, skip: q.Offset, limit: -1}, "page", "page", "", it)
		}
		c.it = it
	}
	return c, nil
}

// Next advances to the next solution, reporting whether one is
// available. It returns false when the result is exhausted, the cursor
// is closed, or ctx is canceled — distinguish the last case with Err.
func (c *Cursor) Next(ctx context.Context) bool {
	if c.done || c.err != nil {
		return false
	}
	c.e.ctx = ctx
	if !c.e.poll() {
		c.err = c.e.err
		c.finish()
		return false
	}
	r := c.it.next()
	if c.e.err != nil {
		c.err = c.e.err
		c.finish()
		return false
	}
	if r == nil {
		// Surface a cancellation that raced the final row.
		if err := ctx.Err(); err != nil {
			c.err = err
		}
		c.finish()
		return false
	}
	c.row = r
	c.rows++
	return true
}

// Rows returns the number of solutions emitted so far.
func (c *Cursor) Rows() int64 { return c.rows }

// Err returns the first error encountered while iterating (typically
// the context's error after a cancellation), or nil after a clean
// drain.
func (c *Cursor) Err() error { return c.err }

// Close stops iteration early. It is idempotent, and optional for
// cursors with no OnClose callbacks — a cursor holds no locks or
// goroutines — but a cursor whose producer registered cleanup (the mdm
// facade pins a storage epoch per cursor) must be closed or drained to
// release it. Close makes Next return false immediately.
func (c *Cursor) Close() {
	c.finish()
}

// OnClose registers f to run when the cursor finishes: on Close, or
// when iteration ends by exhaustion, error or cancellation — whichever
// comes first, exactly once. Callbacks run in registration order.
func (c *Cursor) OnClose(f func()) {
	if c.done {
		f()
		return
	}
	c.onClose = append(c.onClose, f)
}

// finish terminates iteration and fires OnClose callbacks exactly once.
func (c *Cursor) finish() {
	if !c.done && c.rows > 0 {
		obsRowsEmitted.Add(float64(c.rows))
	}
	c.done, c.row = true, nil
	cbs := c.onClose
	c.onClose = nil
	for _, f := range cbs {
		f()
	}
}

// Vars returns the projection list in order (nil for ASK).
func (c *Cursor) Vars() []string { return c.vars }

// Form reports the query form. For ASK, Next reports the answer: true
// exactly once when the pattern has at least one solution.
func (c *Cursor) Form() QueryForm { return c.form }

// Row returns a view of the current solution. It is valid until the
// next call to Next or Close; the terms it decodes remain valid
// forever.
func (c *Cursor) Row() Row { return Row{c: c} }

// Row is one solution viewed through the cursor's projection.
type Row struct{ c *Cursor }

// Len returns the number of projected columns.
func (r Row) Len() int { return len(r.c.vars) }

// Var returns the name of projected column col.
func (r Row) Var(col int) string { return r.c.vars[col] }

// Term returns the term bound to projected column col; ok is false when
// the variable is unbound in this solution (OPTIONAL miss).
func (r Row) Term(col int) (rdf.Term, bool) {
	row := r.c.row
	if row == nil {
		return rdf.Term{}, false
	}
	if id := row[r.c.slots[col]]; id != unboundID {
		return r.c.e.term(id), true
	}
	return rdf.Term{}, false
}

// Binding decodes the solution into a fresh Binding. Unbound variables
// are absent from the map.
func (r Row) Binding() Binding {
	b := make(Binding, len(r.c.vars))
	for i, v := range r.c.vars {
		if t, ok := r.Term(i); ok {
			b[v] = t
		}
	}
	return b
}

// Solutions adapts the cursor to a range-over-func iterator of decoded
// bindings:
//
//	for b := range cur.Solutions(ctx) { ... }
//	if err := cur.Err(); err != nil { ... }
//
// Iteration stops on exhaustion, cancellation (check Err afterwards),
// or break.
func (c *Cursor) Solutions(ctx context.Context) iter.Seq[Binding] {
	return func(yield func(Binding) bool) {
		for c.Next(ctx) {
			if !yield(c.Row().Binding()) {
				return
			}
		}
	}
}
