package sparql

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"mdm/internal/rdf"
)

// joinFixture mirrors the BenchmarkSPARQLJoinRows dataset: a 3-pattern
// BGP over ~10k triples producing exactly 9000 solution rows — wide
// enough that a query canceled mid-join provably stopped early.
func joinFixture() (*rdf.Dataset, *Query) {
	ds := rdf.NewDataset()
	g := ds.Default()
	ex := func(p, i int) rdf.Term { return rdf.IRI(fmt.Sprintf("http://ex.org/n%d_%d", p, i)) }
	p0, p1, p2, p3 := rdf.IRI("http://ex.org/p0"), rdf.IRI("http://ex.org/p1"),
		rdf.IRI("http://ex.org/p2"), rdf.IRI("http://ex.org/p3")
	for x := 0; x < 1000; x++ {
		g.MustAdd(rdf.T(ex(0, x), p0, ex(1, x%100)))
		g.MustAdd(rdf.T(ex(0, x), p2, rdf.IntLit(int64(x))))
	}
	for m := 0; m < 100; m++ {
		for k := 0; k < 9; k++ {
			g.MustAdd(rdf.T(ex(1, m), p1, rdf.IntLit(int64(m*9+k))))
		}
	}
	for i := 0; i < 7100; i++ {
		g.MustAdd(rdf.T(ex(2, i), p3, rdf.IntLit(int64(i))))
	}
	q := MustParse(`
PREFIX ex: <http://ex.org/>
SELECT ?a ?c ?w WHERE { ?a ex:p0 ?b . ?b ex:p1 ?c . ?a ex:p2 ?w }`)
	return ds, q
}

// countdownCtx reports itself canceled after its Err method has been
// consulted n times: a deterministic way to cancel "mid-join" at an
// exact poll count, with no goroutines or sleeps.
type countdownCtx struct {
	context.Context
	n atomic.Int64
}

func (c *countdownCtx) Err() error {
	if c.n.Add(-1) < 0 {
		return context.Canceled
	}
	return c.Context.Err()
}

func TestCursorCancelMidJoin(t *testing.T) {
	ds, q := joinFixture()
	ctx := &countdownCtx{Context: context.Background()}
	ctx.n.Store(500) // far fewer polls than the 9000 result rows

	cur, err := EvalCursor(ds, q)
	if err != nil {
		t.Fatal(err)
	}
	rows := 0
	for cur.Next(ctx) {
		rows++
	}
	if rows != 0 {
		// The pipeline tail is a barrier, so the first Next drains the
		// join; cancellation must fire inside that drain.
		t.Fatalf("Next yielded %d rows under a canceled context", rows)
	}
	if !errors.Is(cur.Err(), context.Canceled) {
		t.Fatalf("Err() = %v, want context.Canceled", cur.Err())
	}
	// A canceled cursor stays canceled.
	if cur.Next(context.Background()) {
		t.Fatal("Next succeeded after cancellation")
	}
}

func TestEvalContextCancellation(t *testing.T) {
	ds, q := joinFixture()

	// Pre-canceled context: no work at all.
	pre, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := EvalContext(pre, ds, q); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled EvalContext err = %v", err)
	}

	// Mid-join cancellation surfaces the context error.
	ctx := &countdownCtx{Context: context.Background()}
	ctx.n.Store(1000)
	if _, err := EvalContext(ctx, ds, q); !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-join EvalContext err = %v", err)
	}

	// Concurrent cancellation returns promptly (generous bound: the
	// full drain takes ~15ms, so 5s only catches a hang).
	cctx, ccancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := EvalContext(cctx, ds, q)
		done <- err
	}()
	ccancel()
	select {
	case err := <-done:
		// The race between the final row and the cancel is legitimate;
		// only a hang or a non-context error is a failure.
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("concurrent cancel err = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("EvalContext did not return after cancel")
	}
}

// TestCursorPagedReadIsPrefix pins the paged-read contract: draining k
// rows from a fresh cursor and stopping yields exactly the first k rows
// of the fully materialized result (no ORDER BY, so the canonical order
// is total and deterministic).
func TestCursorPagedReadIsPrefix(t *testing.T) {
	ds, q := joinFixture()
	full, err := Eval(ds, q)
	if err != nil {
		t.Fatal(err)
	}
	if full.Len() != 9000 {
		t.Fatalf("full drain rows = %d", full.Len())
	}
	ctx := context.Background()
	for _, k := range []int{1, 7, 100} {
		cur, err := EvalCursor(ds, q)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < k; i++ {
			if !cur.Next(ctx) {
				t.Fatalf("k=%d: cursor exhausted at row %d: %v", k, i, cur.Err())
			}
			row := cur.Row()
			for col := range cur.Vars() {
				ct, cok := row.Term(col)
				ft, fok := full.TermAt(i, col)
				if cok != fok || ct != ft {
					t.Fatalf("k=%d row %d col %d: cursor=(%v,%v) full=(%v,%v)", k, i, col, ct, cok, ft, fok)
				}
			}
		}
		cur.Close()
		if cur.Next(ctx) {
			t.Fatal("Next succeeded after Close")
		}
		if cur.Err() != nil {
			t.Fatalf("Err after clean partial drain = %v", cur.Err())
		}
	}
}

// TestCursorLimitEqualsFullPrefix: a query-level LIMIT (served by the
// bounded top-k operator) must return exactly the prefix of the
// unlimited result, including with OFFSET and DISTINCT.
func TestCursorLimitEqualsFullPrefix(t *testing.T) {
	ds, base := joinFixture()
	full, err := Eval(ds, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ limit, offset int }{
		{10, 0}, {1, 0}, {25, 13}, {0, 5}, {10, 8995}, {10, 9005},
	} {
		q := MustParse(fmt.Sprintf("%s LIMIT %d OFFSET %d", joinFixtureQuerySrc, tc.limit, tc.offset))
		page, err := Eval(ds, q)
		if err != nil {
			t.Fatal(err)
		}
		want := full.Len() - tc.offset
		if want < 0 {
			want = 0
		}
		if want > tc.limit {
			want = tc.limit
		}
		if page.Len() != want {
			t.Fatalf("limit=%d offset=%d: rows = %d, want %d", tc.limit, tc.offset, page.Len(), want)
		}
		for i := 0; i < page.Len(); i++ {
			for col := range page.Vars {
				pt, pok := page.TermAt(i, col)
				ft, fok := full.TermAt(tc.offset+i, col)
				if pok != fok || pt != ft {
					t.Fatalf("limit=%d offset=%d row %d: page=(%v,%v) full=(%v,%v)",
						tc.limit, tc.offset, i, pt, pok, ft, fok)
				}
			}
		}
	}
}

const joinFixtureQuerySrc = `
PREFIX ex: <http://ex.org/>
SELECT ?a ?c ?w WHERE { ?a ex:p0 ?b . ?b ex:p1 ?c . ?a ex:p2 ?w }`

func TestCursorSolutionsSeq(t *testing.T) {
	ds := rdf.NewDataset()
	ex := func(s string) rdf.Term { return rdf.IRI("http://ex.org/" + s) }
	for i := 0; i < 5; i++ {
		ds.Default().MustAdd(rdf.T(ex(fmt.Sprintf("s%d", i)), ex("p"), rdf.IntLit(int64(i))))
	}
	ctx := context.Background()

	cur, err := RunCursor(ds, `PREFIX ex: <http://ex.org/> SELECT ?s ?v WHERE { ?s ex:p ?v }`)
	if err != nil {
		t.Fatal(err)
	}
	var got []Binding
	for b := range cur.Solutions(ctx) {
		got = append(got, b)
	}
	if cur.Err() != nil {
		t.Fatal(cur.Err())
	}
	if len(got) != 5 {
		t.Fatalf("solutions = %d", len(got))
	}
	// Break mid-iteration: the cursor keeps its position.
	cur2, err := RunCursor(ds, `PREFIX ex: <http://ex.org/> SELECT ?s ?v WHERE { ?s ex:p ?v }`)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for range cur2.Solutions(ctx) {
		n++
		if n == 2 {
			break
		}
	}
	rest := 0
	for range cur2.Solutions(ctx) {
		rest++
	}
	if n != 2 || rest != 3 {
		t.Fatalf("partial = %d, rest = %d", n, rest)
	}
}

func TestCursorAsk(t *testing.T) {
	ds := rdf.NewDataset()
	ds.Default().MustAdd(rdf.T(rdf.IRI("s"), rdf.IRI("p"), rdf.IRI("o")))
	ctx := context.Background()

	cur, err := RunCursor(ds, `ASK { <s> <p> <o> . }`)
	if err != nil {
		t.Fatal(err)
	}
	if cur.Form() != FormAsk {
		t.Fatalf("form = %v", cur.Form())
	}
	if !cur.Next(ctx) {
		t.Fatal("ASK with a witness should yield one row")
	}
	if cur.Next(ctx) {
		t.Fatal("ASK should yield at most one row")
	}
	cur, err = RunCursor(ds, `ASK { <s> <p> <nope> . }`)
	if err != nil {
		t.Fatal(err)
	}
	if cur.Next(ctx) {
		t.Fatal("ASK without a witness should yield no rows")
	}
	if cur.Err() != nil {
		t.Fatal(cur.Err())
	}
}

// TestCursorRowAccessors covers Row's column-level API including
// OPTIONAL misses.
func TestCursorRowAccessors(t *testing.T) {
	ds := rdf.NewDataset()
	ex := func(s string) rdf.Term { return rdf.IRI("http://ex.org/" + s) }
	ds.Default().MustAdd(rdf.T(ex("s0"), ex("p"), rdf.IntLit(1)))
	ds.Default().MustAdd(rdf.T(ex("s1"), ex("p"), rdf.IntLit(2)))
	ds.Default().MustAdd(rdf.T(ex("s1"), ex("q"), rdf.Lit("x")))

	cur, err := RunCursor(ds, `PREFIX ex: <http://ex.org/>
SELECT ?s ?w WHERE { ?s ex:p ?v OPTIONAL { ?s ex:q ?w } }`)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if got := cur.Vars(); len(got) != 2 || got[0] != "s" || got[1] != "w" {
		t.Fatalf("vars = %v", got)
	}
	// Canonical order sorts by ?s: s0 (w unbound) then s1 (w = "x").
	if !cur.Next(ctx) {
		t.Fatal("no first row")
	}
	row := cur.Row()
	if row.Len() != 2 || row.Var(0) != "s" {
		t.Fatalf("row shape: len=%d var0=%q", row.Len(), row.Var(0))
	}
	if s, ok := row.Term(0); !ok || s != ex("s0") {
		t.Fatalf("row0 ?s = %v, %v", s, ok)
	}
	if _, ok := row.Term(1); ok {
		t.Fatal("row0 ?w should be unbound")
	}
	if b := row.Binding(); len(b) != 1 || b["s"] != ex("s0") {
		t.Fatalf("row0 binding = %v", b)
	}
	if !cur.Next(ctx) {
		t.Fatal("no second row")
	}
	if w, ok := cur.Row().Term(1); !ok || w != rdf.Lit("x") {
		t.Fatalf("row1 ?w = %v, %v", w, ok)
	}
	if cur.Next(ctx) {
		t.Fatal("unexpected third row")
	}
}

func TestCursorOnClose(t *testing.T) {
	ds, q := joinFixture()

	// Fires exactly once on explicit Close, even when Close is repeated.
	cur, err := EvalCursor(ds, q)
	if err != nil {
		t.Fatal(err)
	}
	var fired atomic.Int64
	cur.OnClose(func() { fired.Add(1) })
	cur.Next(context.Background())
	cur.Close()
	cur.Close()
	if fired.Load() != 1 {
		t.Fatalf("OnClose fired %d times after Close", fired.Load())
	}

	// Fires when iteration drains naturally, without an explicit Close.
	cur, err = EvalCursor(ds, q)
	if err != nil {
		t.Fatal(err)
	}
	fired.Store(0)
	cur.OnClose(func() { fired.Add(1) })
	for cur.Next(context.Background()) {
	}
	if err := cur.Err(); err != nil {
		t.Fatal(err)
	}
	if fired.Load() != 1 {
		t.Fatalf("OnClose fired %d times after drain", fired.Load())
	}

	// Registered after the cursor finished: runs immediately.
	ran := false
	cur.OnClose(func() { ran = true })
	if !ran {
		t.Fatal("OnClose after finish did not run immediately")
	}
}
