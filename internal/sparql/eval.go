package sparql

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"mdm/internal/obs"
	"mdm/internal/rdf"
)

// This file holds the shared evaluation substrate: the variable-slot
// layout, the evaluator state (arena, dictionary snapshot, context
// polling), pattern planning, and the materialized Result. The
// pull-based operator pipeline itself — the primary evaluation product
// since the cursor redesign — lives in cursor.go; Eval and EvalContext
// are thin wrappers that drain a Cursor. The retained map-based
// reference evaluator lives in oracle_test.go and is used by the
// randomized equivalence harness in spec_test.go.

// Binding maps variable names (without '?') to terms. It is the decoded
// form of one solution row.
type Binding map[string]rdf.Term

// Clone returns a copy of the binding.
func (b Binding) Clone() Binding {
	out := make(Binding, len(b)+1)
	for k, v := range b {
		out[k] = v
	}
	return out
}

// Lookup implements Env.
func (b Binding) Lookup(name string) (rdf.Term, bool) {
	t, ok := b[name]
	return t, ok
}

// unboundID marks an unbound variable slot in an ID row. It reuses
// rdf.AnyID, which is never assigned to a real term — and which doubles
// as the wildcard when an unbound slot is substituted into a match
// pattern, so resolution needs no separate translation step.
const unboundID = rdf.AnyID

// slotLayout is a query's compiled variable-to-column mapping: every
// variable the query can bind, project, order by or filter on gets a
// fixed column index in the solution rows.
type slotLayout struct {
	names []string       // slot -> variable name, sorted
	index map[string]int // variable name -> slot
}

func compileLayout(q *Query) *slotLayout {
	set := map[string]bool{}
	q.Where.collectVars(set)
	for _, v := range q.Variables {
		set[v] = true
	}
	for _, k := range q.OrderBy {
		set[k.Var] = true
	}
	for _, v := range q.GroupBy {
		set[v] = true
	}
	for _, a := range q.Aggregates {
		if a.Var != "" {
			set[a.Var] = true
		}
		set[a.As] = true
	}
	for _, h := range q.Having {
		h.Vars(set)
	}
	names := make([]string, 0, len(set))
	for v := range set {
		names = append(names, v)
	}
	sort.Strings(names)
	index := make(map[string]int, len(names))
	for i, v := range names {
		index[v] = i
	}
	return &slotLayout{names: names, index: index}
}

// Result is a fully materialized query answer: a thin view over a
// drained Cursor. Solution rows are kept in dictionary-encoded form;
// Solutions, Term and Table decode them on demand
// (decode-at-projection). Callers that only need a page of a large
// result should prefer EvalCursor, which stops work as soon as the page
// is complete.
type Result struct {
	// Vars is the projection list in order.
	Vars []string
	// Bool is the ASK answer when the query form is ASK.
	Bool bool
	// Form echoes the query form.
	Form QueryForm

	rows  [][]rdf.TermID // full-width solution rows
	slots []int          // row column per Vars entry
	terms []rdf.Term     // dictionary snapshot covering every row ID

	solsOnce sync.Once
	sols     []Binding
}

// Len returns the number of solution rows.
func (r *Result) Len() int { return len(r.rows) }

// Term returns the term bound to projected variable v in solution row i;
// ok is false when v is unbound in that row (OPTIONAL miss) or not in
// the projection.
func (r *Result) Term(i int, v string) (rdf.Term, bool) {
	for vi, name := range r.Vars {
		if name == v {
			return r.TermAt(i, vi)
		}
	}
	return rdf.Term{}, false
}

// TermAt is the column-index form of Term: col indexes Vars. Callers
// iterating whole result tables should prefer it — it skips the
// per-cell variable-name scan.
func (r *Result) TermAt(i, col int) (rdf.Term, bool) {
	if id := r.rows[i][r.slots[col]]; id != unboundID {
		return r.terms[id], true
	}
	return rdf.Term{}, false
}

// Solutions decodes all rows to Bindings. Unbound variables are absent
// from their row's map. The decode runs once and is memoized; the
// returned slice is shared, so callers must not mutate it.
func (r *Result) Solutions() []Binding {
	r.solsOnce.Do(func() {
		r.sols = make([]Binding, len(r.rows))
		for i, row := range r.rows {
			b := make(Binding, len(r.Vars))
			for vi, v := range r.Vars {
				if id := row[r.slots[vi]]; id != unboundID {
					b[v] = r.terms[id]
				}
			}
			r.sols[i] = b
		}
	})
	return r.sols
}

// Table renders the result as an aligned text table (for demos/tests).
// Unbound cells render empty.
func (r *Result) Table() string {
	if r.Form == FormAsk {
		return fmt.Sprintf("ASK -> %v\n", r.Bool)
	}
	widths := make([]int, len(r.Vars))
	for i, v := range r.Vars {
		widths[i] = len(v) + 1
	}
	cells := make([][]string, len(r.rows))
	for si, s := range r.rows {
		row := make([]string, len(r.Vars))
		for i := range r.Vars {
			if id := s[r.slots[i]]; id != unboundID {
				row[i] = r.terms[id].Value
			}
			if len(row[i]) > widths[i] {
				widths[i] = len(row[i])
			}
		}
		cells[si] = row
	}
	var sb strings.Builder
	for i, v := range r.Vars {
		fmt.Fprintf(&sb, "%-*s", widths[i]+2, "?"+v)
	}
	sb.WriteString("\n")
	for _, row := range cells {
		for i, c := range row {
			fmt.Fprintf(&sb, "%-*s", widths[i]+2, c)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// evaluator carries the evaluation state shared by every operator of
// one pipeline: dataset, slot layout, a row arena with a free list, a
// cached dictionary snapshot for decoding, and the context/error pair
// that cancellation and failures propagate through.
type evaluator struct {
	ds    *rdf.Dataset
	dict  *rdf.Dict
	lay   *slotLayout
	arena []rdf.TermID   // tail of the current allocation chunk
	free  [][]rdf.TermID // recycled rows (e.g. top-k evictions)
	terms []rdf.Term     // lazily refreshed dictionary snapshot

	// tables caches hash-join build sides per plan node for the lifetime
	// of this evaluation, so sub-chains instantiated once per input row
	// (OPTIONAL, UNION, GRAPH) share one build instead of re-scanning.
	tables map[*triplePlan]*hashTable

	// ptables caches the partitioned build sides of parallel segments,
	// and par is the worker budget this evaluation planned with (set by
	// plan; <= 1 means sequential). Morsel workers run on private
	// evaluators — see parallel.go — so neither field is ever touched
	// off the caller's goroutine.
	ptables map[*triplePlan]*partitionedTable
	par     int

	// Path-operator state (path.go): pooled visited bitsets and
	// frontier buffer for the closure fixpoint (pooled because nested
	// closures need independent sets), and the per-graph node set that
	// both-ends-unbound path patterns range over.
	visitedPool  []*visitedSet
	frontierPool []rdf.TermID
	pathNodes    map[*rdf.Graph][]rdf.TermID

	// ctx is the caller's context for the in-flight Next call; err
	// latches the first failure (typically ctx.Err()) and makes every
	// operator wind down: next() returns nil once err is set.
	ctx context.Context
	err error

	// trace is the query's observability trace, nil on the untraced
	// path. The planner annotates it always; operator wrapping
	// (metrics.go traced) happens only when trace.Detail is set, so a
	// plain evaluation pays one nil-check per operator construction.
	trace *obs.Trace
}

// poll reports whether evaluation may continue, latching the context
// error when the caller's context is done. Operators call it once per
// pulled row (and periodically inside long index scans), which bounds
// how much work a canceled query can still do.
func (e *evaluator) poll() bool {
	if e.err != nil {
		return false
	}
	if err := e.ctx.Err(); err != nil {
		e.err = err
		return false
	}
	return true
}

// newRow carves one uninitialized row from the arena (or the free
// list), growing the arena in chunks so row allocation amortizes to a
// copy.
func (e *evaluator) newRow() []rdf.TermID {
	w := len(e.lay.names)
	if w == 0 {
		// Zero-width rows (queries without variables) must still be
		// non-nil: nil is the iterator exhaustion signal.
		return zeroWidthRow
	}
	if n := len(e.free); n > 0 {
		r := e.free[n-1]
		e.free = e.free[:n-1]
		return r
	}
	if len(e.arena) < w {
		e.arena = make([]rdf.TermID, 256*w)
	}
	r := e.arena[:w:w]
	e.arena = e.arena[w:]
	return r
}

// zeroWidthRow is the shared row for variable-free queries; being
// width 0 it is never written to.
var zeroWidthRow = make([]rdf.TermID, 0)

// release returns a row to the free list. Only owners of provably
// unreferenced rows (a barrier evicting a copy it made itself) may call
// it.
func (e *evaluator) release(r []rdf.TermID) {
	if len(r) > 0 {
		e.free = append(e.free, r)
	}
}

// extend returns a fresh row initialized as a copy of parent.
func (e *evaluator) extend(parent []rdf.TermID) []rdf.TermID {
	r := e.newRow()
	copy(r, parent)
	return r
}

// term decodes an ID (must not be unboundID). The snapshot is refreshed
// when the ID postdates it; the dictionary is append-only, so a refresh
// covers every ID interned before the call.
func (e *evaluator) term(id rdf.TermID) rdf.Term {
	if int(id) >= len(e.terms) {
		e.terms = e.dict.Snapshot()
	}
	return e.terms[id]
}

// rowEnv adapts an ID row to the filter Env, decoding only the
// variables the expression actually reads.
type rowEnv struct {
	e   *evaluator
	row []rdf.TermID
}

// Lookup implements Env.
func (env *rowEnv) Lookup(name string) (rdf.Term, bool) {
	slot, ok := env.e.lay.index[name]
	if !ok {
		return rdf.Term{}, false
	}
	id := env.row[slot]
	if id == unboundID {
		return rdf.Term{}, false
	}
	return env.e.term(id), true
}

// Eval evaluates a query against a dataset and materializes the full
// answer. The default graph is the active graph except inside GRAPH
// blocks. It is EvalContext with a background context.
func Eval(ds *rdf.Dataset, q *Query) (*Result, error) {
	return EvalContext(context.Background(), ds, q)
}

// EvalContext evaluates a query and materializes the answer, checking
// ctx once per produced row: a canceled context aborts evaluation and
// returns ctx's error. Callers that want to stop after a page of rows
// should use EvalCursor instead.
func EvalContext(ctx context.Context, ds *rdf.Dataset, q *Query) (*Result, error) {
	c, err := EvalCursor(ds, q)
	if err != nil {
		return nil, err
	}
	res := &Result{Form: q.Form}
	if q.Form == FormAsk {
		res.Bool = c.Next(ctx)
		if err := c.Err(); err != nil {
			return nil, err
		}
		return res, nil
	}
	res.Vars = c.vars
	res.slots = c.slots
	for c.Next(ctx) {
		// The tail operator of every SELECT pipeline is a barrier whose
		// rows stay valid after the cursor advances, so the drain can
		// alias them instead of copying.
		res.rows = append(res.rows, c.row)
	}
	if err := c.Err(); err != nil {
		return nil, err
	}
	if len(res.rows) > 0 {
		res.terms = c.e.dict.Snapshot()
	}
	return res, nil
}

// compareOrder orders terms numerically when both parse as numbers, else
// by rdf.Compare.
func compareOrder(a, b rdf.Term) int {
	fa, erra := a.Float()
	fb, errb := b.Float()
	if erra == nil && errb == nil {
		switch {
		case fa < fb:
			return -1
		case fa > fb:
			return 1
		default:
			return 0
		}
	}
	return rdf.Compare(a, b)
}

// orderPatterns arranges a group's patterns for evaluation: basic
// patterns (triples and property paths) before OPTIONALs so left joins
// see the full base solution set, preserving the relative order of
// non-OPTIONAL patterns; then each contiguous run of basic patterns is
// greedily reordered by estimated selectivity. Runs never cross a
// UNION or GRAPH boundary: this evaluator threads accumulated rows
// into sub-groups, where a branch FILTER can observe them, so only
// pure basic-join prefixes — whose joins are commutative — are safe to
// permute.
func orderPatterns(g *rdf.Graph, ps []Pattern) []Pattern {
	if len(ps) <= 1 {
		return ps
	}
	out := make([]Pattern, 0, len(ps))
	for _, p := range ps {
		if _, ok := p.(Optional); !ok {
			out = append(out, p)
		}
	}
	for _, p := range ps {
		if _, ok := p.(Optional); ok {
			out = append(out, p)
		}
	}
	for lo := 0; lo < len(out); {
		if !isBasicPattern(out[lo]) {
			lo++
			continue
		}
		hi := lo + 1
		for hi < len(out) && isBasicPattern(out[hi]) {
			hi++
		}
		orderBasicPrefix(g, out[lo:hi])
		lo = hi
	}
	return out
}

// isBasicPattern reports whether p joins commutatively in its group: a
// triple pattern or a property-path pattern.
func isBasicPattern(p Pattern) bool {
	switch p.(type) {
	case TriplePattern, PathPattern:
		return true
	}
	return false
}

// orderBasicPrefix greedily orders a run of basic patterns in place by
// estimated selectivity: at each step it picks the cheapest remaining
// pattern among those that share a variable with the already-chosen
// prefix (avoiding accidental cartesian products), falling back to the
// globally cheapest when none connects. Estimates are
// index-cardinality counts from Graph.Count with variables widened to
// wildcards (path operators combine per-link counts, see pathASTEst),
// so they cost a handful of map-length reads per pattern.
func orderBasicPrefix(g *rdf.Graph, ps []Pattern) {
	if len(ps) <= 1 {
		return
	}
	if len(ps) == 2 {
		// Two-pattern joins need no connectivity analysis: evaluate the
		// cheaper side first.
		if basicEst(g, ps[1]) < basicEst(g, ps[0]) {
			ps[0], ps[1] = ps[1], ps[0]
		}
		return
	}
	est := make([]int, len(ps))
	for i := range ps {
		est[i] = basicEst(g, ps[i])
	}
	bound := map[string]bool{}
	for k := range ps {
		best := -1
		bestConn := false
		for i := k; i < len(ps); i++ {
			conn := k == 0 || patConnected(ps[i], bound)
			switch {
			case best == -1:
			case conn && !bestConn:
			case conn == bestConn && est[i] < est[best]:
			default:
				continue
			}
			best, bestConn = i, conn
		}
		ps[k], ps[best] = ps[best], ps[k]
		est[k], est[best] = est[best], est[k]
		ps[k].Vars(bound)
	}
}

// basicEst estimates a basic pattern's match cardinality against the
// active graph.
func basicEst(g *rdf.Graph, p Pattern) int {
	switch bp := p.(type) {
	case TriplePattern:
		return patEst(g, bp)
	case PathPattern:
		return pathASTEst(g, bp.Path)
	}
	return 0
}

// patEst estimates a pattern's match cardinality against the active
// graph.
func patEst(g *rdf.Graph, tp TriplePattern) int {
	return g.Count(patTerm(tp.S), patTerm(tp.P), patTerm(tp.O))
}

// patTerm widens a pattern node to a match term: variables become Any.
func patTerm(n Node) rdf.Term {
	if n.IsVar() {
		return rdf.Any
	}
	return n.Term
}

// patConnected reports whether the pattern shares a variable with the
// bound set, or has no variables at all (a pure existence check is
// always safe to evaluate next).
func patConnected(p Pattern, bound map[string]bool) bool {
	vars := map[string]bool{}
	p.Vars(vars)
	for v := range vars {
		if bound[v] {
			return true
		}
	}
	return len(vars) == 0
}

// MustParse parses a query and panics on error; for fixtures and tests.
func MustParse(src string) *Query {
	q, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return q
}

// Run parses and evaluates src against ds in one step.
func Run(ds *rdf.Dataset, src string) (*Result, error) {
	q, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Eval(ds, q)
}

// RunContext is Run with a cancelable context.
func RunContext(ctx context.Context, ds *rdf.Dataset, src string) (*Result, error) {
	q, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return EvalContext(ctx, ds, q)
}

// RunCursor parses src and starts cursor-based evaluation in one step.
func RunCursor(ds *rdf.Dataset, src string) (*Cursor, error) {
	q, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return EvalCursor(ds, q)
}
