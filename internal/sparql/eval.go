package sparql

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"mdm/internal/rdf"
)

// This file implements the ID-row evaluation engine. Intermediate
// solutions are fixed-width []rdf.TermID rows over the dataset-shared
// dictionary; variables are mapped to row columns by a slot layout
// compiled once per query. Terms are decoded from IDs only at
// projection time (Result.Solutions / Result.Term) and lazily for
// FILTER expressions that need lexical forms. The retained map-based
// reference evaluator lives in oracle_test.go and is used by the
// randomized equivalence harness in spec_test.go.

// Binding maps variable names (without '?') to terms. It is the decoded
// form of one solution row.
type Binding map[string]rdf.Term

// Clone returns a copy of the binding.
func (b Binding) Clone() Binding {
	out := make(Binding, len(b)+1)
	for k, v := range b {
		out[k] = v
	}
	return out
}

// Lookup implements Env.
func (b Binding) Lookup(name string) (rdf.Term, bool) {
	t, ok := b[name]
	return t, ok
}

// unboundID marks an unbound variable slot in an ID row. It reuses
// rdf.AnyID, which is never assigned to a real term — and which doubles
// as the wildcard when an unbound slot is substituted into a match
// pattern, so resolution needs no separate translation step.
const unboundID = rdf.AnyID

// slotLayout is a query's compiled variable-to-column mapping: every
// variable the query can bind, project, order by or filter on gets a
// fixed column index in the solution rows.
type slotLayout struct {
	names []string       // slot -> variable name, sorted
	index map[string]int // variable name -> slot
}

func compileLayout(q *Query) *slotLayout {
	set := map[string]bool{}
	q.Where.collectVars(set)
	for _, v := range q.Variables {
		set[v] = true
	}
	for _, k := range q.OrderBy {
		set[k.Var] = true
	}
	names := make([]string, 0, len(set))
	for v := range set {
		names = append(names, v)
	}
	sort.Strings(names)
	index := make(map[string]int, len(names))
	for i, v := range names {
		index[v] = i
	}
	return &slotLayout{names: names, index: index}
}

// Result is the outcome of query evaluation. Solution rows are kept in
// dictionary-encoded form; Solutions, Term and Table decode them on
// demand (decode-at-projection).
type Result struct {
	// Vars is the projection list in order.
	Vars []string
	// Bool is the ASK answer when the query form is ASK.
	Bool bool
	// Form echoes the query form.
	Form QueryForm

	rows  [][]rdf.TermID // full-width solution rows
	slots []int          // row column per Vars entry
	terms []rdf.Term     // dictionary snapshot covering every row ID

	solsOnce sync.Once
	sols     []Binding
}

// Len returns the number of solution rows.
func (r *Result) Len() int { return len(r.rows) }

// Term returns the term bound to projected variable v in solution row i;
// ok is false when v is unbound in that row (OPTIONAL miss) or not in
// the projection.
func (r *Result) Term(i int, v string) (rdf.Term, bool) {
	for vi, name := range r.Vars {
		if name == v {
			return r.TermAt(i, vi)
		}
	}
	return rdf.Term{}, false
}

// TermAt is the column-index form of Term: col indexes Vars. Callers
// iterating whole result tables should prefer it — it skips the
// per-cell variable-name scan.
func (r *Result) TermAt(i, col int) (rdf.Term, bool) {
	if id := r.rows[i][r.slots[col]]; id != unboundID {
		return r.terms[id], true
	}
	return rdf.Term{}, false
}

// Solutions decodes all rows to Bindings. Unbound variables are absent
// from their row's map. The decode runs once and is memoized; the
// returned slice is shared, so callers must not mutate it.
func (r *Result) Solutions() []Binding {
	r.solsOnce.Do(func() {
		r.sols = make([]Binding, len(r.rows))
		for i, row := range r.rows {
			b := make(Binding, len(r.Vars))
			for vi, v := range r.Vars {
				if id := row[r.slots[vi]]; id != unboundID {
					b[v] = r.terms[id]
				}
			}
			r.sols[i] = b
		}
	})
	return r.sols
}

// Table renders the result as an aligned text table (for demos/tests).
// Unbound cells render empty.
func (r *Result) Table() string {
	if r.Form == FormAsk {
		return fmt.Sprintf("ASK -> %v\n", r.Bool)
	}
	widths := make([]int, len(r.Vars))
	for i, v := range r.Vars {
		widths[i] = len(v) + 1
	}
	cells := make([][]string, len(r.rows))
	for si, s := range r.rows {
		row := make([]string, len(r.Vars))
		for i := range r.Vars {
			if id := s[r.slots[i]]; id != unboundID {
				row[i] = r.terms[id].Value
			}
			if len(row[i]) > widths[i] {
				widths[i] = len(row[i])
			}
		}
		cells[si] = row
	}
	var sb strings.Builder
	for i, v := range r.Vars {
		fmt.Fprintf(&sb, "%-*s", widths[i]+2, "?"+v)
	}
	sb.WriteString("\n")
	for _, row := range cells {
		for i, c := range row {
			fmt.Fprintf(&sb, "%-*s", widths[i]+2, c)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// evaluator carries the evaluation state: dataset, active graph, slot
// layout, a row arena, and a cached dictionary snapshot for decoding.
type evaluator struct {
	ds     *rdf.Dataset
	dict   *rdf.Dict
	lay    *slotLayout
	active *rdf.Graph
	arena  []rdf.TermID // tail of the current allocation chunk
	terms  []rdf.Term   // lazily refreshed dictionary snapshot
}

// newRow carves one uninitialized row from the arena, growing it in
// chunks so row allocation amortizes to a copy.
func (e *evaluator) newRow() []rdf.TermID {
	w := len(e.lay.names)
	if len(e.arena) < w {
		e.arena = make([]rdf.TermID, 256*w)
	}
	r := e.arena[:w:w]
	e.arena = e.arena[w:]
	return r
}

// extend returns a fresh row initialized as a copy of parent.
func (e *evaluator) extend(parent []rdf.TermID) []rdf.TermID {
	r := e.newRow()
	copy(r, parent)
	return r
}

// term decodes an ID (must not be unboundID). The snapshot is refreshed
// when the ID postdates it; the dictionary is append-only, so a refresh
// covers every ID interned before the call.
func (e *evaluator) term(id rdf.TermID) rdf.Term {
	if int(id) >= len(e.terms) {
		e.terms = e.dict.Snapshot()
	}
	return e.terms[id]
}

// rowEnv adapts an ID row to the filter Env, decoding only the
// variables the expression actually reads.
type rowEnv struct {
	e   *evaluator
	row []rdf.TermID
}

// Lookup implements Env.
func (env *rowEnv) Lookup(name string) (rdf.Term, bool) {
	slot, ok := env.e.lay.index[name]
	if !ok {
		return rdf.Term{}, false
	}
	id := env.row[slot]
	if id == unboundID {
		return rdf.Term{}, false
	}
	return env.e.term(id), true
}

// Eval evaluates a query against a dataset. The default graph is the
// active graph except inside GRAPH blocks.
func Eval(ds *rdf.Dataset, q *Query) (*Result, error) {
	lay := q.layout()
	e := &evaluator{ds: ds, dict: ds.Dict(), lay: lay, active: ds.Default()}
	init := e.newRow()
	for i := range init {
		init[i] = unboundID
	}
	rows, err := e.group(q.Where, [][]rdf.TermID{init})
	if err != nil {
		return nil, err
	}
	res := &Result{Form: q.Form}
	if q.Form == FormAsk {
		res.Bool = len(rows) > 0
		return res, nil
	}

	// Projection list.
	if q.Star {
		res.Vars = q.Where.AllVars()
	} else {
		res.Vars = q.Variables
	}
	projSlots := make([]int, len(res.Vars))
	for i, v := range res.Vars {
		projSlots[i] = lay.index[v]
	}

	// ORDER BY before anything else so order keys may be non-projected.
	if len(q.OrderBy) > 0 {
		keySlots := make([]int, len(q.OrderBy))
		for ki, k := range q.OrderBy {
			keySlots[ki] = lay.index[k.Var]
		}
		sort.SliceStable(rows, func(i, j int) bool {
			for ki, k := range q.OrderBy {
				slot := keySlots[ki]
				a, b := rows[i][slot], rows[j][slot]
				var c int
				switch {
				case a == b:
					c = 0
				case a == unboundID:
					c = -1
				case b == unboundID:
					c = 1
				default:
					c = compareOrder(e.term(a), e.term(b))
				}
				if c != 0 {
					if k.Desc {
						return c > 0
					}
					return c < 0
				}
			}
			return false
		})
	}

	// DISTINCT over the projected columns. The dictionary is a
	// bijection, so ID equality is term equality and the key is just the
	// projected IDs' bytes.
	if q.Distinct && len(rows) > 1 {
		seen := make(map[string]struct{}, len(rows))
		key := make([]byte, 0, 4*len(projSlots))
		out := rows[:0:0]
		for _, row := range rows {
			key = key[:0]
			for _, s := range projSlots {
				id := row[s]
				key = append(key, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
			}
			if _, dup := seen[string(key)]; !dup {
				seen[string(key)] = struct{}{}
				out = append(out, row)
			}
		}
		rows = out
	}

	// Without ORDER BY the BGP iterator yields rows in unspecified
	// order; sort canonically over the projected columns so results (and
	// LIMIT/OFFSET pages) are repeatable across evaluations — REST
	// clients and golden-file consumers see stable output.
	if len(q.OrderBy) == 0 && len(rows) > 1 {
		sort.SliceStable(rows, func(i, j int) bool {
			for _, slot := range projSlots {
				a, b := rows[i][slot], rows[j][slot]
				switch {
				case a == b:
					continue
				case a == unboundID:
					return true
				case b == unboundID:
					return false
				}
				if c := rdf.Compare(e.term(a), e.term(b)); c != 0 {
					return c < 0
				}
			}
			return false
		})
	}

	// OFFSET / LIMIT.
	if q.Offset > 0 {
		if q.Offset >= len(rows) {
			rows = nil
		} else {
			rows = rows[q.Offset:]
		}
	}
	if q.Limit >= 0 && q.Limit < len(rows) {
		rows = rows[:q.Limit]
	}

	res.rows = rows
	res.slots = projSlots
	if len(rows) > 0 {
		res.terms = e.dict.Snapshot()
	}
	return res, nil
}

// compareOrder orders terms numerically when both parse as numbers, else
// by rdf.Compare.
func compareOrder(a, b rdf.Term) int {
	fa, erra := a.Float()
	fb, errb := b.Float()
	if erra == nil && errb == nil {
		switch {
		case fa < fb:
			return -1
		case fa > fb:
			return 1
		default:
			return 0
		}
	}
	return rdf.Compare(a, b)
}

// group evaluates a group graph pattern: join the patterns in sequence,
// then apply the group's filters.
func (e *evaluator) group(g *Group, input [][]rdf.TermID) ([][]rdf.TermID, error) {
	return e.ordered(orderPatterns(e.active, g.Patterns), g.Filters, input)
}

// ordered evaluates an already-planned pattern sequence plus the
// group's filters. Splitting it from group lets callers that evaluate
// the same group once per input row (OPTIONAL left joins) plan the
// pattern order a single time.
func (e *evaluator) ordered(patterns []Pattern, filters []Expr, input [][]rdf.TermID) ([][]rdf.TermID, error) {
	rows := input
	for _, pat := range patterns {
		var err error
		rows, err = e.pattern(pat, rows)
		if err != nil {
			return nil, err
		}
		if len(rows) == 0 {
			break
		}
	}
	if len(filters) > 0 && len(rows) > 0 {
		env := rowEnv{e: e}
		for _, f := range filters {
			kept := rows[:0:0]
			for _, row := range rows {
				env.row = row
				v, err := f.Eval(&env)
				if err != nil {
					continue // error => effective false
				}
				ok, err := v.AsBool()
				if err != nil || !ok {
					continue
				}
				kept = append(kept, row)
			}
			rows = kept
			if len(rows) == 0 {
				break
			}
		}
	}
	return rows, nil
}

// orderPatterns arranges a group's patterns for evaluation: triple
// patterns before OPTIONALs so left joins see the full base solution
// set, preserving the relative order of non-OPTIONAL patterns; then
// each contiguous run of triple patterns is greedily reordered by
// estimated selectivity. Runs never cross a UNION or GRAPH boundary:
// this evaluator threads accumulated rows into sub-groups, where a
// branch FILTER can observe them, so only pure triple-join prefixes —
// whose joins are commutative — are safe to permute.
func orderPatterns(g *rdf.Graph, ps []Pattern) []Pattern {
	if len(ps) <= 1 {
		return ps
	}
	out := make([]Pattern, 0, len(ps))
	for _, p := range ps {
		if _, ok := p.(Optional); !ok {
			out = append(out, p)
		}
	}
	for _, p := range ps {
		if _, ok := p.(Optional); ok {
			out = append(out, p)
		}
	}
	for lo := 0; lo < len(out); {
		if _, ok := out[lo].(TriplePattern); !ok {
			lo++
			continue
		}
		hi := lo + 1
		for hi < len(out) {
			if _, ok := out[hi].(TriplePattern); !ok {
				break
			}
			hi++
		}
		orderTriplePrefix(g, out[lo:hi])
		lo = hi
	}
	return out
}

// orderTriplePrefix greedily orders a BGP (a []Pattern known to hold
// only TriplePatterns) in place by estimated selectivity: at each step
// it picks the cheapest remaining pattern among those that share a
// variable with the already-chosen prefix (avoiding accidental cartesian
// products), falling back to the globally cheapest when none connects.
// Estimates are index-cardinality counts from Graph.Count with variables
// widened to wildcards, so they cost a handful of map-length reads per
// pattern.
func orderTriplePrefix(g *rdf.Graph, ps []Pattern) {
	if len(ps) <= 1 {
		return
	}
	if len(ps) == 2 {
		// Two-pattern joins need no connectivity analysis: evaluate the
		// cheaper side first.
		if patEst(g, ps[1].(TriplePattern)) < patEst(g, ps[0].(TriplePattern)) {
			ps[0], ps[1] = ps[1], ps[0]
		}
		return
	}
	est := make([]int, len(ps))
	for i := range ps {
		est[i] = patEst(g, ps[i].(TriplePattern))
	}
	bound := map[string]bool{}
	for k := range ps {
		best := -1
		bestConn := false
		for i := k; i < len(ps); i++ {
			conn := k == 0 || patConnected(ps[i].(TriplePattern), bound)
			switch {
			case best == -1:
			case conn && !bestConn:
			case conn == bestConn && est[i] < est[best]:
			default:
				continue
			}
			best, bestConn = i, conn
		}
		ps[k], ps[best] = ps[best], ps[k]
		est[k], est[best] = est[best], est[k]
		ps[k].(TriplePattern).Vars(bound)
	}
}

// patEst estimates a pattern's match cardinality against the active
// graph.
func patEst(g *rdf.Graph, tp TriplePattern) int {
	return g.Count(patTerm(tp.S), patTerm(tp.P), patTerm(tp.O))
}

// patTerm widens a pattern node to a match term: variables become Any.
func patTerm(n Node) rdf.Term {
	if n.IsVar() {
		return rdf.Any
	}
	return n.Term
}

// patConnected reports whether the pattern shares a variable with the
// bound set, or has no variables at all (a pure existence check is
// always safe to evaluate next).
func patConnected(tp TriplePattern, bound map[string]bool) bool {
	vars := 0
	for _, n := range []Node{tp.S, tp.P, tp.O} {
		if n.IsVar() {
			vars++
			if bound[n.Var] {
				return true
			}
		}
	}
	return vars == 0
}

func (e *evaluator) pattern(pat Pattern, input [][]rdf.TermID) ([][]rdf.TermID, error) {
	switch p := pat.(type) {
	case TriplePattern:
		return e.triple(p, input), nil
	case Optional:
		return e.optional(p, input)
	case Union:
		var out [][]rdf.TermID
		for _, branch := range p.Branches {
			bs, err := e.group(branch, input)
			if err != nil {
				return nil, err
			}
			out = append(out, bs...)
		}
		return out, nil
	case GraphPattern:
		return e.graphPattern(p, input)
	default:
		return nil, fmt.Errorf("sparql: unknown pattern type %T", pat)
	}
}

// patNode resolves one triple-pattern position for ID-level matching.
// For a variable it returns its slot (the row value — unboundID acting
// as the wildcard — is substituted per input row); for a concrete term
// it returns the term's ID with slot -1. ok is false when the term was
// never interned in the dataset, in which case nothing can match.
func (e *evaluator) patNode(n Node) (id rdf.TermID, slot int, ok bool) {
	if n.IsVar() {
		return unboundID, e.lay.index[n.Var], true
	}
	id, ok = e.dict.ID(n.Term)
	return id, -1, ok
}

func (e *evaluator) triple(tp TriplePattern, input [][]rdf.TermID) [][]rdf.TermID {
	sID, sSlot, sOK := e.patNode(tp.S)
	pID, pSlot, pOK := e.patNode(tp.P)
	oID, oSlot, oOK := e.patNode(tp.O)
	if !sOK || !pOK || !oOK {
		return nil // constant unknown to the dataset: no matches anywhere
	}
	// Repeated pattern variables need an explicit equality check when
	// unbound (when bound, the substituted concrete ID constrains the
	// match already; the checks are then vacuously true).
	spSame := sSlot >= 0 && sSlot == pSlot
	soSame := sSlot >= 0 && sSlot == oSlot
	poSame := pSlot >= 0 && pSlot == oSlot
	var out [][]rdf.TermID
	var cur []rdf.TermID
	// One closure for all input rows: matches stream straight into the
	// arena-backed output rows.
	emit := func(ms, mp, mo rdf.TermID) bool {
		if spSame && ms != mp || soSame && ms != mo || poSame && mp != mo {
			return true
		}
		nr := e.extend(cur)
		if sSlot >= 0 {
			nr[sSlot] = ms
		}
		if pSlot >= 0 {
			nr[pSlot] = mp
		}
		if oSlot >= 0 {
			nr[oSlot] = mo
		}
		out = append(out, nr)
		return true
	}
	for _, row := range input {
		cur = row
		s, p, o := sID, pID, oID
		if sSlot >= 0 {
			s = row[sSlot]
		}
		if pSlot >= 0 {
			p = row[pSlot]
		}
		if oSlot >= 0 {
			o = row[oSlot]
		}
		e.active.EachMatchIDs(s, p, o, emit)
	}
	return out
}

func (e *evaluator) optional(opt Optional, input [][]rdf.TermID) ([][]rdf.TermID, error) {
	var out [][]rdf.TermID
	// Plan the group once; the left join below re-evaluates it per input
	// row.
	ordered := orderPatterns(e.active, opt.Group.Patterns)
	single := make([][]rdf.TermID, 1)
	for _, row := range input {
		single[0] = row
		ext, err := e.ordered(ordered, opt.Group.Filters, single)
		if err != nil {
			return nil, err
		}
		if len(ext) == 0 {
			out = append(out, row) // left-join: keep unextended
		} else {
			out = append(out, ext...)
		}
	}
	return out, nil
}

func (e *evaluator) graphPattern(gp GraphPattern, input [][]rdf.TermID) ([][]rdf.TermID, error) {
	if !gp.Name.IsVar() {
		g, ok := e.ds.Lookup(gp.Name.Term)
		if !ok {
			return nil, nil // empty graph => no solutions
		}
		saved := e.active
		e.active = g
		rows, err := e.group(gp.Group, input)
		e.active = saved
		return rows, err
	}
	// Variable graph name: iterate all named graphs.
	slot := e.lay.index[gp.Name.Var]
	var out [][]rdf.TermID
	for _, name := range e.ds.GraphNames() {
		g, ok := e.ds.Lookup(name)
		if !ok {
			continue // dropped concurrently between GraphNames and Lookup
		}
		// Graph names are interned when the graph is created; Intern
		// covers datasets assembled before that invariant held.
		nameID := e.dict.Intern(name)
		// Restrict input to rows compatible with this graph name; the
		// name is bound before the group runs so its filters can see it.
		var compat [][]rdf.TermID
		for _, row := range input {
			switch row[slot] {
			case unboundID:
				nr := e.extend(row)
				nr[slot] = nameID
				compat = append(compat, nr)
			case nameID:
				compat = append(compat, row)
			}
		}
		if len(compat) == 0 {
			continue
		}
		saved := e.active
		e.active = g
		rows, err := e.group(gp.Group, compat)
		e.active = saved
		if err != nil {
			return nil, err
		}
		out = append(out, rows...)
	}
	return out, nil
}

// MustParse parses a query and panics on error; for fixtures and tests.
func MustParse(src string) *Query {
	q, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return q
}

// Run parses and evaluates src against ds in one step.
func Run(ds *rdf.Dataset, src string) (*Result, error) {
	q, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Eval(ds, q)
}
