package sparql

import (
	"fmt"
	"sort"
	"strings"

	"mdm/internal/rdf"
)

// Binding maps variable names (without '?') to terms.
type Binding map[string]rdf.Term

// Clone returns a copy of the binding.
func (b Binding) Clone() Binding {
	out := make(Binding, len(b)+1)
	for k, v := range b {
		out[k] = v
	}
	return out
}

// Result is the outcome of query evaluation.
type Result struct {
	// Vars is the projection list in order.
	Vars []string
	// Solutions holds one binding per result row.
	Solutions []Binding
	// Bool is the ASK answer when the query form is ASK.
	Bool bool
	// Form echoes the query form.
	Form QueryForm
}

// Table renders the result as an aligned text table (for demos/tests).
func (r *Result) Table() string {
	if r.Form == FormAsk {
		return fmt.Sprintf("ASK -> %v\n", r.Bool)
	}
	widths := make([]int, len(r.Vars))
	for i, v := range r.Vars {
		widths[i] = len(v) + 1
	}
	cells := make([][]string, len(r.Solutions))
	for si, s := range r.Solutions {
		row := make([]string, len(r.Vars))
		for i, v := range r.Vars {
			if t, ok := s[v]; ok {
				row[i] = t.Value
			}
			if len(row[i]) > widths[i] {
				widths[i] = len(row[i])
			}
		}
		cells[si] = row
	}
	var sb strings.Builder
	for i, v := range r.Vars {
		fmt.Fprintf(&sb, "%-*s", widths[i]+2, "?"+v)
	}
	sb.WriteString("\n")
	for _, row := range cells {
		for i, c := range row {
			fmt.Fprintf(&sb, "%-*s", widths[i]+2, c)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// evalCtx carries the dataset and active graph through evaluation.
type evalCtx struct {
	ds     *rdf.Dataset
	active *rdf.Graph
}

// Eval evaluates a query against a dataset. The default graph is the
// active graph except inside GRAPH blocks.
func Eval(ds *rdf.Dataset, q *Query) (*Result, error) {
	ctx := evalCtx{ds: ds, active: ds.Default()}
	sols, err := evalGroup(ctx, q.Where, []Binding{{}})
	if err != nil {
		return nil, err
	}
	res := &Result{Form: q.Form}
	if q.Form == FormAsk {
		res.Bool = len(sols) > 0
		return res, nil
	}

	// Projection list.
	if q.Star {
		res.Vars = q.Where.AllVars()
	} else {
		res.Vars = q.Variables
	}

	// ORDER BY before projection so order keys may be non-projected.
	if len(q.OrderBy) > 0 {
		sort.SliceStable(sols, func(i, j int) bool {
			for _, k := range q.OrderBy {
				ti, iok := sols[i][k.Var]
				tj, jok := sols[j][k.Var]
				var c int
				switch {
				case !iok && !jok:
					c = 0
				case !iok:
					c = -1
				case !jok:
					c = 1
				default:
					c = compareOrder(ti, tj)
				}
				if c != 0 {
					if k.Desc {
						return c > 0
					}
					return c < 0
				}
			}
			return false
		})
	}

	// Project.
	projected := make([]Binding, 0, len(sols))
	for _, s := range sols {
		row := make(Binding, len(res.Vars))
		for _, v := range res.Vars {
			if t, ok := s[v]; ok {
				row[v] = t
			}
		}
		projected = append(projected, row)
	}

	if q.Distinct {
		projected = dedupe(res.Vars, projected)
	}

	// OFFSET / LIMIT.
	if q.Offset > 0 {
		if q.Offset >= len(projected) {
			projected = nil
		} else {
			projected = projected[q.Offset:]
		}
	}
	if q.Limit >= 0 && q.Limit < len(projected) {
		projected = projected[:q.Limit]
	}
	res.Solutions = projected
	return res, nil
}

// compareOrder orders terms numerically when both parse as numbers, else
// by rdf.Compare.
func compareOrder(a, b rdf.Term) int {
	fa, erra := a.Float()
	fb, errb := b.Float()
	if erra == nil && errb == nil {
		switch {
		case fa < fb:
			return -1
		case fa > fb:
			return 1
		default:
			return 0
		}
	}
	return rdf.Compare(a, b)
}

func dedupe(vars []string, sols []Binding) []Binding {
	seen := map[string]bool{}
	out := sols[:0:0]
	for _, s := range sols {
		var key strings.Builder
		for _, v := range vars {
			if t, ok := s[v]; ok {
				key.WriteString(t.String())
			}
			key.WriteByte('\x00')
		}
		k := key.String()
		if !seen[k] {
			seen[k] = true
			out = append(out, s)
		}
	}
	return out
}

// evalGroup evaluates a group graph pattern: join the patterns in
// sequence, then apply the group's filters.
func evalGroup(ctx evalCtx, g *Group, input []Binding) ([]Binding, error) {
	sols := input
	for _, pat := range orderPatterns(g.Patterns) {
		var err error
		sols, err = evalPattern(ctx, pat, sols)
		if err != nil {
			return nil, err
		}
		if len(sols) == 0 {
			break
		}
	}
	for _, f := range g.Filters {
		kept := sols[:0:0]
		for _, s := range sols {
			v, err := f.Eval(s)
			if err != nil {
				continue // error => effective false
			}
			ok, err := v.AsBool()
			if err != nil || !ok {
				continue
			}
			kept = append(kept, s)
		}
		sols = kept
	}
	return sols, nil
}

// orderPatterns places triple patterns before OPTIONALs so left joins see
// the full base solution set, preserving relative order otherwise.
func orderPatterns(ps []Pattern) []Pattern {
	var base, opts []Pattern
	for _, p := range ps {
		if _, ok := p.(Optional); ok {
			opts = append(opts, p)
		} else {
			base = append(base, p)
		}
	}
	return append(base, opts...)
}

func evalPattern(ctx evalCtx, pat Pattern, input []Binding) ([]Binding, error) {
	switch p := pat.(type) {
	case TriplePattern:
		return evalTriple(ctx, p, input), nil
	case Optional:
		return evalOptional(ctx, p, input)
	case Union:
		var out []Binding
		for _, branch := range p.Branches {
			bs, err := evalGroup(ctx, branch, input)
			if err != nil {
				return nil, err
			}
			out = append(out, bs...)
		}
		return out, nil
	case GraphPattern:
		return evalGraphPattern(ctx, p, input)
	default:
		return nil, fmt.Errorf("sparql: unknown pattern type %T", pat)
	}
}

func evalTriple(ctx evalCtx, tp TriplePattern, input []Binding) []Binding {
	var out []Binding
	for _, b := range input {
		s := resolve(tp.S, b)
		p := resolve(tp.P, b)
		o := resolve(tp.O, b)
		for _, t := range ctx.active.Match(s, p, o) {
			nb := b
			cloned := false
			bind := func(n Node, v rdf.Term) bool {
				if !n.IsVar() {
					return true
				}
				if cur, ok := nb[n.Var]; ok {
					return cur == v
				}
				if !cloned {
					nb = nb.Clone()
					cloned = true
				}
				nb[n.Var] = v
				return true
			}
			if bind(tp.S, t.S) && bind(tp.P, t.P) && bind(tp.O, t.O) {
				if !cloned {
					nb = b.Clone()
				}
				out = append(out, nb)
			}
		}
	}
	return out
}

// resolve substitutes a bound variable into the match pattern, or Any.
func resolve(n Node, b Binding) rdf.Term {
	if !n.IsVar() {
		return n.Term
	}
	if t, ok := b[n.Var]; ok {
		return t
	}
	return rdf.Any
}

func evalOptional(ctx evalCtx, opt Optional, input []Binding) ([]Binding, error) {
	var out []Binding
	for _, b := range input {
		ext, err := evalGroup(ctx, opt.Group, []Binding{b})
		if err != nil {
			return nil, err
		}
		if len(ext) == 0 {
			out = append(out, b) // left-join: keep unextended
		} else {
			out = append(out, ext...)
		}
	}
	return out, nil
}

func evalGraphPattern(ctx evalCtx, gp GraphPattern, input []Binding) ([]Binding, error) {
	if !gp.Name.IsVar() {
		g, ok := ctx.ds.Lookup(gp.Name.Term)
		if !ok {
			return nil, nil // empty graph => no solutions
		}
		sub := evalCtx{ds: ctx.ds, active: g}
		return evalGroup(sub, gp.Group, input)
	}
	// Variable graph name: iterate all named graphs.
	var out []Binding
	for _, name := range ctx.ds.GraphNames() {
		g, _ := ctx.ds.Lookup(name)
		sub := evalCtx{ds: ctx.ds, active: g}
		// Restrict input to bindings compatible with this graph name.
		var compat []Binding
		for _, b := range input {
			if cur, ok := b[gp.Name.Var]; ok {
				if cur != name {
					continue
				}
				compat = append(compat, b)
			} else {
				nb := b.Clone()
				nb[gp.Name.Var] = name
				compat = append(compat, nb)
			}
		}
		if len(compat) == 0 {
			continue
		}
		bs, err := evalGroup(sub, gp.Group, compat)
		if err != nil {
			return nil, err
		}
		out = append(out, bs...)
	}
	return out, nil
}

// MustParse parses a query and panics on error; for fixtures and tests.
func MustParse(src string) *Query {
	q, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return q
}

// Run parses and evaluates src against ds in one step.
func Run(ds *rdf.Dataset, src string) (*Result, error) {
	q, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Eval(ds, q)
}
