package sparql

import (
	"fmt"
	"sort"
	"strings"

	"mdm/internal/rdf"
)

// Binding maps variable names (without '?') to terms.
type Binding map[string]rdf.Term

// Clone returns a copy of the binding.
func (b Binding) Clone() Binding {
	out := make(Binding, len(b)+1)
	for k, v := range b {
		out[k] = v
	}
	return out
}

// Result is the outcome of query evaluation.
type Result struct {
	// Vars is the projection list in order.
	Vars []string
	// Solutions holds one binding per result row.
	Solutions []Binding
	// Bool is the ASK answer when the query form is ASK.
	Bool bool
	// Form echoes the query form.
	Form QueryForm
}

// Table renders the result as an aligned text table (for demos/tests).
func (r *Result) Table() string {
	if r.Form == FormAsk {
		return fmt.Sprintf("ASK -> %v\n", r.Bool)
	}
	widths := make([]int, len(r.Vars))
	for i, v := range r.Vars {
		widths[i] = len(v) + 1
	}
	cells := make([][]string, len(r.Solutions))
	for si, s := range r.Solutions {
		row := make([]string, len(r.Vars))
		for i, v := range r.Vars {
			if t, ok := s[v]; ok {
				row[i] = t.Value
			}
			if len(row[i]) > widths[i] {
				widths[i] = len(row[i])
			}
		}
		cells[si] = row
	}
	var sb strings.Builder
	for i, v := range r.Vars {
		fmt.Fprintf(&sb, "%-*s", widths[i]+2, "?"+v)
	}
	sb.WriteString("\n")
	for _, row := range cells {
		for i, c := range row {
			fmt.Fprintf(&sb, "%-*s", widths[i]+2, c)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// evalCtx carries the dataset and active graph through evaluation.
type evalCtx struct {
	ds     *rdf.Dataset
	active *rdf.Graph
}

// Eval evaluates a query against a dataset. The default graph is the
// active graph except inside GRAPH blocks.
func Eval(ds *rdf.Dataset, q *Query) (*Result, error) {
	ctx := evalCtx{ds: ds, active: ds.Default()}
	sols, err := evalGroup(ctx, q.Where, []Binding{{}})
	if err != nil {
		return nil, err
	}
	res := &Result{Form: q.Form}
	if q.Form == FormAsk {
		res.Bool = len(sols) > 0
		return res, nil
	}

	// Projection list.
	if q.Star {
		res.Vars = q.Where.AllVars()
	} else {
		res.Vars = q.Variables
	}

	// ORDER BY before projection so order keys may be non-projected.
	if len(q.OrderBy) > 0 {
		sort.SliceStable(sols, func(i, j int) bool {
			for _, k := range q.OrderBy {
				ti, iok := sols[i][k.Var]
				tj, jok := sols[j][k.Var]
				var c int
				switch {
				case !iok && !jok:
					c = 0
				case !iok:
					c = -1
				case !jok:
					c = 1
				default:
					c = compareOrder(ti, tj)
				}
				if c != 0 {
					if k.Desc {
						return c > 0
					}
					return c < 0
				}
			}
			return false
		})
	}

	// Project. Solutions whose bindings are exactly the projection list
	// are reused as-is (each solution map is freshly built during
	// evaluation, so no aliasing can leak hidden variables). The fast
	// path is disabled when the projection repeats a variable, since the
	// length comparison below would then undercount.
	distinctVars := true
	for i, v := range res.Vars {
		for _, w := range res.Vars[:i] {
			if v == w {
				distinctVars = false
			}
		}
	}
	projected := make([]Binding, 0, len(sols))
	for _, s := range sols {
		if distinctVars && len(s) == len(res.Vars) {
			all := true
			for _, v := range res.Vars {
				if _, ok := s[v]; !ok {
					all = false
					break
				}
			}
			if all {
				projected = append(projected, s)
				continue
			}
		}
		row := make(Binding, len(res.Vars))
		for _, v := range res.Vars {
			if t, ok := s[v]; ok {
				row[v] = t
			}
		}
		projected = append(projected, row)
	}

	if q.Distinct {
		projected = dedupe(res.Vars, projected)
	}

	// Without ORDER BY the BGP iterator yields rows in unspecified
	// order; sort canonically so results (and LIMIT/OFFSET pages) are
	// repeatable across evaluations — REST clients and golden-file
	// consumers see stable output.
	if len(q.OrderBy) == 0 && len(projected) > 1 {
		sort.SliceStable(projected, func(i, j int) bool {
			for _, v := range res.Vars {
				ti, iok := projected[i][v]
				tj, jok := projected[j][v]
				switch {
				case !iok && !jok:
					continue
				case !iok:
					return true
				case !jok:
					return false
				}
				if c := rdf.Compare(ti, tj); c != 0 {
					return c < 0
				}
			}
			return false
		})
	}

	// OFFSET / LIMIT.
	if q.Offset > 0 {
		if q.Offset >= len(projected) {
			projected = nil
		} else {
			projected = projected[q.Offset:]
		}
	}
	if q.Limit >= 0 && q.Limit < len(projected) {
		projected = projected[:q.Limit]
	}
	res.Solutions = projected
	return res, nil
}

// compareOrder orders terms numerically when both parse as numbers, else
// by rdf.Compare.
func compareOrder(a, b rdf.Term) int {
	fa, erra := a.Float()
	fb, errb := b.Float()
	if erra == nil && errb == nil {
		switch {
		case fa < fb:
			return -1
		case fa > fb:
			return 1
		default:
			return 0
		}
	}
	return rdf.Compare(a, b)
}

func dedupe(vars []string, sols []Binding) []Binding {
	seen := map[string]bool{}
	out := sols[:0:0]
	for _, s := range sols {
		var key strings.Builder
		for _, v := range vars {
			if t, ok := s[v]; ok {
				key.WriteString(t.String())
			}
			key.WriteByte('\x00')
		}
		k := key.String()
		if !seen[k] {
			seen[k] = true
			out = append(out, s)
		}
	}
	return out
}

// evalGroup evaluates a group graph pattern: join the patterns in
// sequence, then apply the group's filters.
func evalGroup(ctx evalCtx, g *Group, input []Binding) ([]Binding, error) {
	return evalOrdered(ctx, orderPatterns(ctx.active, g.Patterns), g.Filters, input)
}

// evalOrdered evaluates an already-planned pattern sequence plus the
// group's filters. Splitting it from evalGroup lets callers that
// evaluate the same group once per input binding (OPTIONAL left joins)
// plan the pattern order a single time.
func evalOrdered(ctx evalCtx, patterns []Pattern, filters []Expr, input []Binding) ([]Binding, error) {
	sols := input
	for _, pat := range patterns {
		var err error
		sols, err = evalPattern(ctx, pat, sols)
		if err != nil {
			return nil, err
		}
		if len(sols) == 0 {
			break
		}
	}
	for _, f := range filters {
		kept := sols[:0:0]
		for _, s := range sols {
			v, err := f.Eval(s)
			if err != nil {
				continue // error => effective false
			}
			ok, err := v.AsBool()
			if err != nil || !ok {
				continue
			}
			kept = append(kept, s)
		}
		sols = kept
	}
	return sols, nil
}

// orderPatterns arranges a group's patterns for evaluation: triple
// patterns before OPTIONALs so left joins see the full base solution
// set, preserving the relative order of non-OPTIONAL patterns; then
// each contiguous run of triple patterns is greedily reordered by
// estimated selectivity. Runs never cross a UNION or GRAPH boundary:
// this evaluator threads accumulated bindings into sub-groups, where a
// branch FILTER can observe them, so only pure triple-join prefixes —
// whose joins are commutative — are safe to permute.
func orderPatterns(g *rdf.Graph, ps []Pattern) []Pattern {
	if len(ps) <= 1 {
		return ps
	}
	out := make([]Pattern, 0, len(ps))
	for _, p := range ps {
		if _, ok := p.(Optional); !ok {
			out = append(out, p)
		}
	}
	for _, p := range ps {
		if _, ok := p.(Optional); ok {
			out = append(out, p)
		}
	}
	for lo := 0; lo < len(out); {
		if _, ok := out[lo].(TriplePattern); !ok {
			lo++
			continue
		}
		hi := lo + 1
		for hi < len(out) {
			if _, ok := out[hi].(TriplePattern); !ok {
				break
			}
			hi++
		}
		orderTriplePrefix(g, out[lo:hi])
		lo = hi
	}
	return out
}

// orderTriplePrefix greedily orders a BGP (a []Pattern known to hold
// only TriplePatterns) in place by estimated selectivity: at each step
// it picks the cheapest remaining pattern among those that share a
// variable with the already-chosen prefix (avoiding accidental cartesian
// products), falling back to the globally cheapest when none connects.
// Estimates are index-cardinality counts from Graph.Count with variables
// widened to wildcards, so they cost a handful of map-length reads per
// pattern.
func orderTriplePrefix(g *rdf.Graph, ps []Pattern) {
	if len(ps) <= 1 {
		return
	}
	if len(ps) == 2 {
		// Two-pattern joins need no connectivity analysis: evaluate the
		// cheaper side first.
		if patEst(g, ps[1].(TriplePattern)) < patEst(g, ps[0].(TriplePattern)) {
			ps[0], ps[1] = ps[1], ps[0]
		}
		return
	}
	est := make([]int, len(ps))
	for i := range ps {
		est[i] = patEst(g, ps[i].(TriplePattern))
	}
	bound := map[string]bool{}
	for k := range ps {
		best := -1
		bestConn := false
		for i := k; i < len(ps); i++ {
			conn := k == 0 || patConnected(ps[i].(TriplePattern), bound)
			switch {
			case best == -1:
			case conn && !bestConn:
			case conn == bestConn && est[i] < est[best]:
			default:
				continue
			}
			best, bestConn = i, conn
		}
		ps[k], ps[best] = ps[best], ps[k]
		est[k], est[best] = est[best], est[k]
		ps[k].(TriplePattern).Vars(bound)
	}
}

// patEst estimates a pattern's match cardinality against the active
// graph.
func patEst(g *rdf.Graph, tp TriplePattern) int {
	return g.Count(patTerm(tp.S), patTerm(tp.P), patTerm(tp.O))
}

// patTerm widens a pattern node to a match term: variables become Any.
func patTerm(n Node) rdf.Term {
	if n.IsVar() {
		return rdf.Any
	}
	return n.Term
}

// patConnected reports whether the pattern shares a variable with the
// bound set, or has no variables at all (a pure existence check is
// always safe to evaluate next).
func patConnected(tp TriplePattern, bound map[string]bool) bool {
	vars := 0
	for _, n := range []Node{tp.S, tp.P, tp.O} {
		if n.IsVar() {
			vars++
			if bound[n.Var] {
				return true
			}
		}
	}
	return vars == 0
}

func evalPattern(ctx evalCtx, pat Pattern, input []Binding) ([]Binding, error) {
	switch p := pat.(type) {
	case TriplePattern:
		return evalTriple(ctx, p, input), nil
	case Optional:
		return evalOptional(ctx, p, input)
	case Union:
		var out []Binding
		for _, branch := range p.Branches {
			bs, err := evalGroup(ctx, branch, input)
			if err != nil {
				return nil, err
			}
			out = append(out, bs...)
		}
		return out, nil
	case GraphPattern:
		return evalGraphPattern(ctx, p, input)
	default:
		return nil, fmt.Errorf("sparql: unknown pattern type %T", pat)
	}
}

func evalTriple(ctx evalCtx, tp TriplePattern, input []Binding) []Binding {
	var out []Binding
	for _, b := range input {
		s := resolve(tp.S, b)
		p := resolve(tp.P, b)
		o := resolve(tp.O, b)
		// Stream matches instead of materializing and sorting a []Triple
		// per input binding; solution order within a BGP is unspecified
		// (ORDER BY provides determinism when callers need it).
		ctx.active.EachMatch(s, p, o, func(t rdf.Triple) bool {
			if nb, ok := extend(b, tp, t); ok {
				out = append(out, nb)
			}
			return true
		})
	}
	return out
}

// extend returns a fresh binding extending b with the pattern's
// variables bound to the matched triple, or ok = false when the triple
// conflicts with existing bindings or a repeated pattern variable. The
// consistency checks run before the clone so mismatches allocate
// nothing.
func extend(b Binding, tp TriplePattern, t rdf.Triple) (Binding, bool) {
	if tp.S.IsVar() {
		if cur, ok := b[tp.S.Var]; ok && cur != t.S {
			return nil, false
		}
		if tp.P.IsVar() && tp.P.Var == tp.S.Var && t.P != t.S {
			return nil, false
		}
		if tp.O.IsVar() && tp.O.Var == tp.S.Var && t.O != t.S {
			return nil, false
		}
	}
	if tp.P.IsVar() {
		if cur, ok := b[tp.P.Var]; ok && cur != t.P {
			return nil, false
		}
		if tp.O.IsVar() && tp.O.Var == tp.P.Var && t.O != t.P {
			return nil, false
		}
	}
	if tp.O.IsVar() {
		if cur, ok := b[tp.O.Var]; ok && cur != t.O {
			return nil, false
		}
	}
	nb := b.Clone()
	if tp.S.IsVar() {
		nb[tp.S.Var] = t.S
	}
	if tp.P.IsVar() {
		nb[tp.P.Var] = t.P
	}
	if tp.O.IsVar() {
		nb[tp.O.Var] = t.O
	}
	return nb, true
}

// resolve substitutes a bound variable into the match pattern, or Any.
func resolve(n Node, b Binding) rdf.Term {
	if !n.IsVar() {
		return n.Term
	}
	if t, ok := b[n.Var]; ok {
		return t
	}
	return rdf.Any
}

func evalOptional(ctx evalCtx, opt Optional, input []Binding) ([]Binding, error) {
	var out []Binding
	// Plan the group once; the left join below re-evaluates it per input
	// binding.
	ordered := orderPatterns(ctx.active, opt.Group.Patterns)
	for _, b := range input {
		ext, err := evalOrdered(ctx, ordered, opt.Group.Filters, []Binding{b})
		if err != nil {
			return nil, err
		}
		if len(ext) == 0 {
			out = append(out, b) // left-join: keep unextended
		} else {
			out = append(out, ext...)
		}
	}
	return out, nil
}

func evalGraphPattern(ctx evalCtx, gp GraphPattern, input []Binding) ([]Binding, error) {
	if !gp.Name.IsVar() {
		g, ok := ctx.ds.Lookup(gp.Name.Term)
		if !ok {
			return nil, nil // empty graph => no solutions
		}
		sub := evalCtx{ds: ctx.ds, active: g}
		return evalGroup(sub, gp.Group, input)
	}
	// Variable graph name: iterate all named graphs.
	var out []Binding
	for _, name := range ctx.ds.GraphNames() {
		g, _ := ctx.ds.Lookup(name)
		sub := evalCtx{ds: ctx.ds, active: g}
		// Restrict input to bindings compatible with this graph name.
		var compat []Binding
		for _, b := range input {
			if cur, ok := b[gp.Name.Var]; ok {
				if cur != name {
					continue
				}
				compat = append(compat, b)
			} else {
				nb := b.Clone()
				nb[gp.Name.Var] = name
				compat = append(compat, nb)
			}
		}
		if len(compat) == 0 {
			continue
		}
		bs, err := evalGroup(sub, gp.Group, compat)
		if err != nil {
			return nil, err
		}
		out = append(out, bs...)
	}
	return out, nil
}

// MustParse parses a query and panics on error; for fixtures and tests.
func MustParse(src string) *Query {
	q, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return q
}

// Run parses and evaluates src against ds in one step.
func Run(ds *rdf.Dataset, src string) (*Result, error) {
	q, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Eval(ds, q)
}
