package sparql

import (
	"math/rand"
	"testing"

	"mdm/internal/rdf"
	"mdm/internal/rdf/turtle"
)

// footballDataset builds a small dataset mirroring the paper's
// motivational use case.
func footballDataset(t *testing.T) *rdf.Dataset {
	t.Helper()
	src := `
@prefix ex: <http://ex.org/> .
@prefix sc: <http://schema.org/> .

ex:messi a ex:Player ; ex:name "Lionel Messi" ; ex:height 170.18 ; ex:team ex:fcb .
ex:lewa a ex:Player ; ex:name "Robert Lewandowski" ; ex:height 184.0 ; ex:team ex:bay .
ex:zlatan a ex:Player ; ex:name "Zlatan Ibrahimovic" ; ex:height 195.0 ; ex:team ex:mu .
ex:coach a ex:Coach ; ex:name "Pep Guardiola" .

ex:fcb a sc:SportsTeam ; ex:name "FC Barcelona" .
ex:bay a sc:SportsTeam ; ex:name "Bayern Munich" .
ex:mu a sc:SportsTeam ; ex:name "Manchester United" .

ex:g1 { ex:messi ex:active true . }
ex:g2 { ex:lewa ex:active true . }
`
	ds, err := turtle.ParseDataset(src)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func run(t *testing.T, ds *rdf.Dataset, q string) *Result {
	t.Helper()
	res, err := Run(ds, q)
	if err != nil {
		t.Fatalf("query failed: %v\n%s", err, q)
	}
	return res
}

func TestEvalBGPJoin(t *testing.T) {
	ds := footballDataset(t)
	res := run(t, ds, `
PREFIX ex: <http://ex.org/>
PREFIX sc: <http://schema.org/>
SELECT ?playerName ?teamName WHERE {
  ?p a ex:Player .
  ?p ex:name ?playerName .
  ?p ex:team ?t .
  ?t a sc:SportsTeam .
  ?t ex:name ?teamName .
} ORDER BY ?playerName`)
	if res.Len() != 3 {
		t.Fatalf("solutions = %d, want 3\n%s", res.Len(), res.Table())
	}
	first := res.Solutions()[0]
	if first["playerName"].Value != "Lionel Messi" || first["teamName"].Value != "FC Barcelona" {
		t.Errorf("first row = %v", first)
	}
}

func TestEvalSharedVariableSemantics(t *testing.T) {
	ds := rdf.NewDataset()
	g := ds.Default()
	g.MustAdd(rdf.T(rdf.IRI("a"), rdf.IRI("p"), rdf.IRI("a"))) // self loop
	g.MustAdd(rdf.T(rdf.IRI("a"), rdf.IRI("p"), rdf.IRI("b")))
	res := run(t, ds, `SELECT ?x WHERE { ?x <p> ?x . }`)
	if res.Len() != 1 || res.Solutions()[0]["x"].Value != "a" {
		t.Errorf("shared-var solutions = %v", res.Solutions())
	}
}

func TestEvalFilterNumeric(t *testing.T) {
	ds := footballDataset(t)
	res := run(t, ds, `
PREFIX ex: <http://ex.org/>
SELECT ?n WHERE { ?p ex:name ?n . ?p ex:height ?h . FILTER (?h > 180) } ORDER BY ?n`)
	if res.Len() != 2 {
		t.Fatalf("solutions = %d\n%s", res.Len(), res.Table())
	}
	if res.Solutions()[0]["n"].Value != "Robert Lewandowski" {
		t.Errorf("row0 = %v", res.Solutions()[0])
	}
}

func TestEvalFilterStringAndLogic(t *testing.T) {
	ds := footballDataset(t)
	res := run(t, ds, `
PREFIX ex: <http://ex.org/>
SELECT ?n WHERE {
  ?p ex:name ?n .
  FILTER (?n = "Pep Guardiola" || REGEX(?n, "^Lionel"))
} ORDER BY ?n`)
	if res.Len() != 2 {
		t.Fatalf("solutions = %d\n%s", res.Len(), res.Table())
	}
}

func TestEvalFilterErrorIsFalse(t *testing.T) {
	ds := footballDataset(t)
	// ?h unbound for the coach; comparison errors must drop the row, not
	// abort the query.
	res := run(t, ds, `
PREFIX ex: <http://ex.org/>
SELECT ?n WHERE { ?p ex:name ?n . OPTIONAL { ?p ex:height ?h . } FILTER (?h > 0) }`)
	if res.Len() != 3 {
		t.Fatalf("solutions = %d, want 3 players (coach filtered)", res.Len())
	}
}

func TestEvalOptionalLeftJoin(t *testing.T) {
	ds := footballDataset(t)
	// 3 players + 1 coach + 3 teams all have ex:name; only players have
	// height, so the left join must keep 7 rows, 4 of them unextended.
	res := run(t, ds, `
PREFIX ex: <http://ex.org/>
SELECT ?n ?h WHERE { ?p ex:name ?n . OPTIONAL { ?p ex:height ?h . } } ORDER BY ?n`)
	if res.Len() != 7 {
		t.Fatalf("solutions = %d, want 7", res.Len())
	}
	// Coach row must exist with unbound ?h.
	var coachSeen bool
	for _, s := range res.Solutions() {
		if s["n"].Value == "Pep Guardiola" {
			coachSeen = true
			if _, bound := s["h"]; bound {
				t.Error("coach height should be unbound")
			}
		}
	}
	if !coachSeen {
		t.Error("left join dropped the coach")
	}
}

func TestEvalBoundFilter(t *testing.T) {
	ds := footballDataset(t)
	// Height is unbound for the coach and the three teams.
	res := run(t, ds, `
PREFIX ex: <http://ex.org/>
SELECT ?n WHERE { ?p ex:name ?n . OPTIONAL { ?p ex:height ?h . } FILTER (!BOUND(?h)) } ORDER BY ?n`)
	if res.Len() != 4 {
		t.Fatalf("!BOUND result = %v", res.Solutions())
	}
	var coachSeen bool
	for _, s := range res.Solutions() {
		if s["n"].Value == "Pep Guardiola" {
			coachSeen = true
		}
		if s["n"].Value == "Lionel Messi" {
			t.Error("player with height passed !BOUND filter")
		}
	}
	if !coachSeen {
		t.Error("coach missing from !BOUND result")
	}
}

func TestEvalUnion(t *testing.T) {
	ds := footballDataset(t)
	res := run(t, ds, `
PREFIX ex: <http://ex.org/>
SELECT ?n WHERE {
  { ?p a ex:Player . ?p ex:name ?n . } UNION { ?p a ex:Coach . ?p ex:name ?n . }
}`)
	if res.Len() != 4 {
		t.Fatalf("union solutions = %d, want 4", res.Len())
	}
}

func TestEvalNamedGraphIRI(t *testing.T) {
	ds := footballDataset(t)
	res := run(t, ds, `
PREFIX ex: <http://ex.org/>
SELECT ?p WHERE { GRAPH ex:g1 { ?p ex:active true . } }`)
	if res.Len() != 1 || res.Solutions()[0]["p"].Value != "http://ex.org/messi" {
		t.Errorf("GRAPH iri = %v", res.Solutions())
	}
	// Missing graph yields empty, not error.
	res = run(t, ds, `PREFIX ex: <http://ex.org/>
SELECT ?p WHERE { GRAPH ex:nope { ?p ex:active true . } }`)
	if res.Len() != 0 {
		t.Errorf("missing graph should be empty, got %v", res.Solutions())
	}
}

func TestEvalNamedGraphVariable(t *testing.T) {
	ds := footballDataset(t)
	res := run(t, ds, `
PREFIX ex: <http://ex.org/>
SELECT ?g ?p WHERE { GRAPH ?g { ?p ex:active true . } } ORDER BY ?g`)
	if res.Len() != 2 {
		t.Fatalf("graph-var solutions = %d", res.Len())
	}
	if res.Solutions()[0]["g"].Value != "http://ex.org/g1" {
		t.Errorf("row0 = %v", res.Solutions()[0])
	}
	// Default graph triples must NOT leak into GRAPH ?g.
	res = run(t, ds, `PREFIX ex: <http://ex.org/>
SELECT ?g WHERE { GRAPH ?g { ?p ex:name ?n . } }`)
	if res.Len() != 0 {
		t.Errorf("default graph leaked into GRAPH ?g: %v", res.Solutions())
	}
}

func TestEvalDistinctAndLimitOffset(t *testing.T) {
	ds := footballDataset(t)
	res := run(t, ds, `
PREFIX ex: <http://ex.org/>
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
SELECT DISTINCT ?type WHERE { ?x rdf:type ?type . } ORDER BY ?type`)
	if res.Len() != 3 { // Player, Coach, SportsTeam
		t.Fatalf("distinct types = %d\n%s", res.Len(), res.Table())
	}
	res = run(t, ds, `
PREFIX ex: <http://ex.org/>
SELECT ?n WHERE { ?p a ex:Player . ?p ex:name ?n . } ORDER BY ?n LIMIT 1 OFFSET 1`)
	if res.Len() != 1 || res.Solutions()[0]["n"].Value != "Robert Lewandowski" {
		t.Errorf("limit/offset = %v", res.Solutions())
	}
	// Offset beyond result set.
	res = run(t, ds, `
PREFIX ex: <http://ex.org/>
SELECT ?n WHERE { ?p a ex:Player . ?p ex:name ?n . } OFFSET 99`)
	if res.Len() != 0 {
		t.Errorf("offset beyond end = %v", res.Solutions())
	}
}

func TestEvalOrderByNumericAndDesc(t *testing.T) {
	ds := footballDataset(t)
	res := run(t, ds, `
PREFIX ex: <http://ex.org/>
SELECT ?n ?h WHERE { ?p ex:name ?n . ?p ex:height ?h . } ORDER BY DESC(?h)`)
	if res.Solutions()[0]["n"].Value != "Zlatan Ibrahimovic" {
		t.Errorf("DESC order wrong: %s", res.Table())
	}
	// Numeric, not lexicographic: 170.18 < 184.0 even though "170..." < "184" lexically too;
	// use a case that differs: add 95.5 player.
	ds.Default().MustAdd(rdf.T(rdf.IRI("http://ex.org/kid"), rdf.IRI("http://ex.org/name"), rdf.Lit("Kid")))
	ds.Default().MustAdd(rdf.T(rdf.IRI("http://ex.org/kid"), rdf.IRI("http://ex.org/height"), rdf.TypedLit("95.5", rdf.XSDDouble)))
	res = run(t, ds, `
PREFIX ex: <http://ex.org/>
SELECT ?n WHERE { ?p ex:name ?n . ?p ex:height ?h . } ORDER BY ?h LIMIT 1`)
	if res.Solutions()[0]["n"].Value != "Kid" {
		t.Errorf("numeric order wrong: %s", res.Table())
	}
}

func TestEvalAsk(t *testing.T) {
	ds := footballDataset(t)
	res := run(t, ds, `PREFIX ex: <http://ex.org/>
ASK { ?p ex:name "Lionel Messi" . }`)
	if res.Form != FormAsk || !res.Bool {
		t.Errorf("ASK true case = %+v", res)
	}
	res = run(t, ds, `PREFIX ex: <http://ex.org/>
ASK { ?p ex:name "Nobody" . }`)
	if res.Bool {
		t.Error("ASK false case returned true")
	}
}

func TestEvalSelectStarProjection(t *testing.T) {
	ds := footballDataset(t)
	res := run(t, ds, `PREFIX ex: <http://ex.org/>
SELECT * WHERE { ?p ex:team ?t . }`)
	if len(res.Vars) != 2 || res.Vars[0] != "p" || res.Vars[1] != "t" {
		t.Errorf("star vars = %v", res.Vars)
	}
	if res.Len() != 3 {
		t.Errorf("star solutions = %d", res.Len())
	}
}

func TestEvalCrossProductWhenDisconnected(t *testing.T) {
	ds := rdf.NewDataset()
	g := ds.Default()
	g.MustAdd(rdf.T(rdf.IRI("a1"), rdf.IRI("p"), rdf.Lit("1")))
	g.MustAdd(rdf.T(rdf.IRI("a2"), rdf.IRI("p"), rdf.Lit("2")))
	g.MustAdd(rdf.T(rdf.IRI("b1"), rdf.IRI("q"), rdf.Lit("x")))
	res := run(t, ds, `SELECT * WHERE { ?a <p> ?v . ?b <q> ?w . }`)
	if res.Len() != 2 {
		t.Errorf("cross product = %d rows, want 2", res.Len())
	}
}

func TestEvalTableRendering(t *testing.T) {
	ds := footballDataset(t)
	res := run(t, ds, `PREFIX ex: <http://ex.org/>
SELECT ?n WHERE { ?p a ex:Player . ?p ex:name ?n . } ORDER BY ?n`)
	tab := res.Table()
	if !contains(tab, "?n") || !contains(tab, "Lionel Messi") {
		t.Errorf("table rendering:\n%s", tab)
	}
	ask := run(t, ds, `ASK { ?s ?p ?o . }`)
	if !contains(ask.Table(), "ASK -> true") {
		t.Errorf("ask table: %s", ask.Table())
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		(func() bool { return indexOf(s, sub) >= 0 })())
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestEvalEmptyGroupYieldsOneEmptySolution(t *testing.T) {
	ds := rdf.NewDataset()
	res := run(t, ds, `ASK { }`)
	if !res.Bool {
		t.Error("ASK {} should be true (one empty solution)")
	}
}

func TestRunParseErrorPropagates(t *testing.T) {
	if _, err := Run(rdf.NewDataset(), `SELECT`); err == nil {
		t.Error("parse error not propagated")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse should panic on bad input")
		}
	}()
	MustParse("not sparql")
}

// TestPropSinglePatternMatchesGraphMatch: evaluating a single triple
// pattern must agree with the store's Match results for every pattern
// shape over random data.
func TestPropSinglePatternMatchesGraphMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ds := rdf.NewDataset()
	g := ds.Default()
	subjects := []rdf.Term{rdf.IRI("s1"), rdf.IRI("s2"), rdf.IRI("s3")}
	preds := []rdf.Term{rdf.IRI("p1"), rdf.IRI("p2")}
	objects := []rdf.Term{rdf.Lit("a"), rdf.Lit("b"), rdf.IntLit(1), rdf.IRI("o1")}
	for i := 0; i < 60; i++ {
		g.MustAdd(rdf.T(
			subjects[rng.Intn(len(subjects))],
			preds[rng.Intn(len(preds))],
			objects[rng.Intn(len(objects))]))
	}
	// All 8 pattern shapes via optional binding of s/p/o.
	for mask := 0; mask < 8; mask++ {
		s, p, o := rdf.Any, rdf.Any, rdf.Any
		var parts [3]string
		parts[0], parts[1], parts[2] = "?s", "?p", "?o"
		if mask&1 != 0 {
			s = subjects[0]
			parts[0] = "<s1>"
		}
		if mask&2 != 0 {
			p = preds[0]
			parts[1] = "<p1>"
		}
		if mask&4 != 0 {
			o = objects[0]
			parts[2] = `"a"`
		}
		q := "SELECT * WHERE { " + parts[0] + " " + parts[1] + " " + parts[2] + " . }"
		res, err := Run(ds, q)
		if err != nil {
			t.Fatalf("mask %d: %v", mask, err)
		}
		want := g.Count(s, p, o)
		if res.Len() != want {
			t.Errorf("mask %d: eval %d rows, store %d", mask, res.Len(), want)
		}
	}
}

// TestBGPReorderProducesIdenticalSolutions evaluates the same BGP under
// every textual pattern permutation and checks the solution multisets
// coincide — selectivity reordering must never change semantics.
func TestBGPReorderProducesIdenticalSolutions(t *testing.T) {
	ds := footballDataset(t)
	patterns := []string{
		"?p ex:name ?playerName .",
		"?p a ex:Player .",
		"?p ex:team ?t .",
		"?t ex:name ?teamName .",
	}
	canon := func(res *Result) map[string]int {
		out := map[string]int{}
		for _, s := range res.Solutions() {
			key := ""
			for _, v := range []string{"p", "playerName", "t", "teamName"} {
				if tm, ok := s[v]; ok {
					key += tm.String()
				}
				key += "|"
			}
			out[key]++
		}
		return out
	}
	perms := [][]int{{0, 1, 2, 3}, {3, 2, 1, 0}, {1, 3, 0, 2}, {2, 0, 3, 1}}
	var want map[string]int
	for i, perm := range perms {
		body := ""
		for _, pi := range perm {
			body += patterns[pi] + "\n"
		}
		res := run(t, ds, "PREFIX ex: <http://ex.org/>\nSELECT * WHERE {\n"+body+"}")
		if res.Len() != 3 {
			t.Fatalf("perm %v: %d solutions, want 3", perm, res.Len())
		}
		got := canon(res)
		if i == 0 {
			want = got
			continue
		}
		if len(got) != len(want) {
			t.Fatalf("perm %v: solution multiset differs", perm)
		}
		for k, n := range want {
			if got[k] != n {
				t.Errorf("perm %v: solution %q count = %d, want %d", perm, k, got[k], n)
			}
		}
	}
}

// TestEvalRepeatedProjectionVarDoesNotLeak: SELECT ?x ?x must not reuse
// the raw solution map (which would expose non-projected variables).
func TestEvalRepeatedProjectionVarDoesNotLeak(t *testing.T) {
	ds := rdf.NewDataset()
	ds.Default().MustAdd(rdf.T(rdf.IRI("s"), rdf.IRI("p"), rdf.IRI("o")))
	res := run(t, ds, `SELECT ?x ?x WHERE { ?x <p> ?y . }`)
	if res.Len() != 1 {
		t.Fatalf("solutions = %d", res.Len())
	}
	if _, leaked := res.Solutions()[0]["y"]; leaked {
		t.Errorf("non-projected var leaked into solution: %v", res.Solutions()[0])
	}
	if res.Solutions()[0]["x"] != rdf.IRI("s") {
		t.Errorf("projected var = %v", res.Solutions()[0])
	}
}

// TestEvalLimitOffsetStableWithoutOrderBy: pagination without ORDER BY
// must be repeatable and non-overlapping across evaluations even though
// BGP iteration order is unspecified.
func TestEvalLimitOffsetStableWithoutOrderBy(t *testing.T) {
	ds := footballDataset(t)
	q := `PREFIX ex: <http://ex.org/> SELECT ?n WHERE { ?p ex:name ?n . } LIMIT 3`
	first := run(t, ds, q)
	seen := map[string]bool{}
	for _, s := range first.Solutions() {
		seen[s["n"].Value] = true
	}
	for i := 0; i < 5; i++ {
		again := run(t, ds, q)
		if again.Len() != 3 {
			t.Fatalf("run %d: %d rows", i, again.Len())
		}
		for j, s := range again.Solutions() {
			if s["n"] != first.Solutions()[j]["n"] {
				t.Fatalf("run %d: row %d = %v, want %v", i, j, s["n"], first.Solutions()[j]["n"])
			}
		}
	}
	// Pages must partition the result set.
	rest := run(t, ds, `PREFIX ex: <http://ex.org/> SELECT ?n WHERE { ?p ex:name ?n . } OFFSET 3`)
	if rest.Len() != 4 {
		t.Fatalf("offset page rows = %d, want 4", rest.Len())
	}
	for _, s := range rest.Solutions() {
		if seen[s["n"].Value] {
			t.Errorf("row %v appeared on both pages", s["n"])
		}
	}
}

// TestOrderPatternsKeepsUnionPosition: reordering must not move triple
// patterns across a UNION boundary, where a branch FILTER could observe
// bindings it would not otherwise see.
func TestOrderPatternsKeepsUnionPosition(t *testing.T) {
	ds := footballDataset(t)
	g := ds.Default()
	ex := func(s string) rdf.Term { return rdf.IRI("http://ex.org/" + s) }
	u := Union{Branches: []*Group{{Patterns: []Pattern{TriplePattern{S: V("b"), P: N(ex("name")), O: V("m")}}}}}
	ps := []Pattern{
		TriplePattern{S: V("a"), P: N(ex("name")), O: V("n")}, // 7 matches
		u,
		TriplePattern{S: V("a"), P: N(rdf.IRI(rdf.RDFType)), O: N(ex("Coach"))}, // 1 match
	}
	got := orderPatterns(g, ps)
	if _, ok := got[1].(Union); !ok {
		t.Fatalf("UNION moved from its position: %v", got)
	}
	if _, ok := got[0].(TriplePattern); !ok {
		t.Fatalf("triple pattern missing before UNION: %v", got)
	}
}

// TestOrderTriplePrefixSelectivity checks the greedy planner puts the
// most selective pattern first and keeps the join connected.
func TestOrderTriplePrefixSelectivity(t *testing.T) {
	ds := footballDataset(t)
	g := ds.Default()
	ex := func(s string) rdf.Term { return rdf.IRI("http://ex.org/" + s) }
	// ex:name has 7 triples; (Any, rdf:type, ex:Coach) has 1;
	// ex:team has 3.
	ps := []Pattern{
		TriplePattern{S: V("p"), P: N(ex("name")), O: V("n")},
		TriplePattern{S: V("p"), P: N(rdf.IRI(rdf.RDFType)), O: N(ex("Coach"))},
		TriplePattern{S: V("p"), P: N(ex("team")), O: V("t")},
	}
	got := orderPatterns(g, ps)
	if len(got) != 3 {
		t.Fatalf("orderPatterns dropped patterns: %v", got)
	}
	first := got[0].(TriplePattern)
	if !first.P.Term.IsIRI() || first.P.Term != rdf.IRI(rdf.RDFType) {
		t.Errorf("most selective pattern not first: %v", got)
	}
	// Disconnected pattern must be deferred until the connected ones ran,
	// even though it is cheaper than ex:name.
	ps = []Pattern{
		TriplePattern{S: V("a"), P: N(ex("name")), O: V("n")},   // 7 matches, uses ?a
		TriplePattern{S: V("b"), P: N(ex("active")), O: V("w")}, // 0 matches in default graph, disconnected
		TriplePattern{S: V("a"), P: N(ex("height")), O: V("h")}, // 3 matches, joins ?a
	}
	got = orderPatterns(g, ps)
	mid := got[1].(TriplePattern)
	if mid.P.Term != ex("height") {
		t.Errorf("connected pattern should precede disconnected one: %v", got)
	}

	// OPTIONAL stays after the basic patterns.
	ps = []Pattern{
		Optional{Group: &Group{Patterns: []Pattern{TriplePattern{S: V("a"), P: N(ex("height")), O: V("h")}}}},
		TriplePattern{S: V("a"), P: N(ex("name")), O: V("n")},
	}
	got = orderPatterns(g, ps)
	if _, ok := got[0].(TriplePattern); !ok {
		t.Errorf("triple pattern should precede OPTIONAL: %v", got)
	}
	if _, ok := got[1].(Optional); !ok {
		t.Errorf("OPTIONAL should come last: %v", got)
	}
}

func TestLexerLessThanVsIRI(t *testing.T) {
	// '<' as comparison operator must not be mistaken for an IRI opener.
	ds := rdf.NewDataset()
	ds.Default().MustAdd(rdf.T(rdf.IRI("s"), rdf.IRI("p"), rdf.IntLit(5)))
	ds.Default().MustAdd(rdf.T(rdf.IRI("t"), rdf.IRI("p"), rdf.IntLit(50)))
	res := run(t, ds, `SELECT ?x WHERE { ?s <p> ?x . FILTER (?x < 10) }`)
	if res.Len() != 1 {
		t.Errorf("< operator solutions = %v", res.Solutions())
	}
	res = run(t, ds, `SELECT ?x WHERE { ?s <p> ?x . FILTER (?x <= 50) }`)
	if res.Len() != 2 {
		t.Errorf("<= operator solutions = %v", res.Solutions())
	}
	res = run(t, ds, `SELECT ?x WHERE { ?s <p> ?x . FILTER (10 < ?x) }`)
	if res.Len() != 1 {
		t.Errorf("literal-first < solutions = %v", res.Solutions())
	}
}
