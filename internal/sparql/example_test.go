package sparql_test

import (
	"context"
	"fmt"

	"mdm/internal/rdf"
	"mdm/internal/sparql"
)

// ExampleEvalCursor demonstrates streaming, cursor-based evaluation:
// rows are produced one Next call at a time, the caller's context is
// honored per row, and terms are decoded only when the Row accessor
// asks for them. Without ORDER BY, rows arrive in the engine's
// canonical order (projected columns, left to right), so the output is
// deterministic.
func ExampleEvalCursor() {
	ds := rdf.NewDataset()
	g := ds.Default()
	ex := func(s string) rdf.Term { return rdf.IRI("http://ex.org/" + s) }
	g.MustAdd(rdf.T(ex("alice"), ex("knows"), ex("bob")))
	g.MustAdd(rdf.T(ex("bob"), ex("knows"), ex("carol")))
	g.MustAdd(rdf.T(ex("carol"), ex("age"), rdf.IntLit(30)))

	q := sparql.MustParse(`
		PREFIX ex: <http://ex.org/>
		SELECT ?a ?b WHERE { ?a ex:knows ?b }`)

	cur, err := sparql.EvalCursor(ds, q)
	if err != nil {
		panic(err)
	}
	defer cur.Close()
	ctx := context.Background()
	for cur.Next(ctx) {
		row := cur.Row()
		a, _ := row.Term(0)
		b, _ := row.Term(1)
		fmt.Printf("%s knows %s\n", a.Value, b.Value)
	}
	if err := cur.Err(); err != nil {
		panic(err)
	}
	// Output:
	// http://ex.org/alice knows http://ex.org/bob
	// http://ex.org/bob knows http://ex.org/carol
}
