package sparql

import (
	"context"
	"testing"

	"mdm/internal/obs"
)

// Coverage for the EXPLAIN trace path: per-operator spans with rows and
// timings for sequential and morsel-parallel plans, plan-summary
// annotations, and the zero-wrapping guarantee when no trace rides the
// evaluation.

func drainTraced(t *testing.T, q *Query, tr *obs.Trace) int64 {
	t.Helper()
	ds, _ := joinFixture()
	cur, err := EvalCursorTrace(ds, q, tr)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	for cur.Next(context.Background()) {
	}
	if err := cur.Err(); err != nil {
		t.Fatal(err)
	}
	return cur.Rows()
}

// TestExplainParallelHashJoin pins the acceptance criterion: ?explain
// detail on a parallel hash-join query yields per-operator stage
// timings, a morsel-parallel span with its row counts, and the plan
// stage duration.
func TestExplainParallelHashJoin(t *testing.T) {
	withParMode(t, parForceOn, func() {
		withParWorkers(t, 4, func() {
			_, q := joinFixture()
			tr := obs.NewTrace()
			tr.Detail = true
			rows := drainTraced(t, q, tr)
			if rows == 0 {
				t.Fatal("fixture drained zero rows")
			}
			rep := tr.Report()
			if rep.Plan == "" {
				t.Errorf("no plan summary recorded")
			}
			if got := rep.Attrs["plan_cache"]; got != "hit" && got != "miss" {
				t.Errorf("plan_cache attr = %q", got)
			}
			var morsel *obs.OpReport
			for i := range rep.Operators {
				if rep.Operators[i].Op == "morsel-join" {
					morsel = &rep.Operators[i]
				}
			}
			if morsel == nil {
				t.Fatalf("no morsel-join span under forced parallelism; operators: %+v", rep.Operators)
			}
			if morsel.RowsOut != rows {
				t.Errorf("morsel-join rows_out = %d, want %d", morsel.RowsOut, rows)
			}
			if morsel.Calls < rows {
				t.Errorf("morsel-join calls = %d, want >= %d", morsel.Calls, rows)
			}
			hasPlanStage := false
			for _, s := range rep.Stages {
				if s.Name == "plan" {
					hasPlanStage = true
				}
			}
			if !hasPlanStage {
				t.Errorf("no plan stage in %+v", rep.Stages)
			}
		})
	})
}

// TestExplainSequentialOperators: the nested/hash operator chain shows
// up span-per-operator with rows_in linked from each span's source.
func TestExplainSequentialOperators(t *testing.T) {
	withParMode(t, parForceOff, func() {
		_, q := joinFixture()
		tr := obs.NewTrace()
		tr.Detail = true
		rows := drainTraced(t, q, tr)
		rep := tr.Report()
		if len(rep.Operators) < 2 {
			t.Fatalf("expected an operator chain, got %+v", rep.Operators)
		}
		last := rep.Operators[len(rep.Operators)-1]
		if last.RowsOut != rows {
			t.Errorf("outermost operator rows_out = %d, want %d", last.RowsOut, rows)
		}
		linked := false
		for _, op := range rep.Operators {
			if op.RowsIn > 0 {
				linked = true
			}
		}
		if !linked {
			t.Errorf("no operator recorded rows_in; spans not linked: %+v", rep.Operators)
		}
	})
}

// TestExplainOptionalAggregatesSpans: an OPTIONAL body instantiated per
// input row must aggregate into one span keyed by plan node, not one
// span per row.
func TestExplainOptionalAggregatesSpans(t *testing.T) {
	ds, _ := joinFixture()
	q := MustParse(`
PREFIX ex: <http://ex.org/>
SELECT ?a ?w WHERE { ?a ex:p0 ?b . OPTIONAL { ?a ex:p2 ?w } }`)
	tr := obs.NewTrace()
	tr.Detail = true
	cur, err := EvalCursorTrace(ds, q, tr)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	n := 0
	for cur.Next(context.Background()) {
		n++
	}
	if n == 0 {
		t.Fatal("no rows")
	}
	rep := tr.Report()
	optionals := 0
	for _, op := range rep.Operators {
		if op.Op == "optional" {
			optionals++
		}
	}
	if optionals != 1 {
		t.Errorf("optional spans = %d, want 1 (per-row instantiations must memoize)", optionals)
	}
	if len(rep.Operators) > 16 {
		t.Errorf("operator list exploded: %d spans", len(rep.Operators))
	}
}

// TestUntracedPathUnwrapped: without a trace (or without Detail) the
// pipeline must contain no traceIter wrappers.
func TestUntracedPathUnwrapped(t *testing.T) {
	ds, q := joinFixture()
	for _, tr := range []*obs.Trace{nil, obs.NewTrace()} {
		cur, err := EvalCursorTrace(ds, q, tr)
		if err != nil {
			t.Fatal(err)
		}
		if _, wrapped := cur.it.(*traceIter); wrapped {
			t.Errorf("trace=%v: pipeline tail is a traceIter", tr != nil)
		}
		cur.Close()
	}
}

// TestPlanSummaryShape sanity-checks the plan summary string recorded
// on compile and replayed on cache hits.
func TestPlanSummaryShape(t *testing.T) {
	ds, q := joinFixture()
	tr := obs.NewTrace()
	if _, err := EvalCursorTrace(ds, q, tr); err != nil {
		t.Fatal(err)
	}
	first := tr.Plan()
	if first == "" || first == "empty" {
		t.Fatalf("plan summary = %q", first)
	}
	tr2 := obs.NewTrace()
	if _, err := EvalCursorTrace(ds, q, tr2); err != nil {
		t.Fatal(err)
	}
	if tr2.Plan() != first {
		t.Errorf("cache-hit summary %q != compile summary %q", tr2.Plan(), first)
	}
	if got := tr2.Report().Attrs["plan_cache"]; got != "hit" {
		t.Errorf("second evaluation plan_cache = %q, want hit", got)
	}
}
