package sparql

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"

	"mdm/internal/rdf"
)

// Env supplies variable values to FILTER expressions. Binding is the
// eager map-based implementation; the ID-row engine passes a lazily
// decoding implementation so a filter only materializes the terms it
// actually reads (the decode-at-projection rule applied to filters).
type Env interface {
	// Lookup returns the term bound to the variable, or ok = false when
	// the variable is unbound.
	Lookup(name string) (rdf.Term, bool)
}

// Expr is a FILTER expression. Evaluation follows a pragmatic subset of
// SPARQL semantics: type errors make the enclosing FILTER reject the
// solution (error ⇒ effective boolean value false).
type Expr interface {
	// Eval computes the expression value under the environment.
	Eval(env Env) (Value, error)
	// Vars records the variables the expression mentions.
	Vars(dst map[string]bool)
	String() string
}

// Value is an expression result: a term or an evaluation error sentinel.
type Value struct {
	Term rdf.Term
}

// AsBool converts the value to an effective boolean value.
func (v Value) AsBool() (bool, error) {
	t := v.Term
	if !t.IsLiteral() {
		return false, fmt.Errorf("sparql: non-literal %s has no boolean value", t)
	}
	switch t.Datatype {
	case rdf.XSDBoolean:
		return strconv.ParseBool(t.Value)
	case rdf.XSDInteger, rdf.XSDDecimal, rdf.XSDDouble:
		f, err := strconv.ParseFloat(t.Value, 64)
		return f != 0, err
	default:
		return t.Value != "", nil
	}
}

// numeric returns the value as float64 if it is a numeric literal.
func (v Value) numeric() (float64, bool) {
	t := v.Term
	if !t.IsLiteral() {
		return 0, false
	}
	switch t.Datatype {
	case rdf.XSDInteger, rdf.XSDDecimal, rdf.XSDDouble:
		f, err := strconv.ParseFloat(t.Value, 64)
		return f, err == nil
	}
	return 0, false
}

// VarExpr references a variable.
type VarExpr struct{ Name string }

// Eval implements Expr.
func (e VarExpr) Eval(env Env) (Value, error) {
	t, ok := env.Lookup(e.Name)
	if !ok {
		return Value{}, fmt.Errorf("sparql: unbound variable ?%s", e.Name)
	}
	return Value{Term: t}, nil
}

// Vars implements Expr.
func (e VarExpr) Vars(dst map[string]bool) { dst[e.Name] = true }

func (e VarExpr) String() string { return "?" + e.Name }

// ConstExpr is a literal or IRI constant.
type ConstExpr struct{ Term rdf.Term }

// Eval implements Expr.
func (e ConstExpr) Eval(Env) (Value, error) { return Value{Term: e.Term}, nil }

// Vars implements Expr.
func (e ConstExpr) Vars(map[string]bool) {}

func (e ConstExpr) String() string { return e.Term.String() }

// CmpExpr is a binary comparison: = != < <= > >=.
type CmpExpr struct {
	Op   string
	L, R Expr
}

// Eval implements Expr.
func (e CmpExpr) Eval(env Env) (Value, error) {
	lv, err := e.L.Eval(env)
	if err != nil {
		return Value{}, err
	}
	rv, err := e.R.Eval(env)
	if err != nil {
		return Value{}, err
	}
	var res bool
	lf, lok := lv.numeric()
	rf, rok := rv.numeric()
	if lok && rok {
		switch e.Op {
		case "=":
			res = lf == rf
		case "!=":
			res = lf != rf
		case "<":
			res = lf < rf
		case "<=":
			res = lf <= rf
		case ">":
			res = lf > rf
		case ">=":
			res = lf >= rf
		default:
			return Value{}, fmt.Errorf("sparql: unknown operator %q", e.Op)
		}
		return Value{Term: rdf.BoolLit(res)}, nil
	}
	// Term comparison: equality on exact term, ordering on lexical value.
	switch e.Op {
	case "=":
		res = lv.Term == rv.Term
	case "!=":
		res = lv.Term != rv.Term
	case "<":
		res = lv.Term.Value < rv.Term.Value
	case "<=":
		res = lv.Term.Value <= rv.Term.Value
	case ">":
		res = lv.Term.Value > rv.Term.Value
	case ">=":
		res = lv.Term.Value >= rv.Term.Value
	default:
		return Value{}, fmt.Errorf("sparql: unknown operator %q", e.Op)
	}
	return Value{Term: rdf.BoolLit(res)}, nil
}

// Vars implements Expr.
func (e CmpExpr) Vars(dst map[string]bool) { e.L.Vars(dst); e.R.Vars(dst) }

func (e CmpExpr) String() string { return fmt.Sprintf("%s %s %s", e.L, e.Op, e.R) }

// LogicExpr is && or ||.
type LogicExpr struct {
	Op   string // "&&" or "||"
	L, R Expr
}

// Eval implements Expr.
func (e LogicExpr) Eval(env Env) (Value, error) {
	lv, err := e.L.Eval(env)
	if err != nil {
		return Value{}, err
	}
	lb, err := lv.AsBool()
	if err != nil {
		return Value{}, err
	}
	if e.Op == "&&" && !lb {
		return Value{Term: rdf.BoolLit(false)}, nil
	}
	if e.Op == "||" && lb {
		return Value{Term: rdf.BoolLit(true)}, nil
	}
	rv, err := e.R.Eval(env)
	if err != nil {
		return Value{}, err
	}
	rb, err := rv.AsBool()
	if err != nil {
		return Value{}, err
	}
	return Value{Term: rdf.BoolLit(rb)}, nil
}

// Vars implements Expr.
func (e LogicExpr) Vars(dst map[string]bool) { e.L.Vars(dst); e.R.Vars(dst) }

func (e LogicExpr) String() string { return fmt.Sprintf("(%s %s %s)", e.L, e.Op, e.R) }

// NotExpr negates its operand.
type NotExpr struct{ X Expr }

// Eval implements Expr.
func (e NotExpr) Eval(env Env) (Value, error) {
	v, err := e.X.Eval(env)
	if err != nil {
		return Value{}, err
	}
	bv, err := v.AsBool()
	if err != nil {
		return Value{}, err
	}
	return Value{Term: rdf.BoolLit(!bv)}, nil
}

// Vars implements Expr.
func (e NotExpr) Vars(dst map[string]bool) { e.X.Vars(dst) }

func (e NotExpr) String() string { return "!" + e.X.String() }

// BoundExpr is BOUND(?v).
type BoundExpr struct{ Name string }

// Eval implements Expr.
func (e BoundExpr) Eval(env Env) (Value, error) {
	_, ok := env.Lookup(e.Name)
	return Value{Term: rdf.BoolLit(ok)}, nil
}

// Vars implements Expr.
func (e BoundExpr) Vars(dst map[string]bool) { dst[e.Name] = true }

func (e BoundExpr) String() string { return fmt.Sprintf("BOUND(?%s)", e.Name) }

// RegexExpr is REGEX(str-expr, pattern [, flags]).
type RegexExpr struct {
	X       Expr
	Pattern string
	Flags   string
	re      *regexp.Regexp
}

// NewRegexExpr compiles the pattern eagerly so syntax errors surface at
// parse time.
func NewRegexExpr(x Expr, pattern, flags string) (*RegexExpr, error) {
	p := pattern
	if strings.Contains(flags, "i") {
		p = "(?i)" + p
	}
	re, err := regexp.Compile(p)
	if err != nil {
		return nil, fmt.Errorf("sparql: bad regex %q: %w", pattern, err)
	}
	return &RegexExpr{X: x, Pattern: pattern, Flags: flags, re: re}, nil
}

// Eval implements Expr.
func (e *RegexExpr) Eval(env Env) (Value, error) {
	v, err := e.X.Eval(env)
	if err != nil {
		return Value{}, err
	}
	return Value{Term: rdf.BoolLit(e.re.MatchString(v.Term.Value))}, nil
}

// Vars implements Expr.
func (e *RegexExpr) Vars(dst map[string]bool) { e.X.Vars(dst) }

func (e *RegexExpr) String() string {
	if e.Flags != "" {
		return fmt.Sprintf("REGEX(%s, %q, %q)", e.X, e.Pattern, e.Flags)
	}
	return fmt.Sprintf("REGEX(%s, %q)", e.X, e.Pattern)
}

// StrExpr is STR(expr): the lexical form of a term.
type StrExpr struct{ X Expr }

// Eval implements Expr.
func (e StrExpr) Eval(env Env) (Value, error) {
	v, err := e.X.Eval(env)
	if err != nil {
		return Value{}, err
	}
	return Value{Term: rdf.Lit(v.Term.Value)}, nil
}

// Vars implements Expr.
func (e StrExpr) Vars(dst map[string]bool) { e.X.Vars(dst) }

func (e StrExpr) String() string { return fmt.Sprintf("STR(%s)", e.X) }
