package sparql_test

import (
	"strings"
	"testing"

	"mdm/internal/rdf"
	"mdm/internal/rewrite"
	"mdm/internal/sparql"
	"mdm/internal/usecase"
)

// fuzzDataset is a small fixed dataset the fuzzer evaluates parsed
// queries against, so evaluation code is exercised too (evaluation may
// fail, but must not panic).
func fuzzDataset() *rdf.Dataset {
	ds := rdf.NewDataset()
	ex := func(s string) rdf.Term { return rdf.IRI("http://ex.org/" + s) }
	ds.Default().MustAdd(rdf.T(ex("s"), ex("p"), rdf.IntLit(1)))
	ds.Default().MustAdd(rdf.T(ex("s"), ex("q"), rdf.Lit("v")))
	ds.Graph(ex("g")).MustAdd(rdf.T(ex("s2"), ex("p"), rdf.LangLit("hola", "es")))
	return ds
}

// seedQueries collects realistic corpus entries: hand-written queries in
// the shapes the tests use plus SPARQL renderings produced by the
// rewriting pipeline for the use-case walks (the queries MDM itself
// generates).
func seedQueries() []string {
	seeds := []string{
		"SELECT * WHERE { ?s ?p ?o }",
		"ASK { <http://ex.org/s> <http://ex.org/p> 1 }",
		`PREFIX ex: <http://ex.org/> SELECT DISTINCT ?s ?o WHERE { ?s ex:p ?o . FILTER (?o >= 1 && BOUND(?s)) } ORDER BY DESC(?o) LIMIT 3 OFFSET 1`,
		`PREFIX ex: <http://ex.org/> SELECT ?s WHERE { { ?s ex:p ?o } UNION { ?s ex:q "v" } OPTIONAL { ?s ex:r ?w } }`,
		`PREFIX ex: <http://ex.org/> SELECT ?g ?s WHERE { GRAPH ?g { ?s ex:p ?o . FILTER (REGEX(?o, "^h", "i")) } }`,
		`SELECT ?s WHERE { ?s a <http://ex.org/C> . FILTER (STR(?s) = "x" || !BOUND(?s)) }`,
		// Property paths: every operator, precedence mixes, grouped
		// closures, paths in predicate-object lists.
		`PREFIX ex: <http://ex.org/> SELECT ?x WHERE { ex:s ex:p+ ?x }`,
		`PREFIX ex: <http://ex.org/> SELECT ?x ?y WHERE { ?x ex:p* ?y . ?y ^ex:q ?x }`,
		`PREFIX ex: <http://ex.org/> SELECT ?x WHERE { ex:s ^ex:p/ex:q|ex:r ?x }`,
		`PREFIX ex: <http://ex.org/> SELECT ?x WHERE { ex:s (ex:p/ex:q)+ ?x ; (^ex:p)? ?y }`,
		`PREFIX ex: <http://ex.org/> ASK { ex:s (a|ex:p)* 1 }`,
		// Aggregation: GROUP BY, HAVING, COUNT(*)/DISTINCT, MIN/MAX/SUM.
		`PREFIX ex: <http://ex.org/> SELECT ?s (COUNT(*) AS ?n) WHERE { ?s ex:p ?o } GROUP BY ?s HAVING (?n > 1)`,
		`PREFIX ex: <http://ex.org/> SELECT (COUNT(DISTINCT ?o) AS ?n) (SUM(?o) AS ?t) WHERE { ?s ex:p ?o }`,
		`PREFIX ex: <http://ex.org/> SELECT ?g (MIN(?o) AS ?lo) (MAX(?o) AS ?hi) WHERE { ?g ex:p+ ?o } GROUP BY ?g ORDER BY ?g LIMIT 2`,
	}
	f := usecase.MustNew()
	r := rewrite.New(f.Ont, f.Reg)
	if res, err := r.Rewrite(usecase.Fig8Walk()); err == nil {
		seeds = append(seeds, res.SPARQL)
	}
	if res, err := r.Rewrite(usecase.NationalityWalk()); err == nil {
		seeds = append(seeds, res.SPARQL)
	}
	return seeds
}

// renderStable reports whether every term in the query re-lexes after
// Query.String rendering. The concrete syntax has irreducible
// ambiguities for degenerate terms that only prefixed-name expansion
// can produce — an IRI like <0> lexes as a less-than operator, and
// literals with control or non-ASCII bytes render through strconv.Quote
// escapes the lexer does not support — so the round-trip property is
// asserted only for queries free of such terms.
func renderStable(q *sparql.Query) bool {
	stable := true
	var checkTerm func(t rdf.Term)
	checkTerm = func(t rdf.Term) {
		switch t.Kind {
		case rdf.KindIRI:
			v := t.Value
			if strings.ContainsAny(v, ">\n") {
				stable = false
				return
			}
			if v == "" {
				return // <> re-lexes fine
			}
			switch c := v[0]; {
			case c == ' ' || c == '\t' || c == '=' || c == '?' || c == '$' ||
				c == '"' || c == '+' || c == '-' || (c >= '0' && c <= '9'):
				stable = false
			}
		case rdf.KindLiteral:
			for _, ch := range t.Value {
				if ch < 0x20 || ch > 0x7e {
					stable = false
					return
				}
			}
			if t.Datatype != "" {
				checkTerm(rdf.IRI(t.Datatype))
			}
		}
	}
	checkNode := func(n sparql.Node) {
		if !n.IsVar() {
			checkTerm(n.Term)
		}
	}
	var checkExpr func(e sparql.Expr)
	checkExpr = func(e sparql.Expr) {
		switch x := e.(type) {
		case sparql.ConstExpr:
			checkTerm(x.Term)
		case sparql.CmpExpr:
			checkExpr(x.L)
			checkExpr(x.R)
		case sparql.LogicExpr:
			checkExpr(x.L)
			checkExpr(x.R)
		case sparql.NotExpr:
			checkExpr(x.X)
		case sparql.StrExpr:
			checkExpr(x.X)
		case *sparql.RegexExpr:
			checkExpr(x.X)
			for _, s := range []string{x.Pattern, x.Flags} {
				for _, ch := range s {
					if ch < 0x20 || ch > 0x7e {
						stable = false
					}
				}
			}
		}
	}
	var checkGroup func(g *sparql.Group)
	checkGroup = func(g *sparql.Group) {
		for _, pat := range g.Patterns {
			switch p := pat.(type) {
			case sparql.TriplePattern:
				checkNode(p.S)
				checkNode(p.P)
				checkNode(p.O)
			case sparql.Optional:
				checkGroup(p.Group)
			case sparql.Union:
				for _, b := range p.Branches {
					checkGroup(b)
				}
			case sparql.GraphPattern:
				checkNode(p.Name)
				checkGroup(p.Group)
			case sparql.PathPattern:
				checkNode(p.S)
				checkPath(p.Path, checkTerm)
				checkNode(p.O)
			}
		}
		for _, f := range g.Filters {
			checkExpr(f)
		}
	}
	checkGroup(q.Where)
	for _, h := range q.Having {
		checkExpr(h)
	}
	return stable
}

// checkPath applies checkTerm to every link IRI in the path tree.
func checkPath(p *sparql.Path, checkTerm func(rdf.Term)) {
	if p == nil {
		return
	}
	if p.Kind == sparql.PathLink {
		checkTerm(p.IRI)
		return
	}
	checkPath(p.Sub, checkTerm)
	checkPath(p.L, checkTerm)
	checkPath(p.R, checkTerm)
}

// FuzzParse checks that the tokenizer/parser never panic, and that any
// query that parses (a) renders to concrete syntax that re-parses, for
// queries whose terms survive rendering, and (b) evaluates without
// panicking.
func FuzzParse(f *testing.F) {
	for _, s := range seedQueries() {
		f.Add(s)
	}
	ds := fuzzDataset()
	f.Fuzz(func(t *testing.T, src string) {
		q, err := sparql.Parse(src)
		if err != nil {
			return
		}
		if renderStable(q) {
			rendered := q.String()
			if _, rerr := sparql.Parse(rendered); rerr != nil {
				t.Fatalf("parsed query renders to non-parsable syntax: %v\ninput: %q\nrendered: %q", rerr, src, rendered)
			}
		}
		_, _ = sparql.Eval(ds, q) // must not panic; errors are fine
	})
}
