package sparql

import (
	"context"
	"fmt"
	"testing"

	"mdm/internal/rdf"
)

// Deterministic coverage for the hash-join operator: build/probe edge
// cases the randomized spec harness may not hit every run, plus the
// plan-cache invalidation rules the operator's plans depend on.

// withJoinMode runs f with the planner's join choice forced, restoring
// the previous mode even when f fails the test.
func withJoinMode(t testing.TB, mode int32, f func()) {
	t.Helper()
	old := joinMode
	joinMode = mode
	defer func() { joinMode = old }()
	f()
}

func hashJoinDataset() *rdf.Dataset {
	ds := rdf.NewDataset()
	g := ds.Default()
	ex := func(s string) rdf.Term { return rdf.IRI("http://ex.org/" + s) }
	// Duplicate join keys on both sides: two ?a rows share ?b=b0, and
	// b0 fans out to two ?c values.
	g.MustAdd(rdf.T(ex("a1"), ex("p0"), ex("b0")))
	g.MustAdd(rdf.T(ex("a2"), ex("p0"), ex("b0")))
	g.MustAdd(rdf.T(ex("a3"), ex("p0"), ex("b1")))
	g.MustAdd(rdf.T(ex("b0"), ex("p1"), ex("c1")))
	g.MustAdd(rdf.T(ex("b0"), ex("p1"), ex("c2")))
	// p2 is interned but never links to any ?b value: an empty join.
	g.MustAdd(rdf.T(ex("z"), ex("p2"), ex("z")))
	// pEmpty is interned (as an object) but no triple uses it as a
	// predicate: a pattern over it has an empty — not dead — match set.
	g.MustAdd(rdf.T(ex("meta"), ex("ref"), ex("pEmpty")))
	return ds
}

// evalRows evaluates src and returns the decoded solution multiset.
func evalRows(t *testing.T, ds *rdf.Dataset, src string) []Binding {
	t.Helper()
	res, err := Run(ds, src)
	if err != nil {
		t.Fatalf("Run(%q): %v", src, err)
	}
	return res.Solutions()
}

// assertStrategiesAgree evaluates src under forced-nested and
// forced-hash and asserts both produce the expected row count and the
// same solution multiset.
func assertStrategiesAgree(t *testing.T, ds *rdf.Dataset, src string, rows int) {
	t.Helper()
	var nested, hashed []Binding
	var vars []string
	withJoinMode(t, joinForceNested, func() {
		res, err := Run(ds, src)
		if err != nil {
			t.Fatalf("nested Run(%q): %v", src, err)
		}
		nested, vars = res.Solutions(), res.Vars
	})
	withJoinMode(t, joinForceHash, func() {
		hashed = evalRows(t, ds, src)
	})
	if len(nested) != rows || len(hashed) != rows {
		t.Fatalf("rows nested=%d hash=%d, want %d\nquery: %s", len(nested), len(hashed), rows, src)
	}
	mn, mh := multiset(vars, nested), multiset(vars, hashed)
	for k, n := range mn {
		if mh[k] != n {
			t.Fatalf("strategy multisets differ\nquery: %s\ndiff:\n%s", src, diffMultisets(mh, mn))
		}
	}
	if len(mn) != len(mh) {
		t.Fatalf("strategy multisets differ in distinct rows (%d vs %d)\nquery: %s", len(mh), len(mn), src)
	}
}

func TestHashJoinEdgeCases(t *testing.T) {
	ds := hashJoinDataset()
	pre := `PREFIX ex: <http://ex.org/> `
	cases := []struct {
		name string
		src  string
		rows int
	}{
		{"duplicate join keys both sides",
			pre + `SELECT ?a ?c WHERE { ?a ex:p0 ?b . ?b ex:p1 ?c }`, 4},
		{"empty build side",
			pre + `SELECT ?a ?c WHERE { ?a ex:p0 ?b . ?b ex:pEmpty ?c }`, 0},
		{"empty join (non-empty build, no key matches)",
			pre + `SELECT ?a ?c WHERE { ?a ex:p0 ?b . ?b ex:p2 ?c }`, 0},
		{"build side dead constant",
			pre + `SELECT ?a WHERE { ?a ex:p0 ?b . ?b ex:neverInterned ?c }`, 0},
		{"cartesian (no shared variable)",
			pre + `SELECT ?a ?z WHERE { ?a ex:p0 ?b . ?z ex:p2 ?z2 }`, 3},
		{"repeated variable on build side",
			pre + `SELECT ?z WHERE { ?z ex:p2 ?z }`, 1},
		{"probe rows from UNION bind the join var on one branch only",
			pre + `SELECT ?a ?b ?c WHERE { { ?a ex:p0 ?b } UNION { ?c ex:p1 ?x } . ?b ex:p1 ?y }`, 8},
		{"join var under OPTIONAL stays out of the key",
			pre + `SELECT ?a ?b ?c WHERE { ?a ex:p0 ?b OPTIONAL { ?b ex:p1 ?c } }`, 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			assertStrategiesAgree(t, ds, tc.src, tc.rows)
			// And both must agree with the reference evaluator.
			q := MustParse(tc.src)
			checkEquivalence(t, ds, q, -2)
		})
	}
}

// TestHashJoinUnboundKeySlotFallsBack pins the operator-level fallback:
// when a probe row leaves a key slot unbound — the planner believed the
// variable bound, the runtime disagrees — the operator must scan the
// whole table and still produce exactly the nested-loop answer, binding
// the variable from the match.
func TestHashJoinUnboundKeySlotFallsBack(t *testing.T) {
	ds := hashJoinDataset()
	q := MustParse(`PREFIX ex: <http://ex.org/> SELECT ?s ?o WHERE { ?s ex:p0 ?o }`)
	lay := q.layout()
	e := &evaluator{ds: ds, dict: ds.Dict(), lay: lay, ctx: context.Background()}
	p := e.planTriple(TriplePattern{
		S: V("s"),
		P: N(rdf.IRI("http://ex.org/p0")),
		O: V("o"),
	}, ds.Default())
	p.hash = true
	p.keySlots = []int{lay.index["s"]} // keyed on ?s ...
	p.keyPos = []uint8{0}

	seed := e.newRow()
	for i := range seed {
		seed[i] = unboundID // ... but ?s is unbound in the probe row
	}
	it := &hashJoinIter{e: e, src: &onceIter{row: seed}, p: p, scratch: e.newRow(), chain: -1}
	got := 0
	for it.next() != nil {
		got++
	}
	if want := ds.Default().Count(rdf.Any, rdf.IRI("http://ex.org/p0"), rdf.Any); got != want {
		t.Fatalf("fallback emitted %d rows, want %d", got, want)
	}

	// A bound-but-absent key value must produce nothing via the hash path.
	seed2 := e.newRow()
	for i := range seed2 {
		seed2[i] = unboundID
	}
	zID, ok := ds.Dict().ID(rdf.IRI("http://ex.org/z"))
	if !ok {
		t.Fatal("z not interned")
	}
	seed2[lay.index["s"]] = zID
	it2 := &hashJoinIter{e: e, src: &onceIter{row: seed2}, p: p, scratch: e.newRow(), chain: -1}
	if r := it2.next(); r != nil {
		t.Fatalf("probe with absent key emitted a row: %v", r)
	}
}

// TestPlanCacheReuseAndInvalidation pins the plan cache contract: a
// re-evaluation against unchanged dataset structure reuses the compiled
// plan; interning a new term (which can revive a dead constant) or
// changing the graph set recompiles.
func TestPlanCacheReuseAndInvalidation(t *testing.T) {
	ds := rdf.NewDataset()
	ex := func(s string) rdf.Term { return rdf.IRI("http://ex.org/" + s) }
	ds.Default().MustAdd(rdf.T(ex("s"), ex("p"), ex("o")))

	q := MustParse(`PREFIX ex: <http://ex.org/> SELECT ?s WHERE { ?s ex:missing ?o }`)
	if res, err := Eval(ds, q); err != nil || res.Len() != 0 {
		t.Fatalf("dead-constant query: len=%v err=%v", res.Len(), err)
	}
	first := q.plan.Load()
	if first == nil {
		t.Fatal("no plan cached after Eval")
	}
	if _, err := Eval(ds, q); err != nil {
		t.Fatal(err)
	}
	if q.plan.Load() != first {
		t.Fatal("plan recompiled although dataset structure is unchanged")
	}

	// Interning ex:missing revives the constant: the cached dead plan
	// must not survive.
	ds.Default().MustAdd(rdf.T(ex("s2"), ex("missing"), ex("o2")))
	res, err := Eval(ds, q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("revived constant found %d rows, want 1", res.Len())
	}
	if q.plan.Load() == first {
		t.Fatal("stale plan reused after a new term was interned")
	}

	// GRAPH ?g plans snapshot the named-graph set; creating a graph
	// whose name term is already interned must still invalidate.
	gq := MustParse(`SELECT ?g ?s WHERE { GRAPH ?g { ?s ?p ?o } }`)
	if res, err := Eval(ds, gq); err != nil || res.Len() != 0 {
		t.Fatalf("no named graphs yet: len=%v err=%v", res.Len(), err)
	}
	gname := ex("s") // already interned as a subject
	ds.Graph(gname).MustAdd(rdf.T(ex("a"), ex("b"), ex("c")))
	res, err = Eval(ds, gq)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("new named graph invisible to cached plan: %d rows", res.Len())
	}

	// Dropping it must invalidate again.
	ds.DropGraph(gname)
	res, err = Eval(ds, gq)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 0 {
		t.Fatalf("dropped graph still visible: %d rows", res.Len())
	}
}

// TestPlanCachePerDataset ensures a query evaluated against a second
// dataset does not reuse the first dataset's plan.
func TestPlanCachePerDataset(t *testing.T) {
	ex := func(s string) rdf.Term { return rdf.IRI("http://ex.org/" + s) }
	a, b := rdf.NewDataset(), rdf.NewDataset()
	a.Default().MustAdd(rdf.T(ex("s"), ex("p"), ex("o1")))
	b.Default().MustAdd(rdf.T(ex("s"), ex("p"), ex("o2")))
	b.Default().MustAdd(rdf.T(ex("s"), ex("p"), ex("o3")))
	q := MustParse(`PREFIX ex: <http://ex.org/> SELECT ?o WHERE { ?s ex:p ?o }`)
	ra, err := Eval(a, q)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Eval(b, q)
	if err != nil {
		t.Fatal(err)
	}
	if ra.Len() != 1 || rb.Len() != 2 {
		t.Fatalf("rows a=%d b=%d, want 1 and 2", ra.Len(), rb.Len())
	}
}

// benchJoinDataset mirrors the root BenchmarkSPARQLJoinRows fixture:
// a 3-pattern BGP over ~10k triples producing 9k rows.
func benchJoinDataset() (*rdf.Dataset, *Query) {
	ds := rdf.NewDataset()
	g := ds.Default()
	ex := func(p, i int) rdf.Term { return rdf.IRI(fmt.Sprintf("http://ex.org/n%d_%d", p, i)) }
	p0, p1 := rdf.IRI("http://ex.org/p0"), rdf.IRI("http://ex.org/p1")
	p2, p3 := rdf.IRI("http://ex.org/p2"), rdf.IRI("http://ex.org/p3")
	for x := 0; x < 1000; x++ {
		g.MustAdd(rdf.T(ex(0, x), p0, ex(1, x%100)))
		g.MustAdd(rdf.T(ex(0, x), p2, rdf.IntLit(int64(x))))
	}
	for m := 0; m < 100; m++ {
		for k := 0; k < 9; k++ {
			g.MustAdd(rdf.T(ex(1, m), p1, rdf.IntLit(int64(m*9+k))))
		}
	}
	for i := 0; i < 7100; i++ {
		g.MustAdd(rdf.T(ex(2, i), p3, rdf.IntLit(int64(i))))
	}
	q := MustParse(`PREFIX ex: <http://ex.org/>
SELECT ?a ?c ?w WHERE { ?a ex:p0 ?b . ?b ex:p1 ?c . ?a ex:p2 ?w }`)
	return ds, q
}

// BenchmarkJoinStrategies contrasts the two join operators on the same
// wide join, with the cost model's pick alongside: the gap between
// nested and hash is what chooseJoin's constants buy.
func BenchmarkJoinStrategies(b *testing.B) {
	ds, q := benchJoinDataset()
	for _, tc := range []struct {
		name string
		mode int32
	}{{"auto", joinAuto}, {"nested", joinForceNested}, {"hash", joinForceHash}} {
		b.Run(tc.name, func(b *testing.B) {
			withJoinMode(b, tc.mode, func() {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res, err := Eval(ds, q)
					if err != nil {
						b.Fatal(err)
					}
					if res.Len() != 9000 {
						b.Fatalf("rows = %d", res.Len())
					}
				}
			})
		})
	}
}

// TestSortCanonicalSparseRanks drives the canonical sort's sparse-rank
// path: a tiny result over a dictionary large enough that dense
// ID-indexed rank arrays would be dictionary-sized. The visible order
// must stay the canonical term order.
func TestSortCanonicalSparseRanks(t *testing.T) {
	ds := rdf.NewDataset()
	g := ds.Default()
	// Inflate the dictionary well past the sparse threshold.
	for i := 0; i < 3000; i++ {
		g.MustAdd(rdf.T(
			rdf.IRI(fmt.Sprintf("http://ex.org/noise%04d", i)),
			rdf.IRI("http://ex.org/noisep"),
			rdf.IntLit(int64(i))))
	}
	// The two interesting triples intern last, so their IDs are maximal.
	g.MustAdd(rdf.T(rdf.IRI("http://ex.org/zz"), rdf.IRI("http://ex.org/p"), rdf.Lit("b")))
	g.MustAdd(rdf.T(rdf.IRI("http://ex.org/aa"), rdf.IRI("http://ex.org/p"), rdf.Lit("a")))

	res, err := Run(ds, `PREFIX ex: <http://ex.org/> SELECT ?s WHERE { ?s ex:p ?v }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("rows = %d, want 2", res.Len())
	}
	first, _ := res.Term(0, "s")
	second, _ := res.Term(1, "s")
	if first.Value != "http://ex.org/aa" || second.Value != "http://ex.org/zz" {
		t.Fatalf("canonical order broken under sparse ranks: %s, %s", first.Value, second.Value)
	}
	q := MustParse(`PREFIX ex: <http://ex.org/> SELECT ?s ?v WHERE { ?s ex:p ?v }`)
	checkEquivalence(t, ds, q, -3)
}
