package sparql

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"mdm/internal/obs"
	"mdm/internal/rdf"
)

// Engine metrics, registered on the process-global registry at init.
// Instrumentation sites pre-resolve their label combinations here so
// the per-query cost is an atomic add, never a map lookup.
var (
	obsStageDur = obs.Default.NewHistogramVec("mdm_sparql_stage_duration_seconds",
		"SPARQL lifecycle stage durations (parse, plan, execute).", obs.DefBuckets, "stage")
	obsStageParse   = obsStageDur.With("parse")
	obsStagePlan    = obsStageDur.With("plan")
	obsStageExecute = obsStageDur.With("execute")

	obsPlanCache = obs.Default.NewCounterVec("mdm_sparql_plan_cache_total",
		"Plan-cache lookups by result.", "result")
	obsPlanCacheHit  = obsPlanCache.With("hit")
	obsPlanCacheMiss = obsPlanCache.With("miss")

	obsJoinStrategy = obs.Default.NewCounterVec("mdm_sparql_join_strategy_total",
		"Join algorithm chosen per planned triple pattern (counted at plan compile).", "strategy")
	obsJoinNested = obsJoinStrategy.With("nested_loop")
	obsJoinHash   = obsJoinStrategy.With("hash")
	obsJoinMorsel = obsJoinStrategy.With("morsel_parallel")

	obsRowsEmitted = obs.Default.NewCounter("mdm_sparql_rows_emitted_total",
		"Solutions emitted by SPARQL cursors.")

	obsPathExpansions = obs.Default.NewCounter("mdm_sparql_path_expansions_total",
		"Property-path closure node expansions.")

	obsParBatches = obs.Default.NewCounter("mdm_sparql_parallel_batches_total",
		"Morsel-parallel super-batches executed.")
	obsParRows = obs.Default.NewCounter("mdm_sparql_parallel_rows_total",
		"Input rows fanned out to morsel-parallel workers.")
	obsParBusy = obs.Default.NewCounterVec("mdm_sparql_parallel_worker_busy_seconds_total",
		"Busy time per morsel-parallel worker lane; utilization is the "+
			"per-lane rate of this counter.", "worker")
	// One cell per possible lane, resolved once (lanes are 0-indexed).
	obsParBusyLane = func() [maxParWorkers]*obs.Counter {
		var lanes [maxParWorkers]*obs.Counter
		for i := range lanes {
			lanes[i] = obsParBusy.With(strconv.Itoa(i))
		}
		return lanes
	}()
)

// ObserveStage records one lifecycle-stage duration in the engine's
// stage histogram. The plan stage is recorded by EvalCursor itself;
// parse and execute belong to the callers that own those phases (the
// facade parses, the REST/facade drain loop executes), so this is
// exported for them.
func ObserveStage(stage string, d time.Duration) {
	switch stage {
	case "parse":
		obsStageParse.Observe(d.Seconds())
	case "plan":
		obsStagePlan.Observe(d.Seconds())
	case "execute":
		obsStageExecute.Observe(d.Seconds())
	}
}

// traceIter wraps one operator when EXPLAIN detail is on, charging
// wall time and row counts to the operator's span. Timing is inclusive
// (EXPLAIN ANALYZE semantics): an operator's time includes pulling
// from its input, so subtracting the input span isolates self time.
// The wrapper exists only on traced evaluations — the untraced path
// never sees it.
type traceIter struct {
	src rowIter
	sp  *obs.Span
}

func (t *traceIter) next() []rdf.TermID {
	t0 := time.Now()
	r := t.src.next()
	t.sp.Dur += time.Since(t0)
	t.sp.Calls++
	if r != nil {
		t.sp.RowsOut++
	}
	return r
}

// traced wraps it with a span keyed by key (a plan-node pointer, so
// the per-row re-instantiation of OPTIONAL/UNION/GRAPH bodies
// aggregates into one span; tail operators pass themselves). src is
// the operator's row source, linked so the report can derive rows_in.
// A nil or detail-less trace returns it unchanged.
func (e *evaluator) traced(it rowIter, key any, name, strategy string, src rowIter) rowIter {
	tr := e.trace
	if tr == nil || !tr.Detail {
		return it
	}
	sp := tr.Operator(key, name, strategy)
	if ts, ok := src.(*traceIter); ok {
		sp.SetInput(ts.sp)
	}
	return &traceIter{src: it, sp: sp}
}

// summary renders the counted plan shape as the one-line string
// stored on the cached plan — stable across cache hits, cheap enough
// to build once per compile, and carried into EXPLAIN reports and
// slow-query log lines.
func (c planCounts) summary(par int) string {
	var parts []string
	add := func(n int, label string) {
		if n > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", label, n))
		}
	}
	add(c.nested, "nested")
	add(c.hash, "hash")
	add(c.morsel, "morsel")
	if c.morsel > 0 {
		parts = append(parts, fmt.Sprintf("workers=%d", par))
	}
	add(c.paths, "path")
	add(c.optionals, "optional")
	add(c.unions, "union")
	add(c.graphs, "graph")
	add(c.filters, "filter")
	add(c.dead, "dead")
	if len(parts) == 0 {
		return "empty"
	}
	return strings.Join(parts, " ")
}

type planCounts struct {
	nested, hash, morsel, paths int
	optionals, unions, graphs   int
	filters, dead               int
}

func (c *planCounts) group(gp *groupPlan) {
	c.filters += len(gp.filters)
	for _, p := range gp.patterns {
		switch pl := p.(type) {
		case *triplePlan:
			switch {
			case pl.dead:
				c.dead++
			case pl.par:
				c.morsel++
			case pl.hash:
				c.hash++
			default:
				c.nested++
			}
		case *pathPlan:
			c.paths++
		case *optionalPlan:
			c.optionals++
			c.group(pl.sub)
		case *unionPlan:
			c.unions++
			for _, b := range pl.branches {
				c.group(b)
			}
		case *graphPlan:
			c.graphs++
			for _, en := range pl.entries {
				c.group(en.sub)
			}
		case *inlineGroupPlan:
			c.group(pl.sub)
		case *deadPlan:
			c.dead++
		}
	}
}

// countJoinStrategies bumps the per-strategy counters for a freshly
// compiled plan. Cache hits deliberately do not re-count: the metric
// tracks planner decisions, and pairs with the plan-cache hit counter.
func countJoinStrategies(c planCounts) {
	if c.nested+c.paths > 0 {
		obsJoinNested.Add(float64(c.nested + c.paths))
	}
	if c.hash > 0 {
		obsJoinHash.Add(float64(c.hash))
	}
	if c.morsel > 0 {
		obsJoinMorsel.Add(float64(c.morsel))
	}
}
