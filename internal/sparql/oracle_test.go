package sparql

import (
	"sort"
	"strings"

	"mdm/internal/rdf"
)

// This file retains the pre-ID-row, Binding-map-based evaluator as a
// reference oracle. It is deliberately simple: solutions are maps, terms
// are matched at the Term level, and no selectivity reordering happens
// (patterns run in written order, with only the semantics-bearing
// OPTIONAL hoisting applied). The randomized harness in spec_test.go
// evaluates every generated query through both this oracle and the
// ID-row engine and asserts solution-multiset equality, so the ~600-line
// engine rewrite cannot drift semantically without a test failing.
//
// The oracle lives in a _test.go file: it compiles only during tests and
// adds nothing to production binaries.

// refResult mirrors Result for the oracle.
type refResult struct {
	Vars []string
	Sols []Binding
	Bool bool
	Form QueryForm
}

// refCtx carries the dataset and active graph through evaluation.
type refCtx struct {
	ds     *rdf.Dataset
	active *rdf.Graph
}

// refEval is the reference implementation of Eval.
func refEval(ds *rdf.Dataset, q *Query) (*refResult, error) {
	ctx := refCtx{ds: ds, active: ds.Default()}
	sols, err := refGroup(ctx, q.Where, []Binding{{}})
	if err != nil {
		return nil, err
	}
	res := &refResult{Form: q.Form}
	if q.Form == FormAsk {
		res.Bool = len(sols) > 0
		return res, nil
	}

	if q.Star {
		res.Vars = q.Where.AllVars()
	} else {
		res.Vars = q.Variables
	}

	// ORDER BY before projection so order keys may be non-projected.
	if len(q.OrderBy) > 0 {
		sort.SliceStable(sols, func(i, j int) bool {
			for _, k := range q.OrderBy {
				ti, iok := sols[i][k.Var]
				tj, jok := sols[j][k.Var]
				var c int
				switch {
				case !iok && !jok:
					c = 0
				case !iok:
					c = -1
				case !jok:
					c = 1
				default:
					c = compareOrder(ti, tj)
				}
				if c != 0 {
					if k.Desc {
						return c > 0
					}
					return c < 0
				}
			}
			return false
		})
	}

	// Project.
	projected := make([]Binding, 0, len(sols))
	for _, s := range sols {
		row := make(Binding, len(res.Vars))
		for _, v := range res.Vars {
			if t, ok := s[v]; ok {
				row[v] = t
			}
		}
		projected = append(projected, row)
	}

	if q.Distinct {
		projected = refDedupe(res.Vars, projected)
	}

	// Canonical order when ORDER BY is absent, as in the engine.
	if len(q.OrderBy) == 0 && len(projected) > 1 {
		sort.SliceStable(projected, func(i, j int) bool {
			for _, v := range res.Vars {
				ti, iok := projected[i][v]
				tj, jok := projected[j][v]
				switch {
				case !iok && !jok:
					continue
				case !iok:
					return true
				case !jok:
					return false
				}
				if c := rdf.Compare(ti, tj); c != 0 {
					return c < 0
				}
			}
			return false
		})
	}

	if q.Offset > 0 {
		if q.Offset >= len(projected) {
			projected = nil
		} else {
			projected = projected[q.Offset:]
		}
	}
	if q.Limit >= 0 && q.Limit < len(projected) {
		projected = projected[:q.Limit]
	}
	res.Sols = projected
	return res, nil
}

func refDedupe(vars []string, sols []Binding) []Binding {
	seen := map[string]bool{}
	out := sols[:0:0]
	for _, s := range sols {
		var key strings.Builder
		for _, v := range vars {
			if t, ok := s[v]; ok {
				key.WriteString(t.String())
			}
			key.WriteByte('\x00')
		}
		k := key.String()
		if !seen[k] {
			seen[k] = true
			out = append(out, s)
		}
	}
	return out
}

// refOrderPatterns applies only the semantics-bearing part of pattern
// planning: triple/UNION/GRAPH patterns in written order, OPTIONALs
// hoisted after them so left joins see the full base solution set.
func refOrderPatterns(ps []Pattern) []Pattern {
	if len(ps) <= 1 {
		return ps
	}
	out := make([]Pattern, 0, len(ps))
	for _, p := range ps {
		if _, ok := p.(Optional); !ok {
			out = append(out, p)
		}
	}
	for _, p := range ps {
		if _, ok := p.(Optional); ok {
			out = append(out, p)
		}
	}
	return out
}

func refGroup(ctx refCtx, g *Group, input []Binding) ([]Binding, error) {
	sols := input
	for _, pat := range refOrderPatterns(g.Patterns) {
		var err error
		sols, err = refPattern(ctx, pat, sols)
		if err != nil {
			return nil, err
		}
		if len(sols) == 0 {
			break
		}
	}
	for _, f := range g.Filters {
		kept := sols[:0:0]
		for _, s := range sols {
			v, err := f.Eval(s)
			if err != nil {
				continue // error => effective false
			}
			ok, err := v.AsBool()
			if err != nil || !ok {
				continue
			}
			kept = append(kept, s)
		}
		sols = kept
	}
	return sols, nil
}

func refPattern(ctx refCtx, pat Pattern, input []Binding) ([]Binding, error) {
	switch p := pat.(type) {
	case TriplePattern:
		return refTriple(ctx, p, input), nil
	case Optional:
		return refOptional(ctx, p, input)
	case Union:
		var out []Binding
		for _, branch := range p.Branches {
			bs, err := refGroup(ctx, branch, input)
			if err != nil {
				return nil, err
			}
			out = append(out, bs...)
		}
		return out, nil
	case GraphPattern:
		return refGraphPattern(ctx, p, input)
	default:
		panic("sparql: unknown pattern type in oracle")
	}
}

func refTriple(ctx refCtx, tp TriplePattern, input []Binding) []Binding {
	var out []Binding
	for _, b := range input {
		s := refResolve(tp.S, b)
		p := refResolve(tp.P, b)
		o := refResolve(tp.O, b)
		ctx.active.EachMatch(s, p, o, func(t rdf.Triple) bool {
			if nb, ok := refExtend(b, tp, t); ok {
				out = append(out, nb)
			}
			return true
		})
	}
	return out
}

// refExtend returns a fresh binding extending b with the pattern's
// variables bound to the matched triple, or ok = false when the triple
// conflicts with existing bindings or a repeated pattern variable.
func refExtend(b Binding, tp TriplePattern, t rdf.Triple) (Binding, bool) {
	if tp.S.IsVar() {
		if cur, ok := b[tp.S.Var]; ok && cur != t.S {
			return nil, false
		}
		if tp.P.IsVar() && tp.P.Var == tp.S.Var && t.P != t.S {
			return nil, false
		}
		if tp.O.IsVar() && tp.O.Var == tp.S.Var && t.O != t.S {
			return nil, false
		}
	}
	if tp.P.IsVar() {
		if cur, ok := b[tp.P.Var]; ok && cur != t.P {
			return nil, false
		}
		if tp.O.IsVar() && tp.O.Var == tp.P.Var && t.O != t.P {
			return nil, false
		}
	}
	if tp.O.IsVar() {
		if cur, ok := b[tp.O.Var]; ok && cur != t.O {
			return nil, false
		}
	}
	nb := b.Clone()
	if tp.S.IsVar() {
		nb[tp.S.Var] = t.S
	}
	if tp.P.IsVar() {
		nb[tp.P.Var] = t.P
	}
	if tp.O.IsVar() {
		nb[tp.O.Var] = t.O
	}
	return nb, true
}

func refResolve(n Node, b Binding) rdf.Term {
	if !n.IsVar() {
		return n.Term
	}
	if t, ok := b[n.Var]; ok {
		return t
	}
	return rdf.Any
}

func refOptional(ctx refCtx, opt Optional, input []Binding) ([]Binding, error) {
	var out []Binding
	for _, b := range input {
		ext, err := refGroup(ctx, opt.Group, []Binding{b})
		if err != nil {
			return nil, err
		}
		if len(ext) == 0 {
			out = append(out, b) // left-join: keep unextended
		} else {
			out = append(out, ext...)
		}
	}
	return out, nil
}

func refGraphPattern(ctx refCtx, gp GraphPattern, input []Binding) ([]Binding, error) {
	if !gp.Name.IsVar() {
		g, ok := ctx.ds.Lookup(gp.Name.Term)
		if !ok {
			return nil, nil // empty graph => no solutions
		}
		sub := refCtx{ds: ctx.ds, active: g}
		return refGroup(sub, gp.Group, input)
	}
	var out []Binding
	for _, name := range ctx.ds.GraphNames() {
		g, _ := ctx.ds.Lookup(name)
		sub := refCtx{ds: ctx.ds, active: g}
		var compat []Binding
		for _, b := range input {
			if cur, ok := b[gp.Name.Var]; ok {
				if cur != name {
					continue
				}
				compat = append(compat, b)
			} else {
				nb := b.Clone()
				nb[gp.Name.Var] = name
				compat = append(compat, nb)
			}
		}
		if len(compat) == 0 {
			continue
		}
		bs, err := refGroup(sub, gp.Group, compat)
		if err != nil {
			return nil, err
		}
		out = append(out, bs...)
	}
	return out, nil
}
