package sparql

import (
	"sort"
	"strings"

	"mdm/internal/rdf"
)

// This file retains the pre-ID-row, Binding-map-based evaluator as a
// reference oracle. It is deliberately simple: solutions are maps, terms
// are matched at the Term level, and no selectivity reordering happens
// (patterns run in written order, with only the semantics-bearing
// OPTIONAL hoisting applied). The randomized harness in spec_test.go
// evaluates every generated query through both this oracle and the
// ID-row engine and asserts solution-multiset equality, so the ~600-line
// engine rewrite cannot drift semantically without a test failing.
//
// The oracle lives in a _test.go file: it compiles only during tests and
// adds nothing to production binaries.

// refResult mirrors Result for the oracle.
type refResult struct {
	Vars []string
	Sols []Binding
	Bool bool
	Form QueryForm
}

// refCtx carries the dataset and active graph through evaluation.
type refCtx struct {
	ds     *rdf.Dataset
	active *rdf.Graph
}

// refEval is the reference implementation of Eval.
func refEval(ds *rdf.Dataset, q *Query) (*refResult, error) {
	ctx := refCtx{ds: ds, active: ds.Default()}
	sols, err := refGroup(ctx, q.Where, []Binding{{}})
	if err != nil {
		return nil, err
	}
	res := &refResult{Form: q.Form}
	if q.Form == FormAsk {
		res.Bool = len(sols) > 0
		return res, nil
	}

	if q.Star {
		res.Vars = q.Where.AllVars()
	} else {
		res.Vars = q.Variables
	}

	// Grouping/aggregation replaces the WHERE solutions before ORDER BY
	// and projection, exactly as the engine's groupByIter barrier sits
	// below the tail of the cursor pipeline. (ASK returns above: both
	// evaluators ignore aggregates for ASK.)
	if len(q.Aggregates) > 0 || len(q.GroupBy) > 0 {
		sols = refAggregate(q, sols)
	}

	// ORDER BY before projection so order keys may be non-projected.
	if len(q.OrderBy) > 0 {
		sort.SliceStable(sols, func(i, j int) bool {
			for _, k := range q.OrderBy {
				ti, iok := sols[i][k.Var]
				tj, jok := sols[j][k.Var]
				var c int
				switch {
				case !iok && !jok:
					c = 0
				case !iok:
					c = -1
				case !jok:
					c = 1
				default:
					c = compareOrder(ti, tj)
				}
				if c != 0 {
					if k.Desc {
						return c > 0
					}
					return c < 0
				}
			}
			return false
		})
	}

	// Project.
	projected := make([]Binding, 0, len(sols))
	for _, s := range sols {
		row := make(Binding, len(res.Vars))
		for _, v := range res.Vars {
			if t, ok := s[v]; ok {
				row[v] = t
			}
		}
		projected = append(projected, row)
	}

	if q.Distinct {
		projected = refDedupe(res.Vars, projected)
	}

	// Canonical order when ORDER BY is absent, as in the engine.
	if len(q.OrderBy) == 0 && len(projected) > 1 {
		sort.SliceStable(projected, func(i, j int) bool {
			for _, v := range res.Vars {
				ti, iok := projected[i][v]
				tj, jok := projected[j][v]
				switch {
				case !iok && !jok:
					continue
				case !iok:
					return true
				case !jok:
					return false
				}
				if c := rdf.Compare(ti, tj); c != 0 {
					return c < 0
				}
			}
			return false
		})
	}

	if q.Offset > 0 {
		if q.Offset >= len(projected) {
			projected = nil
		} else {
			projected = projected[q.Offset:]
		}
	}
	if q.Limit >= 0 && q.Limit < len(projected) {
		projected = projected[:q.Limit]
	}
	res.Sols = projected
	return res, nil
}

func refDedupe(vars []string, sols []Binding) []Binding {
	seen := map[string]bool{}
	out := sols[:0:0]
	for _, s := range sols {
		var key strings.Builder
		for _, v := range vars {
			if t, ok := s[v]; ok {
				key.WriteString(t.String())
			}
			key.WriteByte('\x00')
		}
		k := key.String()
		if !seen[k] {
			seen[k] = true
			out = append(out, s)
		}
	}
	return out
}

// refOrderPatterns applies only the semantics-bearing part of pattern
// planning: triple/UNION/GRAPH patterns in written order, OPTIONALs
// hoisted after them so left joins see the full base solution set.
func refOrderPatterns(ps []Pattern) []Pattern {
	if len(ps) <= 1 {
		return ps
	}
	out := make([]Pattern, 0, len(ps))
	for _, p := range ps {
		if _, ok := p.(Optional); !ok {
			out = append(out, p)
		}
	}
	for _, p := range ps {
		if _, ok := p.(Optional); ok {
			out = append(out, p)
		}
	}
	return out
}

func refGroup(ctx refCtx, g *Group, input []Binding) ([]Binding, error) {
	sols := input
	for _, pat := range refOrderPatterns(g.Patterns) {
		var err error
		sols, err = refPattern(ctx, pat, sols)
		if err != nil {
			return nil, err
		}
		if len(sols) == 0 {
			break
		}
	}
	for _, f := range g.Filters {
		kept := sols[:0:0]
		for _, s := range sols {
			v, err := f.Eval(s)
			if err != nil {
				continue // error => effective false
			}
			ok, err := v.AsBool()
			if err != nil || !ok {
				continue
			}
			kept = append(kept, s)
		}
		sols = kept
	}
	return sols, nil
}

func refPattern(ctx refCtx, pat Pattern, input []Binding) ([]Binding, error) {
	switch p := pat.(type) {
	case TriplePattern:
		return refTriple(ctx, p, input), nil
	case Optional:
		return refOptional(ctx, p, input)
	case Union:
		var out []Binding
		for _, branch := range p.Branches {
			bs, err := refGroup(ctx, branch, input)
			if err != nil {
				return nil, err
			}
			out = append(out, bs...)
		}
		return out, nil
	case GraphPattern:
		return refGraphPattern(ctx, p, input)
	case PathPattern:
		return refPathPattern(ctx, p, input), nil
	default:
		panic("sparql: unknown pattern type in oracle")
	}
}

func refTriple(ctx refCtx, tp TriplePattern, input []Binding) []Binding {
	var out []Binding
	for _, b := range input {
		s := refResolve(tp.S, b)
		p := refResolve(tp.P, b)
		o := refResolve(tp.O, b)
		ctx.active.EachMatch(s, p, o, func(t rdf.Triple) bool {
			if nb, ok := refExtend(b, tp, t); ok {
				out = append(out, nb)
			}
			return true
		})
	}
	return out
}

// refExtend returns a fresh binding extending b with the pattern's
// variables bound to the matched triple, or ok = false when the triple
// conflicts with existing bindings or a repeated pattern variable.
func refExtend(b Binding, tp TriplePattern, t rdf.Triple) (Binding, bool) {
	if tp.S.IsVar() {
		if cur, ok := b[tp.S.Var]; ok && cur != t.S {
			return nil, false
		}
		if tp.P.IsVar() && tp.P.Var == tp.S.Var && t.P != t.S {
			return nil, false
		}
		if tp.O.IsVar() && tp.O.Var == tp.S.Var && t.O != t.S {
			return nil, false
		}
	}
	if tp.P.IsVar() {
		if cur, ok := b[tp.P.Var]; ok && cur != t.P {
			return nil, false
		}
		if tp.O.IsVar() && tp.O.Var == tp.P.Var && t.O != t.P {
			return nil, false
		}
	}
	if tp.O.IsVar() {
		if cur, ok := b[tp.O.Var]; ok && cur != t.O {
			return nil, false
		}
	}
	nb := b.Clone()
	if tp.S.IsVar() {
		nb[tp.S.Var] = t.S
	}
	if tp.P.IsVar() {
		nb[tp.P.Var] = t.P
	}
	if tp.O.IsVar() {
		nb[tp.O.Var] = t.O
	}
	return nb, true
}

func refResolve(n Node, b Binding) rdf.Term {
	if !n.IsVar() {
		return n.Term
	}
	if t, ok := b[n.Var]; ok {
		return t
	}
	return rdf.Any
}

func refOptional(ctx refCtx, opt Optional, input []Binding) ([]Binding, error) {
	var out []Binding
	for _, b := range input {
		ext, err := refGroup(ctx, opt.Group, []Binding{b})
		if err != nil {
			return nil, err
		}
		if len(ext) == 0 {
			out = append(out, b) // left-join: keep unextended
		} else {
			out = append(out, ext...)
		}
	}
	return out, nil
}

func refGraphPattern(ctx refCtx, gp GraphPattern, input []Binding) ([]Binding, error) {
	if !gp.Name.IsVar() {
		g, ok := ctx.ds.Lookup(gp.Name.Term)
		if !ok {
			return nil, nil // empty graph => no solutions
		}
		sub := refCtx{ds: ctx.ds, active: g}
		return refGroup(sub, gp.Group, input)
	}
	var out []Binding
	for _, name := range ctx.ds.GraphNames() {
		g, _ := ctx.ds.Lookup(name)
		sub := refCtx{ds: ctx.ds, active: g}
		var compat []Binding
		for _, b := range input {
			if cur, ok := b[gp.Name.Var]; ok {
				if cur != name {
					continue
				}
				compat = append(compat, b)
			} else {
				nb := b.Clone()
				nb[gp.Name.Var] = name
				compat = append(compat, nb)
			}
		}
		if len(compat) == 0 {
			continue
		}
		bs, err := refGroup(sub, gp.Group, compat)
		if err != nil {
			return nil, err
		}
		out = append(out, bs...)
	}
	return out, nil
}

// --- property path oracle ---
//
// Naive Term-level path evaluation: no compiled plans, no bitsets, no
// frontier pooling. Links/sequences/alternatives/inverses preserve
// multiset cardinality (a sequence through two intermediates yields the
// end twice); +, * and ? use set semantics via a plain visited map, with
// * and ? contributing the zero-length match. This independently mirrors
// the semantics of pathEach/pathClosure in path.go.

func refPathPattern(ctx refCtx, pp PathPattern, input []Binding) []Binding {
	g := ctx.active
	var out []Binding
	for _, b := range input {
		s := refResolve(pp.S, b)
		o := refResolve(pp.O, b)
		emit := func(start, end rdf.Term) {
			if nb, ok := refPathExtend(b, pp, start, end); ok {
				out = append(out, nb)
			}
		}
		switch {
		case s != rdf.Any:
			for _, end := range refPathEnds(g, pp.Path, s, false) {
				emit(s, end)
			}
		case o != rdf.Any:
			// Walk the path backwards from the bound object.
			for _, start := range refPathEnds(g, pp.Path, o, true) {
				emit(start, o)
			}
		default:
			// Both ends free: zero-length semantics range over the
			// graph's nodes (subjects and objects), as in the engine.
			for _, n := range refNodes(g) {
				for _, end := range refPathEnds(g, pp.Path, n, false) {
					emit(n, end)
				}
			}
		}
	}
	return out
}

// refPathExtend checks endpoint compatibility (constants, prior
// bindings, a shared ?x path ?x variable) and extends the binding.
func refPathExtend(b Binding, pp PathPattern, s, o rdf.Term) (Binding, bool) {
	if pp.S.IsVar() {
		if cur, ok := b[pp.S.Var]; ok && cur != s {
			return nil, false
		}
		if pp.O.IsVar() && pp.O.Var == pp.S.Var && s != o {
			return nil, false
		}
	} else if pp.S.Term != s {
		return nil, false
	}
	if pp.O.IsVar() {
		if cur, ok := b[pp.O.Var]; ok && cur != o {
			return nil, false
		}
	} else if pp.O.Term != o {
		return nil, false
	}
	nb := b.Clone()
	if pp.S.IsVar() {
		nb[pp.S.Var] = s
	}
	if pp.O.IsVar() {
		nb[pp.O.Var] = o
	}
	return nb, true
}

// refPathEnds returns the path's end nodes starting from start; rev
// walks the path right-to-left (object towards subject), which is how
// the oracle evaluates a pattern whose object is bound.
func refPathEnds(g *rdf.Graph, p *Path, start rdf.Term, rev bool) []rdf.Term {
	switch p.Kind {
	case PathLink:
		var out []rdf.Term
		if rev {
			g.EachMatch(rdf.Any, p.IRI, start, func(t rdf.Triple) bool {
				out = append(out, t.S)
				return true
			})
		} else {
			g.EachMatch(start, p.IRI, rdf.Any, func(t rdf.Triple) bool {
				out = append(out, t.O)
				return true
			})
		}
		return out
	case PathInv:
		return refPathEnds(g, p.Sub, start, !rev)
	case PathSeq:
		l, r := p.L, p.R
		if rev {
			l, r = r, l
		}
		var out []rdf.Term
		for _, mid := range refPathEnds(g, l, start, rev) {
			out = append(out, refPathEnds(g, r, mid, rev)...)
		}
		return out
	case PathAlt:
		return append(refPathEnds(g, p.L, start, rev), refPathEnds(g, p.R, start, rev)...)
	case PathOpt:
		seen := map[rdf.Term]bool{start: true}
		out := []rdf.Term{start}
		for _, end := range refPathEnds(g, p.Sub, start, rev) {
			if !seen[end] {
				seen[end] = true
				out = append(out, end)
			}
		}
		return out
	case PathPlus, PathStar:
		visited := map[rdf.Term]bool{}
		var out []rdf.Term
		frontier := []rdf.Term{start}
		if p.Kind == PathStar {
			visited[start] = true
			out = append(out, start)
		}
		for len(frontier) > 0 {
			n := frontier[len(frontier)-1]
			frontier = frontier[:len(frontier)-1]
			for _, end := range refPathEnds(g, p.Sub, n, rev) {
				if visited[end] {
					continue
				}
				visited[end] = true
				out = append(out, end)
				frontier = append(frontier, end)
			}
		}
		return out
	default:
		panic("sparql: unknown path kind in oracle")
	}
}

// refNodes returns the distinct subjects and objects of the graph.
func refNodes(g *rdf.Graph) []rdf.Term {
	seen := map[rdf.Term]bool{}
	var out []rdf.Term
	for _, t := range g.Triples() {
		if !seen[t.S] {
			seen[t.S] = true
			out = append(out, t.S)
		}
		if !seen[t.O] {
			seen[t.O] = true
			out = append(out, t.O)
		}
	}
	return out
}

// --- aggregation oracle ---
//
// Map-based grouping over Binding solutions. The grouping logic (key
// construction, implicit group, DISTINCT, HAVING placement) is
// independent of the engine's groupByIter; only the leaf arithmetic
// (sumAcc, minTerm, maxTerm) is shared so formatting agrees by
// construction.

type refAggGroup struct {
	rep  Binding
	n    []int64
	sum  []sumAcc
	best []rdf.Term
	has  []bool
	seen []map[rdf.Term]bool
}

func refAggregate(q *Query, sols []Binding) []Binding {
	groups := map[string]*refAggGroup{}
	var order []*refAggGroup
	for _, s := range sols {
		var key strings.Builder
		for _, v := range q.GroupBy {
			if t, ok := s[v]; ok {
				key.WriteString(t.String())
			}
			key.WriteByte('\x00')
		}
		k := key.String()
		grp, ok := groups[k]
		if !ok {
			grp = &refAggGroup{
				rep:  s,
				n:    make([]int64, len(q.Aggregates)),
				sum:  make([]sumAcc, len(q.Aggregates)),
				best: make([]rdf.Term, len(q.Aggregates)),
				has:  make([]bool, len(q.Aggregates)),
				seen: make([]map[rdf.Term]bool, len(q.Aggregates)),
			}
			groups[k] = grp
			order = append(order, grp)
		}
		for i, a := range q.Aggregates {
			refAggUpdate(grp, i, a, s)
		}
	}
	if len(order) == 0 && len(q.GroupBy) == 0 {
		order = append(order, &refAggGroup{
			n:    make([]int64, len(q.Aggregates)),
			sum:  make([]sumAcc, len(q.Aggregates)),
			best: make([]rdf.Term, len(q.Aggregates)),
			has:  make([]bool, len(q.Aggregates)),
		})
	}
	out := make([]Binding, 0, len(order))
	for _, grp := range order {
		row := Binding{}
		for _, v := range q.GroupBy {
			if t, ok := grp.rep[v]; ok {
				row[v] = t
			}
		}
		for i, a := range q.Aggregates {
			switch a.Func {
			case AggCount:
				row[a.As] = rdf.IntLit(grp.n[i])
			case AggSum:
				if t, ok := grp.sum[i].term(); ok {
					row[a.As] = t
				}
			default: // AggMin, AggMax
				if grp.has[i] {
					row[a.As] = grp.best[i]
				}
			}
		}
		out = append(out, row)
	}
	// HAVING filters the grouped rows; an evaluation error is an
	// effective false, as for WHERE filters.
	for _, h := range q.Having {
		kept := out[:0:0]
		for _, row := range out {
			v, err := h.Eval(row)
			if err != nil {
				continue
			}
			ok, err := v.AsBool()
			if err != nil || !ok {
				continue
			}
			kept = append(kept, row)
		}
		out = kept
	}
	return out
}

func refAggUpdate(grp *refAggGroup, i int, a Aggregate, s Binding) {
	if a.Var == "" {
		grp.n[i]++ // COUNT(*): every row counts
		return
	}
	t, bound := s[a.Var]
	if !bound {
		return
	}
	if a.Distinct {
		if grp.seen[i] == nil {
			grp.seen[i] = map[rdf.Term]bool{}
		}
		if grp.seen[i][t] {
			return
		}
		grp.seen[i][t] = true
	}
	switch a.Func {
	case AggCount:
		grp.n[i]++
	case AggSum:
		grp.sum[i].add(t)
	case AggMin:
		if !grp.has[i] {
			grp.best[i], grp.has[i] = t, true
		} else {
			grp.best[i] = minTerm(grp.best[i], t)
		}
	case AggMax:
		if !grp.has[i] {
			grp.best[i], grp.has[i] = t, true
		} else {
			grp.best[i] = maxTerm(grp.best[i], t)
		}
	}
}
