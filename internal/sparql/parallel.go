package sparql

import (
	"fmt"
	"math/bits"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"mdm/internal/rdf"
)

// This file implements morsel-driven intra-query parallelism behind the
// Cursor contract. The planner marks root-level hash-join patterns
// whose estimated work clears a threshold (plan/chooseJoin in
// cursor.go); chainRoot fuses each maximal run of marked patterns into
// one morselJoinIter, which executes the run as a parallel pipeline
// segment:
//
//	build  — each pattern's match set is scanned shard-by-shard
//	         (rdf.Graph.AppendMatchIDsShard) by the worker pool and
//	         radix-partitioned by join-key hash into per-partition
//	         chain tables, so no two build workers ever write the
//	         same table (partitionedTable / evaluator.parTable);
//	probe  — input rows are pulled in super-batches on the caller's
//	         goroutine, split into contiguous per-worker morsels, and
//	         each worker drains a private chain of hashJoinIters (its
//	         own evaluator: arena, error latch, captured context) over
//	         its morsel into a private output slab;
//	merge  — the caller concatenates worker slabs in worker order,
//	         which restores the input-stream order of the morsels.
//
// All goroutines live strictly inside a single Next call: a super-batch
// spawns the pool, waits for it, and only then returns rows, so the
// cursor still "holds no locks or goroutines between Next calls" and an
// abandoned cursor leaks nothing. Cancellation is the same poll as the
// sequential path — every worker polls the context captured at batch
// start every few thousand candidates, so one ctx cancellation stops
// the whole pool within a polling quantum.
//
// Determinism: the merge keeps the operator-level stream in input
// order, and every SELECT pipeline ends in a canonical-order barrier (a
// total order over the projected columns), so a full drain is
// byte-identical to the sequential path's output. The spec harness
// asserts this under forced-parallel mode.

const (
	// maxParWorkers caps the GOMAXPROCS-derived default worker count;
	// beyond this the merge and batching overheads outgrow the win for
	// the row counts this engine sees.
	maxParWorkers = 8

	// morselRows is the number of input rows per worker per
	// super-batch. Large enough to amortize the per-batch goroutine
	// spawn (microseconds) over thousands of probes, small enough to
	// bound latency to first row and per-batch memory.
	morselRows = 1024

	// parallelMinWork is the planner threshold, in the cost model's
	// "emitted match" units (rows × (1 + fanout), see chooseJoin): below
	// it the fixed cost of sharded builds and a worker pool exceeds the
	// join work being split. The justifying benchmark is
	// BenchmarkParallelJoinDrain (see docs/QUERY_PLANNING.md).
	parallelMinWork = 4096
)

// parWorkers is the configured worker budget: 0 = automatic
// (GOMAXPROCS, capped), 1 = parallelism off, n>1 = exactly n workers.
var parWorkers atomic.Int32

func init() {
	// MDM_SPARQL_PARALLEL is the opt-out/override environment knob:
	// "off" (or "1") disables intra-query parallelism process-wide,
	// an integer fixes the worker count, unset/auto derives it from
	// GOMAXPROCS. Tests that need a deterministic sequential engine
	// set MDM_SPARQL_PARALLEL=off.
	switch v := os.Getenv("MDM_SPARQL_PARALLEL"); v {
	case "", "auto":
	case "off":
		parWorkers.Store(1)
	default:
		if n, err := strconv.Atoi(v); err == nil && n >= 1 {
			parWorkers.Store(int32(n))
		}
	}
}

// SetParallelism sets the intra-query worker budget: 0 restores the
// automatic GOMAXPROCS-derived default, 1 disables parallel execution,
// n > 1 uses exactly n workers. Safe to call concurrently with running
// queries; in-flight evaluations keep the budget they planned with.
func SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	parWorkers.Store(int32(n))
}

// parallelism resolves the current worker budget.
func parallelism() int {
	if n := parWorkers.Load(); n > 0 {
		return int(n)
	}
	n := runtime.GOMAXPROCS(0)
	if n > maxParWorkers {
		n = maxParWorkers
	}
	return n
}

// parMode forces the planner's parallelism decision; the spec harness
// uses parForceOn to run every randomized case through the morsel
// machinery regardless of size. Like joinMode it is mutated only by
// tests, between evaluations.
var parMode = parAuto

const (
	parAuto int32 = iota
	parForceOn
	parForceOff
)

// planParallelism decides the worker budget one evaluation plans with.
// ASK queries stay sequential (they want any one row, not a drained
// batch), as do variable-free queries (zero-width rows cannot be
// slab-split) and any query when the budget is 1.
func (e *evaluator) planParallelism(q *Query) int {
	if parMode == parForceOff {
		return 1
	}
	if q.Form == FormAsk || len(e.lay.names) == 0 {
		return 1
	}
	n := parallelism()
	if parMode == parForceOn && n < 2 {
		n = 2
	}
	return n
}

// partitionedTable is a hash-join build side split by join-key hash
// into power-of-two many independent chain tables: partition i holds
// exactly the matches whose key hashes there, so build workers write
// disjoint tables and a keyed probe touches one partition. parts has
// length 1 for keyless (cartesian) patterns.
type partitionedTable struct {
	parts []*hashTable
	shift uint // partition index = keyHash >> shift
}

func (pt *partitionedTable) part(k joinKey) *hashTable {
	return pt.parts[partIndex(k, pt.shift)]
}

// partIndex hashes a join key to a partition. Fibonacci-style mixing
// per component keeps dense sequential TermIDs from striping, and the
// top bits select the partition so the map hash (which uses low bits)
// stays independent within a partition.
func partIndex(k joinKey, shift uint) int {
	h := uint64(k[0])*0x9E3779B97F4A7C15 ^ uint64(k[1])*0xC2B2AE3D27D4EB4F ^ uint64(k[2])*0x165667B19E3779F9
	h ^= h >> 29
	h *= 0xBF58476D1CE4E5B9
	return int(h >> shift)
}

// parTable returns (building on first use) the partitioned build side
// for one parallel hash-join pattern. The scan phase runs one worker
// per index shard (concurrent read-locked scans), each bucketing its
// matches by key partition; the build phase runs one worker per
// partition, each assembling its chain table from the scanners'
// buckets. No bucket is written by more than one goroutine in either
// phase.
func (e *evaluator) parTable(p *triplePlan, workers int) *partitionedTable {
	if t, ok := e.ptables[p]; ok {
		return t
	}
	nparts := 1
	if len(p.keySlots) > 0 {
		for nparts < workers {
			nparts <<= 1
		}
	}
	shift := uint(64 - bits.TrailingZeros(uint(nparts)))
	buckets := make([][][]rdf.TermID, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			raw := filterSameViolations(p.g.AppendMatchIDsShard(nil, p.sID, p.pID, p.oID, w, workers), p)
			if nparts == 1 {
				buckets[w] = [][]rdf.TermID{raw}
				return
			}
			bs := make([][]rdf.TermID, nparts)
			for i := 0; i < len(raw); i += 3 {
				pi := partIndex(p.matchKey(raw[i], raw[i+1], raw[i+2]), shift)
				bs[pi] = append(bs[pi], raw[i], raw[i+1], raw[i+2])
			}
			buckets[w] = bs
		}(w)
	}
	wg.Wait()
	pt := &partitionedTable{parts: make([]*hashTable, nparts), shift: shift}
	for pi := 0; pi < nparts; pi++ {
		wg.Add(1)
		go func(pi int) {
			defer wg.Done()
			n := 0
			for w := range buckets {
				n += len(buckets[w][pi])
			}
			rows := make([]rdf.TermID, 0, n)
			for w := range buckets {
				rows = append(rows, buckets[w][pi]...)
			}
			pt.parts[pi] = newChainTable(rows, p)
		}(pi)
	}
	wg.Wait()
	if e.ptables == nil {
		e.ptables = make(map[*triplePlan]*partitionedTable)
	}
	e.ptables[p] = pt
	return pt
}

// sliceRows replays a flat slab of copied rows as a rowIter; it is the
// refillable seed of one worker's probe chain.
type sliceRows struct {
	rows []rdf.TermID
	w    int
	pos  int
}

func (s *sliceRows) next() []rdf.TermID {
	if s.pos >= len(s.rows) {
		return nil
	}
	r := s.rows[s.pos : s.pos+s.w : s.pos+s.w]
	s.pos += s.w
	return r
}

// morselWorker is one lane of the pool: a private evaluator (arena,
// error latch, per-batch context), a persistent probe chain re-seeded
// every super-batch, and an output slab reused across batches.
type morselWorker struct {
	we    *evaluator
	seed  sliceRows
	chain rowIter
	out   []rdf.TermID
}

// morselJoinIter executes a fused run of parallel hash-join patterns as
// morsel-parallel pipeline segments. See the file comment for the
// dataflow and the ordering/cancellation guarantees.
type morselJoinIter struct {
	e     *evaluator
	src   rowIter
	plans []*triplePlan

	inited  bool
	srcDone bool
	workers []*morselWorker
	in      []rdf.TermID // copied input rows of the current super-batch
	wi      int          // worker whose output slab is being drained
	pos     int          // ID offset into that slab
}

func newMorselJoin(e *evaluator, src rowIter, plans []*triplePlan) *morselJoinIter {
	return &morselJoinIter{e: e, src: src, plans: plans}
}

// init builds every segment table (partitioned, in parallel) and the
// per-worker probe chains. Tables are built on the caller's goroutine
// before any worker exists and are never written afterwards, so the
// pool shares them read-only.
func (it *morselJoinIter) init() {
	it.inited = true
	nw := it.e.par
	pts := make([]*partitionedTable, len(it.plans))
	for i, p := range it.plans {
		if !p.dead {
			pts[i] = it.e.parTable(p, nw)
		}
	}
	w := len(it.e.lay.names)
	it.workers = make([]*morselWorker, nw)
	for i := range it.workers {
		mw := &morselWorker{we: &evaluator{ds: it.e.ds, dict: it.e.dict, lay: it.e.lay}}
		mw.seed.w = w
		var chain rowIter = &mw.seed
		for pi, p := range it.plans {
			chain = &hashJoinIter{e: mw.we, src: chain, p: p, scratch: mw.we.newRow(), chain: -1, pt: pts[pi]}
		}
		mw.chain = chain
		it.workers[i] = mw
	}
}

func (it *morselJoinIter) next() []rdf.TermID {
	w := len(it.e.lay.names)
	for {
		for it.wi < len(it.workers) {
			mw := it.workers[it.wi]
			if it.pos < len(mw.out) {
				r := mw.out[it.pos : it.pos+w : it.pos+w]
				it.pos += w
				return r
			}
			it.wi++
			it.pos = 0
		}
		if it.srcDone || !it.e.poll() {
			return nil
		}
		if !it.inited {
			it.init()
		}
		if !it.runBatch(w) {
			return nil
		}
	}
}

// runBatch pulls the next super-batch of input rows on the caller's
// goroutine, fans contiguous morsels out across the pool, and blocks
// until every worker has drained its share. It reports false when
// evaluation is over (source exhausted with nothing pulled, or a
// failure latched). Input rows are copied into the batch slab because
// borrowed rows expire on the next upstream pull.
func (it *morselJoinIter) runBatch(w int) bool {
	it.wi, it.pos = 0, 0
	it.in = it.in[:0]
	target := len(it.workers) * morselRows * w
	for len(it.in) < target {
		row := it.src.next()
		if row == nil {
			it.srcDone = true
			break
		}
		it.in = append(it.in, row...)
	}
	if it.e.err != nil {
		return false
	}
	n := len(it.in) / w
	if n == 0 {
		return false
	}
	obsParBatches.Inc()
	obsParRows.Add(float64(n))
	chunk := (n + len(it.workers) - 1) / len(it.workers)
	ctx := it.e.ctx
	var wg sync.WaitGroup
	for i, mw := range it.workers {
		lo := min(i*chunk, n)
		hi := min(lo+chunk, n)
		mw.out = mw.out[:0]
		if lo >= hi {
			continue
		}
		mw.we.ctx = ctx
		mw.seed.rows = it.in[lo*w : hi*w]
		mw.seed.pos = 0
		wg.Add(1)
		go func(mw *morselWorker, lane int) {
			defer wg.Done()
			t0 := time.Now()
			for {
				r := mw.chain.next()
				if r == nil {
					break
				}
				mw.out = append(mw.out, r...)
			}
			obsParBusyLane[lane].Add(time.Since(t0).Seconds())
		}(mw, i)
	}
	wg.Wait()
	for _, mw := range it.workers {
		if mw.we.err != nil {
			it.e.err = mw.we.err
			return false
		}
	}
	return true
}

// chainRoot instantiates the root group like chain, but fuses each
// maximal run of consecutive parallel-marked hash-join patterns into
// one morselJoinIter so a chain of probes parallelizes as a unit
// (intermediate rows never leave the worker). Only the root group
// parallelizes: sub-groups (OPTIONAL/UNION/GRAPH bodies) are
// instantiated per input row and stay sequential.
func (e *evaluator) chainRoot(gp *groupPlan, src rowIter) rowIter {
	if e.par <= 1 {
		return e.chain(gp, src)
	}
	it := src
	var seg []*triplePlan
	flush := func() {
		if len(seg) > 0 {
			it = e.traced(newMorselJoin(e, it, seg),
				seg[0], "morsel-join", fmt.Sprintf("morsel_parallel(workers=%d,patterns=%d)", e.par, len(seg)), it)
			seg = nil
		}
	}
	for _, p := range gp.patterns {
		if tp, ok := p.(*triplePlan); ok && tp.par {
			seg = append(seg, tp)
			continue
		}
		flush()
		it = e.chainOne(p, it)
	}
	flush()
	if len(gp.filters) > 0 {
		it = e.traced(&filterIter{e: e, src: it, exprs: gp.filters}, gp, "filter", "", it)
	}
	return it
}
