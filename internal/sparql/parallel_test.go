package sparql

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"

	"mdm/internal/rdf"
)

// Deterministic coverage for the morsel-parallel join path (parallel.go):
// byte-identical output vs the sequential engine, cancellation through
// worker polls, the partitioned build's equivalence to the single-table
// build, and the offset-overflow clamp in EvalCursor. The randomized
// spec harness additionally runs every generated case under forced
// parallelism (checkJoinStrategies).

// withParMode runs f with the planner's parallelism decision forced,
// restoring the previous mode even when f fails the test.
func withParMode(t testing.TB, mode int32, f func()) {
	t.Helper()
	old := parMode
	parMode = mode
	defer func() { parMode = old }()
	f()
}

// withParWorkers runs f with a fixed worker budget.
func withParWorkers(t testing.TB, n int, f func()) {
	t.Helper()
	old := parWorkers.Load()
	SetParallelism(n)
	defer parWorkers.Store(old)
	f()
}

// drainTable evaluates q and renders the full result; the canonical
// order is total over projected columns, so two engines that agree must
// agree byte for byte.
func drainTable(t *testing.T, ds *rdf.Dataset, q *Query) string {
	t.Helper()
	res, err := Eval(ds, q)
	if err != nil {
		t.Fatal(err)
	}
	return res.Table()
}

// TestParallelFullDrainByteIdentical pins the tentpole ordering
// guarantee: a full drain under forced parallelism (several worker
// counts, including more workers than morsels) renders exactly the
// sequential engine's bytes.
func TestParallelFullDrainByteIdentical(t *testing.T) {
	ds, q := joinFixture()
	var want string
	withParMode(t, parForceOff, func() {
		want = drainTable(t, ds, q)
	})
	if want == "" {
		t.Fatal("empty sequential drain")
	}
	for _, workers := range []int{2, 3, 4, 8} {
		withParMode(t, parForceOn, func() {
			withParWorkers(t, workers, func() {
				if got := drainTable(t, ds, q); got != want {
					t.Fatalf("workers=%d: parallel drain differs from sequential (lengths %d vs %d)",
						workers, len(got), len(want))
				}
			})
		})
	}
}

// TestParallelLimitEqualsSequentialPage: the bounded top-k page over the
// parallel stream must match the sequential page exactly.
func TestParallelLimitEqualsSequentialPage(t *testing.T) {
	ds, base := joinFixture()
	src := `
PREFIX ex: <http://ex.org/>
SELECT ?a ?c ?w WHERE { ?a ex:p0 ?b . ?b ex:p1 ?c . ?a ex:p2 ?w } LIMIT 25 OFFSET 13`
	_ = base
	q := MustParse(src)
	var want string
	withParMode(t, parForceOff, func() {
		want = drainTable(t, ds, q)
	})
	withParMode(t, parForceOn, func() {
		withParWorkers(t, 4, func() {
			// Fresh Query so the plan cache cannot mask a paging bug.
			if got := drainTable(t, ds, MustParse(src)); got != want {
				t.Fatalf("parallel page differs from sequential:\n%s\nvs\n%s", got, want)
			}
		})
	})
}

// TestParallelCancelMidJoin: a context that cancels partway through the
// drain must stop the worker pool and surface context.Canceled, exactly
// like the sequential engine.
func TestParallelCancelMidJoin(t *testing.T) {
	ds, q := joinFixture()
	withParMode(t, parForceOn, func() {
		withParWorkers(t, 4, func() {
			ctx := &countdownCtx{Context: context.Background()}
			ctx.n.Store(500) // far fewer polls than the 9000 result rows
			cur, err := EvalCursor(ds, q)
			if err != nil {
				t.Fatal(err)
			}
			rows := 0
			for cur.Next(ctx) {
				rows++
			}
			if rows != 0 {
				t.Fatalf("Next yielded %d rows under a canceled context", rows)
			}
			if !errors.Is(cur.Err(), context.Canceled) {
				t.Fatalf("Err() = %v, want context.Canceled", cur.Err())
			}
		})
	})
}

// TestParTableCoversSequential: white-box check that every partitioned
// build holds exactly the single-table build's triplets — partitions
// disjoint, union complete — for every hash pattern of the join
// fixture's plan.
func TestParTableCoversSequential(t *testing.T) {
	ds, q := joinFixture()
	withJoinMode(t, joinForceHash, func() {
		e := &evaluator{ds: ds, dict: ds.Dict(), lay: q.layout(), ctx: context.Background()}
		root, err := e.plan(q)
		if err != nil {
			t.Fatal(err)
		}
		checked := 0
		for _, pat := range root.patterns {
			p, ok := pat.(*triplePlan)
			if !ok || !p.hash || p.dead {
				continue
			}
			checked++
			want := map[[3]rdf.TermID]int{}
			seq := e.hashTable(p)
			for i := 0; i < len(seq.rows); i += 3 {
				want[[3]rdf.TermID{seq.rows[i], seq.rows[i+1], seq.rows[i+2]}]++
			}
			for _, workers := range []int{2, 4, 5} {
				e.ptables = nil // force a rebuild per worker count
				pt := e.parTable(p, workers)
				got := map[[3]rdf.TermID]int{}
				total := 0
				for _, part := range pt.parts {
					for i := 0; i < len(part.rows); i += 3 {
						k := [3]rdf.TermID{part.rows[i], part.rows[i+1], part.rows[i+2]}
						got[k]++
						total++
						if len(p.keySlots) > 0 {
							if pt.part(p.matchKey(k[0], k[1], k[2])) != part {
								t.Fatalf("workers=%d: triplet %v stored outside its key partition", workers, k)
							}
						}
					}
				}
				if total != len(want) || len(got) != len(want) {
					t.Fatalf("workers=%d: partitioned build has %d triplets (%d distinct), sequential %d",
						workers, total, len(got), len(want))
				}
				for k, n := range want {
					if got[k] != n {
						t.Fatalf("workers=%d: triplet %v count %d vs sequential %d", workers, k, got[k], n)
					}
				}
			}
		}
		if checked == 0 {
			t.Fatal("plan contained no hash patterns to check")
		}
	})
}

// TestOffsetOverflowClamped: an offset near MaxInt must yield an empty
// page (there are never MaxInt rows), not an overflowed top-k capacity
// that silently misbehaves. Regression for the REST paging sweep; the
// HTTP-level test lives in internal/rest.
func TestOffsetOverflowClamped(t *testing.T) {
	ds, q := joinFixture()
	for _, offset := range []int{math.MaxInt, math.MaxInt - 1, math.MaxInt64 - 100} {
		q.Limit, q.Offset = 1, offset
		q.plan.Store(nil)
		res, err := Eval(ds, q)
		if err != nil {
			t.Fatalf("offset=%d: %v", offset, err)
		}
		if res.Len() != 0 {
			t.Fatalf("offset=%d: got %d rows, want empty page", offset, res.Len())
		}
	}
	// The boundary that still fits must keep working as a normal page.
	q.Limit, q.Offset = 1, 8999
	q.plan.Store(nil)
	res, err := Eval(ds, q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("offset=8999 limit=1: got %d rows, want 1", res.Len())
	}
}

// benchParDrain evaluates a LIMIT 1 variant of the three-pattern join:
// the bounded top-k tail keeps the canonical barrier out of the
// measurement, so the timing isolates the hash-join build and probe the
// parallel path is meant to speed up.
func benchParDrain(b *testing.B, ds *rdf.Dataset, q *Query, want int) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Eval(ds, q)
		if err != nil {
			b.Fatal(err)
		}
		if res.Len() != want {
			b.Fatalf("rows = %d, want %d", res.Len(), want)
		}
	}
}

// BenchmarkParallelJoinDrain compares the sequential and morsel-parallel
// join pipelines on the BenchmarkSPARQLJoinRows-scale input. Run with
// -cpu 1,4 to see the GOMAXPROCS-derived scaling; the "par" variant
// degenerates to sequential at -cpu 1 by design. The "small" variants
// justify the parallelMinWork planner threshold: at ~100 result rows
// the forced-parallel path shows the fixed build/pool overhead the
// threshold exists to avoid.
func BenchmarkParallelJoinDrain(b *testing.B) {
	ds, _ := joinFixture()
	src := `
PREFIX ex: <http://ex.org/>
SELECT ?a ?c ?w WHERE { ?a ex:p0 ?b . ?b ex:p1 ?c . ?a ex:p2 ?w } LIMIT 1`
	small := rdf.NewDataset()
	g := small.Default()
	for x := 0; x < 100; x++ {
		g.MustAdd(rdf.T(
			rdf.IRI(fmt.Sprintf("http://ex.org/n0_%d", x)),
			rdf.IRI("http://ex.org/p0"),
			rdf.IRI(fmt.Sprintf("http://ex.org/n1_%d", x%10))))
		g.MustAdd(rdf.T(
			rdf.IRI(fmt.Sprintf("http://ex.org/n0_%d", x)),
			rdf.IRI("http://ex.org/p2"),
			rdf.IntLit(int64(x))))
	}
	for m := 0; m < 10; m++ {
		g.MustAdd(rdf.T(
			rdf.IRI(fmt.Sprintf("http://ex.org/n1_%d", m)),
			rdf.IRI("http://ex.org/p1"),
			rdf.IntLit(int64(m))))
	}
	b.Run("seq", func(b *testing.B) {
		withParMode(b, parForceOff, func() { benchParDrain(b, ds, MustParse(src), 1) })
	})
	b.Run("par", func(b *testing.B) {
		withParMode(b, parAuto, func() { benchParDrain(b, ds, MustParse(src), 1) })
	})
	b.Run("small-seq", func(b *testing.B) {
		withParMode(b, parForceOff, func() { benchParDrain(b, small, MustParse(src), 1) })
	})
	b.Run("small-par", func(b *testing.B) {
		withParMode(b, parForceOn, func() { benchParDrain(b, small, MustParse(src), 1) })
	})
}
