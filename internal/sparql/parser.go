package sparql

import (
	"fmt"
	"strings"

	"mdm/internal/rdf"
)

// Parse parses a SPARQL query string.
func Parse(src string) (*Query, error) {
	p := &parser{lx: newLexer(src), prefixes: rdf.NewPrefixMap()}
	if err := p.bump(); err != nil {
		return nil, err
	}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	return q, nil
}

type parser struct {
	lx       *lexer
	tok      token
	prefixes *rdf.PrefixMap
}

func (p *parser) bump() error {
	t, err := p.lx.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sparql: line %d:%d: %s", p.tok.line, p.tok.col, fmt.Sprintf(format, args...))
}

func (p *parser) expectKeyword(kw string) error {
	if p.tok.kind != tokKeyword || p.tok.text != kw {
		return p.errf("expected %s, got %q", kw, p.tok.text)
	}
	return p.bump()
}

func (p *parser) parseQuery() (*Query, error) {
	q := &Query{Prefixes: p.prefixes, Limit: -1}

	// Prologue: PREFIX declarations.
	for p.tok.kind == tokKeyword && p.tok.text == "PREFIX" {
		if err := p.bump(); err != nil {
			return nil, err
		}
		if p.tok.kind != tokPName || !strings.HasSuffix(p.tok.text, ":") {
			return nil, p.errf("expected prefix declaration like ex:, got %q", p.tok.text)
		}
		prefix := strings.TrimSuffix(p.tok.text, ":")
		if err := p.bump(); err != nil {
			return nil, err
		}
		if p.tok.kind != tokIRI {
			return nil, p.errf("expected IRI after PREFIX %s:", prefix)
		}
		p.prefixes.Bind(prefix, p.tok.text)
		if err := p.bump(); err != nil {
			return nil, err
		}
	}

	switch {
	case p.tok.kind == tokKeyword && p.tok.text == "SELECT":
		q.Form = FormSelect
		if err := p.bump(); err != nil {
			return nil, err
		}
		if p.tok.kind == tokKeyword && (p.tok.text == "DISTINCT" || p.tok.text == "REDUCED") {
			q.Distinct = true
			if err := p.bump(); err != nil {
				return nil, err
			}
		}
		if p.tok.kind == tokStar {
			q.Star = true
			if err := p.bump(); err != nil {
				return nil, err
			}
		} else {
			for {
				if p.tok.kind == tokVar {
					q.Variables = append(q.Variables, p.tok.text)
					if err := p.bump(); err != nil {
						return nil, err
					}
					continue
				}
				if p.tok.kind == tokLParen {
					agg, err := p.parseAggregate()
					if err != nil {
						return nil, err
					}
					q.Aggregates = append(q.Aggregates, agg)
					q.Variables = append(q.Variables, agg.As)
					continue
				}
				break
			}
			if len(q.Variables) == 0 {
				return nil, p.errf("SELECT needs * or at least one variable")
			}
		}
		// WHERE keyword is optional in SPARQL.
		if p.tok.kind == tokKeyword && p.tok.text == "WHERE" {
			if err := p.bump(); err != nil {
				return nil, err
			}
		}
	case p.tok.kind == tokKeyword && p.tok.text == "ASK":
		q.Form = FormAsk
		if err := p.bump(); err != nil {
			return nil, err
		}
		if p.tok.kind == tokKeyword && p.tok.text == "WHERE" {
			if err := p.bump(); err != nil {
				return nil, err
			}
		}
	default:
		return nil, p.errf("expected SELECT or ASK, got %q", p.tok.text)
	}

	g, err := p.parseGroup()
	if err != nil {
		return nil, err
	}
	q.Where = g

	// Solution modifiers.
	for p.tok.kind == tokKeyword {
		switch p.tok.text {
		case "ORDER":
			if err := p.bump(); err != nil {
				return nil, err
			}
			if err := p.expectKeyword("BY"); err != nil {
				return nil, err
			}
			for {
				key, ok, err := p.parseOrderKey()
				if err != nil {
					return nil, err
				}
				if !ok {
					break
				}
				q.OrderBy = append(q.OrderBy, key)
			}
			if len(q.OrderBy) == 0 {
				return nil, p.errf("ORDER BY needs at least one key")
			}
		case "LIMIT":
			if err := p.bump(); err != nil {
				return nil, err
			}
			n, err := p.parseNonNegInt("LIMIT")
			if err != nil {
				return nil, err
			}
			q.Limit = n
		case "OFFSET":
			if err := p.bump(); err != nil {
				return nil, err
			}
			n, err := p.parseNonNegInt("OFFSET")
			if err != nil {
				return nil, err
			}
			q.Offset = n
		case "GROUP":
			if err := p.bump(); err != nil {
				return nil, err
			}
			if err := p.expectKeyword("BY"); err != nil {
				return nil, err
			}
			start := len(q.GroupBy)
			for p.tok.kind == tokVar {
				q.GroupBy = append(q.GroupBy, p.tok.text)
				if err := p.bump(); err != nil {
					return nil, err
				}
			}
			if len(q.GroupBy) == start {
				return nil, p.errf("GROUP BY needs at least one variable")
			}
		case "HAVING":
			if err := p.bump(); err != nil {
				return nil, err
			}
			start := len(q.Having)
			for p.isExprStart() {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				q.Having = append(q.Having, e)
			}
			if len(q.Having) == start {
				return nil, p.errf("HAVING needs an expression")
			}
		default:
			return nil, p.errf("unexpected keyword %q after WHERE clause", p.tok.text)
		}
	}
	if p.tok.kind != tokEOF {
		return nil, p.errf("trailing input %q", p.tok.text)
	}
	if err := validateAggregation(q); err != nil {
		return nil, err
	}
	return q, nil
}

// parseAggregate parses one projected aggregate,
// "( FUNC '(' [DISTINCT] (*|?var) ')' AS ?alias )", with the opening
// paren as the current token.
func (p *parser) parseAggregate() (Aggregate, error) {
	if err := p.bump(); err != nil { // consume '('
		return Aggregate{}, err
	}
	var a Aggregate
	if p.tok.kind != tokKeyword {
		return Aggregate{}, p.errf("expected aggregate function, got %q", p.tok.text)
	}
	switch p.tok.text {
	case "COUNT":
		a.Func = AggCount
	case "SUM":
		a.Func = AggSum
	case "MIN":
		a.Func = AggMin
	case "MAX":
		a.Func = AggMax
	default:
		return Aggregate{}, p.errf("expected COUNT, SUM, MIN or MAX, got %q", p.tok.text)
	}
	if err := p.bump(); err != nil {
		return Aggregate{}, err
	}
	if p.tok.kind != tokLParen {
		return Aggregate{}, p.errf("expected ( after %s", a.Func)
	}
	if err := p.bump(); err != nil {
		return Aggregate{}, err
	}
	if p.tok.kind == tokKeyword && p.tok.text == "DISTINCT" {
		a.Distinct = true
		if err := p.bump(); err != nil {
			return Aggregate{}, err
		}
	}
	switch p.tok.kind {
	case tokStar:
		if a.Func != AggCount {
			return Aggregate{}, p.errf("only COUNT accepts *")
		}
		if a.Distinct {
			return Aggregate{}, p.errf("COUNT(DISTINCT *) is not supported")
		}
		if err := p.bump(); err != nil {
			return Aggregate{}, err
		}
	case tokVar:
		a.Var = p.tok.text
		if err := p.bump(); err != nil {
			return Aggregate{}, err
		}
	default:
		return Aggregate{}, p.errf("aggregate argument must be a variable or *, got %q", p.tok.text)
	}
	if p.tok.kind != tokRParen {
		return Aggregate{}, p.errf("expected ) after aggregate argument")
	}
	if err := p.bump(); err != nil {
		return Aggregate{}, err
	}
	if err := p.expectKeyword("AS"); err != nil {
		return Aggregate{}, err
	}
	if p.tok.kind != tokVar {
		return Aggregate{}, p.errf("expected alias variable after AS")
	}
	a.As = p.tok.text
	if err := p.bump(); err != nil {
		return Aggregate{}, err
	}
	if p.tok.kind != tokRParen {
		return Aggregate{}, p.errf("expected ) closing aggregate projection")
	}
	return a, p.bump()
}

// validateAggregation enforces the structural rules that make grouped
// queries well-defined: grouping is SELECT-only, incompatible with
// SELECT *, aliases must be fresh names, and every plainly projected
// variable must be a group key.
func validateAggregation(q *Query) error {
	if len(q.Aggregates) == 0 && len(q.GroupBy) == 0 {
		if len(q.Having) > 0 {
			return fmt.Errorf("sparql: HAVING requires GROUP BY or an aggregate")
		}
		return nil
	}
	if q.Form != FormSelect {
		return fmt.Errorf("sparql: GROUP BY and aggregates require a SELECT query")
	}
	if q.Star {
		return fmt.Errorf("sparql: SELECT * cannot be combined with GROUP BY or aggregates")
	}
	whereVars := map[string]bool{}
	q.Where.collectVars(whereVars)
	grouped := map[string]bool{}
	for _, v := range q.GroupBy {
		grouped[v] = true
	}
	aliases := map[string]bool{}
	for _, a := range q.Aggregates {
		if aliases[a.As] {
			return fmt.Errorf("sparql: duplicate aggregate alias ?%s", a.As)
		}
		if whereVars[a.As] || grouped[a.As] {
			return fmt.Errorf("sparql: aggregate alias ?%s shadows a query variable", a.As)
		}
		aliases[a.As] = true
	}
	projected := map[string]bool{}
	for _, v := range q.Variables {
		if projected[v] {
			// A name can reach the projection twice — once as a plain
			// variable and once as an aggregate alias — which would
			// render as the aggregate twice and no longer reparse.
			return fmt.Errorf("sparql: duplicate projected variable ?%s", v)
		}
		projected[v] = true
		if !aliases[v] && !grouped[v] {
			return fmt.Errorf("sparql: projected variable ?%s is neither grouped nor aggregated", v)
		}
	}
	return nil
}

func (p *parser) parseOrderKey() (OrderKey, bool, error) {
	switch {
	case p.tok.kind == tokVar:
		k := OrderKey{Var: p.tok.text}
		return k, true, p.bump()
	case p.tok.kind == tokKeyword && (p.tok.text == "ASC" || p.tok.text == "DESC"):
		desc := p.tok.text == "DESC"
		if err := p.bump(); err != nil {
			return OrderKey{}, false, err
		}
		if p.tok.kind != tokLParen {
			return OrderKey{}, false, p.errf("expected ( after ASC/DESC")
		}
		if err := p.bump(); err != nil {
			return OrderKey{}, false, err
		}
		if p.tok.kind != tokVar {
			return OrderKey{}, false, p.errf("expected variable in ORDER BY")
		}
		k := OrderKey{Var: p.tok.text, Desc: desc}
		if err := p.bump(); err != nil {
			return OrderKey{}, false, err
		}
		if p.tok.kind != tokRParen {
			return OrderKey{}, false, p.errf("expected ) in ORDER BY")
		}
		return k, true, p.bump()
	default:
		return OrderKey{}, false, nil
	}
}

func (p *parser) parseNonNegInt(ctx string) (int, error) {
	if p.tok.kind != tokNumber {
		return 0, p.errf("expected number after %s", ctx)
	}
	var n int
	if _, err := fmt.Sscanf(p.tok.text, "%d", &n); err != nil || n < 0 {
		return 0, p.errf("bad %s value %q", ctx, p.tok.text)
	}
	return n, p.bump()
}

func (p *parser) parseGroup() (*Group, error) {
	if p.tok.kind != tokLBrace {
		return nil, p.errf("expected {, got %q", p.tok.text)
	}
	if err := p.bump(); err != nil {
		return nil, err
	}
	g := &Group{}
	for {
		switch {
		case p.tok.kind == tokRBrace:
			if err := p.bump(); err != nil {
				return nil, err
			}
			return g, nil
		case p.tok.kind == tokEOF:
			return nil, p.errf("unterminated group pattern")
		case p.tok.kind == tokKeyword && p.tok.text == "FILTER":
			if err := p.bump(); err != nil {
				return nil, err
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			g.Filters = append(g.Filters, e)
		case p.tok.kind == tokKeyword && p.tok.text == "OPTIONAL":
			if err := p.bump(); err != nil {
				return nil, err
			}
			sub, err := p.parseGroup()
			if err != nil {
				return nil, err
			}
			g.Patterns = append(g.Patterns, Optional{Group: sub})
		case p.tok.kind == tokKeyword && p.tok.text == "GRAPH":
			if err := p.bump(); err != nil {
				return nil, err
			}
			name, err := p.parseNode()
			if err != nil {
				return nil, err
			}
			if !name.IsVar() && !name.Term.IsIRI() {
				return nil, p.errf("GRAPH name must be a variable or IRI, got %s", name)
			}
			sub, err := p.parseGroup()
			if err != nil {
				return nil, err
			}
			g.Patterns = append(g.Patterns, GraphPattern{Name: name, Group: sub})
		case p.tok.kind == tokLBrace:
			// Sub-group: either the start of a UNION chain or a plain
			// nested group (treated as inlined join).
			first, err := p.parseGroup()
			if err != nil {
				return nil, err
			}
			if p.tok.kind == tokKeyword && p.tok.text == "UNION" {
				branches := []*Group{first}
				for p.tok.kind == tokKeyword && p.tok.text == "UNION" {
					if err := p.bump(); err != nil {
						return nil, err
					}
					b, err := p.parseGroup()
					if err != nil {
						return nil, err
					}
					branches = append(branches, b)
				}
				g.Patterns = append(g.Patterns, Union{Branches: branches})
			} else {
				g.Patterns = append(g.Patterns, first.Patterns...)
				g.Filters = append(g.Filters, first.Filters...)
			}
		case p.tok.kind == tokDot:
			if err := p.bump(); err != nil {
				return nil, err
			}
		default:
			if err := p.parseTriplesBlock(g); err != nil {
				return nil, err
			}
		}
	}
}

// parseTriplesBlock parses subject predicate-object lists with ';' and
// ',' abbreviations, appending TriplePatterns to g.
func (p *parser) parseTriplesBlock(g *Group) error {
	subj, err := p.parseNode()
	if err != nil {
		return err
	}
	if !subj.IsVar() && !subj.Term.IsIRI() && !subj.Term.IsBlank() {
		return p.errf("triple subject must be a variable or IRI, got %s", subj)
	}
	for {
		pred, path, err := p.parseVerb()
		if err != nil {
			return err
		}
		for {
			obj, err := p.parseNode()
			if err != nil {
				return err
			}
			if path != nil {
				g.Patterns = append(g.Patterns, PathPattern{S: subj, Path: path, O: obj})
			} else {
				g.Patterns = append(g.Patterns, TriplePattern{S: subj, P: pred, O: obj})
			}
			if p.tok.kind == tokComma {
				if err := p.bump(); err != nil {
					return err
				}
				continue
			}
			break
		}
		if p.tok.kind == tokSemi {
			if err := p.bump(); err != nil {
				return err
			}
			// allow trailing ';'
			if p.tok.kind == tokDot || p.tok.kind == tokRBrace {
				break
			}
			continue
		}
		break
	}
	if p.tok.kind == tokDot {
		return p.bump()
	}
	if p.tok.kind == tokRBrace || p.tok.kind == tokEOF ||
		(p.tok.kind == tokKeyword && (p.tok.text == "FILTER" || p.tok.text == "OPTIONAL" || p.tok.text == "GRAPH")) {
		return nil
	}
	return p.errf("expected '.' after triple pattern, got %q", p.tok.text)
}

// parseVerb parses the predicate position of a triple pattern: a
// variable, or a property-path expression. A trivial path (one forward
// predicate, no operators) is returned as a plain Node so the pattern
// stays a TriplePattern; anything else returns a non-nil *Path.
func (p *parser) parseVerb() (Node, *Path, error) {
	if p.tok.kind == tokVar {
		n := V(p.tok.text)
		return n, nil, p.bump()
	}
	path, err := p.parsePath()
	if err != nil {
		return Node{}, nil, err
	}
	if path.Kind == PathLink {
		return N(path.IRI), nil, nil
	}
	return Node{}, path, nil
}

// Property-path grammar (precedence low to high):
//
//	path       := pathAlt
//	pathAlt    := pathSeq ('|' pathSeq)*
//	pathSeq    := pathEltOrInv ('/' pathEltOrInv)*
//	pathEltOrInv := '^'? pathElt
//	pathElt    := pathPrimary ('+' | '*' | '?')?
//	pathPrimary := IRI | PrefixedName | 'a' | '(' path ')'
//
// so `^p/q|r` parses as ((^p)/q)|r and `^p+` as ^(p+).
func (p *parser) parsePath() (*Path, error) { return p.parsePathAlt() }

func (p *parser) parsePathAlt() (*Path, error) {
	l, err := p.parsePathSeq()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokPipe {
		if err := p.bump(); err != nil {
			return nil, err
		}
		r, err := p.parsePathSeq()
		if err != nil {
			return nil, err
		}
		l = &Path{Kind: PathAlt, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parsePathSeq() (*Path, error) {
	l, err := p.parsePathEltOrInv()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokSlash {
		if err := p.bump(); err != nil {
			return nil, err
		}
		r, err := p.parsePathEltOrInv()
		if err != nil {
			return nil, err
		}
		l = &Path{Kind: PathSeq, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parsePathEltOrInv() (*Path, error) {
	if p.tok.kind == tokCaret {
		if err := p.bump(); err != nil {
			return nil, err
		}
		sub, err := p.parsePathElt()
		if err != nil {
			return nil, err
		}
		return &Path{Kind: PathInv, Sub: sub}, nil
	}
	return p.parsePathElt()
}

func (p *parser) parsePathElt() (*Path, error) {
	prim, err := p.parsePathPrimary()
	if err != nil {
		return nil, err
	}
	var kind PathKind
	switch p.tok.kind {
	case tokPlus:
		kind = PathPlus
	case tokStar:
		kind = PathStar
	case tokQuestion:
		kind = PathOpt
	default:
		return prim, nil
	}
	return &Path{Kind: kind, Sub: prim}, p.bump()
}

func (p *parser) parsePathPrimary() (*Path, error) {
	switch p.tok.kind {
	case tokA:
		return Link(rdf.IRI(rdf.RDFType)), p.bump()
	case tokIRI:
		t := rdf.IRI(p.tok.text)
		return Link(t), p.bump()
	case tokPName:
		iri, ok := p.prefixes.Expand(p.tok.text)
		if !ok {
			return nil, p.errf("unknown prefix in %q", p.tok.text)
		}
		return Link(rdf.IRI(iri)), p.bump()
	case tokLParen:
		if err := p.bump(); err != nil {
			return nil, err
		}
		path, err := p.parsePath()
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tokRParen {
			return nil, p.errf("expected ) closing path group")
		}
		return path, p.bump()
	default:
		return nil, p.errf("triple predicate must be a variable or property path, got %s %q", p.tok.kind, p.tok.text)
	}
}

// parseNode parses a variable, IRI, prefixed name or literal.
func (p *parser) parseNode() (Node, error) {
	switch p.tok.kind {
	case tokVar:
		n := V(p.tok.text)
		return n, p.bump()
	case tokIRI:
		n := N(rdf.IRI(p.tok.text))
		return n, p.bump()
	case tokPName:
		iri, ok := p.prefixes.Expand(p.tok.text)
		if !ok {
			return Node{}, p.errf("unknown prefix in %q", p.tok.text)
		}
		n := N(rdf.IRI(iri))
		return n, p.bump()
	case tokString:
		lex := p.tok.text
		if err := p.bump(); err != nil {
			return Node{}, err
		}
		switch p.tok.kind {
		case tokLangTag:
			n := N(rdf.LangLit(lex, p.tok.text))
			return n, p.bump()
		case tokDatatype:
			if err := p.bump(); err != nil {
				return Node{}, err
			}
			dt, err := p.parseNode()
			if err != nil {
				return Node{}, err
			}
			if dt.IsVar() || !dt.Term.IsIRI() {
				return Node{}, p.errf("datatype must be an IRI")
			}
			return N(rdf.TypedLit(lex, dt.Term.Value)), nil
		default:
			return N(rdf.Lit(lex)), nil
		}
	case tokNumber:
		n := N(numberTerm(p.tok.text))
		return n, p.bump()
	case tokBoolean:
		n := N(rdf.BoolLit(p.tok.text == "true"))
		return n, p.bump()
	default:
		return Node{}, p.errf("expected term, got %s %q", p.tok.kind, p.tok.text)
	}
}

func numberTerm(lex string) rdf.Term {
	if strings.ContainsAny(lex, ".eE") {
		return rdf.TypedLit(lex, rdf.XSDDouble)
	}
	return rdf.TypedLit(lex, rdf.XSDInteger)
}

// --- FILTER expression parsing (precedence: || < && < cmp < unary) ---

func (p *parser) parseExpr() (Expr, error) {
	if p.tok.kind != tokLParen && !p.isExprStart() {
		return nil, p.errf("expected expression, got %q", p.tok.text)
	}
	return p.parseOr()
}

func (p *parser) isExprStart() bool {
	switch p.tok.kind {
	case tokVar, tokString, tokNumber, tokBoolean, tokIRI, tokPName, tokLParen:
		return true
	case tokOp:
		return p.tok.text == "!"
	case tokKeyword:
		return p.tok.text == "BOUND" || p.tok.text == "REGEX" || p.tok.text == "STR"
	}
	return false
}

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokOp && p.tok.text == "||" {
		if err := p.bump(); err != nil {
			return nil, err
		}
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = LogicExpr{Op: "||", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokOp && p.tok.text == "&&" {
		if err := p.bump(); err != nil {
			return nil, err
		}
		r, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		l = LogicExpr{Op: "&&", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseCmp() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	if p.tok.kind == tokOp {
		switch p.tok.text {
		case "=", "!=", "<", "<=", ">", ">=":
			op := p.tok.text
			if err := p.bump(); err != nil {
				return nil, err
			}
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return CmpExpr{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.tok.kind == tokOp && p.tok.text == "!" {
		if err := p.bump(); err != nil {
			return nil, err
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return NotExpr{X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	switch {
	case p.tok.kind == tokLParen:
		if err := p.bump(); err != nil {
			return nil, err
		}
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tokRParen {
			return nil, p.errf("expected )")
		}
		return e, p.bump()
	case p.tok.kind == tokVar:
		e := VarExpr{Name: p.tok.text}
		return e, p.bump()
	case p.tok.kind == tokKeyword && p.tok.text == "BOUND":
		if err := p.bump(); err != nil {
			return nil, err
		}
		if p.tok.kind != tokLParen {
			return nil, p.errf("expected ( after BOUND")
		}
		if err := p.bump(); err != nil {
			return nil, err
		}
		if p.tok.kind != tokVar {
			return nil, p.errf("BOUND takes a variable")
		}
		name := p.tok.text
		if err := p.bump(); err != nil {
			return nil, err
		}
		if p.tok.kind != tokRParen {
			return nil, p.errf("expected ) after BOUND variable")
		}
		return BoundExpr{Name: name}, p.bump()
	case p.tok.kind == tokKeyword && p.tok.text == "STR":
		if err := p.bump(); err != nil {
			return nil, err
		}
		if p.tok.kind != tokLParen {
			return nil, p.errf("expected ( after STR")
		}
		if err := p.bump(); err != nil {
			return nil, err
		}
		x, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tokRParen {
			return nil, p.errf("expected ) after STR argument")
		}
		return StrExpr{X: x}, p.bump()
	case p.tok.kind == tokKeyword && p.tok.text == "REGEX":
		if err := p.bump(); err != nil {
			return nil, err
		}
		if p.tok.kind != tokLParen {
			return nil, p.errf("expected ( after REGEX")
		}
		if err := p.bump(); err != nil {
			return nil, err
		}
		x, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tokComma {
			return nil, p.errf("REGEX needs a pattern argument")
		}
		if err := p.bump(); err != nil {
			return nil, err
		}
		if p.tok.kind != tokString {
			return nil, p.errf("REGEX pattern must be a string")
		}
		pattern := p.tok.text
		if err := p.bump(); err != nil {
			return nil, err
		}
		flags := ""
		if p.tok.kind == tokComma {
			if err := p.bump(); err != nil {
				return nil, err
			}
			if p.tok.kind != tokString {
				return nil, p.errf("REGEX flags must be a string")
			}
			flags = p.tok.text
			if err := p.bump(); err != nil {
				return nil, err
			}
		}
		if p.tok.kind != tokRParen {
			return nil, p.errf("expected ) after REGEX")
		}
		re, err := NewRegexExpr(x, pattern, flags)
		if err != nil {
			return nil, err
		}
		return re, p.bump()
	default:
		n, err := p.parseNode()
		if err != nil {
			return nil, err
		}
		if n.IsVar() {
			return VarExpr{Name: n.Var}, nil
		}
		return ConstExpr{Term: n.Term}, nil
	}
}
